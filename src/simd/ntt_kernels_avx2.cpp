/// AVX2 Harvey lazy-reduction NTT kernels. Compiled with -mavx2 on x86-64
/// (see CMakeLists); on other targets this TU degrades to portable
/// forwarders and avx2_compiled() reports false, so the dispatcher never
/// routes here.
///
/// Vectorization strategy: a butterfly stage with gap t processes t
/// contiguous pairs under one twiddle, so every stage with t >= 4 runs four
/// butterflies per iteration on splatted twiddles with purely sequential
/// loads (the flat Shoup-pair layout in NttLayout). The last two forward
/// stages / first two inverse stages (t in {1, 2}) reuse the portable
/// scalar code — 2/log_n of the work; the correction and scaling passes are
/// vectorized as well.

#include "simd/kernels_avx2.hpp"
#include "simd/ntt_kernels.hpp"
#include "simd/simd_caps.hpp"

#if defined(__AVX2__)

#include "simd/avx2_math.hpp"

namespace abc::simd {

bool avx2_compiled() noexcept { return true; }

namespace {

using avx2::cond_sub;
using avx2::shoup_mul_lazy;
using avx2::splat;

inline __m256i load(const u64* p) noexcept {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}
inline void store(u64* p, __m256i v) noexcept {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

void reduce_from_4q_avx2(u64* a, std::size_t n, u64 q) {
  const __m256i vq = splat(q);
  const __m256i v2q = splat(2 * q);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256i v = load(a + j);
    v = cond_sub(v, v2q);
    v = cond_sub(v, vq);
    store(a + j, v);
  }
  if (j < n) reduce_from_4q_portable(a + j, n - j, q);
}

}  // namespace

void ntt_forward_lazy_avx2(const NttLayout& L, u64* a) {
  const __m256i vq = splat(L.q);
  const __m256i v2q = splat(2 * L.q);
  int s = 0;
  for (; s < L.log_n; ++s) {
    const std::size_t m = std::size_t{1} << s;
    const std::size_t t = L.n >> (s + 1);
    if (t < 4) break;
    for (std::size_t i = 0; i < m; ++i) {
      const __m256i w = splat(L.w[m + i]);
      const __m256i wsh = splat(L.w_shoup[m + i]);
      u64* x = a + 2 * i * t;
      u64* y = x + t;
      for (std::size_t j = 0; j < t; j += 4) {
        __m256i vx = load(x + j);
        const __m256i vy = load(y + j);
        vx = cond_sub(vx, v2q);                                // < 2q
        const __m256i vv = shoup_mul_lazy(vy, w, wsh, vq);     // < 2q
        store(x + j, _mm256_add_epi64(vx, vv));                // < 4q
        store(y + j,
              _mm256_sub_epi64(_mm256_add_epi64(vx, v2q), vv));  // < 4q
      }
    }
  }
  if (s < L.log_n) ntt_forward_lazy_stages_portable(L, a, s, L.log_n);
  reduce_from_4q_avx2(a, L.n, L.q);
}

void ntt_inverse_lazy_avx2(const NttLayout& L, u64* a) {
  const __m256i vq = splat(L.q);
  const __m256i v2q = splat(2 * L.q);
  const int scalar_stages = L.log_n < 2 ? L.log_n : 2;  // t in {1, 2}
  ntt_inverse_lazy_stages_portable(L, a, 0, scalar_stages);
  for (int s = scalar_stages; s < L.log_n; ++s) {
    const std::size_t t = std::size_t{1} << s;
    const std::size_t m = L.n >> (s + 1);
    for (std::size_t i = 0; i < m; ++i) {
      const __m256i w = splat(L.inv_w[m + i]);
      const __m256i wsh = splat(L.inv_w_shoup[m + i]);
      u64* x = a + 2 * i * t;
      u64* y = x + t;
      for (std::size_t j = 0; j < t; j += 4) {
        const __m256i vx = load(x + j);
        const __m256i vy = load(y + j);
        const __m256i sum = _mm256_add_epi64(vx, vy);           // < 4q
        store(x + j, cond_sub(sum, v2q));                       // < 2q
        const __m256i d =
            _mm256_sub_epi64(_mm256_add_epi64(vx, v2q), vy);    // < 4q
        store(y + j, shoup_mul_lazy(d, w, wsh, vq));            // < 2q
      }
    }
  }
  // N^{-1} scaling with full reduction.
  const __m256i ninv = splat(L.n_inv);
  const __m256i ninv_sh = splat(L.n_inv_shoup);
  std::size_t j = 0;
  for (; j + 4 <= L.n; j += 4) {
    const __m256i v = shoup_mul_lazy(load(a + j), ninv, ninv_sh, vq);
    store(a + j, cond_sub(v, vq));
  }
  for (; j < L.n; ++j) {
    u64 v = a[j] * L.n_inv - mul_hi(a[j], L.n_inv_shoup) * L.q;
    if (v >= L.q) v -= L.q;
    a[j] = v;
  }
}

}  // namespace abc::simd

#else  // !__AVX2__: portable forwarders, never selected at runtime.

namespace abc::simd {

bool avx2_compiled() noexcept { return false; }

void ntt_forward_lazy_avx2(const NttLayout& L, u64* a) {
  ntt_forward_lazy_portable(L, a);
}
void ntt_inverse_lazy_avx2(const NttLayout& L, u64* a) {
  ntt_inverse_lazy_portable(L, a);
}

}  // namespace abc::simd

#endif
