#include "simd/simd_caps.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace abc::simd {

bool avx2_supported() noexcept {
// __builtin_cpu_supports is a GCC/Clang builtin; other toolchains fall
// back to portable kernels.
#if defined(__x86_64__) && defined(__GNUC__)
  return avx2_compiled() && __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

namespace {

bool force_portable_env() noexcept {
  const char* v = std::getenv("ABC_FORCE_PORTABLE_KERNELS");
  return v != nullptr && std::strcmp(v, "0") != 0;
}

std::atomic<KernelArch>& active_slot() noexcept {
  static std::atomic<KernelArch> slot{detected_kernel_arch()};
  return slot;
}

}  // namespace

bool avx2_selectable() noexcept {
  return avx2_supported() && !force_portable_env();
}

KernelArch detected_kernel_arch() noexcept {
  return avx2_selectable() ? KernelArch::kAvx2 : KernelArch::kPortable;
}

KernelArch active_kernel_arch() noexcept {
  return active_slot().load(std::memory_order_relaxed);
}

void set_kernel_arch_for_testing(KernelArch arch) noexcept {
  if (arch == KernelArch::kAvx2 && !avx2_selectable()) return;
  active_slot().store(arch, std::memory_order_relaxed);
}

const char* kernel_arch_name(KernelArch arch) noexcept {
  switch (arch) {
    case KernelArch::kPortable:
      return "portable";
    case KernelArch::kAvx2:
      return "avx2";
  }
  return "unknown";
}

}  // namespace abc::simd
