#include "simd/simd_caps.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace abc::simd {

// __builtin_cpu_supports is a GCC/Clang builtin; other toolchains fall
// back to portable kernels.

bool avx2_supported() noexcept {
#if defined(__x86_64__) && defined(__GNUC__)
  return avx2_compiled() && __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool avx512ifma_supported() noexcept {
#if defined(__x86_64__) && defined(__GNUC__)
  // F for the 512-bit integer core, DQ for vpmullq, IFMA for vpmadd52.
  return avx512ifma_compiled() && __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512dq") &&
         __builtin_cpu_supports("avx512ifma");
#else
  return false;
#endif
}

namespace {

bool env_set(const char* name) noexcept {
  const char* v = std::getenv(name);
  return v != nullptr && std::strcmp(v, "0") != 0;
}

bool force_portable_env() noexcept {
  return env_set("ABC_FORCE_PORTABLE_KERNELS");
}

bool disable_avx512_env() noexcept {
  return env_set("ABC_DISABLE_AVX512_KERNELS");
}

std::atomic<KernelArch>& active_slot() noexcept {
  static std::atomic<KernelArch> slot{detected_kernel_arch()};
  return slot;
}

bool arch_selectable(KernelArch arch) noexcept {
  switch (arch) {
    case KernelArch::kPortable:
      return true;
    case KernelArch::kAvx2:
      return avx2_selectable();
    case KernelArch::kAvx512Ifma:
      return avx512ifma_selectable();
  }
  return false;
}

}  // namespace

bool avx2_selectable() noexcept {
  return avx2_supported() && !force_portable_env();
}

bool avx512ifma_selectable() noexcept {
  return avx512ifma_supported() && !force_portable_env() &&
         !disable_avx512_env();
}

KernelArch detected_kernel_arch() noexcept {
  if (avx512ifma_selectable()) return KernelArch::kAvx512Ifma;
  return avx2_selectable() ? KernelArch::kAvx2 : KernelArch::kPortable;
}

KernelArch active_kernel_arch() noexcept {
  return active_slot().load(std::memory_order_relaxed);
}

void set_kernel_arch_for_testing(KernelArch arch) noexcept {
  if (!arch_selectable(arch)) return;
  active_slot().store(arch, std::memory_order_relaxed);
}

const char* kernel_arch_name(KernelArch arch) noexcept {
  switch (arch) {
    case KernelArch::kPortable:
      return "portable";
    case KernelArch::kAvx2:
      return "avx2";
    case KernelArch::kAvx512Ifma:
      return "avx512ifma";
  }
  return "unknown";
}

}  // namespace abc::simd
