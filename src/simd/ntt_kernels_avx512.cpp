/// AVX-512/IFMA Harvey lazy-reduction NTT kernels. Compiled with
/// -mavx512f -mavx512dq -mavx512ifma when the toolchain accepts them (see
/// CMakeLists); otherwise this TU degrades to AVX2 forwarders and
/// avx512ifma_compiled() reports false, so the dispatcher never routes
/// here.
///
/// Same stage structure as the AVX2 TU but eight butterflies per iteration
/// and the base-2^52 lazy Shoup product (avx512_math.hpp): the 52-bit
/// twiddle quotients are L.w_shoup[i] >> 12, derived in-register — the
/// NttLayout carries no extra tables for this tier. The base-52 contract
/// needs every multiplier input < 2^52; lazy forward values reach 4q, so
/// the dispatcher only routes here for q < 2^50
/// (DyadicModulus::kIfmaMaxPrimeBits) and falls back to AVX2 for wider
/// primes. Stages with t < 8 reuse the portable scalar code — 3/log_n of
/// the work.

#include "simd/kernels_avx2.hpp"
#include "simd/kernels_avx512.hpp"
#include "simd/ntt_kernels.hpp"
#include "simd/simd_caps.hpp"

#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__AVX512IFMA__)

#include "simd/avx512_math.hpp"

namespace abc::simd {

bool avx512ifma_compiled() noexcept { return true; }

namespace {

using avx512::cond_sub;
using avx512::load;
using avx512::shoup52_mul_lazy;
using avx512::splat;
using avx512::store;

void reduce_from_4q_avx512(u64* a, std::size_t n, u64 q) {
  const __m512i vq = splat(q);
  const __m512i v2q = splat(2 * q);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m512i v = load(a + j);
    v = cond_sub(v, v2q);
    v = cond_sub(v, vq);
    store(a + j, v);
  }
  if (j < n) reduce_from_4q_portable(a + j, n - j, q);
}

}  // namespace

void ntt_forward_lazy_avx512(const NttLayout& L, u64* a) {
  const __m512i vq = splat(L.q);
  const __m512i v2q = splat(2 * L.q);
  int s = 0;
  for (; s < L.log_n; ++s) {
    const std::size_t m = std::size_t{1} << s;
    const std::size_t t = L.n >> (s + 1);
    if (t < 8) break;
    for (std::size_t i = 0; i < m; ++i) {
      const __m512i w = splat(L.w[m + i]);
      const __m512i wsh52 = splat(L.w_shoup[m + i] >> 12);
      u64* x = a + 2 * i * t;
      u64* y = x + t;
      for (std::size_t j = 0; j < t; j += 8) {
        __m512i vx = load(x + j);
        const __m512i vy = load(y + j);                          // < 4q < 2^52
        vx = cond_sub(vx, v2q);                                  // < 2q
        const __m512i vv = shoup52_mul_lazy(vy, w, wsh52, vq);   // < 2q
        store(x + j, _mm512_add_epi64(vx, vv));                  // < 4q
        store(y + j,
              _mm512_sub_epi64(_mm512_add_epi64(vx, v2q), vv));  // < 4q
      }
    }
  }
  if (s < L.log_n) ntt_forward_lazy_stages_portable(L, a, s, L.log_n);
  reduce_from_4q_avx512(a, L.n, L.q);
}

void ntt_inverse_lazy_avx512(const NttLayout& L, u64* a) {
  const __m512i vq = splat(L.q);
  const __m512i v2q = splat(2 * L.q);
  const int scalar_stages = L.log_n < 3 ? L.log_n : 3;  // t in {1, 2, 4}
  ntt_inverse_lazy_stages_portable(L, a, 0, scalar_stages);
  for (int s = scalar_stages; s < L.log_n; ++s) {
    const std::size_t t = std::size_t{1} << s;
    const std::size_t m = L.n >> (s + 1);
    for (std::size_t i = 0; i < m; ++i) {
      const __m512i w = splat(L.inv_w[m + i]);
      const __m512i wsh52 = splat(L.inv_w_shoup[m + i] >> 12);
      u64* x = a + 2 * i * t;
      u64* y = x + t;
      for (std::size_t j = 0; j < t; j += 8) {
        const __m512i vx = load(x + j);
        const __m512i vy = load(y + j);
        const __m512i sum = _mm512_add_epi64(vx, vy);            // < 4q
        store(x + j, cond_sub(sum, v2q));                        // < 2q
        const __m512i d =
            _mm512_sub_epi64(_mm512_add_epi64(vx, v2q), vy);     // < 4q
        store(y + j, shoup52_mul_lazy(d, w, wsh52, vq));         // < 2q
      }
    }
  }
  // N^{-1} scaling with full reduction.
  const __m512i ninv = splat(L.n_inv);
  const __m512i ninv_sh52 = splat(L.n_inv_shoup >> 12);
  std::size_t j = 0;
  for (; j + 8 <= L.n; j += 8) {
    const __m512i v = shoup52_mul_lazy(load(a + j), ninv, ninv_sh52, vq);
    store(a + j, cond_sub(v, vq));
  }
  for (; j < L.n; ++j) {
    u64 v = a[j] * L.n_inv - mul_hi(a[j], L.n_inv_shoup) * L.q;
    if (v >= L.q) v -= L.q;
    a[j] = v;
  }
}

}  // namespace abc::simd

#else  // AVX-512 flags unavailable: AVX2 forwarders, never selected at
       // runtime.

namespace abc::simd {

bool avx512ifma_compiled() noexcept { return false; }

void ntt_forward_lazy_avx512(const NttLayout& L, u64* a) {
  ntt_forward_lazy_avx2(L, a);
}
void ntt_inverse_lazy_avx512(const NttLayout& L, u64* a) {
  ntt_inverse_lazy_avx2(L, a);
}

}  // namespace abc::simd

#endif
