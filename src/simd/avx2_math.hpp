#pragma once

/// @file avx2_math.hpp
/// Shared AVX2 building blocks for the kernel TUs compiled with -mavx2.
/// AVX2 has no 64x64 multiply, so products are assembled from the four
/// 32x32 partials _mm256_mul_epu32 provides; unsigned 64-bit compares are
/// emulated by biasing both sides with the sign bit.
///
/// Only include from translation units compiled with AVX2 enabled.

#include <immintrin.h>

#include "common/types.hpp"

namespace abc::simd::avx2 {

inline __m256i splat(u64 v) noexcept {
  return _mm256_set1_epi64x(static_cast<long long>(v));
}

/// Low 64 bits of the lane-wise 64x64 product.
inline __m256i mul_lo64(__m256i x, __m256i y) noexcept {
  const __m256i x_hi = _mm256_srli_epi64(x, 32);
  const __m256i y_hi = _mm256_srli_epi64(y, 32);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(x_hi, y),
                                         _mm256_mul_epu32(x, y_hi));
  return _mm256_add_epi64(_mm256_mul_epu32(x, y),
                          _mm256_slli_epi64(cross, 32));
}

/// High 64 bits of the lane-wise 64x64 product.
inline __m256i mul_hi64(__m256i x, __m256i y) noexcept {
  const __m256i mask32 = _mm256_set1_epi64x(0xFFFFFFFFLL);
  const __m256i x_hi = _mm256_srli_epi64(x, 32);
  const __m256i y_hi = _mm256_srli_epi64(y, 32);
  const __m256i ll = _mm256_mul_epu32(x, y);
  const __m256i lh = _mm256_mul_epu32(x, y_hi);
  const __m256i hl = _mm256_mul_epu32(x_hi, y);
  const __m256i hh = _mm256_mul_epu32(x_hi, y_hi);
  // carry chain: t collects the bits that straddle the 32-bit boundary.
  __m256i t = _mm256_add_epi64(_mm256_srli_epi64(ll, 32),
                               _mm256_and_si256(lh, mask32));
  t = _mm256_add_epi64(t, _mm256_and_si256(hl, mask32));
  __m256i hi = _mm256_add_epi64(hh, _mm256_srli_epi64(t, 32));
  hi = _mm256_add_epi64(hi, _mm256_srli_epi64(lh, 32));
  return _mm256_add_epi64(hi, _mm256_srli_epi64(hl, 32));
}

/// Both halves of the lane-wise 64x64 product (shares the partials).
inline void mul_wide64(__m256i x, __m256i y, __m256i& lo,
                       __m256i& hi) noexcept {
  const __m256i mask32 = _mm256_set1_epi64x(0xFFFFFFFFLL);
  const __m256i x_hi = _mm256_srli_epi64(x, 32);
  const __m256i y_hi = _mm256_srli_epi64(y, 32);
  const __m256i ll = _mm256_mul_epu32(x, y);
  const __m256i lh = _mm256_mul_epu32(x, y_hi);
  const __m256i hl = _mm256_mul_epu32(x_hi, y);
  const __m256i hh = _mm256_mul_epu32(x_hi, y_hi);
  __m256i t = _mm256_add_epi64(_mm256_srli_epi64(ll, 32),
                               _mm256_and_si256(lh, mask32));
  t = _mm256_add_epi64(t, _mm256_and_si256(hl, mask32));
  lo = _mm256_or_si256(_mm256_slli_epi64(t, 32),
                       _mm256_and_si256(ll, mask32));
  hi = _mm256_add_epi64(hh, _mm256_srli_epi64(t, 32));
  hi = _mm256_add_epi64(hi, _mm256_srli_epi64(lh, 32));
  hi = _mm256_add_epi64(hi, _mm256_srli_epi64(hl, 32));
}

/// Lane mask: all-ones where a < b, treating lanes as unsigned 64-bit.
inline __m256i cmplt_epu64(__m256i a, __m256i b) noexcept {
  const __m256i sign = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  return _mm256_cmpgt_epi64(_mm256_xor_si256(b, sign),
                            _mm256_xor_si256(a, sign));
}

/// v - (v >= bound ? bound : 0), unsigned lanes.
inline __m256i cond_sub(__m256i v, __m256i bound) noexcept {
  const __m256i lt = cmplt_epu64(v, bound);
  return _mm256_sub_epi64(v, _mm256_andnot_si256(lt, bound));
}

/// Lazy Shoup product per lane: x*w - mulhi(x, w_shoup)*q, result < 2q.
inline __m256i shoup_mul_lazy(__m256i x, __m256i w, __m256i w_shoup,
                              __m256i q) noexcept {
  const __m256i h = mul_hi64(x, w_shoup);
  return _mm256_sub_epi64(mul_lo64(x, w), mul_lo64(h, q));
}

}  // namespace abc::simd::avx2
