#pragma once

/// @file ntt_kernels.hpp
/// Harvey lazy-reduction NTT kernels (portable + AVX2, runtime-dispatched).
///
/// Algorithm (Harvey, "Faster arithmetic for number-theoretic transforms"):
/// butterflies keep coefficients *lazily* reduced instead of canonical —
///
///   * forward (Cooley-Tukey, natural -> bit-reversed): inputs < q, every
///     intermediate value stays in [0, 4q); one correction pass at the end
///     maps the result back to [0, q);
///   * inverse (Gentleman-Sande, bit-reversed -> natural): intermediates
///     stay in [0, 2q); the final N^{-1} scaling fully reduces.
///
/// The twiddle multiplication is a lazy Shoup product
///     r = x*w - floor(x*w_shoup / 2^64)*q   in [0, 2q)
/// which is branch-free and valid for ANY 64-bit x as long as w < q (see
/// rns::ShoupMul::mul_lazy). Laziness needs 4q < 2^64, i.e. q < 2^62 —
/// exactly the Modulus bound.
///
/// Outputs are bit-identical to the eager reference kernels
/// (NttTables::forward_eager / inverse_eager): both produce the canonical
/// representative of the same transform.

#include <cstddef>

#include "common/types.hpp"

namespace abc::simd {

/// Non-owning view of one prime's NTT tables in the flat streaming layout:
/// four parallel arrays indexed by bit-reversed twiddle index (entry i holds
/// psi^bit_reverse(i) and its Shoup quotient; inv_* hold the inverses).
struct NttLayout {
  const u64* w = nullptr;         // forward twiddles, w[i] < q
  const u64* w_shoup = nullptr;   // floor(w[i] * 2^64 / q)
  const u64* inv_w = nullptr;     // inverse twiddles
  const u64* inv_w_shoup = nullptr;
  u64 q = 0;                      // prime modulus, q < 2^62
  u64 n_inv = 0;                  // N^{-1} mod q
  u64 n_inv_shoup = 0;            // Shoup quotient of n_inv
  std::size_t n = 0;              // transform length, power of two
  int log_n = 0;
};

/// In-place forward NTT, natural -> bit-reversed order, result in [0, q).
/// Dispatches to the active kernel arch (simd_caps.hpp).
void ntt_forward_lazy(const NttLayout& L, u64* a);

/// In-place inverse NTT, bit-reversed -> natural order, including the
/// N^{-1} scaling; result in [0, q).
void ntt_inverse_lazy(const NttLayout& L, u64* a);

// -- portable kernels (always available; the reference the AVX2 TU is
//    tested against, and the escape-hatch path) ------------------------------

void ntt_forward_lazy_portable(const NttLayout& L, u64* a);
void ntt_inverse_lazy_portable(const NttLayout& L, u64* a);

/// Runs forward stages [stage_begin, stage_end) (stage s merges blocks of
/// size n >> s; stage 0 is the first) WITHOUT the final correction pass.
/// After k stages every value is < 4q. Building block of the full portable
/// kernel, exposed so tests can verify the lazy-bound invariant stage by
/// stage.
void ntt_forward_lazy_stages_portable(const NttLayout& L, u64* a,
                                      int stage_begin, int stage_end);

/// Inverse counterpart (stage s has butterfly gap 1 << s) without the final
/// N^{-1} scaling; every value stays < 2q.
void ntt_inverse_lazy_stages_portable(const NttLayout& L, u64* a,
                                      int stage_begin, int stage_end);

/// The forward correction pass: maps [0, 4q) values to [0, q).
void reduce_from_4q_portable(u64* a, std::size_t n, u64 q);

}  // namespace abc::simd
