#include "simd/ntt_kernels.hpp"

#include "simd/dyadic_kernels.hpp"
#include "simd/kernels_avx2.hpp"
#include "simd/kernels_avx512.hpp"
#include "simd/simd_caps.hpp"

namespace abc::simd {

namespace {

/// Lazy Shoup product: x*w mod q up to a multiple of q, result < 2q.
/// Valid for any 64-bit x as long as w < q (Harvey's bound).
inline u64 shoup_mul_lazy(u64 x, u64 w, u64 w_shoup, u64 q) noexcept {
  return x * w - mul_hi(x, w_shoup) * q;
}

}  // namespace

void ntt_forward_lazy_stages_portable(const NttLayout& L, u64* a,
                                      int stage_begin, int stage_end) {
  const u64 q = L.q;
  const u64 two_q = 2 * q;
  for (int s = stage_begin; s < stage_end; ++s) {
    const std::size_t m = std::size_t{1} << s;
    const std::size_t t = L.n >> (s + 1);
    for (std::size_t i = 0; i < m; ++i) {
      const u64 w = L.w[m + i];
      const u64 w_shoup = L.w_shoup[m + i];
      u64* x = a + 2 * i * t;
      u64* y = x + t;
      for (std::size_t j = 0; j < t; ++j) {
        // Harvey CT butterfly: x, y < 4q in; outputs < 4q.
        u64 u = x[j];
        if (u >= two_q) u -= two_q;                        // < 2q
        const u64 v = shoup_mul_lazy(y[j], w, w_shoup, q);  // < 2q
        x[j] = u + v;                                       // < 4q
        y[j] = u + two_q - v;                               // < 4q
      }
    }
  }
}

void reduce_from_4q_portable(u64* a, std::size_t n, u64 q) {
  const u64 two_q = 2 * q;
  for (std::size_t j = 0; j < n; ++j) {
    u64 v = a[j];
    if (v >= two_q) v -= two_q;
    if (v >= q) v -= q;
    a[j] = v;
  }
}

void ntt_forward_lazy_portable(const NttLayout& L, u64* a) {
  ntt_forward_lazy_stages_portable(L, a, 0, L.log_n);
  reduce_from_4q_portable(a, L.n, L.q);
}

void ntt_inverse_lazy_stages_portable(const NttLayout& L, u64* a,
                                      int stage_begin, int stage_end) {
  const u64 q = L.q;
  const u64 two_q = 2 * q;
  for (int s = stage_begin; s < stage_end; ++s) {
    const std::size_t t = std::size_t{1} << s;
    const std::size_t m = L.n >> (s + 1);
    for (std::size_t i = 0; i < m; ++i) {
      const u64 w = L.inv_w[m + i];
      const u64 w_shoup = L.inv_w_shoup[m + i];
      u64* x = a + 2 * i * t;
      u64* y = x + t;
      for (std::size_t j = 0; j < t; ++j) {
        // Harvey GS butterfly: x, y < 2q in; outputs < 2q.
        const u64 u = x[j];
        const u64 v = y[j];
        u64 sum = u + v;                                   // < 4q
        if (sum >= two_q) sum -= two_q;                    // < 2q
        x[j] = sum;
        y[j] = shoup_mul_lazy(u + two_q - v, w, w_shoup, q);  // < 2q
      }
    }
  }
}

void ntt_inverse_lazy_portable(const NttLayout& L, u64* a) {
  ntt_inverse_lazy_stages_portable(L, a, 0, L.log_n);
  // N^{-1} scaling with full reduction: lazy product < 2q, one conditional
  // subtraction lands on the canonical representative.
  const u64 q = L.q;
  for (std::size_t j = 0; j < L.n; ++j) {
    u64 v = shoup_mul_lazy(a[j], L.n_inv, L.n_inv_shoup, q);
    if (v >= q) v -= q;
    a[j] = v;
  }
}

namespace {

/// The 52-bit butterfly datapath needs lazy 4q-representatives to fit the
/// vpmadd52 operand window: q < 2^kIfmaMaxPrimeBits. Wider primes stay on
/// the AVX-512 tier but route to the AVX2 butterflies per call.
inline bool ifma_ntt_ok(const NttLayout& L) noexcept {
  return L.q < (u64{1} << DyadicModulus::kIfmaMaxPrimeBits);
}

}  // namespace

void ntt_forward_lazy(const NttLayout& L, u64* a) {
  switch (active_kernel_arch()) {
    case KernelArch::kAvx512Ifma:
      if (ifma_ntt_ok(L)) return ntt_forward_lazy_avx512(L, a);
      [[fallthrough]];
    case KernelArch::kAvx2:
      return ntt_forward_lazy_avx2(L, a);
    case KernelArch::kPortable:
      break;
  }
  ntt_forward_lazy_portable(L, a);
}

void ntt_inverse_lazy(const NttLayout& L, u64* a) {
  switch (active_kernel_arch()) {
    case KernelArch::kAvx512Ifma:
      if (ifma_ntt_ok(L)) return ntt_inverse_lazy_avx512(L, a);
      [[fallthrough]];
    case KernelArch::kAvx2:
      return ntt_inverse_lazy_avx2(L, a);
    case KernelArch::kPortable:
      break;
  }
  ntt_inverse_lazy_portable(L, a);
}

}  // namespace abc::simd
