/// AVX2 batched dyadic kernels (see dyadic_kernels.hpp for the algorithm).
/// Compiled with -mavx2 on x86-64; portable forwarders otherwise.

#include "simd/dyadic_kernels.hpp"
#include "simd/kernels_avx2.hpp"

#if defined(__AVX2__)

#include "simd/avx2_math.hpp"

namespace abc::simd {

namespace {

using avx2::cmplt_epu64;
using avx2::cond_sub;
using avx2::mul_hi64;
using avx2::mul_lo64;
using avx2::mul_wide64;
using avx2::shoup_mul_lazy;
using avx2::splat;

inline __m256i load(const u64* p) noexcept {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}
inline void store(u64* p, __m256i v) noexcept {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

/// Canonical product per lane via the shifted-Barrett constant:
/// r = lo64(a*b) - mulhi((a*b) >> shift, ratio)*q, then <= 2 corrections.
inline __m256i barrett_mul(__m256i a, __m256i b, __m256i vq, __m256i v2q,
                           __m256i ratio, int shift) noexcept {
  __m256i z_lo, z_hi;
  mul_wide64(a, b, z_lo, z_hi);
  const __m256i zh = _mm256_or_si256(_mm256_slli_epi64(z_hi, 64 - shift),
                                     _mm256_srli_epi64(z_lo, shift));
  const __m256i qhat = mul_hi64(zh, ratio);
  __m256i r = _mm256_sub_epi64(z_lo, mul_lo64(qhat, vq));  // < 3q
  r = cond_sub(r, v2q);
  return cond_sub(r, vq);
}

}  // namespace

void dyadic_add_avx2(const DyadicModulus& m, u64* dst, const u64* src,
                     std::size_t n) {
  const __m256i vq = splat(m.q);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    store(dst + j, cond_sub(_mm256_add_epi64(load(dst + j), load(src + j)),
                            vq));
  }
  if (j < n) dyadic_add_portable(m, dst + j, src + j, n - j);
}

void dyadic_sub_avx2(const DyadicModulus& m, u64* dst, const u64* src,
                     std::size_t n) {
  const __m256i vq = splat(m.q);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i d = load(dst + j);
    const __m256i s = load(src + j);
    const __m256i borrow = _mm256_and_si256(cmplt_epu64(d, s), vq);
    store(dst + j, _mm256_add_epi64(_mm256_sub_epi64(d, s), borrow));
  }
  if (j < n) dyadic_sub_portable(m, dst + j, src + j, n - j);
}

void dyadic_mul_avx2(const DyadicModulus& m, u64* dst, const u64* src,
                     std::size_t n) {
  const __m256i vq = splat(m.q);
  const __m256i v2q = splat(m.two_q);
  const __m256i ratio = splat(m.ratio);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    store(dst + j,
          barrett_mul(load(dst + j), load(src + j), vq, v2q, ratio, m.shift));
  }
  if (j < n) dyadic_mul_portable(m, dst + j, src + j, n - j);
}

void dyadic_fma_avx2(const DyadicModulus& m, u64* dst, const u64* a,
                     const u64* b, std::size_t n) {
  const __m256i vq = splat(m.q);
  const __m256i v2q = splat(m.two_q);
  const __m256i ratio = splat(m.ratio);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i p =
        barrett_mul(load(a + j), load(b + j), vq, v2q, ratio, m.shift);
    store(dst + j, cond_sub(_mm256_add_epi64(load(dst + j), p), vq));
  }
  if (j < n) dyadic_fma_portable(m, dst + j, a + j, b + j, n - j);
}

void dyadic_negate_avx2(const DyadicModulus& m, u64* dst, std::size_t n) {
  const __m256i vq = splat(m.q);
  const __m256i zero = _mm256_setzero_si256();
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i v = load(dst + j);
    const __m256i nz = _mm256_cmpeq_epi64(v, zero);
    store(dst + j, _mm256_andnot_si256(nz, _mm256_sub_epi64(vq, v)));
  }
  if (j < n) dyadic_negate_portable(m, dst + j, n - j);
}

void dyadic_mul_scalar_avx2(const DyadicModulus& m, u64* dst, std::size_t n,
                            u64 s, u64 s_shoup) {
  const __m256i vq = splat(m.q);
  const __m256i vs = splat(s);
  const __m256i vsh = splat(s_shoup);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i r = shoup_mul_lazy(load(dst + j), vs, vsh, vq);
    store(dst + j, cond_sub(r, vq));
  }
  if (j < n) dyadic_mul_scalar_portable(m, dst + j, n - j, s, s_shoup);
}

// Kept scalar on purpose: with -mavx2 the vectorizer turns this gather
// loop into vpgatherqq, whose per-element cost exceeds two scalar loads
// per cycle once the indexed array spills L1.
__attribute__((optimize("no-tree-vectorize"))) static void stage_permuted(
    u64* tmp, const u64* digit, const u32* perm, std::size_t len) {
  for (std::size_t j = 0; j < len; ++j) tmp[j] = digit[perm[j]];
}

void dyadic_fma_accumulate_avx2(const DyadicModulus& m, u64* acc0, u64* acc1,
                                const u64* digit, const u64* b, const u64* a,
                                const u32* perm, std::size_t n) {
  // Block-staged rather than vpgatherqq-based: a scalar gather into an
  // L1-resident block beats the AVX2 gather's per-element cost, and the
  // interleaved inner loop then loads each staged digit vector once and
  // feeds both accumulations, making a single pass over the
  // accumulator/key streams (the unfused chain stages a full-size
  // temporary and walks it twice).
  const __m256i vq = splat(m.q);
  const __m256i v2q = splat(m.two_q);
  const __m256i ratio = splat(m.ratio);
  constexpr std::size_t kBlock = 2048;
  alignas(32) u64 tmp[kBlock];
  for (std::size_t j0 = 0; j0 < n; j0 += kBlock) {
    const std::size_t len = j0 + kBlock <= n ? kBlock : n - j0;
    const u64* d = digit + j0;
    if (perm != nullptr) {
      stage_permuted(tmp, digit, perm + j0, len);
      d = tmp;
    }
    std::size_t j = 0;
    for (; j + 4 <= len; j += 4) {
      const __m256i vd = load(d + j);
      const __m256i p0 =
          barrett_mul(vd, load(b + j0 + j), vq, v2q, ratio, m.shift);
      store(acc0 + j0 + j,
            cond_sub(_mm256_add_epi64(load(acc0 + j0 + j), p0), vq));
      const __m256i p1 =
          barrett_mul(vd, load(a + j0 + j), vq, v2q, ratio, m.shift);
      store(acc1 + j0 + j,
            cond_sub(_mm256_add_epi64(load(acc1 + j0 + j), p1), vq));
    }
    if (j < len) {
      dyadic_fma_portable(m, acc0 + j0 + j, d + j, b + j0 + j, len - j);
      dyadic_fma_portable(m, acc1 + j0 + j, d + j, a + j0 + j, len - j);
    }
  }
}

void dyadic_negate_add_avx2(const DyadicModulus& m, u64* dst, const u64* src,
                            std::size_t n) {
  const __m256i vq = splat(m.q);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i s = load(src + j);
    const __m256i d = load(dst + j);
    const __m256i borrow = _mm256_and_si256(cmplt_epu64(s, d), vq);
    store(dst + j, _mm256_add_epi64(_mm256_sub_epi64(s, d), borrow));
  }
  if (j < n) dyadic_negate_add_portable(m, dst + j, src + j, n - j);
}

void dyadic_sub_mul_scalar_avx2(const DyadicModulus& m, u64* dst,
                                const u64* src, std::size_t n, u64 s,
                                u64 s_shoup) {
  const __m256i vq = splat(m.q);
  const __m256i vs = splat(s);
  const __m256i vsh = splat(s_shoup);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i d = load(dst + j);
    const __m256i v = load(src + j);
    const __m256i borrow = _mm256_and_si256(cmplt_epu64(d, v), vq);
    const __m256i t = _mm256_add_epi64(_mm256_sub_epi64(d, v), borrow);
    store(dst + j, cond_sub(shoup_mul_lazy(t, vs, vsh, vq), vq));
  }
  if (j < n)
    dyadic_sub_mul_scalar_portable(m, dst + j, src + j, n - j, s, s_shoup);
}

void dyadic_fma_into_avx2(const DyadicModulus& m, u64* out, const u64* base,
                          const u64* a, const u64* b, std::size_t n) {
  const __m256i vq = splat(m.q);
  const __m256i v2q = splat(m.two_q);
  const __m256i ratio = splat(m.ratio);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i p =
        barrett_mul(load(a + j), load(b + j), vq, v2q, ratio, m.shift);
    store(out + j, cond_sub(_mm256_add_epi64(load(base + j), p), vq));
  }
  if (j < n)
    dyadic_fma_into_portable(m, out + j, base + j, a + j, b + j, n - j);
}

}  // namespace abc::simd

#else  // !__AVX2__: portable forwarders, never selected at runtime.

namespace abc::simd {

void dyadic_add_avx2(const DyadicModulus& m, u64* dst, const u64* src,
                     std::size_t n) {
  dyadic_add_portable(m, dst, src, n);
}
void dyadic_sub_avx2(const DyadicModulus& m, u64* dst, const u64* src,
                     std::size_t n) {
  dyadic_sub_portable(m, dst, src, n);
}
void dyadic_mul_avx2(const DyadicModulus& m, u64* dst, const u64* src,
                     std::size_t n) {
  dyadic_mul_portable(m, dst, src, n);
}
void dyadic_fma_avx2(const DyadicModulus& m, u64* dst, const u64* a,
                     const u64* b, std::size_t n) {
  dyadic_fma_portable(m, dst, a, b, n);
}
void dyadic_negate_avx2(const DyadicModulus& m, u64* dst, std::size_t n) {
  dyadic_negate_portable(m, dst, n);
}
void dyadic_mul_scalar_avx2(const DyadicModulus& m, u64* dst, std::size_t n,
                            u64 s, u64 s_shoup) {
  dyadic_mul_scalar_portable(m, dst, n, s, s_shoup);
}
void dyadic_fma_accumulate_avx2(const DyadicModulus& m, u64* acc0, u64* acc1,
                                const u64* digit, const u64* b, const u64* a,
                                const u32* perm, std::size_t n) {
  dyadic_fma_accumulate_portable(m, acc0, acc1, digit, b, a, perm, n);
}
void dyadic_negate_add_avx2(const DyadicModulus& m, u64* dst, const u64* src,
                            std::size_t n) {
  dyadic_negate_add_portable(m, dst, src, n);
}
void dyadic_sub_mul_scalar_avx2(const DyadicModulus& m, u64* dst,
                                const u64* src, std::size_t n, u64 s,
                                u64 s_shoup) {
  dyadic_sub_mul_scalar_portable(m, dst, src, n, s, s_shoup);
}
void dyadic_fma_into_avx2(const DyadicModulus& m, u64* out, const u64* base,
                          const u64* a, const u64* b, std::size_t n) {
  dyadic_fma_into_portable(m, out, base, a, b, n);
}

}  // namespace abc::simd

#endif
