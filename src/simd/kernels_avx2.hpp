#pragma once

/// @file kernels_avx2.hpp
/// Internal declarations of the AVX2 kernel entry points, implemented in
/// ntt_kernels_avx2.cpp / dyadic_kernels_avx2.cpp (compiled with -mavx2).
/// Never call these directly — go through the dispatchers in
/// ntt_kernels.hpp / dyadic_kernels.hpp, which check simd_caps first.

#include <cstddef>

#include "common/types.hpp"

namespace abc::simd {

struct NttLayout;
struct DyadicModulus;

void ntt_forward_lazy_avx2(const NttLayout& L, u64* a);
void ntt_inverse_lazy_avx2(const NttLayout& L, u64* a);

void dyadic_add_avx2(const DyadicModulus& m, u64* dst, const u64* src,
                     std::size_t n);
void dyadic_sub_avx2(const DyadicModulus& m, u64* dst, const u64* src,
                     std::size_t n);
void dyadic_mul_avx2(const DyadicModulus& m, u64* dst, const u64* src,
                     std::size_t n);
void dyadic_fma_avx2(const DyadicModulus& m, u64* dst, const u64* a,
                     const u64* b, std::size_t n);
void dyadic_negate_avx2(const DyadicModulus& m, u64* dst, std::size_t n);
void dyadic_mul_scalar_avx2(const DyadicModulus& m, u64* dst, std::size_t n,
                            u64 s, u64 s_shoup);
void dyadic_fma_accumulate_avx2(const DyadicModulus& m, u64* acc0, u64* acc1,
                                const u64* digit, const u64* b, const u64* a,
                                const u32* perm, std::size_t n);
void dyadic_negate_add_avx2(const DyadicModulus& m, u64* dst, const u64* src,
                            std::size_t n);
void dyadic_sub_mul_scalar_avx2(const DyadicModulus& m, u64* dst,
                                const u64* src, std::size_t n, u64 s,
                                u64 s_shoup);
void dyadic_fma_into_avx2(const DyadicModulus& m, u64* out, const u64* base,
                          const u64* a, const u64* b, std::size_t n);

}  // namespace abc::simd
