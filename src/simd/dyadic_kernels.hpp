#pragma once

/// @file dyadic_kernels.hpp
/// Batched element-wise (dyadic) modular kernels over one RNS limb, with a
/// portable and an AVX2 implementation behind a runtime dispatcher.
///
/// The seed code reduced every product with Modulus::reduce_128 — a
/// two-word Barrett using floor(2^128/q) that costs ~5 wide multiplies per
/// element. These kernels hoist a single-word *shifted* Barrett constant
/// per limb instead:
///
///     shift = bit_count(q) - 1,   ratio = floor(2^(64+shift) / q)
///     z    = a * b                       (z < q^2)
///     zh   = z >> shift                  (fits in 64 bits: zh < 2q)
///     qhat = mulhi(zh, ratio)            (qhat in [Q-2, Q], Q = floor(z/q))
///     r    = lo64(z) - qhat * q          (r < 3q; <= 2 corrections)
///
/// which is 3 wide multiplies and vectorizes (the AVX2 path assembles the
/// 64x64 products from _mm256_mul_epu32 partials). Scalar-by-vector
/// products use a Shoup pair instead (1 mulhi + 2 mullo). All kernels
/// return canonical [0, q) values, bit-identical to the seed's
/// Modulus::add/sub/mul results.

#include <cstddef>

#include "common/types.hpp"

namespace abc::rns {
class Modulus;
}

namespace abc::simd {

/// Per-limb word constants the dyadic kernels run on. Cheap to build (one
/// 128-bit division); callers typically make one per limb per kernel call.
struct DyadicModulus {
  u64 q = 0;
  u64 two_q = 0;
  u64 ratio = 0;  // floor(2^(64+shift) / q)
  int shift = 0;  // bit_count(q) - 1

  /// Requires a non-power-of-two modulus (all NTT primes qualify) so the
  /// shifted ratio fits in one word.
  static DyadicModulus make(const rns::Modulus& q);

  /// Canonical dyadic product via the shifted Barrett constant.
  u64 mul(u64 a, u64 b) const noexcept {
    const u128 z = mul_wide(a, b);
    const u64 zh = static_cast<u64>(z >> shift);
    const u64 qhat = mul_hi(zh, ratio);
    u64 r = lo64(z) - qhat * q;
    if (r >= two_q) r -= two_q;
    if (r >= q) r -= q;
    return r;
  }
};

/// dst[j] = dst[j] + src[j] (mod q); inputs and outputs canonical.
void dyadic_add(const DyadicModulus& m, u64* dst, const u64* src,
                std::size_t n);
/// dst[j] = dst[j] - src[j] (mod q).
void dyadic_sub(const DyadicModulus& m, u64* dst, const u64* src,
                std::size_t n);
/// dst[j] = dst[j] * src[j] (mod q).
void dyadic_mul(const DyadicModulus& m, u64* dst, const u64* src,
                std::size_t n);
/// dst[j] += a[j] * b[j] (mod q), single pass.
void dyadic_fma(const DyadicModulus& m, u64* dst, const u64* a, const u64* b,
                std::size_t n);
/// dst[j] = -dst[j] (mod q).
void dyadic_negate(const DyadicModulus& m, u64* dst, std::size_t n);
/// dst[j] = dst[j] * s (mod q); s must be reduced (< q), s_shoup its Shoup
/// quotient floor(s * 2^64 / q).
void dyadic_mul_scalar(const DyadicModulus& m, u64* dst, std::size_t n, u64 s,
                       u64 s_shoup);

// -- portable kernels (dispatch targets; exposed for parity tests) ----------

void dyadic_add_portable(const DyadicModulus& m, u64* dst, const u64* src,
                         std::size_t n);
void dyadic_sub_portable(const DyadicModulus& m, u64* dst, const u64* src,
                         std::size_t n);
void dyadic_mul_portable(const DyadicModulus& m, u64* dst, const u64* src,
                         std::size_t n);
void dyadic_fma_portable(const DyadicModulus& m, u64* dst, const u64* a,
                         const u64* b, std::size_t n);
void dyadic_negate_portable(const DyadicModulus& m, u64* dst, std::size_t n);
void dyadic_mul_scalar_portable(const DyadicModulus& m, u64* dst,
                                std::size_t n, u64 s, u64 s_shoup);

}  // namespace abc::simd
