#pragma once

/// @file dyadic_kernels.hpp
/// Batched element-wise (dyadic) modular kernels over one RNS limb, with
/// portable, AVX2, and AVX-512/IFMA implementations behind a runtime
/// dispatcher.
///
/// The seed code reduced every product with Modulus::reduce_128 — a
/// two-word Barrett using floor(2^128/q) that costs ~5 wide multiplies per
/// element. These kernels hoist a single-word *shifted* Barrett constant
/// per limb instead:
///
///     shift = bit_count(q) - 1,   ratio = floor(2^(64+shift) / q)
///     z    = a * b                       (z < q^2)
///     zh   = z >> shift                  (fits in 64 bits: zh < 2q)
///     qhat = mulhi(zh, ratio)            (qhat in [Q-2, Q], Q = floor(z/q))
///     r    = lo64(z) - qhat * q          (r < 3q; <= 2 corrections)
///
/// which is 3 wide multiplies and vectorizes (the AVX2 path assembles the
/// 64x64 products from _mm256_mul_epu32 partials; the AVX-512/IFMA path
/// runs the same recurrence in base 2^52 on vpmadd52 with ratio52 =
/// ratio >> 12, see avx512_math.hpp). Scalar-by-vector products use a
/// Shoup pair instead (1 mulhi + 2 mullo). All kernels return canonical
/// [0, q) values, bit-identical to the seed's Modulus::add/sub/mul results
/// on every tier.
///
/// ## Fused passes
///
/// The hot paths above this layer chain adjacent dyadic ops over the same
/// buffers (gadget accumulation: permute + fma + fma; encrypt/keygen
/// combines: negate + add; mod-down and rescale tails: sub + mul_scalar;
/// decrypt phase: copy + fma). Each chain re-streams its operands from
/// memory once per op, and these loops are memory-bound — so the fused
/// kernels below collapse each chain into a single pass (EFFACT's
/// instruction-fusion argument applied at this seam):
///
///   * dyadic_fma_accumulate — acc0 += digit.b, acc1 += digit.a with one
///     load of `digit` per element, optionally gathered through an
///     evaluation-domain permutation (the hoisted-rotation inner loop);
///   * dyadic_negate_add    — dst = src - dst (== -dst + src);
///   * dyadic_sub_mul_scalar — dst = (dst - src) * s, Shoup scalar;
///   * dyadic_fma_into      — out = base + a*b (out-of-place, no
///     separate copy pass).
///
/// Fused results are bit-identical to the unfused chains (same per-element
/// operation order, canonical outputs).
///
/// ## IFMA prime constraint
///
/// The 52-bit multiply kernels require lazy 2q/4q-representatives and the
/// shifted quotient zh < 2q to fit 52-bit operands, i.e. prime bit-count
/// <= kIfmaMaxPrimeBits (50). DyadicModulus::make computes `ifma_ok` once
/// per limb (PolyContext caches the struct per limb, so no call site ever
/// rebuilds constants); the dispatcher checks the flag and falls back to
/// the AVX2 kernels for wider primes without leaving the AVX-512 tier.

#include <cstddef>

#include "common/types.hpp"

namespace abc::rns {
class Modulus;
}

namespace abc::simd {

/// Per-limb word constants the dyadic kernels run on. Cheap to build (one
/// 128-bit division) but built exactly once per limb per context
/// (PolyContext::dyadic); transient call sites may still make their own.
struct DyadicModulus {
  /// Widest prime (bit count) the 52-bit IFMA multiply datapath accepts:
  /// lazy values reach 4q and the Barrett quotient estimate 2q, both of
  /// which must stay below 2^52.
  static constexpr int kIfmaMaxPrimeBits = 50;

  u64 q = 0;
  u64 two_q = 0;
  u64 ratio = 0;    // floor(2^(64+shift) / q)
  u64 ratio52 = 0;  // ratio >> 12 == floor(2^(52+shift) / q), IFMA tier
  int shift = 0;    // bit_count(q) - 1
  bool ifma_ok = false;  // bit_count(q) <= kIfmaMaxPrimeBits

  /// Requires a non-power-of-two modulus (all NTT primes qualify) so the
  /// shifted ratio fits in one word.
  static DyadicModulus make(const rns::Modulus& q);

  /// Canonical dyadic product via the shifted Barrett constant.
  u64 mul(u64 a, u64 b) const noexcept {
    const u128 z = mul_wide(a, b);
    const u64 zh = static_cast<u64>(z >> shift);
    const u64 qhat = mul_hi(zh, ratio);
    u64 r = lo64(z) - qhat * q;
    if (r >= two_q) r -= two_q;
    if (r >= q) r -= q;
    return r;
  }
};

/// dst[j] = dst[j] + src[j] (mod q); inputs and outputs canonical.
void dyadic_add(const DyadicModulus& m, u64* dst, const u64* src,
                std::size_t n);
/// dst[j] = dst[j] - src[j] (mod q).
void dyadic_sub(const DyadicModulus& m, u64* dst, const u64* src,
                std::size_t n);
/// dst[j] = dst[j] * src[j] (mod q).
void dyadic_mul(const DyadicModulus& m, u64* dst, const u64* src,
                std::size_t n);
/// dst[j] += a[j] * b[j] (mod q), single pass.
void dyadic_fma(const DyadicModulus& m, u64* dst, const u64* a, const u64* b,
                std::size_t n);
/// dst[j] = -dst[j] (mod q).
void dyadic_negate(const DyadicModulus& m, u64* dst, std::size_t n);
/// dst[j] = dst[j] * s (mod q); s must be reduced (< q), s_shoup its Shoup
/// quotient floor(s * 2^64 / q).
void dyadic_mul_scalar(const DyadicModulus& m, u64* dst, std::size_t n, u64 s,
                       u64 s_shoup);

// -- fused passes ------------------------------------------------------------

/// Gadget-accumulation inner loop, one pass: with d_j = digit[perm[j]]
/// (or digit[j] when perm is null),
///     acc0[j] += d_j * b[j]   (mod q)
///     acc1[j] += d_j * a[j]   (mod q)
/// Replaces the permute-into-scratch + two dyadic_fma sweeps of the
/// unfused chain: the digit is loaded (or gathered) once and never staged
/// through memory. perm must hold indices < n.
void dyadic_fma_accumulate(const DyadicModulus& m, u64* acc0, u64* acc1,
                           const u64* digit, const u64* b, const u64* a,
                           const u32* perm, std::size_t n);

/// dst[j] = src[j] - dst[j] (mod q) — the fused form of negate-then-add
/// (c0 = -(a*s) + (m+e) in encrypt, b = -(a*s) + e in keygen).
void dyadic_negate_add(const DyadicModulus& m, u64* dst, const u64* src,
                       std::size_t n);

/// dst[j] = (dst[j] - src[j]) * s (mod q), Shoup scalar — the fused
/// mod-down / rescale tail (c = (c - tmp) * P^{-1}).
void dyadic_sub_mul_scalar(const DyadicModulus& m, u64* dst, const u64* src,
                           std::size_t n, u64 s, u64 s_shoup);

/// out[j] = base[j] + a[j] * b[j] (mod q) — the fused form of copy-then-
/// fma (phase = c0 + c1*s in decrypt). out must not alias a or b; out may
/// equal base.
void dyadic_fma_into(const DyadicModulus& m, u64* out, const u64* base,
                     const u64* a, const u64* b, std::size_t n);

// -- portable kernels (dispatch targets; exposed for parity tests) ----------

void dyadic_add_portable(const DyadicModulus& m, u64* dst, const u64* src,
                         std::size_t n);
void dyadic_sub_portable(const DyadicModulus& m, u64* dst, const u64* src,
                         std::size_t n);
void dyadic_mul_portable(const DyadicModulus& m, u64* dst, const u64* src,
                         std::size_t n);
void dyadic_fma_portable(const DyadicModulus& m, u64* dst, const u64* a,
                         const u64* b, std::size_t n);
void dyadic_negate_portable(const DyadicModulus& m, u64* dst, std::size_t n);
void dyadic_mul_scalar_portable(const DyadicModulus& m, u64* dst,
                                std::size_t n, u64 s, u64 s_shoup);
void dyadic_fma_accumulate_portable(const DyadicModulus& m, u64* acc0,
                                    u64* acc1, const u64* digit, const u64* b,
                                    const u64* a, const u32* perm,
                                    std::size_t n);
void dyadic_negate_add_portable(const DyadicModulus& m, u64* dst,
                                const u64* src, std::size_t n);
void dyadic_sub_mul_scalar_portable(const DyadicModulus& m, u64* dst,
                                    const u64* src, std::size_t n, u64 s,
                                    u64 s_shoup);
void dyadic_fma_into_portable(const DyadicModulus& m, u64* out,
                              const u64* base, const u64* a, const u64* b,
                              std::size_t n);

}  // namespace abc::simd
