#include "simd/dyadic_kernels.hpp"

#include "common/check.hpp"
#include "rns/modulus.hpp"
#include "simd/kernels_avx2.hpp"
#include "simd/kernels_avx512.hpp"
#include "simd/simd_caps.hpp"

namespace abc::simd {

DyadicModulus DyadicModulus::make(const rns::Modulus& q) {
  const u64 qv = q.value();
  ABC_CHECK_ARG((qv & (qv - 1)) != 0,
                "dyadic kernels require a non-power-of-two modulus");
  DyadicModulus m;
  m.q = qv;
  m.two_q = 2 * qv;
  m.shift = q.bit_count() - 1;
  // q > 2^shift strictly (q is not a power of two), so the ratio fits.
  m.ratio = static_cast<u64>((static_cast<u128>(1) << (64 + m.shift)) / qv);
  // floor(ratio / 2^12) == floor(2^(52+shift) / q): exact, no re-division.
  m.ratio52 = m.ratio >> 12;
  m.ifma_ok = q.bit_count() <= kIfmaMaxPrimeBits;
  return m;
}

void dyadic_add_portable(const DyadicModulus& m, u64* dst, const u64* src,
                         std::size_t n) {
  const u64 q = m.q;
  for (std::size_t j = 0; j < n; ++j) {
    const u64 s = dst[j] + src[j];
    dst[j] = s >= q ? s - q : s;
  }
}

void dyadic_sub_portable(const DyadicModulus& m, u64* dst, const u64* src,
                         std::size_t n) {
  const u64 q = m.q;
  for (std::size_t j = 0; j < n; ++j) {
    const u64 d = dst[j];
    const u64 s = src[j];
    dst[j] = d >= s ? d - s : d + q - s;
  }
}

void dyadic_mul_portable(const DyadicModulus& m, u64* dst, const u64* src,
                         std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) dst[j] = m.mul(dst[j], src[j]);
}

void dyadic_fma_portable(const DyadicModulus& m, u64* dst, const u64* a,
                         const u64* b, std::size_t n) {
  const u64 q = m.q;
  for (std::size_t j = 0; j < n; ++j) {
    const u64 s = dst[j] + m.mul(a[j], b[j]);
    dst[j] = s >= q ? s - q : s;
  }
}

void dyadic_negate_portable(const DyadicModulus& m, u64* dst, std::size_t n) {
  const u64 q = m.q;
  for (std::size_t j = 0; j < n; ++j) {
    const u64 v = dst[j];
    dst[j] = v == 0 ? 0 : q - v;
  }
}

void dyadic_mul_scalar_portable(const DyadicModulus& m, u64* dst,
                                std::size_t n, u64 s, u64 s_shoup) {
  const u64 q = m.q;
  for (std::size_t j = 0; j < n; ++j) {
    u64 r = dst[j] * s - mul_hi(dst[j], s_shoup) * q;  // lazy, < 2q
    if (r >= q) r -= q;
    dst[j] = r;
  }
}

// The fused portable loops below use sign-bit mask arithmetic instead of
// ternaries: for x < 2^63 the borrow/overflow condition IS the top bit of
// the wrapped difference, so `t + (q & (i64(t) >> 63))` canonicalizes
// without any compare. Ring operands are canonical (< q < 2^62), so the
// precondition always holds. Two wins over the conditional forms: the
// operands are uniformly random, so a conditional branch mispredicts ~50%
// of the time, and the compare-free shape is one GCC auto-vectorizes at
// the baseline ISA (64-bit compares are not portably vectorizable, shifts
// and masks are). The results are bit-identical to the unfused chains.

void dyadic_fma_accumulate_portable(const DyadicModulus& m, u64* acc0,
                                    u64* acc1, const u64* digit, const u64* b,
                                    const u64* a, const u32* perm,
                                    std::size_t n) {
  // Block-staged: the permutation gather lands in an L1-resident scratch
  // block and both fma passes consume it immediately, instead of staging
  // the whole ring through a full-size temporary as the unfused chain
  // does. The per-block loops keep the tight two-load fma codegen.
  constexpr std::size_t kBlock = 2048;
  u64 tmp[kBlock];
  for (std::size_t j0 = 0; j0 < n; j0 += kBlock) {
    const std::size_t len = j0 + kBlock <= n ? kBlock : n - j0;
    const u64* d = digit + j0;
    if (perm != nullptr) {
      for (std::size_t j = 0; j < len; ++j) tmp[j] = digit[perm[j0 + j]];
      d = tmp;
    }
    dyadic_fma_portable(m, acc0 + j0, d, b + j0, len);
    dyadic_fma_portable(m, acc1 + j0, d, a + j0, len);
  }
}

void dyadic_negate_add_portable(const DyadicModulus& m, u64* dst,
                                const u64* src, std::size_t n) {
  const u64 q = m.q;
  for (std::size_t j = 0; j < n; ++j) {
    const u64 t = src[j] - dst[j];
    dst[j] = t + (q & static_cast<u64>(static_cast<i64>(t) >> 63));
  }
}

void dyadic_sub_mul_scalar_portable(const DyadicModulus& m, u64* dst,
                                    const u64* src, std::size_t n, u64 s,
                                    u64 s_shoup) {
  const u64 q = m.q;
  for (std::size_t j = 0; j < n; ++j) {
    const u64 d = dst[j] - src[j];
    const u64 t = d + (q & static_cast<u64>(static_cast<i64>(d) >> 63));
    const u64 r = t * s - mul_hi(t, s_shoup) * q;  // lazy, < 2q
    const u64 c = r - q;
    dst[j] = c + (q & static_cast<u64>(static_cast<i64>(c) >> 63));
  }
}

void dyadic_fma_into_portable(const DyadicModulus& m, u64* out,
                              const u64* base, const u64* a, const u64* b,
                              std::size_t n) {
  const u64 q = m.q;
  for (std::size_t j = 0; j < n; ++j) {
    const u64 s = base[j] + m.mul(a[j], b[j]);
    const u64 c = s - q;
    out[j] = c + (q & static_cast<u64>(static_cast<i64>(c) >> 63));
  }
}

namespace {

// The multiply-free kernels work at any prime width on every tier; the
// multiplying kernels additionally require ifma_ok on the AVX-512 tier
// (52-bit operand contract) and drop to the AVX2 implementations for wider
// primes — any CPU that passed the avx512ifma cpuid check has AVX2.

inline KernelArch arch() noexcept { return active_kernel_arch(); }

}  // namespace

void dyadic_add(const DyadicModulus& m, u64* dst, const u64* src,
                std::size_t n) {
  switch (arch()) {
    case KernelArch::kAvx512Ifma:
      return dyadic_add_avx512(m, dst, src, n);
    case KernelArch::kAvx2:
      return dyadic_add_avx2(m, dst, src, n);
    case KernelArch::kPortable:
      break;
  }
  dyadic_add_portable(m, dst, src, n);
}

void dyadic_sub(const DyadicModulus& m, u64* dst, const u64* src,
                std::size_t n) {
  switch (arch()) {
    case KernelArch::kAvx512Ifma:
      return dyadic_sub_avx512(m, dst, src, n);
    case KernelArch::kAvx2:
      return dyadic_sub_avx2(m, dst, src, n);
    case KernelArch::kPortable:
      break;
  }
  dyadic_sub_portable(m, dst, src, n);
}

void dyadic_mul(const DyadicModulus& m, u64* dst, const u64* src,
                std::size_t n) {
  switch (arch()) {
    case KernelArch::kAvx512Ifma:
      if (m.ifma_ok) return dyadic_mul_avx512(m, dst, src, n);
      [[fallthrough]];
    case KernelArch::kAvx2:
      return dyadic_mul_avx2(m, dst, src, n);
    case KernelArch::kPortable:
      break;
  }
  dyadic_mul_portable(m, dst, src, n);
}

void dyadic_fma(const DyadicModulus& m, u64* dst, const u64* a, const u64* b,
                std::size_t n) {
  switch (arch()) {
    case KernelArch::kAvx512Ifma:
      if (m.ifma_ok) return dyadic_fma_avx512(m, dst, a, b, n);
      [[fallthrough]];
    case KernelArch::kAvx2:
      return dyadic_fma_avx2(m, dst, a, b, n);
    case KernelArch::kPortable:
      break;
  }
  dyadic_fma_portable(m, dst, a, b, n);
}

void dyadic_negate(const DyadicModulus& m, u64* dst, std::size_t n) {
  switch (arch()) {
    case KernelArch::kAvx512Ifma:
      return dyadic_negate_avx512(m, dst, n);
    case KernelArch::kAvx2:
      return dyadic_negate_avx2(m, dst, n);
    case KernelArch::kPortable:
      break;
  }
  dyadic_negate_portable(m, dst, n);
}

void dyadic_mul_scalar(const DyadicModulus& m, u64* dst, std::size_t n, u64 s,
                       u64 s_shoup) {
  switch (arch()) {
    case KernelArch::kAvx512Ifma:
      if (m.ifma_ok) return dyadic_mul_scalar_avx512(m, dst, n, s, s_shoup);
      [[fallthrough]];
    case KernelArch::kAvx2:
      return dyadic_mul_scalar_avx2(m, dst, n, s, s_shoup);
    case KernelArch::kPortable:
      break;
  }
  dyadic_mul_scalar_portable(m, dst, n, s, s_shoup);
}

void dyadic_fma_accumulate(const DyadicModulus& m, u64* acc0, u64* acc1,
                           const u64* digit, const u64* b, const u64* a,
                           const u32* perm, std::size_t n) {
  switch (arch()) {
    case KernelArch::kAvx512Ifma:
      if (m.ifma_ok)
        return dyadic_fma_accumulate_avx512(m, acc0, acc1, digit, b, a, perm,
                                            n);
      [[fallthrough]];
    case KernelArch::kAvx2:
      return dyadic_fma_accumulate_avx2(m, acc0, acc1, digit, b, a, perm, n);
    case KernelArch::kPortable:
      break;
  }
  dyadic_fma_accumulate_portable(m, acc0, acc1, digit, b, a, perm, n);
}

void dyadic_negate_add(const DyadicModulus& m, u64* dst, const u64* src,
                       std::size_t n) {
  switch (arch()) {
    case KernelArch::kAvx512Ifma:
      return dyadic_negate_add_avx512(m, dst, src, n);
    case KernelArch::kAvx2:
      return dyadic_negate_add_avx2(m, dst, src, n);
    case KernelArch::kPortable:
      break;
  }
  dyadic_negate_add_portable(m, dst, src, n);
}

void dyadic_sub_mul_scalar(const DyadicModulus& m, u64* dst, const u64* src,
                           std::size_t n, u64 s, u64 s_shoup) {
  switch (arch()) {
    case KernelArch::kAvx512Ifma:
      if (m.ifma_ok)
        return dyadic_sub_mul_scalar_avx512(m, dst, src, n, s, s_shoup);
      [[fallthrough]];
    case KernelArch::kAvx2:
      return dyadic_sub_mul_scalar_avx2(m, dst, src, n, s, s_shoup);
    case KernelArch::kPortable:
      break;
  }
  dyadic_sub_mul_scalar_portable(m, dst, src, n, s, s_shoup);
}

void dyadic_fma_into(const DyadicModulus& m, u64* out, const u64* base,
                     const u64* a, const u64* b, std::size_t n) {
  switch (arch()) {
    case KernelArch::kAvx512Ifma:
      if (m.ifma_ok) return dyadic_fma_into_avx512(m, out, base, a, b, n);
      [[fallthrough]];
    case KernelArch::kAvx2:
      return dyadic_fma_into_avx2(m, out, base, a, b, n);
    case KernelArch::kPortable:
      break;
  }
  dyadic_fma_into_portable(m, out, base, a, b, n);
}

}  // namespace abc::simd
