#include "simd/dyadic_kernels.hpp"

#include "common/check.hpp"
#include "rns/modulus.hpp"
#include "simd/kernels_avx2.hpp"
#include "simd/simd_caps.hpp"

namespace abc::simd {

DyadicModulus DyadicModulus::make(const rns::Modulus& q) {
  const u64 qv = q.value();
  ABC_CHECK_ARG((qv & (qv - 1)) != 0,
                "dyadic kernels require a non-power-of-two modulus");
  DyadicModulus m;
  m.q = qv;
  m.two_q = 2 * qv;
  m.shift = q.bit_count() - 1;
  // q > 2^shift strictly (q is not a power of two), so the ratio fits.
  m.ratio = static_cast<u64>((static_cast<u128>(1) << (64 + m.shift)) / qv);
  return m;
}

void dyadic_add_portable(const DyadicModulus& m, u64* dst, const u64* src,
                         std::size_t n) {
  const u64 q = m.q;
  for (std::size_t j = 0; j < n; ++j) {
    const u64 s = dst[j] + src[j];
    dst[j] = s >= q ? s - q : s;
  }
}

void dyadic_sub_portable(const DyadicModulus& m, u64* dst, const u64* src,
                         std::size_t n) {
  const u64 q = m.q;
  for (std::size_t j = 0; j < n; ++j) {
    const u64 d = dst[j];
    const u64 s = src[j];
    dst[j] = d >= s ? d - s : d + q - s;
  }
}

void dyadic_mul_portable(const DyadicModulus& m, u64* dst, const u64* src,
                         std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) dst[j] = m.mul(dst[j], src[j]);
}

void dyadic_fma_portable(const DyadicModulus& m, u64* dst, const u64* a,
                         const u64* b, std::size_t n) {
  const u64 q = m.q;
  for (std::size_t j = 0; j < n; ++j) {
    const u64 s = dst[j] + m.mul(a[j], b[j]);
    dst[j] = s >= q ? s - q : s;
  }
}

void dyadic_negate_portable(const DyadicModulus& m, u64* dst, std::size_t n) {
  const u64 q = m.q;
  for (std::size_t j = 0; j < n; ++j) {
    const u64 v = dst[j];
    dst[j] = v == 0 ? 0 : q - v;
  }
}

void dyadic_mul_scalar_portable(const DyadicModulus& m, u64* dst,
                                std::size_t n, u64 s, u64 s_shoup) {
  const u64 q = m.q;
  for (std::size_t j = 0; j < n; ++j) {
    u64 r = dst[j] * s - mul_hi(dst[j], s_shoup) * q;  // lazy, < 2q
    if (r >= q) r -= q;
    dst[j] = r;
  }
}

namespace {
inline bool use_avx2() noexcept {
  return active_kernel_arch() == KernelArch::kAvx2;
}
}  // namespace

void dyadic_add(const DyadicModulus& m, u64* dst, const u64* src,
                std::size_t n) {
  use_avx2() ? dyadic_add_avx2(m, dst, src, n)
             : dyadic_add_portable(m, dst, src, n);
}

void dyadic_sub(const DyadicModulus& m, u64* dst, const u64* src,
                std::size_t n) {
  use_avx2() ? dyadic_sub_avx2(m, dst, src, n)
             : dyadic_sub_portable(m, dst, src, n);
}

void dyadic_mul(const DyadicModulus& m, u64* dst, const u64* src,
                std::size_t n) {
  use_avx2() ? dyadic_mul_avx2(m, dst, src, n)
             : dyadic_mul_portable(m, dst, src, n);
}

void dyadic_fma(const DyadicModulus& m, u64* dst, const u64* a, const u64* b,
                std::size_t n) {
  use_avx2() ? dyadic_fma_avx2(m, dst, a, b, n)
             : dyadic_fma_portable(m, dst, a, b, n);
}

void dyadic_negate(const DyadicModulus& m, u64* dst, std::size_t n) {
  use_avx2() ? dyadic_negate_avx2(m, dst, n)
             : dyadic_negate_portable(m, dst, n);
}

void dyadic_mul_scalar(const DyadicModulus& m, u64* dst, std::size_t n, u64 s,
                       u64 s_shoup) {
  use_avx2() ? dyadic_mul_scalar_avx2(m, dst, n, s, s_shoup)
             : dyadic_mul_scalar_portable(m, dst, n, s, s_shoup);
}

}  // namespace abc::simd
