#pragma once

/// @file kernels_avx512.hpp
/// Internal declarations of the AVX-512/IFMA kernel entry points,
/// implemented in ntt_kernels_avx512.cpp / dyadic_kernels_avx512.cpp
/// (compiled with -mavx512f -mavx512dq -mavx512ifma). Never call these
/// directly — go through the dispatchers in ntt_kernels.hpp /
/// dyadic_kernels.hpp, which check simd_caps AND the 52-bit prime
/// constraint (DyadicModulus::ifma_ok / q < 2^50) first; the entry points
/// assume the constraint holds.
///
/// On builds whose toolchain rejects the AVX-512 flags the TUs compile
/// their #else branches, where every entry point forwards to the AVX2
/// kernel (any CPU passing the avx512ifma cpuid check also has AVX2), so
/// the symbols always exist and the dispatchers stay branch-simple.

#include <cstddef>

#include "common/types.hpp"

namespace abc::simd {

struct NttLayout;
struct DyadicModulus;

void ntt_forward_lazy_avx512(const NttLayout& L, u64* a);
void ntt_inverse_lazy_avx512(const NttLayout& L, u64* a);

void dyadic_add_avx512(const DyadicModulus& m, u64* dst, const u64* src,
                       std::size_t n);
void dyadic_sub_avx512(const DyadicModulus& m, u64* dst, const u64* src,
                       std::size_t n);
void dyadic_mul_avx512(const DyadicModulus& m, u64* dst, const u64* src,
                       std::size_t n);
void dyadic_fma_avx512(const DyadicModulus& m, u64* dst, const u64* a,
                       const u64* b, std::size_t n);
void dyadic_negate_avx512(const DyadicModulus& m, u64* dst, std::size_t n);
void dyadic_mul_scalar_avx512(const DyadicModulus& m, u64* dst, std::size_t n,
                              u64 s, u64 s_shoup);
void dyadic_fma_accumulate_avx512(const DyadicModulus& m, u64* acc0, u64* acc1,
                                  const u64* digit, const u64* b, const u64* a,
                                  const u32* perm, std::size_t n);
void dyadic_negate_add_avx512(const DyadicModulus& m, u64* dst, const u64* src,
                              std::size_t n);
void dyadic_sub_mul_scalar_avx512(const DyadicModulus& m, u64* dst,
                                  const u64* src, std::size_t n, u64 s,
                                  u64 s_shoup);
void dyadic_fma_into_avx512(const DyadicModulus& m, u64* out, const u64* base,
                            const u64* a, const u64* b, std::size_t n);

}  // namespace abc::simd
