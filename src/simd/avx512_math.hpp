#pragma once

/// @file avx512_math.hpp
/// Shared AVX-512 building blocks for the kernel TUs compiled with
/// -mavx512f -mavx512dq -mavx512ifma. Unlike AVX2, this tier has native
/// 64-bit lane multiplies (vpmullq), native unsigned 64-bit compares
/// (mask registers), and the IFMA 52-bit multiply-adds vpmadd52luq /
/// vpmadd52huq, which take two 52-bit operands (upper 12 bits of each lane
/// are IGNORED — callers must guarantee operands < 2^52) and add the low /
/// high 52 bits of the 104-bit product onto a 64-bit accumulator.
///
/// The modular-multiply helpers here run the same algorithms as the
/// portable and AVX2 tiers but in base 2^52 instead of 2^64, with the
/// 52-bit constants derived from the 64-bit ones by `>> 12`
/// (floor(floor(x / 2^12) / 1) == floor(x * 2^52 / 2^64) exactly), so no
/// extra precomputation or table storage exists for this tier:
///
///   * shoup52_mul_lazy: r = x*w - floor(x*w_shoup52 / 2^52)*q, in [0, 2q).
///     Contract: w < q, w_shoup52 = floor(w * 2^52 / q), and x < 2^52 —
///     the base-52 counterpart of Harvey's "any 64-bit x" bound, which is
///     why the IFMA tier requires lazy 4q-representatives to fit 52 bits
///     (prime bit-count <= 50, DyadicModulus::kIfmaMaxPrimeBits).
///   * barrett52_mul: the shifted-Barrett dyadic product of
///     dyadic_kernels.hpp with qhat = floor((z >> shift) * ratio52 / 2^52),
///     ratio52 = ratio >> 12; r < 3q before the two corrections.
///
/// Only include from translation units compiled with the AVX-512 flags.

#include <immintrin.h>

#include "common/types.hpp"

namespace abc::simd::avx512 {

inline __m512i splat(u64 v) noexcept {
  return _mm512_set1_epi64(static_cast<long long>(v));
}

inline __m512i load(const u64* p) noexcept {
  return _mm512_loadu_si512(reinterpret_cast<const void*>(p));
}

inline void store(u64* p, __m512i v) noexcept {
  _mm512_storeu_si512(reinterpret_cast<void*>(p), v);
}

/// Low 64 bits of the lane-wise 64x64 product (vpmullq, AVX-512DQ).
inline __m512i mul_lo64(__m512i x, __m512i y) noexcept {
  return _mm512_mullo_epi64(x, y);
}

/// v - (v >= bound ? bound : 0), unsigned lanes (native mask compare).
inline __m512i cond_sub(__m512i v, __m512i bound) noexcept {
  const __mmask8 ge = _mm512_cmpge_epu64_mask(v, bound);
  return _mm512_mask_sub_epi64(v, ge, v, bound);
}

/// acc + lo52(x * y); x, y treated as 52-bit operands (upper bits ignored).
inline __m512i madd52lo(__m512i acc, __m512i x, __m512i y) noexcept {
  return _mm512_madd52lo_epu64(acc, x, y);
}

/// acc + floor(x * y / 2^52); x, y treated as 52-bit operands.
inline __m512i madd52hi(__m512i acc, __m512i x, __m512i y) noexcept {
  return _mm512_madd52hi_epu64(acc, x, y);
}

/// Lazy Shoup product per lane in base 2^52 (see file header for the
/// contract): x*w - floor(x*w_shoup52/2^52)*q, result < 2q. The lazy
/// representative may differ from the base-2^64 tiers' by q; all kernels
/// canonicalize before storing results, so outputs stay bit-identical.
inline __m512i shoup52_mul_lazy(__m512i x, __m512i w, __m512i w_shoup52,
                                __m512i q) noexcept {
  const __m512i zero = _mm512_setzero_si512();
  const __m512i t = madd52hi(zero, x, w_shoup52);
  return _mm512_sub_epi64(mul_lo64(x, w), mul_lo64(t, q));
}

/// Canonical dyadic product per lane via the 52-bit shifted-Barrett
/// constant: inputs a, b < q < 2^50; ratio52 = ratio >> 12;
/// shift = bit_count(q) - 1. qhat lands in [Q-2, Q], so r < 3q and two
/// conditional subtractions reach the canonical representative — the same
/// correction count as the portable/AVX2 pipeline, hence bit-identical.
inline __m512i barrett52_mul(__m512i a, __m512i b, __m512i vq, __m512i v2q,
                             __m512i ratio52, int shift) noexcept {
  const __m512i zero = _mm512_setzero_si512();
  const __m512i z_lo = madd52lo(zero, a, b);
  const __m512i z_hi = madd52hi(zero, a, b);
  // z >> shift, assembled from the 52-bit halves; < 2q < 2^51.
  const __m512i zh = _mm512_or_si512(_mm512_slli_epi64(z_hi, 52 - shift),
                                     _mm512_srli_epi64(z_lo, shift));
  const __m512i qhat = madd52hi(zero, zh, ratio52);
  __m512i r = _mm512_sub_epi64(mul_lo64(a, b), mul_lo64(qhat, vq));  // < 3q
  r = cond_sub(r, v2q);
  return cond_sub(r, vq);
}

}  // namespace abc::simd::avx512
