#pragma once

/// @file simd_caps.hpp
/// Runtime kernel-architecture selection for the src/simd/ kernel layer.
///
/// Two kernel sets exist for the client hot path (NTT butterflies and the
/// batched dyadic ops): a portable C++ set that compiles everywhere, and an
/// AVX2 set compiled into a separate translation unit with -mavx2 and picked
/// at runtime via cpuid. Selection happens once per process:
///
///   * if the environment variable ABC_FORCE_PORTABLE_KERNELS is set to
///     anything but "0", the portable kernels are used unconditionally
///     (escape hatch for testing and for ruling the SIMD path out when
///     debugging);
///   * otherwise AVX2 kernels are used when both the build compiled them
///     (x86-64 toolchain) and the CPU reports AVX2 support;
///   * tests and benches may override the choice in-process through
///     set_kernel_arch_for_testing() to exercise both paths regardless of
///     the host environment.
///
/// Whatever the arch, results are bit-identical: every kernel fully reduces
/// its outputs to the canonical [0, q) representatives, so the choice is
/// invisible to everything above the kernel layer.

namespace abc::simd {

enum class KernelArch {
  kPortable,  // plain C++ kernels, any target
  kAvx2,      // AVX2 intrinsics, runtime-detected
};

/// True when the AVX2 kernel TU was compiled in (x86-64 build).
bool avx2_compiled() noexcept;

/// True when the running CPU supports AVX2 (false on non-x86 builds).
bool avx2_supported() noexcept;

/// True when the AVX2 kernels may actually be selected: supported by the
/// host AND not vetoed by ABC_FORCE_PORTABLE_KERNELS. The escape hatch is
/// absolute — it also blocks in-process overrides — so tests and benches
/// gate their AVX2 passes on this, not on avx2_supported().
bool avx2_selectable() noexcept;

/// The arch the dispatchers currently route to. Resolved once from cpuid
/// and ABC_FORCE_PORTABLE_KERNELS, unless overridden for testing.
KernelArch active_kernel_arch() noexcept;

/// Overrides the active arch. kAvx2 requests are ignored when AVX2 is not
/// selectable (unavailable, or ABC_FORCE_PORTABLE_KERNELS is set), so the
/// override can never select an illegal or vetoed path. Passing the
/// detected default re-enables normal behavior.
void set_kernel_arch_for_testing(KernelArch arch) noexcept;

/// The arch detection would pick with no override (env var included).
KernelArch detected_kernel_arch() noexcept;

const char* kernel_arch_name(KernelArch arch) noexcept;

}  // namespace abc::simd
