#pragma once

/// @file simd_caps.hpp
/// Runtime kernel-architecture selection for the src/simd/ kernel layer.
///
/// Three kernel tiers exist for the client hot path (NTT butterflies and
/// the batched dyadic ops): a portable C++ set that compiles everywhere, an
/// AVX2 set, and an AVX-512/IFMA set (8-lane butterflies, 52-bit
/// `vpmadd52` modular multiplies). The SIMD tiers live in separate
/// translation units compiled with -mavx2 / -mavx512ifma and are picked at
/// runtime via cpuid. Selection happens once per process:
///
///   * if the environment variable ABC_FORCE_PORTABLE_KERNELS is set to
///     anything but "0", the portable kernels are used unconditionally
///     (escape hatch for testing and for ruling the SIMD path out when
///     debugging);
///   * if ABC_DISABLE_AVX512_KERNELS is set to anything but "0", the
///     AVX-512 tier alone is vetoed (the AVX2 tier still dispatches) —
///     the per-tier counterpart of the portable escape hatch;
///   * otherwise the highest tier both compiled in AND reported by cpuid
///     wins: AVX-512/IFMA over AVX2 over portable;
///   * tests and benches may override the choice in-process through
///     set_kernel_arch_for_testing() to exercise every path regardless of
///     the host environment.
///
/// Whatever the arch, results are bit-identical: every kernel fully reduces
/// its outputs to the canonical [0, q) representatives, so the choice is
/// invisible to everything above the kernel layer. The IFMA multiply
/// kernels additionally require lazy 4q-representatives to fit the 52-bit
/// multiplier datapath (prime bit-count <= 50); wider primes fall back to
/// the AVX2 kernels per call without leaving the AVX-512 tier (see
/// dyadic_kernels.hpp).

namespace abc::simd {

enum class KernelArch {
  kPortable,    // plain C++ kernels, any target
  kAvx2,        // AVX2 intrinsics, runtime-detected
  kAvx512Ifma,  // AVX-512F/DQ/IFMA intrinsics, runtime-detected
};

/// True when the AVX2 kernel TU was compiled in (x86-64 build).
bool avx2_compiled() noexcept;

/// True when the running CPU supports AVX2 (false on non-x86 builds).
bool avx2_supported() noexcept;

/// True when the AVX2 kernels may actually be selected: supported by the
/// host AND not vetoed by ABC_FORCE_PORTABLE_KERNELS. The escape hatch is
/// absolute — it also blocks in-process overrides — so tests and benches
/// gate their AVX2 passes on this, not on avx2_supported().
bool avx2_selectable() noexcept;

/// True when the AVX-512/IFMA kernel TU was compiled in (x86-64 build with
/// a toolchain that accepts -mavx512ifma).
bool avx512ifma_compiled() noexcept;

/// True when the running CPU supports the AVX-512 subsets the tier uses
/// (F + DQ + IFMA); false on non-x86 builds.
bool avx512ifma_supported() noexcept;

/// True when the AVX-512/IFMA kernels may actually be selected: supported
/// by the host AND vetoed by neither ABC_FORCE_PORTABLE_KERNELS nor
/// ABC_DISABLE_AVX512_KERNELS. Both vetoes also block in-process
/// overrides, so tests and benches gate their AVX-512 passes on this.
bool avx512ifma_selectable() noexcept;

/// The arch the dispatchers currently route to. Resolved once from cpuid
/// and the env vetoes, unless overridden for testing.
KernelArch active_kernel_arch() noexcept;

/// Overrides the active arch. Requests for a tier that is not selectable
/// (unavailable hardware, or an env veto) are ignored, so the override can
/// never select an illegal or vetoed path. Passing the detected default
/// re-enables normal behavior.
void set_kernel_arch_for_testing(KernelArch arch) noexcept;

/// The arch detection would pick with no override (env vetoes included).
KernelArch detected_kernel_arch() noexcept;

const char* kernel_arch_name(KernelArch arch) noexcept;

}  // namespace abc::simd
