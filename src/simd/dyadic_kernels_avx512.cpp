/// AVX-512/IFMA batched dyadic kernels (see dyadic_kernels.hpp for the
/// algorithms, avx512_math.hpp for the base-2^52 helpers). Compiled with
/// -mavx512f -mavx512dq -mavx512ifma when the toolchain accepts them; AVX2
/// forwarders otherwise — a CPU that passes the avx512ifma cpuid check
/// always has AVX2, so the fallback stays vectorized.
///
/// Multiplying kernels assume the caller verified DyadicModulus::ifma_ok
/// (prime bit-count <= 50): lazy values and the shifted Barrett quotient
/// must fit the 52-bit vpmadd52 operand window. Multiply-free kernels
/// (add/sub/negate/negate_add) hold at any prime width.

#include "simd/dyadic_kernels.hpp"
#include "simd/kernels_avx2.hpp"
#include "simd/kernels_avx512.hpp"

#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__AVX512IFMA__)

#include "simd/avx512_math.hpp"

namespace abc::simd {

namespace {

using avx512::barrett52_mul;
using avx512::cond_sub;
using avx512::load;
using avx512::shoup52_mul_lazy;
using avx512::splat;
using avx512::store;

}  // namespace

void dyadic_add_avx512(const DyadicModulus& m, u64* dst, const u64* src,
                       std::size_t n) {
  const __m512i vq = splat(m.q);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    store(dst + j,
          cond_sub(_mm512_add_epi64(load(dst + j), load(src + j)), vq));
  }
  if (j < n) dyadic_add_portable(m, dst + j, src + j, n - j);
}

void dyadic_sub_avx512(const DyadicModulus& m, u64* dst, const u64* src,
                       std::size_t n) {
  const __m512i vq = splat(m.q);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512i d = load(dst + j);
    const __m512i s = load(src + j);
    const __mmask8 borrow = _mm512_cmplt_epu64_mask(d, s);
    const __m512i diff = _mm512_sub_epi64(d, s);
    store(dst + j, _mm512_mask_add_epi64(diff, borrow, diff, vq));
  }
  if (j < n) dyadic_sub_portable(m, dst + j, src + j, n - j);
}

void dyadic_mul_avx512(const DyadicModulus& m, u64* dst, const u64* src,
                       std::size_t n) {
  const __m512i vq = splat(m.q);
  const __m512i v2q = splat(m.two_q);
  const __m512i ratio52 = splat(m.ratio52);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    store(dst + j, barrett52_mul(load(dst + j), load(src + j), vq, v2q,
                                 ratio52, m.shift));
  }
  if (j < n) dyadic_mul_portable(m, dst + j, src + j, n - j);
}

void dyadic_fma_avx512(const DyadicModulus& m, u64* dst, const u64* a,
                       const u64* b, std::size_t n) {
  const __m512i vq = splat(m.q);
  const __m512i v2q = splat(m.two_q);
  const __m512i ratio52 = splat(m.ratio52);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512i p =
        barrett52_mul(load(a + j), load(b + j), vq, v2q, ratio52, m.shift);
    store(dst + j, cond_sub(_mm512_add_epi64(load(dst + j), p), vq));
  }
  if (j < n) dyadic_fma_portable(m, dst + j, a + j, b + j, n - j);
}

void dyadic_negate_avx512(const DyadicModulus& m, u64* dst, std::size_t n) {
  const __m512i vq = splat(m.q);
  const __m512i zero = _mm512_setzero_si512();
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512i v = load(dst + j);
    const __mmask8 nz = _mm512_cmpneq_epu64_mask(v, zero);
    store(dst + j, _mm512_maskz_sub_epi64(nz, vq, v));
  }
  if (j < n) dyadic_negate_portable(m, dst + j, n - j);
}

void dyadic_mul_scalar_avx512(const DyadicModulus& m, u64* dst, std::size_t n,
                              u64 s, u64 s_shoup) {
  const __m512i vq = splat(m.q);
  const __m512i vs = splat(s);
  // Exact: floor(s_shoup / 2^12) == floor(s * 2^52 / q).
  const __m512i vsh52 = splat(s_shoup >> 12);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512i r = shoup52_mul_lazy(load(dst + j), vs, vsh52, vq);
    store(dst + j, cond_sub(r, vq));
  }
  if (j < n) dyadic_mul_scalar_portable(m, dst + j, n - j, s, s_shoup);
}

// Kept scalar on purpose: the vectorizer would turn this into
// vpgatherqq, whose per-element cost exceeds two scalar loads per cycle
// once the indexed array spills L1.
__attribute__((optimize("no-tree-vectorize"))) static void stage_permuted(
    u64* tmp, const u64* digit, const u32* perm, std::size_t len) {
  for (std::size_t j = 0; j < len; ++j) tmp[j] = digit[perm[j]];
}

void dyadic_fma_accumulate_avx512(const DyadicModulus& m, u64* acc0, u64* acc1,
                                  const u64* digit, const u64* b, const u64* a,
                                  const u32* perm, std::size_t n) {
  // Block-staged: a scalar gather into an L1-resident block beats the
  // hardware gather once the digit array spills L1, and the interleaved
  // inner loop then loads each staged digit vector once and feeds both
  // accumulations in a single pass over the accumulator/key streams.
  const __m512i vq = splat(m.q);
  const __m512i v2q = splat(m.two_q);
  const __m512i ratio52 = splat(m.ratio52);
  constexpr std::size_t kBlock = 2048;
  alignas(64) u64 tmp[kBlock];
  for (std::size_t j0 = 0; j0 < n; j0 += kBlock) {
    const std::size_t len = j0 + kBlock <= n ? kBlock : n - j0;
    const u64* d = digit + j0;
    if (perm != nullptr) {
      stage_permuted(tmp, digit, perm + j0, len);
      d = tmp;
    }
    std::size_t j = 0;
    for (; j + 8 <= len; j += 8) {
      const __m512i vd = load(d + j);
      const __m512i p0 =
          barrett52_mul(vd, load(b + j0 + j), vq, v2q, ratio52, m.shift);
      store(acc0 + j0 + j,
            cond_sub(_mm512_add_epi64(load(acc0 + j0 + j), p0), vq));
      const __m512i p1 =
          barrett52_mul(vd, load(a + j0 + j), vq, v2q, ratio52, m.shift);
      store(acc1 + j0 + j,
            cond_sub(_mm512_add_epi64(load(acc1 + j0 + j), p1), vq));
    }
    if (j < len) {
      dyadic_fma_portable(m, acc0 + j0 + j, d + j, b + j0 + j, len - j);
      dyadic_fma_portable(m, acc1 + j0 + j, d + j, a + j0 + j, len - j);
    }
  }
}

void dyadic_negate_add_avx512(const DyadicModulus& m, u64* dst, const u64* src,
                              std::size_t n) {
  const __m512i vq = splat(m.q);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512i s = load(src + j);
    const __m512i d = load(dst + j);
    const __mmask8 borrow = _mm512_cmplt_epu64_mask(s, d);
    const __m512i diff = _mm512_sub_epi64(s, d);
    store(dst + j, _mm512_mask_add_epi64(diff, borrow, diff, vq));
  }
  if (j < n) dyadic_negate_add_portable(m, dst + j, src + j, n - j);
}

void dyadic_sub_mul_scalar_avx512(const DyadicModulus& m, u64* dst,
                                  const u64* src, std::size_t n, u64 s,
                                  u64 s_shoup) {
  const __m512i vq = splat(m.q);
  const __m512i vs = splat(s);
  const __m512i vsh52 = splat(s_shoup >> 12);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512i d = load(dst + j);
    const __m512i v = load(src + j);
    const __mmask8 borrow = _mm512_cmplt_epu64_mask(d, v);
    const __m512i diff = _mm512_sub_epi64(d, v);
    const __m512i t = _mm512_mask_add_epi64(diff, borrow, diff, vq);
    store(dst + j, cond_sub(shoup52_mul_lazy(t, vs, vsh52, vq), vq));
  }
  if (j < n)
    dyadic_sub_mul_scalar_portable(m, dst + j, src + j, n - j, s, s_shoup);
}

void dyadic_fma_into_avx512(const DyadicModulus& m, u64* out, const u64* base,
                            const u64* a, const u64* b, std::size_t n) {
  const __m512i vq = splat(m.q);
  const __m512i v2q = splat(m.two_q);
  const __m512i ratio52 = splat(m.ratio52);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512i p =
        barrett52_mul(load(a + j), load(b + j), vq, v2q, ratio52, m.shift);
    store(out + j, cond_sub(_mm512_add_epi64(load(base + j), p), vq));
  }
  if (j < n)
    dyadic_fma_into_portable(m, out + j, base + j, a + j, b + j, n - j);
}

}  // namespace abc::simd

#else  // AVX-512 flags unavailable: AVX2 forwarders, never selected at
       // runtime (avx512ifma_compiled() is false).

namespace abc::simd {

void dyadic_add_avx512(const DyadicModulus& m, u64* dst, const u64* src,
                       std::size_t n) {
  dyadic_add_avx2(m, dst, src, n);
}
void dyadic_sub_avx512(const DyadicModulus& m, u64* dst, const u64* src,
                       std::size_t n) {
  dyadic_sub_avx2(m, dst, src, n);
}
void dyadic_mul_avx512(const DyadicModulus& m, u64* dst, const u64* src,
                       std::size_t n) {
  dyadic_mul_avx2(m, dst, src, n);
}
void dyadic_fma_avx512(const DyadicModulus& m, u64* dst, const u64* a,
                       const u64* b, std::size_t n) {
  dyadic_fma_avx2(m, dst, a, b, n);
}
void dyadic_negate_avx512(const DyadicModulus& m, u64* dst, std::size_t n) {
  dyadic_negate_avx2(m, dst, n);
}
void dyadic_mul_scalar_avx512(const DyadicModulus& m, u64* dst, std::size_t n,
                              u64 s, u64 s_shoup) {
  dyadic_mul_scalar_avx2(m, dst, n, s, s_shoup);
}
void dyadic_fma_accumulate_avx512(const DyadicModulus& m, u64* acc0, u64* acc1,
                                  const u64* digit, const u64* b, const u64* a,
                                  const u32* perm, std::size_t n) {
  dyadic_fma_accumulate_avx2(m, acc0, acc1, digit, b, a, perm, n);
}
void dyadic_negate_add_avx512(const DyadicModulus& m, u64* dst, const u64* src,
                              std::size_t n) {
  dyadic_negate_add_avx2(m, dst, src, n);
}
void dyadic_sub_mul_scalar_avx512(const DyadicModulus& m, u64* dst,
                                  const u64* src, std::size_t n, u64 s,
                                  u64 s_shoup) {
  dyadic_sub_mul_scalar_avx2(m, dst, src, n, s, s_shoup);
}
void dyadic_fma_into_avx512(const DyadicModulus& m, u64* out, const u64* base,
                            const u64* a, const u64* b, std::size_t n) {
  dyadic_fma_into_avx2(m, out, base, a, b, n);
}

}  // namespace abc::simd

#endif
