#pragma once

/// @file poly_backend.hpp
/// Pluggable execution backend for the RNS polynomial layer.
///
/// The math layers (transform/, rns/) define *what* a kernel computes; a
/// PolyBackend decides *how* the limb-wise work is executed — serially, over
/// a persistent worker pool, or (in future backends) with SIMD batches or an
/// accelerator offload. RnsPoly routes every element-wise operation and
/// domain conversion through the backend owned by its PolyContext, so
/// swapping the backend changes the execution strategy of the whole stack
/// without touching the math.
///
/// Contract highlights:
///  * All kernels are deterministic: results are bit-identical for any
///    worker count (parallelism only partitions independent limb/batch
///    work, never reorders a reduction).
///  * Implementations must fold operation counts produced on worker threads
///    back into the *calling* thread's xf::op_counts() accumulator, so the
///    Fig. 2b analytic accounting stays exact under any backend.

#include <cstddef>
#include <functional>
#include <memory>
#include <span>

#include "common/types.hpp"

namespace abc::poly {
class PolyContext;
}

namespace abc::backend {

class PolyBackend {
 public:
  virtual ~PolyBackend() = default;

  /// Human-readable backend identifier ("scalar", "thread_pool", ...).
  virtual const char* name() const noexcept = 0;

  /// Number of independent execution lanes. Callers that keep per-worker
  /// state (scratch buffers, samplers) size it by this; the `worker`
  /// argument of a Job is always < workers().
  virtual std::size_t workers() const noexcept = 0;

  using Job = std::function<void(std::size_t index, std::size_t worker)>;

  /// Executes job(i, worker) for every i in [0, count), each index exactly
  /// once. Nested calls from inside a job run inline on the same worker, so
  /// composite operations (e.g. a batch item doing per-limb NTTs) are safe.
  /// If a job throws, implementations rethrow (the first) exception on the
  /// calling thread after the region completes.
  virtual void parallel_for(std::size_t count, const Job& job) = 0;

  // -- batched limb-wise kernels --------------------------------------------
  // All spans cover `limbs * ctx.n()` contiguous coefficients in limb-major
  // order (RnsPoly storage). Default implementations dispatch one limb per
  // parallel_for index through the shared scalar limb kernels; specialized
  // backends may override any of them wholesale.

  virtual void ntt_forward(const poly::PolyContext& ctx, std::span<u64> data,
                           std::size_t limbs);
  virtual void ntt_inverse(const poly::PolyContext& ctx, std::span<u64> data,
                           std::size_t limbs);

  /// dst[j] = dst[j] + src[j] (mod q_i), per limb i.
  virtual void add(const poly::PolyContext& ctx, std::span<u64> dst,
                   std::span<const u64> src, std::size_t limbs);
  /// dst[j] = dst[j] - src[j] (mod q_i).
  virtual void sub(const poly::PolyContext& ctx, std::span<u64> dst,
                   std::span<const u64> src, std::size_t limbs);
  /// Dyadic product dst[j] = dst[j] * src[j] (mod q_i).
  virtual void mul(const poly::PolyContext& ctx, std::span<u64> dst,
                   std::span<const u64> src, std::size_t limbs);
  /// dst[j] += a[j] * b[j] (mod q_i), single pass.
  virtual void fma(const poly::PolyContext& ctx, std::span<u64> dst,
                   std::span<const u64> a, std::span<const u64> b,
                   std::size_t limbs);
  /// dst[j] = -dst[j] (mod q_i).
  virtual void negate(const poly::PolyContext& ctx, std::span<u64> dst,
                      std::size_t limbs);
  /// dst[j] = src[j] - dst[j] (mod q_i) — fused negate-then-add, one pass.
  /// Op counts match the unfused chain exactly.
  virtual void negate_add(const poly::PolyContext& ctx, std::span<u64> dst,
                          std::span<const u64> src, std::size_t limbs);
  /// out[j] = base[j] + a[j] * b[j] (mod q_i) — fused copy-then-fma, one
  /// pass. out may alias base but not a or b.
  virtual void fma_into(const poly::PolyContext& ctx, std::span<u64> out,
                        std::span<const u64> base, std::span<const u64> a,
                        std::span<const u64> b, std::size_t limbs);
  /// dst[j] = dst[j] * (scalar mod q_i) (mod q_i).
  virtual void mul_scalar(const poly::PolyContext& ctx, std::span<u64> dst,
                          std::size_t limbs, u64 scalar);
  /// RNS-expand centered signed coefficients into every limb.
  virtual void expand_signed(const poly::PolyContext& ctx, std::span<u64> dst,
                             std::size_t limbs, std::span<const i64> coeffs);
  virtual void expand_signed_i32(const poly::PolyContext& ctx,
                                 std::span<u64> dst, std::size_t limbs,
                                 std::span<const i32> coeffs);
};

/// Process-wide default backend (a shared ScalarBackend); what a
/// PolyContext uses when none is supplied.
std::shared_ptr<PolyBackend> default_backend();

}  // namespace abc::backend
