#include "backend/thread_pool_backend.hpp"

#include <algorithm>

#include "common/failpoint.hpp"

namespace abc::backend {

namespace {

// Identifies the pool (and lane) a thread belongs to, so nested
// parallel_for regions run inline on the owning worker.
thread_local ThreadPoolBackend* tls_pool = nullptr;
thread_local std::size_t tls_worker = 0;

}  // namespace

ThreadPoolBackend::ThreadPoolBackend(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPoolBackend::~ThreadPoolBackend() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPoolBackend::worker_loop(std::size_t worker_id) {
  tls_pool = this;
  tls_worker = worker_id;
  u64 seen = 0;
  for (;;) {
    std::shared_ptr<Task> task;
    {
      std::unique_lock<std::mutex> lk(m_);
      work_cv_.wait(lk, [&] { return stop_ || (task_ && generation_ != seen); });
      if (stop_) return;
      seen = generation_;
      task = task_;
    }
    run_share(*task, worker_id);
  }
}

void ThreadPoolBackend::run_share(Task& task, std::size_t worker_id) {
  const xf::OpCounts before = xf::op_counts();
  std::size_t processed = 0;
  for (;;) {
    const std::size_t i = task.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= task.count) break;
    try {
      ABC_FAILPOINT(fail::points::kBackendWorkerJob);
      (*task.job)(i, worker_id);
    } catch (...) {
      // Park the first exception for the submitting thread; the item still
      // counts as done so the region completes and the caller can rethrow.
      std::lock_guard<std::mutex> lk(task.ops_m);
      if (!task.error) task.error = std::current_exception();
    }
    ++processed;
  }
  if (processed == 0) return;
  // Fold this worker's op counts into the task *before* publishing the
  // processed items, so done == count implies all counts are aggregated.
  const xf::OpCounts delta = xf::op_counts() - before;
  {
    std::lock_guard<std::mutex> lk(task.ops_m);
    task.ops += delta;
  }
  if (task.done.fetch_add(processed, std::memory_order_acq_rel) + processed ==
      task.count) {
    { std::lock_guard<std::mutex> lk(m_); }  // pairs with the waiter's sleep
    done_cv_.notify_all();
  }
}

void ThreadPoolBackend::parallel_for(std::size_t count, const Job& job) {
  if (count == 0) return;
  if (tls_pool == this) {
    // Nested region from one of our own workers: run inline on its lane.
    // A throw here unwinds into the outer job, whose run_share parks it —
    // the same first-exception-wins contract as a top-level region.
    for (std::size_t i = 0; i < count; ++i) {
      ABC_FAILPOINT(fail::points::kBackendNestedJob);
      job(i, tls_worker);
    }
    return;
  }

  std::lock_guard<std::mutex> submit(submit_m_);
  auto task = std::make_shared<Task>();
  task->job = &job;
  task->count = count;
  {
    std::lock_guard<std::mutex> lk(m_);
    task_ = task;
    ++generation_;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lk(m_);
    done_cv_.wait(lk, [&] {
      return task->done.load(std::memory_order_acquire) == count;
    });
    task_ = nullptr;
  }
  // Make the caller's analytic accounting identical to a scalar run.
  xf::op_counts() += task->ops;
  if (task->error) std::rethrow_exception(task->error);
}

}  // namespace abc::backend
