#pragma once

/// @file thread_pool_backend.hpp
/// Execution backend with a persistent worker pool. parallel_for fans the
/// index range out across the workers (atomic work-stealing counter, one
/// index at a time — each index is a whole limb or batch item, so the claim
/// cost is negligible); the calling thread blocks until the range is done
/// and then absorbs the op counts the workers accumulated.
///
/// Nested parallel_for calls issued from inside a job (e.g. a batch item
/// running per-limb NTTs through the same backend) execute inline on that
/// worker — parallelism is applied at the outermost region only, which
/// keeps results and scheduling deterministic.
///
/// A job that throws does not kill the process: the first exception is
/// captured, the region runs to completion, and parallel_for rethrows it
/// on the submitting thread — matching ScalarBackend's caller-visible
/// behavior.

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "backend/poly_backend.hpp"
#include "transform/op_counter.hpp"

namespace abc::backend {

class ThreadPoolBackend final : public PolyBackend {
 public:
  /// @p threads worker threads; 0 means std::thread::hardware_concurrency().
  explicit ThreadPoolBackend(std::size_t threads = 0);
  ~ThreadPoolBackend() override;

  ThreadPoolBackend(const ThreadPoolBackend&) = delete;
  ThreadPoolBackend& operator=(const ThreadPoolBackend&) = delete;

  const char* name() const noexcept override { return "thread_pool"; }
  std::size_t workers() const noexcept override { return threads_.size(); }

  void parallel_for(std::size_t count, const Job& job) override;

 private:
  struct Task {
    const Job* job = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex ops_m;
    xf::OpCounts ops;            // worker-side op counts, guarded by ops_m
    std::exception_ptr error;    // first job exception, guarded by ops_m
  };

  void worker_loop(std::size_t worker_id);
  void run_share(Task& task, std::size_t worker_id);

  std::vector<std::thread> threads_;
  std::mutex m_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Task> task_;  // current region, null when idle
  u64 generation_ = 0;
  bool stop_ = false;
  std::mutex submit_m_;  // serializes top-level regions
};

}  // namespace abc::backend
