#pragma once

/// @file scalar_backend.hpp
/// Single-threaded execution backend preserving the seed semantics: every
/// kernel runs inline on the calling thread, one limb after another. This
/// is the process-wide default and the reference the parallel backends are
/// tested against (bit-identical outputs, identical op counts).

#include "backend/poly_backend.hpp"
#include "common/failpoint.hpp"

namespace abc::backend {

class ScalarBackend final : public PolyBackend {
 public:
  const char* name() const noexcept override { return "scalar"; }
  std::size_t workers() const noexcept override { return 1; }

  void parallel_for(std::size_t count, const Job& job) override {
    for (std::size_t i = 0; i < count; ++i) {
      // Same injection site as the pool's worker body, so a fault sweep
      // exercises identical failure semantics on every backend.
      ABC_FAILPOINT(fail::points::kBackendWorkerJob);
      job(i, 0);
    }
  }
};

}  // namespace abc::backend
