#include "backend/poly_backend.hpp"

#include "backend/scalar_backend.hpp"
#include "common/check.hpp"
#include "poly/poly_context.hpp"
#include "simd/dyadic_kernels.hpp"
#include "transform/op_counter.hpp"

namespace abc::backend {

namespace {

/// One limb of an RnsPoly as a span, limb-major storage.
std::span<u64> limb_of(std::span<u64> data, std::size_t i, std::size_t n) {
  return data.subspan(i * n, n);
}
std::span<const u64> limb_of(std::span<const u64> data, std::size_t i,
                             std::size_t n) {
  return data.subspan(i * n, n);
}

}  // namespace

void PolyBackend::ntt_forward(const poly::PolyContext& ctx,
                              std::span<u64> data, std::size_t limbs) {
  const std::size_t n = ctx.n();
  parallel_for(limbs, [&](std::size_t i, std::size_t) {
    ctx.ntt(i).forward(limb_of(data, i, n));
  });
}

void PolyBackend::ntt_inverse(const poly::PolyContext& ctx,
                              std::span<u64> data, std::size_t limbs) {
  const std::size_t n = ctx.n();
  parallel_for(limbs, [&](std::size_t i, std::size_t) {
    ctx.ntt(i).inverse(limb_of(data, i, n));
  });
}

// The element-wise kernels below route through the simd/ dyadic kernel set
// (AVX2 or portable, runtime-dispatched) with the per-limb word constants
// hoisted out of the loops; results are bit-identical to the seed's
// Modulus::add/sub/mul element loops.

void PolyBackend::add(const poly::PolyContext& ctx, std::span<u64> dst,
                      std::span<const u64> src, std::size_t limbs) {
  const std::size_t n = ctx.n();
  parallel_for(limbs, [&](std::size_t i, std::size_t) {
    const simd::DyadicModulus& m = ctx.dyadic(i);
    simd::dyadic_add(m, limb_of(dst, i, n).data(),
                     limb_of(src, i, n).data(), n);
    xf::op_counts().poly_add += n;
  });
}

void PolyBackend::sub(const poly::PolyContext& ctx, std::span<u64> dst,
                      std::span<const u64> src, std::size_t limbs) {
  const std::size_t n = ctx.n();
  parallel_for(limbs, [&](std::size_t i, std::size_t) {
    const simd::DyadicModulus& m = ctx.dyadic(i);
    simd::dyadic_sub(m, limb_of(dst, i, n).data(),
                     limb_of(src, i, n).data(), n);
    xf::op_counts().poly_add += n;
  });
}

void PolyBackend::mul(const poly::PolyContext& ctx, std::span<u64> dst,
                      std::span<const u64> src, std::size_t limbs) {
  const std::size_t n = ctx.n();
  parallel_for(limbs, [&](std::size_t i, std::size_t) {
    const simd::DyadicModulus& m = ctx.dyadic(i);
    simd::dyadic_mul(m, limb_of(dst, i, n).data(),
                     limb_of(src, i, n).data(), n);
    xf::op_counts().poly_mul += n;
  });
}

void PolyBackend::fma(const poly::PolyContext& ctx, std::span<u64> dst,
                      std::span<const u64> a, std::span<const u64> b,
                      std::size_t limbs) {
  const std::size_t n = ctx.n();
  parallel_for(limbs, [&](std::size_t i, std::size_t) {
    const simd::DyadicModulus& m = ctx.dyadic(i);
    simd::dyadic_fma(m, limb_of(dst, i, n).data(), limb_of(a, i, n).data(),
                     limb_of(b, i, n).data(), n);
    xf::op_counts().poly_mul += n;
    xf::op_counts().poly_add += n;
  });
}

void PolyBackend::negate(const poly::PolyContext& ctx, std::span<u64> dst,
                         std::size_t limbs) {
  const std::size_t n = ctx.n();
  parallel_for(limbs, [&](std::size_t i, std::size_t) {
    const simd::DyadicModulus& m = ctx.dyadic(i);
    simd::dyadic_negate(m, limb_of(dst, i, n).data(), n);
    xf::op_counts().poly_add += n;
  });
}

void PolyBackend::negate_add(const poly::PolyContext& ctx, std::span<u64> dst,
                             std::span<const u64> src, std::size_t limbs) {
  const std::size_t n = ctx.n();
  parallel_for(limbs, [&](std::size_t i, std::size_t) {
    const simd::DyadicModulus& m = ctx.dyadic(i);
    simd::dyadic_negate_add(m, limb_of(dst, i, n).data(),
                            limb_of(src, i, n).data(), n);
    // Same accounting as the unfused negate + add chain.
    xf::op_counts().poly_add += 2 * n;
  });
}

void PolyBackend::fma_into(const poly::PolyContext& ctx, std::span<u64> out,
                           std::span<const u64> base, std::span<const u64> a,
                           std::span<const u64> b, std::size_t limbs) {
  const std::size_t n = ctx.n();
  parallel_for(limbs, [&](std::size_t i, std::size_t) {
    const simd::DyadicModulus& m = ctx.dyadic(i);
    simd::dyadic_fma_into(m, limb_of(out, i, n).data(),
                          limb_of(base, i, n).data(), limb_of(a, i, n).data(),
                          limb_of(b, i, n).data(), n);
    // Same accounting as the unfused copy + fma chain.
    xf::op_counts().poly_mul += n;
    xf::op_counts().poly_add += n;
  });
}

void PolyBackend::mul_scalar(const poly::PolyContext& ctx, std::span<u64> dst,
                             std::size_t limbs, u64 scalar) {
  const std::size_t n = ctx.n();
  parallel_for(limbs, [&](std::size_t i, std::size_t) {
    const rns::Modulus& q = ctx.modulus(i);
    const rns::ShoupMul s = rns::ShoupMul::make(q.reduce(scalar), q);
    simd::dyadic_mul_scalar(ctx.dyadic(i), limb_of(dst, i, n).data(), n,
                            s.operand, s.quotient);
    xf::op_counts().poly_mul += n;
  });
}

void PolyBackend::expand_signed(const poly::PolyContext& ctx,
                                std::span<u64> dst, std::size_t limbs,
                                std::span<const i64> coeffs) {
  const std::size_t n = ctx.n();
  ABC_CHECK_ARG(coeffs.size() == n, "coefficient count mismatch");
  parallel_for(limbs, [&](std::size_t i, std::size_t) {
    const rns::Modulus& q = ctx.modulus(i);
    std::span<u64> d = limb_of(dst, i, n);
    for (std::size_t j = 0; j < n; ++j) d[j] = q.from_signed(coeffs[j]);
    xf::op_counts().other += n;  // RNS expansion work
  });
}

void PolyBackend::expand_signed_i32(const poly::PolyContext& ctx,
                                    std::span<u64> dst, std::size_t limbs,
                                    std::span<const i32> coeffs) {
  const std::size_t n = ctx.n();
  ABC_CHECK_ARG(coeffs.size() == n, "coefficient count mismatch");
  parallel_for(limbs, [&](std::size_t i, std::size_t) {
    const rns::Modulus& q = ctx.modulus(i);
    std::span<u64> d = limb_of(dst, i, n);
    for (std::size_t j = 0; j < n; ++j) d[j] = q.from_signed(coeffs[j]);
    xf::op_counts().other += n;
  });
}

std::shared_ptr<PolyBackend> default_backend() {
  static std::shared_ptr<PolyBackend> instance =
      std::make_shared<ScalarBackend>();
  return instance;
}

}  // namespace abc::backend
