#pragma once

/// @file rns_poly.hpp
/// Polynomial in R_Q = Z_Q[X]/(X^N + 1) stored limb-wise in the RNS, with a
/// domain tag distinguishing coefficient form from NTT (evaluation) form.
/// Element-wise operations are only legal between polynomials in the same
/// domain at the same level; the class enforces that at runtime.
///
/// All element-wise arithmetic and domain conversions execute through the
/// PolyBackend owned by the PolyContext (see backend/poly_backend.hpp), so
/// the same code runs serially or across a worker pool depending on how
/// the context was built.

#include <memory>
#include <span>
#include <vector>

#include "poly/poly_context.hpp"

namespace abc::poly {

enum class Domain {
  kCoeff,  // coefficient representation
  kEval,   // NTT / evaluation representation (bit-reversed order)
};

class RnsPoly {
 public:
  RnsPoly(std::shared_ptr<const PolyContext> ctx, std::size_t limbs,
          Domain domain);

  const PolyContext& context() const noexcept { return *ctx_; }
  std::shared_ptr<const PolyContext> context_ptr() const noexcept {
    return ctx_;
  }
  std::size_t n() const noexcept { return ctx_->n(); }
  std::size_t limbs() const noexcept { return limbs_; }
  Domain domain() const noexcept { return domain_; }

  std::span<u64> limb(std::size_t i);
  std::span<const u64> limb(std::size_t i) const;

  /// Size in bytes at a given packed word width (for DRAM traffic models).
  double packed_bytes(int bits_per_coeff) const noexcept {
    return static_cast<double>(limbs_ * n()) * bits_per_coeff / 8.0;
  }

  // -- domain conversion ---------------------------------------------------
  void to_eval();   // forward NTT on every limb
  void to_coeff();  // inverse NTT on every limb

  // -- initialization ------------------------------------------------------
  void set_zero();
  /// Re-initializes to @p limbs limbs in @p domain, reusing the existing
  /// allocation when its capacity suffices (hot-path scratch). Coefficient
  /// contents are unspecified afterwards: callers must overwrite every
  /// coefficient (via set_from_signed* or a sampler fill) before use.
  void reset(std::size_t limbs, Domain domain);
  /// RNS-expand centered signed coefficients into every limb ("Expand RNS").
  void set_from_signed(std::span<const i64> coeffs);
  void set_from_signed_i32(std::span<const i32> coeffs);

  // -- element-wise arithmetic (same domain, same limbs) --------------------
  void add_inplace(const RnsPoly& other);
  void sub_inplace(const RnsPoly& other);
  void negate_inplace();
  /// Dyadic product; requires evaluation domain.
  void mul_inplace(const RnsPoly& other);
  /// this += a * b (single pass, evaluation domain).
  void fma_inplace(const RnsPoly& a, const RnsPoly& b);
  /// this = other - this (fused negate-then-add, one pass).
  void negate_add_inplace(const RnsPoly& other);
  /// this = base + a * b (fused copy-then-fma, one pass; evaluation
  /// domain). Adopts base's domain/limbs; this must not alias a or b.
  void set_fma(const RnsPoly& base, const RnsPoly& a, const RnsPoly& b);
  /// Multiply limb i by scalar mod q_i (same scalar reduced per limb).
  void mul_scalar_inplace(u64 scalar);

  /// Drop the last limb (rescale bookkeeping; data is truncated).
  void drop_last_limb();

  /// Galois automorphism sigma_g: X -> X^g over Z[X]/(X^N + 1), applied in
  /// the coefficient domain. Coefficient i lands at position i*g mod 2N,
  /// negated when it falls in the upper half (X^N = -1). Requires an odd
  /// @p galois_elt < 2N (the valid automorphism group); limbs fan out
  /// across the backend with one limb per worker, so the result is
  /// bit-identical for any worker count.
  RnsPoly automorphism(u32 galois_elt) const;

  /// Deep copy with fewer limbs (prefix).
  RnsPoly prefix_copy(std::size_t limbs) const;

  /// Copies the first @p limbs limbs of @p src into this polynomial,
  /// adopting src's domain and reusing this allocation when possible.
  void assign_prefix(const RnsPoly& src, std::size_t limbs);

 private:
  void check_compatible(const RnsPoly& other) const;

  std::shared_ptr<const PolyContext> ctx_;
  std::size_t limbs_;
  Domain domain_;
  std::vector<u64> data_;  // limbs_ * n contiguous, limb-major
};

}  // namespace abc::poly
