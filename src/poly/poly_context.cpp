#include "poly/poly_context.hpp"

#include "common/check.hpp"

namespace abc::poly {

PolyContext::PolyContext(int log_n, const std::vector<u64>& primes,
                         std::shared_ptr<backend::PolyBackend> backend)
    : log_n_(log_n),
      n_(std::size_t{1} << log_n),
      basis_(primes),
      backend_(backend ? std::move(backend) : backend::default_backend()) {
  ABC_CHECK_ARG(log_n >= 2 && log_n <= 17, "log_n out of range");
  ntt_.reserve(primes.size());
  dyadic_.reserve(primes.size());
  for (std::size_t i = 0; i < basis_.size(); ++i) {
    ntt_.emplace_back(basis_.modulus(i), log_n);
    dyadic_.push_back(simd::DyadicModulus::make(basis_.modulus(i)));
  }
}

}  // namespace abc::poly
