#pragma once

/// @file poly_context.hpp
/// Shared immutable context for RNS polynomials: the prime basis, one NTT
/// table per prime, and the execution backend every polynomial operation
/// dispatches through. Built once per parameter set and shared by all
/// polynomials through a shared_ptr.

#include <memory>
#include <vector>

#include "backend/poly_backend.hpp"
#include "rns/rns_basis.hpp"
#include "simd/dyadic_kernels.hpp"
#include "transform/ntt.hpp"

namespace abc::poly {

class PolyContext {
 public:
  /// Builds NTT tables for degree 2^log_n over every prime in @p primes.
  /// Operations execute through @p backend (the process-wide ScalarBackend
  /// when null).
  PolyContext(int log_n, const std::vector<u64>& primes,
              std::shared_ptr<backend::PolyBackend> backend = nullptr);

  static std::shared_ptr<const PolyContext> create(
      int log_n, const std::vector<u64>& primes,
      std::shared_ptr<backend::PolyBackend> backend = nullptr) {
    return std::make_shared<const PolyContext>(log_n, primes,
                                               std::move(backend));
  }

  int log_n() const noexcept { return log_n_; }
  std::size_t n() const noexcept { return n_; }
  std::size_t max_limbs() const noexcept { return basis_.size(); }

  const rns::RnsBasis& basis() const noexcept { return basis_; }
  const rns::Modulus& modulus(std::size_t limb) const {
    return basis_.modulus(limb);
  }
  const xf::NttTables& ntt(std::size_t limb) const { return ntt_.at(limb); }

  /// Precomputed per-limb constants for the simd/ dyadic kernels (saves the
  /// 128-bit division DyadicModulus::make costs on every kernel call).
  const simd::DyadicModulus& dyadic(std::size_t limb) const {
    return dyadic_.at(limb);
  }

  backend::PolyBackend& backend() const noexcept { return *backend_; }
  const std::shared_ptr<backend::PolyBackend>& backend_ptr() const noexcept {
    return backend_;
  }

 private:
  int log_n_;
  std::size_t n_;
  rns::RnsBasis basis_;
  std::vector<xf::NttTables> ntt_;
  std::vector<simd::DyadicModulus> dyadic_;
  std::shared_ptr<backend::PolyBackend> backend_;
};

}  // namespace abc::poly
