#include "poly/rns_poly.hpp"

#include "common/check.hpp"
#include "transform/op_counter.hpp"

namespace abc::poly {

RnsPoly::RnsPoly(std::shared_ptr<const PolyContext> ctx, std::size_t limbs,
                 Domain domain)
    : ctx_(std::move(ctx)), limbs_(limbs), domain_(domain) {
  ABC_CHECK_ARG(ctx_ != nullptr, "null context");
  ABC_CHECK_ARG(limbs >= 1 && limbs <= ctx_->max_limbs(),
                "limb count out of range");
  data_.assign(limbs_ * ctx_->n(), 0);
}

std::span<u64> RnsPoly::limb(std::size_t i) {
  ABC_CHECK_ARG(i < limbs_, "limb index out of range");
  return std::span<u64>(data_).subspan(i * n(), n());
}

std::span<const u64> RnsPoly::limb(std::size_t i) const {
  ABC_CHECK_ARG(i < limbs_, "limb index out of range");
  return std::span<const u64>(data_).subspan(i * n(), n());
}

void RnsPoly::to_eval() {
  ABC_CHECK_STATE(domain_ == Domain::kCoeff, "already in evaluation domain");
  for (std::size_t i = 0; i < limbs_; ++i) ctx_->ntt(i).forward(limb(i));
  domain_ = Domain::kEval;
}

void RnsPoly::to_coeff() {
  ABC_CHECK_STATE(domain_ == Domain::kEval, "already in coefficient domain");
  for (std::size_t i = 0; i < limbs_; ++i) ctx_->ntt(i).inverse(limb(i));
  domain_ = Domain::kCoeff;
}

void RnsPoly::set_zero() { std::fill(data_.begin(), data_.end(), 0); }

void RnsPoly::set_from_signed(std::span<const i64> coeffs) {
  ABC_CHECK_ARG(coeffs.size() == n(), "coefficient count mismatch");
  for (std::size_t i = 0; i < limbs_; ++i) {
    const rns::Modulus& q = ctx_->modulus(i);
    std::span<u64> dst = limb(i);
    for (std::size_t j = 0; j < coeffs.size(); ++j) {
      dst[j] = q.from_signed(coeffs[j]);
    }
  }
  xf::op_counts().other += limbs_ * n();  // RNS expansion work
}

void RnsPoly::set_from_signed_i32(std::span<const i32> coeffs) {
  ABC_CHECK_ARG(coeffs.size() == n(), "coefficient count mismatch");
  for (std::size_t i = 0; i < limbs_; ++i) {
    const rns::Modulus& q = ctx_->modulus(i);
    std::span<u64> dst = limb(i);
    for (std::size_t j = 0; j < coeffs.size(); ++j) {
      dst[j] = q.from_signed(coeffs[j]);
    }
  }
  xf::op_counts().other += limbs_ * n();
}

void RnsPoly::check_compatible(const RnsPoly& other) const {
  ABC_CHECK_ARG(ctx_.get() == other.ctx_.get(), "context mismatch");
  ABC_CHECK_ARG(limbs_ == other.limbs_, "limb count mismatch");
  ABC_CHECK_ARG(domain_ == other.domain_, "domain mismatch");
}

void RnsPoly::add_inplace(const RnsPoly& other) {
  check_compatible(other);
  for (std::size_t i = 0; i < limbs_; ++i) {
    const rns::Modulus& q = ctx_->modulus(i);
    std::span<u64> dst = limb(i);
    std::span<const u64> src = other.limb(i);
    for (std::size_t j = 0; j < dst.size(); ++j) dst[j] = q.add(dst[j], src[j]);
  }
  xf::op_counts().poly_add += limbs_ * n();
}

void RnsPoly::sub_inplace(const RnsPoly& other) {
  check_compatible(other);
  for (std::size_t i = 0; i < limbs_; ++i) {
    const rns::Modulus& q = ctx_->modulus(i);
    std::span<u64> dst = limb(i);
    std::span<const u64> src = other.limb(i);
    for (std::size_t j = 0; j < dst.size(); ++j) dst[j] = q.sub(dst[j], src[j]);
  }
  xf::op_counts().poly_add += limbs_ * n();
}

void RnsPoly::negate_inplace() {
  for (std::size_t i = 0; i < limbs_; ++i) {
    const rns::Modulus& q = ctx_->modulus(i);
    for (u64& v : limb(i)) v = q.negate(v);
  }
  xf::op_counts().poly_add += limbs_ * n();
}

void RnsPoly::mul_inplace(const RnsPoly& other) {
  check_compatible(other);
  ABC_CHECK_ARG(domain_ == Domain::kEval,
                "dyadic product requires evaluation domain");
  for (std::size_t i = 0; i < limbs_; ++i) {
    const rns::Modulus& q = ctx_->modulus(i);
    std::span<u64> dst = limb(i);
    std::span<const u64> src = other.limb(i);
    for (std::size_t j = 0; j < dst.size(); ++j) dst[j] = q.mul(dst[j], src[j]);
  }
  xf::op_counts().poly_mul += limbs_ * n();
}

void RnsPoly::fma_inplace(const RnsPoly& a, const RnsPoly& b) {
  check_compatible(a);
  check_compatible(b);
  ABC_CHECK_ARG(domain_ == Domain::kEval,
                "fused multiply-add requires evaluation domain");
  for (std::size_t i = 0; i < limbs_; ++i) {
    const rns::Modulus& q = ctx_->modulus(i);
    std::span<u64> dst = limb(i);
    std::span<const u64> sa = a.limb(i);
    std::span<const u64> sb = b.limb(i);
    for (std::size_t j = 0; j < dst.size(); ++j) {
      dst[j] = q.add(dst[j], q.mul(sa[j], sb[j]));
    }
  }
  xf::op_counts().poly_mul += limbs_ * n();
  xf::op_counts().poly_add += limbs_ * n();
}

void RnsPoly::mul_scalar_inplace(u64 scalar) {
  for (std::size_t i = 0; i < limbs_; ++i) {
    const rns::Modulus& q = ctx_->modulus(i);
    const u64 s = q.reduce(scalar);
    for (u64& v : limb(i)) v = q.mul(v, s);
  }
  xf::op_counts().poly_mul += limbs_ * n();
}

void RnsPoly::drop_last_limb() {
  ABC_CHECK_STATE(limbs_ >= 2, "cannot drop the only limb");
  --limbs_;
  data_.resize(limbs_ * n());
}

RnsPoly RnsPoly::prefix_copy(std::size_t limbs) const {
  ABC_CHECK_ARG(limbs >= 1 && limbs <= limbs_, "prefix limb count invalid");
  RnsPoly out(ctx_, limbs, domain_);
  std::copy(data_.begin(),
            data_.begin() + static_cast<std::ptrdiff_t>(limbs * n()),
            out.data_.begin());
  return out;
}

}  // namespace abc::poly
