#include "poly/rns_poly.hpp"

#include "common/check.hpp"

namespace abc::poly {

RnsPoly::RnsPoly(std::shared_ptr<const PolyContext> ctx, std::size_t limbs,
                 Domain domain)
    : ctx_(std::move(ctx)), limbs_(limbs), domain_(domain) {
  ABC_CHECK_ARG(ctx_ != nullptr, "null context");
  ABC_CHECK_ARG(limbs >= 1 && limbs <= ctx_->max_limbs(),
                "limb count out of range");
  data_.assign(limbs_ * ctx_->n(), 0);
}

std::span<u64> RnsPoly::limb(std::size_t i) {
  ABC_CHECK_ARG(i < limbs_, "limb index out of range");
  return std::span<u64>(data_).subspan(i * n(), n());
}

std::span<const u64> RnsPoly::limb(std::size_t i) const {
  ABC_CHECK_ARG(i < limbs_, "limb index out of range");
  return std::span<const u64>(data_).subspan(i * n(), n());
}

void RnsPoly::to_eval() {
  ABC_CHECK_STATE(domain_ == Domain::kCoeff, "already in evaluation domain");
  ctx_->backend().ntt_forward(*ctx_, data_, limbs_);
  domain_ = Domain::kEval;
}

void RnsPoly::to_coeff() {
  ABC_CHECK_STATE(domain_ == Domain::kEval, "already in coefficient domain");
  ctx_->backend().ntt_inverse(*ctx_, data_, limbs_);
  domain_ = Domain::kCoeff;
}

void RnsPoly::set_zero() { std::fill(data_.begin(), data_.end(), 0); }

void RnsPoly::reset(std::size_t limbs, Domain domain) {
  ABC_CHECK_ARG(limbs >= 1 && limbs <= ctx_->max_limbs(),
                "limb count out of range");
  limbs_ = limbs;
  domain_ = domain;
  data_.resize(limbs_ * n());  // grows zeroed; reused words left as-is
}

void RnsPoly::set_from_signed(std::span<const i64> coeffs) {
  ctx_->backend().expand_signed(*ctx_, data_, limbs_, coeffs);
}

void RnsPoly::set_from_signed_i32(std::span<const i32> coeffs) {
  ctx_->backend().expand_signed_i32(*ctx_, data_, limbs_, coeffs);
}

void RnsPoly::check_compatible(const RnsPoly& other) const {
  ABC_CHECK_ARG(ctx_.get() == other.ctx_.get(), "context mismatch");
  ABC_CHECK_ARG(limbs_ == other.limbs_, "limb count mismatch");
  ABC_CHECK_ARG(domain_ == other.domain_, "domain mismatch");
}

void RnsPoly::add_inplace(const RnsPoly& other) {
  check_compatible(other);
  ctx_->backend().add(*ctx_, data_, other.data_, limbs_);
}

void RnsPoly::sub_inplace(const RnsPoly& other) {
  check_compatible(other);
  ctx_->backend().sub(*ctx_, data_, other.data_, limbs_);
}

void RnsPoly::negate_inplace() {
  ctx_->backend().negate(*ctx_, data_, limbs_);
}

void RnsPoly::mul_inplace(const RnsPoly& other) {
  check_compatible(other);
  ABC_CHECK_ARG(domain_ == Domain::kEval,
                "dyadic product requires evaluation domain");
  ctx_->backend().mul(*ctx_, data_, other.data_, limbs_);
}

void RnsPoly::fma_inplace(const RnsPoly& a, const RnsPoly& b) {
  check_compatible(a);
  check_compatible(b);
  ABC_CHECK_ARG(domain_ == Domain::kEval,
                "fused multiply-add requires evaluation domain");
  ctx_->backend().fma(*ctx_, data_, a.data_, b.data_, limbs_);
}

void RnsPoly::negate_add_inplace(const RnsPoly& other) {
  check_compatible(other);
  ctx_->backend().negate_add(*ctx_, data_, other.data_, limbs_);
}

void RnsPoly::set_fma(const RnsPoly& base, const RnsPoly& a,
                      const RnsPoly& b) {
  ABC_CHECK_ARG(ctx_.get() == base.ctx_.get(), "context mismatch");
  base.check_compatible(a);
  base.check_compatible(b);
  ABC_CHECK_ARG(base.domain_ == Domain::kEval,
                "fused multiply-add requires evaluation domain");
  reset(base.limbs_, base.domain_);
  ctx_->backend().fma_into(*ctx_, data_, base.data_, a.data_, b.data_,
                           limbs_);
}

void RnsPoly::mul_scalar_inplace(u64 scalar) {
  ctx_->backend().mul_scalar(*ctx_, data_, limbs_, scalar);
}

void RnsPoly::drop_last_limb() {
  ABC_CHECK_STATE(limbs_ >= 2, "cannot drop the only limb");
  --limbs_;
  data_.resize(limbs_ * n());
}

RnsPoly RnsPoly::automorphism(u32 galois_elt) const {
  ABC_CHECK_ARG(domain_ == Domain::kCoeff,
                "automorphism requires coefficient domain");
  const std::size_t two_n = 2 * n();
  ABC_CHECK_ARG((galois_elt & 1u) != 0 && galois_elt < two_n,
                "galois element must be odd and < 2N");
  RnsPoly out(ctx_, limbs_, domain_);
  ctx_->backend().parallel_for(limbs_, [&](std::size_t l, std::size_t) {
    const rns::Modulus& q = ctx_->modulus(l);
    const std::span<const u64> src = limb(l);
    const std::span<u64> dst = out.limb(l);
    std::size_t idx = 0;  // i * g mod 2N, maintained incrementally
    for (std::size_t i = 0; i < src.size(); ++i) {
      if (idx < n()) {
        dst[idx] = src[i];
      } else {
        dst[idx - n()] = q.negate(src[i]);
      }
      idx = (idx + galois_elt) & (two_n - 1);
    }
  });
  return out;
}

RnsPoly RnsPoly::prefix_copy(std::size_t limbs) const {
  ABC_CHECK_ARG(limbs >= 1 && limbs <= limbs_, "prefix limb count invalid");
  RnsPoly out(ctx_, limbs, domain_);
  std::copy(data_.begin(),
            data_.begin() + static_cast<std::ptrdiff_t>(limbs * n()),
            out.data_.begin());
  return out;
}

void RnsPoly::assign_prefix(const RnsPoly& src, std::size_t limbs) {
  ABC_CHECK_ARG(ctx_.get() == src.ctx_.get(), "context mismatch");
  ABC_CHECK_ARG(limbs >= 1 && limbs <= src.limbs_,
                "prefix limb count invalid");
  limbs_ = limbs;
  domain_ = src.domain_;
  data_.assign(src.data_.begin(),
               src.data_.begin() + static_cast<std::ptrdiff_t>(limbs * n()));
}

}  // namespace abc::poly
