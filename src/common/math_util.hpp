#pragma once

/// @file math_util.hpp
/// Number-theoretic primitives: modular exponentiation/inverse, extended
/// Euclid, and a deterministic 64-bit Miller-Rabin primality test. These back
/// the NTT-friendly prime search (paper Sec. IV-A) and the RNS/CRT machinery.

#include <optional>

#include "common/types.hpp"

namespace abc {

/// (a + b) mod m, assuming a, b < m < 2^63.
constexpr u64 add_mod_u64(u64 a, u64 b, u64 m) noexcept {
  u64 s = a + b;
  return (s >= m) ? s - m : s;
}

/// (a - b) mod m, assuming a, b < m.
constexpr u64 sub_mod_u64(u64 a, u64 b, u64 m) noexcept {
  return (a >= b) ? a - b : a + m - b;
}

/// (a * b) mod m via 128-bit product; works for any m < 2^64.
constexpr u64 mul_mod_u64(u64 a, u64 b, u64 m) noexcept {
  return static_cast<u64>(mul_wide(a, b) % m);
}

/// a^e mod m (square-and-multiply); m < 2^64.
u64 pow_mod_u64(u64 a, u64 e, u64 m) noexcept;

/// Greatest common divisor.
u64 gcd_u64(u64 a, u64 b) noexcept;

/// Extended Euclid: returns (g, x, y) with a*x + b*y = g = gcd(a, b).
struct EgcdResult {
  i128 g;
  i128 x;
  i128 y;
};
EgcdResult egcd_i128(i128 a, i128 b) noexcept;

/// Modular inverse of a mod m, or nullopt if gcd(a, m) != 1.
std::optional<u64> inverse_mod_u64(u64 a, u64 m) noexcept;

/// Inverse of odd @p a modulo 2^bits (bits <= 64), computed by Newton
/// (Hensel) lifting; this is the exact QInv of the Montgomery algorithm.
u64 inverse_mod_pow2(u64 a, int bits) noexcept;

/// Deterministic Miller-Rabin for 64-bit integers.
bool is_prime_u64(u64 n) noexcept;

}  // namespace abc
