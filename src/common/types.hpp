#pragma once

/// @file types.hpp
/// Fixed-width integer aliases used across the ABC-FHE code base.
///
/// The library manipulates 36-bit RNS limbs, 44-bit datapath words and
/// 128-bit intermediate products, so the 128-bit compiler extensions are
/// wrapped here once.

#include <cstddef>
#include <cstdint>

namespace abc {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

// GCC/Clang built-in 128-bit integers; required for Barrett/Montgomery
// reduction of 72..88-bit products.
using u128 = unsigned __int128;
using i128 = __int128;

/// Low/high 64-bit halves of a 128-bit value.
constexpr u64 lo64(u128 x) noexcept { return static_cast<u64>(x); }
constexpr u64 hi64(u128 x) noexcept { return static_cast<u64>(x >> 64); }

/// Full 64x64 -> 128-bit product.
constexpr u128 mul_wide(u64 a, u64 b) noexcept {
  return static_cast<u128>(a) * static_cast<u128>(b);
}

/// High 64 bits of a 64x64 product.
constexpr u64 mul_hi(u64 a, u64 b) noexcept { return hi64(mul_wide(a, b)); }

}  // namespace abc
