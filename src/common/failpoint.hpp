#pragma once

/// @file failpoint.hpp
/// Deterministic fault-injection registry — the failure-semantics test rig
/// for everything above it. A named `ABC_FAILPOINT(name)` is a single
/// relaxed atomic load and a predictable branch while nothing is armed
/// (cheap enough for hot paths; the engine-throughput bench verifies no
/// measurable overhead), and only takes the slow path once a test or an
/// `ABC_FAILPOINTS=` env spec arms a policy for that name.
///
/// Policies are deterministic on purpose: fire-on-Nth-hit counts hits,
/// fire-with-probability draws from a per-point splitmix64 PRNG seeded by
/// the policy — rerunning the same serial program replays the same fault
/// pattern. (Under a thread pool the *global* hit order depends on
/// scheduling, so probabilistic points are for robustness sweeps, not
/// bit-identity tests; per-item determinism tests inject faults through
/// deterministically malformed inputs instead.)
///
/// Actions model the failures the serving daemon must survive: throwing
/// abc::InvalidArgument (a rejected input), abc::LogicError (an internal
/// invariant tripping), std::runtime_error (a non-abc exception crossing
/// the layer), std::bad_alloc (allocation failure, FAB-style memory
/// pressure), or a delay (a stalled worker) that continues normally.
///
/// Env spec grammar (parsed once at process start, before main):
///
///     ABC_FAILPOINTS="<entry>(;<entry>)*"
///     entry   := <name>=<action>[@<mod>(,<mod>)*]
///     action  := throw | logic | runtime | badalloc | delay:<microseconds>
///     mod     := hit:<n>          fire on the n-th hit only (1-based)
///              | prob:<p>[/<seed>] fire each hit with probability p
///              | limit:<k>         disarm after k fires
///
/// e.g. ABC_FAILPOINTS="serialize.ct=throw@hit:2;backend.worker_job=
/// delay:200@prob:0.01/7,limit:4". A malformed spec aborts the process
/// with a message — a fault-injection run with a silently ignored spec
/// would test nothing.
///
/// Compile-out: defining ABC_NO_FAILPOINTS removes even the branch; the
/// registry API stays linkable so tests build either way.

#include <atomic>
#include <cstddef>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace abc::fail {

/// What an armed failpoint does when its trigger fires.
enum class Action {
  kThrowInvalidArgument,  // abc::InvalidArgument — a rejected input
  kThrowLogicError,       // abc::LogicError — an invariant violation
  kThrowRuntimeError,     // std::runtime_error — a non-abc exception
  kThrowBadAlloc,         // std::bad_alloc — allocation failure
  kDelay,                 // sleep delay_us, then continue normally
};

/// When an armed failpoint fires.
enum class Trigger {
  kAlways,       // every hit
  kNthHit,       // hit number `nth` only (1-based)
  kProbability,  // each hit independently with `probability` (seeded PRNG)
};

struct Policy {
  Action action = Action::kThrowInvalidArgument;
  Trigger trigger = Trigger::kAlways;
  u64 nth = 1;               // kNthHit: the 1-based hit index that fires
  double probability = 1.0;  // kProbability: per-hit chance in [0, 1]
  u64 seed = 1;              // kProbability: seeds the per-point PRNG
  u64 delay_us = 0;          // kDelay: microseconds to sleep per fire
  u64 max_fires = 0;         // disarm after this many fires; 0 = unlimited
};

/// Arms (or re-arms, resetting counters) a policy for @p name.
void arm(std::string_view name, const Policy& policy);
/// Disarms @p name; a no-op when it was not armed.
void disarm(std::string_view name);
void disarm_all();

bool armed(std::string_view name);
/// Hits observed while armed / times the policy actually fired.
u64 hits(std::string_view name);
u64 fires(std::string_view name);

/// Lifetime totals across every point and every arm/disarm cycle
/// (per-point state dies with disarm; these never reset). Monotone —
/// the obs metrics registry re-exports them as failpoint.hits/fires.
u64 total_hits();
u64 total_fires();

/// Parses and arms an ABC_FAILPOINTS-grammar spec; throws InvalidArgument
/// on a malformed spec. Exposed for tests and tools.
void install_spec(std::string_view spec);

/// RAII arm/disarm for tests.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string_view name, const Policy& policy)
      : name_(name) {
    arm(name_, policy);
  }
  ~ScopedFailpoint() { disarm(name_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string name_;
};

/// The failpoint catalog. Every ABC_FAILPOINT in the tree uses one of
/// these names, and the fault-matrix suite iterates kAll — a point absent
/// here is a point no test will ever drive, so additions belong in both
/// places (and in the docs/ARCHITECTURE.md table).
namespace points {
inline constexpr const char* kPrngStreamSetup = "prng.stream_setup";
inline constexpr const char* kDeserializeCiphertext = "serialize.ct";
inline constexpr const char* kDeserializeBatch = "serialize.batch";
inline constexpr const char* kDeserializeKey = "serialize.key";
inline constexpr const char* kBackendWorkerJob = "backend.worker_job";
inline constexpr const char* kBackendNestedJob = "backend.nested_job";
inline constexpr const char* kKeySwitchScratch = "keyswitch.scratch";
inline constexpr const char* kEncryptItem = "engine.encrypt_item";
inline constexpr const char* kDecryptItem = "engine.decrypt_item";
inline constexpr const char* kVerifyItem = "engine.verify_item";
inline constexpr const char* kKeygenDigit = "engine.keygen_digit";

inline constexpr const char* kAll[] = {
    kPrngStreamSetup,   kDeserializeCiphertext, kDeserializeBatch,
    kDeserializeKey,    kBackendWorkerJob,      kBackendNestedJob,
    kKeySwitchScratch,  kEncryptItem,           kDecryptItem,
    kVerifyItem,        kKeygenDigit,
};

// Serving-daemon points. Kept in their own array because kAll is the
// *client round-trip* catalog (the fault matrix proves every kAll entry
// sits on the ClientSession path); these sit on the server's
// accept/dispatch/migrate/evaluate paths instead and are driven by
// tests/test_server.cpp's fault drills.
inline constexpr const char* kServerAccept = "server.accept";
inline constexpr const char* kServerQueueFull = "server.queue_full";
inline constexpr const char* kServerDispatch = "server.dispatch";
inline constexpr const char* kServerMigrate = "server.migrate";
inline constexpr const char* kServerKeyRegen = "server.key_regen";
inline constexpr const char* kEvaluateItem = "engine.evaluate_item";

inline constexpr const char* kServerAll[] = {
    kServerAccept, kServerQueueFull, kServerDispatch,
    kServerMigrate, kServerKeyRegen, kEvaluateItem,
};
}  // namespace points

namespace detail {

/// Number of currently armed points. The ABC_FAILPOINT fast path branches
/// on this being zero — one relaxed load, no fences, no registry lookup.
extern std::atomic<int> g_armed_count;

/// Slow path: registry lookup, trigger evaluation, action execution.
void hit(const char* name);

}  // namespace detail
}  // namespace abc::fail

#ifdef ABC_NO_FAILPOINTS
#define ABC_FAILPOINT(name) \
  do {                      \
  } while (false)
#else
/// Names a fault-injection site. No-op branch until the name is armed.
#define ABC_FAILPOINT(name)                                              \
  do {                                                                   \
    if (::abc::fail::detail::g_armed_count.load(                         \
            std::memory_order_relaxed) != 0) [[unlikely]] {              \
      ::abc::fail::detail::hit(name);                                    \
    }                                                                    \
  } while (false)
#endif
