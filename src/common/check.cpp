#include "common/check.hpp"

#include <sstream>

namespace abc::detail {
namespace {

std::string format(const char* kind, const char* expr, const std::string& msg,
                   const std::source_location& loc) {
  std::ostringstream os;
  os << kind << ": " << msg << " [" << expr << "] at " << loc.file_name() << ":"
     << loc.line();
  return os.str();
}

}  // namespace

void throw_invalid_argument(const char* expr, const std::string& msg,
                            std::source_location loc) {
  throw InvalidArgument(format("invalid argument", expr, msg, loc));
}

void throw_logic_error(const char* expr, const std::string& msg,
                       std::source_location loc) {
  throw LogicError(format("internal error", expr, msg, loc));
}

}  // namespace abc::detail
