#include "common/bigint.hpp"

#include <algorithm>
#include <cmath>

#include "common/bitops.hpp"
#include "common/check.hpp"

namespace abc {

BigUint::BigUint(u64 value) {
  if (value != 0) words_.push_back(value);
}

BigUint BigUint::from_words(std::vector<u64> words) {
  BigUint b;
  b.words_ = std::move(words);
  b.trim();
  return b;
}

void BigUint::trim() {
  while (!words_.empty() && words_.back() == 0) words_.pop_back();
}

int BigUint::bit_length() const noexcept {
  if (words_.empty()) return 0;
  return static_cast<int>(64 * (words_.size() - 1)) +
         abc::bit_length(words_.back());
}

int BigUint::compare(const BigUint& other) const noexcept {
  if (words_.size() != other.words_.size()) {
    return words_.size() < other.words_.size() ? -1 : 1;
  }
  for (std::size_t i = words_.size(); i-- > 0;) {
    if (words_[i] != other.words_[i]) return words_[i] < other.words_[i] ? -1 : 1;
  }
  return 0;
}

BigUint& BigUint::add(const BigUint& other) {
  const std::size_t n = std::max(words_.size(), other.words_.size());
  words_.resize(n, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    u128 s = static_cast<u128>(words_[i]) + carry;
    if (i < other.words_.size()) s += other.words_[i];
    words_[i] = lo64(s);
    carry = hi64(s);
  }
  if (carry != 0) words_.push_back(carry);
  return *this;
}

BigUint& BigUint::sub(const BigUint& other) {
  ABC_CHECK_ARG(compare(other) >= 0, "BigUint::sub would underflow");
  u64 borrow = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    u128 rhs = borrow;
    if (i < other.words_.size()) rhs += other.words_[i];
    u128 lhs = words_[i];
    if (lhs >= rhs) {
      words_[i] = static_cast<u64>(lhs - rhs);
      borrow = 0;
    } else {
      words_[i] = static_cast<u64>((u128{1} << 64) + lhs - rhs);
      borrow = 1;
    }
  }
  trim();
  return *this;
}

BigUint& BigUint::mul_u64(u64 factor) {
  if (factor == 0 || is_zero()) {
    words_.clear();
    return *this;
  }
  u64 carry = 0;
  for (auto& w : words_) {
    u128 p = mul_wide(w, factor) + carry;
    w = lo64(p);
    carry = hi64(p);
  }
  if (carry != 0) words_.push_back(carry);
  return *this;
}

BigUint& BigUint::shift_left(int bits) {
  ABC_CHECK_ARG(bits >= 0, "negative shift");
  if (is_zero() || bits == 0) return *this;
  const int word_shift = bits / 64;
  const int bit_shift = bits % 64;
  words_.insert(words_.begin(), static_cast<std::size_t>(word_shift), 0);
  if (bit_shift != 0) {
    u64 carry = 0;
    for (std::size_t i = static_cast<std::size_t>(word_shift); i < words_.size();
         ++i) {
      u64 next_carry = words_[i] >> (64 - bit_shift);
      words_[i] = (words_[i] << bit_shift) | carry;
      carry = next_carry;
    }
    if (carry != 0) words_.push_back(carry);
  }
  return *this;
}

BigUint BigUint::operator+(const BigUint& other) const {
  BigUint r = *this;
  r.add(other);
  return r;
}

BigUint BigUint::operator-(const BigUint& other) const {
  BigUint r = *this;
  r.sub(other);
  return r;
}

BigUint BigUint::operator*(u64 factor) const {
  BigUint r = *this;
  r.mul_u64(factor);
  return r;
}

BigUint BigUint::operator*(const BigUint& other) const {
  if (is_zero() || other.is_zero()) return BigUint{};
  std::vector<u64> acc(words_.size() + other.words_.size(), 0);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < other.words_.size(); ++j) {
      u128 cur = static_cast<u128>(acc[i + j]) + mul_wide(words_[i], other.words_[j]) +
                 carry;
      acc[i + j] = lo64(cur);
      carry = hi64(cur);
    }
    acc[i + other.words_.size()] += carry;
  }
  return from_words(std::move(acc));
}

u64 BigUint::mod_u64(u64 modulus) const noexcept {
  u128 rem = 0;
  for (std::size_t i = words_.size(); i-- > 0;) {
    rem = ((rem << 64) | words_[i]) % modulus;
  }
  return static_cast<u64>(rem);
}

BigUint BigUint::mod(const BigUint& other) const {
  ABC_CHECK_ARG(!other.is_zero(), "modulo by zero");
  if (compare(other) < 0) return *this;
  BigUint rem = *this;
  int shift = rem.bit_length() - other.bit_length();
  BigUint d = other;
  d.shift_left(shift);
  for (; shift >= 0; --shift) {
    if (rem.compare(d) >= 0) rem.sub(d);
    // Shift divisor right by one bit: rebuild cheaply.
    if (shift > 0) {
      BigUint next = other;
      next.shift_left(shift - 1);
      d = std::move(next);
    }
  }
  return rem;
}

double BigUint::to_double() const noexcept {
  double r = 0.0;
  for (std::size_t i = words_.size(); i-- > 0;) {
    r = r * 18446744073709551616.0 + static_cast<double>(words_[i]);
  }
  return r;
}

std::string BigUint::to_string() const {
  if (is_zero()) return "0";
  // Repeated division by 10^19 (largest power of ten below 2^64).
  constexpr u64 kChunk = 10000000000000000000ull;
  std::vector<u64> tmp = words_;
  std::string out;
  while (!tmp.empty()) {
    u128 rem = 0;
    for (std::size_t i = tmp.size(); i-- > 0;) {
      u128 cur = (rem << 64) | tmp[i];
      tmp[i] = static_cast<u64>(cur / kChunk);
      rem = cur % kChunk;
    }
    while (!tmp.empty() && tmp.back() == 0) tmp.pop_back();
    std::string part = std::to_string(static_cast<u64>(rem));
    if (!tmp.empty()) part.insert(0, 19 - part.size(), '0');
    out.insert(0, part);
  }
  return out;
}

double centered_to_double(const BigUint& value, const BigUint& q) {
  BigUint half = q;
  // half = floor(q / 2) via one-bit right shift emulated with words.
  std::vector<u64> w = half.words();
  u64 carry = 0;
  for (std::size_t i = w.size(); i-- > 0;) {
    u64 next_carry = w[i] & 1;
    w[i] = (w[i] >> 1) | (carry << 63);
    carry = next_carry;
  }
  half = BigUint::from_words(std::move(w));
  if (value <= half) return value.to_double();
  BigUint diff = q;
  diff.sub(value);
  return -diff.to_double();
}

}  // namespace abc
