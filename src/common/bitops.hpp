#pragma once

/// @file bitops.hpp
/// Bit-manipulation helpers shared by the NTT/FFT kernels, the prime search
/// and the hardware design-space analyzer.

#include <bit>

#include "common/check.hpp"
#include "common/types.hpp"

namespace abc {

/// True iff @p x is a power of two (zero is not).
constexpr bool is_power_of_two(u64 x) noexcept { return std::has_single_bit(x); }

/// Exact log2 of a power of two.
constexpr int log2_exact(u64 x) {
  ABC_CHECK_ARG(is_power_of_two(x), "log2_exact requires a power of two");
  return std::countr_zero(x);
}

/// Number of bits needed to represent @p x (0 -> 0).
constexpr int bit_length(u64 x) noexcept { return 64 - std::countl_zero(x); }

/// Reverse the low @p bits bits of @p x (the classic FFT index scramble).
constexpr u64 bit_reverse(u64 x, int bits) noexcept {
  u64 r = 0;
  for (int i = 0; i < bits; ++i) {
    r = (r << 1) | (x & 1);
    x >>= 1;
  }
  return r;
}

/// Reverse-increment used by streaming bit-reversed counters: adds one to the
/// bit-reversed representation of @p x over @p bits bits.
constexpr u64 bit_reversed_increment(u64 x, int bits) noexcept {
  u64 mask = u64{1} << (bits - 1);
  while (mask != 0 && (x & mask) != 0) {
    x ^= mask;
    mask >>= 1;
  }
  return x | mask;
}

/// Population count of the signed-digit (non-adjacent form) representation of
/// @p x: the minimum number of +/- power-of-two terms that sum to x.
/// This is the "shift-and-add cost" of multiplying by x in hardware
/// (paper Sec. IV-A, NTT-friendly Montgomery multiplier).
constexpr int naf_weight(i128 x) noexcept {
  int w = 0;
  while (x != 0) {
    if (x & 1) {
      // Choose digit in {-1, +1} so the remaining value is divisible by 4,
      // which yields the minimal-weight NAF.
      const int digit = ((x & 3) == 1) ? 1 : -1;
      x -= digit;
      ++w;
    }
    x >>= 1;
  }
  return w;
}

}  // namespace abc
