#pragma once

/// @file bigint.hpp
/// Minimal arbitrary-precision unsigned integer used by the CRT "combine"
/// step of CKKS decoding (paper Fig. 2a: INTT -> Combine CRT -> FFT).
/// A fresh bootstrappable ciphertext has 24 limbs of 36 bits, so combined
/// values reach ~864 bits; this class provides exactly the operations the
/// CRT recomposition needs and nothing more.

#include <string>
#include <vector>

#include "common/types.hpp"

namespace abc {

/// Unsigned big integer, little-endian base-2^64 words, canonical form
/// (no trailing zero words; zero is the empty word vector).
class BigUint {
 public:
  BigUint() = default;
  explicit BigUint(u64 value);

  static BigUint from_words(std::vector<u64> words);

  bool is_zero() const noexcept { return words_.empty(); }
  std::size_t word_count() const noexcept { return words_.size(); }
  const std::vector<u64>& words() const noexcept { return words_; }

  /// Number of significant bits (0 for zero).
  int bit_length() const noexcept;

  /// Comparison: negative/zero/positive like strcmp.
  int compare(const BigUint& other) const noexcept;
  bool operator==(const BigUint& other) const noexcept = default;
  bool operator<(const BigUint& other) const noexcept {
    return compare(other) < 0;
  }
  bool operator<=(const BigUint& other) const noexcept {
    return compare(other) <= 0;
  }

  BigUint& add(const BigUint& other);
  /// Subtracts @p other; requires *this >= other.
  BigUint& sub(const BigUint& other);
  BigUint& mul_u64(u64 factor);
  BigUint& shift_left(int bits);

  BigUint operator+(const BigUint& other) const;
  BigUint operator-(const BigUint& other) const;
  BigUint operator*(u64 factor) const;

  /// Full product (schoolbook); sizes here are <= 14 words so O(n^2) is fine.
  BigUint operator*(const BigUint& other) const;

  /// Remainder of division by a 64-bit modulus.
  u64 mod_u64(u64 modulus) const noexcept;

  /// *this mod other (schoolbook long division by shifted subtraction).
  BigUint mod(const BigUint& other) const;

  /// Round-to-nearest conversion to double (used when decoding to floats).
  double to_double() const noexcept;

  /// Decimal string, for diagnostics.
  std::string to_string() const;

 private:
  void trim();
  std::vector<u64> words_;
};

/// Value of a CRT-combined residue centered into (-Q/2, Q/2], as a double.
/// @p value is in [0, Q); the result is value - Q when value > Q/2.
double centered_to_double(const BigUint& value, const BigUint& q);

}  // namespace abc
