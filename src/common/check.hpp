#pragma once

/// @file check.hpp
/// Argument validation and invariant checking.
///
/// Public API entry points validate their inputs with ABC_CHECK_ARG and
/// throw abc::InvalidArgument; internal invariants use ABC_CHECK_STATE and
/// throw abc::LogicError. Both carry a formatted message with the failing
/// expression and source location.

#include <source_location>
#include <stdexcept>
#include <string>

namespace abc {

/// Thrown when a caller passes an invalid argument to a public API.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is violated (a library bug).
class LogicError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] void throw_invalid_argument(const char* expr, const std::string& msg,
                                         std::source_location loc);
[[noreturn]] void throw_logic_error(const char* expr, const std::string& msg,
                                    std::source_location loc);

}  // namespace detail
}  // namespace abc

/// Validate a public-API argument; throws abc::InvalidArgument on failure.
#define ABC_CHECK_ARG(cond, msg)                                        \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::abc::detail::throw_invalid_argument(#cond, (msg),               \
                                            std::source_location::current()); \
    }                                                                   \
  } while (false)

/// Validate an internal invariant; throws abc::LogicError on failure.
#define ABC_CHECK_STATE(cond, msg)                                      \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::abc::detail::throw_logic_error(#cond, (msg),                    \
                                       std::source_location::current()); \
    }                                                                   \
  } while (false)
