#include "common/failpoint.hpp"

#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <new>
#include <stdexcept>
#include <thread>

#include "common/check.hpp"

namespace abc::fail {
namespace {

/// splitmix64: tiny, seedable, and statistically fine for fault sampling.
/// The prng/ layer's ChaCha20 is not used here — common/ sits below it,
/// and fault decisions need no cryptographic strength.
u64 splitmix64(u64& state) {
  state += 0x9e3779b97f4a7c15ull;
  u64 z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct PointState {
  Policy policy;
  u64 hits = 0;
  u64 fires = 0;
  u64 prng = 0;  // splitmix64 state, seeded from policy.seed on arm
  // A point that reached max_fires stays registered (so hits/fires remain
  // readable by tests) but never fires again until re-armed or disarmed.
  bool exhausted = false;
};

struct Registry {
  std::mutex m;
  std::map<std::string, PointState, std::less<>> points;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: outlives static teardown
  return *r;
}

[[noreturn]] void fire_throw(const char* name, Action action) {
  const std::string msg =
      std::string("injected fault at failpoint '") + name + "'";
  switch (action) {
    case Action::kThrowLogicError:
      throw LogicError(msg);
    case Action::kThrowRuntimeError:
      throw std::runtime_error(msg);
    case Action::kThrowBadAlloc:
      throw std::bad_alloc();
    case Action::kThrowInvalidArgument:
    default:
      throw InvalidArgument(msg);
  }
}

// ---- env spec parsing -------------------------------------------------------

void spec_error(std::string_view spec, const std::string& why) {
  throw InvalidArgument("bad ABC_FAILPOINTS spec \"" + std::string(spec) +
                        "\": " + why);
}

u64 parse_u64(std::string_view spec, std::string_view text,
              std::string_view what) {
  u64 value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    spec_error(spec, "expected an integer for " + std::string(what));
  }
  return value;
}

double parse_probability(std::string_view spec, std::string_view text) {
  // std::from_chars for double is spotty across libstdc++ versions the CI
  // matrix uses; strtod on a bounded copy is portable and exact enough.
  const std::string copy(text);
  char* end = nullptr;
  const double p = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || !(p >= 0.0) || !(p <= 1.0)) {
    spec_error(spec, "prob wants a probability in [0, 1]");
  }
  return p;
}

void parse_entry(std::string_view spec, std::string_view entry) {
  const std::size_t eq = entry.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    spec_error(spec, "entry \"" + std::string(entry) + "\" is not name=action");
  }
  const std::string_view name = entry.substr(0, eq);
  std::string_view rest = entry.substr(eq + 1);

  Policy policy;
  std::string_view action = rest;
  const std::size_t at = rest.find('@');
  if (at != std::string_view::npos) {
    action = rest.substr(0, at);
    rest = rest.substr(at + 1);
  } else {
    rest = {};
  }

  if (action == "throw") {
    policy.action = Action::kThrowInvalidArgument;
  } else if (action == "logic") {
    policy.action = Action::kThrowLogicError;
  } else if (action == "runtime") {
    policy.action = Action::kThrowRuntimeError;
  } else if (action == "badalloc") {
    policy.action = Action::kThrowBadAlloc;
  } else if (action.starts_with("delay:")) {
    policy.action = Action::kDelay;
    policy.delay_us = parse_u64(spec, action.substr(6), "delay");
  } else {
    spec_error(spec, "unknown action \"" + std::string(action) + "\"");
  }

  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view mod = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (mod.starts_with("hit:")) {
      policy.trigger = Trigger::kNthHit;
      policy.nth = parse_u64(spec, mod.substr(4), "hit");
      if (policy.nth == 0) spec_error(spec, "hit is 1-based");
    } else if (mod.starts_with("prob:")) {
      policy.trigger = Trigger::kProbability;
      std::string_view p = mod.substr(5);
      const std::size_t slash = p.find('/');
      if (slash != std::string_view::npos) {
        policy.seed = parse_u64(spec, p.substr(slash + 1), "seed");
        p = p.substr(0, slash);
      }
      policy.probability = parse_probability(spec, p);
    } else if (mod.starts_with("limit:")) {
      policy.max_fires = parse_u64(spec, mod.substr(6), "limit");
      if (policy.max_fires == 0) spec_error(spec, "limit is at least 1");
    } else {
      spec_error(spec, "unknown modifier \"" + std::string(mod) + "\"");
    }
  }
  arm(name, policy);
}

/// Installs ABC_FAILPOINTS at static-init time so the very first hit —
/// wherever it lands — already sees the armed policies. A malformed spec
/// aborts: silently ignoring it would run a fault-injection job that
/// injects nothing.
const bool g_env_installed = [] {
  const char* env = std::getenv("ABC_FAILPOINTS");
  if (env == nullptr || *env == '\0') return false;
  try {
    install_spec(env);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::_Exit(2);
  }
  return true;
}();

}  // namespace

namespace {

std::atomic<u64> g_total_hits{0};
std::atomic<u64> g_total_fires{0};

}  // namespace

namespace detail {

std::atomic<int> g_armed_count{0};

void hit(const char* name) {
  Action action = Action::kThrowInvalidArgument;
  u64 delay_us = 0;
  bool fired = false;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lk(reg.m);
    const auto it = reg.points.find(std::string_view(name));
    if (it == reg.points.end()) return;
    PointState& state = it->second;
    state.hits += 1;
    g_total_hits.fetch_add(1, std::memory_order_relaxed);
    if (state.exhausted) return;
    switch (state.policy.trigger) {
      case Trigger::kAlways:
        fired = true;
        break;
      case Trigger::kNthHit:
        fired = state.hits == state.policy.nth;
        break;
      case Trigger::kProbability:
        fired = static_cast<double>(splitmix64(state.prng) >> 11) *
                    0x1.0p-53 <
                state.policy.probability;
        break;
    }
    if (!fired) return;
    state.fires += 1;
    g_total_fires.fetch_add(1, std::memory_order_relaxed);
    action = state.policy.action;
    delay_us = state.policy.delay_us;
    if (state.policy.max_fires != 0 &&
        state.fires >= state.policy.max_fires) {
      state.exhausted = true;
    }
  }
  // Act outside the lock: a sleeping or throwing point must not serialize
  // (or deadlock with) other workers hitting the registry.
  if (action == Action::kDelay) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    return;
  }
  fire_throw(name, action);
}

}  // namespace detail

void arm(std::string_view name, const Policy& policy) {
  ABC_CHECK_ARG(!name.empty(), "failpoint name must be non-empty");
  ABC_CHECK_ARG(policy.probability >= 0.0 && policy.probability <= 1.0,
                "failpoint probability out of [0, 1]");
  Registry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.m);
  auto [it, inserted] = reg.points.try_emplace(std::string(name));
  it->second = PointState{policy, 0, 0, policy.seed, false};
  if (inserted) {
    detail::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void disarm(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.m);
  const auto it = reg.points.find(name);
  if (it == reg.points.end()) return;
  reg.points.erase(it);
  detail::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
}

void disarm_all() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.m);
  detail::g_armed_count.fetch_sub(static_cast<int>(reg.points.size()),
                                  std::memory_order_relaxed);
  reg.points.clear();
}

bool armed(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.m);
  return reg.points.find(name) != reg.points.end();
}

u64 hits(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.m);
  const auto it = reg.points.find(name);
  return it == reg.points.end() ? 0 : it->second.hits;
}

u64 fires(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.m);
  const auto it = reg.points.find(name);
  return it == reg.points.end() ? 0 : it->second.fires;
}

u64 total_hits() { return g_total_hits.load(std::memory_order_relaxed); }
u64 total_fires() { return g_total_fires.load(std::memory_order_relaxed); }

void install_spec(std::string_view spec) {
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    const std::string_view entry = rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);
    if (entry.empty()) continue;  // tolerate trailing/double separators
    parse_entry(spec, entry);
  }
}

}  // namespace abc::fail
