#include "common/math_util.hpp"

#include <array>

namespace abc {

u64 pow_mod_u64(u64 a, u64 e, u64 m) noexcept {
  if (m == 1) return 0;
  u64 base = a % m;
  u64 result = 1;
  while (e != 0) {
    if (e & 1) result = mul_mod_u64(result, base, m);
    base = mul_mod_u64(base, base, m);
    e >>= 1;
  }
  return result;
}

u64 gcd_u64(u64 a, u64 b) noexcept {
  while (b != 0) {
    u64 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

EgcdResult egcd_i128(i128 a, i128 b) noexcept {
  i128 old_r = a, r = b;
  i128 old_x = 1, x = 0;
  i128 old_y = 0, y = 1;
  while (r != 0) {
    i128 q = old_r / r;
    i128 t = old_r - q * r;
    old_r = r;
    r = t;
    t = old_x - q * x;
    old_x = x;
    x = t;
    t = old_y - q * y;
    old_y = y;
    y = t;
  }
  return {old_r, old_x, old_y};
}

std::optional<u64> inverse_mod_u64(u64 a, u64 m) noexcept {
  if (m == 0) return std::nullopt;
  EgcdResult e = egcd_i128(static_cast<i128>(a % m), static_cast<i128>(m));
  if (e.g != 1) return std::nullopt;
  i128 x = e.x % static_cast<i128>(m);
  if (x < 0) x += static_cast<i128>(m);
  return static_cast<u64>(x);
}

u64 inverse_mod_pow2(u64 a, int bits) noexcept {
  // Hensel lifting: x_{k+1} = x_k * (2 - a * x_k) doubles correct bits.
  u64 x = 1;  // correct mod 2 because a is odd
  for (int correct = 1; correct < bits; correct *= 2) {
    x = x * (2 - a * x);  // wrap-around arithmetic mod 2^64 is intended
  }
  if (bits < 64) x &= (u64{1} << bits) - 1;
  return x;
}

bool is_prime_u64(u64 n) noexcept {
  if (n < 2) return false;
  for (u64 p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull,
                29ull, 31ull, 37ull}) {
    if (n % p == 0) return n == p;
  }
  u64 d = n - 1;
  int s = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++s;
  }
  // These witnesses are deterministic for all n < 2^64 (Sorenson & Webster).
  constexpr std::array<u64, 12> witnesses = {2,  3,  5,  7,  11, 13,
                                             17, 19, 23, 29, 31, 37};
  for (u64 a : witnesses) {
    u64 x = pow_mod_u64(a % n, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 1; i < s; ++i) {
      x = mul_mod_u64(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

}  // namespace abc
