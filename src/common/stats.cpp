#include "common/stats.hpp"

#include <cmath>

namespace abc {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace abc
