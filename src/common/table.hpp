#pragma once

/// @file table.hpp
/// Plain-text table rendering used by every bench binary to print the
/// reproduced paper tables/figures in a uniform format.

#include <string>
#include <vector>

namespace abc {

/// Column-aligned ASCII table with a title line, e.g.
///
///   == Table I: Area of modular multiplier ==
///   Algorithm                 Area (um^2)   Stages
///   ------------------------  -----------   ------
///   Vanilla Barrett                 35054        4
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 3);
  /// Scientific-style formatting for wide-range values (times, speedups).
  static std::string fmt_eng(double v, int precision = 3);

  std::string render() const;
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace abc
