#pragma once

/// @file stats.hpp
/// Streaming statistics used by precision measurements (Fig. 3c) and the
/// benchmark harnesses.

#include <cstddef>

namespace abc {

/// Welford-style running mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace abc
