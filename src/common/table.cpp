#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace abc {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::fmt_eng(double v, int precision) {
  char buf[64];
  if (v != 0.0 && (std::abs(v) >= 1e6 || std::abs(v) < 1e-3)) {
    std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*g", precision + 3, v);
  }
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths;
  auto update = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  update(header_);
  for (const auto& r : rows_) update(r);

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      if (i + 1 < row.size()) {
        os << std::string(widths[i] - row[i].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::vector<std::string> rule;
    rule.reserve(header_.size());
    for (std::size_t i = 0; i < header_.size(); ++i) {
      rule.emplace_back(std::string(widths[i], '-'));
    }
    emit(rule);
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void TextTable::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace abc
