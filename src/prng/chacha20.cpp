#include "prng/chacha20.hpp"

#include <bit>
#include <cstring>

#include "common/check.hpp"
#include "common/failpoint.hpp"

namespace abc::prng {
namespace {

constexpr std::array<u32, 4> kSigma = {0x61707865u, 0x3320646eu, 0x79622d32u,
                                       0x6b206574u};  // "expand 32-byte k"

inline void quarter_round(u32& a, u32& b, u32& c, u32& d) {
  a += b; d ^= a; d = std::rotl(d, 16);
  c += d; b ^= c; b = std::rotl(b, 12);
  a += b; d ^= a; d = std::rotl(d, 8);
  c += d; b ^= c; b = std::rotl(b, 7);
}

}  // namespace

void chacha20_block(const std::array<u32, 8>& key, u32 counter,
                    const std::array<u32, 3>& nonce, std::span<u8, 64> out) {
  std::array<u32, 16> state = {
      kSigma[0], kSigma[1], kSigma[2], kSigma[3],
      key[0],    key[1],    key[2],    key[3],
      key[4],    key[5],    key[6],    key[7],
      counter,   nonce[0],  nonce[1],  nonce[2],
  };
  std::array<u32, 16> x = state;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const u32 word = x[i] + state[i];
    out[4 * i + 0] = static_cast<u8>(word);
    out[4 * i + 1] = static_cast<u8>(word >> 8);
    out[4 * i + 2] = static_cast<u8>(word >> 16);
    out[4 * i + 3] = static_cast<u8>(word >> 24);
  }
}

ChaCha20::ChaCha20(const std::array<u8, 16>& seed, u64 stream_id, u32 domain) {
  // Every keystream the stack consumes starts here, so this is where a
  // fault-injection run breaks PRNG stream setup.
  ABC_FAILPOINT(fail::points::kPrngStreamSetup);
  // Expand 128-bit seed into a 256-bit key: seed || ~seed. Any injective
  // expansion preserves the 128-bit security level of the seed.
  for (int i = 0; i < 4; ++i) {
    u32 w = 0;
    std::memcpy(&w, seed.data() + 4 * i, 4);
    key_[i] = w;
    key_[i + 4] = ~w;
  }
  nonce_[0] = domain;
  nonce_[1] = static_cast<u32>(stream_id);
  nonce_[2] = static_cast<u32>(stream_id >> 32);
}

void ChaCha20::refill() {
  chacha20_block(key_, counter_, nonce_, std::span<u8, 64>(buffer_));
  ++counter_;
  ++blocks_;
  pos_ = 0;
}

void ChaCha20::fill_bytes(std::span<u8> out) {
  std::size_t written = 0;
  while (written < out.size()) {
    if (pos_ == buffer_.size()) refill();
    const std::size_t chunk =
        std::min(buffer_.size() - pos_, out.size() - written);
    std::memcpy(out.data() + written, buffer_.data() + pos_, chunk);
    pos_ += chunk;
    written += chunk;
  }
}

u64 ChaCha20::next_u64() {
  std::array<u8, 8> bytes;
  fill_bytes(bytes);
  u64 v = 0;
  std::memcpy(&v, bytes.data(), 8);
  return v;
}

u32 ChaCha20::next_u32() {
  std::array<u8, 4> bytes;
  fill_bytes(bytes);
  u32 v = 0;
  std::memcpy(&v, bytes.data(), 4);
  return v;
}

double ChaCha20::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

}  // namespace abc::prng
