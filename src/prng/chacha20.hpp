#pragma once

/// @file chacha20.hpp
/// ChaCha20 stream generator (RFC 8439 block function).
///
/// ABC-FHE keeps only a 128-bit seed on-chip and expands all masks, errors
/// and key material with a PRNG (paper Sec. IV-B). We model that PRNG with
/// ChaCha20: the 128-bit seed is expanded into the 256-bit ChaCha key by
/// concatenating it with its byte-wise complement, and independent streams
/// (mask / error / key, per limb) are separated through the nonce words.

#include <array>
#include <span>

#include "common/types.hpp"

namespace abc::prng {

/// Raw ChaCha20 block function: fills 64 bytes of keystream for a given
/// (key, counter, nonce) triple. Exposed for test vectors.
void chacha20_block(const std::array<u32, 8>& key, u32 counter,
                    const std::array<u32, 3>& nonce, std::span<u8, 64> out);

/// Buffered ChaCha20 keystream with 64-bit convenience reads.
class ChaCha20 {
 public:
  /// 128-bit seed + 96-bit stream selector.
  ChaCha20(const std::array<u8, 16>& seed, u64 stream_id, u32 domain = 0);

  void fill_bytes(std::span<u8> out);
  u64 next_u64();
  u32 next_u32();

  /// Uniform double in [0, 1) with 53 random bits.
  double next_double();

  /// Number of keystream blocks generated so far (for cost accounting).
  u64 blocks_generated() const noexcept { return blocks_; }

 private:
  void refill();

  std::array<u32, 8> key_{};
  std::array<u32, 3> nonce_{};
  u32 counter_ = 0;
  std::array<u8, 64> buffer_{};
  std::size_t pos_ = 64;  // empty
  u64 blocks_ = 0;
};

}  // namespace abc::prng
