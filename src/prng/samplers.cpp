#include "prng/samplers.hpp"

#include <cmath>

#include "common/check.hpp"

namespace abc::prng {

UniformModSampler::UniformModSampler(u64 modulus) : modulus_(modulus) {
  ABC_CHECK_ARG(modulus >= 2, "modulus must be >= 2");
  // reject_bound = floor(2^64 / q) * q, i.e. wrap-free region.
  const u64 quotient = (~u64{0}) / modulus;  // floor((2^64 - 1) / q)
  reject_bound_ = quotient * modulus;
  // If q divides 2^64 exactly this under-counts by one block, which only
  // tightens the bound; correctness is unaffected.
}

u64 UniformModSampler::sample(ChaCha20& rng) const {
  for (;;) {
    const u64 r = rng.next_u64();
    if (r < reject_bound_) return r % modulus_;
  }
}

void UniformModSampler::sample_many(ChaCha20& rng, std::span<u64> out) const {
  for (u64& v : out) v = sample(rng);
}

i8 TernarySampler::sample(ChaCha20& rng) const {
  for (;;) {
    // Consume 2 bits; reject the fourth symbol for exact uniformity.
    const u32 bits = rng.next_u32() & 3;
    if (bits != 3) return static_cast<i8>(bits) - 1;
  }
}

void TernarySampler::sample_many(ChaCha20& rng, std::span<i8> out) const {
  // Pull 32 bits at a time and consume 2-bit symbols to avoid wasting
  // keystream (16 symbols per word, minus rejections).
  std::size_t i = 0;
  while (i < out.size()) {
    u32 word = rng.next_u32();
    for (int s = 0; s < 16 && i < out.size(); ++s) {
      const u32 bits = word & 3;
      word >>= 2;
      if (bits != 3) out[i++] = static_cast<i8>(bits) - 1;
    }
  }
}

DiscreteGaussianSampler::DiscreteGaussianSampler(double sigma) : sigma_(sigma) {
  ABC_CHECK_ARG(sigma > 0.1 && sigma < 64.0, "sigma out of supported range");
  tail_ = static_cast<int>(std::ceil(6.0 * sigma));
  // Build P(|X| <= k) for the discrete Gaussian on Z.
  // p(0) = c, p(k) = 2c*exp(-k^2 / (2 sigma^2)) for k >= 1.
  std::vector<double> weights(static_cast<std::size_t>(tail_) + 1);
  weights[0] = 1.0;
  double total = 1.0;
  for (int k = 1; k <= tail_; ++k) {
    const double w =
        2.0 * std::exp(-static_cast<double>(k) * k / (2.0 * sigma * sigma));
    weights[static_cast<std::size_t>(k)] = w;
    total += w;
  }
  cdf_.resize(weights.size());
  double acc = 0.0;
  for (std::size_t k = 0; k < weights.size(); ++k) {
    acc += weights[k] / total;
    const double scaled = acc * 0x1.0p63;
    cdf_[k] = scaled >= 0x1.0p63 ? ~u64{0} >> 1 : static_cast<u64>(scaled);
  }
  cdf_.back() = ~u64{0} >> 1;  // ensure full coverage
}

i32 DiscreteGaussianSampler::sample(ChaCha20& rng) const {
  const u64 r = rng.next_u64();
  const u64 u = r >> 1;       // 63 bits for the magnitude CDF
  const bool negative = r & 1;
  int magnitude = 0;
  while (magnitude < tail_ && u >= cdf_[static_cast<std::size_t>(magnitude)]) {
    ++magnitude;
  }
  if (magnitude == 0) return 0;  // sign is meaningless at zero
  return negative ? -magnitude : magnitude;
}

void DiscreteGaussianSampler::sample_many(ChaCha20& rng,
                                          std::span<i32> out) const {
  for (i32& v : out) v = sample(rng);
}

}  // namespace abc::prng
