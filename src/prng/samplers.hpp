#pragma once

/// @file samplers.hpp
/// Distribution samplers for CKKS key generation and encryption. These are
/// the on-chip data the paper's PRNG produces: uniform ring elements
/// ("masks" / public randomness), ternary secrets, and small errors
/// (discrete Gaussian, sigma = 3.2 per the HE security guidelines).

#include <span>
#include <vector>

#include "prng/chacha20.hpp"

namespace abc::prng {

/// Rejection sampler for uniform values in [0, modulus).
class UniformModSampler {
 public:
  explicit UniformModSampler(u64 modulus);

  u64 sample(ChaCha20& rng) const;
  void sample_many(ChaCha20& rng, std::span<u64> out) const;

 private:
  u64 modulus_;
  u64 reject_bound_;  // largest multiple of modulus <= 2^64
};

/// Uniform ternary secrets in {-1, 0, 1} (the common CKKS secret
/// distribution; 2 bits consumed per coefficient with rejection of '11').
class TernarySampler {
 public:
  i8 sample(ChaCha20& rng) const;
  void sample_many(ChaCha20& rng, std::span<i8> out) const;
};

/// Discrete Gaussian via a cumulative distribution table (CDT), the
/// standard constant-time-friendly hardware choice. Tail cut at 6 sigma.
class DiscreteGaussianSampler {
 public:
  explicit DiscreteGaussianSampler(double sigma = 3.2);

  double sigma() const noexcept { return sigma_; }
  int tail() const noexcept { return tail_; }

  i32 sample(ChaCha20& rng) const;
  void sample_many(ChaCha20& rng, std::span<i32> out) const;

 private:
  double sigma_;
  int tail_;
  // cdf_[k] = P(|X| <= k) scaled to 2^63; magnitude found by linear scan
  // (table has ~20 entries).
  std::vector<u64> cdf_;
};

}  // namespace abc::prng
