#include "rns/modmul_algorithms.hpp"

#include "common/bitops.hpp"

namespace abc::rns {

// ---------------------------------------------------------------- Barrett

BarrettHwModMul::BarrettHwModMul(u64 q) : q_(q), k_(bit_length(q)) {
  ABC_CHECK_ARG(q >= 3 && k_ <= 62, "Barrett modulus must fit in 62 bits");
  // mu = floor(2^(2k) / q). 2k <= 124 so the division fits in u128.
  const u128 numerator = static_cast<u128>(1) << (2 * k_);
  mu_ = numerator / q;
}

u64 BarrettHwModMul::mul(u64 a, u64 b) const {
  const u128 t = mul_wide(a, b);
  // qhat = floor( (t >> (k-1)) * mu / 2^(k+1) )
  const u128 t_shift = t >> (k_ - 1);
  // t_shift < 2^(k+1), mu < 2^(k+1): product < 2^(2k+2) <= 2^126, ok.
  const u128 prod = t_shift * mu_;
  const u128 qhat = prod >> (k_ + 1);
  u64 r = static_cast<u64>(t - qhat * q_);
  while (r >= q_) r -= q_;
  return r;
}

ModMulCost BarrettHwModMul::cost(int w) const {
  ModMulCost c;
  // Vanilla Barrett operates on the full double-width product: a*b, then
  // t * mu on the 2w-wide intermediate, then the qhat*q fold-back.
  c.multipliers.push_back({w, w});
  c.multipliers.push_back({2 * w, 2 * w});
  c.multipliers.push_back({w + 1, w});
  c.extra_adder_bits = 2 * (2 * w);  // subtraction + two corrections
  c.pipeline_stages = pipeline_stages();
  return c;
}

// ------------------------------------------------------------- Montgomery

MontgomeryHwModMul::MontgomeryHwModMul(u64 q, int r_bits) : mont_(q, r_bits) {}

u64 MontgomeryHwModMul::mul(u64 a, u64 b) const {
  // Standalone semantics: convert into the domain, multiply, convert back.
  const u64 am = mont_.to_mont(a);
  const u64 bm = mont_.to_mont(b);
  return mont_.from_mont(mont_.mul(am, bm));
}

ModMulCost MontgomeryHwModMul::cost(int w) const {
  ModMulCost c;
  // a*b, T_lo * (-q^{-1}) mod R (low half only), m*q.
  c.multipliers.push_back({w, w});
  c.multipliers.push_back({w, w});
  c.multipliers.push_back({w, w});
  c.extra_adder_bits = 2 * w + w;  // T + m*q accumulation + correction
  c.pipeline_stages = pipeline_stages();
  return c;
}

// ------------------------------------------------ NTT-friendly Montgomery

NttFriendlyMontgomeryHwModMul::NttFriendlyMontgomeryHwModMul(u64 q, int r_bits)
    : mont_(q, r_bits), q_naf_(SignedPow2::decompose(q, 64)) {}

u64 NttFriendlyMontgomeryHwModMul::redc_fully_sparse(u128 t) const noexcept {
  // m via the sparse -q^{-1}; m*q via the sparse q. Only shifts and adds.
  const int r = mont_.r_bits();
  const u64 m = mont_.neg_qinv_naf().apply(lo64(t), r);
  u128 mq = 0;
  for (const SignedPow2::Term& term : q_naf_.terms()) {
    const u128 shifted = static_cast<u128>(m) << term.shift;
    mq = term.sign > 0 ? mq + shifted : mq - shifted;
  }
  const u128 sum = t + mq;
  u64 out = static_cast<u64>(sum >> r);
  if (out >= mont_.modulus()) out -= mont_.modulus();
  return out;
}

u64 NttFriendlyMontgomeryHwModMul::mul(u64 a, u64 b) const {
  const u64 am = mont_.to_mont(a);
  const u64 bm = mont_.to_mont(b);
  return mont_.from_mont(redc_fully_sparse(mul_wide(am, bm)));
}

ModMulCost NttFriendlyMontgomeryHwModMul::cost(int w) const {
  ModMulCost c;
  c.multipliers.push_back({w, w});  // only a*b survives as a multiplier
  c.shift_add_terms = qinv_weight() + q_weight();
  c.shift_add_width = 2 * w;
  c.extra_adder_bits = 2 * w + w;
  c.pipeline_stages = pipeline_stages();
  return c;
}

std::vector<std::unique_ptr<HwModMul>> make_all_modmuls(u64 q, int r_bits) {
  std::vector<std::unique_ptr<HwModMul>> v;
  v.push_back(std::make_unique<BarrettHwModMul>(q));
  v.push_back(std::make_unique<MontgomeryHwModMul>(q, r_bits));
  v.push_back(std::make_unique<NttFriendlyMontgomeryHwModMul>(q, r_bits));
  return v;
}

}  // namespace abc::rns
