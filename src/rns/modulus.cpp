#include "rns/modulus.hpp"

#include "common/bitops.hpp"
#include "common/math_util.hpp"

namespace abc::rns {

Modulus::Modulus(u64 value) : value_(value) {
  ABC_CHECK_ARG(value >= 2, "modulus must be >= 2");
  ABC_CHECK_ARG(value >> 62 == 0, "modulus must fit in 62 bits");
  bit_count_ = bit_length(value);
  // floor(2^128 / q): long division of 2^128 by q using 128-bit steps.
  // 2^128 = (2^128 - 1) + 1; compute via ((2^128-1) / q) adjusting when q
  // divides 2^128 exactly (impossible for odd q > 1, but handle generally).
  const u128 all_ones = ~static_cast<u128>(0);
  u128 quotient = all_ones / value;
  u128 rem = all_ones % value;
  if (rem + 1 == value) quotient += 1;  // (2^128-1) rem q == q-1 -> exact bump
  ratio_lo_ = lo64(quotient);
  ratio_hi_ = hi64(quotient);
}

u64 Modulus::reduce(u64 x) const noexcept {
  // Barrett with single-word input: estimate quotient via the high ratio
  // word; at most one correction.
  const u64 estimate = mul_hi(x, ratio_hi_);
  u64 r = x - estimate * value_;
  while (r >= value_) r -= value_;
  return r;
}

u64 Modulus::reduce_128(u128 x) const noexcept {
  // qhat = floor(x * ratio / 2^128), computed word-by-word.
  const u64 x0 = lo64(x);
  const u64 x1 = hi64(x);
  const u128 a = mul_wide(x0, ratio_lo_);
  const u128 b = mul_wide(x1, ratio_lo_);
  const u128 c = mul_wide(x0, ratio_hi_);
  const u128 mid = static_cast<u128>(hi64(a)) + lo64(b) + lo64(c);
  const u64 qhat =
      x1 * ratio_hi_ + hi64(b) + hi64(c) + hi64(mid);  // low word suffices
  u64 r = x0 - qhat * value_;  // mod 2^64 wrap; true remainder < ~3q
  while (r >= value_) r -= value_;
  return r;
}

u64 Modulus::pow(u64 base, u64 exponent) const noexcept {
  u64 result = 1;
  u64 b = reduce(base);
  while (exponent != 0) {
    if (exponent & 1) result = mul(result, b);
    b = mul(b, b);
    exponent >>= 1;
  }
  return result;
}

u64 Modulus::inv(u64 a) const {
  auto r = inverse_mod_u64(a, value_);
  ABC_CHECK_ARG(r.has_value(), "element has no inverse modulo q");
  return *r;
}

}  // namespace abc::rns
