#pragma once

/// @file modmul_algorithms.hpp
/// Functional models of the three hardware modular-multiplier datapaths
/// compared in the paper's Table I:
///
///   * Vanilla Barrett      — 3 wide multipliers, 4 pipeline stages
///   * Vanilla Montgomery   — 3 multipliers, 3 pipeline stages
///   * NTT-friendly Montgomery — 1 multiplier; the m = T*QInv and m*Q
///     products become shift-and-add networks because both QInv (paper
///     eq. 11) and Q itself (paper eq. 8) are sparse in signed-binary form.
///
/// Each model computes bit-exact results (verified against each other and
/// against naive %), and reports its structural cost (multiplier widths,
/// shift-add term counts, pipeline stages) which the area model in
/// src/core/hw_units.hpp turns into um^2 for Table I.

#include <memory>
#include <string>
#include <vector>

#include "rns/montgomery.hpp"

namespace abc::rns {

/// Structural cost of one modular-multiplier instance.
struct ModMulCost {
  struct MultiplierInst {
    int width_a = 0;
    int width_b = 0;
  };
  std::vector<MultiplierInst> multipliers;
  int shift_add_terms = 0;   // number of shifted addends in add networks
  int shift_add_width = 0;   // operand width of those adders
  int extra_adder_bits = 0;  // final accumulation / correction adders
  int pipeline_stages = 0;
};

/// Common interface for the hardware-style modular multipliers.
class HwModMul {
 public:
  virtual ~HwModMul() = default;
  virtual std::string name() const = 0;
  /// (a * b) mod q with a, b < q.
  virtual u64 mul(u64 a, u64 b) const = 0;
  /// Structural cost for a @p datapath_bits-wide implementation.
  virtual ModMulCost cost(int datapath_bits) const = 0;
  virtual int pipeline_stages() const = 0;
};

/// Classic Barrett: mu = floor(2^(2k) / q); quotient estimated with two
/// wide multiplications. k = bit width of q.
class BarrettHwModMul final : public HwModMul {
 public:
  explicit BarrettHwModMul(u64 q);
  std::string name() const override { return "Vanilla Barrett"; }
  u64 mul(u64 a, u64 b) const override;
  ModMulCost cost(int datapath_bits) const override;
  int pipeline_stages() const override { return 4; }

  u64 modulus() const noexcept { return q_; }

 private:
  u64 q_;
  int k_;      // bit width of q
  u128 mu_;    // floor(2^(2k) / q), fits in k+1 bits over 64 for k <= 62
};

/// Vanilla Montgomery (operands kept in the Montgomery domain by the
/// caller; mul() here wraps domain conversion for standalone use).
class MontgomeryHwModMul final : public HwModMul {
 public:
  MontgomeryHwModMul(u64 q, int r_bits);
  std::string name() const override { return "Vanilla Montgomery"; }
  u64 mul(u64 a, u64 b) const override;
  ModMulCost cost(int datapath_bits) const override;
  int pipeline_stages() const override { return 3; }

  const Montgomery& ctx() const noexcept { return mont_; }

 private:
  Montgomery mont_;
};

/// NTT-friendly Montgomery: identical arithmetic, but m = T_lo * (-q^{-1})
/// and m * q are computed with shift-and-add networks driven by the sparse
/// signed-digit forms of -q^{-1} mod R and of q. Only the initial a*b
/// product needs a real multiplier (paper Sec. IV-A).
class NttFriendlyMontgomeryHwModMul final : public HwModMul {
 public:
  NttFriendlyMontgomeryHwModMul(u64 q, int r_bits);
  std::string name() const override { return "NTT-Friendly Montgomery"; }
  u64 mul(u64 a, u64 b) const override;
  ModMulCost cost(int datapath_bits) const override;
  int pipeline_stages() const override { return 3; }

  const Montgomery& ctx() const noexcept { return mont_; }
  /// Shift-add weight of -q^{-1} mod R (paper wants <= ~4 terms).
  int qinv_weight() const noexcept { return mont_.neg_qinv_naf().weight(); }
  /// Shift-add weight of q itself.
  int q_weight() const noexcept { return q_naf_.weight(); }

  /// Raw REDC in which *every* non-initial product is a shift-add network;
  /// exposed for the bit-exactness tests.
  u64 redc_fully_sparse(u128 t) const noexcept;

 private:
  Montgomery mont_;
  SignedPow2 q_naf_;
};

/// Convenience: build all three models for one modulus (Table I rows).
std::vector<std::unique_ptr<HwModMul>> make_all_modmuls(u64 q, int r_bits);

}  // namespace abc::rns
