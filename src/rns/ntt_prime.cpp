#include "rns/ntt_prime.hpp"

#include <algorithm>
#include <map>
#include <mutex>

#include "common/bitops.hpp"
#include "common/check.hpp"
#include "common/math_util.hpp"
#include "rns/montgomery.hpp"

namespace abc::rns {
namespace {

NttPrimeInfo make_info(u64 q, int bit_count, int log_n, int mont_r_bits) {
  NttPrimeInfo info;
  info.value = q;
  info.bit_count = bit_count;
  const i128 anchor = static_cast<i128>(1) << bit_count;
  const i128 step = static_cast<i128>(1) << (log_n + 1);
  info.k = static_cast<i64>((static_cast<i128>(q) - 1 - anchor) / step);
  info.q_weight = naf_weight(static_cast<i128>(q) - 1);
  // QInv weight for the requested Montgomery radix. The radix must exceed
  // the prime width; widen if the caller picked something too small.
  const int r = std::max(mont_r_bits, bit_count + 2);
  Montgomery mont(q, std::min(r, 64));
  info.qinv_weight = mont.neg_qinv_naf().weight();
  return info;
}

}  // namespace

std::vector<NttPrimeInfo> enumerate_ntt_primes(int bit_count, int log_n,
                                               int mont_r_bits) {
  ABC_CHECK_ARG(bit_count >= log_n + 3 && bit_count <= 61,
                "prime width incompatible with degree");
  // The scan tests ~2^(bit_count - log_n - 2) Miller-Rabin candidates, so
  // results are memoized: many tests and benches share parameter sets.
  static std::mutex cache_mutex;
  static std::map<std::tuple<int, int, int>, std::vector<NttPrimeInfo>> cache;
  const auto key = std::make_tuple(bit_count, log_n, mont_r_bits);
  {
    std::scoped_lock lock(cache_mutex);
    if (auto it = cache.find(key); it != cache.end()) return it->second;
  }
  const u64 step = u64{1} << (log_n + 1);
  const u64 lo = u64{1} << (bit_count - 1);
  const u64 hi = u64{1} << bit_count;
  std::vector<NttPrimeInfo> out;
  // Candidates are 1 + m*step inside [lo, hi).
  u64 first = (lo / step) * step + 1;
  if (first < lo) first += step;
  for (u64 q = first; q < hi; q += step) {
    if (is_prime_u64(q)) {
      out.push_back(make_info(q, bit_count, log_n, mont_r_bits));
    }
  }
  std::scoped_lock lock(cache_mutex);
  cache.emplace(key, out);
  return out;
}

std::vector<NttPrimeInfo> enumerate_sparse_ntt_primes(int bit_count, int log_n,
                                                      int max_k_terms,
                                                      int mont_r_bits) {
  std::vector<NttPrimeInfo> all =
      enumerate_ntt_primes(bit_count, log_n, mont_r_bits);
  std::vector<NttPrimeInfo> out;
  for (const NttPrimeInfo& p : all) {
    if (p.q_weight <= 1 + max_k_terms) out.push_back(p);
  }
  return out;
}

std::size_t count_sparse_ntt_primes(int bit_lo, int bit_hi, int log_n,
                                    int max_k_terms) {
  std::size_t total = 0;
  for (int bw = bit_lo; bw <= bit_hi; ++bw) {
    total += enumerate_sparse_ntt_primes(bw, log_n, max_k_terms).size();
  }
  return total;
}

std::vector<NttPrimeInfo> enumerate_paper_friendly_primes(int bit_count,
                                                          int log_n,
                                                          int mont_r_bits) {
  std::vector<NttPrimeInfo> out;
  for (const NttPrimeInfo& p :
       enumerate_sparse_ntt_primes(bit_count, log_n, 3, mont_r_bits)) {
    if (p.qinv_weight <= 5) out.push_back(p);  // eq. 11 shape
  }
  return out;
}

std::vector<u64> select_prime_chain(int bit_count, int log_n,
                                    std::size_t count) {
  // For small degrees the candidate space [2^(b-1), 2^b) / 2N is huge
  // (hundreds of millions at log_n <= 8); full enumeration is pointless
  // when only `count` primes are needed. Scan downward instead — NTT
  // primes are dense enough (one per ~ln(2^b) * small factor candidates).
  const u64 candidates = (u64{1} << (bit_count - 1)) >> (log_n + 1);
  if (candidates > (u64{1} << 20)) {
    const u64 step = u64{1} << (log_n + 1);
    std::vector<u64> chain;
    u64 q = ((u64{1} << bit_count) / step) * step + 1;
    while (chain.size() < count && q > (u64{1} << (bit_count - 1))) {
      if (q < (u64{1} << bit_count) && is_prime_u64(q)) chain.push_back(q);
      q -= step;
    }
    ABC_CHECK_ARG(chain.size() == count,
                  "not enough NTT primes of the requested width");
    return chain;
  }

  std::vector<NttPrimeInfo> sparse =
      enumerate_sparse_ntt_primes(bit_count, log_n);
  std::vector<u64> chain;
  chain.reserve(count);
  // Prefer sparse primes, largest first (deeper chain levels use later
  // entries, matching the usual CKKS convention of descending primes).
  for (auto it = sparse.rbegin(); it != sparse.rend() && chain.size() < count;
       ++it) {
    chain.push_back(it->value);
  }
  if (chain.size() < count) {
    std::vector<NttPrimeInfo> all = enumerate_ntt_primes(bit_count, log_n);
    for (auto it = all.rbegin(); it != all.rend() && chain.size() < count;
         ++it) {
      if (std::find(chain.begin(), chain.end(), it->value) == chain.end()) {
        chain.push_back(it->value);
      }
    }
  }
  ABC_CHECK_ARG(chain.size() == count,
                "not enough NTT primes of the requested width");
  return chain;
}

}  // namespace abc::rns
