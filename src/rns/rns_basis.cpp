#include "rns/rns_basis.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace abc::rns {

RnsBasis::RnsBasis(const std::vector<u64>& primes) {
  ABC_CHECK_ARG(!primes.empty(), "RNS basis needs at least one prime");
  moduli_.reserve(primes.size());
  for (u64 p : primes) moduli_.emplace_back(p);
  // Pairwise distinctness (CRT requirement).
  std::vector<u64> sorted = primes;
  std::sort(sorted.begin(), sorted.end());
  ABC_CHECK_ARG(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
                "RNS primes must be distinct");

  prefixes_.resize(primes.size());
  BigUint q(1);
  for (std::size_t level = 1; level <= primes.size(); ++level) {
    q = q * primes[level - 1];
    Prefix& pre = prefixes_[level - 1];
    pre.q = q;
    pre.word_count = q.word_count();
    pre.qhat.reserve(level);
    pre.qhat_inv.reserve(level);
    pre.qhat_words.reserve(level);
    for (std::size_t i = 0; i < level; ++i) {
      BigUint qhat(1);
      for (std::size_t j = 0; j < level; ++j) {
        if (j != i) qhat = qhat * primes[j];
      }
      const u64 qhat_mod = qhat.mod_u64(primes[i]);
      pre.qhat_inv.push_back(moduli_[i].inv(qhat_mod));
      std::vector<u64> words = qhat.words();
      words.resize(pre.word_count, 0);
      pre.qhat_words.push_back(std::move(words));
      pre.qhat.push_back(std::move(qhat));
    }
  }
}

const BigUint& RnsBasis::product(std::size_t limbs) const {
  return prefix(limbs).q;
}

const RnsBasis::Prefix& RnsBasis::prefix(std::size_t limbs) const {
  ABC_CHECK_ARG(limbs >= 1 && limbs <= moduli_.size(),
                "prefix level out of range");
  return prefixes_[limbs - 1];
}

void RnsBasis::decompose_i64(i64 x, std::span<u64> out) const {
  ABC_CHECK_ARG(out.size() <= moduli_.size(), "too many limbs requested");
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = moduli_[i].from_signed(x);
  }
}

CrtComposer::CrtComposer(const RnsBasis& basis, std::size_t limbs)
    : basis_(basis), limbs_(limbs), prefix_(basis.prefix(limbs)) {
  acc_.resize(prefix_.word_count + 1);
  q_words_ = prefix_.q.words();
  q_words_.resize(acc_.size(), 0);
}

void CrtComposer::accumulate(std::span<const u64> residues) {
  ABC_CHECK_ARG(residues.size() == limbs_, "residue count mismatch");
  std::fill(acc_.begin(), acc_.end(), 0);
  for (std::size_t i = 0; i < limbs_; ++i) {
    const Modulus& qi = basis_.modulus(i);
    const u64 yi = qi.mul(residues[i], prefix_.qhat_inv[i]);
    // acc += yi * qhat_i  (word-by-word multiply-accumulate)
    const std::vector<u64>& words = prefix_.qhat_words[i];
    u64 carry = 0;
    for (std::size_t w = 0; w < words.size(); ++w) {
      const u128 cur = static_cast<u128>(acc_[w]) + mul_wide(yi, words[w]) + carry;
      acc_[w] = lo64(cur);
      carry = hi64(cur);
    }
    std::size_t w = words.size();
    while (carry != 0 && w < acc_.size()) {
      const u128 cur = static_cast<u128>(acc_[w]) + carry;
      acc_[w] = lo64(cur);
      carry = hi64(cur);
      ++w;
    }
  }
  // acc < limbs * Q; reduce by subtracting multiples of Q. limbs <= ~40 so a
  // subtraction loop is fine and branch-predictable.
  auto geq_q = [&]() {
    for (std::size_t w = acc_.size(); w-- > 0;) {
      if (acc_[w] != q_words_[w]) return acc_[w] > q_words_[w];
    }
    return true;  // equal counts as >= so we land in [0, Q)
  };
  while (geq_q()) {
    u64 borrow = 0;
    for (std::size_t w = 0; w < acc_.size(); ++w) {
      const u128 rhs = static_cast<u128>(q_words_[w]) + borrow;
      const u128 lhs = acc_[w];
      if (lhs >= rhs) {
        acc_[w] = static_cast<u64>(lhs - rhs);
        borrow = 0;
      } else {
        acc_[w] = static_cast<u64>((u128{1} << 64) + lhs - rhs);
        borrow = 1;
      }
    }
  }
}

double CrtComposer::compose_centered(std::span<const u64> residues) {
  accumulate(residues);
  // Centering must happen in the integer domain: for values near Q the
  // double conversion of acc and Q collapses to the same number and the
  // difference (the actual small signed value) would be lost.
  auto to_double = [](std::span<const u64> words) {
    double v = 0.0;
    for (std::size_t w = words.size(); w-- > 0;) {
      v = v * 18446744073709551616.0 + static_cast<double>(words[w]);
    }
    return v;
  };
  // acc > Q/2 <=> 2*acc > Q; compare without modifying acc via top-down scan
  // of (acc << 1) against q.
  bool greater_than_half = false;
  for (std::size_t w = acc_.size(); w-- > 0;) {
    const u64 doubled = (acc_[w] << 1) | (w > 0 ? acc_[w - 1] >> 63 : 0);
    if (doubled != q_words_[w]) {
      greater_than_half = doubled > q_words_[w];
      break;
    }
  }
  if (!greater_than_half) return to_double(acc_);
  // value - Q, computed as -(Q - acc).
  std::vector<u64>& diff = diff_scratch_;
  diff.assign(acc_.size(), 0);
  u64 borrow = 0;
  for (std::size_t w = 0; w < acc_.size(); ++w) {
    const u128 rhs = static_cast<u128>(acc_[w]) + borrow;
    const u128 lhs = q_words_[w];
    if (lhs >= rhs) {
      diff[w] = static_cast<u64>(lhs - rhs);
      borrow = 0;
    } else {
      diff[w] = static_cast<u64>((u128{1} << 64) + lhs - rhs);
      borrow = 1;
    }
  }
  return -to_double(diff);
}

BigUint CrtComposer::compose_exact(std::span<const u64> residues) {
  accumulate(residues);
  return BigUint::from_words(acc_);
}

}  // namespace abc::rns
