#pragma once

/// @file montgomery.hpp
/// Montgomery reduction with configurable radix R = 2^r (r <= 64), plus the
/// paper's NTT-friendly optimization (Sec. IV-A): for primes of the form
///   Q = 2^bw + k * 2^(n+1) + 1,   k = +/-2^a +/- 2^b +/- 2^c,
/// the value QInv = -Q^{-1} mod R has a sparse signed-power-of-two
/// representation, so the two "extra" multiplications of the Montgomery
/// reduction collapse into shift-and-add networks. We compute the exact
/// QInv by Hensel lifting and expose its minimal signed-digit (NAF)
/// decomposition; the shift-add reduction path is bit-exact with the
/// multiplier-based path and is exercised against it in tests.

#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace abc::rns {

/// A value expressed as a sum of signed powers of two (non-adjacent form).
/// The number of terms is the hardware shift-and-add cost of multiplying by
/// the value.
class SignedPow2 {
 public:
  struct Term {
    int shift;  // power of two
    int sign;   // +1 or -1
  };

  /// Minimal-weight decomposition of @p value interpreted modulo 2^bits.
  /// The decomposition picks the representative of value in
  /// [-2^(bits-1), 2^(bits-1)) so that e.g. 2^bits - 1 costs one term.
  static SignedPow2 decompose(u64 value, int bits);

  const std::vector<Term>& terms() const noexcept { return terms_; }
  int weight() const noexcept { return static_cast<int>(terms_.size()); }

  /// Evaluate the decomposition modulo 2^bits (for verification) applied to
  /// a multiplicand: returns (x * value) mod 2^bits using shifts/adds only.
  u64 apply(u64 x, int bits) const noexcept;

 private:
  std::vector<Term> terms_;
};

/// Montgomery context for modulus q with radix R = 2^r_bits.
class Montgomery {
 public:
  /// @p r_bits must satisfy bit_count(q) < r_bits <= 64 and q must be odd.
  Montgomery(u64 q, int r_bits);

  u64 modulus() const noexcept { return q_; }
  int r_bits() const noexcept { return r_bits_; }
  u64 qinv() const noexcept { return qinv_; }          // q^{-1} mod R
  u64 neg_qinv() const noexcept { return neg_qinv_; }  // -q^{-1} mod R
  const SignedPow2& neg_qinv_naf() const noexcept { return neg_qinv_naf_; }

  /// Montgomery reduction: T < q*R -> T * R^{-1} mod q, result < q.
  u64 redc(u128 t) const noexcept;

  /// Same reduction but computing m = (T mod R) * (-q^{-1}) mod R with the
  /// sparse shift-add decomposition (the NTT-friendly datapath). Bit-exact
  /// with redc().
  u64 redc_shift_add(u128 t) const noexcept;

  /// To/from the Montgomery domain.
  u64 to_mont(u64 a) const noexcept { return redc(mul_wide(a % q_, r2_)); }
  u64 from_mont(u64 a) const noexcept { return redc(static_cast<u128>(a)); }

  /// Product of two Montgomery-domain operands (each < q).
  u64 mul(u64 a, u64 b) const noexcept { return redc(mul_wide(a, b)); }
  u64 mul_shift_add(u64 a, u64 b) const noexcept {
    return redc_shift_add(mul_wide(a, b));
  }

 private:
  u64 mask(u64 x) const noexcept {
    return r_bits_ == 64 ? x : x & ((u64{1} << r_bits_) - 1);
  }

  u64 q_ = 0;
  int r_bits_ = 0;
  u64 qinv_ = 0;
  u64 neg_qinv_ = 0;
  u64 r2_ = 0;  // R^2 mod q
  SignedPow2 neg_qinv_naf_;
};

}  // namespace abc::rns
