#pragma once

/// @file rns_basis.hpp
/// Residue number system over a chain of NTT primes, with CRT
/// recomposition. Encoding expands a centered integer into residues
/// ("Expand RNS" in the paper's Fig. 2a); decoding recombines residues into
/// a centered big integer ("Combine CRT") before the final FFT.

#include <span>
#include <vector>

#include "common/bigint.hpp"
#include "rns/modulus.hpp"

namespace abc::rns {

/// An ordered prime chain q_0, ..., q_{L-1}. "Level" here means the number
/// of active limbs (a fresh bootstrappable ciphertext uses all of them; a
/// server-returned ciphertext in the paper uses 2).
class RnsBasis {
 public:
  explicit RnsBasis(const std::vector<u64>& primes);

  std::size_t size() const noexcept { return moduli_.size(); }
  const Modulus& modulus(std::size_t i) const { return moduli_.at(i); }
  std::span<const Modulus> moduli() const noexcept { return moduli_; }

  /// Product of the first @p limbs primes.
  const BigUint& product(std::size_t limbs) const;

  /// Residues of a centered signed value across the first @p limbs primes.
  void decompose_i64(i64 x, std::span<u64> out) const;

  /// CRT data for a prefix of the chain.
  struct Prefix {
    BigUint q;                        // product of the prefix primes
    std::vector<BigUint> qhat;        // q / q_i
    std::vector<u64> qhat_inv;        // (q / q_i)^{-1} mod q_i
    std::vector<std::vector<u64>> qhat_words;  // qhat padded to word_count
    std::size_t word_count = 0;       // words of q
  };
  const Prefix& prefix(std::size_t limbs) const;

 private:
  std::vector<Modulus> moduli_;
  std::vector<Prefix> prefixes_;  // prefixes_[L-1] covers the first L primes
};

/// Streaming CRT recomposition with preallocated scratch: converts one
/// residue vector at a time into a centered double. Used by the decoder on
/// up to 2^16 coefficients, so it avoids per-coefficient allocation.
class CrtComposer {
 public:
  CrtComposer(const RnsBasis& basis, std::size_t limbs);

  /// residues[i] is the value mod q_i; returns the centered representative
  /// of the CRT recombination as a double.
  double compose_centered(std::span<const u64> residues);

  /// Exact recombination in [0, Q) as a BigUint (slow path, for tests).
  BigUint compose_exact(std::span<const u64> residues);

 private:
  void accumulate(std::span<const u64> residues);

  const RnsBasis& basis_;
  std::size_t limbs_;
  const RnsBasis::Prefix& prefix_;
  std::vector<u64> acc_;          // word_count + 1 scratch words
  std::vector<u64> q_words_;      // prefix q padded to acc_ size
  std::vector<u64> diff_scratch_; // Q - acc scratch for centered negatives
};

}  // namespace abc::rns
