#pragma once

/// @file ntt_prime.hpp
/// NTT-friendly prime selection (paper Sec. IV-A).
///
/// A negacyclic NTT of degree N requires q == 1 (mod 2N). The paper further
/// restricts primes to the form
///     Q = 2^bw + k * 2^(n+1) + 1,   k = +/-2^a +/- 2^b +/- 2^c      (eq. 8)
/// so that both Q and QInv = -Q^{-1} mod R are sparse in signed-binary form
/// and the Montgomery reduction needs no extra multipliers (eq. 11).
///
/// We operationalize "sparse" as: the signed-digit (NAF) weight of (Q - 1)
/// is at most 1 + max_k_terms (the leading 2^bw term plus the k terms).
/// The paper reports 443 such 32-36-bit primes for N = 2^16; the bench
/// bench_table1_modmul reproduces that count with this enumeration.

#include <vector>

#include "common/types.hpp"

namespace abc::rns {

/// Metadata for one candidate NTT prime.
struct NttPrimeInfo {
  u64 value = 0;
  int bit_count = 0;
  /// k such that value = 2^bit_count + k * 2^(log_n + 1) + 1 (k may be
  /// negative when the prime sits below 2^bit_count).
  i64 k = 0;
  /// Signed-digit weight of (value - 1): number of shift-add terms needed
  /// to multiply by Q in hardware.
  int q_weight = 0;
  /// Signed-digit weight of -Q^{-1} mod 2^r for the given Montgomery radix.
  int qinv_weight = 0;
};

/// All primes q == 1 (mod 2^(log_n+1)) with exactly @p bit_count bits,
/// i.e. q in [2^(bit_count-1), 2^bit_count). log_n is log2 of the
/// polynomial degree N. Results are sorted ascending.
std::vector<NttPrimeInfo> enumerate_ntt_primes(int bit_count, int log_n,
                                               int mont_r_bits = 44);

/// Subset of enumerate_ntt_primes whose (Q - 1) signed-digit weight is at
/// most 1 + max_k_terms — the paper's hardware-friendly form with
/// k = sum of at most max_k_terms signed powers of two.
std::vector<NttPrimeInfo> enumerate_sparse_ntt_primes(int bit_count, int log_n,
                                                      int max_k_terms = 3,
                                                      int mont_r_bits = 44);

/// Count of hardware-friendly primes over an inclusive bit range (the
/// paper's "443 primes of 32-36 bits for N = 2^16" claim).
std::size_t count_sparse_ntt_primes(int bit_lo, int bit_hi, int log_n,
                                    int max_k_terms = 3);

/// Primes matching the paper's *full* hardware criterion: sparse Q
/// (eq. 8: leading power + at most 3 signed k-terms) AND sparse QInv
/// (eq. 11: QInv == -2^bw - k*2^(n+1) + 1, i.e. at most 5 signed terms
/// modulo the Montgomery radix). Both the multiplier m*(-QInv) and m*Q
/// then collapse into shift-add networks.
std::vector<NttPrimeInfo> enumerate_paper_friendly_primes(
    int bit_count, int log_n, int mont_r_bits = 44);

/// Select a modulus chain of @p count primes with the given bit width for
/// degree 2^log_n, preferring hardware-friendly (sparse) primes and falling
/// back to generic NTT primes if the sparse pool is too small. Primes are
/// distinct and returned largest-first (CKKS convention: q_0 first).
std::vector<u64> select_prime_chain(int bit_count, int log_n,
                                    std::size_t count);

}  // namespace abc::rns
