#pragma once

/// @file modulus.hpp
/// A word-sized prime modulus with Barrett reduction precomputation, plus
/// Shoup multiplication for constant operands (twiddle factors). This is the
/// fast software arithmetic used by the reference CKKS implementation; the
/// hardware-style datapath models live in modmul_algorithms.hpp.

#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace abc::rns {

/// Immutable modulus q with floor(2^128 / q) precomputed for Barrett
/// reduction of 128-bit products. Supports q up to 62 bits.
class Modulus {
 public:
  Modulus() = default;
  explicit Modulus(u64 value);

  u64 value() const noexcept { return value_; }
  int bit_count() const noexcept { return bit_count_; }
  bool is_zero() const noexcept { return value_ == 0; }

  bool operator==(const Modulus& other) const noexcept {
    return value_ == other.value_;
  }

  /// x mod q for any 64-bit x.
  u64 reduce(u64 x) const noexcept;

  /// x mod q for any 128-bit x (Barrett with the 2^128 ratio).
  u64 reduce_128(u128 x) const noexcept;

  u64 add(u64 a, u64 b) const noexcept {
    u64 s = a + b;
    return s >= value_ ? s - value_ : s;
  }
  u64 sub(u64 a, u64 b) const noexcept {
    return a >= b ? a - b : a + value_ - b;
  }
  u64 negate(u64 a) const noexcept { return a == 0 ? 0 : value_ - a; }
  u64 mul(u64 a, u64 b) const noexcept { return reduce_128(mul_wide(a, b)); }

  u64 pow(u64 base, u64 exponent) const noexcept;

  /// Multiplicative inverse (q must be prime for exponent-based inverse of
  /// arbitrary elements; validated at construction for the prime chain).
  u64 inv(u64 a) const;

  /// Centered signed representative in (-q/2, q/2].
  i64 to_centered(u64 a) const noexcept {
    return a > value_ / 2 ? static_cast<i64>(a) - static_cast<i64>(value_)
                          : static_cast<i64>(a);
  }
  /// Map a signed value into [0, q).
  u64 from_signed(i64 x) const noexcept {
    i64 r = x % static_cast<i64>(value_);
    if (r < 0) r += static_cast<i64>(value_);
    return static_cast<u64>(r);
  }

 private:
  u64 value_ = 0;
  int bit_count_ = 0;
  // floor(2^128 / q) as two 64-bit words (lo, hi).
  u64 ratio_lo_ = 0;
  u64 ratio_hi_ = 0;
};

/// Precomputed Shoup representation of a constant multiplicand w < q:
/// stores floor(w * 2^64 / q) so that (x * w) mod q costs one mul_hi, one
/// mul_lo and a conditional subtraction. Exactly the trick fast software
/// NTTs use for twiddle factors.
struct ShoupMul {
  u64 operand = 0;
  u64 quotient = 0;

  static ShoupMul make(u64 operand, const Modulus& q) {
    ABC_CHECK_ARG(operand < q.value(), "Shoup operand must be < q");
    const u128 wide = static_cast<u128>(operand) << 64;
    return {operand, static_cast<u64>(wide / q.value())};
  }

  /// (x * operand) mod q, fully reduced.
  ///
  /// Input-domain contract (Harvey's bound): operand < q is required; x may
  /// be ANY 64-bit value — in particular the lazily-reduced values in
  /// [0, 2q) or [0, 4q) the Harvey NTT kernels circulate. The raw product
  /// x*operand - floor(x*quotient/2^64)*q is always < 2q, so one
  /// conditional subtraction reaches the canonical [0, q) representative.
  u64 mul(u64 x, u64 q) const noexcept {
    const u64 r = mul_lazy(x, q);
    return r >= q ? r - q : r;
  }

  /// Lazy variant without the final conditional subtraction: result < 2q
  /// (same contract: operand < q, any 64-bit x). Building block of the
  /// lazy-reduction butterflies, which defer canonicalization to a single
  /// correction pass.
  u64 mul_lazy(u64 x, u64 q) const noexcept {
    const u64 hi = mul_hi(x, quotient);
    return x * operand - hi * q;  // wraps mod 2^64 by construction
  }
};

}  // namespace abc::rns
