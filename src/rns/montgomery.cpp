#include "rns/montgomery.hpp"

#include "common/bitops.hpp"
#include "common/math_util.hpp"

namespace abc::rns {

SignedPow2 SignedPow2::decompose(u64 value, int bits) {
  ABC_CHECK_ARG(bits >= 1 && bits <= 64, "bits must be in [1, 64]");
  SignedPow2 d;
  // Signed representative in [-2^(bits-1), 2^(bits-1)).
  i128 v = static_cast<i128>(value & (bits == 64 ? ~u64{0} : ((u64{1} << bits) - 1)));
  if (bits < 128 && v >= (static_cast<i128>(1) << (bits - 1))) {
    v -= static_cast<i128>(1) << bits;
  }
  int shift = 0;
  while (v != 0) {
    if (v & 1) {
      const int digit = ((v & 3) == 1) ? 1 : -1;
      d.terms_.push_back({shift, digit});
      v -= digit;
    }
    v >>= 1;
    ++shift;
  }
  return d;
}

u64 SignedPow2::apply(u64 x, int bits) const noexcept {
  u64 acc = 0;
  for (const Term& t : terms_) {
    const u64 shifted = t.shift >= 64 ? 0 : (x << t.shift);
    acc = t.sign > 0 ? acc + shifted : acc - shifted;
  }
  if (bits < 64) acc &= (u64{1} << bits) - 1;
  return acc;
}

Montgomery::Montgomery(u64 q, int r_bits) : q_(q), r_bits_(r_bits) {
  ABC_CHECK_ARG((q & 1) != 0, "Montgomery modulus must be odd");
  ABC_CHECK_ARG(r_bits > bit_length(q) && r_bits <= 64,
                "need R = 2^r > q with r <= 64");
  qinv_ = inverse_mod_pow2(q, r_bits);
  neg_qinv_ = mask(~qinv_ + 1);
  neg_qinv_naf_ = SignedPow2::decompose(neg_qinv_, r_bits);
  // R^2 mod q via repeated doubling: R mod q, then square with 128-bit math.
  const u64 r_mod_q =
      r_bits == 64 ? (~static_cast<u64>(0) % q + 1) % q
                   : (u64{1} << r_bits) % q;
  r2_ = static_cast<u64>(mul_wide(r_mod_q, r_mod_q) % q);
}

u64 Montgomery::redc(u128 t) const noexcept {
  const u64 m = mask(lo64(t) * neg_qinv_);
  const u128 sum = t + mul_wide(m, q_);
  u64 r = static_cast<u64>(sum >> r_bits_);
  if (r >= q_) r -= q_;
  return r;
}

u64 Montgomery::redc_shift_add(u128 t) const noexcept {
  // m computed with the sparse signed-digit form of -q^{-1}: this is the
  // paper's shift-and-add network. Result is identical to redc().
  const u64 m = neg_qinv_naf_.apply(lo64(t), r_bits_);
  const u128 sum = t + mul_wide(m, q_);
  u64 r = static_cast<u64>(sum >> r_bits_);
  if (r >= q_) r -= q_;
  return r;
}

}  // namespace abc::rns
