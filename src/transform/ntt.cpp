#include "transform/ntt.hpp"

#include "common/bitops.hpp"
#include "common/check.hpp"
#include "transform/op_counter.hpp"

namespace abc::xf {

u64 find_primitive_2n_root(const rns::Modulus& q, int log_n) {
  const u64 two_n = u64{1} << (log_n + 1);
  ABC_CHECK_ARG((q.value() - 1) % two_n == 0, "q != 1 mod 2N");
  const u64 cofactor = (q.value() - 1) / two_n;
  // Bounded deterministic candidate search. For candidate = g^cofactor the
  // order validation is exact and unconditional: candidate^N == -1 forces
  // candidate^{2N} == 1 and candidate^N != 1, so ord(candidate) divides the
  // power of two 2N but not N — i.e. ord(candidate) == 2N exactly. For
  // prime q the test passes iff g is a quadratic non-residue (density 1/2),
  // so the bound is never approached; it exists to fail fast on non-prime
  // input instead of scanning to q. Perfect-square g (4, 9, 16, ...) are
  // always residues and can never succeed, so candidates are drawn from
  // small primes first, then odd integers.
  constexpr u64 kSmallPrimes[] = {2,  3,  5,  7,  11, 13, 17, 19,
                                  23, 29, 31, 37, 41, 43, 47, 53};
  constexpr u64 kMaxCandidates = 4096;
  u64 tried = 0;
  auto try_generator = [&](u64 g) -> u64 {
    ++tried;
    const u64 candidate = q.pow(g, cofactor);
    if (q.pow(candidate, two_n / 2) == q.value() - 1) return candidate;
    return 0;
  };
  for (u64 g : kSmallPrimes) {
    if (g >= q.value()) break;
    if (const u64 r = try_generator(g)) return r;
  }
  for (u64 g = 55; tried < kMaxCandidates && g < q.value(); g += 2) {
    if (const u64 r = try_generator(g)) return r;
  }
  ABC_CHECK_STATE(false,
                  "no primitive 2N-th root among bounded candidates "
                  "(q not prime?)");
  return 0;
}

NttTables::NttTables(const rns::Modulus& q, int log_n)
    : q_(q), log_n_(log_n), n_(std::size_t{1} << log_n) {
  ABC_CHECK_ARG(log_n >= 1 && log_n <= 20, "log_n out of range");
  psi_ = find_primitive_2n_root(q, log_n);
  psi_inv_ = q_.inv(psi_);
  w_.resize(n_);
  w_shoup_.resize(n_);
  inv_w_.resize(n_);
  inv_w_shoup_.resize(n_);
  // Incremental products: psi^i and psi^{-i} cost one modular multiply per
  // index (instead of one q.pow and one q.inv each — O(N log q)), scattered
  // to bit-reversed positions. inv_w_[rev(i)] = (psi^i)^{-1} = psi_inv^i.
  u64 fwd = 1;
  u64 inv = 1;
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t r = bit_reverse(i, log_n_);
    w_[r] = fwd;
    inv_w_[r] = inv;
    fwd = q_.mul(fwd, psi_);
    inv = q_.mul(inv, psi_inv_);
  }
  for (std::size_t i = 0; i < n_; ++i) {
    w_shoup_[i] = rns::ShoupMul::make(w_[i], q_).quotient;
    inv_w_shoup_[i] = rns::ShoupMul::make(inv_w_[i], q_).quotient;
  }
  n_inv_ = rns::ShoupMul::make(q_.inv(static_cast<u64>(n_ % q_.value())), q_);
}

void NttTables::forward(std::span<u64> a) const {
  ABC_CHECK_ARG(a.size() == n_, "polynomial size mismatch");
  simd::ntt_forward_lazy(layout(), a.data());
  op_counts().ntt_mul += (n_ / 2) * static_cast<u64>(log_n_);
  op_counts().ntt_add += n_ * static_cast<u64>(log_n_);
}

void NttTables::inverse(std::span<u64> a) const {
  ABC_CHECK_ARG(a.size() == n_, "polynomial size mismatch");
  simd::ntt_inverse_lazy(layout(), a.data());
  op_counts().ntt_mul += (n_ / 2) * static_cast<u64>(log_n_) + n_;
  op_counts().ntt_add += n_ * static_cast<u64>(log_n_);
}

void NttTables::forward_eager(std::span<u64> a) const {
  ABC_CHECK_ARG(a.size() == n_, "polynomial size mismatch");
  const u64 qv = q_.value();
  std::size_t t = n_;
  for (std::size_t m = 1; m < n_; m <<= 1) {
    t >>= 1;
    for (std::size_t i = 0; i < m; ++i) {
      const rns::ShoupMul s{w_[m + i], w_shoup_[m + i]};
      const std::size_t j1 = 2 * i * t;
      for (std::size_t j = j1; j < j1 + t; ++j) {
        const u64 u = a[j];
        const u64 v = s.mul(a[j + t], qv);
        a[j] = q_.add(u, v);
        a[j + t] = q_.sub(u, v);
      }
    }
  }
  op_counts().ntt_mul += (n_ / 2) * static_cast<u64>(log_n_);
  op_counts().ntt_add += n_ * static_cast<u64>(log_n_);
}

void NttTables::inverse_eager(std::span<u64> a) const {
  ABC_CHECK_ARG(a.size() == n_, "polynomial size mismatch");
  const u64 qv = q_.value();
  // Exact mirror of forward_eager(): Gentleman-Sande butterflies with
  // inverse twiddles, stages in reverse order; the per-stage 1/2 factors
  // are folded into the final N^{-1} multiplication.
  std::size_t t = 1;
  for (std::size_t m = n_ >> 1; m >= 1; m >>= 1) {
    for (std::size_t i = 0; i < m; ++i) {
      const rns::ShoupMul s{inv_w_[m + i], inv_w_shoup_[m + i]};
      const std::size_t j1 = 2 * i * t;
      for (std::size_t j = j1; j < j1 + t; ++j) {
        const u64 x = a[j];
        const u64 y = a[j + t];
        a[j] = q_.add(x, y);
        a[j + t] = s.mul(q_.sub(x, y), qv);
      }
    }
    t <<= 1;
  }
  for (std::size_t j = 0; j < n_; ++j) a[j] = n_inv_.mul(a[j], qv);
  op_counts().ntt_mul += (n_ / 2) * static_cast<u64>(log_n_) + n_;
  op_counts().ntt_add += n_ * static_cast<u64>(log_n_);
}

std::vector<u64> negacyclic_mult_schoolbook(std::span<const u64> a,
                                            std::span<const u64> b,
                                            const rns::Modulus& q) {
  ABC_CHECK_ARG(a.size() == b.size(), "size mismatch");
  const std::size_t n = a.size();
  std::vector<u64> c(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const u64 prod = q.mul(a[i], b[j]);
      const std::size_t k = i + j;
      if (k < n) {
        c[k] = q.add(c[k], prod);
      } else {
        c[k - n] = q.sub(c[k - n], prod);  // X^N == -1
      }
    }
  }
  return c;
}

}  // namespace abc::xf
