#include "transform/ntt.hpp"

#include "common/bitops.hpp"
#include "common/check.hpp"
#include "transform/op_counter.hpp"

namespace abc::xf {

u64 find_primitive_2n_root(const rns::Modulus& q, int log_n) {
  const u64 two_n = u64{1} << (log_n + 1);
  ABC_CHECK_ARG((q.value() - 1) % two_n == 0, "q != 1 mod 2N");
  const u64 cofactor = (q.value() - 1) / two_n;
  // Deterministic scan over small candidates: g^cofactor has order dividing
  // 2N; it is a primitive 2N-th root iff its N-th power is -1.
  for (u64 g = 2; g < q.value(); ++g) {
    const u64 candidate = q.pow(g, cofactor);
    if (q.pow(candidate, two_n / 2) == q.value() - 1) return candidate;
  }
  ABC_CHECK_STATE(false, "no primitive root found (q not prime?)");
  return 0;
}

NttTables::NttTables(const rns::Modulus& q, int log_n)
    : q_(q), log_n_(log_n), n_(std::size_t{1} << log_n) {
  ABC_CHECK_ARG(log_n >= 1 && log_n <= 20, "log_n out of range");
  psi_ = find_primitive_2n_root(q, log_n);
  psi_inv_ = q_.inv(psi_);
  psi_rev_.resize(n_);
  inv_psi_rev_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    const u64 exponent = bit_reverse(i, log_n_);
    const u64 w = q_.pow(psi_, exponent);
    psi_rev_[i] = rns::ShoupMul::make(w, q_);
    inv_psi_rev_[i] = rns::ShoupMul::make(q_.inv(w), q_);
  }
  n_inv_ = rns::ShoupMul::make(q_.inv(static_cast<u64>(n_ % q_.value())), q_);
}

void NttTables::forward(std::span<u64> a) const {
  ABC_CHECK_ARG(a.size() == n_, "polynomial size mismatch");
  const u64 qv = q_.value();
  std::size_t t = n_;
  for (std::size_t m = 1; m < n_; m <<= 1) {
    t >>= 1;
    for (std::size_t i = 0; i < m; ++i) {
      const rns::ShoupMul& s = psi_rev_[m + i];
      const std::size_t j1 = 2 * i * t;
      for (std::size_t j = j1; j < j1 + t; ++j) {
        const u64 u = a[j];
        const u64 v = s.mul(a[j + t], qv);
        a[j] = q_.add(u, v);
        a[j + t] = q_.sub(u, v);
      }
    }
  }
  op_counts().ntt_mul += (n_ / 2) * static_cast<u64>(log_n_);
  op_counts().ntt_add += n_ * static_cast<u64>(log_n_);
}

void NttTables::inverse(std::span<u64> a) const {
  ABC_CHECK_ARG(a.size() == n_, "polynomial size mismatch");
  const u64 qv = q_.value();
  // Exact mirror of forward(): Gentleman-Sande butterflies with inverse
  // twiddles, stages in reverse order; the per-stage 1/2 factors are folded
  // into the final N^{-1} multiplication.
  std::size_t t = 1;
  for (std::size_t m = n_ >> 1; m >= 1; m >>= 1) {
    for (std::size_t i = 0; i < m; ++i) {
      const rns::ShoupMul& s = inv_psi_rev_[m + i];
      const std::size_t j1 = 2 * i * t;
      for (std::size_t j = j1; j < j1 + t; ++j) {
        const u64 x = a[j];
        const u64 y = a[j + t];
        a[j] = q_.add(x, y);
        a[j + t] = s.mul(q_.sub(x, y), qv);
      }
    }
    t <<= 1;
  }
  for (std::size_t j = 0; j < n_; ++j) a[j] = n_inv_.mul(a[j], qv);
  op_counts().ntt_mul += (n_ / 2) * static_cast<u64>(log_n_) + n_;
  op_counts().ntt_add += n_ * static_cast<u64>(log_n_);
}

std::vector<u64> negacyclic_mult_schoolbook(std::span<const u64> a,
                                            std::span<const u64> b,
                                            const rns::Modulus& q) {
  ABC_CHECK_ARG(a.size() == b.size(), "size mismatch");
  const std::size_t n = a.size();
  std::vector<u64> c(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const u64 prod = q.mul(a[i], b[j]);
      const std::size_t k = i + j;
      if (k < n) {
        c[k] = q.add(c[k], prod);
      } else {
        c[k - n] = q.sub(c[k - n], prod);  // X^N == -1
      }
    }
  }
  return c;
}

}  // namespace abc::xf
