#pragma once

/// @file twiddle.hpp
/// Models of the unified on-the-fly twiddle factor generator (paper
/// Sec. IV-B). Within one pipeline stage of the (I)NTT/(I)FFT, the twiddle
/// factors form a geometric sequence: stage s (with m = 2^s blocks)
/// consumes { psi^{(2j+1) * N/(2m)} : j = 0..m-1 }, i.e. seed * step^j with
///   seed = psi^{N/(2m)},  step = psi^{N/m}.
/// The generator therefore stores one (seed, step) pair per stage and emits
/// one twiddle per modular/complex multiplication — replacing the full
/// twiddle ROM (8.25 MB at N=2^16) with ~26 KB of seed memory, the >99.9%
/// reduction claimed by the paper.
///
/// The complex generator accumulates rounding error as it steps, so it
/// periodically re-reads an exact value from seed memory; the reseed
/// interval trades seed-memory bytes against worst-case twiddle error.

#include <cstddef>

#include "transform/dwt.hpp"
#include "transform/ntt.hpp"

namespace abc::xf {

/// Exact on-the-fly generator for one NTT stage.
class OtfModularTwiddleGen {
 public:
  /// @p stage in [0, log_n): stage s has 2^s twiddles.
  OtfModularTwiddleGen(const NttTables& tables, int stage);

  u64 seed() const noexcept { return seed_; }
  u64 step() const noexcept { return step_; }
  std::size_t count() const noexcept { return count_; }

  /// j-th call returns seed * step^j (one modular multiplication per call
  /// after the first).
  u64 next();

  /// Table entry psi_rev(m+i) equals output index bit_reverse(i, stage):
  /// verified by tests; exposed for the mapping property.
  static bool matches_tables(const NttTables& tables, int stage);

 private:
  const rns::Modulus q_;
  u64 seed_;
  u64 step_;
  u64 current_;
  std::size_t emitted_ = 0;
  std::size_t count_;
};

/// Complex generator with periodic reseeding from exact seed memory.
class OtfComplexTwiddleGen {
 public:
  OtfComplexTwiddleGen(const CkksDwtPlan& plan, int stage,
                       std::size_t reseed_interval);

  std::size_t count() const noexcept { return count_; }
  std::size_t reseeds() const noexcept { return reseeds_; }

  Cx<double> next();

  /// Worst-case |generated - exact| over a full stage for the given reseed
  /// interval (drives the seed-memory sizing).
  static double max_error_vs_exact(const CkksDwtPlan& plan, int stage,
                                   std::size_t reseed_interval);

 private:
  const CkksDwtPlan& plan_;
  int stage_;
  std::size_t reseed_interval_;
  std::size_t count_;
  std::size_t emitted_ = 0;
  std::size_t reseeds_ = 0;
  u64 seed_exponent_;  // exponent of zeta for entry j: seed_e + j * step_e
  u64 step_exponent_;
  Cx<double> current_{};
  Cx<double> step_value_{};
};

/// On-chip seed-memory budget of the unified OTF TF Gen, vs. the full
/// twiddle ROM it replaces (paper: 26.4 KB vs 8.25 MB).
struct TwiddleSeedMemoryModel {
  int log_n = 16;
  int num_primes = 24;
  int int_bits = 44;           // modular datapath width
  int fp_bits = 55;            // FP55: complex value = 2 * fp_bits
  std::size_t reseed_interval = 128;

  /// (seed + step) per stage, per prime, forward + inverse.
  double ntt_seed_bytes() const;
  /// Reseed points per stage plus one step value per stage (forward only:
  /// inverse FFT twiddles are conjugates, a sign flip in hardware).
  double fft_seed_bytes() const;
  double total_seed_bytes() const;

  /// Full-table alternative: one twiddle per point per prime (NTT) plus
  /// the complex table (FFT).
  double full_table_bytes() const;
};

}  // namespace abc::xf
