#pragma once

/// @file ntt.hpp
/// Negacyclic number-theoretic transform over Z_q[X]/(X^N + 1) with merged
/// pre-/post-processing twiddles (paper eqs. 2-3): the nega-cyclic psi
/// factors are folded into the stage twiddles, so no separate pre/post
/// multiplication pass exists — the property the paper's twiddle-factor
/// scheduling exploits to reach the minimal P/2 * log2(N) multiplier count.
///
/// Conventions (Longa-Naehrig / SEAL):
///  * forward(): Cooley-Tukey butterflies, natural-order input,
///    bit-reversed output;
///  * inverse(): Gentleman-Sande butterflies, bit-reversed input,
///    natural-order output, scaled by N^{-1}.
/// Point-wise products of two forward-transformed polynomials followed by
/// inverse() realize negacyclic convolution.
///
/// Execution: forward()/inverse() run the Harvey lazy-reduction kernels
/// from src/simd/ (AVX2 or portable, runtime-dispatched; see
/// simd/ntt_kernels.hpp). The seed's eager-reduction butterflies are kept
/// as forward_eager()/inverse_eager() — the bit-exact reference the lazy
/// kernels are tested and benchmarked against. Twiddles are stored as flat
/// Shoup-pair arrays (value and quotient in separate parallel vectors) so
/// the butterfly inner loops stream both sequentially.

#include <span>
#include <vector>

#include "rns/modulus.hpp"
#include "simd/ntt_kernels.hpp"

namespace abc::xf {

class NttTables {
 public:
  /// Requires q == 1 (mod 2N) with N = 2^log_n.
  NttTables(const rns::Modulus& q, int log_n);

  const rns::Modulus& modulus() const noexcept { return q_; }
  int log_n() const noexcept { return log_n_; }
  std::size_t n() const noexcept { return n_; }

  u64 psi() const noexcept { return psi_; }          // primitive 2N-th root
  u64 psi_inv() const noexcept { return psi_inv_; }
  u64 n_inv() const noexcept { return n_inv_.operand; }

  /// In-place forward NTT (natural -> bit-reversed), result in [0, q).
  void forward(std::span<u64> a) const;

  /// In-place inverse NTT (bit-reversed -> natural), including the N^{-1}
  /// scaling; result in [0, q).
  void inverse(std::span<u64> a) const;

  /// Seed eager-reduction reference kernels: one canonical reduction per
  /// butterfly. Bit-identical outputs to forward()/inverse(); kept for
  /// parity tests and old-vs-new benchmarking.
  void forward_eager(std::span<u64> a) const;
  void inverse_eager(std::span<u64> a) const;

  /// Stage-twiddle access for the on-the-fly generator model:
  /// psi_rev(i) = psi^{bit_reverse(i, log_n)}.
  u64 psi_rev(std::size_t i) const { return w_.at(i); }

  /// Non-owning kernel view of the tables (simd/ntt_kernels.hpp).
  simd::NttLayout layout() const noexcept {
    return {w_.data(),     w_shoup_.data(),  inv_w_.data(),
            inv_w_shoup_.data(), q_.value(), n_inv_.operand,
            n_inv_.quotient,     n_,         log_n_};
  }

 private:
  rns::Modulus q_;
  int log_n_;
  std::size_t n_;
  u64 psi_ = 0;
  u64 psi_inv_ = 0;
  // Flat Shoup-pair twiddle arrays, bit-reversed index order: w_[i] =
  // psi^bit_reverse(i, log_n), w_shoup_[i] = floor(w_[i] * 2^64 / q);
  // inv_* hold the inverse twiddles (powers of psi^{-1}).
  std::vector<u64> w_;
  std::vector<u64> w_shoup_;
  std::vector<u64> inv_w_;
  std::vector<u64> inv_w_shoup_;
  rns::ShoupMul n_inv_;
};

/// Finds a primitive 2N-th root of unity modulo q (q == 1 mod 2N) by a
/// bounded deterministic candidate search; throws if q is not an NTT prime.
u64 find_primitive_2n_root(const rns::Modulus& q, int log_n);

/// Reference negacyclic product c = a * b mod (X^N + 1, q), O(N^2)
/// schoolbook; used by tests to pin down the transform semantics.
std::vector<u64> negacyclic_mult_schoolbook(std::span<const u64> a,
                                            std::span<const u64> b,
                                            const rns::Modulus& q);

}  // namespace abc::xf
