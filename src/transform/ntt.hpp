#pragma once

/// @file ntt.hpp
/// Negacyclic number-theoretic transform over Z_q[X]/(X^N + 1) with merged
/// pre-/post-processing twiddles (paper eqs. 2-3): the nega-cyclic psi
/// factors are folded into the stage twiddles, so no separate pre/post
/// multiplication pass exists — the property the paper's twiddle-factor
/// scheduling exploits to reach the minimal P/2 * log2(N) multiplier count.
///
/// Conventions (Longa-Naehrig / SEAL):
///  * forward(): Cooley-Tukey butterflies, natural-order input,
///    bit-reversed output;
///  * inverse(): Gentleman-Sande butterflies, bit-reversed input,
///    natural-order output, scaled by N^{-1}.
/// Point-wise products of two forward-transformed polynomials followed by
/// inverse() realize negacyclic convolution.

#include <span>
#include <vector>

#include "rns/modulus.hpp"

namespace abc::xf {

class NttTables {
 public:
  /// Requires q == 1 (mod 2N) with N = 2^log_n.
  NttTables(const rns::Modulus& q, int log_n);

  const rns::Modulus& modulus() const noexcept { return q_; }
  int log_n() const noexcept { return log_n_; }
  std::size_t n() const noexcept { return n_; }

  u64 psi() const noexcept { return psi_; }          // primitive 2N-th root
  u64 psi_inv() const noexcept { return psi_inv_; }
  u64 n_inv() const noexcept { return n_inv_.operand; }

  /// In-place forward NTT (natural -> bit-reversed).
  void forward(std::span<u64> a) const;

  /// In-place inverse NTT (bit-reversed -> natural), including the N^{-1}
  /// scaling.
  void inverse(std::span<u64> a) const;

  /// Stage-twiddle access for the on-the-fly generator model:
  /// psi_rev(i) = psi^{bit_reverse(i, log_n)}.
  u64 psi_rev(std::size_t i) const { return psi_rev_.at(i).operand; }

 private:
  rns::Modulus q_;
  int log_n_;
  std::size_t n_;
  u64 psi_ = 0;
  u64 psi_inv_ = 0;
  std::vector<rns::ShoupMul> psi_rev_;      // forward stage twiddles
  std::vector<rns::ShoupMul> inv_psi_rev_;  // inverses of psi_rev_
  rns::ShoupMul n_inv_;
};

/// Finds a primitive 2N-th root of unity modulo q (q == 1 mod 2N).
u64 find_primitive_2n_root(const rns::Modulus& q, int log_n);

/// Reference negacyclic product c = a * b mod (X^N + 1, q), O(N^2)
/// schoolbook; used by tests to pin down the transform semantics.
std::vector<u64> negacyclic_mult_schoolbook(std::span<const u64> a,
                                            std::span<const u64> b,
                                            const rns::Modulus& q);

}  // namespace abc::xf
