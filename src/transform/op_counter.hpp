#pragma once

/// @file op_counter.hpp
/// Analytic operation counters. Every transform / element-wise kernel adds
/// its arithmetic-op total once per call, so the counts reflect what the
/// hardware datapath would execute (the paper's Fig. 2b metric) without
/// per-operation instrumentation overhead in the hot loops.

#include "common/types.hpp"

namespace abc::xf {

/// Operation classes tracked for the Fig. 2 workload analysis.
struct OpCounts {
  u64 ntt_mul = 0;      // modular butterfly multiplications (I/NTT)
  u64 ntt_add = 0;      // modular butterfly add/sub (I/NTT)
  u64 fft_mul = 0;      // FP multiplications inside I/FFT butterflies
  u64 fft_add = 0;      // FP additions inside I/FFT butterflies
  u64 poly_mul = 0;     // element-wise (dyadic) modular multiplications
  u64 poly_add = 0;     // element-wise modular additions/subtractions
  u64 other = 0;        // RNS expand, CRT combine, rounding, sampling ops

  u64 ntt_total() const noexcept { return ntt_mul + ntt_add; }
  u64 fft_total() const noexcept { return fft_mul + fft_add; }
  u64 poly_total() const noexcept { return poly_mul + poly_add; }
  u64 total() const noexcept {
    return ntt_total() + fft_total() + poly_total() + other;
  }

  OpCounts& operator+=(const OpCounts& o) noexcept;
  OpCounts operator-(const OpCounts& o) const noexcept;
};

/// Thread-local accumulator the kernels add into.
OpCounts& op_counts() noexcept;

/// RAII scope capturing the ops executed between construction and delta().
class OpCounterScope {
 public:
  OpCounterScope() : start_(op_counts()) {}
  OpCounts delta() const noexcept { return op_counts() - start_; }

 private:
  OpCounts start_;
};

}  // namespace abc::xf
