#include "transform/softfloat.hpp"

#include <bit>

namespace abc::xf {

thread_local int FpPrecision::bits_ = 52;

double round_mantissa(double x, int bits) noexcept {
  if (bits >= 52 || x == 0.0 || !std::isfinite(x)) return x;
  u64 b = std::bit_cast<u64>(x);
  const int drop = 52 - bits;
  const u64 drop_mask = (u64{1} << drop) - 1;
  const u64 remainder = b & drop_mask;
  b &= ~drop_mask;
  const u64 half = u64{1} << (drop - 1);
  if (remainder > half ||
      (remainder == half && ((b >> drop) & 1) != 0)) {
    // Round up; carry may ripple into the exponent, which correctly models
    // rounding to the next binade (e.g. 0.999.. -> 1.0).
    b += u64{1} << drop;
  }
  return std::bit_cast<double>(b);
}

}  // namespace abc::xf
