#pragma once

/// @file dwt.hpp
/// Complex negacyclic discrete weighted transform (DWT): the "FFT" of CKKS
/// encoding/decoding. The butterflies and stage structure are *identical*
/// to the negacyclic NTT in ntt.hpp — only the twiddles change from
/// modular roots psi to complex roots zeta = exp(i*pi/N). This is
/// precisely the structural identity the paper's Reconfigurable Fourier
/// Engine exploits to serve both transforms from one datapath (Sec. III,
/// Fig. 3c).
///
/// The transform is templated on the scalar float type: `double` for exact
/// reference, `Rounded` (softfloat.hpp) for FP55-style reduced-mantissa
/// evaluation (Fig. 3c sweep).
///
/// Slot semantics (canonical embedding): after forward(), the evaluation
/// of the input polynomial at zeta^{3^i mod 2N} sits at position
/// index_map()[i]; decoding reads slots from those positions and encoding
/// writes conjugate-extended slot values into them before inverse().

#include <span>
#include <vector>

#include "common/bitops.hpp"
#include "common/check.hpp"
#include "transform/op_counter.hpp"
#include "transform/softfloat.hpp"

namespace abc::xf {

class CkksDwtPlan {
 public:
  /// N = 2^log_n is the polynomial degree; the transform runs on N complex
  /// points and the embedding exposes N/2 usable slots.
  explicit CkksDwtPlan(int log_n);

  int log_n() const noexcept { return log_n_; }
  std::size_t n() const noexcept { return n_; }
  std::size_t slots() const noexcept { return n_ / 2; }

  /// zeta^e with zeta = exp(i*pi/N); e taken mod 2N.
  Cx<double> zeta_pow(u64 e) const;

  /// Position map: index_map()[i] (i < slots) holds slot i after forward();
  /// index_map()[slots + i] holds its complex conjugate counterpart.
  std::span<const std::size_t> index_map() const noexcept { return index_map_; }

  /// In-place forward DWT (natural -> bit-reversed), Cooley-Tukey.
  template <class F>
  void forward(std::span<Cx<F>> a) const {
    ABC_CHECK_ARG(a.size() == n_, "DWT size mismatch");
    std::size_t t = n_;
    for (std::size_t m = 1; m < n_; m <<= 1) {
      t >>= 1;
      for (std::size_t i = 0; i < m; ++i) {
        const Cx<F> w = twiddle<F>(psi_rev_[m + i]);
        const std::size_t j1 = 2 * i * t;
        for (std::size_t j = j1; j < j1 + t; ++j) {
          const Cx<F> u = a[j];
          const Cx<F> v = a[j + t] * w;
          a[j] = u + v;
          a[j + t] = u - v;
        }
      }
    }
    count_butterflies();
  }

  /// In-place inverse DWT (bit-reversed -> natural), Gentleman-Sande,
  /// including the 1/N scaling.
  template <class F>
  void inverse(std::span<Cx<F>> a) const {
    ABC_CHECK_ARG(a.size() == n_, "DWT size mismatch");
    std::size_t t = 1;
    for (std::size_t m = n_ >> 1; m >= 1; m >>= 1) {
      for (std::size_t i = 0; i < m; ++i) {
        const Cx<F> w = twiddle<F>(inv_psi_rev_[m + i]);
        const std::size_t j1 = 2 * i * t;
        for (std::size_t j = j1; j < j1 + t; ++j) {
          const Cx<F> x = a[j];
          const Cx<F> y = a[j + t];
          a[j] = x + y;
          a[j + t] = (x - y) * w;
        }
      }
      t <<= 1;
    }
    const F scale = F(1.0 / static_cast<double>(n_));
    for (Cx<F>& z : a) {
      z.re = z.re * scale;
      z.im = z.im * scale;
    }
    count_butterflies();
    op_counts().fft_mul += 2 * n_;
  }

  /// Stage twiddle in table order, for the on-the-fly generator model:
  /// psi_rev(i) = zeta^{bit_reverse(i, log_n)}.
  Cx<double> psi_rev(std::size_t i) const { return psi_rev_.at(i); }

 private:
  template <class F>
  Cx<F> twiddle(const Cx<double>& w) const {
    // One rounding per component models the FP55 twiddle ROM / generator.
    return {F(w.re), F(w.im)};
  }

  void count_butterflies() const {
    // Butterfly = 1 complex mul (4 FP mul + 2 FP add) + 2 complex add/sub.
    const u64 bf = (n_ / 2) * static_cast<u64>(log_n_);
    op_counts().fft_mul += 4 * bf;
    op_counts().fft_add += 6 * bf;
  }

  int log_n_;
  std::size_t n_;
  std::vector<Cx<double>> psi_rev_;
  std::vector<Cx<double>> inv_psi_rev_;
  std::vector<std::size_t> index_map_;
};

/// O(N) reference evaluation of a real-coefficient polynomial at zeta^e
/// (Horner); pins down the canonical-embedding semantics in tests.
Cx<double> eval_poly_at_zeta_pow(std::span<const double> coeffs,
                                 const CkksDwtPlan& plan, u64 e);

}  // namespace abc::xf
