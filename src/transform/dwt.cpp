#include "transform/dwt.hpp"

#include <cmath>
#include <numbers>

namespace abc::xf {

CkksDwtPlan::CkksDwtPlan(int log_n)
    : log_n_(log_n), n_(std::size_t{1} << log_n) {
  ABC_CHECK_ARG(log_n >= 2 && log_n <= 20, "log_n out of range");
  psi_rev_.resize(n_);
  inv_psi_rev_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    const u64 e = bit_reverse(i, log_n_);
    const Cx<double> w = zeta_pow(e);
    psi_rev_[i] = w;
    inv_psi_rev_[i] = w.conj();  // |w| = 1 so conj == inverse
  }
  // Canonical-embedding index map (generator 3 modulo 2N): slot i reads the
  // transform position that evaluates at zeta^{3^i}; the conjugate value
  // zeta^{-3^i} sits at the paired position.
  index_map_.resize(n_);
  const u64 m = static_cast<u64>(n_) << 1;
  u64 pos = 1;
  const std::size_t slot_count = n_ / 2;
  for (std::size_t i = 0; i < slot_count; ++i) {
    const u64 index1 = (pos - 1) >> 1;
    const u64 index2 = (m - pos - 1) >> 1;
    index_map_[i] = bit_reverse(index1, log_n_);
    index_map_[slot_count + i] = bit_reverse(index2, log_n_);
    pos = (pos * 3) & (m - 1);
  }
}

Cx<double> CkksDwtPlan::zeta_pow(u64 e) const {
  const double angle = std::numbers::pi * static_cast<double>(e % (2 * n_)) /
                       static_cast<double>(n_);
  return {std::cos(angle), std::sin(angle)};
}

Cx<double> eval_poly_at_zeta_pow(std::span<const double> coeffs,
                                 const CkksDwtPlan& plan, u64 e) {
  const Cx<double> x = plan.zeta_pow(e);
  Cx<double> acc{0.0, 0.0};
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    acc = acc * x + Cx<double>{coeffs[i], 0.0};
  }
  return acc;
}

}  // namespace abc::xf
