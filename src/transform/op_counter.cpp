#include "transform/op_counter.hpp"

namespace abc::xf {

OpCounts& OpCounts::operator+=(const OpCounts& o) noexcept {
  ntt_mul += o.ntt_mul;
  ntt_add += o.ntt_add;
  fft_mul += o.fft_mul;
  fft_add += o.fft_add;
  poly_mul += o.poly_mul;
  poly_add += o.poly_add;
  other += o.other;
  return *this;
}

OpCounts OpCounts::operator-(const OpCounts& o) const noexcept {
  OpCounts r = *this;
  r.ntt_mul -= o.ntt_mul;
  r.ntt_add -= o.ntt_add;
  r.fft_mul -= o.fft_mul;
  r.fft_add -= o.fft_add;
  r.poly_mul -= o.poly_mul;
  r.poly_add -= o.poly_add;
  r.other -= o.other;
  return r;
}

OpCounts& op_counts() noexcept {
  thread_local OpCounts counts;
  return counts;
}

}  // namespace abc::xf
