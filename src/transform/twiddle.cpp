#include "transform/twiddle.hpp"

#include <cmath>

namespace abc::xf {

OtfModularTwiddleGen::OtfModularTwiddleGen(const NttTables& tables, int stage)
    : q_(tables.modulus()), count_(std::size_t{1} << stage) {
  ABC_CHECK_ARG(stage >= 0 && stage < tables.log_n(), "stage out of range");
  const u64 n = tables.n();
  const u64 m = u64{1} << stage;
  seed_ = q_.pow(tables.psi(), n / (2 * m));
  step_ = q_.pow(tables.psi(), n / m);
  current_ = seed_;
}

u64 OtfModularTwiddleGen::next() {
  ABC_CHECK_STATE(emitted_ < count_, "stage exhausted");
  const u64 out = current_;
  current_ = q_.mul(current_, step_);
  ++emitted_;
  return out;
}

bool OtfModularTwiddleGen::matches_tables(const NttTables& tables, int stage) {
  OtfModularTwiddleGen gen(tables, stage);
  const std::size_t m = std::size_t{1} << stage;
  std::vector<u64> generated(m);
  for (std::size_t j = 0; j < m; ++j) generated[j] = gen.next();
  for (std::size_t i = 0; i < m; ++i) {
    // Table order is bit-reversed generation order.
    const std::size_t j = stage == 0 ? 0 : bit_reverse(i, stage);
    if (tables.psi_rev(m + i) != generated[j]) return false;
  }
  return true;
}

OtfComplexTwiddleGen::OtfComplexTwiddleGen(const CkksDwtPlan& plan, int stage,
                                           std::size_t reseed_interval)
    : plan_(plan),
      stage_(stage),
      reseed_interval_(reseed_interval),
      count_(std::size_t{1} << stage) {
  ABC_CHECK_ARG(stage >= 0 && stage < plan.log_n(), "stage out of range");
  ABC_CHECK_ARG(reseed_interval >= 1, "reseed interval must be >= 1");
  const u64 n = plan.n();
  const u64 m = u64{1} << stage;
  seed_exponent_ = n / (2 * m);
  step_exponent_ = n / m;
  current_ = plan.zeta_pow(seed_exponent_);
  step_value_ = plan.zeta_pow(step_exponent_);
}

Cx<double> OtfComplexTwiddleGen::next() {
  ABC_CHECK_STATE(emitted_ < count_, "stage exhausted");
  if (emitted_ != 0 && emitted_ % reseed_interval_ == 0) {
    // Exact value re-read from seed memory.
    current_ = plan_.zeta_pow(seed_exponent_ +
                              static_cast<u64>(emitted_) * step_exponent_);
    ++reseeds_;
  }
  const Cx<double> out = current_;
  current_ = current_ * step_value_;
  ++emitted_;
  return out;
}

double OtfComplexTwiddleGen::max_error_vs_exact(const CkksDwtPlan& plan,
                                                int stage,
                                                std::size_t reseed_interval) {
  OtfComplexTwiddleGen gen(plan, stage, reseed_interval);
  double max_err = 0.0;
  const u64 n = plan.n();
  const u64 m = u64{1} << stage;
  for (std::size_t j = 0; j < gen.count(); ++j) {
    const Cx<double> approx = gen.next();
    const Cx<double> exact =
        plan.zeta_pow(n / (2 * m) + static_cast<u64>(j) * (n / m));
    max_err = std::max(max_err, cx_abs(approx - exact));
  }
  return max_err;
}

double TwiddleSeedMemoryModel::ntt_seed_bytes() const {
  // (seed, step) per stage, forward and inverse sets, per prime.
  const double values =
      2.0 * static_cast<double>(log_n) * 2.0 * static_cast<double>(num_primes);
  return values * int_bits / 8.0;
}

double TwiddleSeedMemoryModel::fft_seed_bytes() const {
  double values = 0.0;
  for (int s = 0; s < log_n; ++s) {
    const double m = static_cast<double>(u64{1} << s);
    const double seeds =
        std::ceil(m / static_cast<double>(reseed_interval));
    values += seeds + 1.0;  // reseed points + one step value
  }
  return values * (2.0 * fp_bits) / 8.0;
}

double TwiddleSeedMemoryModel::total_seed_bytes() const {
  return ntt_seed_bytes() + fft_seed_bytes();
}

double TwiddleSeedMemoryModel::full_table_bytes() const {
  const double n = static_cast<double>(u64{1} << log_n);
  const double ntt_table = n * num_primes * int_bits / 8.0;
  const double fft_table = n * (2.0 * fp_bits) / 8.0;
  return ntt_table + fft_table;
}

}  // namespace abc::xf
