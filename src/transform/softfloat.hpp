#pragma once

/// @file softfloat.hpp
/// Mantissa-rounded floating point, emulating the paper's custom FP55
/// format (1 sign + 11 exponent + 43 mantissa bits, Fig. 3c). A Rounded
/// value behaves like a double whose mantissa is rounded to the current
/// precision (round-to-nearest-even) after *every* arithmetic operation,
/// exactly what a narrower hardware FP datapath produces. The precision is
/// a thread-local setting so the same templated kernels can be swept over
/// mantissa widths (bench_fig3_precision).

#include <cmath>

#include "common/check.hpp"
#include "common/types.hpp"

namespace abc::xf {

/// Thread-local mantissa width (fraction bits, excluding the hidden bit).
/// 52 means native double behaviour.
class FpPrecision {
 public:
  static int mantissa_bits() noexcept { return bits_; }

  /// RAII scope overriding the precision.
  explicit FpPrecision(int bits) : saved_(bits_) {
    ABC_CHECK_ARG(bits >= 1 && bits <= 52, "mantissa bits must be in [1,52]");
    bits_ = bits;
  }
  ~FpPrecision() { bits_ = saved_; }
  FpPrecision(const FpPrecision&) = delete;
  FpPrecision& operator=(const FpPrecision&) = delete;

 private:
  static thread_local int bits_;
  int saved_;
};

/// Round a double's mantissa to @p bits fraction bits, nearest-even.
double round_mantissa(double x, int bits) noexcept;

/// Double wrapper that rounds after each operation.
struct Rounded {
  double v = 0.0;

  Rounded() = default;
  // Implicit conversion from double is intentional: twiddle tables are
  // stored as doubles and get rounded on first use, modelling FP55 ROM.
  Rounded(double value) : v(round_mantissa(value, FpPrecision::mantissa_bits())) {}

  explicit operator double() const noexcept { return v; }

  friend Rounded operator+(Rounded a, Rounded b) { return {a.v + b.v}; }
  friend Rounded operator-(Rounded a, Rounded b) { return {a.v - b.v}; }
  friend Rounded operator*(Rounded a, Rounded b) { return {a.v * b.v}; }
  friend Rounded operator/(Rounded a, Rounded b) { return {a.v / b.v}; }
  Rounded operator-() const { return Rounded{-v}; }
  Rounded& operator+=(Rounded o) { return *this = *this + o; }
  Rounded& operator-=(Rounded o) { return *this = *this - o; }
  Rounded& operator*=(Rounded o) { return *this = *this * o; }
};

/// Complex number over any float-like type (double or Rounded). Each
/// primitive FP operation maps to one hardware FP op, so rounding applies
/// at the same granularity the datapath would round.
template <class F>
struct Cx {
  F re{};
  F im{};

  friend Cx operator+(const Cx& a, const Cx& b) {
    return {a.re + b.re, a.im + b.im};
  }
  friend Cx operator-(const Cx& a, const Cx& b) {
    return {a.re - b.re, a.im - b.im};
  }
  friend Cx operator*(const Cx& a, const Cx& b) {
    // 4 multiplications + 2 additions: the paper's complex FP multiplier
    // built from four reconfigured modular multipliers (eq. 12).
    return {a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re};
  }
  Cx conj() const { return {re, -im}; }
};

/// Magnitude helpers usable for both float types.
inline double as_double(double x) noexcept { return x; }
inline double as_double(const Rounded& x) noexcept { return x.v; }

template <class F>
double cx_abs(const Cx<F>& z) noexcept {
  return std::hypot(as_double(z.re), as_double(z.im));
}

}  // namespace abc::xf
