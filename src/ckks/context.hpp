#pragma once

/// @file context.hpp
/// Immutable CKKS context: validated parameters, the RNS prime chain
/// (hardware-friendly primes from the paper's selection methodology), NTT
/// tables per limb, and the canonical-embedding DWT plan.

#include <atomic>
#include <memory>
#include <vector>

#include "ckks/params.hpp"
#include "poly/rns_poly.hpp"
#include "transform/dwt.hpp"

namespace abc::ckks {

class CkksContext {
 public:
  /// Validates parameters, selects the prime chain and builds all tables.
  /// Polynomial work executes through @p backend (the process-wide
  /// ScalarBackend when null) — pass a ThreadPoolBackend to parallelize
  /// every limb-wise operation under this context.
  static std::shared_ptr<const CkksContext> create(
      const CkksParams& params,
      std::shared_ptr<backend::PolyBackend> backend = nullptr);

  const CkksParams& params() const noexcept { return params_; }
  const std::vector<u64>& primes() const noexcept { return primes_; }
  std::shared_ptr<const poly::PolyContext> poly_context() const noexcept {
    return poly_ctx_;
  }
  backend::PolyBackend& backend() const noexcept {
    return poly_ctx_->backend();
  }
  const xf::CkksDwtPlan& dwt() const noexcept { return dwt_; }

  std::size_t n() const noexcept { return params_.n(); }
  std::size_t slots() const noexcept { return params_.slots(); }
  std::size_t max_limbs() const noexcept { return params_.num_limbs; }

  /// Fresh polynomial helper.
  poly::RnsPoly make_poly(std::size_t limbs, poly::Domain domain) const {
    return poly::RnsPoly(poly_ctx_, limbs, domain);
  }

  /// Reserves @p count consecutive values from the context-wide PRNG
  /// stream-id counter. Every encryptor and batch engine bound to this
  /// context draws its counter blocks here, so two engines sharing a
  /// context can never hand out the same id — per-instance counters would
  /// both start at 0 and replay each other's keystreams (see
  /// encryptor.hpp for why that leaks). The counter is per-context, not
  /// process-global, so a fresh context replays the same deterministic id
  /// sequence — the property every thread-count-invariance test relies on.
  /// Uniqueness across *context lifetimes* (process restarts re-deriving
  /// the same seed) remains the caller's responsibility.
  u64 reserve_stream_ids(u64 count) const noexcept {
    return stream_counter_.fetch_add(count, std::memory_order_relaxed);
  }

  /// Reserves @p count consecutive secret-key ids. Kept separate from the
  /// stream counter because secret ids live on the other axis — they salt
  /// the upper bits of every derived stream id and have a 16-bit budget
  /// (ksk_base_stream_id) — so encryption traffic must not burn through
  /// them. Context-wide for the same reason as the stream counter: two
  /// KeyGenerators (or ClientSessions) sharing a context draw *distinct*
  /// secrets instead of silently regenerating the same one for what the
  /// caller intends to be different users.
  u64 reserve_secret_ids(u64 count) const noexcept {
    return secret_counter_.fetch_add(count, std::memory_order_relaxed);
  }

  CkksContext(const CkksParams& params,
              std::shared_ptr<backend::PolyBackend> backend);  // use create()

 private:
  CkksParams params_;
  std::vector<u64> primes_;
  std::shared_ptr<const poly::PolyContext> poly_ctx_;
  xf::CkksDwtPlan dwt_;
  mutable std::atomic<u64> stream_counter_{0};
  mutable std::atomic<u64> secret_counter_{0};
};

}  // namespace abc::ckks
