#pragma once

/// @file context.hpp
/// Immutable CKKS context: validated parameters, the RNS prime chain
/// (hardware-friendly primes from the paper's selection methodology), NTT
/// tables per limb, and the canonical-embedding DWT plan.

#include <memory>
#include <vector>

#include "ckks/params.hpp"
#include "poly/rns_poly.hpp"
#include "transform/dwt.hpp"

namespace abc::ckks {

class CkksContext {
 public:
  /// Validates parameters, selects the prime chain and builds all tables.
  /// Polynomial work executes through @p backend (the process-wide
  /// ScalarBackend when null) — pass a ThreadPoolBackend to parallelize
  /// every limb-wise operation under this context.
  static std::shared_ptr<const CkksContext> create(
      const CkksParams& params,
      std::shared_ptr<backend::PolyBackend> backend = nullptr);

  const CkksParams& params() const noexcept { return params_; }
  const std::vector<u64>& primes() const noexcept { return primes_; }
  std::shared_ptr<const poly::PolyContext> poly_context() const noexcept {
    return poly_ctx_;
  }
  backend::PolyBackend& backend() const noexcept {
    return poly_ctx_->backend();
  }
  const xf::CkksDwtPlan& dwt() const noexcept { return dwt_; }

  std::size_t n() const noexcept { return params_.n(); }
  std::size_t slots() const noexcept { return params_.slots(); }
  std::size_t max_limbs() const noexcept { return params_.num_limbs; }

  /// Fresh polynomial helper.
  poly::RnsPoly make_poly(std::size_t limbs, poly::Domain domain) const {
    return poly::RnsPoly(poly_ctx_, limbs, domain);
  }

  CkksContext(const CkksParams& params,
              std::shared_ptr<backend::PolyBackend> backend);  // use create()

 private:
  CkksParams params_;
  std::vector<u64> primes_;
  std::shared_ptr<const poly::PolyContext> poly_ctx_;
  xf::CkksDwtPlan dwt_;
};

}  // namespace abc::ckks
