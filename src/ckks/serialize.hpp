#pragma once

/// @file serialize.hpp
/// Binary serialization of ciphertexts and keys with residues packed at the
/// datapath width (44 bits by default) — the same packing the accelerator
/// streams to LPDDR5, so a serialized object's size equals the DRAM
/// traffic the simulator accounts for.
///
/// Seed-compressed forms ship only what a holder of the context seed cannot
/// regenerate: a ciphertext drops its uniform c1 in favor of the PRNG
/// stream id, a public key drops `a`, and a key-switching key drops every
/// per-digit a_d in favor of one base stream id. At bootstrappable
/// parameter sizes this halves key upload traffic (see KeySizeReport),
/// which is exactly why the paper's client generates keys next to the
/// on-chip PRNG.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "ckks/ciphertext.hpp"
#include "ckks/context.hpp"
#include "ckks/keygen.hpp"

namespace abc::ckks {

/// Little-endian bit-level packer for fixed-width words.
///
/// Contract:
///  * append() accepts widths in [1, 57] and checks that the value fits
///    the width. The 57-bit cap is structural: up to 7 bits can be pending
///    from earlier appends, and pending + width must fit the 64-bit
///    staging word (7 + 57 = 64).
///  * Bits are emitted LSB-first; one word may straddle any number of byte
///    boundaries (a 44-bit word starting at bit offset 7 spans 7 bytes).
///  * finish() zero-fills the high bits of a partial final byte, returns
///    the buffer, and leaves the packer empty and reusable.
class BitPacker {
 public:
  void append(u64 value, int bits);
  /// Flushes the partial byte (high bits zero) and returns the buffer.
  std::vector<u8> finish();

 private:
  std::vector<u8> bytes_;
  u64 pending_ = 0;
  int pending_bits_ = 0;
};

/// Mirror of BitPacker: LSB-first fixed-width reads over a byte span.
///
/// Contract:
///  * read() accepts widths in [1, 57], matching the packer, and assembles
///    words across byte boundaries.
///  * Zero-padding bits inside the final partial byte read back as zeros;
///    only reads that need a byte past the end of the span throw
///    InvalidArgument ("truncated"). A reader that follows the writer's
///    width sequence therefore never observes padding.
///  * The span is borrowed, not copied: it must outlive the unpacker.
class BitUnpacker {
 public:
  explicit BitUnpacker(std::span<const u8> bytes) : bytes_(bytes) {}
  u64 read(int bits);
  std::size_t bits_consumed() const noexcept { return bit_pos_; }

 private:
  std::span<const u8> bytes_;
  std::size_t bit_pos_ = 0;
};

/// Serializes a ciphertext at the given packed coefficient width. Throws
/// if any residue does not fit the width.
std::vector<u8> serialize_ciphertext(const Ciphertext& ct,
                                     int bits_per_coeff = 44);

/// Reconstructs a ciphertext; @p ctx must match the writer's parameters.
/// A compressed c1 is regenerated from the context seed and stream id.
Ciphertext deserialize_ciphertext(
    const std::shared_ptr<const CkksContext>& ctx,
    std::span<const u8> bytes);

/// Serializes a batch of ciphertexts into one upload/download envelope
/// ("ABCB" magic): a count header followed by length-prefixed
/// serialize_ciphertext frames, so items may mix levels, component counts
/// and compression. This is the wire unit a ClientSession ships per
/// request and a server returns per response — one envelope per round
/// trip instead of one transport message per ciphertext.
std::vector<u8> serialize_ciphertext_batch(std::span<const Ciphertext> cts,
                                           int bits_per_coeff = 44);

/// Reconstructs a batch envelope in input order. Throws InvalidArgument
/// on a bad magic, a truncated frame, or trailing bytes past the last
/// frame (a length-prefix stream that does not add up is corrupt).
std::vector<Ciphertext> deserialize_ciphertext_batch(
    const std::shared_ptr<const CkksContext>& ctx, std::span<const u8> bytes);

// -- serving-daemon framing -------------------------------------------------

/// One request as it crosses a server transport ("ABCQ" magic): routing
/// header (tenant, request id, op byte + argument) plus an opaque payload
/// — an "ABCB" ciphertext-batch envelope for evaluate ops, an "ABCP" key
/// bundle for registration. The op byte's meaning belongs to the server
/// layer (src/server/server.hpp); this codec only carries it.
struct RequestFrame {
  u64 tenant = 0;
  u64 request_id = 0;
  u8 op = 0;
  i64 op_arg = 0;
  std::vector<u8> payload;
};

/// The matching response ("ABCS" magic): the echoed request id, a status
/// byte (server-layer meaning), a bounded human-readable error string
/// (empty on success) and the opaque response payload.
struct ResponseFrame {
  u64 request_id = 0;
  u8 status = 0;
  std::string error;
  std::vector<u8> payload;
};

std::vector<u8> serialize_request_frame(const RequestFrame& req);
std::vector<u8> serialize_response_frame(const ResponseFrame& resp);

/// Frame readers for untrusted bytes: length fields are validated against
/// the actual remaining span *before* any allocation (a forged length is
/// an InvalidArgument, never an attacker-sized reserve), and trailing
/// bytes past the payload are rejected.
RequestFrame deserialize_request_frame(std::span<const u8> bytes);
ResponseFrame deserialize_response_frame(std::span<const u8> bytes);

/// The serialized key set one tenant uploads at registration ("ABCP"
/// magic): public key + relinearization key + N Galois keys, each a
/// length-prefixed "ABCK" blob, mirroring engine::KeyBundle field by
/// field. Same hardening contract as the other envelopes.
struct KeyBundleFrames {
  std::vector<u8> public_key;
  std::vector<u8> relin_key;
  std::vector<std::vector<u8>> galois_keys;
};

std::vector<u8> serialize_key_bundle(const KeyBundleFrames& bundle);
KeyBundleFrames deserialize_key_bundle(std::span<const u8> bytes);

// -- key material -----------------------------------------------------------

/// Serializes a key-switching key. Compressed form ships the b halves plus
/// the base stream id; the a halves are regenerated on load from the
/// kind's salted stream domain at (base + digit). Before dropping them,
/// the writer regenerates every a_d from @p ctx and verifies it matches —
/// a key whose uniform halves did not come from this context's seed (or
/// whose stream metadata was tampered with) throws InvalidArgument
/// instead of silently round-tripping to a different key. Pass
/// compressed = false to materialize both halves (a reader without the
/// seed).
std::vector<u8> serialize_key_switch_key(
    const std::shared_ptr<const CkksContext>& ctx, const KeySwitchKey& key,
    int bits_per_coeff = 44, bool compressed = true);

KeySwitchKey deserialize_key_switch_key(
    const std::shared_ptr<const CkksContext>& ctx, std::span<const u8> bytes);

// -- server-resident compressed keys ----------------------------------------

/// A key-switching key in the form the serving daemon keeps *resident* per
/// tenant: bit-packed b halves at the prime width plus the PRNG stream
/// metadata the a halves regenerate from. Two storage savings over the
/// expanded in-memory form (2 halves x L digits x L limbs x n x 8 bytes):
///
///  * the uniform a halves are dropped entirely when they prove
///    regenerable from (seed, salted domain, base_stream_id + digit) —
///    the same proof seed-compressed serialization performs; keys whose a
///    halves are foreign fall back to packing them explicitly, so
///    registration never rejects a key the wire formats accept;
///  * the *last* gadget digit is dropped outright: hybrid key switching
///    reserves the last prime P as the special modulus, so switchable
///    ciphertexts sit at level <= L-1 and the accumulation only ever
///    reads digits 0..level-1 <= L-2 (KeySwitcher::accumulate). A digit
///    the server cannot reach is bytes it need not hold.
///
/// Packing at the prime width (max bit width over the chain, 36 for the
/// default parameters) is lossless — residues are < q — so expansion
/// reproduces the deserialized key bit for bit on every digit it keeps,
/// which is what makes cached evaluation bit-identical to eager.
struct CompressedKeySwitchKey {
  KeySwitchKey::Kind kind = KeySwitchKey::Kind::kRelin;
  u32 galois_elt = 0;
  u64 base_stream_id = 0;
  u16 limbs = 0;          // full prime-chain length L (limbs per digit)
  u16 stored_digits = 0;  // digits kept: L - 1 (all, when L == 1)
  u8 bits_per_coeff = 0;  // packing width = the chain's max prime width
  std::vector<u8> packed_b;  // digit-major, limb-major bit-packed b halves
  std::vector<u8> packed_a;  // empty when a is seed-regenerable

  /// Bytes this record keeps resident (the packed payloads).
  std::size_t resident_bytes() const noexcept {
    return packed_b.size() + packed_a.size();
  }

  /// Bytes the eagerly expanded key held in memory (both halves, all L
  /// digits, full limbs, 8-byte words) — the baseline the resident-memory
  /// reduction is measured against.
  std::size_t expanded_bytes(std::size_t n) const noexcept {
    return 2 * static_cast<std::size_t>(limbs) * limbs * n * sizeof(u64);
  }
};

/// Builds the resident record from an expanded key: packs the kept b
/// digits at the prime width and proves each kept a digit regenerable
/// (falling back to packing a when not). Throws InvalidArgument on a
/// malformed key (mismatched halves, digits != limbs).
CompressedKeySwitchKey compress_key_switch_key(
    const std::shared_ptr<const CkksContext>& ctx, const KeySwitchKey& key);

/// Expands a resident record back to an evaluation-ready key: unpacks b,
/// regenerates (or unpacks) a. The result carries stored_digits gadget
/// digits — enough for every switchable level — and is bit-identical on
/// those digits to the key compress_key_switch_key consumed.
KeySwitchKey expand_key_switch_key(
    const std::shared_ptr<const CkksContext>& ctx,
    const CompressedKeySwitchKey& key);

/// Serializes a public key; compressed form ships b + stream id only,
/// with the same regenerability verification as the switching keys.
std::vector<u8> serialize_public_key(
    const std::shared_ptr<const CkksContext>& ctx, const PublicKey& pk,
    int bits_per_coeff = 44, bool compressed = true);

PublicKey deserialize_public_key(
    const std::shared_ptr<const CkksContext>& ctx, std::span<const u8> bytes);

/// Wire sizes of a key in both forms — the client-upload story at a
/// glance. Computed analytically from the packing layout; exact (tested
/// against the byte streams the serializers emit).
struct KeySizeReport {
  std::size_t compressed_bytes = 0;
  std::size_t full_bytes = 0;
  double ratio() const {
    return compressed_bytes == 0
               ? 0.0
               : static_cast<double>(full_bytes) /
                     static_cast<double>(compressed_bytes);
  }
};

KeySizeReport key_switch_key_sizes(const KeySwitchKey& key,
                                   int bits_per_coeff = 44);
KeySizeReport public_key_sizes(const PublicKey& pk, int bits_per_coeff = 44);

}  // namespace abc::ckks
