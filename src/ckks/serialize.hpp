#pragma once

/// @file serialize.hpp
/// Binary serialization of ciphertexts with coefficients packed at the
/// datapath width (44 bits by default) — the same packing the accelerator
/// streams to LPDDR5, so a serialized ciphertext's size equals the DRAM
/// traffic the simulator accounts for. Seed-compressed ciphertexts ship
/// only the stream id for c1 and regenerate it on load.

#include <cstddef>
#include <vector>

#include "ckks/ciphertext.hpp"
#include "ckks/context.hpp"

namespace abc::ckks {

/// Little-endian bit-level packer for fixed-width words.
class BitPacker {
 public:
  void append(u64 value, int bits);
  /// Flushes the partial byte and returns the buffer.
  std::vector<u8> finish();

 private:
  std::vector<u8> bytes_;
  u64 pending_ = 0;
  int pending_bits_ = 0;
};

class BitUnpacker {
 public:
  explicit BitUnpacker(std::span<const u8> bytes) : bytes_(bytes) {}
  u64 read(int bits);
  std::size_t bits_consumed() const noexcept { return bit_pos_; }

 private:
  std::span<const u8> bytes_;
  std::size_t bit_pos_ = 0;
};

/// Serializes a ciphertext at the given packed coefficient width. Throws
/// if any residue does not fit the width.
std::vector<u8> serialize_ciphertext(const Ciphertext& ct,
                                     int bits_per_coeff = 44);

/// Reconstructs a ciphertext; @p ctx must match the writer's parameters.
/// A compressed c1 is regenerated from the context seed and stream id.
Ciphertext deserialize_ciphertext(
    const std::shared_ptr<const CkksContext>& ctx,
    std::span<const u8> bytes);

}  // namespace abc::ckks
