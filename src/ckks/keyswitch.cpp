#include "ckks/keyswitch.hpp"

#include <algorithm>

#include "backend/poly_backend.hpp"
#include "common/bitops.hpp"
#include "common/failpoint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simd/dyadic_kernels.hpp"
#include "transform/op_counter.hpp"

namespace abc::ckks {

namespace {

std::span<u64> slice(std::vector<u64>& buf, std::size_t index, std::size_t n) {
  return std::span<u64>(buf).subspan(index * n, n);
}

// Leaked (like the global registry) so a key switch during static
// teardown still has live handles.
struct KsMetrics {
  obs::Counter decompositions =
      obs::registry().counter(obs::catalog::kKeySwitchDecompositions);
  obs::Counter accumulations =
      obs::registry().counter(obs::catalog::kKeySwitchAccumulations);
  obs::Counter hoist_reuses =
      obs::registry().counter(obs::catalog::kKeySwitchHoistReuses);
};

KsMetrics& ks_metrics() {
  static KsMetrics* m = new KsMetrics;
  return *m;
}

}  // namespace

void build_galois_eval_table(int log_n, u32 galois_elt,
                             std::vector<u32>& table) {
  const std::size_t n = std::size_t{1} << log_n;
  const u64 mask = 2 * n - 1;  // indices mod 2N
  ABC_CHECK_ARG((galois_elt & 1u) != 0 && galois_elt < 2 * n,
                "galois element must be odd and < 2N");
  table.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    // Position p evaluates at psi^{2*bitrev(p)+1}; sigma_g sends that
    // point to psi^{g*(2*bitrev(p)+1)}, whose position is recovered by
    // inverting the same indexing.
    const u64 point = (2 * bit_reverse(p, log_n) + 1) * galois_elt & mask;
    table[p] = static_cast<u32>(bit_reverse((point - 1) >> 1, log_n));
  }
}

void apply_galois_eval(const poly::RnsPoly& src, std::span<const u32> table,
                       poly::RnsPoly& dst) {
  ABC_CHECK_ARG(src.domain() == poly::Domain::kEval,
                "eval-domain automorphism requires evaluation form");
  ABC_CHECK_ARG(table.size() == src.n(), "galois table size mismatch");
  ABC_CHECK_STATE(&src != &dst, "eval automorphism cannot run in place");
  const poly::PolyContext& pctx = src.context();
  dst.reset(src.limbs(), poly::Domain::kEval);
  pctx.backend().parallel_for(src.limbs(), [&](std::size_t l, std::size_t) {
    const std::span<const u64> s = src.limb(l);
    const std::span<u64> d = dst.limb(l);
    for (std::size_t i = 0; i < d.size(); ++i) d[i] = s[table[i]];
    xf::op_counts().other += d.size();
  });
}

KeySwitcher::KeySwitcher(std::shared_ptr<const CkksContext> ctx)
    : ctx_(std::move(ctx)) {
  ABC_CHECK_ARG(ctx_ != nullptr, "null context");
  // A 1-limb chain has no spare prime: the switcher constructs (so an
  // Evaluator still works for add/mul) but every decompose() call throws.
  const poly::PolyContext& pctx = *ctx_->poly_context();
  special_ = ctx_->max_limbs() - 1;
  const rns::Modulus& p = pctx.modulus(special_);
  const u64 half = p.value() >> 1;
  p_mod_.reserve(special_);
  p_inv_.reserve(special_);
  half_mod_.reserve(special_);
  for (std::size_t j = 0; j < special_; ++j) {
    const rns::Modulus& q = pctx.modulus(j);
    const u64 p_mod_q = q.reduce(p.value());
    p_mod_.push_back(rns::ShoupMul::make(p_mod_q, q));
    p_inv_.push_back(rns::ShoupMul::make(q.inv(p_mod_q), q));
    half_mod_.push_back(q.reduce(half));
  }
}

void KeySwitcher::decompose(const poly::RnsPoly& c_coeff,
                            KeySwitchScratch& scratch) const {
  ABC_CHECK_ARG(c_coeff.domain() == poly::Domain::kCoeff,
                "decompose expects a coefficient-domain polynomial");
  const std::size_t level = c_coeff.limbs();
  ABC_CHECK_ARG(level <= max_switchable_limbs(),
                "the last RNS prime is reserved as the key-switch special "
                "modulus; rescale or mod-switch the ciphertext first");
  const poly::PolyContext& pctx = *ctx_->poly_context();
  const std::size_t n = ctx_->n();
  const std::size_t ext = level + 1;  // target limbs: {0..level-1, P}

  scratch.level = level;
  // Scratch acquisition is the allocation point of the whole switch; a
  // fault here models memory pressure before any digit is written.
  ABC_FAILPOINT(fail::points::kKeySwitchScratch);
  scratch.w.resize(level * n);
  scratch.digits.resize(level * ext * n);

  // Scaled digits w_d = (P * c) mod q_d, one limb each.
  backend::PolyBackend& be = pctx.backend();
  be.parallel_for(level, [&](std::size_t d, std::size_t) {
    const rns::Modulus& q = pctx.modulus(d);
    const rns::ShoupMul& pm = p_mod_[d];
    const std::span<const u64> src = c_coeff.limb(d);
    const std::span<u64> w = slice(scratch.w, d, n);
    for (std::size_t i = 0; i < n; ++i) w[i] = pm.mul(src[i], q.value());
    xf::op_counts().poly_mul += n;
  });

  // RNS expansion + forward NTT of every (digit, target-limb) pair — the
  // flat work list that dominates key switching. Each pair owns its output
  // slot, so any partitioning is race-free and bit-deterministic.
  be.parallel_for(level * ext, [&](std::size_t item, std::size_t) {
    const std::size_t d = item / ext;
    const std::size_t j = item % ext;
    const std::size_t jidx = j < level ? j : special_;
    const rns::Modulus& q = pctx.modulus(jidx);
    const std::span<const u64> w = slice(scratch.w, d, n);
    const std::span<u64> out = slice(scratch.digits, item, n);
    if (jidx == d) {
      std::copy(w.begin(), w.end(), out.begin());
    } else {
      for (std::size_t i = 0; i < n; ++i) out[i] = q.reduce(w[i]);
    }
    xf::op_counts().other += n;
    pctx.ntt(jidx).forward(out);
  });

  scratch.staged_consumed = false;
  ks_metrics().decompositions.inc();
  if (obs::Trace* t = obs::active_trace()) t->ks_decompositions += 1;
}

void KeySwitcher::accumulate(const KeySwitchKey& key,
                             std::span<const u32> eval_perm,
                             KeySwitchScratch& scratch, poly::RnsPoly& out0,
                             poly::RnsPoly& out1) const {
  const std::size_t level = scratch.level;
  const std::size_t n = ctx_->n();
  const std::size_t ext = level + 1;
  ABC_CHECK_ARG(level >= 1 && scratch.digits.size() == level * ext * n,
                "no decomposition staged in this scratch");
  ABC_CHECK_ARG(key.digits() >= level, "key has too few gadget digits");
  ABC_CHECK_ARG(key.b[0].limbs() == ctx_->max_limbs(),
                "key digits must span the full prime chain");
  ABC_CHECK_ARG(eval_perm.empty() || eval_perm.size() == n,
                "galois table size mismatch");

  const poly::PolyContext& pctx = *ctx_->poly_context();
  backend::PolyBackend& be = pctx.backend();
  out0.reset(level, poly::Domain::kEval);
  out1.reset(level, poly::Domain::kEval);
  scratch.acc_p0.resize(n);
  scratch.acc_p1.resize(n);
  scratch.tmp.resize(be.workers() * n);

  // Inner-product accumulation, partitioned per target limb: limb j of
  // both outputs sums digit * key over all digits, so no two workers ever
  // touch one accumulator and digit order is fixed (bit-determinism). The
  // fused kernel folds the eval-domain permutation gather and both
  // accumulations into one pass over the digit — no scratch staging.
  const u32* perm = eval_perm.empty() ? nullptr : eval_perm.data();
  be.parallel_for(ext, [&](std::size_t j, std::size_t) {
    const std::size_t jidx = j < level ? j : special_;
    const simd::DyadicModulus& dm = pctx.dyadic(jidx);
    u64* acc0 = j < level ? out0.limb(j).data() : scratch.acc_p0.data();
    u64* acc1 = j < level ? out1.limb(j).data() : scratch.acc_p1.data();
    std::fill(acc0, acc0 + n, 0);
    std::fill(acc1, acc1 + n, 0);
    for (std::size_t d = 0; d < level; ++d) {
      const u64* digit = slice(scratch.digits, d * ext + j, n).data();
      simd::dyadic_fma_accumulate(dm, acc0, acc1, digit,
                                  key.b[d].limb(jidx).data(),
                                  key.a[d].limb(jidx).data(), perm, n);
      xf::op_counts().poly_mul += 2 * n;
      xf::op_counts().poly_add += 2 * n;
    }
  });

  // Mod-down: divide by P with round-to-nearest (the rescale_poly trick —
  // bias the P-limb by floor(P/2) so the floor division rounds).
  const rns::Modulus& p = pctx.modulus(special_);
  const u64 half = p.value() >> 1;
  u64* const acc_p[2] = {scratch.acc_p0.data(), scratch.acc_p1.data()};
  be.parallel_for(2, [&](std::size_t c, std::size_t) {
    const std::span<u64> r(acc_p[c], n);
    pctx.ntt(special_).inverse(r);
    for (std::size_t i = 0; i < n; ++i) r[i] = p.add(r[i], half);
    xf::op_counts().poly_add += n;
  });
  poly::RnsPoly* const outs[2] = {&out0, &out1};
  be.parallel_for(2 * level, [&](std::size_t item, std::size_t worker) {
    const std::size_t c = item / level;
    const std::size_t j = item % level;
    const rns::Modulus& q = pctx.modulus(j);
    const std::span<const u64> r(acc_p[c], n);
    const std::span<u64> tmp = slice(scratch.tmp, worker, n);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = q.sub(q.reduce(r[i]), half_mod_[j]);
    }
    pctx.ntt(j).forward(tmp);
    const std::span<u64> dst = outs[c]->limb(j);
    const simd::DyadicModulus& dm = pctx.dyadic(j);
    // Fused (dst - tmp) * P^{-1}: one pass instead of sub + mul_scalar.
    simd::dyadic_sub_mul_scalar(dm, dst.data(), tmp.data(), n,
                                p_inv_[j].operand, p_inv_[j].quotient);
    xf::op_counts().poly_mul += n;
    xf::op_counts().poly_add += 2 * n;
  });

  // A second accumulation against digits this scratch already consumed is
  // a hoisted reuse — the rotate_many amortization the roadmap banks on.
  ks_metrics().accumulations.inc();
  if (scratch.staged_consumed) ks_metrics().hoist_reuses.inc();
  if (obs::Trace* t = obs::active_trace()) {
    t->ks_accumulations += 1;
    if (scratch.staged_consumed) t->ks_hoist_reuses += 1;
  }
  scratch.staged_consumed = true;
}

void KeySwitcher::switch_key(const poly::RnsPoly& c_coeff,
                             const KeySwitchKey& key,
                             KeySwitchScratch& scratch, poly::RnsPoly& out0,
                             poly::RnsPoly& out1) const {
  decompose(c_coeff, scratch);
  accumulate(key, {}, scratch, out0, out1);
}

}  // namespace abc::ckks
