#pragma once

/// @file params.hpp
/// CKKS client-side parameter sets. The paper's evaluation configuration
/// (Sec. V-B): polynomial degree N = 2^16, 36-bit primes following the
/// double-scale technique (12 levels doubled to 24 RNS limbs), fresh
/// ciphertexts at 24 limbs, server-returned ciphertexts at 2 limbs,
/// 128-bit security.

#include <array>
#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace abc::ckks {

struct CkksParams {
  int log_n = 16;              // polynomial degree N = 2^log_n
  int prime_bits = 36;         // RNS limb width (double-scale technique)
  std::size_t num_limbs = 24;  // fresh-ciphertext limbs (12 levels x 2)
  int scale_bits = 35;         // encoding scale Delta = 2^scale_bits
  double error_sigma = 3.2;    // RLWE error std-dev (HE standard)
  std::array<u8, 16> seed = {0x41, 0x42, 0x43, 0x2d, 0x46, 0x48, 0x45, 0x21,
                             0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07};
  bool enforce_security = true;

  std::size_t n() const noexcept { return std::size_t{1} << log_n; }
  std::size_t slots() const noexcept { return n() / 2; }
  double scale() const noexcept {
    return static_cast<double>(u64{1} << scale_bits);
  }
  /// Total modulus bits at a given level (limb count).
  int log_q(std::size_t limbs) const noexcept {
    return static_cast<int>(limbs) * prime_bits;
  }

  /// Paper evaluation setup: bootstrappable N=2^16, 24 limbs.
  static CkksParams bootstrappable();
  /// Degree sweep point (Fig. 6b): keeps limb structure, drops security
  /// enforcement since small-N/full-depth points are performance-only.
  static CkksParams sweep_point(int log_n, std::size_t num_limbs);
  /// Small parameters for fast functional tests.
  static CkksParams test_small(int log_n = 10, std::size_t num_limbs = 3);

  /// Throws InvalidArgument when inconsistent (or insecure while
  /// enforce_security is set).
  void validate() const;

  /// Member-wise equality — the warm-context cache key: two parameter
  /// sets compare equal exactly when they would build interchangeable
  /// contexts (same prime chain, tables, and PRNG seed).
  bool operator==(const CkksParams&) const = default;
};

/// Maximum log2(Q) for 128-bit classical security with uniform ternary
/// secrets (HE security standard tables).
int max_log_q_128bit(int log_n);

}  // namespace abc::ckks
