#pragma once

/// @file decryptor.hpp
/// Client-side decryption, paper Fig. 2a "Decoding + Decrypt": the phase
/// polynomial c0 + c1*s (+ c2*s^2 for unrelinearized products) is
/// accumulated in the evaluation domain, INTT'd per limb, and handed to
/// the decoder (CRT combine + FFT).

#include <memory>

#include "ckks/ciphertext.hpp"
#include "ckks/context.hpp"
#include "ckks/keygen.hpp"

namespace abc::ckks {

class Decryptor {
 public:
  Decryptor(std::shared_ptr<const CkksContext> ctx, const SecretKey& sk);

  /// Decrypts 2- or 3-component ciphertexts; returns a coefficient-domain
  /// plaintext carrying the ciphertext scale.
  Plaintext decrypt(const Ciphertext& ct);

 private:
  std::shared_ptr<const CkksContext> ctx_;
  poly::RnsPoly sk_eval_;
};

}  // namespace abc::ckks
