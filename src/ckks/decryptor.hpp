#pragma once

/// @file decryptor.hpp
/// Client-side decryption, paper Fig. 2a "Decoding + Decrypt": the phase
/// polynomial c0 + c1*s (+ c2*s^2 for unrelinearized products) is
/// accumulated in the evaluation domain, INTT'd per limb, and handed to
/// the decoder (CRT combine + FFT).
///
/// Concurrency model mirrors the encryptor: decrypt() reuses an internal
/// scratch and is not reentrant; parallel callers use decrypt_with() with
/// one DecryptScratch per worker (see engine/batch_decryptor.hpp).

#include <memory>

#include "ckks/ciphertext.hpp"
#include "ckks/context.hpp"
#include "ckks/keygen.hpp"

namespace abc::ckks {

/// Reusable per-worker buffers for the decryption hot path: the secret's
/// level prefix and (for 3-component ciphertexts) its square. After the
/// first decryption at a given level the hot path allocates only the
/// plaintext polynomial it returns.
class DecryptScratch {
 public:
  explicit DecryptScratch(const CkksContext& ctx);

 private:
  friend class Decryptor;
  poly::RnsPoly s_;   // secret-key prefix at the ciphertext level
  poly::RnsPoly s2_;  // s^2 for unrelinearized 3-component inputs
};

class Decryptor {
 public:
  Decryptor(std::shared_ptr<const CkksContext> ctx, const SecretKey& sk);

  /// Decrypts 2- or 3-component ciphertexts; returns a coefficient-domain
  /// plaintext carrying the ciphertext scale. Not reentrant (uses the
  /// internal scratch).
  Plaintext decrypt(const Ciphertext& ct);

  /// Decryption with external scratch. Thread-safe: may run concurrently
  /// with any other decrypt_with() call as long as each thread owns its
  /// scratch. Decryption consumes no PRNG stream, so the result is
  /// bit-identical for any backend, worker count, and call order.
  Plaintext decrypt_with(const Ciphertext& ct, DecryptScratch& scratch) const;

 private:
  std::shared_ptr<const CkksContext> ctx_;
  poly::RnsPoly sk_eval_;
  DecryptScratch scratch_;
};

}  // namespace abc::ckks
