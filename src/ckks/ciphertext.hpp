#pragma once

/// @file ciphertext.hpp
/// Plaintext and ciphertext containers. A plaintext is a scaled integer
/// polynomial in coefficient form; a ciphertext is a tuple of RNS
/// polynomials in evaluation (NTT) form. Unrelinearized products carry a
/// third component, decryptable against s^2 directly or reduced back to
/// two components by Evaluator::relinearize_inplace (keyswitch.hpp).

#include <optional>
#include <vector>

#include "poly/rns_poly.hpp"

namespace abc::ckks {

struct Plaintext {
  poly::RnsPoly poly;  // coefficient domain
  double scale = 0.0;

  std::size_t limbs() const noexcept { return poly.limbs(); }
};

/// Metadata for a seed-compressed second component: instead of shipping
/// c1, the symmetric encryptor ships the PRNG stream id that regenerates
/// it (the paper's on-chip PRNG makes this free on the accelerator).
struct CompressedComponent {
  u64 stream_id = 0;
};

struct Ciphertext {
  std::vector<poly::RnsPoly> components;  // evaluation domain, size 2 or 3
  double scale = 0.0;
  std::optional<CompressedComponent> compressed_c1;

  std::size_t size() const noexcept { return components.size(); }
  std::size_t limbs() const noexcept { return components.at(0).limbs(); }

  const poly::RnsPoly& c(std::size_t i) const { return components.at(i); }
  poly::RnsPoly& c(std::size_t i) { return components.at(i); }

  /// Serialized bytes at a packed coefficient width (DRAM/stream models);
  /// a compressed c1 costs only its 8-byte stream id + the shared seed.
  double packed_bytes(int bits_per_coeff) const {
    double total = 0.0;
    for (std::size_t i = 0; i < components.size(); ++i) {
      if (i == 1 && compressed_c1.has_value()) {
        total += 8.0;
        continue;
      }
      total += components[i].packed_bytes(bits_per_coeff);
    }
    return total;
  }
};

}  // namespace abc::ckks
