#pragma once

/// @file evaluator.hpp
/// Homomorphic evaluator: addition, plaintext multiplication, ciphertext
/// multiplication, RNS rescaling — and, since the key-switching subsystem
/// landed (keyswitch.hpp), the operations that consume the client's
/// switching keys: relinearization of 3-component products and slot
/// rotations, including a hoisted multi-rotation that decomposes its input
/// once (ARK-style digit reuse).
///
/// Level discipline: the last RNS prime is reserved as the key-switch
/// special modulus, so relinearize/rotate require ciphertexts at most at
/// level max_limbs - 1 — rescale or mod-switch a fresh full-level
/// ciphertext once first (the natural first step of any computation).

#include <memory>
#include <span>
#include <vector>

#include "ckks/ciphertext.hpp"
#include "ckks/context.hpp"
#include "ckks/keyswitch.hpp"

namespace abc::ckks {

class KeySource;

class Evaluator {
 public:
  explicit Evaluator(std::shared_ptr<const CkksContext> ctx);

  /// Component-wise addition; scales and limb counts must match.
  Ciphertext add(const Ciphertext& a, const Ciphertext& b) const;
  Ciphertext sub(const Ciphertext& a, const Ciphertext& b) const;

  /// ct + encode(pt): pt is transformed to evaluation form internally.
  Ciphertext add_plain(const Ciphertext& ct, const Plaintext& pt) const;

  /// ct * encode(pt): dyadic product against the transformed plaintext;
  /// the result scale is the product of both scales (rescale afterwards).
  Ciphertext mul_plain(const Ciphertext& ct, const Plaintext& pt) const;

  /// Full ciphertext product without relinearization: (c0, c1) x (d0, d1)
  /// -> (c0 d0, c0 d1 + c1 d0, c1 d1). Follow with relinearize_inplace to
  /// return to 2 components.
  Ciphertext mul(const Ciphertext& a, const Ciphertext& b) const;

  /// Switches the s^2 component of a 3-component product back to s:
  /// (c0 + ks0, c1 + ks1) with (ks0, ks1) = KeySwitch(c2, rlk). Scale and
  /// level are unchanged; noise grows by the key-switch bound
  /// (noise.hpp's keyswitch_noise_bound). @p scratch reuses buffers across
  /// calls (null allocates locally).
  void relinearize_inplace(Ciphertext& ct, const RelinKey& rlk,
                           KeySwitchScratch* scratch = nullptr) const;

  /// relinearize_inplace with a pre-resolved key (must be Kind::kRelin).
  /// This is the single underlying code path: the RelinKey and KeySource
  /// overloads both land here, which is what makes on-demand-regenerated
  /// keys bit-identical to eager ones by construction.
  void relinearize_inplace(Ciphertext& ct, const KeySwitchKey& rlk,
                           KeySwitchScratch* scratch = nullptr) const;

  /// relinearize_inplace resolving (and pinning) the key through a
  /// KeySource for the duration of the switch.
  void relinearize_inplace(Ciphertext& ct, const KeySource& keys,
                           KeySwitchScratch* scratch = nullptr) const;

  /// Rotates slots left by @p step (negative steps rotate right) using the
  /// matching Galois key: both components pass through sigma_g in the
  /// evaluation domain, and sigma_g(c1) is key-switched back to s.
  Ciphertext rotate(const Ciphertext& ct, int step, const GaloisKeys& gks,
                    KeySwitchScratch* scratch = nullptr) const;

  /// rotate with a pre-resolved Galois key (the single underlying code
  /// path; the step is implied by key.galois_elt).
  Ciphertext rotate(const Ciphertext& ct, const KeySwitchKey& key,
                    KeySwitchScratch* scratch = nullptr) const;

  /// rotate resolving (and pinning) the step's key through a KeySource.
  Ciphertext rotate(const Ciphertext& ct, int step, const KeySource& keys,
                    KeySwitchScratch* scratch = nullptr) const;

  /// Rotations by every step in @p steps from one input, decomposing the
  /// input a single time and reusing the evaluation-domain digits across
  /// all steps (hoisted key switching). Bit-identical to calling rotate()
  /// per step, at a fraction of the NTT work once steps.size() > 1.
  std::vector<Ciphertext> rotate_many(const Ciphertext& ct,
                                      std::span<const int> steps,
                                      const GaloisKeys& gks,
                                      KeySwitchScratch* scratch = nullptr) const;

  /// rotate_many through a KeySource: the whole step set is validated with
  /// the cheap has_galois_key probe *before* the hoisted decomposition,
  /// then keys are pinned one at a time — a caching source never holds
  /// more than one pinned key for this call no matter how many rotations
  /// are requested.
  std::vector<Ciphertext> rotate_many(const Ciphertext& ct,
                                      std::span<const int> steps,
                                      const KeySource& keys,
                                      KeySwitchScratch* scratch = nullptr) const;

  /// Exact RNS rescale: divides by the last prime with rounding and drops
  /// the limb; scale is divided by q_last.
  void rescale_inplace(Ciphertext& ct) const;

  /// Drops limbs without scaling (modulus switching to a lower level, used
  /// to model the server returning a level-2 ciphertext).
  void mod_switch_to_inplace(Ciphertext& ct, std::size_t target_limbs) const;

 private:
  /// Per-(dropped-limb, target-limb) constants of the exact rescale,
  /// hoisted into the constructor: the seed recomputed the modular inverse
  /// (an O(log q) exponentiation), its Shoup quotient, and the centering
  /// offset for every limb on every rescale_poly call.
  struct RescaleConst {
    rns::ShoupMul inv_q_last;  // q_last^{-1} mod q_i
    u64 half_mod_qi = 0;       // floor(q_last / 2) mod q_i
  };

  void rescale_poly(poly::RnsPoly& p) const;
  void decompose_c1(const Ciphertext& ct, KeySwitchScratch& scratch) const;
  void rotate_into(const Ciphertext& ct, const KeySwitchKey& key,
                   KeySwitchScratch& scratch, Ciphertext& out) const;

  std::shared_ptr<const CkksContext> ctx_;
  KeySwitcher switcher_;
  // rescale_consts_[last][i]: dropping limb `last`, correcting limb i.
  std::vector<std::vector<RescaleConst>> rescale_consts_;
};

}  // namespace abc::ckks
