#pragma once

/// @file evaluator.hpp
/// Light homomorphic evaluator. The paper's accelerator is client-side
/// only, but the examples and the Fig. 1 workload need a working server
/// counterpart: addition, plaintext multiplication, ciphertext
/// multiplication (unrelinearized, 3 components) and RNS rescaling.
/// Key switching / relinearization is intentionally out of scope (it lives
/// on the server accelerator, e.g. Trinity [9]); decryption handles
/// 3-component results directly.

#include <memory>

#include "ckks/ciphertext.hpp"
#include "ckks/context.hpp"

namespace abc::ckks {

class Evaluator {
 public:
  explicit Evaluator(std::shared_ptr<const CkksContext> ctx);

  /// Component-wise addition; scales and limb counts must match.
  Ciphertext add(const Ciphertext& a, const Ciphertext& b) const;
  Ciphertext sub(const Ciphertext& a, const Ciphertext& b) const;

  /// ct + encode(pt): pt is transformed to evaluation form internally.
  Ciphertext add_plain(const Ciphertext& ct, const Plaintext& pt) const;

  /// ct * encode(pt): dyadic product against the transformed plaintext;
  /// the result scale is the product of both scales (rescale afterwards).
  Ciphertext mul_plain(const Ciphertext& ct, const Plaintext& pt) const;

  /// Full ciphertext product without relinearization: (c0, c1) x (d0, d1)
  /// -> (c0 d0, c0 d1 + c1 d0, c1 d1).
  Ciphertext mul(const Ciphertext& a, const Ciphertext& b) const;

  /// Exact RNS rescale: divides by the last prime with rounding and drops
  /// the limb; scale is divided by q_last.
  void rescale_inplace(Ciphertext& ct) const;

  /// Drops limbs without scaling (modulus switching to a lower level, used
  /// to model the server returning a level-2 ciphertext).
  void mod_switch_to_inplace(Ciphertext& ct, std::size_t target_limbs) const;

 private:
  void rescale_poly(poly::RnsPoly& p) const;

  std::shared_ptr<const CkksContext> ctx_;
};

}  // namespace abc::ckks
