#include "ckks/keygen.hpp"

#include "prng/samplers.hpp"
#include "transform/op_counter.hpp"

namespace abc::ckks {

void fill_uniform_eval(const CkksContext& ctx, poly::RnsPoly& dst,
                       PrngDomain domain, u64 stream_id) {
  for (std::size_t i = 0; i < dst.limbs(); ++i) {
    // One stream per (domain, id, limb): limb folded into the stream id's
    // upper bits so streams never collide for < 2^32 uses.
    prng::ChaCha20 rng(ctx.params().seed,
                       (stream_id << 16) | static_cast<u64>(i),
                       static_cast<u32>(domain));
    prng::UniformModSampler sampler(
        ctx.poly_context()->modulus(i).value());
    sampler.sample_many(rng, dst.limb(i));
  }
  xf::op_counts().other += dst.limbs() * dst.n();
}

void fill_ternary_coeff(const CkksContext& ctx, poly::RnsPoly& dst,
                        PrngDomain domain, u64 stream_id,
                        SamplerScratch* scratch) {
  prng::ChaCha20 rng(ctx.params().seed, stream_id,
                     static_cast<u32>(domain));
  prng::TernarySampler sampler;
  SamplerScratch local;
  SamplerScratch& s = scratch ? *scratch : local;
  s.ternary.resize(ctx.n());
  sampler.sample_many(rng, s.ternary);
  s.wide.assign(s.ternary.begin(), s.ternary.end());
  dst.set_from_signed_i32(s.wide);
}

void fill_gaussian_coeff(const CkksContext& ctx, poly::RnsPoly& dst,
                         PrngDomain domain, u64 stream_id,
                         SamplerScratch* scratch) {
  prng::ChaCha20 rng(ctx.params().seed, stream_id,
                     static_cast<u32>(domain));
  prng::DiscreteGaussianSampler sampler(ctx.params().error_sigma);
  SamplerScratch local;
  SamplerScratch& s = scratch ? *scratch : local;
  s.wide.resize(ctx.n());
  sampler.sample_many(rng, s.wide);
  dst.set_from_signed_i32(s.wide);
}

u32 galois_element(int step, std::size_t n) {
  const std::size_t two_n = 2 * n;
  const auto slots = static_cast<long long>(n / 2);
  const long long r = ((step % slots) + slots) % slots;
  ABC_CHECK_ARG(r != 0, "rotation step must be nonzero mod slots");
  // 3^r mod 2N by square-and-multiply (2N <= 2^17, products fit u64).
  // The base must match the canonical-embedding generator: the encoder
  // places slot i at the evaluation point zeta^{3^i} (CkksDwtPlan), so
  // sigma_{3^r} sends slot i to slot i - r — a cyclic rotation. Any other
  // odd generator (e.g. 5 = -3^j mod 2N) would permute slots into the
  // conjugate orbit instead of shifting them.
  u64 g = 1, base = 3 % two_n;
  for (u64 e = static_cast<u64>(r); e != 0; e >>= 1) {
    if (e & 1) g = g * base % two_n;
    base = base * base % two_n;
  }
  return static_cast<u32>(g);
}

PrngDomain ksk_a_domain(KeySwitchKey::Kind kind) {
  return kind == KeySwitchKey::Kind::kRelin ? PrngDomain::kRelinA
                                            : PrngDomain::kGaloisA;
}

PrngDomain ksk_error_domain(KeySwitchKey::Kind kind) {
  return kind == KeySwitchKey::Kind::kRelin ? PrngDomain::kRelinError
                                            : PrngDomain::kGaloisError;
}

u32 ksk_stream_domain(PrngDomain base, u32 galois_elt) {
  // Domain tags occupy the low byte (values 1..11); the element (< 2^17
  // for N <= 2^16) fits the remaining 24 bits of the ChaCha domain word.
  return static_cast<u32>(base) | (galois_elt << 8);
}

const KeySwitchKey* GaloisKeys::find(int step) const noexcept {
  const auto reduce = [this](int s) {
    if (slots == 0) return static_cast<long long>(s);
    const auto m = static_cast<long long>(slots);
    return ((s % m) + m) % m;
  };
  const long long want = reduce(step);
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (reduce(steps[i]) == want && i < keys.size()) return &keys[i];
  }
  return nullptr;
}

const KeySwitchKey& GaloisKeys::key_for(int step) const {
  const KeySwitchKey* key = find(step);
  if (key == nullptr) {
    throw InvalidArgument("no Galois key generated for this step");
  }
  return *key;
}

void generate_ksk_digit(const CkksContext& ctx,
                        const poly::RnsPoly& s_neg_eval,
                        const poly::RnsPoly& s_prime_eval,
                        KeySwitchKey::Kind kind, u32 galois_elt,
                        u64 stream_id, std::size_t digit,
                        poly::RnsPoly& b_out, poly::RnsPoly& a_out,
                        SamplerScratch* scratch) {
  const std::size_t limbs = ctx.max_limbs();
  ABC_CHECK_ARG(digit < limbs, "gadget digit out of range");
  const auto a_domain = static_cast<PrngDomain>(
      ksk_stream_domain(ksk_a_domain(kind), galois_elt));
  const auto error_domain = static_cast<PrngDomain>(
      ksk_stream_domain(ksk_error_domain(kind), galois_elt));

  a_out.reset(limbs, poly::Domain::kEval);
  fill_uniform_eval(ctx, a_out, a_domain, stream_id);

  // b starts as the error, transformed to the evaluation domain.
  b_out.reset(limbs, poly::Domain::kCoeff);
  fill_gaussian_coeff(ctx, b_out, error_domain, stream_id, scratch);
  b_out.to_eval();

  // b = e + a*(-s), one fused pass with no product buffer.
  b_out.fma_inplace(a_out, s_neg_eval);

  // + g_d * s': the CRT idempotent is 1 mod q_d and 0 elsewhere, so the
  // gadget term only touches limb `digit`.
  const rns::Modulus& q = ctx.poly_context()->modulus(digit);
  const std::span<u64> bd = b_out.limb(digit);
  const std::span<const u64> sp = s_prime_eval.limb(digit);
  for (std::size_t j = 0; j < bd.size(); ++j) bd[j] = q.add(bd[j], sp[j]);
}

KeyGenerator::KeyGenerator(std::shared_ptr<const CkksContext> ctx)
    : ctx_(std::move(ctx)) {
  ABC_CHECK_ARG(ctx_ != nullptr, "null context");
}

SecretKey KeyGenerator::secret_key() {
  // Context-wide id: generators sharing a context draw distinct secrets
  // (two intended-to-be-different users can never end up with the same
  // key because both counters started at 0).
  const u64 id = ctx_->reserve_secret_ids(1);
  poly::RnsPoly s = ctx_->make_poly(ctx_->max_limbs(), poly::Domain::kCoeff);
  fill_ternary_coeff(*ctx_, s, PrngDomain::kSecretKey, id);
  s.to_eval();
  return SecretKey{std::move(s), id};
}

PublicKey KeyGenerator::public_key(const SecretKey& sk) {
  const u64 id = ksk_base_stream_id(sk.stream_id, pk_counter_++);
  poly::RnsPoly a = ctx_->make_poly(ctx_->max_limbs(), poly::Domain::kEval);
  fill_uniform_eval(*ctx_, a, PrngDomain::kPublicA, id);

  poly::RnsPoly e = ctx_->make_poly(ctx_->max_limbs(), poly::Domain::kCoeff);
  fill_gaussian_coeff(*ctx_, e, PrngDomain::kKeygenError, id);
  e.to_eval();

  poly::RnsPoly b = a;           // deep copy
  b.mul_inplace(sk.s);           // a * s
  b.negate_add_inplace(e);       // fused -(a * s) + e
  return PublicKey{std::move(b), std::move(a), id};
}

KeySwitchKey KeyGenerator::make_ksk(KeySwitchKey::Kind kind, u32 galois_elt,
                                    const SecretKey& sk,
                                    const poly::RnsPoly& s_prime_eval) {
  const std::size_t digits = ctx_->max_limbs();
  KeySwitchKey key;
  key.kind = kind;
  key.galois_elt = galois_elt;
  key.base_stream_id = ksk_base_stream_id(sk.stream_id, ksk_counter_);
  ksk_counter_ += digits;
  key.b.reserve(digits);
  key.a.reserve(digits);
  poly::RnsPoly s_neg = sk.s;  // one negation per key, shared by digits
  s_neg.negate_inplace();
  SamplerScratch scratch;
  for (std::size_t d = 0; d < digits; ++d) {
    key.b.push_back(ctx_->make_poly(digits, poly::Domain::kEval));
    key.a.push_back(ctx_->make_poly(digits, poly::Domain::kEval));
    generate_ksk_digit(*ctx_, s_neg, s_prime_eval, kind, galois_elt,
                       key.base_stream_id + d, d, key.b[d], key.a[d],
                       &scratch);
  }
  return key;
}

RelinKey KeyGenerator::relin_key(const SecretKey& sk) {
  poly::RnsPoly s2 = sk.s;
  s2.mul_inplace(sk.s);
  return RelinKey{make_ksk(KeySwitchKey::Kind::kRelin, 0, sk, s2)};
}

KeySwitchKey KeyGenerator::galois_key_from_coeff(const SecretKey& sk,
                                                 const poly::RnsPoly& s_coeff,
                                                 u32 elt) {
  poly::RnsPoly s_rot = s_coeff.automorphism(elt);
  s_rot.to_eval();
  return make_ksk(KeySwitchKey::Kind::kGalois, elt, sk, s_rot);
}

KeySwitchKey KeyGenerator::galois_key(const SecretKey& sk, int step) {
  poly::RnsPoly s_coeff = sk.s;
  s_coeff.to_coeff();
  return galois_key_from_coeff(sk, s_coeff,
                               galois_element(step, ctx_->n()));
}

GaloisKeys KeyGenerator::galois_keys(const SecretKey& sk,
                                     std::span<const int> steps) {
  GaloisKeys out;
  out.slots = ctx_->slots();
  out.steps.assign(steps.begin(), steps.end());
  out.keys.reserve(steps.size());
  // One INTT of the secret for the whole set; each step only pays its
  // automorphism + forward NTT.
  poly::RnsPoly s_coeff = sk.s;
  s_coeff.to_coeff();
  for (int step : steps) {
    out.keys.push_back(
        galois_key_from_coeff(sk, s_coeff, galois_element(step, ctx_->n())));
  }
  return out;
}

}  // namespace abc::ckks
