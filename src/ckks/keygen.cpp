#include "ckks/keygen.hpp"

#include "prng/samplers.hpp"
#include "transform/op_counter.hpp"

namespace abc::ckks {

void fill_uniform_eval(const CkksContext& ctx, poly::RnsPoly& dst,
                       PrngDomain domain, u64 stream_id) {
  for (std::size_t i = 0; i < dst.limbs(); ++i) {
    // One stream per (domain, id, limb): limb folded into the stream id's
    // upper bits so streams never collide for < 2^32 uses.
    prng::ChaCha20 rng(ctx.params().seed,
                       (stream_id << 16) | static_cast<u64>(i),
                       static_cast<u32>(domain));
    prng::UniformModSampler sampler(
        ctx.poly_context()->modulus(i).value());
    sampler.sample_many(rng, dst.limb(i));
  }
  xf::op_counts().other += dst.limbs() * dst.n();
}

void fill_ternary_coeff(const CkksContext& ctx, poly::RnsPoly& dst,
                        PrngDomain domain, u64 stream_id,
                        SamplerScratch* scratch) {
  prng::ChaCha20 rng(ctx.params().seed, stream_id,
                     static_cast<u32>(domain));
  prng::TernarySampler sampler;
  SamplerScratch local;
  SamplerScratch& s = scratch ? *scratch : local;
  s.ternary.resize(ctx.n());
  sampler.sample_many(rng, s.ternary);
  s.wide.assign(s.ternary.begin(), s.ternary.end());
  dst.set_from_signed_i32(s.wide);
}

void fill_gaussian_coeff(const CkksContext& ctx, poly::RnsPoly& dst,
                         PrngDomain domain, u64 stream_id,
                         SamplerScratch* scratch) {
  prng::ChaCha20 rng(ctx.params().seed, stream_id,
                     static_cast<u32>(domain));
  prng::DiscreteGaussianSampler sampler(ctx.params().error_sigma);
  SamplerScratch local;
  SamplerScratch& s = scratch ? *scratch : local;
  s.wide.resize(ctx.n());
  sampler.sample_many(rng, s.wide);
  dst.set_from_signed_i32(s.wide);
}

KeyGenerator::KeyGenerator(std::shared_ptr<const CkksContext> ctx)
    : ctx_(std::move(ctx)) {
  ABC_CHECK_ARG(ctx_ != nullptr, "null context");
}

SecretKey KeyGenerator::secret_key() {
  poly::RnsPoly s = ctx_->make_poly(ctx_->max_limbs(), poly::Domain::kCoeff);
  fill_ternary_coeff(*ctx_, s, PrngDomain::kSecretKey, sk_counter_++);
  s.to_eval();
  return SecretKey{std::move(s)};
}

PublicKey KeyGenerator::public_key(const SecretKey& sk) {
  const u64 id = pk_counter_++;
  poly::RnsPoly a = ctx_->make_poly(ctx_->max_limbs(), poly::Domain::kEval);
  fill_uniform_eval(*ctx_, a, PrngDomain::kPublicA, id);

  poly::RnsPoly e = ctx_->make_poly(ctx_->max_limbs(), poly::Domain::kCoeff);
  fill_gaussian_coeff(*ctx_, e, PrngDomain::kKeygenError, id);
  e.to_eval();

  poly::RnsPoly b = a;           // deep copy
  b.mul_inplace(sk.s);           // a * s
  b.negate_inplace();            // -(a * s)
  b.add_inplace(e);              // + e
  return PublicKey{std::move(b), std::move(a)};
}

}  // namespace abc::ckks
