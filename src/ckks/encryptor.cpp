#include "ckks/encryptor.hpp"

namespace abc::ckks {

Encryptor::Encryptor(std::shared_ptr<const CkksContext> ctx, PublicKey pk)
    : ctx_(std::move(ctx)),
      mode_(EncryptMode::kPublicKey),
      pk_(std::make_unique<PublicKey>(std::move(pk))) {
  ABC_CHECK_ARG(ctx_ != nullptr, "null context");
}

Encryptor::Encryptor(std::shared_ptr<const CkksContext> ctx,
                     const SecretKey& sk)
    : ctx_(std::move(ctx)),
      mode_(EncryptMode::kSymmetricSeeded),
      sk_eval_(std::make_unique<poly::RnsPoly>(sk.s)) {
  ABC_CHECK_ARG(ctx_ != nullptr, "null context");
}

Ciphertext Encryptor::encrypt(const Plaintext& pt) {
  ABC_CHECK_ARG(pt.poly.domain() == poly::Domain::kCoeff,
                "plaintext must be in coefficient form");
  return mode_ == EncryptMode::kPublicKey ? encrypt_public(pt)
                                          : encrypt_symmetric(pt);
}

Ciphertext Encryptor::encrypt_public(const Plaintext& pt) {
  const std::size_t limbs = pt.limbs();
  const u64 id = counter_++;

  // Ternary mask u, transformed (NTT pass 1 of 3).
  poly::RnsPoly u = ctx_->make_poly(limbs, poly::Domain::kCoeff);
  fill_ternary_coeff(*ctx_, u, PrngDomain::kEncryptMask, id);
  u.to_eval();

  // m + e0 folded before the transform (NTT pass 2).
  poly::RnsPoly me0 = pt.poly;
  poly::RnsPoly e0 = ctx_->make_poly(limbs, poly::Domain::kCoeff);
  fill_gaussian_coeff(*ctx_, e0, PrngDomain::kEncryptError, 2 * id);
  me0.add_inplace(e0);
  me0.to_eval();

  // e1 (NTT pass 3).
  poly::RnsPoly e1 = ctx_->make_poly(limbs, poly::Domain::kCoeff);
  fill_gaussian_coeff(*ctx_, e1, PrngDomain::kEncryptError, 2 * id + 1);
  e1.to_eval();

  // c0 = b*u + (m + e0); c1 = a*u + e1, on the first `limbs` limbs of pk.
  poly::RnsPoly c0 = pk_->b.prefix_copy(limbs);
  c0.mul_inplace(u);
  c0.add_inplace(me0);
  poly::RnsPoly c1 = pk_->a.prefix_copy(limbs);
  c1.mul_inplace(u);
  c1.add_inplace(e1);

  Ciphertext ct{{std::move(c0), std::move(c1)}, pt.scale, std::nullopt};
  return ct;
}

Ciphertext Encryptor::encrypt_symmetric(const Plaintext& pt) {
  const std::size_t limbs = pt.limbs();
  const u64 id = counter_++;

  // Uniform a regenerable from (seed, stream id): never shipped.
  poly::RnsPoly a = ctx_->make_poly(limbs, poly::Domain::kEval);
  fill_uniform_eval(*ctx_, a, PrngDomain::kSymmetricA, id);

  // m + e folded before the single NTT pass per limb.
  poly::RnsPoly me = pt.poly;
  poly::RnsPoly e = ctx_->make_poly(limbs, poly::Domain::kCoeff);
  fill_gaussian_coeff(*ctx_, e, PrngDomain::kEncryptError, (u64{1} << 40) + id);
  me.add_inplace(e);
  me.to_eval();

  // c0 = -(a*s) + (m + e).
  poly::RnsPoly c0 = a;
  c0.mul_inplace(sk_eval_->prefix_copy(limbs));
  c0.negate_inplace();
  c0.add_inplace(me);

  Ciphertext ct{{std::move(c0), std::move(a)}, pt.scale,
                CompressedComponent{id}};
  return ct;
}

}  // namespace abc::ckks
