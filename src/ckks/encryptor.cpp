#include "ckks/encryptor.hpp"

namespace abc::ckks {

namespace {

const CkksContext& require_context(
    const std::shared_ptr<const CkksContext>& ctx) {
  ABC_CHECK_ARG(ctx != nullptr, "null context");
  return *ctx;
}

}  // namespace

EncryptScratch::EncryptScratch(const CkksContext& ctx)
    : mask_(ctx.make_poly(1, poly::Domain::kCoeff)),
      me_(ctx.make_poly(1, poly::Domain::kCoeff)),
      err_(ctx.make_poly(1, poly::Domain::kCoeff)) {}

Encryptor::Encryptor(std::shared_ptr<const CkksContext> ctx, PublicKey pk)
    : ctx_(std::move(ctx)),
      mode_(EncryptMode::kPublicKey),
      pk_(std::make_unique<PublicKey>(std::move(pk))),
      // The pk's stream id carries its secret's id in the upper 32 bits
      // (ksk_base_stream_id), which is exactly the salt we need.
      secret_salt_(pk_->stream_id >> 32),
      scratch_(require_context(ctx_)) {
  // Same budget the write path enforces: an oversized salt would be
  // truncated by the limb fold and could alias streams across secrets.
  ABC_CHECK_ARG(secret_salt_ < (u64{1} << 16),
                "public key stream id exceeds the 16-bit salt budget");
}

Encryptor::Encryptor(std::shared_ptr<const CkksContext> ctx,
                     const SecretKey& sk)
    : ctx_(std::move(ctx)),
      mode_(EncryptMode::kSymmetricSeeded),
      sk_eval_(std::make_unique<poly::RnsPoly>(sk.s)),
      secret_salt_(sk.stream_id),
      scratch_(require_context(ctx_)) {
  ABC_CHECK_ARG(sk.stream_id < (u64{1} << 16),
                "secret stream id exceeds the 16-bit salt budget");
}

Ciphertext Encryptor::encrypt(const Plaintext& pt) {
  return encrypt_with(pt, reserve_stream_ids(1), scratch_);
}

Ciphertext Encryptor::encrypt_with(const Plaintext& pt, u64 stream_id,
                                   EncryptScratch& scratch) const {
  ABC_CHECK_ARG(pt.poly.domain() == poly::Domain::kCoeff,
                "plaintext must be in coefficient form");
  ABC_CHECK_ARG(stream_id < (u64{1} << 31),
                "stream id exceeds the 31-bit counter budget");
  return mode_ == EncryptMode::kPublicKey
             ? encrypt_public(pt, stream_id, scratch)
             : encrypt_symmetric(pt, stream_id, scratch);
}

Ciphertext Encryptor::encrypt_public(const Plaintext& pt, u64 id,
                                     EncryptScratch& s) const {
  const std::size_t limbs = pt.limbs();

  // Ternary mask u, transformed (NTT pass 1 of 3).
  poly::RnsPoly& u = s.mask_;
  u.reset(limbs, poly::Domain::kCoeff);
  fill_ternary_coeff(*ctx_, u, PrngDomain::kEncryptMask, salted(id),
                     &s.samplers_);
  u.to_eval();

  // m + e0 folded before the transform (NTT pass 2).
  poly::RnsPoly& me0 = s.me_;
  me0.assign_prefix(pt.poly, limbs);
  poly::RnsPoly& e = s.err_;
  e.reset(limbs, poly::Domain::kCoeff);
  fill_gaussian_coeff(*ctx_, e, PrngDomain::kEncryptError, salted(2 * id),
                      &s.samplers_);
  me0.add_inplace(e);
  me0.to_eval();

  // c0 = b*u + (m + e0), on the first `limbs` limbs of pk.
  poly::RnsPoly c0 = pk_->b.prefix_copy(limbs);
  c0.mul_inplace(u);
  c0.add_inplace(me0);

  // e1 (NTT pass 3); c1 = a*u + e1.
  e.reset(limbs, poly::Domain::kCoeff);
  fill_gaussian_coeff(*ctx_, e, PrngDomain::kEncryptError,
                      salted(2 * id + 1), &s.samplers_);
  e.to_eval();
  poly::RnsPoly c1 = pk_->a.prefix_copy(limbs);
  c1.mul_inplace(u);
  c1.add_inplace(e);

  Ciphertext ct{{std::move(c0), std::move(c1)}, pt.scale, std::nullopt};
  return ct;
}

Ciphertext Encryptor::encrypt_symmetric(const Plaintext& pt, u64 raw_id,
                                        EncryptScratch& s) const {
  const std::size_t limbs = pt.limbs();
  const u64 id = salted(raw_id);  // the wire id (CompressedComponent)

  // Uniform a regenerable from (seed, stream id): never shipped.
  poly::RnsPoly a = ctx_->make_poly(limbs, poly::Domain::kEval);
  fill_uniform_eval(*ctx_, a, PrngDomain::kSymmetricA, id);

  // m + e folded before the single NTT pass per limb.
  poly::RnsPoly& me = s.me_;
  me.assign_prefix(pt.poly, limbs);
  poly::RnsPoly& e = s.err_;
  e.reset(limbs, poly::Domain::kCoeff);
  fill_gaussian_coeff(*ctx_, e, PrngDomain::kSymmetricError, id,
                      &s.samplers_);
  me.add_inplace(e);
  me.to_eval();

  // c0 = -(a*s) + (m + e).
  poly::RnsPoly& sk = s.mask_;
  sk.assign_prefix(*sk_eval_, limbs);
  poly::RnsPoly c0 = a;
  c0.mul_inplace(sk);
  c0.negate_add_inplace(me);  // fused -(a*s) + (m+e)

  Ciphertext ct{{std::move(c0), std::move(a)}, pt.scale,
                CompressedComponent{id}};
  return ct;
}

}  // namespace abc::ckks
