#pragma once

/// @file noise.hpp
/// Analytic noise estimation for the client-side CKKS operations, in the
/// canonical-embedding norm. Fresh-encryption noise determines how much
/// of the scale survives the round trip (the precision floor measured in
/// Fig. 3c); the estimator's bounds are validated against measured noise
/// in tests, so downstream users can size scales without trial runs.
///
/// Model (standard CKKS heuristics, high-probability bounds with the
/// 6-sigma factor of the tail cut):
///   fresh (pk):   ||e||_can <= 6*sigma*sqrt(N) * (sqrt(h) + sqrt(N) + 1)
///   fresh (sym):  ||e||_can <= 6*sigma*sqrt(N)
///   add:          e_a + e_b
///   mul_plain:    ||pt||_inf * scale_pt * e_ct (relative growth)
/// where h is the secret Hamming weight (N*2/3 expected for uniform
/// ternary).

#include <cstddef>

#include "ckks/ciphertext.hpp"
#include "ckks/context.hpp"
#include "ckks/decryptor.hpp"
#include "ckks/encoder.hpp"
#include "ckks/encryptor.hpp"

namespace abc::ckks {

/// Analytic high-probability bound on the canonical-embedding noise of a
/// fresh encryption, in absolute units (same units as scale * message).
double fresh_noise_bound(const CkksParams& params, EncryptMode mode);

/// Decoded-slot error bound implied by a noise bound at a given scale.
inline double slot_error_bound(double noise_bound, double scale) {
  return noise_bound / scale;
}

/// Bits of slot precision implied by the fresh-encryption bound:
/// -log2(slot error).
double fresh_precision_bound_bits(const CkksParams& params, EncryptMode mode);

/// Measures the actual slot-domain noise of a ciphertext against the
/// reference message: max |decode(decrypt(ct)) - reference|.
double measured_slot_noise(const Ciphertext& ct, Decryptor& decryptor,
                           const CkksEncoder& encoder,
                           std::span<const std::complex<double>> reference);

/// Scratch-carrying variant: thread-safe (decrypts through decrypt_with),
/// so a batch engine can measure many ciphertexts concurrently with one
/// DecryptScratch per worker.
double measured_slot_noise(const Ciphertext& ct, const Decryptor& decryptor,
                           const CkksEncoder& encoder,
                           std::span<const std::complex<double>> reference,
                           DecryptScratch& scratch);

/// Analytic high-probability bound on the canonical-embedding noise one
/// key-switch (relinearization or rotation) adds to a level-@p limbs
/// ciphertext, in absolute units. The accumulated error is
/// (sum_d ext_d(c) * e_d - eps) / P with ext_d(c) ~ U[0, q_d) and
/// |eps| <= P/2, so each digit contributes ~ sigma * N * q_d / (P * sqrt(12))
/// after the division, plus the rounding term's s-convolution
/// (~ sqrt(N h / 12)); see keyswitch.hpp for the construction.
double keyswitch_noise_bound(const CkksParams& params, std::size_t limbs);

/// Client-side precision verification of a server-returned ciphertext
/// (ROADMAP "decrypt/verify"): did every slot land within @p bound of the
/// expectation?
struct VerifyReport {
  bool ok = false;
  double max_abs_error = 0.0;  // max slot deviation from expected
  double bound = 0.0;          // the bound it was checked against
  double precision_bits = 0.0; // -log2(max_abs_error)
};

/// Decrypts + decodes @p ct and checks each of the first expected.size()
/// slots against @p expected within @p bound (absolute, slot domain). A
/// non-positive bound defaults to the fresh public-key noise floor at the
/// ciphertext's scale plus one key-switch at its level — the loosest
/// bound a well-formed single-hop server round trip should beat.
VerifyReport verify_decode(const CkksContext& ctx, const Ciphertext& ct,
                           Decryptor& decryptor, const CkksEncoder& encoder,
                           std::span<const std::complex<double>> expected,
                           double bound = 0.0);

/// Scratch-carrying variant of verify_decode: thread-safe, the per-item
/// unit of work engine::BatchDecryptor::verify_batch fans out.
VerifyReport verify_decode(const CkksContext& ctx, const Ciphertext& ct,
                           const Decryptor& decryptor,
                           const CkksEncoder& encoder,
                           std::span<const std::complex<double>> expected,
                           double bound, DecryptScratch& scratch);

}  // namespace abc::ckks
