#pragma once

/// @file noise.hpp
/// Analytic noise estimation for the client-side CKKS operations, in the
/// canonical-embedding norm. Fresh-encryption noise determines how much
/// of the scale survives the round trip (the precision floor measured in
/// Fig. 3c); the estimator's bounds are validated against measured noise
/// in tests, so downstream users can size scales without trial runs.
///
/// Model (standard CKKS heuristics, high-probability bounds with the
/// 6-sigma factor of the tail cut):
///   fresh (pk):   ||e||_can <= 6*sigma*sqrt(N) * (sqrt(h) + sqrt(N) + 1)
///   fresh (sym):  ||e||_can <= 6*sigma*sqrt(N)
///   add:          e_a + e_b
///   mul_plain:    ||pt||_inf * scale_pt * e_ct (relative growth)
/// where h is the secret Hamming weight (N*2/3 expected for uniform
/// ternary).

#include <cstddef>

#include "ckks/ciphertext.hpp"
#include "ckks/context.hpp"
#include "ckks/decryptor.hpp"
#include "ckks/encoder.hpp"
#include "ckks/encryptor.hpp"

namespace abc::ckks {

/// Analytic high-probability bound on the canonical-embedding noise of a
/// fresh encryption, in absolute units (same units as scale * message).
double fresh_noise_bound(const CkksParams& params, EncryptMode mode);

/// Decoded-slot error bound implied by a noise bound at a given scale.
inline double slot_error_bound(double noise_bound, double scale) {
  return noise_bound / scale;
}

/// Bits of slot precision implied by the fresh-encryption bound:
/// -log2(slot error).
double fresh_precision_bound_bits(const CkksParams& params, EncryptMode mode);

/// Measures the actual slot-domain noise of a ciphertext against the
/// reference message: max |decode(decrypt(ct)) - reference|.
double measured_slot_noise(const Ciphertext& ct, Decryptor& decryptor,
                           const CkksEncoder& encoder,
                           std::span<const std::complex<double>> reference);

}  // namespace abc::ckks
