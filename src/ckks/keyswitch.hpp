#pragma once

/// @file keyswitch.hpp
/// Server-side key switching: the engine that *applies* the gadget-
/// decomposed keys the client generates (keygen.hpp), closing the
/// client -> server -> client loop. BTS-class servers treat key switching
/// as the dominant primitive; this is its software counterpart, built on
/// the same PolyBackend seam as the rest of the stack so it threads and
/// vectorizes transparently.
///
/// ## Gadget contract (shared with keygen)
///
/// A key digit re-encrypts `g_d * s'` under `s`:
///
///     b_d = -(a_d * s) + e_d + g_d * s'
///
/// with `g_d` the CRT idempotent of limb `d` over the full prime chain
/// (`g_d = 1 mod q_d`, `0 mod q_j`). Switching a component `c` at level
/// `l` accumulates `sum_d ext_d(c) . (b_d, a_d)`; the idempotent identity
/// `sum_d [c]_{q_d} * g_d = c (mod Q_l)` delivers the phase.
///
/// ## Special modulus and noise
///
/// Raw digits `[c]_{q_d}` have magnitude up to `q_d`, so a naive
/// accumulation adds noise ~ `q_d * ||e_d||` — far above the scale. The
/// switcher therefore reserves the *last* RNS prime `P = q_{L-1}` as a
/// key-switch special modulus (the standard hybrid construction): digits
/// are scaled to `ext_d(c) = [P * c]_{q_d}`, the accumulation runs over
/// the extended limb set `{0..l-1, L-1}` (the keys are full-width, so the
/// `P` residues of every digit are already present), and the result is
/// divided by `P` with round-to-nearest. Because `g_d = 0 (mod P)` for
/// every digit in range, the phase comes out as
///
///     out0 + out1 * s  =  c * s'  +  (sum_d ext_d(c) * e_d - eps) / P
///
/// whose error term is ~ `l * N * sigma * q_max / P` — a few bits, since
/// the chain's primes share one magnitude. The client-visible consequence:
/// ciphertexts must sit at most at level `L-1`; rescale or mod-switch
/// fresh full-level ciphertexts once before relinearizing or rotating
/// (Evaluator enforces this).
///
/// ## Hoisting (ARK-style digit reuse)
///
/// A rotation key-switches `sigma_g(c1)`. Since the automorphism acts on
/// the NTT evaluation points as a pure permutation, and digit extraction
/// commutes with it, the expensive part — extraction, RNS expansion and
/// the per-digit NTTs — can run *once* per input and be reused across
/// every requested rotation: `decompose()` materializes the evaluation-
/// domain digits, and each `accumulate()` applies its own permutation
/// while multiplying against its key. That amortizes the `l*(l+1)` digit
/// NTTs across the whole step set — each extra rotation pays only the
/// dyadic accumulation and the fixed mod-down NTT pair — which is why
/// `Evaluator::rotate_many` beats per-step rotation
/// (bench/bench_keyswitch.cpp measures the gain).
///
/// One consequence of standardizing on hoisted form: rotations always
/// decompose the *unrotated* component and permute digits during
/// accumulation. Decomposing `sigma(c1)` instead would pick the other
/// (equally valid) integer lift of the digits — correct, but a different
/// ciphertext — so the single-rotation path uses the same order, making
/// `rotate` and `rotate_many` bit-identical by construction.
///
/// Determinism: every stage partitions work per (digit, limb) or per limb
/// with no cross-worker accumulation, so results are bit-identical for any
/// backend and worker count — the repo-wide contract.

#include <memory>
#include <optional>
#include <vector>

#include "ckks/ciphertext.hpp"
#include "ckks/context.hpp"
#include "ckks/keygen.hpp"
#include "rns/modulus.hpp"

namespace abc::ckks {

/// Reusable buffers for the key-switching hot path; after the first call
/// at a given level no stage allocates. One per concurrent caller (the
/// switcher itself is stateless and thread-safe against distinct scratch
/// objects, mirroring Encryptor::encrypt_with).
struct KeySwitchScratch {
  std::size_t level = 0;      // limbs of the decomposed input
  std::vector<u64> w;         // [level][n] scaled digits (P*c mod q_d), coeff
  std::vector<u64> digits;    // [level][level+1][n] expanded digits, eval
  std::vector<u64> acc_p0;    // [n] special-limb accumulator of out0
  std::vector<u64> acc_p1;    // [n] special-limb accumulator of out1
  std::vector<u64> tmp;       // [workers][n] per-worker staging
  std::vector<u32> perm;      // eval-domain automorphism table
  std::optional<poly::RnsPoly> work;  // component staging (INTT / sigma(c0))
  // Observability only: true once an accumulate() consumed the staged
  // digits, so a second accumulate() against the same decomposition is
  // countable as a hoist reuse (keyswitch.hoist_reuses).
  bool staged_consumed = false;
};

/// Permutation table applying sigma_g directly in the evaluation domain:
/// position p of an NTT-form limb holds the evaluation at
/// psi^{2*bitrev(p)+1}, and the automorphism just relabels evaluation
/// points, so `out[p] = in[table[p]]` with no sign corrections. Bit-exact
/// counterpart of coefficient-domain RnsPoly::automorphism + NTT (tested
/// in tests/test_keyswitch.cpp). Requires an odd @p galois_elt < 2N.
void build_galois_eval_table(int log_n, u32 galois_elt,
                             std::vector<u32>& table);

/// dst = sigma(src) in the evaluation domain via a prebuilt table; dst is
/// reset to src's limb count. Limbs fan out across the backend.
void apply_galois_eval(const poly::RnsPoly& src, std::span<const u32> table,
                       poly::RnsPoly& dst);

class KeySwitcher {
 public:
  explicit KeySwitcher(std::shared_ptr<const CkksContext> ctx);

  /// Index of the reserved special prime (the chain's last limb).
  std::size_t special_prime_index() const noexcept { return special_; }

  /// Highest level (limb count) a switchable ciphertext may have.
  std::size_t max_switchable_limbs() const noexcept { return special_; }

  /// Digit-decomposes @p c_coeff (coefficient domain, limbs <=
  /// max_switchable_limbs()) into evaluation-domain expanded digits held
  /// in @p scratch. The digits depend only on the input — hoist one
  /// decomposition across any number of accumulate() calls (many
  /// rotations of the same ciphertext reuse it, ARK-style).
  void decompose(const poly::RnsPoly& c_coeff,
                 KeySwitchScratch& scratch) const;

  /// Accumulates the decomposed digits against @p key and divides by the
  /// special modulus: out0/out1 come out as level-limb evaluation-form
  /// polynomials with `out0 + out1*s ~= c*s'` (noise as documented above).
  /// A non-empty @p eval_perm applies sigma to every digit in the
  /// evaluation domain first (the hoisted rotation path); the stored
  /// digits are never modified, so one decomposition serves many calls.
  void accumulate(const KeySwitchKey& key, std::span<const u32> eval_perm,
                  KeySwitchScratch& scratch, poly::RnsPoly& out0,
                  poly::RnsPoly& out1) const;

  /// decompose() + accumulate() in one call (relinearization, single
  /// rotation).
  void switch_key(const poly::RnsPoly& c_coeff, const KeySwitchKey& key,
                  KeySwitchScratch& scratch, poly::RnsPoly& out0,
                  poly::RnsPoly& out1) const;

 private:
  std::shared_ptr<const CkksContext> ctx_;
  std::size_t special_ = 0;            // index of P = q_{L-1}
  std::vector<rns::ShoupMul> p_mod_;   // P mod q_d, digit scaling
  std::vector<rns::ShoupMul> p_inv_;   // P^{-1} mod q_j, mod-down
  std::vector<u64> half_mod_;          // (P >> 1) mod q_j, rounding
};

}  // namespace abc::ckks
