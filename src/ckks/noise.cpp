#include "ckks/noise.hpp"

#include <cmath>

namespace abc::ckks {

double fresh_noise_bound(const CkksParams& params, EncryptMode mode) {
  const double n = static_cast<double>(params.n());
  const double sigma = params.error_sigma;
  const double tail = 6.0;  // CDT tail cut
  if (mode == EncryptMode::kSymmetricSeeded) {
    // c0 = -(a s) + m + e: decryption phase noise is just e.
    return tail * sigma * std::sqrt(n);
  }
  // Public key: phase noise = u*e_pk + e0 + s*e1. With ternary u and s of
  // expected Hamming weight 2N/3, each convolution term has canonical norm
  // ~ tail * sigma * sqrt(N) * sqrt(h).
  const double h = 2.0 * n / 3.0;
  return tail * sigma * std::sqrt(n) * (2.0 * std::sqrt(h) + 1.0);
}

double fresh_precision_bound_bits(const CkksParams& params,
                                  EncryptMode mode) {
  const double bound =
      slot_error_bound(fresh_noise_bound(params, mode), params.scale());
  return -std::log2(bound);
}

double keyswitch_noise_bound(const CkksParams& params, std::size_t limbs) {
  // Digit errors: each of the `limbs` digits contributes ext_d(c) * e_d
  // with ext_d uniform in [0, q_d); after the division by P the canonical
  // norm of one term is ~ tail * sigma * N * (q_d / P) / sqrt(12). The
  // prime chain is near-uniform in magnitude, so q_d / P ~ 1.
  const double n = static_cast<double>(params.n());
  const double tail = 6.0;
  const double digit_term =
      tail * params.error_sigma * n / std::sqrt(12.0);
  // Mod-down rounding: eps/P convolves with (1, s); with ternary s of
  // expected weight 2N/3 that is ~ tail * sqrt(N * h / 12).
  const double h = 2.0 * n / 3.0;
  const double round_term = tail * std::sqrt(n * h / 12.0);
  return static_cast<double>(limbs) * digit_term + round_term;
}

namespace {

double default_verify_bound(const CkksContext& ctx, const Ciphertext& ct) {
  return slot_error_bound(
      fresh_noise_bound(ctx.params(), EncryptMode::kPublicKey) +
          keyswitch_noise_bound(ctx.params(), ct.limbs()),
      ct.scale);
}

double max_slot_error(std::span<const std::complex<double>> decoded,
                      std::span<const std::complex<double>> reference) {
  ABC_CHECK_ARG(reference.size() <= decoded.size(),
                "more expected slots than the ciphertext decodes to");
  double max_err = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    max_err = std::max(max_err, std::abs(decoded[i] - reference[i]));
  }
  return max_err;
}

VerifyReport fold_report(double bound, double max_abs_error) {
  VerifyReport report;
  report.bound = bound;
  report.max_abs_error = max_abs_error;
  report.ok = max_abs_error <= bound;
  report.precision_bits =
      max_abs_error > 0.0 ? -std::log2(max_abs_error) : 60.0;
  return report;
}

}  // namespace

VerifyReport verify_decode(const CkksContext& ctx, const Ciphertext& ct,
                           Decryptor& decryptor, const CkksEncoder& encoder,
                           std::span<const std::complex<double>> expected,
                           double bound) {
  return fold_report(bound > 0.0 ? bound : default_verify_bound(ctx, ct),
                     measured_slot_noise(ct, decryptor, encoder, expected));
}

VerifyReport verify_decode(const CkksContext& ctx, const Ciphertext& ct,
                           const Decryptor& decryptor,
                           const CkksEncoder& encoder,
                           std::span<const std::complex<double>> expected,
                           double bound, DecryptScratch& scratch) {
  return fold_report(
      bound > 0.0 ? bound : default_verify_bound(ctx, ct),
      measured_slot_noise(ct, decryptor, encoder, expected, scratch));
}

double measured_slot_noise(const Ciphertext& ct, Decryptor& decryptor,
                           const CkksEncoder& encoder,
                           std::span<const std::complex<double>> reference) {
  return max_slot_error(encoder.decode(decryptor.decrypt(ct)), reference);
}

double measured_slot_noise(const Ciphertext& ct, const Decryptor& decryptor,
                           const CkksEncoder& encoder,
                           std::span<const std::complex<double>> reference,
                           DecryptScratch& scratch) {
  return max_slot_error(encoder.decode(decryptor.decrypt_with(ct, scratch)),
                        reference);
}

}  // namespace abc::ckks
