#include "ckks/noise.hpp"

#include <cmath>

namespace abc::ckks {

double fresh_noise_bound(const CkksParams& params, EncryptMode mode) {
  const double n = static_cast<double>(params.n());
  const double sigma = params.error_sigma;
  const double tail = 6.0;  // CDT tail cut
  if (mode == EncryptMode::kSymmetricSeeded) {
    // c0 = -(a s) + m + e: decryption phase noise is just e.
    return tail * sigma * std::sqrt(n);
  }
  // Public key: phase noise = u*e_pk + e0 + s*e1. With ternary u and s of
  // expected Hamming weight 2N/3, each convolution term has canonical norm
  // ~ tail * sigma * sqrt(N) * sqrt(h).
  const double h = 2.0 * n / 3.0;
  return tail * sigma * std::sqrt(n) * (2.0 * std::sqrt(h) + 1.0);
}

double fresh_precision_bound_bits(const CkksParams& params,
                                  EncryptMode mode) {
  const double bound =
      slot_error_bound(fresh_noise_bound(params, mode), params.scale());
  return -std::log2(bound);
}

double measured_slot_noise(const Ciphertext& ct, Decryptor& decryptor,
                           const CkksEncoder& encoder,
                           std::span<const std::complex<double>> reference) {
  const Plaintext pt = decryptor.decrypt(ct);
  const auto decoded = encoder.decode(pt);
  double max_err = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    max_err = std::max(max_err, std::abs(decoded[i] - reference[i]));
  }
  return max_err;
}

}  // namespace abc::ckks
