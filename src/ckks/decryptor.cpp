#include "ckks/decryptor.hpp"

namespace abc::ckks {

Decryptor::Decryptor(std::shared_ptr<const CkksContext> ctx,
                     const SecretKey& sk)
    : ctx_(std::move(ctx)), sk_eval_(sk.s) {
  ABC_CHECK_ARG(ctx_ != nullptr, "null context");
}

Plaintext Decryptor::decrypt(const Ciphertext& ct) {
  ABC_CHECK_ARG(ct.size() == 2 || ct.size() == 3,
                "ciphertext must have 2 or 3 components");
  const std::size_t limbs = ct.limbs();
  const poly::RnsPoly s = sk_eval_.prefix_copy(limbs);

  // phase = c0 + c1*s (+ c2*s^2)
  poly::RnsPoly phase = ct.c(0);
  phase.fma_inplace(ct.c(1), s);
  if (ct.size() == 3) {
    poly::RnsPoly s2 = s;
    s2.mul_inplace(s);
    phase.fma_inplace(ct.c(2), s2);
  }
  phase.to_coeff();
  return Plaintext{std::move(phase), ct.scale};
}

}  // namespace abc::ckks
