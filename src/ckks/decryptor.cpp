#include "ckks/decryptor.hpp"

namespace abc::ckks {

DecryptScratch::DecryptScratch(const CkksContext& ctx)
    : s_(ctx.make_poly(1, poly::Domain::kEval)),
      s2_(ctx.make_poly(1, poly::Domain::kEval)) {}

Decryptor::Decryptor(std::shared_ptr<const CkksContext> ctx,
                     const SecretKey& sk)
    : ctx_(std::move(ctx)), sk_eval_(sk.s), scratch_([this] {
        ABC_CHECK_ARG(ctx_ != nullptr, "null context");
        return DecryptScratch(*ctx_);
      }()) {}

Plaintext Decryptor::decrypt(const Ciphertext& ct) {
  return decrypt_with(ct, scratch_);
}

Plaintext Decryptor::decrypt_with(const Ciphertext& ct,
                                  DecryptScratch& s) const {
  ABC_CHECK_ARG(ct.size() == 2 || ct.size() == 3,
                "ciphertext must have 2 or 3 components");
  const std::size_t limbs = ct.limbs();
  ABC_CHECK_ARG(limbs >= 1 && limbs <= sk_eval_.limbs(),
                "ciphertext level exceeds the key's limb count");
  for (std::size_t c = 1; c < ct.size(); ++c) {
    ABC_CHECK_ARG(ct.c(c).limbs() == limbs,
                  "ciphertext components disagree on the level");
  }
  s.s_.assign_prefix(sk_eval_, limbs);

  // phase = c0 + c1*s (+ c2*s^2), built in one fused pass instead of
  // copying c0 and re-streaming it through fma; the result is the
  // returned plaintext.
  poly::RnsPoly phase(ct.c(0).context_ptr(), limbs, poly::Domain::kEval);
  phase.set_fma(ct.c(0), ct.c(1), s.s_);
  if (ct.size() == 3) {
    s.s2_.assign_prefix(s.s_, limbs);
    s.s2_.mul_inplace(s.s_);
    phase.fma_inplace(ct.c(2), s.s2_);
  }
  phase.to_coeff();
  return Plaintext{std::move(phase), ct.scale};
}

}  // namespace abc::ckks
