#pragma once

/// @file key_source.hpp
/// The key lookup seam between the evaluator and whoever owns the key
/// material. The eager path (client-side GaloisKeys/RelinKey structs held
/// fully expanded in memory) and the serving daemon's on-demand path
/// (seed-compressed records expanded into a bounded shared cache,
/// src/server/key_cache.hpp) implement the same interface, so every
/// key-consuming operation has exactly one code path — which is what makes
/// cached responses bit-identical to eager ones by construction.
///
/// Lookup returns a shared_ptr acting as a *pin*: the key stays valid (and,
/// for a caching source, ineligible for eviction) for as long as the
/// handle is held. Eager sources hand out non-owning aliases (the caller
/// already guarantees the struct outlives the call, as before); the key
/// cache hands out handles whose destructor unpins the cache entry.
///
/// has_galois_key() is the cheap fail-fast probe: it must not regenerate
/// or pin anything, so rotate_many can validate its whole step set before
/// decomposing — and then pin keys one at a time, keeping its cache
/// footprint at one key no matter how many rotations are requested.

#include <memory>

#include "ckks/keygen.hpp"

namespace abc::ckks {

class KeySource {
 public:
  virtual ~KeySource() = default;

  /// Pinned handle to the Galois key covering @p step (matched modulo the
  /// slot count, exactly like GaloisKeys::key_for). Throws InvalidArgument
  /// when no registered key covers the step; may also propagate a
  /// regeneration failure (typed, per-request) from an on-demand source.
  virtual std::shared_ptr<const KeySwitchKey> galois_key(int step) const = 0;

  /// Pinned handle to the relinearization key; throws InvalidArgument when
  /// the source has none.
  virtual std::shared_ptr<const KeySwitchKey> relin_key() const = 0;

  /// True when galois_key(step) would resolve — without regenerating,
  /// pinning, or throwing.
  virtual bool has_galois_key(int step) const noexcept = 0;
};

/// KeySource over fully expanded key structs. Non-owning: the referenced
/// GaloisKeys/RelinKey must outlive every handle this source returns (the
/// same lifetime contract the evaluator's reference-taking overloads
/// always had — those overloads are now thin wrappers over this adapter).
class EagerKeySource final : public KeySource {
 public:
  EagerKeySource(const GaloisKeys* gks, const RelinKey* rlk)
      : gks_(gks), rlk_(rlk) {}

  std::shared_ptr<const KeySwitchKey> galois_key(int step) const override {
    ABC_CHECK_ARG(gks_ != nullptr, "this key source has no Galois keys");
    // Aliasing a default-constructed owner: a valid non-owning shared_ptr
    // (no control block, no atomics) — the pin is a no-op by design here.
    return std::shared_ptr<const KeySwitchKey>(
        std::shared_ptr<const void>(), &gks_->key_for(step));
  }

  std::shared_ptr<const KeySwitchKey> relin_key() const override {
    ABC_CHECK_ARG(rlk_ != nullptr, "this key source has no relin key");
    return std::shared_ptr<const KeySwitchKey>(std::shared_ptr<const void>(),
                                               &rlk_->key);
  }

  bool has_galois_key(int step) const noexcept override {
    return gks_ != nullptr && gks_->find(step) != nullptr;
  }

 private:
  const GaloisKeys* gks_;
  const RelinKey* rlk_;
};

}  // namespace abc::ckks
