#include "ckks/evaluator.hpp"

#include <cmath>

namespace abc::ckks {
namespace {

void check_binop(const Ciphertext& a, const Ciphertext& b) {
  ABC_CHECK_ARG(a.limbs() == b.limbs(), "level mismatch");
  ABC_CHECK_ARG(std::abs(a.scale - b.scale) <=
                    1e-9 * std::max(a.scale, b.scale),
                "scale mismatch");
}

}  // namespace

Evaluator::Evaluator(std::shared_ptr<const CkksContext> ctx)
    : ctx_(std::move(ctx)) {
  ABC_CHECK_ARG(ctx_ != nullptr, "null context");
}

Ciphertext Evaluator::add(const Ciphertext& a, const Ciphertext& b) const {
  check_binop(a, b);
  ABC_CHECK_ARG(a.size() == b.size(), "component count mismatch");
  Ciphertext out = a;
  out.compressed_c1.reset();  // result c1 is an explicit polynomial now
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.c(i).add_inplace(b.c(i));
  }
  return out;
}

Ciphertext Evaluator::sub(const Ciphertext& a, const Ciphertext& b) const {
  check_binop(a, b);
  ABC_CHECK_ARG(a.size() == b.size(), "component count mismatch");
  Ciphertext out = a;
  out.compressed_c1.reset();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.c(i).sub_inplace(b.c(i));
  }
  return out;
}

Ciphertext Evaluator::add_plain(const Ciphertext& ct,
                                const Plaintext& pt) const {
  ABC_CHECK_ARG(ct.limbs() == pt.limbs(), "level mismatch");
  ABC_CHECK_ARG(std::abs(ct.scale - pt.scale) <=
                    1e-9 * std::max(ct.scale, pt.scale),
                "scale mismatch");
  poly::RnsPoly m = pt.poly;
  m.to_eval();
  Ciphertext out = ct;
  out.c(0).add_inplace(m);
  return out;
}

Ciphertext Evaluator::mul_plain(const Ciphertext& ct,
                                const Plaintext& pt) const {
  ABC_CHECK_ARG(ct.limbs() == pt.limbs(), "level mismatch");
  poly::RnsPoly m = pt.poly;
  m.to_eval();
  Ciphertext out = ct;
  out.compressed_c1.reset();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.c(i).mul_inplace(m);
  }
  out.scale = ct.scale * pt.scale;
  return out;
}

Ciphertext Evaluator::mul(const Ciphertext& a, const Ciphertext& b) const {
  ABC_CHECK_ARG(a.size() == 2 && b.size() == 2,
                "only 2-component inputs supported (relinearize first)");
  ABC_CHECK_ARG(a.limbs() == b.limbs(), "level mismatch");
  poly::RnsPoly c0 = a.c(0);
  c0.mul_inplace(b.c(0));
  poly::RnsPoly c1 = a.c(0);
  c1.mul_inplace(b.c(1));
  c1.fma_inplace(a.c(1), b.c(0));
  poly::RnsPoly c2 = a.c(1);
  c2.mul_inplace(b.c(1));
  return Ciphertext{{std::move(c0), std::move(c1), std::move(c2)},
                    a.scale * b.scale,
                    std::nullopt};
}

void Evaluator::rescale_poly(poly::RnsPoly& p) const {
  const std::size_t last = p.limbs() - 1;
  const poly::PolyContext& pctx = *ctx_->poly_context();
  const rns::Modulus& q_last = pctx.modulus(last);

  // Bring the last limb back to coefficients.
  std::vector<u64> c_last(p.limb(last).begin(), p.limb(last).end());
  pctx.ntt(last).inverse(c_last);

  // Shift into [0, q_last) "rounded" position: add floor(q_last / 2) so the
  // later floor-division by q_last becomes round-to-nearest.
  const u64 half = q_last.value() >> 1;
  for (u64& v : c_last) v = q_last.add(v, half);

  std::vector<u64> tmp(p.n());
  for (std::size_t i = 0; i < last; ++i) {
    const rns::Modulus& qi = pctx.modulus(i);
    const u64 half_mod_qi = qi.reduce(half);
    const u64 inv_q_last = qi.inv(qi.reduce(q_last.value()));
    // tmp = NTT_i( (c_last + half) mod q_i - half )
    for (std::size_t j = 0; j < tmp.size(); ++j) {
      tmp[j] = qi.sub(qi.reduce(c_last[j]), half_mod_qi);
    }
    pctx.ntt(i).forward(tmp);
    // c_i = (c_i - tmp) * q_last^{-1} mod q_i
    std::span<u64> dst = p.limb(i);
    const rns::ShoupMul inv = rns::ShoupMul::make(inv_q_last, qi);
    for (std::size_t j = 0; j < dst.size(); ++j) {
      dst[j] = inv.mul(qi.sub(dst[j], tmp[j]), qi.value());
    }
  }
  p.drop_last_limb();
}

void Evaluator::rescale_inplace(Ciphertext& ct) const {
  ABC_CHECK_ARG(ct.limbs() >= 2, "cannot rescale a level-1 ciphertext");
  ABC_CHECK_ARG(!ct.compressed_c1.has_value(),
                "decompress c1 before rescaling");
  const std::size_t last = ct.limbs() - 1;
  const double q_last = static_cast<double>(
      ctx_->poly_context()->modulus(last).value());
  for (std::size_t i = 0; i < ct.size(); ++i) rescale_poly(ct.c(i));
  ct.scale /= q_last;
}

void Evaluator::mod_switch_to_inplace(Ciphertext& ct,
                                      std::size_t target_limbs) const {
  ABC_CHECK_ARG(target_limbs >= 1 && target_limbs <= ct.limbs(),
                "invalid target level");
  for (std::size_t i = 0; i < ct.size(); ++i) {
    ct.c(i) = ct.c(i).prefix_copy(target_limbs);
  }
}

}  // namespace abc::ckks
