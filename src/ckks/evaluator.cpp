#include "ckks/evaluator.hpp"

#include <cmath>

#include "backend/poly_backend.hpp"
#include "ckks/key_source.hpp"
#include "simd/dyadic_kernels.hpp"

namespace abc::ckks {
namespace {

void check_binop(const Ciphertext& a, const Ciphertext& b) {
  ABC_CHECK_ARG(a.limbs() == b.limbs(), "level mismatch");
  ABC_CHECK_ARG(std::abs(a.scale - b.scale) <=
                    1e-9 * std::max(a.scale, b.scale),
                "scale mismatch");
}

}  // namespace

Evaluator::Evaluator(std::shared_ptr<const CkksContext> ctx)
    : ctx_(ctx), switcher_(std::move(ctx)) {
  ABC_CHECK_ARG(ctx_ != nullptr, "null context");
  const poly::PolyContext& pctx = *ctx_->poly_context();
  rescale_consts_.resize(ctx_->max_limbs());
  for (std::size_t last = 1; last < ctx_->max_limbs(); ++last) {
    const rns::Modulus& q_last = pctx.modulus(last);
    const u64 half = q_last.value() >> 1;
    std::vector<RescaleConst>& row = rescale_consts_[last];
    row.reserve(last);
    for (std::size_t i = 0; i < last; ++i) {
      const rns::Modulus& qi = pctx.modulus(i);
      row.push_back(RescaleConst{
          rns::ShoupMul::make(qi.inv(qi.reduce(q_last.value())), qi),
          qi.reduce(half)});
    }
  }
}

void Evaluator::relinearize_inplace(Ciphertext& ct, const RelinKey& rlk,
                                    KeySwitchScratch* scratch) const {
  relinearize_inplace(ct, rlk.key, scratch);
}

void Evaluator::relinearize_inplace(Ciphertext& ct, const KeySource& keys,
                                    KeySwitchScratch* scratch) const {
  // Shape check before the source resolves anything: a malformed request
  // must not cost a cache miss (or pin a key it will never use).
  ABC_CHECK_ARG(ct.size() == 3,
                "relinearization expects an unreduced 3-component product");
  const std::shared_ptr<const KeySwitchKey> key = keys.relin_key();
  relinearize_inplace(ct, *key, scratch);
}

void Evaluator::relinearize_inplace(Ciphertext& ct, const KeySwitchKey& rlk,
                                    KeySwitchScratch* scratch) const {
  ABC_CHECK_ARG(ct.size() == 3,
                "relinearization expects an unreduced 3-component product");
  ABC_CHECK_ARG(rlk.kind == KeySwitchKey::Kind::kRelin,
                "not a relinearization key");
  const std::size_t limbs = ct.limbs();
  // Every check accumulate() would make, hoisted up front: nothing below
  // may throw after ct starts mutating (a caller catching mid-way would
  // otherwise hold a 2-component ciphertext that decrypts to garbage).
  ABC_CHECK_ARG(rlk.digits() >= limbs && !rlk.b.empty() &&
                    rlk.b[0].limbs() == ctx_->max_limbs(),
                "relin key does not cover this ciphertext");
  KeySwitchScratch local;
  KeySwitchScratch& s = scratch ? *scratch : local;
  if (!s.work) s.work.emplace(ctx_->make_poly(limbs, poly::Domain::kEval));
  poly::RnsPoly& c2 = *s.work;
  c2.assign_prefix(ct.c(2), limbs);
  c2.to_coeff();
  switcher_.decompose(c2, s);  // throws on full-level inputs (reserved
                               // special prime) — still before mutation
  // Reuse the retiring third component and the staging polynomial (free
  // once the digits are extracted) as the key-switch output buffers: with
  // external scratch the whole relinearization is allocation-free.
  poly::RnsPoly ks0 = std::move(ct.components.back());
  ct.components.pop_back();
  switcher_.accumulate(rlk, {}, s, ks0, c2);
  ct.c(0).add_inplace(ks0);
  ct.c(1).add_inplace(c2);
  ct.compressed_c1.reset();
}

/// Shared body of rotate()/rotate_many(): expects scratch.digits to hold
/// the decomposition of the *unrotated* c1; the step's automorphism is
/// applied to the digits inside the accumulation (evaluation-domain
/// permutation) and to c0 directly. Rotation always runs on un-rotated
/// digits — decomposing sigma(c1) instead would pick the other (equally
/// valid) integer lift of the digits and produce a different-but-
/// equivalent ciphertext; standardizing on this form is what makes one
/// hoisted decomposition serve every step bit-identically to single
/// rotations.
void Evaluator::rotate_into(const Ciphertext& ct, const KeySwitchKey& key,
                            KeySwitchScratch& s, Ciphertext& out) const {
  ABC_CHECK_ARG(key.kind == KeySwitchKey::Kind::kGalois, "not a Galois key");
  const std::size_t limbs = ct.limbs();
  poly::RnsPoly ks0 = ctx_->make_poly(limbs, poly::Domain::kEval);
  poly::RnsPoly ks1 = ctx_->make_poly(limbs, poly::Domain::kEval);
  build_galois_eval_table(ctx_->params().log_n, key.galois_elt, s.perm);
  switcher_.accumulate(key, s.perm, s, ks0, ks1);
  // out c0 = sigma(c0) + ks0, applied in the evaluation domain.
  if (!s.work) s.work.emplace(ctx_->make_poly(limbs, poly::Domain::kEval));
  apply_galois_eval(ct.c(0), s.perm, *s.work);
  ks0.add_inplace(*s.work);
  out.components.clear();
  out.components.push_back(std::move(ks0));
  out.components.push_back(std::move(ks1));
  out.scale = ct.scale;
  out.compressed_c1.reset();
}

/// Stages the decomposition of ct's c1 into @p s (the hoistable part of
/// every rotation).
void Evaluator::decompose_c1(const Ciphertext& ct,
                             KeySwitchScratch& s) const {
  ABC_CHECK_ARG(ct.size() == 2, "rotation expects 2 components "
                                "(relinearize products first)");
  const std::size_t limbs = ct.limbs();
  if (!s.work) s.work.emplace(ctx_->make_poly(limbs, poly::Domain::kEval));
  s.work->assign_prefix(ct.c(1), limbs);
  s.work->to_coeff();
  switcher_.decompose(*s.work, s);
}

Ciphertext Evaluator::rotate(const Ciphertext& ct, int step,
                             const GaloisKeys& gks,
                             KeySwitchScratch* scratch) const {
  // Resolved before the expensive decomposition: a missing key fails fast.
  return rotate(ct, gks.key_for(step), scratch);
}

Ciphertext Evaluator::rotate(const Ciphertext& ct, const KeySwitchKey& key,
                             KeySwitchScratch* scratch) const {
  KeySwitchScratch local;
  KeySwitchScratch& s = scratch ? *scratch : local;
  decompose_c1(ct, s);
  Ciphertext out;
  rotate_into(ct, key, s, out);
  return out;
}

Ciphertext Evaluator::rotate(const Ciphertext& ct, int step,
                             const KeySource& keys,
                             KeySwitchScratch* scratch) const {
  // Pin first: the source's lookup failure (missing key, regeneration
  // error) surfaces before any decomposition work.
  const std::shared_ptr<const KeySwitchKey> key = keys.galois_key(step);
  return rotate(ct, *key, scratch);
}

std::vector<Ciphertext> Evaluator::rotate_many(const Ciphertext& ct,
                                               std::span<const int> steps,
                                               const GaloisKeys& gks,
                                               KeySwitchScratch* scratch) const {
  return rotate_many(ct, steps, EagerKeySource(&gks, nullptr), scratch);
}

std::vector<Ciphertext> Evaluator::rotate_many(const Ciphertext& ct,
                                               std::span<const int> steps,
                                               const KeySource& keys,
                                               KeySwitchScratch* scratch) const {
  KeySwitchScratch local;
  KeySwitchScratch& s = scratch ? *scratch : local;
  std::vector<Ciphertext> out(steps.size());
  if (steps.empty()) return out;
  for (const int step : steps) {  // fail fast, without pinning anything
    if (!keys.has_galois_key(step)) {
      throw InvalidArgument("no Galois key generated for this step");
    }
  }
  decompose_c1(ct, s);  // once; every step reuses the digits
  for (std::size_t i = 0; i < steps.size(); ++i) {
    // One key pinned at a time: a caching source's footprint for a hoisted
    // batch stays at a single resident key.
    const std::shared_ptr<const KeySwitchKey> key = keys.galois_key(steps[i]);
    rotate_into(ct, *key, s, out[i]);
  }
  return out;
}

Ciphertext Evaluator::add(const Ciphertext& a, const Ciphertext& b) const {
  check_binop(a, b);
  ABC_CHECK_ARG(a.size() == b.size(), "component count mismatch");
  Ciphertext out = a;
  out.compressed_c1.reset();  // result c1 is an explicit polynomial now
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.c(i).add_inplace(b.c(i));
  }
  return out;
}

Ciphertext Evaluator::sub(const Ciphertext& a, const Ciphertext& b) const {
  check_binop(a, b);
  ABC_CHECK_ARG(a.size() == b.size(), "component count mismatch");
  Ciphertext out = a;
  out.compressed_c1.reset();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.c(i).sub_inplace(b.c(i));
  }
  return out;
}

Ciphertext Evaluator::add_plain(const Ciphertext& ct,
                                const Plaintext& pt) const {
  ABC_CHECK_ARG(ct.limbs() == pt.limbs(), "level mismatch");
  ABC_CHECK_ARG(std::abs(ct.scale - pt.scale) <=
                    1e-9 * std::max(ct.scale, pt.scale),
                "scale mismatch");
  poly::RnsPoly m = pt.poly;
  m.to_eval();
  Ciphertext out = ct;
  out.c(0).add_inplace(m);
  return out;
}

Ciphertext Evaluator::mul_plain(const Ciphertext& ct,
                                const Plaintext& pt) const {
  ABC_CHECK_ARG(ct.limbs() == pt.limbs(), "level mismatch");
  poly::RnsPoly m = pt.poly;
  m.to_eval();
  Ciphertext out = ct;
  out.compressed_c1.reset();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.c(i).mul_inplace(m);
  }
  out.scale = ct.scale * pt.scale;
  return out;
}

Ciphertext Evaluator::mul(const Ciphertext& a, const Ciphertext& b) const {
  ABC_CHECK_ARG(a.size() == 2 && b.size() == 2,
                "only 2-component inputs supported (relinearize first)");
  ABC_CHECK_ARG(a.limbs() == b.limbs(), "level mismatch");
  poly::RnsPoly c0 = a.c(0);
  c0.mul_inplace(b.c(0));
  poly::RnsPoly c1 = a.c(0);
  c1.mul_inplace(b.c(1));
  c1.fma_inplace(a.c(1), b.c(0));
  poly::RnsPoly c2 = a.c(1);
  c2.mul_inplace(b.c(1));
  return Ciphertext{{std::move(c0), std::move(c1), std::move(c2)},
                    a.scale * b.scale,
                    std::nullopt};
}

void Evaluator::rescale_poly(poly::RnsPoly& p) const {
  const std::size_t last = p.limbs() - 1;
  const poly::PolyContext& pctx = *ctx_->poly_context();
  const rns::Modulus& q_last = pctx.modulus(last);

  // Bring the last limb back to coefficients.
  std::vector<u64> c_last(p.limb(last).begin(), p.limb(last).end());
  pctx.ntt(last).inverse(c_last);

  // Shift into [0, q_last) "rounded" position: add floor(q_last / 2) so the
  // later floor-division by q_last becomes round-to-nearest.
  const u64 half = q_last.value() >> 1;
  for (u64& v : c_last) v = q_last.add(v, half);

  // Per-limb correction, fanned out across the backend (each limb owns its
  // output and a per-worker staging buffer, so the result is bit-identical
  // at any worker count). Constants come from the constructor cache.
  backend::PolyBackend& be = pctx.backend();
  const std::size_t n = p.n();
  std::vector<u64> tmp(be.workers() * n);
  const std::vector<RescaleConst>& consts = rescale_consts_[last];
  be.parallel_for(last, [&](std::size_t i, std::size_t worker) {
    const rns::Modulus& qi = pctx.modulus(i);
    const RescaleConst& rc = consts[i];
    const std::span<u64> t(tmp.data() + worker * n, n);
    // t = NTT_i( (c_last + half) mod q_i - half )
    for (std::size_t j = 0; j < n; ++j) {
      t[j] = qi.sub(qi.reduce(c_last[j]), rc.half_mod_qi);
    }
    pctx.ntt(i).forward(t);
    // c_i = (c_i - t) * q_last^{-1} mod q_i, one fused pass.
    simd::dyadic_sub_mul_scalar(pctx.dyadic(i), p.limb(i).data(), t.data(),
                                n, rc.inv_q_last.operand,
                                rc.inv_q_last.quotient);
  });
  p.drop_last_limb();
}

void Evaluator::rescale_inplace(Ciphertext& ct) const {
  ABC_CHECK_ARG(ct.limbs() >= 2, "cannot rescale a level-1 ciphertext");
  ABC_CHECK_ARG(!ct.compressed_c1.has_value(),
                "decompress c1 before rescaling");
  const std::size_t last = ct.limbs() - 1;
  const double q_last = static_cast<double>(
      ctx_->poly_context()->modulus(last).value());
  for (std::size_t i = 0; i < ct.size(); ++i) rescale_poly(ct.c(i));
  ct.scale /= q_last;
}

void Evaluator::mod_switch_to_inplace(Ciphertext& ct,
                                      std::size_t target_limbs) const {
  ABC_CHECK_ARG(target_limbs >= 1 && target_limbs <= ct.limbs(),
                "invalid target level");
  for (std::size_t i = 0; i < ct.size(); ++i) {
    ct.c(i) = ct.c(i).prefix_copy(target_limbs);
  }
}

}  // namespace abc::ckks
