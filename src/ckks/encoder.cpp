#include "ckks/encoder.hpp"

#include <cmath>

#include "common/check.hpp"
#include "rns/rns_basis.hpp"
#include "transform/softfloat.hpp"

namespace abc::ckks {

using xf::Cx;
using xf::Rounded;

CkksEncoder::CkksEncoder(std::shared_ptr<const CkksContext> ctx)
    : ctx_(std::move(ctx)) {
  ABC_CHECK_ARG(ctx_ != nullptr, "null context");
}

template <class F>
std::vector<i64> CkksEncoder::embed_and_round(
    std::span<const std::complex<double>> values) const {
  const xf::CkksDwtPlan& plan = ctx_->dwt();
  const std::size_t n = ctx_->n();
  const std::size_t slot_count = ctx_->slots();
  ABC_CHECK_ARG(values.size() <= slot_count, "too many values for slot count");

  std::vector<Cx<F>> buf(n, Cx<F>{F(0.0), F(0.0)});
  const auto map = plan.index_map();
  for (std::size_t i = 0; i < values.size(); ++i) {
    buf[map[i]] = Cx<F>{F(values[i].real()), F(values[i].imag())};
    buf[map[slot_count + i]] = Cx<F>{F(values[i].real()), F(-values[i].imag())};
  }
  plan.inverse(std::span<Cx<F>>(buf));

  const double scale = ctx_->params().scale();
  std::vector<i64> coeffs(n);
  for (std::size_t j = 0; j < n; ++j) {
    const F scaled = buf[j].re * F(scale);
    const double v = xf::as_double(scaled);
    ABC_CHECK_ARG(std::abs(v) < 0x1.0p62,
                  "encoded coefficient overflows 63 bits; reduce input "
                  "magnitude or scale");
    coeffs[j] = std::llround(v);
  }
  xf::op_counts().other += n;  // rounding pass
  return coeffs;
}

Plaintext CkksEncoder::encode(std::span<const std::complex<double>> values,
                              std::size_t limbs) const {
  const std::vector<i64> coeffs = embed_and_round<double>(values);
  Plaintext pt{ctx_->make_poly(limbs, poly::Domain::kCoeff),
               ctx_->params().scale()};
  pt.poly.set_from_signed(coeffs);
  return pt;
}

Plaintext CkksEncoder::encode_real(std::span<const double> values,
                                   std::size_t limbs) const {
  std::vector<std::complex<double>> cx(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) cx[i] = {values[i], 0.0};
  return encode(cx, limbs);
}

Plaintext CkksEncoder::encode_with_mantissa(
    std::span<const std::complex<double>> values, std::size_t limbs,
    int mantissa_bits) const {
  xf::FpPrecision guard(mantissa_bits);
  const std::vector<i64> coeffs = embed_and_round<Rounded>(values);
  Plaintext pt{ctx_->make_poly(limbs, poly::Domain::kCoeff),
               ctx_->params().scale()};
  pt.poly.set_from_signed(coeffs);
  return pt;
}

template <class F>
std::vector<std::complex<double>> CkksEncoder::lift_and_extract(
    std::span<const double> centered, double scale) const {
  const xf::CkksDwtPlan& plan = ctx_->dwt();
  const std::size_t n = ctx_->n();
  std::vector<Cx<F>> buf(n);
  ABC_CHECK_ARG(scale > 0, "plaintext scale must be positive");
  const double inv_scale = 1.0 / scale;
  for (std::size_t j = 0; j < n; ++j) {
    buf[j] = Cx<F>{F(centered[j] * inv_scale), F(0.0)};
  }
  plan.forward(std::span<Cx<F>>(buf));
  const auto map = plan.index_map();
  std::vector<std::complex<double>> out(ctx_->slots());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const Cx<F>& z = buf[map[i]];
    out[i] = {xf::as_double(z.re), xf::as_double(z.im)};
  }
  return out;
}

std::vector<std::complex<double>> CkksEncoder::decode(
    const Plaintext& pt) const {
  ABC_CHECK_ARG(pt.poly.domain() == poly::Domain::kCoeff,
                "decode expects a coefficient-domain plaintext");
  const std::size_t n = ctx_->n();
  const std::size_t limbs = pt.limbs();
  rns::CrtComposer composer(ctx_->poly_context()->basis(), limbs);
  std::vector<double> centered(n);
  std::vector<u64> residues(limbs);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < limbs; ++i) residues[i] = pt.poly.limb(i)[j];
    centered[j] = composer.compose_centered(residues);
  }
  xf::op_counts().other += n * limbs;  // CRT combine work
  return lift_and_extract<double>(centered, pt.scale);
}

std::vector<std::complex<double>> CkksEncoder::decode_with_mantissa(
    const Plaintext& pt, int mantissa_bits) const {
  ABC_CHECK_ARG(pt.poly.domain() == poly::Domain::kCoeff,
                "decode expects a coefficient-domain plaintext");
  const std::size_t n = ctx_->n();
  const std::size_t limbs = pt.limbs();
  rns::CrtComposer composer(ctx_->poly_context()->basis(), limbs);
  std::vector<double> centered(n);
  std::vector<u64> residues(limbs);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < limbs; ++i) residues[i] = pt.poly.limb(i)[j];
    centered[j] = composer.compose_centered(residues);
  }
  xf::op_counts().other += n * limbs;
  xf::FpPrecision guard(mantissa_bits);
  return lift_and_extract<Rounded>(centered, pt.scale);
}

PrecisionReport compare_slots(std::span<const std::complex<double>> reference,
                              std::span<const std::complex<double>> measured) {
  ABC_CHECK_ARG(reference.size() == measured.size(), "size mismatch");
  PrecisionReport r;
  double sum = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double err = std::abs(reference[i] - measured[i]);
    r.max_abs_error = std::max(r.max_abs_error, err);
    sum += err;
  }
  r.mean_abs_error = reference.empty() ? 0.0 : sum / static_cast<double>(reference.size());
  r.precision_bits =
      r.max_abs_error > 0 ? -std::log2(r.max_abs_error) : 60.0;
  return r;
}

}  // namespace abc::ckks
