#include "ckks/context.hpp"

#include "rns/ntt_prime.hpp"

namespace abc::ckks {

CkksContext::CkksContext(const CkksParams& params,
                         std::shared_ptr<backend::PolyBackend> backend)
    : params_(params),
      primes_(rns::select_prime_chain(params.prime_bits, params.log_n,
                                      params.num_limbs)),
      poly_ctx_(poly::PolyContext::create(params.log_n, primes_,
                                          std::move(backend))),
      dwt_(params.log_n) {}

std::shared_ptr<const CkksContext> CkksContext::create(
    const CkksParams& params, std::shared_ptr<backend::PolyBackend> backend) {
  params.validate();
  return std::make_shared<const CkksContext>(params, std::move(backend));
}

}  // namespace abc::ckks
