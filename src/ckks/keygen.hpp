#pragma once

/// @file keygen.hpp
/// RLWE key generation for the client: ternary secret, discrete-Gaussian
/// error, and a public key whose "a" half is uniform. All randomness
/// derives from the context's 128-bit seed through domain-separated
/// ChaCha20 streams — the software mirror of the paper's on-chip PRNG that
/// generates "masks, errors, and keys" (Sec. IV-B).

#include <memory>
#include <span>
#include <vector>

#include "ckks/ciphertext.hpp"
#include "ckks/context.hpp"

namespace abc::ckks {

/// Secret key, stored in evaluation (NTT) form over all limbs. stream_id
/// records which kSecretKey stream produced it; everything derived from
/// this secret (public key, switching keys) folds the id into its own
/// stream ids, so key material for *different* secrets can never alias a
/// keystream (aliasing with equal randomness but different secrets would
/// let b-differences cancel the errors and leak the secrets).
struct SecretKey {
  poly::RnsPoly s;
  u64 stream_id = 0;
};

/// Public key (b, a) with b = -(a*s) + e, both in evaluation form. The
/// uniform half is regenerable from (seed, kPublicA, stream_id), which is
/// what seed-compressed serialization ships instead of `a`.
struct PublicKey {
  poly::RnsPoly b;
  poly::RnsPoly a;
  u64 stream_id = 0;
};

/// PRNG domain tags, keeping every consumer on a disjoint stream. Each
/// encryption mode owns its error domain outright (public-key errors live
/// in kEncryptError at stream ids 2*id and 2*id+1, symmetric errors in
/// kSymmetricError at stream id), so concurrent batched encrypts can never
/// reuse a stream across modes no matter how the counter advances.
/// Key-switching keys follow the same pattern per kind: digit d of a key
/// with base stream id k draws its uniform half from (kRelinA | kGaloisA,
/// k + d) and its error from the matching error domain at the same id.
/// The full domain -> consumer map is tabulated in docs/ARCHITECTURE.md.
enum class PrngDomain : u32 {
  kSecretKey = 1,
  kPublicA = 2,
  kKeygenError = 3,
  kEncryptMask = 4,
  kEncryptError = 5,   // public-key encryption errors (e0, e1)
  kSymmetricA = 6,
  kSymmetricError = 7, // symmetric seeded encryption errors
  kRelinA = 8,         // relinearization key uniform halves
  kRelinError = 9,
  kGaloisA = 10,       // Galois (rotation) key uniform halves
  kGaloisError = 11,
};

/// Gadget(RNS)-decomposed key-switching key re-encrypting a source key s'
/// under the secret s: one (b_d, a_d) pair per digit d, digit = RNS limb,
/// all full-limb evaluation-form polynomials with
///
///     b_d = -(a_d * s) + e_d + g_d * s'
///
/// where g_d = (Q/q_d) * ((Q/q_d)^{-1} mod q_d) is the CRT idempotent of
/// limb d (g_d = 1 mod q_d, 0 mod q_j for j != d). A server switches a
/// component c from s' to s by accumulating sum_d ext([c]_{q_d}) . ksk_d;
/// the decomposition identity sum_d [c]_{q_d} * g_d = c (mod Q) makes the
/// phase come out right while each digit's noise growth stays bounded by
/// q_d. Every a_d is regenerable from (seed, a-domain of `kind`,
/// base_stream_id + d) — seed-compressed serialization ships only the b
/// halves plus base_stream_id (src/ckks/serialize.hpp).
struct KeySwitchKey {
  enum class Kind : u8 {
    kRelin = 0,   // s' = s^2 (relinearize unreduced products)
    kGalois = 1,  // s' = sigma_g(s) (slot rotations)
  };

  Kind kind = Kind::kRelin;
  u32 galois_elt = 0;      // automorphism X -> X^elt; 0 for relin keys
  u64 base_stream_id = 0;  // digit d's uniform half uses stream id base + d
  std::vector<poly::RnsPoly> b;  // [digits], shipped
  std::vector<poly::RnsPoly> a;  // [digits], regenerable

  std::size_t digits() const noexcept { return b.size(); }
};

/// Relinearization key: switches s^2 back to s after a ciphertext product.
struct RelinKey {
  KeySwitchKey key;
};

/// Galois keys for a set of slot-rotation steps (step > 0 rotates left;
/// steps are reduced modulo the slot count). keys[i] belongs to steps[i].
struct GaloisKeys {
  std::vector<int> steps;
  std::vector<KeySwitchKey> keys;
  std::size_t slots = 0;  // set by the generators; 0 = raw step matching

  /// The key for @p step, matching modulo the slot count (step 1 and
  /// step 1 - slots are the same rotation and resolve to the same key);
  /// throws InvalidArgument when absent.
  const KeySwitchKey& key_for(int step) const;

  /// key_for without the throw: nullptr when no key covers @p step (the
  /// fail-fast probe KeySource::has_galois_key builds on).
  const KeySwitchKey* find(int step) const noexcept;
};

/// Galois group element 3^step mod 2N driving a left rotation by @p step
/// slots (3 is the canonical-embedding generator the encoder's slot
/// ordering is built on, see transform/dwt.hpp). Throws when the step
/// reduces to 0 mod N/2 (no rotation).
u32 galois_element(int step, std::size_t n);

/// Uniform-half / error PRNG domains for a key kind (serialization uses
/// this to regenerate compressed keys).
PrngDomain ksk_a_domain(KeySwitchKey::Kind kind);
PrngDomain ksk_error_domain(KeySwitchKey::Kind kind);

/// Stream-domain word for a switching key's PRNG draws: the base domain
/// tag in the low byte, the Galois element above it. Salting the domain
/// by the element is load-bearing: id counters are per-generator, so two
/// independent generators both hand out base_stream_id 0 — if Galois keys
/// for *different* rotations shared a keystream, their errors would
/// cancel out of b1_d - b2_d and hand a server an error-free linear
/// relation in the secret. Relin keys (elt 0) use the raw domain.
///
/// The second aliasing axis — same kind/element but different *secrets* —
/// is closed by the stream ids instead: ksk_base_stream_id folds the
/// secret's id into the upper bits, so only an identical (secret, kind,
/// element, counter) tuple reproduces a stream, and that regenerates the
/// identical key (deterministic regeneration, harmless).
u32 ksk_stream_domain(PrngDomain base, u32 galois_elt);

/// Base stream id for a key derived from the secret with id @p secret_id
/// (SecretKey::stream_id) at local counter value @p counter: the secret id
/// occupies the upper bits, the counter the lower 32. Uniform fills later
/// fold the limb index into the low 16 bits of the shifted id, leaving 16
/// bits of secret-id headroom; both bounds are enforced here because
/// overflow would wrap two different secrets onto one keystream — exactly
/// the aliasing this layout exists to prevent. (The counter bound leaves
/// 2^16 headroom for the per-digit offsets added to the base.)
inline u64 ksk_base_stream_id(u64 secret_id, u64 counter) {
  ABC_CHECK_ARG(secret_id < (u64{1} << 16),
                "secret stream id exceeds the 16-bit salt budget");
  ABC_CHECK_ARG(counter < 0xffff0000ull,
                "key counter exceeds the 32-bit stream budget");
  return (secret_id << 32) | counter;
}

class KeyGenerator {
 public:
  explicit KeyGenerator(std::shared_ptr<const CkksContext> ctx);

  /// Fresh uniform-ternary secret (evaluation form).
  SecretKey secret_key();

  /// Public key for @p sk: a uniform per limb (sampled directly in the
  /// evaluation domain — uniformity is domain-invariant), e ~ DG(sigma)
  /// transformed, b = -(a*s) + e.
  PublicKey public_key(const SecretKey& sk);

  /// Relinearization key (s^2 -> s), one gadget digit per RNS limb.
  RelinKey relin_key(const SecretKey& sk);

  /// Galois key for one rotation step (sigma_g(s) -> s).
  KeySwitchKey galois_key(const SecretKey& sk, int step);

  /// Galois keys for every step in @p steps, generated in order.
  GaloisKeys galois_keys(const SecretKey& sk, std::span<const int> steps);

 private:
  KeySwitchKey make_ksk(KeySwitchKey::Kind kind, u32 galois_elt,
                        const SecretKey& sk,
                        const poly::RnsPoly& s_prime_eval);
  KeySwitchKey galois_key_from_coeff(const SecretKey& sk,
                                     const poly::RnsPoly& s_coeff, u32 elt);

  std::shared_ptr<const CkksContext> ctx_;
  // Secret ids come from the context-wide counter (reserve_secret_ids);
  // the derived-key counters below stay per-instance — their streams are
  // salted by the secret id, so instance collisions regenerate the
  // *identical* key (harmless), and the serial engine-vs-generator
  // bit-identity tests rely on fresh instances counting from 0.
  u64 pk_counter_ = 0;
  u64 ksk_counter_ = 0;  // each switching key reserves `digits` ids
};

/// Reusable sampler staging buffers for allocation-free hot paths; one per
/// worker when sampling runs under a parallel engine.
struct SamplerScratch {
  std::vector<i8> ternary;
  std::vector<i32> wide;
};

/// Fills @p dst (evaluation domain) with per-limb uniform values drawn from
/// the seed/stream — shared by key generation and symmetric encryption.
void fill_uniform_eval(const CkksContext& ctx, poly::RnsPoly& dst,
                       PrngDomain domain, u64 stream_id);

/// Samples a ternary polynomial into coefficient form.
void fill_ternary_coeff(const CkksContext& ctx, poly::RnsPoly& dst,
                        PrngDomain domain, u64 stream_id,
                        SamplerScratch* scratch = nullptr);

/// Samples a discrete-Gaussian error polynomial into coefficient form.
void fill_gaussian_coeff(const CkksContext& ctx, poly::RnsPoly& dst,
                         PrngDomain domain, u64 stream_id,
                         SamplerScratch* scratch = nullptr);

/// Generates one gadget digit of a key-switching key into (@p b_out,
/// @p a_out): a_d uniform and e_d Gaussian from the kind's domains salted
/// with @p galois_elt (see ksk_stream_domain), both at @p stream_id;
/// b_d = -(a_d * s) + e_d + g_d * s'. @p s_neg_eval is the *negated*
/// secret -s in evaluation form (hoisted out so the -(a*s) term is one
/// allocation-free fused multiply-add per digit, not a product copy).
/// Both outputs are reset to full-limb evaluation form. The digit's
/// randomness depends only on (seed, kind, galois_elt, stream_id), so any
/// scheduling of digits across workers yields bit-identical keys — this
/// is the unit of work engine::BatchKeyGenerator fans out.
void generate_ksk_digit(const CkksContext& ctx,
                        const poly::RnsPoly& s_neg_eval,
                        const poly::RnsPoly& s_prime_eval,
                        KeySwitchKey::Kind kind, u32 galois_elt,
                        u64 stream_id, std::size_t digit,
                        poly::RnsPoly& b_out, poly::RnsPoly& a_out,
                        SamplerScratch* scratch = nullptr);

}  // namespace abc::ckks
