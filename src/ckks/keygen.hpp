#pragma once

/// @file keygen.hpp
/// RLWE key generation for the client: ternary secret, discrete-Gaussian
/// error, and a public key whose "a" half is uniform. All randomness
/// derives from the context's 128-bit seed through domain-separated
/// ChaCha20 streams — the software mirror of the paper's on-chip PRNG that
/// generates "masks, errors, and keys" (Sec. IV-B).

#include <memory>

#include "ckks/ciphertext.hpp"
#include "ckks/context.hpp"

namespace abc::ckks {

/// Secret key, stored in evaluation (NTT) form over all limbs.
struct SecretKey {
  poly::RnsPoly s;
};

/// Public key (b, a) with b = -(a*s) + e, both in evaluation form.
struct PublicKey {
  poly::RnsPoly b;
  poly::RnsPoly a;
};

/// PRNG domain tags, keeping every consumer on a disjoint stream. Each
/// encryption mode owns its error domain outright (public-key errors live
/// in kEncryptError at stream ids 2*id and 2*id+1, symmetric errors in
/// kSymmetricError at stream id), so concurrent batched encrypts can never
/// reuse a stream across modes no matter how the counter advances.
enum class PrngDomain : u32 {
  kSecretKey = 1,
  kPublicA = 2,
  kKeygenError = 3,
  kEncryptMask = 4,
  kEncryptError = 5,   // public-key encryption errors (e0, e1)
  kSymmetricA = 6,
  kSymmetricError = 7, // symmetric seeded encryption errors
};

class KeyGenerator {
 public:
  explicit KeyGenerator(std::shared_ptr<const CkksContext> ctx);

  /// Fresh uniform-ternary secret (evaluation form).
  SecretKey secret_key();

  /// Public key for @p sk: a uniform per limb (sampled directly in the
  /// evaluation domain — uniformity is domain-invariant), e ~ DG(sigma)
  /// transformed, b = -(a*s) + e.
  PublicKey public_key(const SecretKey& sk);

 private:
  std::shared_ptr<const CkksContext> ctx_;
  u64 sk_counter_ = 0;
  u64 pk_counter_ = 0;
};

/// Reusable sampler staging buffers for allocation-free hot paths; one per
/// worker when sampling runs under a parallel engine.
struct SamplerScratch {
  std::vector<i8> ternary;
  std::vector<i32> wide;
};

/// Fills @p dst (evaluation domain) with per-limb uniform values drawn from
/// the seed/stream — shared by key generation and symmetric encryption.
void fill_uniform_eval(const CkksContext& ctx, poly::RnsPoly& dst,
                       PrngDomain domain, u64 stream_id);

/// Samples a ternary polynomial into coefficient form.
void fill_ternary_coeff(const CkksContext& ctx, poly::RnsPoly& dst,
                        PrngDomain domain, u64 stream_id,
                        SamplerScratch* scratch = nullptr);

/// Samples a discrete-Gaussian error polynomial into coefficient form.
void fill_gaussian_coeff(const CkksContext& ctx, poly::RnsPoly& dst,
                         PrngDomain domain, u64 stream_id,
                         SamplerScratch* scratch = nullptr);

}  // namespace abc::ckks
