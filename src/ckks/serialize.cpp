#include "ckks/serialize.hpp"

#include <bit>
#include <cstring>

#include "ckks/keygen.hpp"
#include "common/bitops.hpp"

namespace abc::ckks {
namespace {

constexpr u32 kMagic = 0x41424346;  // "ABCF"

}  // namespace

void BitPacker::append(u64 value, int bits) {
  ABC_CHECK_ARG(bits >= 1 && bits <= 57, "pack width out of range");
  ABC_CHECK_ARG(bits == 64 || (value >> bits) == 0, "value exceeds width");
  pending_ |= value << pending_bits_;
  pending_bits_ += bits;
  while (pending_bits_ >= 8) {
    bytes_.push_back(static_cast<u8>(pending_));
    pending_ >>= 8;
    pending_bits_ -= 8;
  }
}

std::vector<u8> BitPacker::finish() {
  if (pending_bits_ > 0) {
    bytes_.push_back(static_cast<u8>(pending_));
    pending_ = 0;
    pending_bits_ = 0;
  }
  return std::move(bytes_);
}

u64 BitUnpacker::read(int bits) {
  ABC_CHECK_ARG(bits >= 1 && bits <= 57, "read width out of range");
  u64 value = 0;
  int got = 0;
  while (got < bits) {
    const std::size_t byte_index = bit_pos_ / 8;
    ABC_CHECK_ARG(byte_index < bytes_.size(), "serialized buffer truncated");
    const int bit_offset = static_cast<int>(bit_pos_ % 8);
    const int take = std::min(8 - bit_offset, bits - got);
    const u64 chunk = (static_cast<u64>(bytes_[byte_index]) >> bit_offset) &
                      ((u64{1} << take) - 1);
    value |= chunk << got;
    got += take;
    bit_pos_ += static_cast<std::size_t>(take);
  }
  return value;
}

std::vector<u8> serialize_ciphertext(const Ciphertext& ct,
                                     int bits_per_coeff) {
  ABC_CHECK_ARG(!ct.components.empty(), "empty ciphertext");
  BitPacker packer;
  packer.append(kMagic, 32);
  packer.append(static_cast<u64>(bits_per_coeff), 8);
  packer.append(ct.size(), 8);
  packer.append(ct.limbs(), 16);
  packer.append(static_cast<u64>(log2_exact(ct.c(0).n())), 8);
  packer.append(ct.compressed_c1.has_value() ? 1 : 0, 8);
  // Scale as raw IEEE-754 bits, split to respect the packer width cap.
  const u64 scale_bits = std::bit_cast<u64>(ct.scale);
  packer.append(scale_bits & 0xffffffffull, 32);
  packer.append(scale_bits >> 32, 32);
  if (ct.compressed_c1.has_value()) {
    packer.append(ct.compressed_c1->stream_id & 0xffffffffull, 32);
    packer.append(ct.compressed_c1->stream_id >> 32, 32);
  }
  for (std::size_t comp = 0; comp < ct.size(); ++comp) {
    if (comp == 1 && ct.compressed_c1.has_value()) continue;  // regenerable
    const poly::RnsPoly& p = ct.c(comp);
    for (std::size_t l = 0; l < p.limbs(); ++l) {
      for (u64 v : p.limb(l)) packer.append(v, bits_per_coeff);
    }
  }
  return packer.finish();
}

Ciphertext deserialize_ciphertext(
    const std::shared_ptr<const CkksContext>& ctx,
    std::span<const u8> bytes) {
  BitUnpacker unpacker(bytes);
  ABC_CHECK_ARG(unpacker.read(32) == kMagic, "bad magic");
  const int bits_per_coeff = static_cast<int>(unpacker.read(8));
  const std::size_t components = unpacker.read(8);
  const std::size_t limbs = unpacker.read(16);
  const int log_n = static_cast<int>(unpacker.read(8));
  const bool compressed = unpacker.read(8) != 0;
  ABC_CHECK_ARG(log_n == ctx->params().log_n, "degree mismatch");
  ABC_CHECK_ARG(limbs >= 1 && limbs <= ctx->max_limbs(), "limb mismatch");
  ABC_CHECK_ARG(components == 2 || components == 3, "bad component count");
  const u64 scale_lo = unpacker.read(32);
  const u64 scale_hi = unpacker.read(32);
  const double scale = std::bit_cast<double>(scale_lo | (scale_hi << 32));

  Ciphertext ct;
  ct.scale = scale;
  u64 stream_id = 0;
  if (compressed) {
    stream_id = unpacker.read(32);
    stream_id |= unpacker.read(32) << 32;
    ct.compressed_c1 = CompressedComponent{stream_id};
  }
  for (std::size_t comp = 0; comp < components; ++comp) {
    poly::RnsPoly p = ctx->make_poly(limbs, poly::Domain::kEval);
    if (comp == 1 && compressed) {
      fill_uniform_eval(*ctx, p, PrngDomain::kSymmetricA, stream_id);
    } else {
      for (std::size_t l = 0; l < limbs; ++l) {
        const u64 q = ctx->poly_context()->modulus(l).value();
        for (u64& v : p.limb(l)) {
          v = unpacker.read(bits_per_coeff);
          ABC_CHECK_ARG(v < q, "residue out of range (corrupt buffer?)");
        }
      }
    }
    ct.components.push_back(std::move(p));
  }
  return ct;
}

}  // namespace abc::ckks
