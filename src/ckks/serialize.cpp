#include "ckks/serialize.hpp"

#include <bit>
#include <cstring>

#include "ckks/keygen.hpp"
#include "common/bitops.hpp"
#include "common/failpoint.hpp"

namespace abc::ckks {
namespace {

constexpr u32 kMagic = 0x41424346;      // "ABCF": ciphertexts
constexpr u32 kKeyMagic = 0x4142434b;   // "ABCK": key material
constexpr u32 kBatchMagic = 0x41424342; // "ABCB": ciphertext batches

// Key headers are fixed-width: magic(32) bits(8) kind(8) compressed(8)
// limbs(16) log_n(8) galois_elt(32) stream_id(32+32) checksum(32)
// = 208 bits. The checksum covers every header field after the magic:
// compressed keys regenerate their uniform halves from the header's
// stream metadata, so a corrupted stream id or Galois element would
// otherwise silently restore *different* key material. (Payload bits are
// only guarded probabilistically by the residue range checks, the same
// contract as ciphertexts — transport-level integrity is the carrier's
// job.)
constexpr std::size_t kKeyHeaderBits = 208;

enum class KeyKind : u8 { kRelin = 0, kGalois = 1, kPublic = 2 };

u32 key_header_checksum(int bits_per_coeff, KeyKind kind, bool compressed,
                        std::size_t limbs, int log_n, u32 galois_elt,
                        u64 stream_id) {
  // FNV-1a over the field values.
  u64 h = 0xcbf29ce484222325ull;
  const auto mix = [&h](u64 v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  mix(static_cast<u64>(bits_per_coeff));
  mix(static_cast<u64>(kind));
  mix(compressed ? 1 : 0);
  mix(limbs);
  mix(static_cast<u64>(log_n));
  mix(galois_elt);
  mix(stream_id);
  return static_cast<u32>(h ^ (h >> 32));
}

void pack_poly(BitPacker& packer, const poly::RnsPoly& p,
               int bits_per_coeff) {
  for (std::size_t l = 0; l < p.limbs(); ++l) {
    for (u64 v : p.limb(l)) packer.append(v, bits_per_coeff);
  }
}

void unpack_poly(const CkksContext& ctx, BitUnpacker& unpacker,
                 poly::RnsPoly& p, int bits_per_coeff) {
  for (std::size_t l = 0; l < p.limbs(); ++l) {
    const u64 q = ctx.poly_context()->modulus(l).value();
    for (u64& v : p.limb(l)) {
      v = unpacker.read(bits_per_coeff);
      ABC_CHECK_ARG(v < q, "residue out of range (corrupt buffer?)");
    }
  }
}

void pack_key_header(BitPacker& packer, int bits_per_coeff, KeyKind kind,
                     bool compressed, std::size_t limbs, int log_n,
                     u32 galois_elt, u64 stream_id) {
  packer.append(kKeyMagic, 32);
  packer.append(static_cast<u64>(bits_per_coeff), 8);
  packer.append(static_cast<u64>(kind), 8);
  packer.append(compressed ? 1 : 0, 8);
  packer.append(limbs, 16);
  packer.append(static_cast<u64>(log_n), 8);
  packer.append(galois_elt, 32);
  packer.append(stream_id & 0xffffffffull, 32);
  packer.append(stream_id >> 32, 32);
  packer.append(key_header_checksum(bits_per_coeff, kind, compressed, limbs,
                                    log_n, galois_elt, stream_id),
                32);
}

struct KeyHeader {
  int bits_per_coeff = 0;
  KeyKind kind = KeyKind::kRelin;
  bool compressed = false;
  std::size_t limbs = 0;
  int log_n = 0;
  u32 galois_elt = 0;
  u64 stream_id = 0;
};

KeyHeader unpack_key_header(BitUnpacker& unpacker) {
  ABC_FAILPOINT(fail::points::kDeserializeKey);
  ABC_CHECK_ARG(unpacker.read(32) == kKeyMagic, "bad key magic");
  KeyHeader h;
  h.bits_per_coeff = static_cast<int>(unpacker.read(8));
  h.kind = static_cast<KeyKind>(unpacker.read(8));
  h.compressed = unpacker.read(8) != 0;
  h.limbs = unpacker.read(16);
  h.log_n = static_cast<int>(unpacker.read(8));
  h.galois_elt = static_cast<u32>(unpacker.read(32));
  h.stream_id = unpacker.read(32);
  h.stream_id |= unpacker.read(32) << 32;
  const u32 checksum = static_cast<u32>(unpacker.read(32));
  ABC_CHECK_ARG(
      checksum == key_header_checksum(h.bits_per_coeff, h.kind, h.compressed,
                                      h.limbs, h.log_n, h.galois_elt,
                                      h.stream_id),
      "key header checksum mismatch (corrupt buffer?)");
  return h;
}

}  // namespace

void BitPacker::append(u64 value, int bits) {
  ABC_CHECK_ARG(bits >= 1 && bits <= 57, "pack width out of range");
  ABC_CHECK_ARG((value >> bits) == 0, "value exceeds width");
  pending_ |= value << pending_bits_;
  pending_bits_ += bits;
  while (pending_bits_ >= 8) {
    bytes_.push_back(static_cast<u8>(pending_));
    pending_ >>= 8;
    pending_bits_ -= 8;
  }
}

std::vector<u8> BitPacker::finish() {
  if (pending_bits_ > 0) {
    bytes_.push_back(static_cast<u8>(pending_));
    pending_ = 0;
    pending_bits_ = 0;
  }
  return std::move(bytes_);
}

u64 BitUnpacker::read(int bits) {
  ABC_CHECK_ARG(bits >= 1 && bits <= 57, "read width out of range");
  u64 value = 0;
  int got = 0;
  while (got < bits) {
    const std::size_t byte_index = bit_pos_ / 8;
    ABC_CHECK_ARG(byte_index < bytes_.size(), "serialized buffer truncated");
    const int bit_offset = static_cast<int>(bit_pos_ % 8);
    const int take = std::min(8 - bit_offset, bits - got);
    const u64 chunk = (static_cast<u64>(bytes_[byte_index]) >> bit_offset) &
                      ((u64{1} << take) - 1);
    value |= chunk << got;
    got += take;
    bit_pos_ += static_cast<std::size_t>(take);
  }
  return value;
}

std::vector<u8> serialize_ciphertext(const Ciphertext& ct,
                                     int bits_per_coeff) {
  ABC_CHECK_ARG(!ct.components.empty(), "empty ciphertext");
  BitPacker packer;
  packer.append(kMagic, 32);
  packer.append(static_cast<u64>(bits_per_coeff), 8);
  packer.append(ct.size(), 8);
  packer.append(ct.limbs(), 16);
  packer.append(static_cast<u64>(log2_exact(ct.c(0).n())), 8);
  packer.append(ct.compressed_c1.has_value() ? 1 : 0, 8);
  // Scale as raw IEEE-754 bits, split to respect the packer width cap.
  const u64 scale_bits = std::bit_cast<u64>(ct.scale);
  packer.append(scale_bits & 0xffffffffull, 32);
  packer.append(scale_bits >> 32, 32);
  if (ct.compressed_c1.has_value()) {
    packer.append(ct.compressed_c1->stream_id & 0xffffffffull, 32);
    packer.append(ct.compressed_c1->stream_id >> 32, 32);
  }
  for (std::size_t comp = 0; comp < ct.size(); ++comp) {
    if (comp == 1 && ct.compressed_c1.has_value()) continue;  // regenerable
    pack_poly(packer, ct.c(comp), bits_per_coeff);
  }
  return packer.finish();
}

Ciphertext deserialize_ciphertext(
    const std::shared_ptr<const CkksContext>& ctx,
    std::span<const u8> bytes) {
  ABC_FAILPOINT(fail::points::kDeserializeCiphertext);
  BitUnpacker unpacker(bytes);
  ABC_CHECK_ARG(unpacker.read(32) == kMagic, "bad magic");
  const int bits_per_coeff = static_cast<int>(unpacker.read(8));
  const std::size_t components = unpacker.read(8);
  const std::size_t limbs = unpacker.read(16);
  const int log_n = static_cast<int>(unpacker.read(8));
  const bool compressed = unpacker.read(8) != 0;
  ABC_CHECK_ARG(log_n == ctx->params().log_n, "degree mismatch");
  ABC_CHECK_ARG(limbs >= 1 && limbs <= ctx->max_limbs(), "limb mismatch");
  ABC_CHECK_ARG(components == 2 || components == 3, "bad component count");
  const u64 scale_lo = unpacker.read(32);
  const u64 scale_hi = unpacker.read(32);
  const double scale = std::bit_cast<double>(scale_lo | (scale_hi << 32));

  Ciphertext ct;
  ct.scale = scale;
  u64 stream_id = 0;
  if (compressed) {
    stream_id = unpacker.read(32);
    stream_id |= unpacker.read(32) << 32;
    ct.compressed_c1 = CompressedComponent{stream_id};
  }
  for (std::size_t comp = 0; comp < components; ++comp) {
    poly::RnsPoly p = ctx->make_poly(limbs, poly::Domain::kEval);
    if (comp == 1 && compressed) {
      fill_uniform_eval(*ctx, p, PrngDomain::kSymmetricA, stream_id);
    } else {
      unpack_poly(*ctx, unpacker, p, bits_per_coeff);
    }
    ct.components.push_back(std::move(p));
  }
  return ct;
}

std::vector<u8> serialize_ciphertext_batch(std::span<const Ciphertext> cts,
                                           int bits_per_coeff) {
  // Byte-aligned container format (magic, count, then per item a 32-bit
  // length + the serialize_ciphertext frame), little-endian. Frames stay
  // byte-aligned so a receiver can hand each one to
  // deserialize_ciphertext without re-packing. Frames are independent, so
  // packing fans out across the context's backend; concatenation stays
  // serial and in input order.
  std::vector<std::vector<u8>> frames(cts.size());
  if (!cts.empty()) {
    cts.front().c(0).context().backend().parallel_for(
        cts.size(), [&](std::size_t i, std::size_t) {
          frames[i] = serialize_ciphertext(cts[i], bits_per_coeff);
        });
  }
  std::vector<u8> out;
  const auto put_u32 = [&out](u64 v) {
    ABC_CHECK_ARG((v >> 32) == 0, "batch field exceeds 32 bits");
    for (int b = 0; b < 4; ++b) out.push_back(static_cast<u8>(v >> (8 * b)));
  };
  put_u32(kBatchMagic);
  put_u32(cts.size());
  for (const std::vector<u8>& frame : frames) {
    put_u32(frame.size());
    out.insert(out.end(), frame.begin(), frame.end());
  }
  return out;
}

std::vector<Ciphertext> deserialize_ciphertext_batch(
    const std::shared_ptr<const CkksContext>& ctx,
    std::span<const u8> bytes) {
  ABC_CHECK_ARG(ctx != nullptr, "null context");
  ABC_FAILPOINT(fail::points::kDeserializeBatch);
  std::size_t pos = 0;
  const auto get_u32 = [&bytes, &pos]() -> u64 {
    ABC_CHECK_ARG(pos + 4 <= bytes.size(), "batch envelope truncated");
    u64 v = 0;
    for (int b = 0; b < 4; ++b) {
      v |= static_cast<u64>(bytes[pos++]) << (8 * b);
    }
    return v;
  };
  ABC_CHECK_ARG(get_u32() == kBatchMagic, "bad batch magic");
  const u64 count = get_u32();
  // Every frame needs at least its 4-byte length prefix, so an untrusted
  // count beyond that is a truncated/corrupt envelope — reject it before
  // reserving attacker-controlled amounts of memory.
  ABC_CHECK_ARG(count <= (bytes.size() - pos) / 4,
                "batch envelope truncated");
  // Cheap serial pre-scan of the frame table, then the per-frame work
  // (bit-unpacking every residue + regenerating compressed c1 halves)
  // fans out across the backend — frames are independent and land in
  // input order, so the result is bit-identical at any worker count.
  std::vector<std::span<const u8>> frames;
  frames.reserve(count);
  for (u64 i = 0; i < count; ++i) {
    const u64 length = get_u32();
    ABC_CHECK_ARG(pos + length <= bytes.size(), "batch envelope truncated");
    frames.push_back(bytes.subspan(pos, length));
    pos += length;
  }
  ABC_CHECK_ARG(pos == bytes.size(),
                "trailing bytes after the last batch frame");
  std::vector<Ciphertext> out(count);
  ctx->backend().parallel_for(count, [&](std::size_t i, std::size_t) {
    out[i] = deserialize_ciphertext(ctx, frames[i]);
  });
  return out;
}

namespace {

PrngDomain ksk_salted_a_domain(KeySwitchKey::Kind kind, u32 galois_elt) {
  return static_cast<PrngDomain>(
      ksk_stream_domain(ksk_a_domain(kind), galois_elt));
}

PrngDomain ksk_salted_a_domain(const KeySwitchKey& key) {
  return ksk_salted_a_domain(key.kind, key.galois_elt);
}

/// Packing width of the context's prime chain: the widest prime's bit
/// width. Lossless for every residue (all are < their prime), and tighter
/// than any wire bits_per_coeff a client chose.
int chain_prime_bits(const CkksContext& ctx) {
  int bits = 0;
  for (std::size_t l = 0; l < ctx.max_limbs(); ++l) {
    const int w = static_cast<int>(
        std::bit_width(ctx.poly_context()->modulus(l).value()));
    bits = std::max(bits, w);
  }
  return bits;
}

/// The compressed forms drop the uniform halves, so the writer must prove
/// they are regenerable first — otherwise a key whose uniform halves did
/// not come from this context's seed (or whose in-memory stream metadata
/// was mangled) would serialize fine and restore as different key
/// material. @p expect is caller-provided scratch so a multi-digit key
/// pays one allocation, not one per digit.
void check_regenerable(const CkksContext& ctx, const poly::RnsPoly& a,
                       PrngDomain domain, u64 stream_id,
                       poly::RnsPoly& expect) {
  fill_uniform_eval(ctx, expect, domain, stream_id);
  for (std::size_t l = 0; l < a.limbs(); ++l) {
    const std::span<const u64> got = a.limb(l);
    const std::span<const u64> want = expect.limb(l);
    ABC_CHECK_ARG(std::equal(got.begin(), got.end(), want.begin()),
                  "uniform half not regenerable from (seed, stream id); "
                  "serialize with compressed = false");
  }
}

}  // namespace

std::vector<u8> serialize_key_switch_key(
    const std::shared_ptr<const CkksContext>& ctx, const KeySwitchKey& key,
    int bits_per_coeff, bool compressed) {
  ABC_CHECK_ARG(ctx != nullptr, "null context");
  ABC_CHECK_ARG(!key.b.empty(), "empty key-switching key");
  ABC_CHECK_ARG(key.a.size() == key.b.size(),
                "mismatched key-switching key halves");
  // The wire header records one limb count and the reader relies on it
  // for every digit; the RNS gadget additionally fixes digits == limbs.
  // A mismatched polynomial would shift every later word in the packed
  // stream, which the probabilistic residue checks cannot reliably catch.
  ABC_CHECK_ARG(key.digits() == key.b.front().limbs(),
                "gadget digit count must equal the limb count");
  for (std::size_t d = 0; d < key.digits(); ++d) {
    ABC_CHECK_ARG(key.b[d].limbs() == key.digits() &&
                      key.a[d].limbs() == key.digits(),
                  "all key digits must carry the full limb count");
  }
  if (compressed) {
    const PrngDomain domain = ksk_salted_a_domain(key);
    poly::RnsPoly expect =
        ctx->make_poly(key.a.front().limbs(), poly::Domain::kEval);
    for (std::size_t d = 0; d < key.digits(); ++d) {
      check_regenerable(*ctx, key.a[d], domain, key.base_stream_id + d,
                        expect);
    }
  }
  const poly::RnsPoly& first = key.b.front();
  BitPacker packer;
  pack_key_header(packer, bits_per_coeff,
                  key.kind == KeySwitchKey::Kind::kRelin ? KeyKind::kRelin
                                                         : KeyKind::kGalois,
                  compressed, first.limbs(),
                  log2_exact(first.n()), key.galois_elt,
                  key.base_stream_id);
  for (const poly::RnsPoly& b : key.b) pack_poly(packer, b, bits_per_coeff);
  if (!compressed) {
    for (const poly::RnsPoly& a : key.a) pack_poly(packer, a, bits_per_coeff);
  }
  return packer.finish();
}

KeySwitchKey deserialize_key_switch_key(
    const std::shared_ptr<const CkksContext>& ctx,
    std::span<const u8> bytes) {
  BitUnpacker unpacker(bytes);
  const KeyHeader h = unpack_key_header(unpacker);
  ABC_CHECK_ARG(h.kind == KeyKind::kRelin || h.kind == KeyKind::kGalois,
                "not a key-switching key");
  ABC_CHECK_ARG(h.log_n == ctx->params().log_n, "degree mismatch");
  ABC_CHECK_ARG(h.limbs == ctx->max_limbs(),
                "key-switching keys carry full limbs");

  KeySwitchKey key;
  key.kind = h.kind == KeyKind::kRelin ? KeySwitchKey::Kind::kRelin
                                       : KeySwitchKey::Kind::kGalois;
  key.galois_elt = h.galois_elt;
  key.base_stream_id = h.stream_id;
  if (key.kind == KeySwitchKey::Kind::kGalois) {
    ABC_CHECK_ARG((h.galois_elt & 1u) != 0 && h.galois_elt < 2 * ctx->n(),
                  "invalid galois element");
  } else {
    ABC_CHECK_ARG(h.galois_elt == 0, "relin key with galois element");
  }
  key.b.reserve(h.limbs);
  key.a.reserve(h.limbs);
  for (std::size_t d = 0; d < h.limbs; ++d) {
    poly::RnsPoly b = ctx->make_poly(h.limbs, poly::Domain::kEval);
    unpack_poly(*ctx, unpacker, b, h.bits_per_coeff);
    key.b.push_back(std::move(b));
  }
  for (std::size_t d = 0; d < h.limbs; ++d) {
    poly::RnsPoly a = ctx->make_poly(h.limbs, poly::Domain::kEval);
    if (h.compressed) {
      fill_uniform_eval(*ctx, a, ksk_salted_a_domain(key),
                        h.stream_id + d);
    } else {
      unpack_poly(*ctx, unpacker, a, h.bits_per_coeff);
    }
    key.a.push_back(std::move(a));
  }
  return key;
}

CompressedKeySwitchKey compress_key_switch_key(
    const std::shared_ptr<const CkksContext>& ctx, const KeySwitchKey& key) {
  ABC_CHECK_ARG(ctx != nullptr, "null context");
  ABC_CHECK_ARG(!key.b.empty(), "empty key-switching key");
  ABC_CHECK_ARG(key.a.size() == key.b.size(),
                "mismatched key-switching key halves");
  const std::size_t limbs = ctx->max_limbs();
  ABC_CHECK_ARG(key.digits() == limbs,
                "gadget digit count must equal the limb count");
  for (std::size_t d = 0; d < key.digits(); ++d) {
    ABC_CHECK_ARG(key.b[d].limbs() == limbs && key.a[d].limbs() == limbs,
                  "all key digits must carry the full limb count");
  }
  const int bits = chain_prime_bits(*ctx);

  CompressedKeySwitchKey out;
  out.kind = key.kind;
  out.galois_elt = key.galois_elt;
  out.base_stream_id = key.base_stream_id;
  out.limbs = static_cast<u16>(limbs);
  // The hybrid accumulation never reads digit L-1 (levels stop at L-1 and
  // digit indices at level-1), so the resident form drops it. A 1-limb
  // chain cannot key-switch at all; keep its single digit for shape.
  out.stored_digits =
      static_cast<u16>(key.digits() > 1 ? key.digits() - 1 : key.digits());
  out.bits_per_coeff = static_cast<u8>(bits);

  BitPacker packer;
  for (std::size_t d = 0; d < out.stored_digits; ++d) {
    pack_poly(packer, key.b[d], bits);
  }
  out.packed_b = packer.finish();

  // Prove the kept a digits regenerable from the stream metadata; a key
  // whose uniform halves are foreign keeps them packed instead (bigger,
  // but never silently expands to different key material).
  const PrngDomain domain = ksk_salted_a_domain(key);
  poly::RnsPoly expect = ctx->make_poly(limbs, poly::Domain::kEval);
  bool regenerable = true;
  for (std::size_t d = 0; d < out.stored_digits && regenerable; ++d) {
    fill_uniform_eval(*ctx, expect, domain, key.base_stream_id + d);
    for (std::size_t l = 0; l < limbs && regenerable; ++l) {
      const std::span<const u64> got = key.a[d].limb(l);
      const std::span<const u64> want = expect.limb(l);
      regenerable = std::equal(got.begin(), got.end(), want.begin());
    }
  }
  if (!regenerable) {
    BitPacker pa;
    for (std::size_t d = 0; d < out.stored_digits; ++d) {
      pack_poly(pa, key.a[d], bits);
    }
    out.packed_a = pa.finish();
  }
  return out;
}

KeySwitchKey expand_key_switch_key(
    const std::shared_ptr<const CkksContext>& ctx,
    const CompressedKeySwitchKey& rec) {
  ABC_CHECK_ARG(ctx != nullptr, "null context");
  ABC_CHECK_ARG(rec.limbs == ctx->max_limbs(),
                "compressed key limb count does not match the context");
  ABC_CHECK_ARG(rec.stored_digits >= 1 && rec.stored_digits <= rec.limbs,
                "compressed key digit count out of range");
  ABC_CHECK_ARG(rec.bits_per_coeff >= 1 && rec.bits_per_coeff <= 57,
                "compressed key packing width out of range");
  if (rec.kind == KeySwitchKey::Kind::kGalois) {
    ABC_CHECK_ARG((rec.galois_elt & 1u) != 0 &&
                      rec.galois_elt < 2 * ctx->n(),
                  "invalid galois element");
  } else {
    ABC_CHECK_ARG(rec.galois_elt == 0, "relin key with galois element");
  }

  KeySwitchKey key;
  key.kind = rec.kind;
  key.galois_elt = rec.galois_elt;
  key.base_stream_id = rec.base_stream_id;
  key.b.reserve(rec.stored_digits);
  key.a.reserve(rec.stored_digits);
  const int bits = rec.bits_per_coeff;
  BitUnpacker ub(rec.packed_b);
  for (std::size_t d = 0; d < rec.stored_digits; ++d) {
    poly::RnsPoly b = ctx->make_poly(rec.limbs, poly::Domain::kEval);
    unpack_poly(*ctx, ub, b, bits);
    key.b.push_back(std::move(b));
  }
  if (rec.packed_a.empty()) {
    // The exact call deserialize_key_switch_key makes for a compressed
    // wire blob — the regenerated halves are bit-identical by definition.
    const PrngDomain domain = ksk_salted_a_domain(rec.kind, rec.galois_elt);
    for (std::size_t d = 0; d < rec.stored_digits; ++d) {
      poly::RnsPoly a = ctx->make_poly(rec.limbs, poly::Domain::kEval);
      fill_uniform_eval(*ctx, a, domain, rec.base_stream_id + d);
      key.a.push_back(std::move(a));
    }
  } else {
    BitUnpacker ua(rec.packed_a);
    for (std::size_t d = 0; d < rec.stored_digits; ++d) {
      poly::RnsPoly a = ctx->make_poly(rec.limbs, poly::Domain::kEval);
      unpack_poly(*ctx, ua, a, bits);
      key.a.push_back(std::move(a));
    }
  }
  return key;
}

std::vector<u8> serialize_public_key(
    const std::shared_ptr<const CkksContext>& ctx, const PublicKey& pk,
    int bits_per_coeff, bool compressed) {
  ABC_CHECK_ARG(ctx != nullptr, "null context");
  ABC_CHECK_ARG(pk.a.limbs() == pk.b.limbs(),
                "public key halves must carry the same limb count");
  if (compressed) {
    poly::RnsPoly expect = ctx->make_poly(pk.a.limbs(), poly::Domain::kEval);
    check_regenerable(*ctx, pk.a, PrngDomain::kPublicA, pk.stream_id,
                      expect);
  }
  BitPacker packer;
  pack_key_header(packer, bits_per_coeff, KeyKind::kPublic, compressed,
                  pk.b.limbs(), log2_exact(pk.b.n()), 0, pk.stream_id);
  pack_poly(packer, pk.b, bits_per_coeff);
  if (!compressed) pack_poly(packer, pk.a, bits_per_coeff);
  return packer.finish();
}

PublicKey deserialize_public_key(
    const std::shared_ptr<const CkksContext>& ctx,
    std::span<const u8> bytes) {
  BitUnpacker unpacker(bytes);
  const KeyHeader h = unpack_key_header(unpacker);
  ABC_CHECK_ARG(h.kind == KeyKind::kPublic, "not a public key");
  ABC_CHECK_ARG(h.galois_elt == 0, "public key with galois element");
  ABC_CHECK_ARG(h.log_n == ctx->params().log_n, "degree mismatch");
  ABC_CHECK_ARG(h.limbs == ctx->max_limbs(), "public keys carry full limbs");

  poly::RnsPoly b = ctx->make_poly(h.limbs, poly::Domain::kEval);
  unpack_poly(*ctx, unpacker, b, h.bits_per_coeff);
  poly::RnsPoly a = ctx->make_poly(h.limbs, poly::Domain::kEval);
  if (h.compressed) {
    fill_uniform_eval(*ctx, a, PrngDomain::kPublicA, h.stream_id);
  } else {
    unpack_poly(*ctx, unpacker, a, h.bits_per_coeff);
  }
  return PublicKey{std::move(b), std::move(a), h.stream_id};
}

KeySizeReport key_switch_key_sizes(const KeySwitchKey& key,
                                   int bits_per_coeff) {
  ABC_CHECK_ARG(!key.b.empty(), "empty key-switching key");
  const std::size_t poly_bits =
      key.b.front().limbs() * key.b.front().n() *
      static_cast<std::size_t>(bits_per_coeff);
  const std::size_t half = key.digits() * poly_bits;
  return KeySizeReport{(kKeyHeaderBits + half + 7) / 8,
                       (kKeyHeaderBits + 2 * half + 7) / 8};
}

namespace {

constexpr u32 kRequestMagic = 0x41424351;   // "ABCQ": server requests
constexpr u32 kResponseMagic = 0x41424353;  // "ABCS": server responses
constexpr u32 kBundleMagic = 0x41424350;    // "ABCP": tenant key bundles

// Responses carry a human-readable error string; bound it so a hostile
// frame cannot make the reader allocate more than the frame itself holds
// plus this ceiling.
constexpr std::size_t kMaxErrorBytes = 64 * 1024;

// Little-endian byte-aligned writer/reader shared by the framing codecs.
// Every length field is validated against the remaining span before any
// allocation — the same untrusted-envelope discipline as "ABCB".
struct ByteWriter {
  std::vector<u8> out;
  void put_u8(u8 v) { out.push_back(v); }
  void put_u32(u64 v) {
    ABC_CHECK_ARG((v >> 32) == 0, "frame field exceeds 32 bits");
    for (int b = 0; b < 4; ++b) out.push_back(static_cast<u8>(v >> (8 * b)));
  }
  void put_u64(u64 v) {
    for (int b = 0; b < 8; ++b) out.push_back(static_cast<u8>(v >> (8 * b)));
  }
  void put_bytes(std::span<const u8> bytes) {
    put_u32(bytes.size());
    out.insert(out.end(), bytes.begin(), bytes.end());
  }
};

struct ByteReader {
  std::span<const u8> bytes;
  std::size_t pos = 0;

  std::size_t remaining() const noexcept { return bytes.size() - pos; }
  u8 get_u8() {
    ABC_CHECK_ARG(pos + 1 <= bytes.size(), "frame truncated");
    return bytes[pos++];
  }
  u64 get_u32() {
    ABC_CHECK_ARG(pos + 4 <= bytes.size(), "frame truncated");
    u64 v = 0;
    for (int b = 0; b < 4; ++b) v |= static_cast<u64>(bytes[pos++]) << (8 * b);
    return v;
  }
  u64 get_u64() {
    ABC_CHECK_ARG(pos + 8 <= bytes.size(), "frame truncated");
    u64 v = 0;
    for (int b = 0; b < 8; ++b) v |= static_cast<u64>(bytes[pos++]) << (8 * b);
    return v;
  }
  std::span<const u8> get_bytes() {
    const u64 length = get_u32();
    ABC_CHECK_ARG(length <= remaining(), "frame length field overruns the frame");
    const std::span<const u8> view = bytes.subspan(pos, length);
    pos += length;
    return view;
  }
  void expect_end() const {
    ABC_CHECK_ARG(pos == bytes.size(), "trailing bytes after the frame");
  }
};

}  // namespace

std::vector<u8> serialize_request_frame(const RequestFrame& req) {
  ByteWriter w;
  w.put_u32(kRequestMagic);
  w.put_u64(req.tenant);
  w.put_u64(req.request_id);
  w.put_u8(req.op);
  w.put_u64(static_cast<u64>(req.op_arg));
  w.put_bytes(req.payload);
  return std::move(w.out);
}

RequestFrame deserialize_request_frame(std::span<const u8> bytes) {
  ByteReader r{bytes};
  ABC_CHECK_ARG(r.get_u32() == kRequestMagic, "bad request magic");
  RequestFrame req;
  req.tenant = r.get_u64();
  req.request_id = r.get_u64();
  req.op = r.get_u8();
  req.op_arg = static_cast<i64>(r.get_u64());
  const std::span<const u8> payload = r.get_bytes();
  r.expect_end();
  req.payload.assign(payload.begin(), payload.end());
  return req;
}

std::vector<u8> serialize_response_frame(const ResponseFrame& resp) {
  ABC_CHECK_ARG(resp.error.size() <= kMaxErrorBytes,
                "response error string exceeds the wire bound");
  ByteWriter w;
  w.put_u32(kResponseMagic);
  w.put_u64(resp.request_id);
  w.put_u8(resp.status);
  w.put_bytes(std::span<const u8>(
      reinterpret_cast<const u8*>(resp.error.data()), resp.error.size()));
  w.put_bytes(resp.payload);
  return std::move(w.out);
}

ResponseFrame deserialize_response_frame(std::span<const u8> bytes) {
  ByteReader r{bytes};
  ABC_CHECK_ARG(r.get_u32() == kResponseMagic, "bad response magic");
  ResponseFrame resp;
  resp.request_id = r.get_u64();
  resp.status = r.get_u8();
  const std::span<const u8> error = r.get_bytes();
  ABC_CHECK_ARG(error.size() <= kMaxErrorBytes,
                "response error string exceeds the wire bound");
  const std::span<const u8> payload = r.get_bytes();
  r.expect_end();
  resp.error.assign(error.begin(), error.end());
  resp.payload.assign(payload.begin(), payload.end());
  return resp;
}

std::vector<u8> serialize_key_bundle(const KeyBundleFrames& bundle) {
  ByteWriter w;
  w.put_u32(kBundleMagic);
  w.put_u32(bundle.galois_keys.size());
  w.put_bytes(bundle.public_key);
  w.put_bytes(bundle.relin_key);
  for (const std::vector<u8>& gk : bundle.galois_keys) w.put_bytes(gk);
  return std::move(w.out);
}

KeyBundleFrames deserialize_key_bundle(std::span<const u8> bytes) {
  ByteReader r{bytes};
  ABC_CHECK_ARG(r.get_u32() == kBundleMagic, "bad key-bundle magic");
  const u64 count = r.get_u32();
  // Every Galois blob needs at least its 4-byte length prefix, so an
  // untrusted count beyond that is corrupt — reject before reserving.
  ABC_CHECK_ARG(count <= r.remaining() / 4, "key-bundle envelope truncated");
  KeyBundleFrames bundle;
  const std::span<const u8> pk = r.get_bytes();
  const std::span<const u8> rlk = r.get_bytes();
  bundle.public_key.assign(pk.begin(), pk.end());
  bundle.relin_key.assign(rlk.begin(), rlk.end());
  bundle.galois_keys.reserve(count);
  for (u64 i = 0; i < count; ++i) {
    const std::span<const u8> gk = r.get_bytes();
    bundle.galois_keys.emplace_back(gk.begin(), gk.end());
  }
  r.expect_end();
  return bundle;
}

KeySizeReport public_key_sizes(const PublicKey& pk, int bits_per_coeff) {
  const std::size_t poly_bits =
      pk.b.limbs() * pk.b.n() * static_cast<std::size_t>(bits_per_coeff);
  return KeySizeReport{(kKeyHeaderBits + poly_bits + 7) / 8,
                       (kKeyHeaderBits + 2 * poly_bits + 7) / 8};
}

}  // namespace abc::ckks
