#pragma once

/// @file encoder.hpp
/// CKKS encoder/decoder: the paper's client-side "Encoding" (message ->
/// IFFT -> scale/round -> Expand RNS) and "Decoding" (Combine CRT -> FFT ->
/// message) stages, Fig. 2a. The transform runs on the same DWT the
/// accelerator's reconfigurable Fourier engine executes in FFT mode.

#include <complex>
#include <memory>
#include <span>
#include <vector>

#include "ckks/ciphertext.hpp"
#include "ckks/context.hpp"

namespace abc::ckks {

class CkksEncoder {
 public:
  explicit CkksEncoder(std::shared_ptr<const CkksContext> ctx);

  std::size_t slots() const noexcept { return ctx_->slots(); }

  /// Encode up to slots() complex values at the context scale into a
  /// plaintext with @p limbs RNS limbs (fresh messages use all limbs).
  Plaintext encode(std::span<const std::complex<double>> values,
                   std::size_t limbs) const;

  /// Convenience wrapper for real-valued data.
  Plaintext encode_real(std::span<const double> values,
                        std::size_t limbs) const;

  /// Decode a coefficient-domain plaintext back to slot values.
  std::vector<std::complex<double>> decode(const Plaintext& pt) const;

  /// Reduced-precision paths: run the I/FFT with the mantissa rounded to
  /// @p mantissa_bits after every FP operation (FP55 has 43; Fig. 3c).
  Plaintext encode_with_mantissa(std::span<const std::complex<double>> values,
                                 std::size_t limbs, int mantissa_bits) const;
  std::vector<std::complex<double>> decode_with_mantissa(
      const Plaintext& pt, int mantissa_bits) const;

 private:
  template <class F>
  std::vector<i64> embed_and_round(
      std::span<const std::complex<double>> values) const;

  template <class F>
  std::vector<std::complex<double>> lift_and_extract(
      std::span<const double> centered, double scale) const;

  std::shared_ptr<const CkksContext> ctx_;
};

/// Slot-wise precision metrics (paper's "Boot. prec." proxy; see
/// EXPERIMENTS.md E3 for the substitution rationale).
struct PrecisionReport {
  double max_abs_error = 0.0;
  double mean_abs_error = 0.0;
  /// -log2(max error): usable fractional bits.
  double precision_bits = 0.0;
};

PrecisionReport compare_slots(std::span<const std::complex<double>> reference,
                              std::span<const std::complex<double>> measured);

}  // namespace abc::ckks
