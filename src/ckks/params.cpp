#include "ckks/params.hpp"

#include "common/check.hpp"

namespace abc::ckks {

int max_log_q_128bit(int log_n) {
  // HE Security Standard (homomorphicencryption.org), classical 128-bit,
  // uniform ternary secret.
  switch (log_n) {
    case 10: return 27;
    case 11: return 54;
    case 12: return 109;
    case 13: return 218;
    case 14: return 438;
    case 15: return 881;
    case 16: return 1772;
    case 17: return 3576;
    default: return 0;
  }
}

CkksParams CkksParams::bootstrappable() {
  CkksParams p;
  p.log_n = 16;
  p.prime_bits = 36;
  p.num_limbs = 24;
  p.scale_bits = 35;
  return p;
}

CkksParams CkksParams::sweep_point(int log_n, std::size_t num_limbs) {
  CkksParams p;
  p.log_n = log_n;
  p.num_limbs = num_limbs;
  p.enforce_security = false;
  return p;
}

CkksParams CkksParams::test_small(int log_n, std::size_t num_limbs) {
  CkksParams p;
  p.log_n = log_n;
  p.num_limbs = num_limbs;
  p.prime_bits = 36;
  p.scale_bits = 30;
  p.enforce_security = false;
  return p;
}

void CkksParams::validate() const {
  ABC_CHECK_ARG(log_n >= 4 && log_n <= 17, "log_n out of range");
  ABC_CHECK_ARG(prime_bits >= 20 && prime_bits <= 60, "prime_bits out of range");
  ABC_CHECK_ARG(num_limbs >= 1 && num_limbs <= 64, "num_limbs out of range");
  ABC_CHECK_ARG(scale_bits >= 10 && scale_bits < prime_bits,
                "scale must fit below one prime");
  ABC_CHECK_ARG(error_sigma > 0, "sigma must be positive");
  if (enforce_security) {
    ABC_CHECK_ARG(log_q(num_limbs) <= max_log_q_128bit(log_n),
                  "parameter set falls below 128-bit security");
  }
}

}  // namespace abc::ckks
