#pragma once

/// @file encryptor.hpp
/// Client-side encryption, paper Fig. 2a "Encoding + Encrypt". Two modes:
///
///  * Public-key: ct = (b*u + m + e0, a*u + e1) with ternary mask u. Costs
///    3 NTT passes per limb (NTT(u), NTT(m + e0), NTT(e1)).
///  * Symmetric seeded: ct = (-(a*s) + m + e, a) with a regenerated from a
///    PRNG stream id, so only the first component is materialized/shipped.
///    Costs 1 NTT pass per limb — the profile matching the paper's
///    27.0 MOPs encode+encrypt budget (Fig. 2b).
///
/// The per-limb NTT-pass count is exported so the accelerator scheduler
/// (src/core) accounts the same work the software executes.

#include <memory>

#include "ckks/ciphertext.hpp"
#include "ckks/context.hpp"
#include "ckks/keygen.hpp"

namespace abc::ckks {

enum class EncryptMode {
  kPublicKey,
  kSymmetricSeeded,
};

/// NTT passes per limb per encryption for each mode (scheduler input).
constexpr int ntt_passes_per_limb(EncryptMode mode) noexcept {
  return mode == EncryptMode::kPublicKey ? 3 : 1;
}

class Encryptor {
 public:
  /// Public-key mode.
  Encryptor(std::shared_ptr<const CkksContext> ctx, PublicKey pk);
  /// Symmetric seeded mode.
  Encryptor(std::shared_ptr<const CkksContext> ctx, const SecretKey& sk);

  EncryptMode mode() const noexcept { return mode_; }

  /// Encrypts a plaintext; the ciphertext carries pt's limb count and is in
  /// evaluation form.
  Ciphertext encrypt(const Plaintext& pt);

 private:
  Ciphertext encrypt_public(const Plaintext& pt);
  Ciphertext encrypt_symmetric(const Plaintext& pt);

  std::shared_ptr<const CkksContext> ctx_;
  EncryptMode mode_;
  std::unique_ptr<PublicKey> pk_;
  std::unique_ptr<poly::RnsPoly> sk_eval_;
  u64 counter_ = 0;
};

}  // namespace abc::ckks
