#pragma once

/// @file encryptor.hpp
/// Client-side encryption, paper Fig. 2a "Encoding + Encrypt". Two modes:
///
///  * Public-key: ct = (b*u + m + e0, a*u + e1) with ternary mask u. Costs
///    3 NTT passes per limb (NTT(u), NTT(m + e0), NTT(e1)).
///  * Symmetric seeded: ct = (-(a*s) + m + e, a) with a regenerated from a
///    PRNG stream id, so only the first component is materialized/shipped.
///    Costs 1 NTT pass per limb — the profile matching the paper's
///    27.0 MOPs encode+encrypt budget (Fig. 2b).
///
/// The per-limb NTT-pass count is exported so the accelerator scheduler
/// (src/core) accounts the same work the software executes.
///
/// Concurrency model: stream ids come from the *context-wide* atomic
/// counter (CkksContext::reserve_stream_ids), each encryption's randomness
/// is fully determined by its stream id, and the two modes draw errors
/// from disjoint PRNG domains — so any number of threads encrypting
/// through encrypt_with() produce independent, reproducible ciphertexts,
/// and any number of Encryptor instances (or batch engines) sharing a
/// context can never replay each other's streams. Stream ids are
/// additionally salted with the key's secret id (upper 32 bits, mirroring
/// ksk_base_stream_id): two contexts' encryptors for *different* secrets
/// both count from 0 — an unsalted shared stream would give their first
/// ciphertexts identical (a, e) material, letting c0 differences cancel
/// the errors and leak a linear relation in the secrets.
///
/// What the shared counter does NOT cover: two *contexts* for the same
/// seed and secret (a process restart, a second process) both count from
/// 0 and therefore replay the same streams — encrypting *different*
/// messages under a replayed stream leaks the plaintext difference. The
/// whole stack is deliberately deterministic from the 128-bit seed (the
/// paper's on-chip PRNG model), so stream-id uniqueness across context
/// lifetimes is the caller's responsibility: persist the counter, or
/// dedicate a disjoint secret (and thereby salt) per component.
/// encrypt() itself reuses an internal scratch buffer and is therefore not
/// reentrant; parallel callers use one EncryptScratch per worker (see
/// engine/batch_encryptor.hpp).

#include <memory>

#include "ckks/ciphertext.hpp"
#include "ckks/context.hpp"
#include "ckks/keygen.hpp"

namespace abc::ckks {

enum class EncryptMode {
  kPublicKey,
  kSymmetricSeeded,
};

/// NTT passes per limb per encryption for each mode (scheduler input).
constexpr int ntt_passes_per_limb(EncryptMode mode) noexcept {
  return mode == EncryptMode::kPublicKey ? 3 : 1;
}

/// Reusable per-worker buffers for the encryption hot path: the mask (or
/// secret-key prefix), the message+error accumulator, the error being
/// sampled, and the sampler staging vectors. After the first encryption at
/// a given level the hot path performs no heap allocation beyond the
/// ciphertext components it returns.
class EncryptScratch {
 public:
  explicit EncryptScratch(const CkksContext& ctx);

 private:
  friend class Encryptor;
  poly::RnsPoly mask_;  // ternary u / secret-key prefix
  poly::RnsPoly me_;    // m + e accumulator
  poly::RnsPoly err_;   // freshly sampled error
  SamplerScratch samplers_;
};

class Encryptor {
 public:
  /// Public-key mode.
  Encryptor(std::shared_ptr<const CkksContext> ctx, PublicKey pk);
  /// Symmetric seeded mode.
  Encryptor(std::shared_ptr<const CkksContext> ctx, const SecretKey& sk);

  EncryptMode mode() const noexcept { return mode_; }

  /// Encrypts a plaintext; the ciphertext carries pt's limb count and is in
  /// evaluation form. Not reentrant (uses the internal scratch).
  Ciphertext encrypt(const Plaintext& pt);

  /// Reserves @p count consecutive stream ids for a batch; each id passed
  /// to encrypt_with() yields an independent, reproducible ciphertext.
  /// Forwards to the context-wide counter, so every encryptor and engine
  /// on this context draws from one id sequence and can never collide.
  u64 reserve_stream_ids(u64 count) const {
    return ctx_->reserve_stream_ids(count);
  }

  /// Deterministic encryption under an explicit stream id (a counter
  /// value < 2^31; the secret salt is folded in internally) with external
  /// scratch. Thread-safe: may run concurrently with any other
  /// encrypt_with() call as long as each thread owns its scratch.
  Ciphertext encrypt_with(const Plaintext& pt, u64 stream_id,
                          EncryptScratch& scratch) const;

 private:
  Ciphertext encrypt_public(const Plaintext& pt, u64 id,
                            EncryptScratch& scratch) const;
  Ciphertext encrypt_symmetric(const Plaintext& pt, u64 id,
                               EncryptScratch& scratch) const;

  /// Counter id -> wire stream id with the secret salt in the upper bits.
  u64 salted(u64 id) const noexcept { return (secret_salt_ << 32) | id; }

  std::shared_ptr<const CkksContext> ctx_;
  EncryptMode mode_;
  std::unique_ptr<PublicKey> pk_;
  std::unique_ptr<poly::RnsPoly> sk_eval_;
  u64 secret_salt_ = 0;  // SecretKey::stream_id (or the pk's embedded id)
  EncryptScratch scratch_;
};

}  // namespace abc::ckks
