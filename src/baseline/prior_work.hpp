#pragma once

/// @file prior_work.hpp
/// Analytic models of the comparison points in Fig. 1 and Fig. 5(a):
///
///  * [34] Wang et al. (TCAS-II'24) — the SOTA client-side accelerator.
///  * [22] Aloha-HE (DATE'24) — FPGA client-side accelerator.
///  * [9] Trinity — SOTA server-side ASIC (Fig. 1 server bars).
///
/// Neither comparison chip supports bootstrappable parameters; the paper
/// scaled their reported latencies by the operation-count ratio and
/// normalized clocks to 600 MHz. The absolute scaled latencies are not
/// printed in the paper — only the resulting speedups (214x / 82x for
/// [34]; Fig. 1 gives the 69.4% / 30.6% client/server split) — so these
/// models are parameterized by those published ratios. The assumptions
/// are recorded here and in EXPERIMENTS.md.

#include <string>

namespace abc::baseline {

struct PriorWorkPoint {
  std::string name;
  double encode_encrypt_ms = 0;
  double decode_decrypt_ms = 0;
  std::string basis;  // where the numbers come from
};

/// [34]: the paper reports ABC-FHE is 214x faster on encode+encrypt and
/// 82x on decode+decrypt than the SOTA client accelerator (normalized to
/// 600 MHz, op-count-scaled to N=2^16 bootstrappable parameters).
PriorWorkPoint sota_client_accelerator(double abc_enc_ms, double abc_dec_ms);

/// [22] Aloha-HE: the DATE'24 FPGA design; the paper groups it with [34]
/// in the "SOTA ASIC and FPGA implementations" comparison. We model it at
/// the same op-scaled order with the FPGA clock handicap (200 MHz class
/// fabric normalized to 600 MHz), landing slightly above [34] on
/// encode+encrypt.
PriorWorkPoint aloha_he(double abc_enc_ms, double abc_dec_ms);

/// [9] Trinity server-side time for one ResNet-20 inference under FHE,
/// calibrated from Fig. 1: with the [34] client, the client accounts for
/// 69.4% and the server 30.6% of end-to-end time.
double trinity_resnet20_server_ms(double client34_total_ms);

/// Server-side ResNet-20 time on the dual-Xeon CPU baseline (Fig. 1 top
/// bar, ~1e7 ms axis): expressed as a multiple of the Trinity time.
double cpu_resnet20_server_ms(double trinity_ms);

}  // namespace abc::baseline
