#pragma once

/// @file cpu_reference.hpp
/// Single-threaded CPU baseline: runs the client-side pipeline (the same
/// operations Lattigo executed on the paper's Intel i7-12700) with our
/// reference CKKS implementation, measuring wall-clock latency and
/// operation counts. Fig. 5(a) compares this against the accelerator
/// simulator; Fig. 2 uses the operation counters.

#include <complex>
#include <memory>
#include <vector>

#include "ckks/decryptor.hpp"
#include "ckks/encoder.hpp"
#include "ckks/encryptor.hpp"
#include "ckks/evaluator.hpp"
#include "transform/op_counter.hpp"

namespace abc::baseline {

struct CpuMeasurement {
  double encode_encrypt_ms = 0;
  double decode_decrypt_ms = 0;
  xf::OpCounts encode_encrypt_ops;
  xf::OpCounts decode_decrypt_ops;
};

/// Client workload driver: encode+encrypt fresh messages at
/// @p fresh_limbs, decode+decrypt server-returned ciphertexts at
/// @p returned_limbs (paper Sec. V-B: 24 and 2).
class CpuClientPipeline {
 public:
  CpuClientPipeline(const ckks::CkksParams& params,
                    ckks::EncryptMode mode, std::size_t fresh_limbs,
                    std::size_t returned_limbs);

  /// Wall-clock and op-count measurement over @p repeats iterations
  /// (median-of-runs for time, exact counts for ops).
  CpuMeasurement measure(int repeats = 3);

  /// One encode+encrypt (exposed for workload composition).
  ckks::Ciphertext encode_encrypt(
      std::span<const std::complex<double>> message);
  /// One decode+decrypt.
  std::vector<std::complex<double>> decode_decrypt(
      const ckks::Ciphertext& ct);

  const ckks::CkksContext& context() const { return *ctx_; }
  std::size_t fresh_limbs() const { return fresh_limbs_; }
  std::size_t returned_limbs() const { return returned_limbs_; }

 private:
  std::shared_ptr<const ckks::CkksContext> ctx_;
  ckks::CkksEncoder encoder_;
  ckks::KeyGenerator keygen_;
  ckks::SecretKey sk_;
  std::unique_ptr<ckks::Encryptor> encryptor_;
  ckks::Decryptor decryptor_;
  ckks::Evaluator evaluator_;
  std::size_t fresh_limbs_;
  std::size_t returned_limbs_;
};

}  // namespace abc::baseline
