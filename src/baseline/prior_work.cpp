#include "baseline/prior_work.hpp"

namespace abc::baseline {

PriorWorkPoint sota_client_accelerator(double abc_enc_ms, double abc_dec_ms) {
  return {
      .name = "Wang et al. [34] (SOTA client ASIC)",
      .encode_encrypt_ms = abc_enc_ms * 214.0,
      .decode_decrypt_ms = abc_dec_ms * 82.0,
      .basis = "paper-reported 214x/82x speedups, 600 MHz-normalized",
  };
}

PriorWorkPoint aloha_he(double abc_enc_ms, double abc_dec_ms) {
  // FPGA point: ~1.4x slower than [34] on encode+encrypt after clock
  // normalization (documented model assumption), comparable on decode.
  return {
      .name = "Aloha-HE [22] (FPGA)",
      .encode_encrypt_ms = abc_enc_ms * 214.0 * 1.4,
      .decode_decrypt_ms = abc_dec_ms * 82.0 * 1.15,
      .basis = "op-scaled from [34] with FPGA clock handicap (model)",
  };
}

double trinity_resnet20_server_ms(double client34_total_ms) {
  // 69.4% client / 30.6% server with the [34] client (paper Fig. 1).
  return client34_total_ms * (30.6 / 69.4);
}

double cpu_resnet20_server_ms(double trinity_ms) {
  // Fig. 1 top bar: homomorphic evaluation on the dual-Xeon baseline sits
  // at the 1e7 ms axis mark while the accelerated stack is ~1e2 ms class:
  // model the server ASIC gain as 3e5x (consistent with server-accelerator
  // literature for deep CNNs under FHE when batching is accounted).
  return trinity_ms * 3.0e5;
}

}  // namespace abc::baseline
