#include "baseline/cpu_reference.hpp"

#include <algorithm>
#include <chrono>
#include <random>

namespace abc::baseline {
namespace {

std::vector<std::complex<double>> random_message(std::size_t slots, u64 seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::complex<double>> msg(slots);
  for (auto& z : msg) z = {dist(rng), dist(rng)};
  return msg;
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

CpuClientPipeline::CpuClientPipeline(const ckks::CkksParams& params,
                                     ckks::EncryptMode mode,
                                     std::size_t fresh_limbs,
                                     std::size_t returned_limbs)
    : ctx_(ckks::CkksContext::create(params)),
      encoder_(ctx_),
      keygen_(ctx_),
      sk_(keygen_.secret_key()),
      decryptor_(ctx_, sk_),
      evaluator_(ctx_),
      fresh_limbs_(fresh_limbs),
      returned_limbs_(returned_limbs) {
  if (mode == ckks::EncryptMode::kPublicKey) {
    encryptor_ =
        std::make_unique<ckks::Encryptor>(ctx_, keygen_.public_key(sk_));
  } else {
    encryptor_ = std::make_unique<ckks::Encryptor>(ctx_, sk_);
  }
}

ckks::Ciphertext CpuClientPipeline::encode_encrypt(
    std::span<const std::complex<double>> message) {
  const ckks::Plaintext pt = encoder_.encode(message, fresh_limbs_);
  return encryptor_->encrypt(pt);
}

std::vector<std::complex<double>> CpuClientPipeline::decode_decrypt(
    const ckks::Ciphertext& ct) {
  const ckks::Plaintext pt = decryptor_.decrypt(ct);
  return encoder_.decode(pt);
}

CpuMeasurement CpuClientPipeline::measure(int repeats) {
  CpuMeasurement m;
  const auto message = random_message(ctx_->slots(), 99);

  // Server-returned ciphertext at the low level.
  ckks::Ciphertext returned = encode_encrypt(message);
  evaluator_.mod_switch_to_inplace(returned, returned_limbs_);

  std::vector<double> enc_times, dec_times;
  for (int r = 0; r < repeats; ++r) {
    {
      xf::OpCounterScope ops;
      const double t0 = now_ms();
      ckks::Ciphertext ct = encode_encrypt(message);
      enc_times.push_back(now_ms() - t0);
      m.encode_encrypt_ops = ops.delta();
      (void)ct;
    }
    {
      xf::OpCounterScope ops;
      const double t0 = now_ms();
      auto decoded = decode_decrypt(returned);
      dec_times.push_back(now_ms() - t0);
      m.decode_decrypt_ops = ops.delta();
      (void)decoded;
    }
  }
  std::sort(enc_times.begin(), enc_times.end());
  std::sort(dec_times.begin(), dec_times.end());
  m.encode_encrypt_ms = enc_times[enc_times.size() / 2];
  m.decode_decrypt_ms = dec_times[dec_times.size() / 2];
  return m;
}

}  // namespace abc::baseline
