#include "engine/client_session.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace abc::engine {

namespace {

BatchEncryptor make_encryptor(const std::shared_ptr<const ckks::CkksContext>& ctx,
                              const SessionConfig& config,
                              const ckks::SecretKey& sk,
                              const ckks::PublicKey& pk) {
  if (config.mode == ckks::EncryptMode::kPublicKey) {
    return BatchEncryptor(ctx, pk);
  }
  return BatchEncryptor(ctx, sk);
}

}  // namespace

ClientSession::ClientSession(std::shared_ptr<const ckks::CkksContext> ctx,
                             SessionConfig config)
    : ctx_(std::move(ctx)),
      config_(std::move(config)),
      // KeyGenerator keeps a separate counter per derived-key type, so
      // drawing sk and pk from two throwaway instances assigns the same
      // stream ids a single instance would. Secret ids themselves are
      // context-wide (reserve_secret_ids), so two sessions sharing a warm
      // context always hold distinct secrets.
      sk_([this] {
        ABC_CHECK_ARG(ctx_ != nullptr, "null context");
        ckks::KeyGenerator keygen(ctx_);
        return keygen.secret_key();
      }()),
      pk_([this] {
        ckks::KeyGenerator keygen(ctx_);
        return keygen.public_key(sk_);
      }()),
      keygen_(ctx_, sk_),
      encryptor_(make_encryptor(ctx_, config_, sk_, pk_)),
      decryptor_(ctx_, sk_) {}

const KeyBundle& ClientSession::key_bundle() {
  if (!key_bundle_) {
    const ckks::RelinKey rlk = keygen_.relin_key();
    const ckks::GaloisKeys gks = keygen_.galois_keys(config_.rotations);
    KeyBundle bundle;
    bundle.public_key =
        serialize_public_key(ctx_, pk_, config_.bits_per_coeff);
    bundle.relin_key =
        serialize_key_switch_key(ctx_, rlk.key, config_.bits_per_coeff);
    bundle.galois_keys.reserve(gks.keys.size());
    for (const ckks::KeySwitchKey& gk : gks.keys) {
      bundle.galois_keys.push_back(
          serialize_key_switch_key(ctx_, gk, config_.bits_per_coeff));
    }
    key_bundle_ = std::move(bundle);
  }
  return *key_bundle_;
}

std::vector<ckks::Ciphertext> ClientSession::encrypt(
    std::span<const std::vector<std::complex<double>>> messages,
    std::size_t limbs) {
  return encryptor_.encrypt_batch(messages, limbs);
}

std::vector<ckks::Ciphertext> ClientSession::encrypt_real(
    std::span<const std::vector<double>> messages, std::size_t limbs) {
  return encryptor_.encrypt_real_batch(messages, limbs);
}

std::vector<u8> ClientSession::upload(
    std::span<const std::vector<std::complex<double>>> messages,
    std::size_t limbs) {
  return serialize_ciphertext_batch(encrypt(messages, limbs),
                                    config_.bits_per_coeff);
}

std::vector<std::vector<std::complex<double>>> ClientSession::decrypt_batch(
    std::span<const ckks::Ciphertext> cts) {
  return decryptor_.decrypt_decode_batch(cts);
}

BatchVerifyReport ClientSession::verify(
    std::span<const ckks::Ciphertext> cts,
    std::span<const std::vector<std::complex<double>>> expected,
    double bound) {
  return decryptor_.verify_batch(cts, expected, bound);
}

BatchVerifyReport ClientSession::verify_download(
    std::span<const u8> envelope,
    std::span<const std::vector<std::complex<double>>> expected,
    double bound) {
  const std::vector<ckks::Ciphertext> cts =
      deserialize_ciphertext_batch(ctx_, envelope);
  return verify(cts, expected, bound);
}

ClientSession::RetryReport ClientSession::round_trip_with_retry(
    std::span<const std::vector<std::complex<double>>> messages,
    std::size_t limbs, const Transport& transport, std::size_t max_attempts,
    double bound) {
  ABC_CHECK_ARG(transport != nullptr, "null transport");
  ABC_CHECK_ARG(max_attempts >= 1, "max_attempts must be at least 1");
  const std::size_t n = messages.size();
  RetryReport report;
  report.attempts.assign(n, 0);
  report.verify.items.resize(n);
  std::vector<std::size_t> pending(n);
  for (std::size_t i = 0; i < n; ++i) pending[i] = i;

  while (!pending.empty()) {
    // An item only enters a round if it has attempts left; everyone in
    // `pending` here is being sent now.
    if (report.attempts[pending.front()] >= max_attempts) break;
    ++report.rounds;
    for (std::size_t i : pending) ++report.attempts[i];

    // Re-encrypt the pending subset. encrypt_batch reserves fresh stream
    // ids from the context-wide monotonic counter on every call, so a
    // retried item never reuses a stream — even for identical bytes.
    std::vector<std::vector<std::complex<double>>> round_msgs;
    round_msgs.reserve(pending.size());
    for (std::size_t i : pending) round_msgs.push_back(messages[i]);
    BatchErrorReport enc_errors;
    const std::vector<ckks::Ciphertext> cts =
        encryptor_.encrypt_batch(round_msgs, limbs, enc_errors);

    // Only the items that encrypted ship; the rest stay pending.
    std::vector<std::size_t> sent;        // indices into `pending`
    std::vector<ckks::Ciphertext> wire;
    sent.reserve(pending.size());
    wire.reserve(pending.size());
    for (std::size_t j = 0; j < pending.size(); ++j) {
      if (enc_errors.items[j].ok) {
        sent.push_back(j);
        wire.push_back(cts[j]);
      }
    }

    std::vector<std::size_t> next_pending;
    if (!sent.empty()) {
      bool round_ok = true;
      BatchVerifyReport round_verify;
      try {
        const std::vector<u8> response = transport(
            serialize_ciphertext_batch(wire, config_.bits_per_coeff));
        const std::vector<ckks::Ciphertext> returned =
            deserialize_ciphertext_batch(ctx_, response);
        ABC_CHECK_ARG(returned.size() == wire.size(),
                      "response item count does not match the upload");
        std::vector<std::vector<std::complex<double>>> expected;
        expected.reserve(sent.size());
        for (std::size_t j : sent) expected.push_back(round_msgs[j]);
        BatchErrorReport verify_errors;
        round_verify =
            decryptor_.verify_batch(returned, expected, verify_errors, bound);
      } catch (const std::exception& e) {
        // Whole-round failure (transport, envelope parse, count mismatch):
        // every item sent this round stays pending.
        round_ok = false;
        report.round_errors.emplace_back(e.what());
      }
      for (std::size_t k = 0; k < sent.size(); ++k) {
        const std::size_t i = pending[sent[k]];
        if (round_ok && round_verify.items[k].ok) {
          report.verify.items[i] = round_verify.items[k];
        } else {
          if (round_ok) report.verify.items[i] = round_verify.items[k];
          next_pending.push_back(i);
        }
      }
    }
    for (std::size_t j = 0; j < pending.size(); ++j) {
      if (!enc_errors.items[j].ok) next_pending.push_back(pending[j]);
    }
    // Keep input order so the next round's stream assignment (and the
    // report) stays schedule-independent.
    std::sort(next_pending.begin(), next_pending.end());
    pending = std::move(next_pending);
  }

  // Fold the final per-item reports the same way verify_batch does.
  report.verify.ok = true;
  report.verify.passed = 0;
  report.verify.failed = 0;
  report.verify.worst_abs_error = 0.0;
  report.verify.worst_precision_bits = 60.0;
  for (const ckks::VerifyReport& item : report.verify.items) {
    (item.ok ? report.verify.passed : report.verify.failed) += 1;
    report.verify.ok = report.verify.ok && item.ok;
    report.verify.worst_abs_error =
        std::max(report.verify.worst_abs_error, item.max_abs_error);
    report.verify.worst_precision_bits =
        std::min(report.verify.worst_precision_bits, item.precision_bits);
  }
  report.ok = pending.empty() && report.verify.ok;
  return report;
}

}  // namespace abc::engine
