#include "engine/client_session.hpp"

#include "common/check.hpp"

namespace abc::engine {

namespace {

BatchEncryptor make_encryptor(const std::shared_ptr<const ckks::CkksContext>& ctx,
                              const SessionConfig& config,
                              const ckks::SecretKey& sk,
                              const ckks::PublicKey& pk) {
  if (config.mode == ckks::EncryptMode::kPublicKey) {
    return BatchEncryptor(ctx, pk);
  }
  return BatchEncryptor(ctx, sk);
}

}  // namespace

ClientSession::ClientSession(std::shared_ptr<const ckks::CkksContext> ctx,
                             SessionConfig config)
    : ctx_(std::move(ctx)),
      config_(std::move(config)),
      // KeyGenerator keeps a separate counter per derived-key type, so
      // drawing sk and pk from two throwaway instances assigns the same
      // stream ids a single instance would. Secret ids themselves are
      // context-wide (reserve_secret_ids), so two sessions sharing a warm
      // context always hold distinct secrets.
      sk_([this] {
        ABC_CHECK_ARG(ctx_ != nullptr, "null context");
        ckks::KeyGenerator keygen(ctx_);
        return keygen.secret_key();
      }()),
      pk_([this] {
        ckks::KeyGenerator keygen(ctx_);
        return keygen.public_key(sk_);
      }()),
      keygen_(ctx_, sk_),
      encryptor_(make_encryptor(ctx_, config_, sk_, pk_)),
      decryptor_(ctx_, sk_) {}

const KeyBundle& ClientSession::key_bundle() {
  if (!key_bundle_) {
    const ckks::RelinKey rlk = keygen_.relin_key();
    const ckks::GaloisKeys gks = keygen_.galois_keys(config_.rotations);
    KeyBundle bundle;
    bundle.public_key =
        serialize_public_key(ctx_, pk_, config_.bits_per_coeff);
    bundle.relin_key =
        serialize_key_switch_key(ctx_, rlk.key, config_.bits_per_coeff);
    bundle.galois_keys.reserve(gks.keys.size());
    for (const ckks::KeySwitchKey& gk : gks.keys) {
      bundle.galois_keys.push_back(
          serialize_key_switch_key(ctx_, gk, config_.bits_per_coeff));
    }
    key_bundle_ = std::move(bundle);
  }
  return *key_bundle_;
}

std::vector<ckks::Ciphertext> ClientSession::encrypt(
    std::span<const std::vector<std::complex<double>>> messages,
    std::size_t limbs) {
  return encryptor_.encrypt_batch(messages, limbs);
}

std::vector<ckks::Ciphertext> ClientSession::encrypt_real(
    std::span<const std::vector<double>> messages, std::size_t limbs) {
  return encryptor_.encrypt_real_batch(messages, limbs);
}

std::vector<u8> ClientSession::upload(
    std::span<const std::vector<std::complex<double>>> messages,
    std::size_t limbs) {
  return serialize_ciphertext_batch(encrypt(messages, limbs),
                                    config_.bits_per_coeff);
}

std::vector<std::vector<std::complex<double>>> ClientSession::decrypt_batch(
    std::span<const ckks::Ciphertext> cts) {
  return decryptor_.decrypt_decode_batch(cts);
}

BatchVerifyReport ClientSession::verify(
    std::span<const ckks::Ciphertext> cts,
    std::span<const std::vector<std::complex<double>>> expected,
    double bound) {
  return decryptor_.verify_batch(cts, expected, bound);
}

BatchVerifyReport ClientSession::verify_download(
    std::span<const u8> envelope,
    std::span<const std::vector<std::complex<double>>> expected,
    double bound) {
  const std::vector<ckks::Ciphertext> cts =
      deserialize_ciphertext_batch(ctx_, envelope);
  return verify(cts, expected, bound);
}

}  // namespace abc::engine
