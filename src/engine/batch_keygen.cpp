#include "engine/batch_keygen.hpp"

#include "common/check.hpp"
#include "common/failpoint.hpp"

namespace abc::engine {

namespace {

poly::RnsPoly squared(const poly::RnsPoly& s) {
  poly::RnsPoly s2 = s;
  s2.mul_inplace(s);
  return s2;
}

poly::RnsPoly negated(const poly::RnsPoly& s) {
  poly::RnsPoly neg = s;
  neg.negate_inplace();
  return neg;
}

}  // namespace

BatchKeyGenerator::BatchKeyGenerator(
    std::shared_ptr<const ckks::CkksContext> ctx, const ckks::SecretKey& sk)
    : core_(std::move(ctx)),
      s_eval_(sk.s),
      s_neg_eval_(negated(sk.s)),
      secret_id_(sk.stream_id),
      scratch_(core_.ctx()) {}

/// Allocates the key metadata + uninitialized digit polynomials; the base
/// stream id (secret-salted, contiguous counter block) is fixed here,
/// before any fan-out, so scheduling cannot change stream assignment.
ckks::KeySwitchKey BatchKeyGenerator::make_key_shell(
    ckks::KeySwitchKey::Kind kind, u32 galois_elt) {
  const ckks::CkksContext& ctx = core_.ctx();
  const std::size_t digits = ctx.max_limbs();
  ckks::KeySwitchKey key;
  key.kind = kind;
  key.galois_elt = galois_elt;
  key.base_stream_id =
      ckks::ksk_base_stream_id(secret_id_, reserve_stream_ids(digits));
  key.b.reserve(digits);
  key.a.reserve(digits);
  for (std::size_t d = 0; d < digits; ++d) {
    key.b.push_back(ctx.make_poly(digits, poly::Domain::kEval));
    key.a.push_back(ctx.make_poly(digits, poly::Domain::kEval));
  }
  return key;
}

ckks::KeySwitchKey BatchKeyGenerator::make_ksk_parallel(
    ckks::KeySwitchKey::Kind kind, u32 galois_elt,
    const poly::RnsPoly& s_prime_eval) {
  ckks::KeySwitchKey key = make_key_shell(kind, galois_elt);
  core_.run(key.digits(), [&](std::size_t d, std::size_t worker) {
    ABC_FAILPOINT(fail::points::kKeygenDigit);
    ckks::generate_ksk_digit(core_.ctx(), s_neg_eval_, s_prime_eval, kind,
                             galois_elt, key.base_stream_id + d, d, key.b[d],
                             key.a[d], &scratch_.at(worker));
  });
  return key;
}

ckks::RelinKey BatchKeyGenerator::relin_key() {
  if (!s2_eval_) s2_eval_ = squared(s_eval_);
  return ckks::RelinKey{
      make_ksk_parallel(ckks::KeySwitchKey::Kind::kRelin, 0, *s2_eval_)};
}

ckks::RelinKey BatchKeyGenerator::relin_key(BatchErrorReport& report) {
  if (!s2_eval_) s2_eval_ = squared(s_eval_);
  ckks::KeySwitchKey key =
      make_key_shell(ckks::KeySwitchKey::Kind::kRelin, 0);
  report = core_.run_isolated(key.digits(), [&](std::size_t d,
                                                std::size_t worker) {
    ABC_FAILPOINT(fail::points::kKeygenDigit);
    ckks::generate_ksk_digit(core_.ctx(), s_neg_eval_, *s2_eval_,
                             ckks::KeySwitchKey::Kind::kRelin, 0,
                             key.base_stream_id + d, d, key.b[d], key.a[d],
                             &scratch_.at(worker));
  });
  // A switching key is only usable whole: any failed digit voids the key,
  // and the caller gets digits() == 0 rather than a half-written gadget.
  if (!report.ok()) {
    key.b.clear();
    key.a.clear();
  }
  return ckks::RelinKey{std::move(key)};
}

ckks::GaloisKeys BatchKeyGenerator::galois_keys(std::span<const int> steps) {
  // Rotated secrets first (each automorphism + NTT already fans its limbs
  // across the pool), then every (step, digit) pair as one flat work
  // list. Counter blocks are reserved in step order before the fan-out,
  // so the result is independent of the worker count.
  const ckks::CkksContext& ctx = core_.ctx();
  ckks::GaloisKeys out;
  out.slots = ctx.slots();
  out.steps.assign(steps.begin(), steps.end());
  if (steps.empty()) return out;
  out.keys.reserve(steps.size());
  std::vector<poly::RnsPoly> rotated;
  rotated.reserve(steps.size());
  poly::RnsPoly s_coeff = s_eval_;
  s_coeff.to_coeff();
  for (int step : steps) {
    const u32 elt = ckks::galois_element(step, ctx.n());
    poly::RnsPoly s_rot = s_coeff.automorphism(elt);
    s_rot.to_eval();
    rotated.push_back(std::move(s_rot));
    out.keys.push_back(
        make_key_shell(ckks::KeySwitchKey::Kind::kGalois, elt));
  }
  const std::size_t digits = ctx.max_limbs();
  core_.run(steps.size() * digits, [&](std::size_t i, std::size_t worker) {
    const std::size_t k = i / digits;
    const std::size_t d = i % digits;
    ckks::KeySwitchKey& key = out.keys[k];
    ABC_FAILPOINT(fail::points::kKeygenDigit);
    ckks::generate_ksk_digit(ctx, s_neg_eval_, rotated[k],
                             ckks::KeySwitchKey::Kind::kGalois,
                             key.galois_elt, key.base_stream_id + d, d,
                             key.b[d], key.a[d], &scratch_.at(worker));
  });
  return out;
}

ckks::GaloisKeys BatchKeyGenerator::galois_keys(std::span<const int> steps,
                                                BatchErrorReport& report) {
  // Same shape as the throwing overload — shells (and counter blocks) are
  // reserved in step order before the fan-out, so surviving keys are
  // bit-identical to the ones a fault-free call would produce.
  const ckks::CkksContext& ctx = core_.ctx();
  ckks::GaloisKeys out;
  out.slots = ctx.slots();
  out.steps.assign(steps.begin(), steps.end());
  if (steps.empty()) {
    report = BatchErrorReport{};
    return out;
  }
  out.keys.reserve(steps.size());
  std::vector<poly::RnsPoly> rotated;
  rotated.reserve(steps.size());
  poly::RnsPoly s_coeff = s_eval_;
  s_coeff.to_coeff();
  for (int step : steps) {
    const u32 elt = ckks::galois_element(step, ctx.n());
    poly::RnsPoly s_rot = s_coeff.automorphism(elt);
    s_rot.to_eval();
    rotated.push_back(std::move(s_rot));
    out.keys.push_back(
        make_key_shell(ckks::KeySwitchKey::Kind::kGalois, elt));
  }
  const std::size_t digits = ctx.max_limbs();
  const BatchErrorReport per_digit =
      core_.run_isolated(steps.size() * digits, [&](std::size_t i,
                                                    std::size_t worker) {
        const std::size_t k = i / digits;
        const std::size_t d = i % digits;
        ckks::KeySwitchKey& key = out.keys[k];
        ABC_FAILPOINT(fail::points::kKeygenDigit);
        ckks::generate_ksk_digit(ctx, s_neg_eval_, rotated[k],
                                 ckks::KeySwitchKey::Kind::kGalois,
                                 key.galois_elt, key.base_stream_id + d, d,
                                 key.b[d], key.a[d], &scratch_.at(worker));
      });
  // Fold per-digit outcomes to per-step items: a key fails if any of its
  // digits did (lowest failed digit reports), and a failed key is voided —
  // digits() == 0, never a half-written gadget.
  std::vector<ItemStatus> per_step(steps.size());
  for (std::size_t k = 0; k < steps.size(); ++k) {
    for (std::size_t d = 0; d < digits; ++d) {
      const ItemStatus& st = per_digit.items[k * digits + d];
      if (!st.ok && per_step[k].ok) per_step[k] = st;
    }
    if (!per_step[k].ok) {
      out.keys[k].b.clear();
      out.keys[k].a.clear();
    }
  }
  report = BatchErrorReport{};
  report.items = std::move(per_step);
  for (const ItemStatus& st : report.items) {
    if (st.ok) {
      ++report.succeeded;
    } else {
      if (report.failed == 0) report.first_error = st.error;
      ++report.failed;
    }
  }
  return out;
}

}  // namespace abc::engine
