#pragma once

/// @file fan_out_core.hpp
/// Shared deterministic fan-out core for every batch engine. The three
/// engines (BatchEncryptor, BatchKeyGenerator, BatchDecryptor) used to
/// each reimplement the same machinery; it lives here exactly once:
///
///  * **Contiguous stream-id reservation.** Randomness-consuming work
///    reserves its id block from the *context-wide* atomic counter
///    (CkksContext::reserve_stream_ids) BEFORE any fan-out, so scheduling
///    cannot change which item gets which stream — and two engines sharing
///    a context can never alias a stream id, no matter how their calls
///    interleave.
///  * **Per-worker scratch pools** (ScratchPool<S>): one scratch per
///    backend lane, indexed by the worker id parallel_for hands each job,
///    so hot paths stop allocating after warm-up without any locking.
///  * **The bit-identical-at-any-worker-count contract.** Work items are
///    independent (parallelism only partitions, never reorders a
///    reduction) and any randomness is fully determined by the reserved
///    (domain, stream id) — so a ScalarBackend run, a 1-thread pool and an
///    8-thread pool all produce the same bytes. Engines inherit the
///    contract by routing every fan-out through run()/run_with_ids().
///  * **Failure isolation** (run_isolated()/run_with_ids_isolated()): the
///    per-item-fault mode every engine exposes. One malformed item must
///    not abort the batch — each job runs under its own catch, outcomes
///    land in a BatchErrorReport in input order, and the serial fold picks
///    the first error by input index (never by completion time), so the
///    report itself is identical at any worker count. Stream ids are
///    reserved identically in both modes, so the surviving items of a
///    faulty batch are bit-identical to the same items of a clean one.

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "ckks/context.hpp"

namespace abc::engine {

/// Outcome of one batch item in a fault-isolating fan-out.
struct ItemStatus {
  bool ok = true;
  std::string error;  // what() of the item's exception; empty when ok
};

/// Input-order per-item error report of a fault-isolating batch call.
/// Successes are preserved, failed slots of the paired output container
/// are well-defined-empty, and the aggregates are schedule-independent.
struct BatchErrorReport {
  std::vector<ItemStatus> items;  // input order, one per batch item
  std::size_t succeeded = 0;
  std::size_t failed = 0;
  std::string first_error;  // message of the lowest-index failure

  bool ok() const noexcept { return failed == 0; }
  std::size_t size() const noexcept { return items.size(); }
};

class FanOutCore {
 public:
  explicit FanOutCore(std::shared_ptr<const ckks::CkksContext> ctx);

  const ckks::CkksContext& ctx() const noexcept { return *ctx_; }

  /// Lanes the underlying backend executes on (scratch pools match this).
  std::size_t workers() const noexcept { return workers_; }

  /// Reserves @p count consecutive ids from the context-wide counter.
  u64 reserve_stream_ids(u64 count) const {
    return ctx_->reserve_stream_ids(count);
  }

  using Job = std::function<void(std::size_t index, std::size_t worker)>;
  using IdJob =
      std::function<void(std::size_t index, std::size_t worker, u64 id)>;

  /// Executes job(i, worker) for every i in [0, count) across the
  /// backend; exceptions from jobs rethrow on the calling thread.
  void run(std::size_t count, const Job& job) const;

  /// Reserves @p count contiguous stream ids up front, then executes
  /// job(i, worker, base + i) — the randomness-consuming fan-out shape.
  void run_with_ids(std::size_t count, const IdJob& job) const;

  /// Fault-isolating run(): every job executes under its own catch, and
  /// the returned report records each item's outcome in input order. Jobs
  /// that complete are untouched by jobs that fail.
  BatchErrorReport run_isolated(std::size_t count, const Job& job) const;

  /// Fault-isolating run_with_ids(): ids are reserved exactly as in the
  /// throwing mode (base + i regardless of failures), so surviving items
  /// are bit-identical to the same items of a fault-free batch.
  BatchErrorReport run_with_ids_isolated(std::size_t count,
                                         const IdJob& job) const;

 private:
  BatchErrorReport fold_statuses(std::vector<ItemStatus> statuses) const;

  std::shared_ptr<const ckks::CkksContext> ctx_;
  std::size_t workers_;
};

/// One scratch object per backend lane. S is constructed from the context
/// when such a constructor exists (EncryptScratch, DecryptScratch) and
/// default-constructed otherwise (SamplerScratch).
template <class S>
class ScratchPool {
 public:
  explicit ScratchPool(const ckks::CkksContext& ctx) {
    const std::size_t lanes = ctx.backend().workers();
    pool_.reserve(lanes);
    for (std::size_t i = 0; i < lanes; ++i) {
      if constexpr (std::is_constructible_v<S, const ckks::CkksContext&>) {
        pool_.emplace_back(ctx);
      } else {
        pool_.emplace_back();
      }
    }
  }

  std::size_t size() const noexcept { return pool_.size(); }
  S& at(std::size_t worker) { return pool_.at(worker); }

 private:
  std::vector<S> pool_;
};

}  // namespace abc::engine
