#include "engine/batch_encryptor.hpp"

#include "common/failpoint.hpp"

namespace abc::engine {

BatchEncryptor::BatchEncryptor(std::shared_ptr<const ckks::CkksContext> ctx,
                               ckks::PublicKey pk)
    : core_(ctx),
      encoder_(ctx),
      encryptor_(std::move(ctx), std::move(pk)),
      scratch_(core_.ctx()) {}

BatchEncryptor::BatchEncryptor(std::shared_ptr<const ckks::CkksContext> ctx,
                               const ckks::SecretKey& sk)
    : core_(ctx),
      encoder_(ctx),
      encryptor_(std::move(ctx), sk),
      scratch_(core_.ctx()) {}

std::vector<ckks::Ciphertext> BatchEncryptor::run(
    std::size_t count,
    const std::function<ckks::Ciphertext(std::size_t, ckks::EncryptScratch&,
                                         u64)>& item) {
  std::vector<ckks::Ciphertext> out(count);
  core_.run_with_ids(count, [&](std::size_t i, std::size_t worker, u64 id) {
    ABC_FAILPOINT(fail::points::kEncryptItem);
    out[i] = item(i, scratch_.at(worker), id);
  });
  return out;
}

std::vector<ckks::Ciphertext> BatchEncryptor::run_isolated(
    std::size_t count,
    const std::function<ckks::Ciphertext(std::size_t, ckks::EncryptScratch&,
                                         u64)>& item,
    BatchErrorReport& report) {
  // A failed item leaves its slot as the default-constructed Ciphertext it
  // started as — never a torn write, since item() builds the ciphertext in
  // scratch-local storage and only a completed result is move-assigned in.
  std::vector<ckks::Ciphertext> out(count);
  report = core_.run_with_ids_isolated(
      count, [&](std::size_t i, std::size_t worker, u64 id) {
        ABC_FAILPOINT(fail::points::kEncryptItem);
        out[i] = item(i, scratch_.at(worker), id);
      });
  return out;
}

std::vector<ckks::Ciphertext> BatchEncryptor::encrypt_batch(
    std::span<const std::vector<std::complex<double>>> messages,
    std::size_t limbs) {
  return run(messages.size(), [&](std::size_t i,
                                  ckks::EncryptScratch& scratch, u64 id) {
    const ckks::Plaintext pt = encoder_.encode(messages[i], limbs);
    return encryptor_.encrypt_with(pt, id, scratch);
  });
}

std::vector<ckks::Ciphertext> BatchEncryptor::encrypt_batch(
    std::span<const std::vector<std::complex<double>>> messages,
    std::size_t limbs, BatchErrorReport& report) {
  return run_isolated(
      messages.size(),
      [&](std::size_t i, ckks::EncryptScratch& scratch, u64 id) {
        const ckks::Plaintext pt = encoder_.encode(messages[i], limbs);
        return encryptor_.encrypt_with(pt, id, scratch);
      },
      report);
}

std::vector<ckks::Ciphertext> BatchEncryptor::encrypt_real_batch(
    std::span<const std::vector<double>> messages, std::size_t limbs) {
  return run(messages.size(), [&](std::size_t i,
                                  ckks::EncryptScratch& scratch, u64 id) {
    const ckks::Plaintext pt = encoder_.encode_real(messages[i], limbs);
    return encryptor_.encrypt_with(pt, id, scratch);
  });
}

std::vector<ckks::Ciphertext> BatchEncryptor::encrypt_real_batch(
    std::span<const std::vector<double>> messages, std::size_t limbs,
    BatchErrorReport& report) {
  return run_isolated(
      messages.size(),
      [&](std::size_t i, ckks::EncryptScratch& scratch, u64 id) {
        const ckks::Plaintext pt = encoder_.encode_real(messages[i], limbs);
        return encryptor_.encrypt_with(pt, id, scratch);
      },
      report);
}

std::vector<ckks::Ciphertext> BatchEncryptor::encrypt_plaintexts(
    std::span<const ckks::Plaintext> plaintexts) {
  return run(plaintexts.size(), [&](std::size_t i,
                                    ckks::EncryptScratch& scratch, u64 id) {
    return encryptor_.encrypt_with(plaintexts[i], id, scratch);
  });
}

}  // namespace abc::engine
