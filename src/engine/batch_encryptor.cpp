#include "engine/batch_encryptor.hpp"

#include "common/check.hpp"

namespace abc::engine {

namespace {

std::vector<ckks::EncryptScratch> make_scratch(const ckks::CkksContext& ctx) {
  std::vector<ckks::EncryptScratch> scratch;
  const std::size_t lanes = ctx.backend().workers();
  scratch.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) scratch.emplace_back(ctx);
  return scratch;
}

}  // namespace

BatchEncryptor::BatchEncryptor(std::shared_ptr<const ckks::CkksContext> ctx,
                               ckks::PublicKey pk)
    : ctx_(ctx),
      encoder_(ctx),
      encryptor_(ctx, std::move(pk)),
      scratch_(make_scratch(*ctx_)) {}

BatchEncryptor::BatchEncryptor(std::shared_ptr<const ckks::CkksContext> ctx,
                               const ckks::SecretKey& sk)
    : ctx_(ctx),
      encoder_(ctx),
      encryptor_(ctx, sk),
      scratch_(make_scratch(*ctx_)) {}

std::vector<ckks::Ciphertext> BatchEncryptor::run(
    std::size_t count,
    const std::function<ckks::Ciphertext(std::size_t, ckks::EncryptScratch&,
                                         u64)>& item) {
  std::vector<ckks::Ciphertext> out(count);
  if (count == 0) return out;
  const u64 base = encryptor_.reserve_stream_ids(count);
  ctx_->backend().parallel_for(
      count, [&](std::size_t i, std::size_t worker) {
        out[i] = item(i, scratch_.at(worker), base + i);
      });
  return out;
}

std::vector<ckks::Ciphertext> BatchEncryptor::encrypt_batch(
    std::span<const std::vector<std::complex<double>>> messages,
    std::size_t limbs) {
  return run(messages.size(), [&](std::size_t i,
                                  ckks::EncryptScratch& scratch, u64 id) {
    const ckks::Plaintext pt = encoder_.encode(messages[i], limbs);
    return encryptor_.encrypt_with(pt, id, scratch);
  });
}

std::vector<ckks::Ciphertext> BatchEncryptor::encrypt_real_batch(
    std::span<const std::vector<double>> messages, std::size_t limbs) {
  return run(messages.size(), [&](std::size_t i,
                                  ckks::EncryptScratch& scratch, u64 id) {
    const ckks::Plaintext pt = encoder_.encode_real(messages[i], limbs);
    return encryptor_.encrypt_with(pt, id, scratch);
  });
}

std::vector<ckks::Ciphertext> BatchEncryptor::encrypt_plaintexts(
    std::span<const ckks::Plaintext> plaintexts) {
  return run(plaintexts.size(), [&](std::size_t i,
                                    ckks::EncryptScratch& scratch, u64 id) {
    return encryptor_.encrypt_with(plaintexts[i], id, scratch);
  });
}

}  // namespace abc::engine
