#include "engine/batch_decryptor.hpp"

#include <algorithm>
#include <optional>

#include "common/check.hpp"
#include "common/failpoint.hpp"

namespace abc::engine {

BatchDecryptor::BatchDecryptor(std::shared_ptr<const ckks::CkksContext> ctx,
                               const ckks::SecretKey& sk)
    : core_(ctx),
      encoder_(ctx),
      decryptor_(std::move(ctx), sk),
      scratch_(core_.ctx()) {}

std::vector<ckks::Plaintext> BatchDecryptor::decrypt_batch(
    std::span<const ckks::Ciphertext> cts) {
  // Plaintext is not default-constructible (RnsPoly carries its context),
  // so stage the parallel writes through optionals and unwrap in order.
  std::vector<std::optional<ckks::Plaintext>> staged(cts.size());
  core_.run(cts.size(), [&](std::size_t i, std::size_t worker) {
    ABC_FAILPOINT(fail::points::kDecryptItem);
    staged[i] = decryptor_.decrypt_with(cts[i], scratch_.at(worker));
  });
  std::vector<ckks::Plaintext> out;
  out.reserve(cts.size());
  for (auto& pt : staged) out.push_back(std::move(*pt));
  return out;
}

std::vector<std::optional<ckks::Plaintext>> BatchDecryptor::decrypt_batch(
    std::span<const ckks::Ciphertext> cts, BatchErrorReport& report) {
  std::vector<std::optional<ckks::Plaintext>> out(cts.size());
  report = core_.run_isolated(cts.size(), [&](std::size_t i,
                                              std::size_t worker) {
    ABC_FAILPOINT(fail::points::kDecryptItem);
    out[i] = decryptor_.decrypt_with(cts[i], scratch_.at(worker));
  });
  return out;
}

std::vector<std::vector<std::complex<double>>>
BatchDecryptor::decrypt_decode_batch(std::span<const ckks::Ciphertext> cts) {
  std::vector<std::vector<std::complex<double>>> out(cts.size());
  core_.run(cts.size(), [&](std::size_t i, std::size_t worker) {
    ABC_FAILPOINT(fail::points::kDecryptItem);
    out[i] =
        encoder_.decode(decryptor_.decrypt_with(cts[i], scratch_.at(worker)));
  });
  return out;
}

std::vector<std::vector<std::complex<double>>>
BatchDecryptor::decrypt_decode_batch(std::span<const ckks::Ciphertext> cts,
                                     BatchErrorReport& report) {
  std::vector<std::vector<std::complex<double>>> out(cts.size());
  report = core_.run_isolated(cts.size(), [&](std::size_t i,
                                              std::size_t worker) {
    ABC_FAILPOINT(fail::points::kDecryptItem);
    // decode() returns a fresh vector, so a throw before the assignment
    // leaves out[i] as the empty vector it started as — never half-written.
    out[i] =
        encoder_.decode(decryptor_.decrypt_with(cts[i], scratch_.at(worker)));
  });
  return out;
}

namespace {

// Serial fold after the fan-out: aggregation order never depends on
// worker scheduling.
void fold_verify_items(BatchVerifyReport& report) {
  report.ok = true;
  report.passed = 0;
  report.failed = 0;
  report.worst_abs_error = 0.0;
  report.worst_precision_bits = 60.0;
  for (const ckks::VerifyReport& item : report.items) {
    (item.ok ? report.passed : report.failed) += 1;
    report.ok = report.ok && item.ok;
    report.worst_abs_error =
        std::max(report.worst_abs_error, item.max_abs_error);
    report.worst_precision_bits =
        std::min(report.worst_precision_bits, item.precision_bits);
  }
}

}  // namespace

BatchVerifyReport BatchDecryptor::verify_batch(
    std::span<const ckks::Ciphertext> cts,
    std::span<const std::vector<std::complex<double>>> expected,
    double bound) {
  ABC_CHECK_ARG(cts.size() == expected.size(),
                "one expected slot vector per ciphertext");
  BatchVerifyReport report;
  report.items.resize(cts.size());
  core_.run(cts.size(), [&](std::size_t i, std::size_t worker) {
    ABC_FAILPOINT(fail::points::kVerifyItem);
    report.items[i] =
        ckks::verify_decode(core_.ctx(), cts[i], decryptor_, encoder_,
                            expected[i], bound, scratch_.at(worker));
  });
  fold_verify_items(report);
  return report;
}

BatchVerifyReport BatchDecryptor::verify_batch(
    std::span<const ckks::Ciphertext> cts,
    std::span<const std::vector<std::complex<double>>> expected,
    BatchErrorReport& errors, double bound) {
  ABC_CHECK_ARG(cts.size() == expected.size(),
                "one expected slot vector per ciphertext");
  BatchVerifyReport report;
  report.items.resize(cts.size());
  errors = core_.run_isolated(cts.size(), [&](std::size_t i,
                                              std::size_t worker) {
    ABC_FAILPOINT(fail::points::kVerifyItem);
    report.items[i] =
        ckks::verify_decode(core_.ctx(), cts[i], decryptor_, encoder_,
                            expected[i], bound, scratch_.at(worker));
  });
  // A slot whose verify threw keeps the default VerifyReport — ok=false —
  // so the fold counts it as failed without consulting the error report.
  fold_verify_items(report);
  return report;
}

}  // namespace abc::engine
