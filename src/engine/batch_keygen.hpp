#pragma once

/// @file batch_keygen.hpp
/// Multi-threaded client key-generation engine: fans the gadget digits of
/// relinearization and Galois keys across the execution backend's workers.
/// This is the second half of the paper's client workload (Sec. IV,
/// Fig. 5a): besides encode+encrypt, the client generates the switching-key
/// material a server needs for bootstrappable parameters, all derived from
/// the on-chip seed — BTS/ARK-class servers are fed seed-compressed keys,
/// so the client-side cost is exactly this generation pass.
///
/// Determinism comes from engine::FanOutCore: every digit's randomness is
/// fully determined by its (domain, stream id) pair, and a key reserves
/// its contiguous id block from the context-wide counter before the
/// fan-out — so keys are bit-identical for any backend and any worker
/// count, the same contract BatchEncryptor gives for ciphertexts, and two
/// key engines sharing a context can never alias a stream id.
///
/// Each worker owns a SamplerScratch; the per-digit hot path allocates
/// only the key polynomials it returns — the -(a*s) term is a fused
/// multiply-add against a hoisted -s, with no product buffer.

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "ckks/keygen.hpp"
#include "engine/fan_out_core.hpp"

namespace abc::engine {

class BatchKeyGenerator {
 public:
  BatchKeyGenerator(std::shared_ptr<const ckks::CkksContext> ctx,
                    const ckks::SecretKey& sk);

  /// Lanes the underlying backend executes on (and scratch copies held).
  std::size_t workers() const noexcept { return core_.workers(); }

  /// Relinearization key (s^2 -> s); digits generated across the workers.
  ckks::RelinKey relin_key();

  /// Galois keys for @p steps. Rotated secrets are prepared per step, then
  /// all (step, digit) pairs fan out as one flat work list — with S steps
  /// and D digits every one of the S*D independent items can land on its
  /// own worker.
  ckks::GaloisKeys galois_keys(std::span<const int> steps);

  // -- per-item-fault mode ----------------------------------------------------
  // A key is only usable if every gadget digit generated, so the report
  // granularity is one item per *key*: per digit for relin (one key, D
  // digit items), per step for galois (a step fails if any of its digits
  // failed, reporting the lowest failed digit's error). A failed key comes
  // back with b/a cleared — well-defined-empty, digits() == 0 — never a
  // half-written digit list.

  ckks::RelinKey relin_key(BatchErrorReport& report);

  ckks::GaloisKeys galois_keys(std::span<const int> steps,
                               BatchErrorReport& report);

  /// Reserves @p count consecutive key counter values from the
  /// context-wide counter (the secret id is folded into the resulting
  /// base via ckks::ksk_base_stream_id).
  u64 reserve_stream_ids(u64 count) const {
    return core_.reserve_stream_ids(count);
  }

 private:
  ckks::KeySwitchKey make_key_shell(ckks::KeySwitchKey::Kind kind,
                                    u32 galois_elt);
  ckks::KeySwitchKey make_ksk_parallel(ckks::KeySwitchKey::Kind kind,
                                       u32 galois_elt,
                                       const poly::RnsPoly& s_prime_eval);

  FanOutCore core_;
  poly::RnsPoly s_eval_;      // secret, evaluation form
  poly::RnsPoly s_neg_eval_;  // -s, the fma operand of every digit
  // s^2, computed on first relin_key() (a Galois-only caller never pays
  // the full-width multiply) and shared by every later call.
  std::optional<poly::RnsPoly> s2_eval_;
  u64 secret_id_;             // SecretKey::stream_id, salts every base id
  ScratchPool<ckks::SamplerScratch> scratch_;  // one per backend worker
};

}  // namespace abc::engine
