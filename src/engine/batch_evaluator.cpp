#include "engine/batch_evaluator.hpp"

#include "ckks/key_source.hpp"
#include "common/failpoint.hpp"

namespace abc::engine {

BatchEvaluator::BatchEvaluator(std::shared_ptr<const ckks::CkksContext> ctx)
    : core_(ctx), evaluator_(std::move(ctx)), scratch_(core_.ctx()) {}

std::vector<ckks::Ciphertext> BatchEvaluator::rotate_batch(
    std::span<const ckks::Ciphertext> cts, int step,
    const ckks::GaloisKeys& gks) {
  std::vector<ckks::Ciphertext> out(cts.size());
  core_.run(cts.size(), [&](std::size_t i, std::size_t worker) {
    ABC_FAILPOINT(fail::points::kEvaluateItem);
    out[i] = evaluator_.rotate(cts[i], step, gks, &scratch_.at(worker));
  });
  return out;
}

std::vector<ckks::Ciphertext> BatchEvaluator::rotate_batch(
    std::span<const ckks::Ciphertext> cts, int step,
    const ckks::GaloisKeys& gks, BatchErrorReport& report) {
  std::vector<ckks::Ciphertext> out(cts.size());
  report = core_.run_isolated(cts.size(), [&](std::size_t i,
                                              std::size_t worker) {
    ABC_FAILPOINT(fail::points::kEvaluateItem);
    // rotate() returns a fresh ciphertext, so a throw leaves out[i] the
    // well-defined-empty Ciphertext it started as — never half-written.
    out[i] = evaluator_.rotate(cts[i], step, gks, &scratch_.at(worker));
  });
  return out;
}

std::vector<ckks::Ciphertext> BatchEvaluator::square_relin_batch(
    std::span<const ckks::Ciphertext> cts, const ckks::RelinKey& rlk) {
  std::vector<ckks::Ciphertext> out(cts.size());
  core_.run(cts.size(), [&](std::size_t i, std::size_t worker) {
    ABC_FAILPOINT(fail::points::kEvaluateItem);
    ckks::Ciphertext product = evaluator_.mul(cts[i], cts[i]);
    evaluator_.relinearize_inplace(product, rlk, &scratch_.at(worker));
    out[i] = std::move(product);
  });
  return out;
}

std::vector<ckks::Ciphertext> BatchEvaluator::square_relin_batch(
    std::span<const ckks::Ciphertext> cts, const ckks::RelinKey& rlk,
    BatchErrorReport& report) {
  std::vector<ckks::Ciphertext> out(cts.size());
  report = core_.run_isolated(cts.size(), [&](std::size_t i,
                                              std::size_t worker) {
    ABC_FAILPOINT(fail::points::kEvaluateItem);
    ckks::Ciphertext product = evaluator_.mul(cts[i], cts[i]);
    evaluator_.relinearize_inplace(product, rlk, &scratch_.at(worker));
    out[i] = std::move(product);
  });
  return out;
}

std::vector<ckks::Ciphertext> BatchEvaluator::rotate_batch(
    std::span<const ckks::Ciphertext> cts, int step,
    const ckks::KeySource& keys) {
  // Pin once for the whole batch: one lookup (at most one regeneration),
  // and the key cannot be evicted while any item still switches on it.
  const std::shared_ptr<const ckks::KeySwitchKey> key =
      keys.galois_key(step);
  std::vector<ckks::Ciphertext> out(cts.size());
  core_.run(cts.size(), [&](std::size_t i, std::size_t worker) {
    ABC_FAILPOINT(fail::points::kEvaluateItem);
    out[i] = evaluator_.rotate(cts[i], *key, &scratch_.at(worker));
  });
  return out;
}

std::vector<ckks::Ciphertext> BatchEvaluator::rotate_batch(
    std::span<const ckks::Ciphertext> cts, int step,
    const ckks::KeySource& keys, BatchErrorReport& report) {
  std::vector<ckks::Ciphertext> out(cts.size());
  report = core_.run_isolated(cts.size(), [&](std::size_t i,
                                              std::size_t worker) {
    ABC_FAILPOINT(fail::points::kEvaluateItem);
    // Per-item resolution: a lookup or regeneration failure lands in this
    // item's report slot instead of failing the whole batch.
    const std::shared_ptr<const ckks::KeySwitchKey> key =
        keys.galois_key(step);
    out[i] = evaluator_.rotate(cts[i], *key, &scratch_.at(worker));
  });
  return out;
}

std::vector<ckks::Ciphertext> BatchEvaluator::square_relin_batch(
    std::span<const ckks::Ciphertext> cts, const ckks::KeySource& keys) {
  const std::shared_ptr<const ckks::KeySwitchKey> key = keys.relin_key();
  std::vector<ckks::Ciphertext> out(cts.size());
  core_.run(cts.size(), [&](std::size_t i, std::size_t worker) {
    ABC_FAILPOINT(fail::points::kEvaluateItem);
    ckks::Ciphertext product = evaluator_.mul(cts[i], cts[i]);
    evaluator_.relinearize_inplace(product, *key, &scratch_.at(worker));
    out[i] = std::move(product);
  });
  return out;
}

std::vector<ckks::Ciphertext> BatchEvaluator::square_relin_batch(
    std::span<const ckks::Ciphertext> cts, const ckks::KeySource& keys,
    BatchErrorReport& report) {
  std::vector<ckks::Ciphertext> out(cts.size());
  report = core_.run_isolated(cts.size(), [&](std::size_t i,
                                              std::size_t worker) {
    ABC_FAILPOINT(fail::points::kEvaluateItem);
    const std::shared_ptr<const ckks::KeySwitchKey> key = keys.relin_key();
    ckks::Ciphertext product = evaluator_.mul(cts[i], cts[i]);
    evaluator_.relinearize_inplace(product, *key, &scratch_.at(worker));
    out[i] = std::move(product);
  });
  return out;
}

}  // namespace abc::engine
