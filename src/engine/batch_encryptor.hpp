#pragma once

/// @file batch_encryptor.hpp
/// Multi-threaded batch encryption engine: encodes and encrypts a batch of
/// messages across the execution backend's workers. This is the software
/// stand-in for the paper's client pipeline driven at throughput (Fig. 5b):
/// many independent encode+encrypt jobs, each one message.
///
/// Built on engine::FanOutCore, which owns the determinism machinery: the
/// engine reserves a contiguous block of PRNG stream ids up front and
/// assigns id base+i to batch item i, so the ciphertexts are bit-identical
/// for any backend and any worker count — a ScalarBackend run, a 1-thread
/// pool and an 8-thread pool all produce the same bytes. Ids come from the
/// context-wide counter, so engines sharing a context never alias.
///
/// Each worker owns an EncryptScratch, so after warm-up the per-message
/// hot path allocates only the ciphertext components it returns.

#include <complex>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "ckks/encoder.hpp"
#include "ckks/encryptor.hpp"
#include "engine/fan_out_core.hpp"

namespace abc::engine {

class BatchEncryptor {
 public:
  /// Public-key mode.
  BatchEncryptor(std::shared_ptr<const ckks::CkksContext> ctx,
                 ckks::PublicKey pk);
  /// Symmetric seeded mode.
  BatchEncryptor(std::shared_ptr<const ckks::CkksContext> ctx,
                 const ckks::SecretKey& sk);

  ckks::EncryptMode mode() const noexcept { return encryptor_.mode(); }
  /// Lanes the underlying backend executes on (and scratch copies held).
  std::size_t workers() const noexcept { return core_.workers(); }

  /// The underlying encryptor: one-off encrypt() calls through it draw
  /// from the same context-wide stream-id counter as the batches, so
  /// mixing single and batched encryption never reuses a PRNG stream.
  ckks::Encryptor& encryptor() noexcept { return encryptor_; }

  /// Encodes messages[i] (complex slot values, up to ctx->slots() each)
  /// at @p limbs RNS limbs and encrypts them; ciphertexts come back in
  /// input order.
  std::vector<ckks::Ciphertext> encrypt_batch(
      std::span<const std::vector<std::complex<double>>> messages,
      std::size_t limbs);

  /// Convenience wrapper for real-valued messages.
  std::vector<ckks::Ciphertext> encrypt_real_batch(
      std::span<const std::vector<double>> messages, std::size_t limbs);

  /// Encrypts already-encoded plaintexts (encode elsewhere / reuse).
  std::vector<ckks::Ciphertext> encrypt_plaintexts(
      std::span<const ckks::Plaintext> plaintexts);

  // -- per-item-fault mode ----------------------------------------------------
  // Same work, but one bad message no longer aborts the batch: @p report
  // records each item's outcome in input order, failed slots come back as
  // default-constructed (empty) Ciphertexts, and successes are the exact
  // bytes the throwing overload would have produced (stream ids are
  // reserved identically whether or not neighbours fail).

  std::vector<ckks::Ciphertext> encrypt_batch(
      std::span<const std::vector<std::complex<double>>> messages,
      std::size_t limbs, BatchErrorReport& report);

  std::vector<ckks::Ciphertext> encrypt_real_batch(
      std::span<const std::vector<double>> messages, std::size_t limbs,
      BatchErrorReport& report);

 private:
  std::vector<ckks::Ciphertext> run(
      std::size_t count,
      const std::function<ckks::Ciphertext(std::size_t index,
                                           ckks::EncryptScratch& scratch,
                                           u64 stream_id)>& item);
  std::vector<ckks::Ciphertext> run_isolated(
      std::size_t count,
      const std::function<ckks::Ciphertext(std::size_t index,
                                           ckks::EncryptScratch& scratch,
                                           u64 stream_id)>& item,
      BatchErrorReport& report);

  FanOutCore core_;
  ckks::CkksEncoder encoder_;
  ckks::Encryptor encryptor_;
  ScratchPool<ckks::EncryptScratch> scratch_;  // one per backend worker
};

}  // namespace abc::engine
