#pragma once

/// @file batch_evaluator.hpp
/// Server-side batch evaluation engine: the entry points the serving
/// daemon's workers call per request, built on the same FanOutCore as the
/// client engines. A request is an "ABCB" batch of independent
/// ciphertexts; each item is rotated (hoisted key switch against the
/// tenant's Galois key) or squared-and-relinearized on its own, with one
/// KeySwitchScratch per backend lane.
///
/// Evaluation consumes no PRNG stream, so determinism is purely the
/// partitioning contract: per-item work is independent, results land in
/// input order, and the output bytes are identical for any backend, any
/// worker count — and, one level up, any serving-daemon steal schedule
/// (the soak tests assert daemon responses byte-identical to this engine
/// run serially).
///
/// On a serving daemon each per-core worker owns its own BatchEvaluator
/// over a scalar-backend context, so requests parallelize across cores
/// while each request stays on its core — the per-core session scheduling
/// the ROADMAP's server item calls for.

#include <memory>
#include <span>
#include <vector>

#include "ckks/evaluator.hpp"
#include "engine/fan_out_core.hpp"

namespace abc::engine {

class BatchEvaluator {
 public:
  explicit BatchEvaluator(std::shared_ptr<const ckks::CkksContext> ctx);

  /// Lanes the underlying backend executes on (and scratch copies held).
  std::size_t workers() const noexcept { return core_.workers(); }

  /// The underlying evaluator, for one-off calls between batches.
  const ckks::Evaluator& evaluator() const noexcept { return evaluator_; }

  /// Rotates cts[i] left by @p step using @p gks; results in input order.
  /// Each item must sit at level <= max_limbs - 1 (the key-switch special
  /// prime rule) or the item throws InvalidArgument, exactly as serially.
  std::vector<ckks::Ciphertext> rotate_batch(
      std::span<const ckks::Ciphertext> cts, int step,
      const ckks::GaloisKeys& gks);

  /// rotate_batch through a KeySource (the serving daemon's cache-backed
  /// path): the step's key is resolved and pinned ONCE up front — a cache
  /// regeneration failure surfaces before any item work, and the pin
  /// guarantees eviction cannot free the key mid-batch.
  std::vector<ckks::Ciphertext> rotate_batch(
      std::span<const ckks::Ciphertext> cts, int step,
      const ckks::KeySource& keys);

  /// ct[i] <- relinearize(ct[i] * ct[i]): the squaring activation of the
  /// encrypted-inference profile, scale squared, level unchanged.
  std::vector<ckks::Ciphertext> square_relin_batch(
      std::span<const ckks::Ciphertext> cts, const ckks::RelinKey& rlk);

  /// square_relin_batch through a KeySource; same pin-once contract as the
  /// KeySource rotate_batch.
  std::vector<ckks::Ciphertext> square_relin_batch(
      std::span<const ckks::Ciphertext> cts, const ckks::KeySource& keys);

  // -- per-item-fault mode ----------------------------------------------------
  // One malformed ciphertext no longer aborts the batch: @p report records
  // each item's outcome in input order, failed slots come back as
  // default-constructed (empty) Ciphertexts, successes are the exact bytes
  // of the throwing overload.

  std::vector<ckks::Ciphertext> rotate_batch(
      std::span<const ckks::Ciphertext> cts, int step,
      const ckks::GaloisKeys& gks, BatchErrorReport& report);

  std::vector<ckks::Ciphertext> square_relin_batch(
      std::span<const ckks::Ciphertext> cts, const ckks::RelinKey& rlk,
      BatchErrorReport& report);

  /// Report-mode KeySource variants resolve the key PER ITEM inside the
  /// isolation boundary, so a key lookup / regeneration failure is
  /// recorded against the item that hit it (the same per-item failure
  /// semantics the eager report overloads have for evaluation errors).
  std::vector<ckks::Ciphertext> rotate_batch(
      std::span<const ckks::Ciphertext> cts, int step,
      const ckks::KeySource& keys, BatchErrorReport& report);

  std::vector<ckks::Ciphertext> square_relin_batch(
      std::span<const ckks::Ciphertext> cts, const ckks::KeySource& keys,
      BatchErrorReport& report);

 private:
  FanOutCore core_;
  ckks::Evaluator evaluator_;
  ScratchPool<ckks::KeySwitchScratch> scratch_;  // one per backend worker
};

}  // namespace abc::engine
