#pragma once

/// @file client_session.hpp
/// Pipeline facade over the full client round trip — the client half of
/// the ROADMAP's persistent-server story. One ClientSession owns a warm
/// context plus all three batch engines and walks the paper's session
/// lifecycle as method calls:
///
///   1. keygen           — secret/public keys in the constructor; relin +
///                         Galois switching keys on first key_bundle()
///   2. key upload       — key_bundle(): seed-compressed wire blobs (the
///                         b halves + stream ids a server needs)
///   3. encrypt batch    — encrypt()/encrypt_real(), or upload() straight
///                         to an "ABCB" ciphertext-batch envelope
///   4. decrypt/verify   — decrypt_batch()/verify(), or verify_download()
///                         straight from a returned envelope
///
/// Context, engines and per-worker scratch are built once and reused
/// across requests, so a long-lived client amortizes every setup cost —
/// the serving posture behind "millions of users". All engine guarantees
/// carry over: batches are bit-identical at any worker count, and every
/// stream id comes from the context-wide counter.

#include <complex>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ckks/serialize.hpp"
#include "engine/batch_decryptor.hpp"
#include "engine/batch_encryptor.hpp"
#include "engine/batch_keygen.hpp"

namespace abc::engine {

struct SessionConfig {
  /// Rotation steps whose Galois keys the key bundle ships (rotate-and-sum
  /// workloads want powers of two up to slots/2).
  std::vector<int> rotations;
  /// Packed residue width of every wire format the session emits.
  int bits_per_coeff = 44;
  /// Encryption mode for the upload path. Symmetric seeded is the paper's
  /// client profile (1 NTT pass per limb, c1 compressed to a stream id).
  ckks::EncryptMode mode = ckks::EncryptMode::kSymmetricSeeded;
};

/// The serialized key set a client uploads once per session, every blob
/// seed-compressed (only what the server cannot regenerate ships).
struct KeyBundle {
  std::vector<u8> public_key;
  std::vector<u8> relin_key;
  std::vector<std::vector<u8>> galois_keys;  // SessionConfig::rotations order

  std::size_t total_bytes() const noexcept {
    std::size_t total = public_key.size() + relin_key.size();
    for (const auto& gk : galois_keys) total += gk.size();
    return total;
  }
};

class ClientSession {
 public:
  explicit ClientSession(std::shared_ptr<const ckks::CkksContext> ctx,
                         SessionConfig config = {});

  const ckks::CkksContext& context() const noexcept { return *ctx_; }
  const SessionConfig& config() const noexcept { return config_; }
  const ckks::SecretKey& secret_key() const noexcept { return sk_; }

  /// The warm engines, for callers composing their own pipelines.
  BatchEncryptor& encrypt_engine() noexcept { return encryptor_; }
  BatchDecryptor& decrypt_engine() noexcept { return decryptor_; }

  /// Seed-compressed key upload blobs. The switching keys are generated
  /// (across the pool) and serialized on first call, then cached — a
  /// session uploads its keys once and encrypts forever after.
  const KeyBundle& key_bundle();

  // -- request path ---------------------------------------------------------

  /// Encode+encrypt a batch at @p limbs RNS limbs.
  std::vector<ckks::Ciphertext> encrypt(
      std::span<const std::vector<std::complex<double>>> messages,
      std::size_t limbs);
  std::vector<ckks::Ciphertext> encrypt_real(
      std::span<const std::vector<double>> messages, std::size_t limbs);

  /// encrypt() + ciphertext-batch envelope: the bytes one request uploads.
  std::vector<u8> upload(
      std::span<const std::vector<std::complex<double>>> messages,
      std::size_t limbs);

  // -- response path --------------------------------------------------------

  /// Decrypt+decode a returned batch to slot values, input order.
  std::vector<std::vector<std::complex<double>>> decrypt_batch(
      std::span<const ckks::Ciphertext> cts);

  /// Batched precision verification of a returned batch (see
  /// BatchDecryptor::verify_batch for the bound semantics).
  BatchVerifyReport verify(
      std::span<const ckks::Ciphertext> cts,
      std::span<const std::vector<std::complex<double>>> expected,
      double bound = 0.0);

  /// Parse a returned "ABCB" envelope and verify every ciphertext in it —
  /// the full download path as one call.
  BatchVerifyReport verify_download(
      std::span<const u8> envelope,
      std::span<const std::vector<std::complex<double>>> expected,
      double bound = 0.0);

  // -- retrying round trip ---------------------------------------------------

  /// Carries one request's upload envelope to the server and returns the
  /// response envelope (identity for a loopback/echo deployment).
  using Transport =
      std::function<std::vector<u8>(std::span<const u8> upload)>;

  /// Outcome of round_trip_with_retry: per-item verify results plus how
  /// many times each item had to be sent before it passed.
  struct RetryReport {
    bool ok = false;            // every item verified within max_attempts
    std::size_t rounds = 0;     // transport round trips performed
    std::vector<std::size_t> attempts;  // input order; times item was sent
    BatchVerifyReport verify;   // final per-item reports, input order; an
                                // item that never verified keeps the
                                // default (failing) VerifyReport
    std::vector<std::string> round_errors;  // whole-round failures
                                            // (transport/parse), in round
                                            // order; empty entries elided
  };

  /// Full round trip with bounded retry: encrypts @p messages, ships them
  /// through @p transport, verifies the response against the same
  /// messages, and re-sends only the failed items — each retry
  /// re-encrypts under *freshly reserved* stream ids (the context-wide
  /// counter is monotonic, so a stream id is never reused, even for the
  /// same message). Gives up after @p max_attempts sends per item. Faults
  /// anywhere in the leg — encrypt, transport, parse, decrypt, verify —
  /// fail the affected items' round, never the call.
  RetryReport round_trip_with_retry(
      std::span<const std::vector<std::complex<double>>> messages,
      std::size_t limbs, const Transport& transport,
      std::size_t max_attempts = 3, double bound = 0.0);

 private:
  std::shared_ptr<const ckks::CkksContext> ctx_;
  SessionConfig config_;
  ckks::SecretKey sk_;
  ckks::PublicKey pk_;
  BatchKeyGenerator keygen_;
  BatchEncryptor encryptor_;
  BatchDecryptor decryptor_;
  std::optional<KeyBundle> key_bundle_;  // built on first key_bundle()
};

}  // namespace abc::engine
