#pragma once

/// @file batch_decryptor.hpp
/// Multi-threaded batch decryption engine: the missing third engine of the
/// client round trip. Decodes+decrypts (or decrypt-and-verifies) a batch
/// of server-returned ciphertexts across the execution backend's workers,
/// mirroring BatchEncryptor on the download side of the paper's client
/// workload (Fig. 2a "Decoding + Decrypt").
///
/// Built on engine::FanOutCore. Decryption consumes no PRNG stream, so
/// determinism is purely the partitioning contract: per-item work is
/// independent, results land in input order, and the output is
/// bit-identical for any backend and any worker count.
///
/// Each worker owns a DecryptScratch, so after warm-up the per-ciphertext
/// hot path allocates only the plaintext (or decoded slots) it returns.

#include <complex>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "ckks/decryptor.hpp"
#include "ckks/encoder.hpp"
#include "ckks/noise.hpp"
#include "engine/fan_out_core.hpp"

namespace abc::engine {

/// Per-batch fold of ckks::VerifyReport (the PR 4 single-ciphertext
/// verifier): one entry per ciphertext in input order, plus the batch
/// aggregates a serving client actually gates on.
struct BatchVerifyReport {
  bool ok = false;                  // every item passed its bound
  std::size_t passed = 0;
  std::size_t failed = 0;
  double worst_abs_error = 0.0;       // max over items
  double worst_precision_bits = 60.0; // min over items; 60 = "no error
                                      // observed", matching VerifyReport
  std::vector<ckks::VerifyReport> items;
};

class BatchDecryptor {
 public:
  BatchDecryptor(std::shared_ptr<const ckks::CkksContext> ctx,
                 const ckks::SecretKey& sk);

  /// Lanes the underlying backend executes on (and scratch copies held).
  std::size_t workers() const noexcept { return core_.workers(); }

  /// The underlying decryptor, for one-off decrypt() calls.
  ckks::Decryptor& decryptor() noexcept { return decryptor_; }

  /// Decrypts cts[i] to a coefficient-domain plaintext; results come back
  /// in input order. Accepts 2- and 3-component ciphertexts at any level;
  /// a malformed item (component count, mismatched levels) throws
  /// InvalidArgument on the calling thread, exactly as it would serially.
  std::vector<ckks::Plaintext> decrypt_batch(
      std::span<const ckks::Ciphertext> cts);

  /// Decrypts and decodes to slot values (the full "Decoding + Decrypt"
  /// stage): one slot vector per ciphertext, input order.
  std::vector<std::vector<std::complex<double>>> decrypt_decode_batch(
      std::span<const ckks::Ciphertext> cts);

  /// Batched verify_decode: checks cts[i] against expected[i] within
  /// @p bound (absolute, slot domain; non-positive selects each item's
  /// default single-hop bound — see ckks::verify_decode) and folds the
  /// per-item reports into a BatchVerifyReport.
  BatchVerifyReport verify_batch(
      std::span<const ckks::Ciphertext> cts,
      std::span<const std::vector<std::complex<double>>> expected,
      double bound = 0.0);

  // -- per-item-fault mode ----------------------------------------------------
  // One malformed ciphertext no longer aborts the batch: @p report records
  // each item's outcome in input order and successes are untouched.
  // Plaintext is not default-constructible, so the failed slot of the
  // plaintext overload is std::nullopt; a failed decode slot is an empty
  // vector; a failed verify slot is a default (failing) VerifyReport.

  std::vector<std::optional<ckks::Plaintext>> decrypt_batch(
      std::span<const ckks::Ciphertext> cts, BatchErrorReport& report);

  std::vector<std::vector<std::complex<double>>> decrypt_decode_batch(
      std::span<const ckks::Ciphertext> cts, BatchErrorReport& report);

  BatchVerifyReport verify_batch(
      std::span<const ckks::Ciphertext> cts,
      std::span<const std::vector<std::complex<double>>> expected,
      BatchErrorReport& report, double bound = 0.0);

 private:
  FanOutCore core_;
  ckks::CkksEncoder encoder_;
  ckks::Decryptor decryptor_;
  ScratchPool<ckks::DecryptScratch> scratch_;  // one per backend worker
};

}  // namespace abc::engine
