#include "engine/fan_out_core.hpp"

#include "common/check.hpp"

namespace abc::engine {

FanOutCore::FanOutCore(std::shared_ptr<const ckks::CkksContext> ctx)
    : ctx_(std::move(ctx)) {
  ABC_CHECK_ARG(ctx_ != nullptr, "null context");
  workers_ = ctx_->backend().workers();
}

void FanOutCore::run(std::size_t count, const Job& job) const {
  if (count == 0) return;
  ctx_->backend().parallel_for(count, job);
}

void FanOutCore::run_with_ids(std::size_t count, const IdJob& job) const {
  if (count == 0) return;
  const u64 base = reserve_stream_ids(count);
  ctx_->backend().parallel_for(count, [&](std::size_t i, std::size_t worker) {
    job(i, worker, base + i);
  });
}

}  // namespace abc::engine
