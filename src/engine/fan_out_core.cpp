#include "engine/fan_out_core.hpp"

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace abc::engine {

namespace {

// Leaked (like the global registry) so late fan-outs during static
// teardown still have live handles.
struct EngineMetrics {
  obs::Counter processed =
      obs::registry().counter(obs::catalog::kEngineItemsProcessed);
  obs::Counter failed =
      obs::registry().counter(obs::catalog::kEngineItemsFailed);
  obs::Histogram item_ns =
      obs::registry().histogram(obs::catalog::kEngineItemNs);
};

EngineMetrics& engine_metrics() {
  static EngineMetrics* m = new EngineMetrics;
  return *m;
}

/// Times one item and books it as processed/failed. Exceptions propagate
/// (the throwing-mode contract) after being counted.
template <class F>
void timed_item(F&& f) {
  EngineMetrics& m = engine_metrics();
  const u64 t0 = obs::now_ns();
  try {
    f();
  } catch (...) {
    m.item_ns.record(obs::now_ns() - t0);
    m.failed.inc();
    throw;
  }
  m.item_ns.record(obs::now_ns() - t0);
  m.processed.inc();
}

}  // namespace

FanOutCore::FanOutCore(std::shared_ptr<const ckks::CkksContext> ctx)
    : ctx_(std::move(ctx)) {
  ABC_CHECK_ARG(ctx_ != nullptr, "null context");
  workers_ = ctx_->backend().workers();
}

void FanOutCore::run(std::size_t count, const Job& job) const {
  if (count == 0) return;
  ctx_->backend().parallel_for(count, [&](std::size_t i, std::size_t worker) {
    timed_item([&] { job(i, worker); });
  });
}

void FanOutCore::run_with_ids(std::size_t count, const IdJob& job) const {
  if (count == 0) return;
  const u64 base = reserve_stream_ids(count);
  ctx_->backend().parallel_for(count, [&](std::size_t i, std::size_t worker) {
    timed_item([&] { job(i, worker, base + i); });
  });
}

BatchErrorReport FanOutCore::fold_statuses(
    std::vector<ItemStatus> statuses) const {
  // Serial fold in input order: first_error is the lowest-index failure no
  // matter which worker finished first, keeping the report itself inside
  // the bit-identical-at-any-worker-count contract.
  BatchErrorReport report;
  report.items = std::move(statuses);
  for (const ItemStatus& st : report.items) {
    if (st.ok) {
      ++report.succeeded;
    } else {
      if (report.failed == 0) report.first_error = st.error;
      ++report.failed;
    }
  }
  return report;
}

BatchErrorReport FanOutCore::run_isolated(std::size_t count,
                                          const Job& job) const {
  std::vector<ItemStatus> statuses(count);
  if (count != 0) {
    EngineMetrics& m = engine_metrics();
    ctx_->backend().parallel_for(count, [&](std::size_t i,
                                            std::size_t worker) {
      // Each slot is owned by exactly one item, so recording the outcome
      // needs no lock and a failed neighbour cannot disturb a success.
      const u64 t0 = obs::now_ns();
      try {
        job(i, worker);
      } catch (const std::exception& e) {
        statuses[i].ok = false;
        statuses[i].error = e.what();
      } catch (...) {
        statuses[i].ok = false;
        statuses[i].error = "unknown exception";
      }
      m.item_ns.record(obs::now_ns() - t0);
      (statuses[i].ok ? m.processed : m.failed).inc();
    });
  }
  return fold_statuses(std::move(statuses));
}

BatchErrorReport FanOutCore::run_with_ids_isolated(std::size_t count,
                                                   const IdJob& job) const {
  std::vector<ItemStatus> statuses(count);
  if (count != 0) {
    // Ids are reserved exactly as in the throwing mode — base + i for every
    // item, failed or not — so surviving items consume the same streams a
    // fault-free batch would and stay bit-identical to it.
    const u64 base = reserve_stream_ids(count);
    EngineMetrics& m = engine_metrics();
    ctx_->backend().parallel_for(count, [&](std::size_t i,
                                            std::size_t worker) {
      const u64 t0 = obs::now_ns();
      try {
        job(i, worker, base + i);
      } catch (const std::exception& e) {
        statuses[i].ok = false;
        statuses[i].error = e.what();
      } catch (...) {
        statuses[i].ok = false;
        statuses[i].error = "unknown exception";
      }
      m.item_ns.record(obs::now_ns() - t0);
      (statuses[i].ok ? m.processed : m.failed).inc();
    });
  }
  return fold_statuses(std::move(statuses));
}

}  // namespace abc::engine
