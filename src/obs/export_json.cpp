#include "obs/export_json.hpp"

#include <cstdio>

namespace abc::obs {
namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

void append_trace(std::string& out, const Trace& t) {
  out += "{\"request_id\":" + std::to_string(t.request_id);
  out += ",\"tenant\":" + std::to_string(t.tenant);
  out += ",\"op\":" + std::to_string(t.op);
  out += ",\"stolen\":";
  out += t.stolen ? "true" : "false";
  out += ",\"admit_ns\":" + std::to_string(t.admit_ns);
  out += ",\"dequeue_ns\":" + std::to_string(t.dequeue_ns);
  out += ",\"engine_start_ns\":" + std::to_string(t.engine_start_ns);
  out += ",\"engine_end_ns\":" + std::to_string(t.engine_end_ns);
  out += ",\"respond_ns\":" + std::to_string(t.respond_ns);
  out += ",\"queue_wait_ns\":" + std::to_string(t.queue_wait_ns());
  out += ",\"total_ns\":" + std::to_string(t.total_ns());
  out += ",\"ks_decompositions\":" + std::to_string(t.ks_decompositions);
  out += ",\"ks_accumulations\":" + std::to_string(t.ks_accumulations);
  out += ",\"ks_hoist_reuses\":" + std::to_string(t.ks_hoist_reuses);
  out += '}';
}

void append_traces(std::string& out, const std::vector<Trace>& traces) {
  out += '[';
  bool first = true;
  for (const Trace& t : traces) {
    if (!first) out += ',';
    first = false;
    append_trace(out, t);
  }
  out += ']';
}

}  // namespace

std::string stats_json(const MetricsSnapshot& snap, const TraceRing* traces) {
  std::string out;
  out.reserve(4096);
  out += "{\"metrics_enabled\":";
  out += kMetricsEnabled ? "true" : "false";

  out += ",\"counters\":{";
  bool first = true;
  for (const CounterValue& c : snap.counters) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, c.name);
    out += ':' + std::to_string(c.value);
  }
  out += '}';

  out += ",\"gauges\":{";
  first = true;
  for (const GaugeValue& g : snap.gauges) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, g.name);
    out += ':' + std::to_string(g.value);
  }
  out += '}';

  out += ",\"histograms\":{";
  first = true;
  for (const HistogramValue& h : snap.histograms) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, h.name);
    out += ":{\"count\":" + std::to_string(h.count);
    out += ",\"sum\":" + std::to_string(h.sum);
    out += ",\"p50\":";
    append_double(out, h.quantile(0.50));
    out += ",\"p95\":";
    append_double(out, h.quantile(0.95));
    out += ",\"p99\":";
    append_double(out, h.quantile(0.99));
    out += ",\"buckets\":[";
    for (std::size_t i = 0; i < kHistBuckets; ++i) {
      if (i != 0) out += ',';
      out += std::to_string(h.buckets[i]);
    }
    out += "]}";
  }
  out += '}';

  out += ",\"histogram_layout\":{\"buckets\":" + std::to_string(kHistBuckets);
  out += ",\"lower_bounds\":[";
  for (std::size_t i = 0; i < kHistBuckets; ++i) {
    if (i != 0) out += ',';
    out += std::to_string(hist_bucket_lower(i));
  }
  out += "]}";

  if (traces != nullptr) {
    out += ",\"traces\":{\"slow_threshold_ns\":" +
           std::to_string(traces->slow_threshold_ns());
    out += ",\"slow_count\":" + std::to_string(traces->slow_count());
    out += ",\"recent\":";
    append_traces(out, traces->recent());
    out += ",\"slow\":";
    append_traces(out, traces->slow());
    out += '}';
  }

  out += '}';
  return out;
}

}  // namespace abc::obs
