#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"
#include "common/failpoint.hpp"

namespace abc::obs {

const char* kind_name(Kind k) noexcept {
  switch (k) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kHistogram: return "histogram";
  }
  return "unknown";
}

double HistogramValue::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  double cum = 0.0;
  for (std::size_t i = 0; i < kHistBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const double prev = cum;
    cum += static_cast<double>(buckets[i]);
    if (cum >= target) {
      const double lower = static_cast<double>(hist_bucket_lower(i));
      const double upper = static_cast<double>(hist_bucket_upper(i));
      const double frac =
          (target - prev) / static_cast<double>(buckets[i]);
      return lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
    }
  }
  return 0.0;  // unreachable when count matches the buckets
}

namespace {

template <class T>
const T* find_by_name(const std::vector<T>& values,
                      std::string_view name) noexcept {
  for (const T& v : values) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

}  // namespace

const CounterValue* MetricsSnapshot::counter(
    std::string_view name) const noexcept {
  return find_by_name(counters, name);
}

const GaugeValue* MetricsSnapshot::gauge(std::string_view name) const noexcept {
  return find_by_name(gauges, name);
}

const HistogramValue* MetricsSnapshot::histogram(
    std::string_view name) const noexcept {
  return find_by_name(histograms, name);
}

#ifndef ABC_NO_METRICS

namespace {

/// Bumped whenever any Registry dies, invalidating every thread's cached
/// shard pointer — the next record under any registry re-resolves through
/// the registry mutex. The global registry never dies, so in production
/// this stays at its initial value forever.
std::atomic<u64> g_registry_epoch{1};

}  // namespace

struct Registry::Impl {
  /// One thread's cells. Allocated zeroed, owned by the registry (not the
  /// thread), so a thread may die and its counts remain scrapeable.
  struct Shard {
    std::unique_ptr<std::atomic<u64>[]> cells;
    Shard() : cells(new std::atomic<u64>[kShardCells]) {
      for (std::size_t i = 0; i < kShardCells; ++i) {
        cells[i].store(0, std::memory_order_relaxed);
      }
    }
  };

  struct Definition {
    std::string name;
    Kind kind = Kind::kCounter;
    // Folded totals of destroyed instances. Gauges fold their (signed)
    // deltas into the same u64 in two's complement.
    u64 retired_scalar = 0;
    std::array<u64, kHistBuckets + 1> retired_hist{};
    std::vector<u32> live_cells;  // cell base of each live instance
  };

  mutable std::mutex m;
  std::unordered_map<std::thread::id, std::unique_ptr<Shard>> shards;
  std::vector<Definition> defs;
  std::unordered_map<std::string, u32> by_name;
  std::vector<std::pair<std::string, u64 (*)()>> external;
  std::vector<u32> free_scalar;  // recycled 1-cell ranges
  std::vector<u32> free_hist;    // recycled (kHistBuckets+1)-cell ranges
  u32 next_cell = 0;

  static std::size_t span_of(Kind kind) noexcept {
    return kind == Kind::kHistogram ? kHistBuckets + 1 : 1;
  }

  /// This thread's shard: TLS fast path, mutex-guarded find-or-create on
  /// the first record from a thread (or after any registry's death).
  Shard& local_shard() {
    struct TlsCache {
      const Impl* impl = nullptr;
      Shard* shard = nullptr;
      u64 epoch = 0;
    };
    thread_local TlsCache cache;
    const u64 epoch = g_registry_epoch.load(std::memory_order_relaxed);
    if (cache.impl == this && cache.epoch == epoch) return *cache.shard;
    std::lock_guard<std::mutex> lock(m);
    std::unique_ptr<Shard>& slot = shards[std::this_thread::get_id()];
    if (!slot) slot = std::make_unique<Shard>();
    cache = {this, slot.get(), epoch};
    return *slot;
  }

  u32 allocate_cells(Kind kind) {
    std::vector<u32>& free_list =
        kind == Kind::kHistogram ? free_hist : free_scalar;
    if (!free_list.empty()) {
      const u32 cell = free_list.back();
      free_list.pop_back();
      return cell;
    }
    const std::size_t span = span_of(kind);
    ABC_CHECK_STATE(next_cell + span <= kShardCells,
                    "metric cell space exhausted; raise Registry::kShardCells");
    const u32 cell = next_cell;
    next_cell += static_cast<u32>(span);
    return cell;
  }

  u32 ensure_def(std::string_view name, Kind kind) {
    const auto it = by_name.find(std::string(name));
    if (it != by_name.end()) {
      ABC_CHECK_ARG(defs[it->second].kind == kind,
                    "metric '" + std::string(name) +
                        "' re-registered with a different kind");
      return it->second;
    }
    const u32 idx = static_cast<u32>(defs.size());
    Definition def;
    def.name = std::string(name);
    def.kind = kind;
    defs.push_back(std::move(def));
    by_name.emplace(std::string(name), idx);
    return idx;
  }

  /// Sum of one cell (relative to @p base) across every shard. Relaxed
  /// loads racing live writers are benign (see header).
  u64 sum_cell(u32 base, std::size_t offset) const {
    u64 total = 0;
    for (const auto& [tid, shard] : shards) {
      total += shard->cells[base + offset].load(std::memory_order_relaxed);
    }
    return total;
  }
};

Registry::Registry() : impl_(new Impl) {}

Registry::~Registry() {
  g_registry_epoch.fetch_add(1, std::memory_order_relaxed);
  delete impl_;
}

Registry& Registry::global() {
  // Deliberately leaked: TLS caches and static handles (e.g. the
  // transport counters) may record during process teardown, and a
  // destroyed global registry would turn those into use-after-free.
  static Registry* reg = [] {
    auto* r = new Registry();
    for (const catalog::Entry& e : catalog::kAll) r->ensure(e.name, e.kind);
    r->add_external_counter(catalog::kFailpointHits, &fail::total_hits);
    r->add_external_counter(catalog::kFailpointFires, &fail::total_fires);
    return r;
  }();
  return *reg;
}

void Registry::ensure(std::string_view name, Kind kind) {
  std::lock_guard<std::mutex> lock(impl_->m);
  impl_->ensure_def(name, kind);
}

void Registry::add_external_counter(std::string_view name, u64 (*read)()) {
  std::lock_guard<std::mutex> lock(impl_->m);
  impl_->ensure_def(name, Kind::kCounter);
  impl_->external.emplace_back(std::string(name), read);
}

std::pair<u32, u32> Registry::register_instance(std::string_view name,
                                                Kind kind) {
  std::lock_guard<std::mutex> lock(impl_->m);
  const u32 def = impl_->ensure_def(name, kind);
  const u32 cell = impl_->allocate_cells(kind);
  // Recycled cells were zeroed at retirement and fresh shards start
  // zeroed, so a new instance always reads 0.
  impl_->defs[def].live_cells.push_back(cell);
  return {def, cell};
}

Counter Registry::counter(std::string_view name) {
  const auto [def, cell] = register_instance(name, Kind::kCounter);
  Counter c;
  c.reg_ = this;
  c.def_ = def;
  c.cell_ = cell;
  return c;
}

Gauge Registry::gauge(std::string_view name) {
  const auto [def, cell] = register_instance(name, Kind::kGauge);
  Gauge g;
  g.reg_ = this;
  g.def_ = def;
  g.cell_ = cell;
  return g;
}

Histogram Registry::histogram(std::string_view name) {
  const auto [def, cell] = register_instance(name, Kind::kHistogram);
  Histogram h;
  h.reg_ = this;
  h.def_ = def;
  h.cell_ = cell;
  return h;
}

void Registry::add_cell(u32 cell, u64 delta) noexcept {
  impl_->local_shard().cells[cell].fetch_add(delta,
                                             std::memory_order_relaxed);
}

u64 Registry::read_cells(u32 cell, std::size_t span,
                         std::array<u64, kHistBuckets + 1>* out)
    const noexcept {
  std::lock_guard<std::mutex> lock(impl_->m);
  if (out == nullptr) return impl_->sum_cell(cell, 0);
  u64 count = 0;
  for (std::size_t i = 0; i < span; ++i) {
    (*out)[i] = impl_->sum_cell(cell, i);
    if (i < kHistBuckets) count += (*out)[i];
  }
  return count;
}

void Registry::retire(u32 def, u32 cell) noexcept {
  // The owner destroying its handle guarantees no thread still records
  // through it (the quiescence contract every RAII member satisfies), so
  // fold-then-zero under the mutex cannot lose an increment.
  std::lock_guard<std::mutex> lock(impl_->m);
  Impl::Definition& d = impl_->defs[def];
  const std::size_t span = Impl::span_of(d.kind);
  for (std::size_t i = 0; i < span; ++i) {
    u64 total = 0;
    for (auto& [tid, shard] : impl_->shards) {
      total += shard->cells[cell + i].exchange(0, std::memory_order_relaxed);
    }
    if (d.kind == Kind::kHistogram) {
      d.retired_hist[i] += total;
    } else {
      d.retired_scalar += total;
    }
  }
  std::erase(d.live_cells, cell);
  (d.kind == Kind::kHistogram ? impl_->free_hist : impl_->free_scalar)
      .push_back(cell);
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(impl_->m);
  for (const Impl::Definition& def : impl_->defs) {
    switch (def.kind) {
      case Kind::kCounter: {
        u64 total = def.retired_scalar;
        for (const u32 cell : def.live_cells) {
          total += impl_->sum_cell(cell, 0);
        }
        snap.counters.push_back({def.name, total});
        break;
      }
      case Kind::kGauge: {
        u64 total = def.retired_scalar;
        for (const u32 cell : def.live_cells) {
          total += impl_->sum_cell(cell, 0);
        }
        snap.gauges.push_back({def.name, static_cast<i64>(total)});
        break;
      }
      case Kind::kHistogram: {
        HistogramValue h;
        h.name = def.name;
        for (std::size_t i = 0; i <= kHistBuckets; ++i) {
          u64 total = def.retired_hist[i];
          for (const u32 cell : def.live_cells) {
            total += impl_->sum_cell(cell, i);
          }
          if (i < kHistBuckets) {
            h.buckets[i] = total;
            h.count += total;
          } else {
            h.sum = total;
          }
        }
        snap.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  for (const auto& [name, read] : impl_->external) {
    for (CounterValue& c : snap.counters) {
      if (c.name == name) {
        c.value += read();
        break;
      }
    }
  }
  return snap;
}

// -- handles ------------------------------------------------------------------

Counter::~Counter() {
  if (reg_ != nullptr) reg_->retire(def_, cell_);
}

Counter& Counter::operator=(Counter&& other) noexcept {
  if (this != &other) {
    if (reg_ != nullptr) reg_->retire(def_, cell_);
    move_from(other);
  }
  return *this;
}

void Counter::move_from(Counter& other) noexcept {
  reg_ = std::exchange(other.reg_, nullptr);
  def_ = other.def_;
  cell_ = other.cell_;
}

void Counter::inc(u64 n) noexcept {
  if (reg_ != nullptr) reg_->add_cell(cell_, n);
}

u64 Counter::value() const noexcept {
  return reg_ == nullptr ? 0 : reg_->read_cells(cell_, 1, nullptr);
}

Gauge::~Gauge() {
  if (reg_ != nullptr) reg_->retire(def_, cell_);
}

Gauge& Gauge::operator=(Gauge&& other) noexcept {
  if (this != &other) {
    if (reg_ != nullptr) reg_->retire(def_, cell_);
    move_from(other);
  }
  return *this;
}

void Gauge::move_from(Gauge& other) noexcept {
  reg_ = std::exchange(other.reg_, nullptr);
  def_ = other.def_;
  cell_ = other.cell_;
}

void Gauge::add(i64 delta) noexcept {
  if (reg_ != nullptr) reg_->add_cell(cell_, static_cast<u64>(delta));
}

i64 Gauge::value() const noexcept {
  return reg_ == nullptr
             ? 0
             : static_cast<i64>(reg_->read_cells(cell_, 1, nullptr));
}

Histogram::~Histogram() {
  if (reg_ != nullptr) reg_->retire(def_, cell_);
}

Histogram& Histogram::operator=(Histogram&& other) noexcept {
  if (this != &other) {
    if (reg_ != nullptr) reg_->retire(def_, cell_);
    move_from(other);
  }
  return *this;
}

void Histogram::move_from(Histogram& other) noexcept {
  reg_ = std::exchange(other.reg_, nullptr);
  def_ = other.def_;
  cell_ = other.cell_;
}

void Histogram::record(u64 value) noexcept {
  if (reg_ == nullptr) return;
  reg_->add_cell(cell_ + static_cast<u32>(hist_bucket_index(value)), 1);
  reg_->add_cell(cell_ + static_cast<u32>(kHistBuckets), value);
}

HistogramValue Histogram::read() const noexcept {
  HistogramValue out;
  if (reg_ == nullptr) return out;
  std::array<u64, kHistBuckets + 1> cells{};
  out.count = reg_->read_cells(cell_, kHistBuckets + 1, &cells);
  std::copy(cells.begin(), cells.begin() + kHistBuckets,
            out.buckets.begin());
  out.sum = cells[kHistBuckets];
  return out;
}

#else  // ABC_NO_METRICS ------------------------------------------------------
// Compiled-out build: the API stays linkable, every operation is a no-op,
// snapshots are empty. Handles are always disengaged (reg_ == nullptr).

struct Registry::Impl {};

Registry::Registry() = default;
Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry reg;
  return reg;
}

void Registry::ensure(std::string_view, Kind) {}
void Registry::add_external_counter(std::string_view, u64 (*)()) {}
std::pair<u32, u32> Registry::register_instance(std::string_view, Kind) {
  return {0, 0};
}
Counter Registry::counter(std::string_view) { return {}; }
Gauge Registry::gauge(std::string_view) { return {}; }
Histogram Registry::histogram(std::string_view) { return {}; }
void Registry::add_cell(u32, u64) noexcept {}
u64 Registry::read_cells(u32, std::size_t,
                         std::array<u64, kHistBuckets + 1>*) const noexcept {
  return 0;
}
void Registry::retire(u32, u32) noexcept {}
MetricsSnapshot Registry::snapshot() const { return {}; }

Counter::~Counter() = default;
Counter& Counter::operator=(Counter&& other) noexcept {
  move_from(other);
  return *this;
}
void Counter::move_from(Counter& other) noexcept {
  reg_ = std::exchange(other.reg_, nullptr);
}
void Counter::inc(u64) noexcept {}
u64 Counter::value() const noexcept { return 0; }

Gauge::~Gauge() = default;
Gauge& Gauge::operator=(Gauge&& other) noexcept {
  move_from(other);
  return *this;
}
void Gauge::move_from(Gauge& other) noexcept {
  reg_ = std::exchange(other.reg_, nullptr);
}
void Gauge::add(i64) noexcept {}
i64 Gauge::value() const noexcept { return 0; }

Histogram::~Histogram() = default;
Histogram& Histogram::operator=(Histogram&& other) noexcept {
  move_from(other);
  return *this;
}
void Histogram::move_from(Histogram& other) noexcept {
  reg_ = std::exchange(other.reg_, nullptr);
}
void Histogram::record(u64) noexcept {}
HistogramValue Histogram::read() const noexcept { return {}; }

#endif  // ABC_NO_METRICS

}  // namespace abc::obs
