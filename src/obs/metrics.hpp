#pragma once

/// @file metrics.hpp
/// Unified metrics registry of the serving stack — the measurement layer
/// every ROADMAP perf item above it is judged against.
///
/// ## Model
///
/// Three metric kinds, all identified by flat dotted names from the
/// catalog below:
///
///  * **Counter** — monotonic u64 (requests admitted, bytes out, steals);
///  * **Gauge** — signed instantaneous value maintained by +/- deltas
///    (queue depth, resident tenants). Deltas instead of set() keep
///    gauges shardable: the true value is the sum of every thread's
///    deltas, so the hot path stays one relaxed atomic add;
///  * **Histogram** — fixed-boundary log2-scale distribution (latencies,
///    sizes). Bucket i of kHistBuckets holds values whose bit width is i
///    (bucket 0 = {0}, bucket i = [2^(i-1), 2^i), last bucket = overflow),
///    so recording is a `bit_width` and one relaxed increment — no search,
///    no floating point. p50/p95/p99 come out of the bucket counts at
///    scrape time with linear interpolation inside the bucket.
///
/// ## Sharding and the hot path
///
/// The registry never takes a lock on the record path. Each thread owns a
/// shard — a flat array of relaxed `std::atomic<u64>` cells — found
/// through a thread-local cache; a metric instance owns a fixed cell
/// range, so `Counter::inc()` is: load the TLS shard pointer, one relaxed
/// `fetch_add`. Scrapes aggregate across shards (and across instances of
/// the same name) under the registry mutex; relaxed loads racing live
/// increments are benign — a scrape sees a value at least as fresh as the
/// last full barrier, and monotonic counters never go backwards.
///
/// ## Instances
///
/// Registering the same name twice yields two *instances* aggregated
/// under one definition: each Server owns its own `server.accepted`
/// counter (so per-server `stats()` keeps exact per-instance semantics
/// via `Counter::value()`), while `Registry::snapshot()` sums every
/// instance — the unified process view. Handles are RAII: destruction
/// folds the instance's total into the definition's retired aggregate and
/// recycles the cells, so totals survive instance churn and the cell
/// space stays bounded.
///
/// ## Compile-out
///
/// Defining ABC_NO_METRICS (CMake -DABC_NO_METRICS=ON) turns every handle
/// into a no-op and snapshots into empty documents while keeping the API
/// linkable — the <=2% overhead acceptance bound is measured against this
/// build (bench_server_saturation in both configurations).

#include <array>
#include <bit>
#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace abc::obs {

/// False when the build compiled metrics out (ABC_NO_METRICS).
#ifdef ABC_NO_METRICS
inline constexpr bool kMetricsEnabled = false;
#else
inline constexpr bool kMetricsEnabled = true;
#endif

enum class Kind : u8 { kCounter = 0, kGauge = 1, kHistogram = 2 };

const char* kind_name(Kind k) noexcept;

// -- histogram layout ---------------------------------------------------------
// One fixed log2 layout for every histogram in the process, so any two
// histograms (and any two PRs' BENCH_*.json files) are bucket-comparable.

inline constexpr std::size_t kHistBuckets = 48;

/// Bucket index of @p v: 0 for 0, otherwise bit_width clamped into range.
constexpr std::size_t hist_bucket_index(u64 v) noexcept {
  const int w = std::bit_width(v);
  return w < static_cast<int>(kHistBuckets) ? static_cast<std::size_t>(w)
                                            : kHistBuckets - 1;
}

/// Inclusive lower bound of bucket @p i (0, 1, 2, 4, 8, ...).
constexpr u64 hist_bucket_lower(std::size_t i) noexcept {
  return i == 0 ? 0 : u64{1} << (i - 1);
}

/// Exclusive upper bound of bucket @p i; the overflow bucket reports
/// twice its lower bound so interpolation stays finite.
constexpr u64 hist_bucket_upper(std::size_t i) noexcept {
  return i == 0 ? 1 : u64{1} << i;
}

// -- snapshot types -----------------------------------------------------------

struct CounterValue {
  std::string name;
  u64 value = 0;
};

struct GaugeValue {
  std::string name;
  i64 value = 0;
};

struct HistogramValue {
  std::string name;
  u64 count = 0;
  u64 sum = 0;  // sum of recorded values (mean = sum / count)
  std::array<u64, kHistBuckets> buckets{};

  /// Quantile in [0, 1] with linear interpolation inside the bucket;
  /// 0 when the histogram is empty.
  double quantile(double q) const noexcept;
};

/// Point-in-time aggregate of every definition in a registry: retired
/// totals plus every live instance summed across every thread shard.
struct MetricsSnapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  const CounterValue* counter(std::string_view name) const noexcept;
  const GaugeValue* gauge(std::string_view name) const noexcept;
  const HistogramValue* histogram(std::string_view name) const noexcept;

  /// Counter value by name, 0 when absent — the delta-assertion helper.
  u64 counter_value(std::string_view name) const noexcept {
    const CounterValue* c = counter(name);
    return c == nullptr ? 0 : c->value;
  }
  i64 gauge_value(std::string_view name) const noexcept {
    const GaugeValue* g = gauge(name);
    return g == nullptr ? 0 : g->value;
  }
};

// -- metric catalog -----------------------------------------------------------
// Every instrumented name in the tree. Like the failpoint catalog: a
// metric absent here is a metric no scrape check guards, so additions
// belong here, in tools/check_stats_scrape.py, and in the
// docs/ARCHITECTURE.md table. The global registry pre-registers every
// entry so a scrape always emits the full catalog (zero-valued until the
// owning subsystem comes up).

namespace catalog {

struct Entry {
  const char* name;
  Kind kind;
};

// server (src/server/server.cpp)
inline constexpr const char* kServerAccepted = "server.accepted";
inline constexpr const char* kServerRejectedTooLarge =
    "server.rejected_too_large";
inline constexpr const char* kServerRejectedQueueFull =
    "server.rejected_queue_full";
inline constexpr const char* kServerRejectedShuttingDown =
    "server.rejected_shutting_down";
inline constexpr const char* kServerProcessed = "server.processed";
inline constexpr const char* kServerSteals = "server.steals";
inline constexpr const char* kServerDrained = "server.drained";
inline constexpr const char* kServerSlowRequests = "server.slow_requests";
inline constexpr const char* kServerQueueDepth = "server.queue_depth";
inline constexpr const char* kServerQueueWaitNs = "server.queue_wait_ns";
inline constexpr const char* kServerRequestNs = "server.request_ns";

// session registry (src/server/session_registry.cpp)
inline constexpr const char* kContextCacheHits = "session.context_cache_hits";
inline constexpr const char* kContextCacheMisses =
    "session.context_cache_misses";
inline constexpr const char* kResidentTenants = "session.resident_tenants";

// engines (src/engine/fan_out_core.cpp)
inline constexpr const char* kEngineItemsProcessed = "engine.items_processed";
inline constexpr const char* kEngineItemsFailed = "engine.items_failed";
inline constexpr const char* kEngineItemNs = "engine.item_ns";

// key switching (src/ckks/keyswitch.cpp)
inline constexpr const char* kKeySwitchDecompositions =
    "keyswitch.decompositions";
inline constexpr const char* kKeySwitchAccumulations =
    "keyswitch.accumulations";
inline constexpr const char* kKeySwitchHoistReuses = "keyswitch.hoist_reuses";

// transport (src/server/transport.cpp)
inline constexpr const char* kTransportBytesIn = "transport.bytes_in";
inline constexpr const char* kTransportBytesOut = "transport.bytes_out";
inline constexpr const char* kTransportFrameErrors = "transport.frame_errors";

// key cache (src/server/key_cache.cpp)
inline constexpr const char* kKeyCacheHits = "keycache.hits";
inline constexpr const char* kKeyCacheMisses = "keycache.misses";
inline constexpr const char* kKeyCacheEvictions = "keycache.evictions";
inline constexpr const char* kKeyCacheRegenNs = "keycache.regen_ns";
inline constexpr const char* kKeyCacheResidentBytes = "keycache.resident_bytes";

// failpoints (re-exported from the fail registry at scrape time)
inline constexpr const char* kFailpointHits = "failpoint.hits";
inline constexpr const char* kFailpointFires = "failpoint.fires";

inline constexpr Entry kAll[] = {
    {kServerAccepted, Kind::kCounter},
    {kServerRejectedTooLarge, Kind::kCounter},
    {kServerRejectedQueueFull, Kind::kCounter},
    {kServerRejectedShuttingDown, Kind::kCounter},
    {kServerProcessed, Kind::kCounter},
    {kServerSteals, Kind::kCounter},
    {kServerDrained, Kind::kCounter},
    {kServerSlowRequests, Kind::kCounter},
    {kServerQueueDepth, Kind::kGauge},
    {kServerQueueWaitNs, Kind::kHistogram},
    {kServerRequestNs, Kind::kHistogram},
    {kContextCacheHits, Kind::kCounter},
    {kContextCacheMisses, Kind::kCounter},
    {kResidentTenants, Kind::kGauge},
    {kEngineItemsProcessed, Kind::kCounter},
    {kEngineItemsFailed, Kind::kCounter},
    {kEngineItemNs, Kind::kHistogram},
    {kKeySwitchDecompositions, Kind::kCounter},
    {kKeySwitchAccumulations, Kind::kCounter},
    {kKeySwitchHoistReuses, Kind::kCounter},
    {kTransportBytesIn, Kind::kCounter},
    {kTransportBytesOut, Kind::kCounter},
    {kTransportFrameErrors, Kind::kCounter},
    {kKeyCacheHits, Kind::kCounter},
    {kKeyCacheMisses, Kind::kCounter},
    {kKeyCacheEvictions, Kind::kCounter},
    {kKeyCacheRegenNs, Kind::kHistogram},
    {kKeyCacheResidentBytes, Kind::kGauge},
    {kFailpointHits, Kind::kCounter},
    {kFailpointFires, Kind::kCounter},
};

}  // namespace catalog

// -- registry and handles -----------------------------------------------------

class Registry;

/// Monotonic counter instance. Default-constructed handles are
/// disengaged no-ops (and every handle is a no-op under ABC_NO_METRICS).
class Counter {
 public:
  Counter() = default;
  ~Counter();
  Counter(Counter&& other) noexcept { move_from(other); }
  Counter& operator=(Counter&& other) noexcept;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// One relaxed atomic add on this thread's shard.
  void inc(u64 n = 1) noexcept;

  /// This instance's total across all shards (not other instances of the
  /// same name — the per-instance forwarder semantics ContextCache,
  /// RunQueue and Server::stats() rely on).
  u64 value() const noexcept;

 private:
  friend class Registry;
  void move_from(Counter& other) noexcept;
  Registry* reg_ = nullptr;
  u32 def_ = 0;
  u32 cell_ = 0;
};

/// Delta-maintained signed gauge instance.
class Gauge {
 public:
  Gauge() = default;
  ~Gauge();
  Gauge(Gauge&& other) noexcept { move_from(other); }
  Gauge& operator=(Gauge&& other) noexcept;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void add(i64 delta) noexcept;
  void sub(i64 delta) noexcept { add(-delta); }
  i64 value() const noexcept;

 private:
  friend class Registry;
  void move_from(Gauge& other) noexcept;
  Registry* reg_ = nullptr;
  u32 def_ = 0;
  u32 cell_ = 0;
};

/// Log2-bucket histogram instance.
class Histogram {
 public:
  Histogram() = default;
  ~Histogram();
  Histogram(Histogram&& other) noexcept { move_from(other); }
  Histogram& operator=(Histogram&& other) noexcept;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Two relaxed adds (bucket + sum) on this thread's shard.
  void record(u64 value) noexcept;

  /// This instance's distribution across all shards.
  HistogramValue read() const noexcept;

 private:
  friend class Registry;
  void move_from(Histogram& other) noexcept;
  Registry* reg_ = nullptr;
  u32 def_ = 0;
  u32 cell_ = 0;
};

class Registry {
 public:
  /// Cells per thread shard. An instance consumes 1 (counter/gauge) or
  /// kHistBuckets+1 (histogram) cells; retirement recycles them, so this
  /// bounds *live* instances, not lifetime registrations.
  static constexpr std::size_t kShardCells = 8192;

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Creates a new instance of the named metric. The name's kind is fixed
  /// by its first registration (catalog entries are pre-registered);
  /// mismatched re-registration throws InvalidArgument.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name);

  /// Registers a definition without creating an instance, so snapshots
  /// emit the name (zero-valued) before any owner exists.
  void ensure(std::string_view name, Kind kind);

  /// A scrape-time counter whose value is polled from @p read at every
  /// snapshot (the failpoint hit/fire re-export).
  void add_external_counter(std::string_view name, u64 (*read)());

  /// Aggregates every definition: retired totals + live instances across
  /// all shards + external sources. Safe to call while other threads
  /// record (relaxed reads; tested under TSan).
  MetricsSnapshot snapshot() const;

  /// The process-wide registry every instrumented subsystem uses.
  static Registry& global();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;
  struct Impl;
  Impl* impl_ = nullptr;  // pimpl so the header stays atomic-layout-free

  u64 read_cells(u32 cell, std::size_t span,
                 std::array<u64, kHistBuckets + 1>* out) const noexcept;
  void add_cell(u32 cell, u64 delta) noexcept;
  void retire(u32 def, u32 cell) noexcept;
  std::pair<u32, u32> register_instance(std::string_view name, Kind kind);
};

/// Shorthand for Registry::global().
inline Registry& registry() { return Registry::global(); }

}  // namespace abc::obs
