#include "obs/trace.hpp"

#include <chrono>

#include "common/check.hpp"

namespace abc::obs {

u64 now_ns() noexcept {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TraceRing::TraceRing(std::size_t capacity, u64 slow_threshold_ns)
    : capacity_(capacity), slow_threshold_ns_(slow_threshold_ns) {
  ABC_CHECK_ARG(capacity_ > 0, "trace ring capacity must be positive");
  ring_.reserve(capacity_);
  slow_ring_.reserve(capacity_);
}

void TraceRing::push(const Trace& trace) {
  std::lock_guard<std::mutex> lock(m_);
  if (ring_.size() < capacity_) {
    ring_.push_back(trace);
  } else {
    ring_[next_ % capacity_] = trace;
  }
  ++next_;
  if (slow_threshold_ns_ != 0 && trace.total_ns() >= slow_threshold_ns_) {
    ++slow_count_;
    if (slow_ring_.size() < capacity_) {
      slow_ring_.push_back(trace);
    } else {
      slow_ring_[slow_next_ % capacity_] = trace;
    }
    ++slow_next_;
  }
}

std::vector<Trace> TraceRing::copy_out(const std::vector<Trace>& ring,
                                       std::size_t next) {
  std::vector<Trace> out;
  out.reserve(ring.size());
  if (ring.size() < next) {
    // Wrapped: oldest entry sits at the write cursor.
    const std::size_t cap = ring.size();
    for (std::size_t i = 0; i < cap; ++i) {
      out.push_back(ring[(next + i) % cap]);
    }
  } else {
    out = ring;
  }
  return out;
}

std::vector<Trace> TraceRing::recent() const {
  std::lock_guard<std::mutex> lock(m_);
  return copy_out(ring_, next_);
}

std::vector<Trace> TraceRing::slow() const {
  std::lock_guard<std::mutex> lock(m_);
  return copy_out(slow_ring_, slow_next_);
}

u64 TraceRing::slow_count() const {
  std::lock_guard<std::mutex> lock(m_);
  return slow_count_;
}

namespace {
thread_local Trace* t_active_trace = nullptr;
}  // namespace

Trace* active_trace() noexcept { return t_active_trace; }

TraceScope::TraceScope(Trace* trace) noexcept : previous_(t_active_trace) {
  t_active_trace = trace;
}

TraceScope::~TraceScope() { t_active_trace = previous_; }

}  // namespace abc::obs
