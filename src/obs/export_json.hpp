#pragma once

/// @file export_json.hpp
/// JSON rendering of a metrics snapshot + trace rings — the payload of the
/// Op::kStats admin request and the schema tools/check_stats_scrape.py
/// validates in CI:
///
///     {
///       "metrics_enabled": true,
///       "counters":   { "server.accepted": 123, ... },
///       "gauges":     { "server.queue_depth": 0, ... },
///       "histograms": { "server.request_ns":
///                         { "count": N, "sum": S,
///                           "p50": .., "p95": .., "p99": ..,
///                           "buckets": [48 counts] }, ... },
///       "histogram_layout": { "buckets": 48,
///                             "lower_bounds": [0, 1, 2, 4, ...] },
///       "traces": { "slow_threshold_ns": .., "slow_count": ..,
///                   "recent": [ {trace}, ... ], "slow": [ ... ] }
///     }
///
/// Written by hand (no JSON dependency in the image); emits only what the
/// snapshot holds, so an ABC_NO_METRICS build answers with empty metric
/// maps, "metrics_enabled": false, and live trace data.

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace abc::obs {

/// Renders @p snap (and @p traces when non-null) as the kStats document.
std::string stats_json(const MetricsSnapshot& snap,
                       const TraceRing* traces = nullptr);

}  // namespace abc::obs
