#pragma once

/// @file trace.hpp
/// Request-scoped tracing for the serving stack. A Trace carries one
/// request's identity (tenant, request id, op) from admission through
/// dispatch/steal, engine fan-out, key-switch, and response, collecting
/// monotonic-clock stage stamps plus key-switch work tallies. Completed
/// traces land in a bounded in-memory ring (plus a separate ring for
/// requests over the slow threshold), scrapeable via Op::kStats.
///
/// Deep layers never see a Trace parameter: the worker thread that owns a
/// request installs it as the thread's active trace (TraceScope), and the
/// key-switcher stamps through `active_trace()` — a thread-local pointer
/// check that is null (no-op) outside a request. This only works because
/// server contexts run the engines on a ScalarBackend: the fan-out stays
/// on the worker thread, so the thread-local is visible to every layer of
/// the request. A pool-backend context would silently drop the tallies
/// (never corrupt them), since pool workers carry no active trace.
///
/// Tracing is deliberately *not* gated by ABC_NO_METRICS: the per-request
/// cost is a handful of clock reads and one mutex push per completion,
/// invisible next to FHE compute, and keeping it live means the no-metrics
/// build still answers Op::kStats with trace data.

#include <cstddef>
#include <mutex>
#include <vector>

#include "common/types.hpp"

namespace abc::obs {

/// Monotonic nanoseconds (steady clock) — the stamp base for every stage.
u64 now_ns() noexcept;

/// One request's journey. Stage stamps are 0 until the stage happens.
struct Trace {
  u64 request_id = 0;
  u64 tenant = 0;
  u8 op = 0;
  bool stolen = false;  // dequeued from a sibling worker's queue

  u64 admit_ns = 0;         // accepted into a run queue
  u64 dequeue_ns = 0;       // picked up by a worker (own pop or steal)
  u64 engine_start_ns = 0;  // evaluate() fan-out began
  u64 engine_end_ns = 0;    // evaluate() fan-out returned
  u64 respond_ns = 0;       // response serialized, promise resolved

  // Key-switch work done on behalf of this request, stamped through
  // active_trace() from ckks::KeySwitcher.
  u64 ks_decompositions = 0;
  u64 ks_accumulations = 0;
  u64 ks_hoist_reuses = 0;

  u64 queue_wait_ns() const noexcept {
    return dequeue_ns >= admit_ns ? dequeue_ns - admit_ns : 0;
  }
  u64 total_ns() const noexcept {
    return respond_ns >= admit_ns ? respond_ns - admit_ns : 0;
  }
};

/// Bounded ring of completed traces. One mutex push per *request* (not per
/// stage), so contention is bounded by completion rate, not work rate.
class TraceRing {
 public:
  TraceRing(std::size_t capacity, u64 slow_threshold_ns);

  /// Records a completed trace; also files it into the slow ring when its
  /// end-to-end time meets the threshold.
  void push(const Trace& trace);

  /// Oldest-to-newest copies of the retained traces.
  std::vector<Trace> recent() const;
  std::vector<Trace> slow() const;

  /// Lifetime count of slow requests (the ring only keeps the last few).
  u64 slow_count() const;

  std::size_t capacity() const noexcept { return capacity_; }
  u64 slow_threshold_ns() const noexcept { return slow_threshold_ns_; }

 private:
  static std::vector<Trace> copy_out(const std::vector<Trace>& ring,
                                     std::size_t next);

  const std::size_t capacity_;
  const u64 slow_threshold_ns_;
  mutable std::mutex m_;
  std::vector<Trace> ring_;       // ring_[next_ % capacity] is oldest
  std::vector<Trace> slow_ring_;  // same shape, slow requests only
  std::size_t next_ = 0;
  std::size_t slow_next_ = 0;
  u64 slow_count_ = 0;
};

/// The trace the current thread is working on, or nullptr outside a
/// request. Deep layers stamp through this; they never own it.
Trace* active_trace() noexcept;

/// RAII installer of the thread's active trace. Nests by restoring the
/// previous pointer, so an engine running inside a traced request may
/// itself scope a sub-trace if it ever needs to.
class TraceScope {
 public:
  explicit TraceScope(Trace* trace) noexcept;
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Trace* previous_;
};

}  // namespace abc::obs
