#pragma once

/// @file transport.hpp
/// The pluggable transport seam between clients and the serving daemon.
///
/// A Channel is one tenant-side connection: it carries an "ABCQ" request
/// frame to a Server and returns the "ABCS" response. Two implementations
/// ship:
///
///  * LoopbackChannel — in-process, zero-copy into Server::submit; the
///    form every test battery uses by default (deterministic, no fds);
///  * UdsChannel / UdsServer — AF_UNIX SOCK_STREAM with 4-byte LE length
///    framing, proving the frames survive a real byte pipe. The length
///    prefix is bounded *before* any allocation — an adversarial peer can
///    name a huge frame but never make either side reserve it.
///
/// as_session_transport() adapts a Channel into the
/// engine::ClientSession::Transport callable, so the PR 5 retrying
/// round-trip facade drives the daemon unchanged: upload "ABCB" bytes go
/// in as a request payload, the response payload comes back as the
/// download envelope, and any non-ok status surfaces as the throw that
/// round_trip_with_retry already treats as a failed round.

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/client_session.hpp"
#include "server/server.hpp"

namespace abc::server {

/// One client-side connection to a serving daemon.
class Channel {
 public:
  virtual ~Channel() = default;

  /// Carries @p request to the server and returns its response. Throws on
  /// *transport* failure (broken pipe, malformed peer bytes); application
  /// failures come back as the response's typed status.
  virtual ckks::ResponseFrame call(const ckks::RequestFrame& request) = 0;
};

/// In-process transport: call() is Server::call(). What the soak and
/// determinism suites use — every observable behavior except the byte
/// pipe is identical to the socket path.
class LoopbackChannel final : public Channel {
 public:
  explicit LoopbackChannel(Server& server) : server_(server) {}

  ckks::ResponseFrame call(const ckks::RequestFrame& request) override {
    return server_.call(request);
  }

 private:
  Server& server_;
};

/// Accepts AF_UNIX connections on @p path and serves framed requests
/// against @p server: one accept thread, one thread per connection, each
/// request answered in order on its connection. Frames are
/// `u32 length (LE) || bytes`; a length above max_frame_bytes() is
/// rejected with a typed kTooLarge response and the connection closed —
/// without ever allocating the named amount.
class UdsServer {
 public:
  UdsServer(Server& server, std::string path);
  ~UdsServer();

  UdsServer(const UdsServer&) = delete;
  UdsServer& operator=(const UdsServer&) = delete;

  const std::string& path() const noexcept { return path_; }

  /// Admission bound on a framed request: the daemon's payload bound plus
  /// envelope slack.
  std::size_t max_frame_bytes() const noexcept;

  /// Stops accepting, unblocks in-flight reads, joins every thread, and
  /// removes the socket file. Idempotent.
  void stop();

 private:
  void accept_loop();
  void serve_connection(int fd);

  Server& server_;
  std::string path_;
  // Atomic: stop() publishes the shutdown while accept_loop() still reads
  // the fd for ::accept. The fd itself is only closed after the accept
  // thread is joined, so its number can't be reused under a live accept.
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex conns_m_;
  std::vector<int> conn_fds_;            // open connections (for shutdown)
  std::vector<std::thread> conn_threads_;
};

/// Client side of the socket transport. call() is serialized internally,
/// so one channel may be shared, but each client thread usually opens its
/// own (connections are cheap, and per-thread channels exercise the
/// daemon's cross-connection concurrency).
class UdsChannel final : public Channel {
 public:
  explicit UdsChannel(const std::string& path);
  ~UdsChannel();

  UdsChannel(const UdsChannel&) = delete;
  UdsChannel& operator=(const UdsChannel&) = delete;

  ckks::ResponseFrame call(const ckks::RequestFrame& request) override;

 private:
  int fd_ = -1;
  std::mutex m_;  // one in-flight request per connection
};

/// Registers @p bundle (a ClientSession key upload) with the daemon behind
/// @p channel under parameter-menu index @p param_index. Returns the
/// assigned tenant id; throws std::runtime_error when the daemon answers
/// with a non-ok status.
u64 register_over_channel(Channel& channel, std::size_t param_index,
                          const engine::KeyBundle& bundle);

/// Adapts a Channel into the ClientSession::Transport callable: each
/// upload ships as one request frame for @p tenant running @p op with
/// @p op_arg, and the response payload is the download envelope. A non-ok
/// status throws (which round_trip_with_retry records as that round's
/// failure and retries).
engine::ClientSession::Transport as_session_transport(Channel& channel,
                                                      u64 tenant, Op op,
                                                      i64 op_arg = 0);

}  // namespace abc::server
