#include "server/server.hpp"

#include <bit>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <limits>
#include <string>
#include <utility>

#include "common/check.hpp"
#include "common/failpoint.hpp"
#include "obs/export_json.hpp"

namespace abc::server {
namespace {

ckks::ResponseFrame error_response(u64 request_id, Status status,
                                   std::string message) {
  ckks::ResponseFrame resp;
  resp.request_id = request_id;
  resp.status = static_cast<u8>(status);
  resp.error = std::move(message);
  return resp;
}

}  // namespace

const char* status_name(Status s) noexcept {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kBadRequest: return "bad_request";
    case Status::kUnknownTenant: return "unknown_tenant";
    case Status::kUnknownOp: return "unknown_op";
    case Status::kTooLarge: return "too_large";
    case Status::kQueueFull: return "queue_full";
    case Status::kInternal: return "internal";
    case Status::kShuttingDown: return "shutting_down";
  }
  return "unknown_status";
}

/// A queued request: the frame plus the promise its future hangs off.
/// Heap-allocated so the ring moves one pointer; exactly one of execute()
/// or stop()'s drain fulfills-and-deletes it.
struct Server::Pending {
  ckks::RequestFrame request;
  std::promise<ckks::ResponseFrame> promise;
  obs::Trace trace;  // stamped at admission, completed by execute()
};

/// Per-worker evaluation state. Each worker owns its own BatchEvaluator
/// per context because the evaluator's scratch pool is sized to the
/// *backend's* lanes (one, for the daemon's scalar contexts) and must not
/// be shared across server worker threads.
struct Server::WorkerState {
  std::map<const ckks::CkksContext*, std::unique_ptr<engine::BatchEvaluator>>
      evaluators;

  engine::BatchEvaluator& evaluator_for(
      const std::shared_ptr<const ckks::CkksContext>& ctx) {
    auto& slot = evaluators[ctx.get()];
    if (!slot) slot = std::make_unique<engine::BatchEvaluator>(ctx);
    return *slot;
  }
};

/// Parking-lot for an idle worker. The queues stay lock-free; this pair
/// only gates *blocking*, and the short wait_for turns missed wakeups into
/// bounded latency rather than lost work.
struct Server::WorkerSignal {
  std::mutex m;
  std::condition_variable cv;
};

Server::Server(ServerConfig config) : config_(std::move(config)) {
  ABC_CHECK_ARG(config_.workers >= 1, "server needs at least one worker");
  ABC_CHECK_ARG(config_.queue_capacity >= 1,
                "run-queue capacity must be nonzero");
  ABC_CHECK_ARG(config_.pin_dispatch_to <
                    static_cast<int>(config_.workers),
                "pin_dispatch_to must name an existing worker");
  ABC_CHECK_ARG(config_.trace_ring_capacity >= 1,
                "trace ring needs at least one slot");
  config_.queue_capacity = std::bit_ceil(config_.queue_capacity);

  per_worker_processed_.reset(new std::atomic<u64>[config_.workers]);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    per_worker_processed_[w].store(0, std::memory_order_relaxed);
  }
  traces_ = std::make_unique<obs::TraceRing>(config_.trace_ring_capacity,
                                             config_.slow_request_ns);
  queues_.reserve(config_.workers);
  worker_states_.reserve(config_.workers);
  signals_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    queues_.push_back(
        std::make_unique<RunQueue<Pending*>>(config_.queue_capacity));
    worker_states_.push_back(std::make_unique<WorkerState>());
    signals_.push_back(std::make_unique<WorkerSignal>());
  }
  workers_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

Server::~Server() { stop(); }

void Server::stop() {
  {
    std::unique_lock<std::shared_mutex> lock(lifecycle_m_);
    if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  }
  for (auto& sig : signals_) sig->cv.notify_all();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  // Workers are gone and lifecycle_m_ bars new enqueues: whatever is still
  // queued resolves typed, never hangs.
  for (auto& q : queues_) {
    Pending* p = nullptr;
    while (q->pop(p)) {
      queue_depth_.sub(1);
      drained_.inc();
      p->promise.set_value(error_response(p->request.request_id,
                                          Status::kShuttingDown,
                                          "server stopped before dispatch"));
      delete p;
    }
  }
}

u64 Server::register_tenant(const ckks::CkksParams& params,
                            const ckks::KeyBundleFrames& bundle) {
  auto ctx = cache_.get_or_create(params);
  return registry_.add(parse_tenant_bundle(ctx, bundle));
}

std::future<ckks::ResponseFrame> Server::submit(ckks::RequestFrame request) {
  auto pending = std::make_unique<Pending>();
  pending->request = std::move(request);
  std::future<ckks::ResponseFrame> future = pending->promise.get_future();
  const u64 request_id = pending->request.request_id;

  auto reject = [&](Status status, std::string message) {
    pending->promise.set_value(
        error_response(request_id, status, std::move(message)));
    return std::move(future);
  };

  // Admission, in order: liveness, accept fault drill, payload bound,
  // queue depth. All of it runs before any payload-sized allocation or
  // enqueue — a rejected request costs the rejecter O(1).
  std::shared_lock<std::shared_mutex> lifecycle(lifecycle_m_);
  if (stopping_.load(std::memory_order_acquire)) {
    rejected_shutting_down_.inc();
    return reject(Status::kShuttingDown, "server is shutting down");
  }
  try {
    ABC_FAILPOINT(fail::points::kServerAccept);
  } catch (const std::exception& e) {
    return reject(Status::kInternal, e.what());
  }
  if (pending->request.payload.size() > config_.max_request_bytes) {
    rejected_too_large_.inc();
    return reject(Status::kTooLarge,
                  "request payload exceeds the admission bound");
  }

  // Admission passed: stamp the trace before the enqueue — a worker may
  // dequeue the pending the instant push() returns.
  pending->trace.request_id = request_id;
  pending->trace.tenant = pending->request.tenant;
  pending->trace.op = pending->request.op;
  pending->trace.admit_ns = obs::now_ns();

  // Dispatch: pinned (test knob) targets exactly one queue; round-robin
  // starts at the cursor and tries each queue once, so one backed-up
  // worker does not reject while siblings have room.
  bool enqueued = false;
  std::size_t target = 0;
  if (config_.pin_dispatch_to >= 0) {
    target = static_cast<std::size_t>(config_.pin_dispatch_to);
    enqueued = queues_[target]->push(pending.get());
  } else {
    const u64 start = rr_next_.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t i = 0; i < queues_.size(); ++i) {
      target = static_cast<std::size_t>((start + i) % queues_.size());
      if (queues_[target]->push(pending.get())) {
        enqueued = true;
        break;
      }
    }
  }

  if (!enqueued) {
    rejected_queue_full_.inc();
    try {
      ABC_FAILPOINT(fail::points::kServerQueueFull);
    } catch (const std::exception& e) {
      return reject(Status::kQueueFull, e.what());
    }
    return reject(Status::kQueueFull,
                  "every eligible run queue is at capacity");
  }

  (void)pending.release();  // the queue owns it now
  accepted_.inc();
  queue_depth_.add(1);
  signals_[target]->cv.notify_one();
  if (config_.work_stealing) {
    for (std::size_t w = 0; w < signals_.size(); ++w) {
      if (w != target) signals_[w]->cv.notify_one();
    }
  }
  return future;
}

void Server::worker_loop(std::size_t worker) {
  WorkerState& state = *worker_states_[worker];
  WorkerSignal& sig = *signals_[worker];
  const std::size_t n = queues_.size();

  while (true) {
    // Checked before popping: stop() means queued-but-unprocessed work
    // resolves kShuttingDown via the drain (the contract stop() documents),
    // not a slow crawl through the backlog. The in-flight request, if any,
    // still finishes normally.
    if (stopping_.load(std::memory_order_acquire)) return;
    Pending* p = nullptr;
    if (queues_[worker]->pop(p)) {
      execute(p, state, worker, /*stolen=*/false);
      continue;
    }
    if (config_.work_stealing && n > 1) {
      bool stole = false;
      for (std::size_t off = 1; off < n && !stole; ++off) {
        if (queues_[(worker + off) % n]->steal(p)) {
          execute(p, state, worker, /*stolen=*/true);
          stole = true;
        }
      }
      if (stole) continue;
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    std::unique_lock<std::mutex> lock(sig.m);
    sig.cv.wait_for(lock, std::chrono::microseconds(200));
  }
}

void Server::execute(Pending* pending, WorkerState& state, std::size_t worker,
                     bool stolen) {
  ckks::ResponseFrame resp;
  const u64 request_id = pending->request.request_id;
  pending->trace.dequeue_ns = obs::now_ns();
  pending->trace.stolen = stolen;
  queue_depth_.sub(1);
  queue_wait_ns_.record(pending->trace.queue_wait_ns());
  // Install the trace for the duration of the request so deep layers
  // (key-switch tallies, engine stamps) reach it through active_trace()
  // without signature changes.
  obs::TraceScope trace_scope(&pending->trace);
  // The exception->status taxonomy of the whole daemon: a caller mistake
  // (malformed envelope, missing key, bad step) is kBadRequest; everything
  // else — invariant breaks, allocation failure, fault injection — is
  // kInternal. Either way the worker survives and the promise resolves.
  try {
    if (stolen) ABC_FAILPOINT(fail::points::kServerMigrate);
    ABC_FAILPOINT(fail::points::kServerDispatch);
    resp = process(pending->request, state);
  } catch (const InvalidArgument& e) {
    resp = error_response(request_id, Status::kBadRequest, e.what());
  } catch (const std::exception& e) {
    resp = error_response(request_id, Status::kInternal, e.what());
  } catch (...) {
    resp = error_response(request_id, Status::kInternal,
                          "foreign exception during dispatch");
  }
  pending->trace.respond_ns = obs::now_ns();
  const u64 total_ns = pending->trace.total_ns();
  request_ns_.record(total_ns);
  if (config_.slow_request_ns != 0 && total_ns >= config_.slow_request_ns) {
    slow_requests_.inc();
  }
  traces_->push(pending->trace);
  // Counted before the promise resolves: a client that has its response
  // must find it reflected in processed counts (scrape-after-call reads
  // are exact, not eventually consistent).
  processed_.inc();
  per_worker_processed_[worker].fetch_add(1, std::memory_order_relaxed);
  pending->promise.set_value(std::move(resp));
  delete pending;
}

ckks::ResponseFrame Server::process_serial(const ckks::RequestFrame& request) {
  // Fresh single-use worker state: identical code path, zero queues, zero
  // shared evaluator state — the reference the soak tests diff against.
  WorkerState state;
  try {
    return process(request, state);
  } catch (const InvalidArgument& e) {
    return error_response(request.request_id, Status::kBadRequest, e.what());
  } catch (const std::exception& e) {
    return error_response(request.request_id, Status::kInternal, e.what());
  } catch (...) {
    return error_response(request.request_id, Status::kInternal,
                          "foreign exception during dispatch");
  }
}

ckks::ResponseFrame Server::process(const ckks::RequestFrame& request,
                                    WorkerState& state) {
  switch (static_cast<Op>(request.op)) {
    case Op::kEcho:
    case Op::kRotate:
    case Op::kSquare:
      return evaluate(request, state);
    case Op::kRegister:
      return handle_register(request);
    case Op::kStats:
      return handle_stats(request);
  }
  return error_response(request.request_id, Status::kUnknownOp,
                        "unrecognized op byte " +
                            std::to_string(static_cast<int>(request.op)));
}

ckks::ResponseFrame Server::evaluate(const ckks::RequestFrame& request,
                                     WorkerState& state) {
  const auto tenant = registry_.find(request.tenant);
  if (!tenant) {
    return error_response(request.request_id, Status::kUnknownTenant,
                          "tenant " + std::to_string(request.tenant) +
                              " is not registered");
  }
  std::vector<ckks::Ciphertext> cts =
      ckks::deserialize_ciphertext_batch(tenant->ctx, request.payload);

  if (obs::Trace* t = obs::active_trace()) t->engine_start_ns = obs::now_ns();
  std::vector<ckks::Ciphertext> out;
  switch (static_cast<Op>(request.op)) {
    case Op::kEcho:
      out = std::move(cts);
      break;
    case Op::kRotate: {
      ABC_CHECK_ARG(request.op_arg >= std::numeric_limits<int>::min() &&
                        request.op_arg <= std::numeric_limits<int>::max(),
                    "rotation step out of range");
      const TenantKeySource keys(key_cache_, *tenant);
      out = state.evaluator_for(tenant->ctx)
                .rotate_batch(cts, static_cast<int>(request.op_arg), keys);
      break;
    }
    case Op::kSquare: {
      const TenantKeySource keys(key_cache_, *tenant);
      out = state.evaluator_for(tenant->ctx).square_relin_batch(cts, keys);
      break;
    }
    default:
      ABC_CHECK_STATE(false, "evaluate() reached with a non-evaluate op");
  }
  if (obs::Trace* t = obs::active_trace()) t->engine_end_ns = obs::now_ns();

  ckks::ResponseFrame resp;
  resp.request_id = request.request_id;
  resp.status = static_cast<u8>(Status::kOk);
  resp.payload = ckks::serialize_ciphertext_batch(out, config_.bits_per_coeff);
  return resp;
}

ckks::ResponseFrame Server::handle_register(
    const ckks::RequestFrame& request) {
  if (request.op_arg < 0 ||
      static_cast<std::size_t>(request.op_arg) >= config_.param_sets.size()) {
    return error_response(request.request_id, Status::kBadRequest,
                          "op_arg does not index the published parameter "
                          "menu");
  }
  const ckks::KeyBundleFrames bundle =
      ckks::deserialize_key_bundle(request.payload);
  auto ctx = cache_.get_or_create(
      config_.param_sets[static_cast<std::size_t>(request.op_arg)]);
  const u64 id = registry_.add(parse_tenant_bundle(ctx, bundle));

  ckks::ResponseFrame resp;
  resp.request_id = request.request_id;
  resp.status = static_cast<u8>(Status::kOk);
  resp.payload.resize(8);
  for (int i = 0; i < 8; ++i) {
    resp.payload[static_cast<std::size_t>(i)] =
        static_cast<u8>(id >> (8 * i));
  }
  return resp;
}

ckks::ResponseFrame Server::handle_stats(const ckks::RequestFrame& request) {
  // Tenant-less admin scrape: the process-wide snapshot plus this
  // server's trace rings, rendered once into the response payload.
  const std::string json =
      obs::stats_json(obs::registry().snapshot(), traces_.get());
  ckks::ResponseFrame resp;
  resp.request_id = request.request_id;
  resp.status = static_cast<u8>(Status::kOk);
  resp.payload.assign(json.begin(), json.end());
  return resp;
}

ServerStats Server::stats() const {
  ServerStats out;
  out.accepted = accepted_.value();
  out.rejected_too_large = rejected_too_large_.value();
  out.rejected_queue_full = rejected_queue_full_.value();
  out.processed = processed_.value();
  out.drained = drained_.value();
  out.slow_requests = slow_requests_.value();
  out.per_worker_processed.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    out.per_worker_processed.push_back(
        per_worker_processed_[w].load(std::memory_order_relaxed));
  }
  for (const auto& q : queues_) out.steals += q->steals();
  return out;
}

}  // namespace abc::server
