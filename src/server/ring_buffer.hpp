#pragma once

/// @file ring_buffer.hpp
/// Bounded single-producer/single-consumer ring buffer — the run-queue
/// primitive of the serving daemon. Lock-free in the literal sense: one
/// producer thread and one consumer thread synchronize through two atomic
/// cursors only, no mutex, no CAS loop, no allocation after construction.
///
/// Design (the per-core request/ack ring the ROADMAP's scheduler blueprint
/// called for, documented in docs/ARCHITECTURE.md "Serving daemon"):
///
///  * Capacity is a power of two; cursors are free-running 64-bit counters
///    and `index = cursor & (capacity - 1)`, so full/empty are exact
///    (`tail - head == capacity` / `tail == head`) and wrap-around costs
///    one AND. 64-bit cursors cannot overflow in practice (2^64 pushes).
///  * Each side keeps a *cached* copy of the other side's cursor and only
///    re-reads the shared atomic when the cached value says full/empty —
///    the common case touches one shared cache line instead of two.
///  * `try_push` publishes the slot write with a release store of `tail`;
///    `try_pop` acquires `tail` before reading the slot — the only
///    synchronization a correct SPSC handoff needs.
///
/// The strict SPSC contract is the point: anything beyond one producer and
/// one consumer must serialize externally (server::RunQueue adds exactly
/// that — a producer guard for the many-clients submit side and a consumer
/// guard shared by the owning worker and its stealers).

#include <atomic>
#include <bit>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace abc::server {

template <class T>
class SpscRing {
 public:
  /// @p capacity must be a nonzero power of two (callers with a free
  /// choice can round up with std::bit_ceil).
  explicit SpscRing(std::size_t capacity)
      : slots_(capacity), mask_(capacity - 1) {
    ABC_CHECK_ARG(capacity > 0 && std::has_single_bit(capacity),
                  "ring capacity must be a nonzero power of two");
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer side. Returns false when the ring is full (the admission
  /// signal — nothing blocks, nothing allocates).
  bool try_push(T value) {
    const u64 tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ == capacity()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ == capacity()) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const u64 head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Instantaneous occupancy; exact only when both sides are quiescent
  /// (monitoring/tests), approximate under concurrency.
  std::size_t size() const noexcept {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }
  bool empty() const noexcept { return size() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_;
  // Cursors on their own cache lines so producer and consumer do not
  // false-share; each side's cached mirror of the *other* cursor lives
  // with the owning side.
  alignas(64) std::atomic<u64> head_{0};  // next pop (consumer-owned)
  alignas(64) u64 cached_tail_ = 0;       // consumer's view of tail_
  alignas(64) std::atomic<u64> tail_{0};  // next push (producer-owned)
  alignas(64) u64 cached_head_ = 0;       // producer's view of head_
};

}  // namespace abc::server
