#include "server/transport.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace abc::server {
namespace {

// Leaked (like the global registry) so frames sent during static teardown
// still have live handles. Counts both directions of both UDS endpoints —
// the process-level wire traffic view.
struct TransportMetrics {
  obs::Counter bytes_in =
      obs::registry().counter(obs::catalog::kTransportBytesIn);
  obs::Counter bytes_out =
      obs::registry().counter(obs::catalog::kTransportBytesOut);
  obs::Counter frame_errors =
      obs::registry().counter(obs::catalog::kTransportFrameErrors);
};

TransportMetrics& transport_metrics() {
  static TransportMetrics* m = new TransportMetrics;
  return *m;
}

// Frame = u32 length (LE) || bytes. The length is a *claim* by the peer;
// both sides bound it against their own limit before reserving anything.

bool send_all(int fd, const u8* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Returns false on EOF-before-first-byte; throws on a mid-frame error.
bool recv_all(int fd, u8* data, std::size_t len) {
  bool any = false;
  while (len > 0) {
    const ssize_t n = ::recv(fd, data, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("uds recv failed: ") +
                               std::strerror(errno));
    }
    if (n == 0) {
      if (any) throw std::runtime_error("uds peer closed mid-frame");
      return false;
    }
    any = true;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool send_frame(int fd, const std::vector<u8>& bytes) {
  ABC_CHECK_ARG(bytes.size() <= 0xffffffffu, "frame exceeds u32 length");
  u8 header[4];
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<u8>(bytes.size() >> (8 * i));
  }
  if (!send_all(fd, header, 4) ||
      !send_all(fd, bytes.data(), bytes.size())) {
    return false;
  }
  transport_metrics().bytes_out.inc(4 + bytes.size());
  return true;
}

/// Reads one frame into @p out. Returns false on clean EOF. @p max_bytes
/// bounds the claimed length before the buffer is reserved.
bool recv_frame(int fd, std::vector<u8>& out, std::size_t max_bytes) {
  u8 header[4];
  try {
    if (!recv_all(fd, header, 4)) return false;
  } catch (...) {
    transport_metrics().frame_errors.inc();  // peer died inside the header
    throw;
  }
  u64 len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<u64>(header[i]) << (8 * i);
  try {
    if (len > max_bytes) {
      throw InvalidArgument("framed message claims " + std::to_string(len) +
                            " bytes, above the transport bound");
    }
    out.resize(static_cast<std::size_t>(len));
    if (len > 0 && !recv_all(fd, out.data(), out.size())) {
      throw std::runtime_error("uds peer closed mid-frame");
    }
  } catch (...) {
    // Every post-header failure — oversize claim, mid-frame EOF, socket
    // error — leaves the stream unrecoverable: one frame error each.
    transport_metrics().frame_errors.inc();
    throw;
  }
  transport_metrics().bytes_in.inc(4 + len);
  return true;
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ABC_CHECK_ARG(path.size() < sizeof(addr.sun_path),
                "unix socket path too long");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

// -- UdsServer ---------------------------------------------------------------

UdsServer::UdsServer(Server& server, std::string path)
    : server_(server), path_(std::move(path)) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("uds socket failed: ") +
                             std::strerror(errno));
  }
  ::unlink(path_.c_str());  // stale socket from a crashed predecessor
  const sockaddr_un addr = make_addr(path_);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("uds bind/listen failed: ") +
                             std::strerror(err));
  }
  listen_fd_.store(fd, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

UdsServer::~UdsServer() { stop(); }

std::size_t UdsServer::max_frame_bytes() const noexcept {
  // The daemon bounds the payload; the frame adds the fixed-field envelope
  // (magic, ids, op, error text) — 1 MiB of slack covers it many times
  // over without weakening the admission story.
  return server_.config().max_request_bytes + (1u << 20);
}

void UdsServer::stop() {
  if (stopping_.exchange(true)) return;
  const int lfd = listen_fd_.load(std::memory_order_acquire);
  if (lfd >= 0) ::shutdown(lfd, SHUT_RDWR);  // wakes a blocked ::accept
  if (accept_thread_.joinable()) accept_thread_.join();
  if (lfd >= 0) {
    ::close(lfd);  // only after the join: the fd number must not be
    listen_fd_.store(-1, std::memory_order_release);  // reused mid-accept
  }
  {
    std::lock_guard<std::mutex> lock(conns_m_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // conn_threads_ only grows under conns_m_ in accept_loop, which has
  // exited — safe to walk unlocked.
  for (auto& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  {
    std::lock_guard<std::mutex> lock(conns_m_);
    for (int fd : conn_fds_) ::close(fd);
    conn_fds_.clear();
  }
  ::unlink(path_.c_str());
}

void UdsServer::accept_loop() {
  const int lfd = listen_fd_.load(std::memory_order_acquire);
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // stop() shut the listener down (or it truly broke)
    }
    std::lock_guard<std::mutex> lock(conns_m_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void UdsServer::serve_connection(int fd) {
  std::vector<u8> frame;
  while (!stopping_.load(std::memory_order_acquire)) {
    ckks::ResponseFrame resp;
    try {
      if (!recv_frame(fd, frame, max_frame_bytes())) return;  // clean EOF
    } catch (const InvalidArgument& e) {
      // Oversized claim: answer typed, then drop the connection — the
      // unread payload makes the stream unrecoverable.
      resp.status = static_cast<u8>(Status::kTooLarge);
      resp.error = e.what();
      send_frame(fd, ckks::serialize_response_frame(resp));
      return;
    } catch (const std::exception&) {
      return;  // broken pipe mid-frame; nothing sane to answer
    }

    try {
      ckks::RequestFrame req = ckks::deserialize_request_frame(frame);
      resp = server_.call(std::move(req));
    } catch (const InvalidArgument& e) {
      resp.status = static_cast<u8>(Status::kBadRequest);
      resp.error = e.what();
    } catch (const std::exception& e) {
      resp.status = static_cast<u8>(Status::kInternal);
      resp.error = e.what();
    }
    if (!send_frame(fd, ckks::serialize_response_frame(resp))) return;
  }
}

// -- UdsChannel --------------------------------------------------------------

UdsChannel::UdsChannel(const std::string& path) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("uds socket failed: ") +
                             std::strerror(errno));
  }
  const sockaddr_un addr = make_addr(path);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error(std::string("uds connect failed: ") +
                             std::strerror(err));
  }
}

UdsChannel::~UdsChannel() {
  if (fd_ >= 0) ::close(fd_);
}

ckks::ResponseFrame UdsChannel::call(const ckks::RequestFrame& request) {
  std::lock_guard<std::mutex> lock(m_);
  if (!send_frame(fd_, ckks::serialize_request_frame(request))) {
    throw std::runtime_error("uds send failed: connection lost");
  }
  std::vector<u8> frame;
  // The client trusts its own server a little further than the server
  // trusts clients, but still bounds the claim (responses can't exceed
  // what a request could produce by much).
  if (!recv_frame(fd_, frame, (1u << 30))) {
    throw std::runtime_error("uds server closed the connection");
  }
  return ckks::deserialize_response_frame(frame);
}

// -- session plumbing --------------------------------------------------------

u64 register_over_channel(Channel& channel, std::size_t param_index,
                          const engine::KeyBundle& bundle) {
  ckks::KeyBundleFrames frames;
  frames.public_key = bundle.public_key;
  frames.relin_key = bundle.relin_key;
  frames.galois_keys = bundle.galois_keys;

  ckks::RequestFrame req;
  req.op = static_cast<u8>(Op::kRegister);
  req.op_arg = static_cast<i64>(param_index);
  req.payload = ckks::serialize_key_bundle(frames);

  const ckks::ResponseFrame resp = channel.call(req);
  if (resp.status != static_cast<u8>(Status::kOk)) {
    throw std::runtime_error(
        "tenant registration failed (" +
        std::string(status_name(static_cast<Status>(resp.status))) +
        "): " + resp.error);
  }
  ABC_CHECK_STATE(resp.payload.size() == 8,
                  "registration response payload is not a tenant id");
  u64 id = 0;
  for (int i = 0; i < 8; ++i) {
    id |= static_cast<u64>(resp.payload[static_cast<std::size_t>(i)])
          << (8 * i);
  }
  return id;
}

engine::ClientSession::Transport as_session_transport(Channel& channel,
                                                      u64 tenant, Op op,
                                                      i64 op_arg) {
  // One monotone request-id stream per adapter, shared across copies of
  // the callable (ClientSession may copy its Transport).
  auto next_id = std::make_shared<std::atomic<u64>>(1);
  return [&channel, tenant, op, op_arg,
          next_id](std::span<const u8> upload) -> std::vector<u8> {
    ckks::RequestFrame req;
    req.tenant = tenant;
    req.request_id = next_id->fetch_add(1, std::memory_order_relaxed);
    req.op = static_cast<u8>(op);
    req.op_arg = op_arg;
    req.payload.assign(upload.begin(), upload.end());
    ckks::ResponseFrame resp = channel.call(req);
    if (resp.status != static_cast<u8>(Status::kOk)) {
      throw std::runtime_error(
          "server answered " +
          std::string(status_name(static_cast<Status>(resp.status))) +
          ": " + resp.error);
    }
    return std::move(resp.payload);
  };
}

}  // namespace abc::server
