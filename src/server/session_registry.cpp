#include "server/session_registry.hpp"

#include <utility>

#include "common/check.hpp"

namespace abc::server {

std::shared_ptr<const ckks::CkksContext> ContextCache::get_or_create(
    const ckks::CkksParams& params) {
  std::lock_guard<std::mutex> lock(m_);
  for (const auto& [key, ctx] : entries_) {
    if (key == params) {
      hits_.inc();
      return ctx;
    }
  }
  misses_.inc();
  // Scalar backend on purpose (see the header): request-level parallelism
  // belongs to the daemon's per-core workers.
  auto ctx = ckks::CkksContext::create(params);
  entries_.emplace_back(params, ctx);
  return ctx;
}

std::size_t ContextCache::size() const {
  std::lock_guard<std::mutex> lock(m_);
  return entries_.size();
}

const ckks::CompressedKeySwitchKey* TenantSession::galois_record_for(
    int step) const noexcept {
  const auto reduce = [this](long long s) {
    if (slots == 0) return s;
    const auto m = static_cast<long long>(slots);
    return ((s % m) + m) % m;
  };
  const long long want = reduce(step);
  for (std::size_t i = 0; i < gk_steps.size(); ++i) {
    if (reduce(gk_steps[i]) == want && i < gks.size()) return &gks[i];
  }
  return nullptr;
}

std::size_t TenantSession::compressed_key_bytes() const noexcept {
  std::size_t total = rlk.resident_bytes();
  for (const ckks::CompressedKeySwitchKey& rec : gks) {
    total += rec.resident_bytes();
  }
  return total;
}

std::size_t TenantSession::expanded_key_bytes() const noexcept {
  if (ctx == nullptr) return 0;
  const std::size_t n = ctx->n();
  std::size_t total = rlk.expanded_bytes(n);
  for (const ckks::CompressedKeySwitchKey& rec : gks) {
    total += rec.expanded_bytes(n);
  }
  return total;
}

ckks::RelinKey TenantSession::expand_rlk() const {
  return ckks::RelinKey{ckks::expand_key_switch_key(ctx, rlk)};
}

ckks::GaloisKeys TenantSession::expand_gks() const {
  ckks::GaloisKeys out;
  out.slots = slots;
  out.steps = gk_steps;
  out.keys.reserve(gks.size());
  for (const ckks::CompressedKeySwitchKey& rec : gks) {
    out.keys.push_back(ckks::expand_key_switch_key(ctx, rec));
  }
  return out;
}

TenantSession parse_tenant_bundle(
    const std::shared_ptr<const ckks::CkksContext>& ctx,
    const ckks::KeyBundleFrames& bundle) {
  ABC_CHECK_ARG(ctx != nullptr, "null context");
  TenantSession session;
  session.ctx = ctx;
  // Deserialized for validation only (tamper checks, regenerability
  // proof), then dropped: the daemon never encrypts under a tenant key.
  (void)deserialize_public_key(ctx, bundle.public_key);
  ckks::KeySwitchKey rlk = deserialize_key_switch_key(ctx, bundle.relin_key);
  ABC_CHECK_ARG(rlk.kind == ckks::KeySwitchKey::Kind::kRelin,
                "bundle relin slot holds a non-relin key");
  session.rlk = ckks::compress_key_switch_key(ctx, rlk);

  // Recover each Galois key's rotation step from its group element: walk
  // g = 3^s mod 2N once (the generator the encoder's slot order is built
  // on) and invert the map. O(slots) total, paid once per registration.
  const std::size_t n = ctx->n();
  const std::size_t slots = ctx->slots();
  std::unordered_map<u32, int> elt_to_step;
  elt_to_step.reserve(slots);
  u64 g = 1;
  for (std::size_t s = 1; s < slots; ++s) {
    g = (g * 3) % (2 * n);
    elt_to_step.emplace(static_cast<u32>(g), static_cast<int>(s));
  }

  session.slots = slots;
  session.gk_steps.reserve(bundle.galois_keys.size());
  session.gks.reserve(bundle.galois_keys.size());
  for (const std::vector<u8>& blob : bundle.galois_keys) {
    ckks::KeySwitchKey gk = deserialize_key_switch_key(ctx, blob);
    ABC_CHECK_ARG(gk.kind == ckks::KeySwitchKey::Kind::kGalois,
                  "bundle Galois slot holds a non-Galois key");
    const auto it = elt_to_step.find(gk.galois_elt);
    ABC_CHECK_ARG(it != elt_to_step.end(),
                  "Galois element is not a slot rotation for these "
                  "parameters");
    session.gk_steps.push_back(it->second);
    session.gks.push_back(ckks::compress_key_switch_key(ctx, gk));
  }
  return session;
}

u64 SessionRegistry::add(TenantSession session) {
  std::unique_lock<std::shared_mutex> lock(m_);
  const u64 id = next_id_++;
  session.id = id;
  tenants_.emplace(id,
                   std::make_shared<const TenantSession>(std::move(session)));
  resident_.add(1);
  return id;
}

std::shared_ptr<const TenantSession> SessionRegistry::find(u64 tenant) const {
  std::shared_lock<std::shared_mutex> lock(m_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : it->second;
}

bool SessionRegistry::erase(u64 tenant) {
  std::unique_lock<std::shared_mutex> lock(m_);
  const bool erased = tenants_.erase(tenant) != 0;
  if (erased) resident_.sub(1);
  return erased;
}

std::size_t SessionRegistry::size() const {
  std::shared_lock<std::shared_mutex> lock(m_);
  return tenants_.size();
}

}  // namespace abc::server
