#pragma once

/// @file session_registry.hpp
/// Multi-tenant state of the serving daemon: the warm CkksContext cache
/// keyed by parameter set, and the registry mapping tenant ids to their
/// registered (seed-compressed, now expanded) key material.
///
/// Cache semantics the tests pin down:
///  * two tenants with the *same* parameter set share one context — one
///    prime chain, one set of NTT tables, one context-wide stream/secret
///    counter pair — so per-tenant warm cost is keys only;
///  * different parameter sets never share (CkksParams::operator== is the
///    key, seed included);
///  * the shared counters stay monotone across tenants: registration and
///    serving never reserve ids themselves (deserialization regenerates
///    from *stored* stream ids), so client engines on a cached context
///    keep the never-alias guarantee no matter how many tenants join.
///
/// Server contexts deliberately use the process-wide ScalarBackend: the
/// daemon parallelizes across requests (one per core-worker), not inside
/// one, so nested pools never fight for cores.

#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "ckks/context.hpp"
#include "ckks/keygen.hpp"
#include "ckks/serialize.hpp"
#include "obs/metrics.hpp"

namespace abc::server {

class ContextCache {
 public:
  /// Returns the cached context for @p params, building it (scalar
  /// backend) on first use. Thread-safe.
  std::shared_ptr<const ckks::CkksContext> get_or_create(
      const ckks::CkksParams& params);

  std::size_t size() const;
  /// Thin forwarders over this cache's session.context_cache_* counter
  /// instances (the registry snapshot aggregates every cache).
  u64 hits() const { return hits_.value(); }
  u64 misses() const { return misses_.value(); }

 private:
  mutable std::mutex m_;
  // Param sets in service are few; a linear scan under the lock beats
  // hashing a 9-field struct.
  std::vector<std::pair<ckks::CkksParams,
                        std::shared_ptr<const ckks::CkksContext>>>
      entries_;
  obs::Counter hits_ =
      obs::registry().counter(obs::catalog::kContextCacheHits);
  obs::Counter misses_ =
      obs::registry().counter(obs::catalog::kContextCacheMisses);
};

/// One registered tenant: the expanded key material a request needs,
/// pinned to the (shared) context it was registered under. Immutable after
/// registration, so workers read it lock-free through a shared_ptr.
struct TenantSession {
  u64 id = 0;
  std::shared_ptr<const ckks::CkksContext> ctx;
  // optional only because PublicKey is not default-constructible (RnsPoly
  // needs a context); always engaged after parse_tenant_bundle.
  std::optional<ckks::PublicKey> pk;
  ckks::RelinKey rlk;
  ckks::GaloisKeys gks;  // steps recovered from the keys' Galois elements
};

/// Parses a tenant's uploaded key bundle against @p ctx: public key,
/// relinearization key, and Galois keys whose rotation steps are recovered
/// from their Galois elements (the "ABCK" blobs carry 3^step mod 2N, not
/// the step). Throws InvalidArgument on any malformed, tampered or
/// wrong-kind blob — registration is all-or-nothing.
TenantSession parse_tenant_bundle(
    const std::shared_ptr<const ckks::CkksContext>& ctx,
    const ckks::KeyBundleFrames& bundle);

class SessionRegistry {
 public:
  /// Registers @p session under a fresh id (returned, also written into
  /// the stored session). Ids are never reused.
  u64 add(TenantSession session);

  /// nullptr when unknown — the caller turns that into the typed
  /// kUnknownTenant response.
  std::shared_ptr<const TenantSession> find(u64 tenant) const;

  bool erase(u64 tenant);
  std::size_t size() const;

 private:
  mutable std::shared_mutex m_;
  std::unordered_map<u64, std::shared_ptr<const TenantSession>> tenants_;
  u64 next_id_ = 1;
  obs::Gauge resident_ =
      obs::registry().gauge(obs::catalog::kResidentTenants);
};

}  // namespace abc::server
