#pragma once

/// @file session_registry.hpp
/// Multi-tenant state of the serving daemon: the warm CkksContext cache
/// keyed by parameter set, and the registry mapping tenant ids to their
/// registered (seed-compressed, now expanded) key material.
///
/// Cache semantics the tests pin down:
///  * two tenants with the *same* parameter set share one context — one
///    prime chain, one set of NTT tables, one context-wide stream/secret
///    counter pair — so per-tenant warm cost is keys only;
///  * different parameter sets never share (CkksParams::operator== is the
///    key, seed included);
///  * the shared counters stay monotone across tenants: registration and
///    serving never reserve ids themselves (deserialization regenerates
///    from *stored* stream ids), so client engines on a cached context
///    keep the never-alias guarantee no matter how many tenants join.
///
/// Server contexts deliberately use the process-wide ScalarBackend: the
/// daemon parallelizes across requests (one per core-worker), not inside
/// one, so nested pools never fight for cores.

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "ckks/context.hpp"
#include "ckks/keygen.hpp"
#include "ckks/serialize.hpp"
#include "obs/metrics.hpp"

namespace abc::server {

class ContextCache {
 public:
  /// Returns the cached context for @p params, building it (scalar
  /// backend) on first use. Thread-safe.
  std::shared_ptr<const ckks::CkksContext> get_or_create(
      const ckks::CkksParams& params);

  std::size_t size() const;
  /// Thin forwarders over this cache's session.context_cache_* counter
  /// instances (the registry snapshot aggregates every cache).
  u64 hits() const { return hits_.value(); }
  u64 misses() const { return misses_.value(); }

 private:
  mutable std::mutex m_;
  // Param sets in service are few; a linear scan under the lock beats
  // hashing a 9-field struct.
  std::vector<std::pair<ckks::CkksParams,
                        std::shared_ptr<const ckks::CkksContext>>>
      entries_;
  obs::Counter hits_ =
      obs::registry().counter(obs::catalog::kContextCacheHits);
  obs::Counter misses_ =
      obs::registry().counter(obs::catalog::kContextCacheMisses);
};

/// One registered tenant: *seed-compressed* key records pinned to the
/// (shared) context they were registered under. The daemon no longer
/// materializes expanded key-switch keys per tenant — a request expands
/// the record it needs through the shared bounded KeyCache
/// (src/server/key_cache.hpp), so per-tenant resident state is
/// O(compressed keys), not O(2 L^2 n) words per key. The public key is
/// validated at registration and then *discarded*: no server operation
/// ever encrypts under a tenant's key, so holding it resident would be
/// pure overhead. Immutable after registration; workers read it lock-free
/// through a shared_ptr.
struct TenantSession {
  u64 id = 0;
  std::shared_ptr<const ckks::CkksContext> ctx;
  std::size_t slots = 0;  // step matching modulus (GaloisKeys semantics)
  ckks::CompressedKeySwitchKey rlk;
  std::vector<int> gk_steps;  // gk_steps[i] belongs to gks[i]
  std::vector<ckks::CompressedKeySwitchKey> gks;

  /// The compressed record covering @p step (matched modulo the slot
  /// count, exactly like GaloisKeys::key_for); nullptr when absent.
  const ckks::CompressedKeySwitchKey* galois_record_for(
      int step) const noexcept;

  /// Bytes this session keeps resident for key material (packed payloads
  /// of the relin key + every Galois key).
  std::size_t compressed_key_bytes() const noexcept;

  /// Bytes the same key set held under the old eager scheme (every key
  /// fully expanded) — the baseline of the resident-memory reduction.
  std::size_t expanded_key_bytes() const noexcept;

  /// Eagerly expanded forms, for callers outside the serving hot path
  /// (tests, tooling). The hot path goes through the KeyCache instead.
  ckks::RelinKey expand_rlk() const;
  ckks::GaloisKeys expand_gks() const;
};

/// Parses a tenant's uploaded key bundle against @p ctx: the public key is
/// deserialized (full tamper validation) and dropped; the relinearization
/// key and the Galois keys — rotation steps recovered from their Galois
/// elements (the "ABCK" blobs carry 3^step mod 2N, not the step) — are
/// re-compressed into resident records. Throws InvalidArgument on any
/// malformed, tampered or wrong-kind blob — registration is
/// all-or-nothing.
TenantSession parse_tenant_bundle(
    const std::shared_ptr<const ckks::CkksContext>& ctx,
    const ckks::KeyBundleFrames& bundle);

class SessionRegistry {
 public:
  /// Registers @p session under a fresh id (returned, also written into
  /// the stored session). Ids are never reused.
  u64 add(TenantSession session);

  /// nullptr when unknown — the caller turns that into the typed
  /// kUnknownTenant response.
  std::shared_ptr<const TenantSession> find(u64 tenant) const;

  bool erase(u64 tenant);
  std::size_t size() const;

 private:
  mutable std::shared_mutex m_;
  std::unordered_map<u64, std::shared_ptr<const TenantSession>> tenants_;
  u64 next_id_ = 1;
  obs::Gauge resident_ =
      obs::registry().gauge(obs::catalog::kResidentTenants);
};

}  // namespace abc::server
