#pragma once

/// @file run_queue.hpp
/// Per-core run queue of the serving daemon: one bounded SpscRing plus the
/// minimal external serialization that turns the strict SPSC primitive
/// into what dispatch actually needs —
///
///  * the producer guard serializes the *many* client threads that may
///    submit into one queue (the ring still sees a single logical
///    producer),
///  * the consumer guard serializes the owning worker's pop() against
///    sibling workers' steal() (cross-core migration when the owner backs
///    up).
///
/// Both guards protect O(1) cursor work only — no request executes under
/// a lock — so contention is bounded by the handoff itself, and the data
/// path through the ring keeps its lock-free SPSC shape. steal() is
/// pop() from the same end under the same guard: FIFO order is preserved
/// no matter who drains, which the work-stealing determinism tests rely
/// on (responses must not depend on the steal schedule).

#include <mutex>

#include "obs/metrics.hpp"
#include "server/ring_buffer.hpp"

namespace abc::server {

template <class T>
class RunQueue {
 public:
  explicit RunQueue(std::size_t capacity) : ring_(capacity) {}

  std::size_t capacity() const noexcept { return ring_.capacity(); }

  /// Any thread. False when full — the bounded-queue admission signal.
  bool push(T value) {
    std::lock_guard<std::mutex> lock(producer_m_);
    return ring_.try_push(std::move(value));
  }

  /// Owning worker. False when empty.
  bool pop(T& out) {
    std::lock_guard<std::mutex> lock(consumer_m_);
    return ring_.try_pop(out);
  }

  /// Sibling worker migrating work away from a backed-up owner. Identical
  /// to pop() apart from the steal counter — same end, same FIFO order.
  bool steal(T& out) {
    std::lock_guard<std::mutex> lock(consumer_m_);
    if (!ring_.try_pop(out)) return false;
    steals_.inc();
    return true;
  }

  /// Items drained via steal() over *this queue's* lifetime — a thin
  /// forwarder over the queue's server.steals counter instance (the
  /// registry snapshot aggregates every queue).
  u64 steals() const { return steals_.value(); }

  std::size_t size() const noexcept { return ring_.size(); }

 private:
  SpscRing<T> ring_;
  std::mutex producer_m_;
  mutable std::mutex consumer_m_;
  obs::Counter steals_ =
      obs::registry().counter(obs::catalog::kServerSteals);
};

}  // namespace abc::server
