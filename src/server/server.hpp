#pragma once

/// @file server.hpp
/// engine::ClientSession's counterpart: the long-lived multi-tenant FHE
/// serving daemon. One Server owns
///
///  * a warm ContextCache (parameter set -> shared CkksContext),
///  * a SessionRegistry of tenants and their seed-compressed key records,
///  * a byte-bounded KeyCache regenerating expanded key-switch keys on
///    demand, shared by every tenant and worker (key_cache.hpp),
///  * N per-core worker threads, each draining its own bounded SPSC
///    RunQueue, with cross-core work stealing when a sibling backs up,
///  * admission control that bounds queue depth and per-request bytes
///    *before* any buffer is reserved (the PR 5/PR 7 envelope-hardening
///    philosophy applied to the daemon's front door).
///
/// Request lifecycle (docs/ARCHITECTURE.md has the full diagram):
///
///   submit(frame) ── admission ──> RunQueue[w] ──> worker w (or a
///   stealing sibling) ──> process: registry lookup -> deserialize "ABCB"
///   -> BatchEvaluator op -> reserialize ──> promise -> future
///
/// Every failure is a *typed response*, never a hang or a crashed worker:
/// admission rejections (kQueueFull, kTooLarge) answer immediately
/// without enqueueing; execution faults map exception -> status
/// (InvalidArgument -> kBadRequest, anything else -> kInternal) per
/// request. Failpoints server.accept / server.queue_full /
/// server.dispatch / server.migrate sit on those paths so the fault
/// drills can prove it.
///
/// Determinism: request processing consumes no PRNG stream and each
/// request is self-contained, so a response's bytes depend only on the
/// request and the tenant's registered keys — independent of worker
/// count, dispatch order, and steal schedule. process_serial() runs the
/// exact worker code path on the calling thread; the soak tests assert
/// daemon responses byte-identical to it.

#include <atomic>
#include <cstddef>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "ckks/serialize.hpp"
#include "engine/batch_evaluator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "server/key_cache.hpp"
#include "server/run_queue.hpp"
#include "server/session_registry.hpp"

namespace abc::server {

/// Request op byte (RequestFrame::op). kRegister's op_arg indexes the
/// server's published parameter menu (ServerConfig::param_sets) and its
/// payload is an "ABCP" key bundle; the evaluate ops take an "ABCB"
/// ciphertext batch and kRotate's op_arg is the step. kStats is the admin
/// scrape: tenant-less, empty request payload, response payload = the
/// obs::stats_json document (metrics snapshot + recent/slow traces).
enum class Op : u8 {
  kEcho = 0,      // deserialize + reserialize (round-trip/loopback)
  kRotate = 1,    // rotate every ciphertext left by op_arg slots
  kSquare = 2,    // square + relinearize every ciphertext
  kRegister = 3,  // register a tenant; response payload = 8-byte id
  kStats = 4,     // metrics + trace scrape; response payload = JSON
};

/// Response status byte (ResponseFrame::status). Everything except kOk
/// carries a human-readable ResponseFrame::error.
enum class Status : u8 {
  kOk = 0,
  kBadRequest = 1,     // rejected input (InvalidArgument anywhere)
  kUnknownTenant = 2,  // tenant id not registered
  kUnknownOp = 3,      // op byte outside the enum
  kTooLarge = 4,       // payload exceeds max_request_bytes (admission)
  kQueueFull = 5,      // every run queue full (admission backpressure)
  kInternal = 6,       // invariant/allocation/foreign exception
  kShuttingDown = 7,   // submitted or still queued at stop()
};

const char* status_name(Status s) noexcept;

struct ServerConfig {
  /// Per-core worker threads (>= 1).
  std::size_t workers = 1;
  /// Per-worker run-queue capacity; rounded up to a power of two.
  std::size_t queue_capacity = 64;
  /// Admission bound on RequestFrame::payload bytes.
  std::size_t max_request_bytes = 64u << 20;
  /// Allow idle workers to drain a backed-up sibling's queue.
  bool work_stealing = true;
  /// Packed residue width of response envelopes.
  int bits_per_coeff = 44;
  /// Byte budget of the shared expanded-key cache (all tenants, all
  /// workers). Requests regenerate evicted keys on demand, so this bounds
  /// resident key memory without bounding the serveable tenant count;
  /// undersizing it trades throughput (regeneration churn), never
  /// correctness. Must be >= 1 (the Server constructor throws on 0 — a
  /// daemon that cannot hold a key in flight cannot evaluate).
  std::size_t key_cache_bytes = 256u << 20;
  /// Parameter sets kRegister may target (op_arg = index). Published
  /// explicitly because an "ABCK" blob alone cannot reconstruct a full
  /// parameter set — a real deployment pins what it serves.
  std::vector<ckks::CkksParams> param_sets;
  /// Test knob: route every request to this queue (-1 = round-robin).
  /// Lets tests fill one queue deterministically (backpressure) or force
  /// cross-core migration (an idle sibling must steal to make progress).
  int pin_dispatch_to = -1;
  /// Completed traces retained for the Op::kStats scrape (recent ring and
  /// slow ring each hold this many).
  std::size_t trace_ring_capacity = 256;
  /// End-to-end threshold above which a request counts as slow and its
  /// trace is also filed into the slow ring. 0 disables slow tracking.
  u64 slow_request_ns = 1'000'000'000;  // 1 s
};

/// Per-server instantaneous view, populated from this server's own metric
/// instances (exact per-instance semantics; Server::metrics_snapshot()
/// gives the aggregated process view). Under ABC_NO_METRICS every counter
/// here reads 0 — observability is what the flag compiles out.
struct ServerStats {
  u64 accepted = 0;            // enqueued to some run queue
  u64 rejected_too_large = 0;  // admission: payload bound
  u64 rejected_queue_full = 0; // admission: every eligible queue full
  u64 processed = 0;           // responses produced by workers
  u64 steals = 0;              // requests drained via migration
  u64 drained = 0;             // queued requests resolved by stop()
  u64 slow_requests = 0;       // end-to-end time >= slow_request_ns
  std::vector<u64> per_worker_processed;
};

class Server {
 public:
  explicit Server(ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  const ServerConfig& config() const noexcept { return config_; }

  /// Drains nothing: queued-but-unprocessed requests resolve with
  /// kShuttingDown so no future ever hangs. Idempotent.
  void stop();

  // -- tenants ----------------------------------------------------------------

  /// Warm-context lookup (exposed so loopback clients can share the
  /// daemon's context, and for the cache-keying tests).
  std::shared_ptr<const ckks::CkksContext> context_for(
      const ckks::CkksParams& params) {
    return cache_.get_or_create(params);
  }

  /// In-process registration: the same path Op::kRegister takes, minus
  /// the wire frames. Returns the tenant id.
  u64 register_tenant(const ckks::CkksParams& params,
                      const ckks::KeyBundleFrames& bundle);
  bool unregister_tenant(u64 tenant) {
    // Registry first (new requests stop resolving the tenant), then the
    // cache (its expanded keys stop occupying the shared budget).
    const bool erased = registry_.erase(tenant);
    key_cache_.drop_tenant(tenant);
    return erased;
  }

  // -- requests ---------------------------------------------------------------

  /// Admission + dispatch. Always returns a future that resolves — to the
  /// op's response, or to a typed error (admission rejections resolve
  /// immediately, before any enqueue or payload copy).
  std::future<ckks::ResponseFrame> submit(ckks::RequestFrame request);

  /// submit() + wait: the synchronous convenience the transports use.
  ckks::ResponseFrame call(ckks::RequestFrame request) {
    return submit(std::move(request)).get();
  }

  /// The exact per-request code path the workers run, executed on the
  /// calling thread with no queues involved — the serial reference every
  /// bit-identity soak test compares daemon responses against.
  ckks::ResponseFrame process_serial(const ckks::RequestFrame& request);

  ServerStats stats() const;

  /// The process-wide metrics snapshot (every server, engine, transport
  /// and failpoint aggregate) — what Op::kStats serializes.
  obs::MetricsSnapshot metrics_snapshot() const {
    return obs::registry().snapshot();
  }

  /// This server's completed-request traces (recent + slow rings).
  const obs::TraceRing& traces() const noexcept { return *traces_; }

  /// The shared expanded-key cache (hit/miss/eviction stats for tests,
  /// benches and the capacity-sizing tables in docs/ARCHITECTURE.md).
  KeyCache::Stats key_cache_stats() const { return key_cache_.stats(); }

 private:
  struct Pending;      // queued request + promise
  struct WorkerState;  // per-worker BatchEvaluator cache

  void worker_loop(std::size_t worker);
  void execute(Pending* pending, WorkerState& state, std::size_t worker,
               bool stolen);
  ckks::ResponseFrame process(const ckks::RequestFrame& request,
                              WorkerState& state);
  ckks::ResponseFrame evaluate(const ckks::RequestFrame& request,
                               WorkerState& state);
  ckks::ResponseFrame handle_register(const ckks::RequestFrame& request);
  ckks::ResponseFrame handle_stats(const ckks::RequestFrame& request);

  ServerConfig config_;
  ContextCache cache_;
  SessionRegistry registry_;
  KeyCache key_cache_{config_.key_cache_bytes};

  std::vector<std::unique_ptr<RunQueue<Pending*>>> queues_;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerState>> worker_states_;

  // Sleep/wake plumbing: the queues stay lock-free; these only gate
  // blocking when a worker finds every queue empty.
  struct WorkerSignal;
  std::vector<std::unique_ptr<WorkerSignal>> signals_;

  // submit() holds this shared around its stopping-check + enqueue; stop()
  // holds it exclusive while flipping stopping_. Without it a submit that
  // passed the check could enqueue *after* stop() drained the queues and
  // its future would never resolve.
  mutable std::shared_mutex lifecycle_m_;
  std::atomic<bool> stopping_{false};
  std::atomic<u64> rr_next_{0};  // round-robin dispatch cursor

  // Per-server metric instances on the global registry: inc/record is one
  // relaxed atomic add on the calling thread's shard (no stats mutex on
  // any hot path), Counter::value() keeps the exact per-instance reads
  // stats() promises, and the registry snapshot aggregates all servers.
  obs::Counter accepted_ =
      obs::registry().counter(obs::catalog::kServerAccepted);
  obs::Counter rejected_too_large_ =
      obs::registry().counter(obs::catalog::kServerRejectedTooLarge);
  obs::Counter rejected_queue_full_ =
      obs::registry().counter(obs::catalog::kServerRejectedQueueFull);
  obs::Counter rejected_shutting_down_ =
      obs::registry().counter(obs::catalog::kServerRejectedShuttingDown);
  obs::Counter processed_ =
      obs::registry().counter(obs::catalog::kServerProcessed);
  obs::Counter drained_ =
      obs::registry().counter(obs::catalog::kServerDrained);
  obs::Counter slow_requests_ =
      obs::registry().counter(obs::catalog::kServerSlowRequests);
  obs::Gauge queue_depth_ =
      obs::registry().gauge(obs::catalog::kServerQueueDepth);
  obs::Histogram queue_wait_ns_ =
      obs::registry().histogram(obs::catalog::kServerQueueWaitNs);
  obs::Histogram request_ns_ =
      obs::registry().histogram(obs::catalog::kServerRequestNs);
  // Worker attribution is a plain atomic array (not a catalog metric), so
  // per_worker_processed stays exact even under ABC_NO_METRICS.
  std::unique_ptr<std::atomic<u64>[]> per_worker_processed_;
  std::unique_ptr<obs::TraceRing> traces_;
};

}  // namespace abc::server
