#include "server/key_cache.hpp"

#include <chrono>

#include "common/check.hpp"
#include "common/failpoint.hpp"

namespace abc::server {

KeyCache::KeyCache(std::size_t capacity_bytes) : capacity_(capacity_bytes) {
  ABC_CHECK_ARG(capacity_bytes >= 1,
                "key cache capacity must be at least 1 byte");
}

std::shared_ptr<const ckks::KeySwitchKey> KeyCache::pin_locked(
    const std::shared_ptr<Entry>& entry) {
  ++entry->pins;
  entry->tick = ++tick_;
  // The returned handle aliases the guard: dropping the last copy runs
  // ~PinGuard, which unpins (and lets eviction reconsider the entry).
  auto guard = std::shared_ptr<PinGuard>(new PinGuard{this, entry});
  return std::shared_ptr<const ckks::KeySwitchKey>(std::move(guard),
                                                   entry->key.get());
}

void KeyCache::unpin(const std::shared_ptr<Entry>& entry) {
  std::lock_guard<std::mutex> lock(m_);
  if (entry->pins > 0) --entry->pins;
  // A pinned working set larger than capacity overshoots the budget; the
  // overshoot is reclaimed here, the moment a pin drops.
  if (resident_ > capacity_) evict_locked();
}

void KeyCache::evict_locked() {
  while (resident_ > capacity_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      const Entry& e = *it->second;
      if (e.building || e.pins != 0) continue;  // never evict in-use keys
      if (victim == entries_.end() || e.tick < victim->second->tick) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // only pinned/building left
    resident_ -= victim->second->bytes;
    resident_bytes_.sub(static_cast<i64>(victim->second->bytes));
    ++eviction_count_;
    evictions_.inc();
    entries_.erase(victim);
  }
}

std::shared_ptr<const ckks::KeySwitchKey> KeyCache::get(
    u64 tenant, const ckks::CompressedKeySwitchKey& rec,
    const std::shared_ptr<const ckks::CkksContext>& ctx) {
  ABC_CHECK_ARG(ctx != nullptr, "null context");
  const Key k{tenant, rec.galois_elt, static_cast<u8>(rec.kind)};
  std::unique_lock<std::mutex> lock(m_);
  const auto it = entries_.find(k);
  if (it != entries_.end()) {
    const std::shared_ptr<Entry> entry = it->second;
    if (entry->building) {
      // Another request is regenerating this key right now: join the
      // flight instead of duplicating the work.
      cv_.wait(lock, [&] { return !entry->building; });
      if (entry->failed) std::rethrow_exception(entry->error);
    }
    ++hit_count_;
    hits_.inc();
    return pin_locked(entry);
  }

  // Miss: claim the flight (a placeholder others can wait on), then
  // regenerate with the lock RELEASED — concurrent requests for other
  // keys proceed, and waiters for this one block on the entry, not on
  // the regeneration itself.
  ++miss_count_;
  misses_.inc();
  auto entry = std::make_shared<Entry>();
  entries_.emplace(k, entry);
  lock.unlock();

  std::shared_ptr<const ckks::KeySwitchKey> built;
  try {
    ABC_FAILPOINT(fail::points::kServerKeyRegen);
    const auto t0 = std::chrono::steady_clock::now();
    built = std::make_shared<const ckks::KeySwitchKey>(
        ckks::expand_key_switch_key(ctx, rec));
    const auto t1 = std::chrono::steady_clock::now();
    regen_ns_.record(static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  } catch (...) {
    lock.lock();
    entry->failed = true;
    entry->error = std::current_exception();
    entry->building = false;
    // Never poison the cache: the failed placeholder leaves the index, so
    // an identical retry regenerates from scratch.
    const auto self = entries_.find(k);
    if (self != entries_.end() && self->second == entry) {
      entries_.erase(self);
    }
    cv_.notify_all();
    throw;
  }

  // Actual resident size of the expansion: stored_digits pairs of
  // full-limb polys (the eager 2 L^2 baseline counts the dropped digit).
  const std::size_t bytes = 2 * static_cast<std::size_t>(rec.stored_digits) *
                            rec.limbs * ctx->n() * sizeof(u64);
  lock.lock();
  entry->key = std::move(built);
  entry->bytes = bytes;
  entry->building = false;
  // drop_tenant may have removed the placeholder while we were building;
  // waiters still get the key through their Entry handle, but an unmapped
  // entry must not enter the byte budget.
  const auto self = entries_.find(k);
  const bool mapped = self != entries_.end() && self->second == entry;
  if (mapped) {
    resident_ += bytes;
    resident_bytes_.add(static_cast<i64>(bytes));
  }
  std::shared_ptr<const ckks::KeySwitchKey> handle = pin_locked(entry);
  if (mapped) evict_locked();
  cv_.notify_all();
  return handle;
}

void KeyCache::drop_tenant(u64 tenant) {
  std::lock_guard<std::mutex> lock(m_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.tenant != tenant) {
      ++it;
      continue;
    }
    const Entry& e = *it->second;
    if (!e.building) {
      resident_ -= e.bytes;
      resident_bytes_.sub(static_cast<i64>(e.bytes));
    }
    // Pinned or building entries leave the index now; the Entry (and the
    // key) stay alive through outstanding handles until those drop.
    it = entries_.erase(it);
  }
}

KeyCache::Stats KeyCache::stats() const {
  Stats s;
  std::lock_guard<std::mutex> lock(m_);
  s.hits = hit_count_;
  s.misses = miss_count_;
  s.evictions = eviction_count_;
  s.resident_bytes = resident_;
  s.entries = entries_.size();
  return s;
}

std::shared_ptr<const ckks::KeySwitchKey> TenantKeySource::galois_key(
    int step) const {
  const ckks::CompressedKeySwitchKey* rec = session_->galois_record_for(step);
  if (rec == nullptr) {
    throw InvalidArgument("no Galois key generated for this step");
  }
  return cache_->get(session_->id, *rec, session_->ctx);
}

std::shared_ptr<const ckks::KeySwitchKey> TenantKeySource::relin_key() const {
  ABC_CHECK_ARG(session_->rlk.limbs != 0,
                "tenant session has no relinearization key");
  return cache_->get(session_->id, session_->rlk, session_->ctx);
}

bool TenantKeySource::has_galois_key(int step) const noexcept {
  return session_->galois_record_for(step) != nullptr;
}

}  // namespace abc::server
