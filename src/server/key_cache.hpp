#pragma once

/// @file key_cache.hpp
/// Bounded shared cache of expanded key-switch keys, the serving daemon's
/// counterpart to the seed-compressed records TenantSession keeps
/// resident. A request that needs a key asks the cache; on a miss the
/// cache regenerates the expanded evaluation-domain digits from the
/// tenant's compressed record (expand_key_switch_key — bit-identical to
/// the key registration consumed) and keeps them until capacity pressure
/// evicts them. The daemon's resident key footprint is therefore
/// O(compressed keys) per tenant plus ONE byte-bounded shared slice, no
/// matter how many tenants register.
///
/// Concurrency contract (the pieces tests/test_key_cache.cpp pins down):
///
///  * single-flight regeneration: N requests missing the same (tenant,
///    key) cost exactly one expand_key_switch_key — one thread builds
///    while the rest wait on the entry and share the result;
///  * pinning: get() returns a handle that pins the entry for the
///    handle's lifetime. Eviction skips pinned entries, so a key can
///    never be freed mid-key-switch; a pinned working set larger than
///    capacity overshoots the budget (documented, metered) rather than
///    deadlocking or handing out dangling keys;
///  * LRU eviction: when an insert pushes resident bytes past capacity,
///    unpinned entries are evicted in least-recently-used order until the
///    budget holds (or only pinned entries remain);
///  * failure hygiene: a regeneration throw (e.g. the server.key_regen
///    failpoint) propagates to every waiter of that flight as a typed
///    per-request error and *removes* the building entry — the cache is
///    never poisoned; an identical retry regenerates from scratch and
///    succeeds bit-identically.
///
/// Metrics: keycache.hits / keycache.misses / keycache.evictions
/// (counters; misses == regeneration count), keycache.regen_ns
/// (histogram) and keycache.resident_bytes (gauge).

#include <condition_variable>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "ckks/key_source.hpp"
#include "ckks/serialize.hpp"
#include "obs/metrics.hpp"
#include "server/session_registry.hpp"

namespace abc::server {

class KeyCache {
 public:
  /// @p capacity_bytes bounds the *expanded* bytes kept resident. Zero is
  /// rejected (InvalidArgument): a cache that cannot hold even one key in
  /// flight cannot serve — size the budget to at least one expanded key
  /// (a 1-byte cache still works: every key overshoots while pinned and
  /// is evicted on release, the maximal-thrash configuration the
  /// bit-identity tests run).
  explicit KeyCache(std::size_t capacity_bytes);

  KeyCache(const KeyCache&) = delete;
  KeyCache& operator=(const KeyCache&) = delete;

  /// The expanded key for @p rec, pinned until the returned handle drops.
  /// Hit: bumps recency and returns the resident key. Miss: regenerates
  /// (single-flight) under no lock, publishes, then evicts LRU entries
  /// over budget. Throws whatever regeneration throws (and the
  /// server.key_regen failpoint's injected error) — never caching it.
  std::shared_ptr<const ckks::KeySwitchKey> get(
      u64 tenant, const ckks::CompressedKeySwitchKey& rec,
      const std::shared_ptr<const ckks::CkksContext>& ctx);

  /// Drops every resident entry of @p tenant (unregistration). Entries
  /// pinned by in-flight requests leave the index and the byte budget
  /// immediately; the keys themselves stay alive until their pins drop.
  void drop_tenant(u64 tenant);

  std::size_t capacity_bytes() const noexcept { return capacity_; }

  /// Point-in-time snapshot of this cache's counters. Counted by plain
  /// members under the cache mutex (like Server's per-worker tallies),
  /// so the values stay exact even under ABC_NO_METRICS; the keycache.*
  /// registry metrics mirror them for the scrape. misses == number of
  /// regenerations ever run (the single-flight tests assert on this).
  struct Stats {
    u64 hits = 0;
    u64 misses = 0;
    u64 evictions = 0;
    std::size_t resident_bytes = 0;
    std::size_t entries = 0;
  };
  Stats stats() const;

 private:
  struct Key {
    u64 tenant = 0;
    u32 galois_elt = 0;
    u8 kind = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      u64 h = k.tenant * 0x9e3779b97f4a7c15ull;
      h ^= (static_cast<u64>(k.galois_elt) << 8 | k.kind) +
           0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };

  struct Entry {
    std::shared_ptr<const ckks::KeySwitchKey> key;  // null while building
    std::size_t bytes = 0;
    std::size_t pins = 0;
    bool building = true;
    bool failed = false;
    std::exception_ptr error;
    u64 tick = 0;  // recency stamp for LRU
  };

  /// Pin holder: the shared_ptr<const KeySwitchKey> get() returns aliases
  /// one of these, so releasing the last copy unpins the entry (and lets
  /// eviction reconsider it).
  struct PinGuard {
    KeyCache* cache;
    std::shared_ptr<Entry> entry;
    ~PinGuard() { cache->unpin(entry); }
  };

  std::shared_ptr<const ckks::KeySwitchKey> pin_locked(
      const std::shared_ptr<Entry>& entry);
  void unpin(const std::shared_ptr<Entry>& entry);
  void evict_locked();

  const std::size_t capacity_;
  mutable std::mutex m_;
  std::condition_variable cv_;
  std::unordered_map<Key, std::shared_ptr<Entry>, KeyHash> entries_;
  std::size_t resident_ = 0;
  u64 tick_ = 0;
  // Exact counts under m_ (Stats stays meaningful under ABC_NO_METRICS).
  u64 hit_count_ = 0;
  u64 miss_count_ = 0;
  u64 eviction_count_ = 0;

  obs::Counter hits_ = obs::registry().counter(obs::catalog::kKeyCacheHits);
  obs::Counter misses_ =
      obs::registry().counter(obs::catalog::kKeyCacheMisses);
  obs::Counter evictions_ =
      obs::registry().counter(obs::catalog::kKeyCacheEvictions);
  obs::Histogram regen_ns_ =
      obs::registry().histogram(obs::catalog::kKeyCacheRegenNs);
  obs::Gauge resident_bytes_ =
      obs::registry().gauge(obs::catalog::kKeyCacheResidentBytes);
};

/// ckks::KeySource over one tenant's compressed records + the shared
/// cache: the adapter the daemon's evaluate path hands to BatchEvaluator.
/// Non-owning — the session and cache must outlive the source and every
/// handle it returns (per-request stack lifetime on the serving path).
class TenantKeySource final : public ckks::KeySource {
 public:
  TenantKeySource(KeyCache& cache, const TenantSession& session)
      : cache_(&cache), session_(&session) {}

  std::shared_ptr<const ckks::KeySwitchKey> galois_key(
      int step) const override;
  std::shared_ptr<const ckks::KeySwitchKey> relin_key() const override;
  bool has_galois_key(int step) const noexcept override;

 private:
  KeyCache* cache_;
  const TenantSession* session_;
};

}  // namespace abc::server
