#pragma once

/// @file arch_config.hpp
/// ABC-FHE architecture parameters (paper Sec. III / V-A) and derived
/// quantities used by the cycle-level simulator and the area/power model.
///
/// Defaults reproduce the evaluated configuration: 600 MHz, two
/// reconfigurable streaming cores (RSC), four pipelined NTT lanes (PNL)
/// per RSC with a P=8 multi-path delay commutator backbone, 44-bit modular
/// / 55-bit floating-point reconfigurable datapath, LPDDR5 at 68.4 GB/s,
/// and on-chip generation of twiddles (unified OTF TF Gen) and random
/// values (PRNG).

#include <cstddef>

#include "common/check.hpp"
#include "common/types.hpp"

namespace abc::core {

/// External memory model (client-side LPDDR5 by default).
struct DramSpec {
  double bandwidth_gbps = 68.4;  // GB/s
  double efficiency = 1.0;       // achievable fraction of peak

  double bytes_per_second() const noexcept {
    return bandwidth_gbps * 1e9 * efficiency;
  }
};

/// Where operand streams come from (the Fig. 6b ablation).
struct OperandPlacement {
  bool twiddles_on_chip = true;  // unified OTF TF Gen
  bool randomness_on_chip = true;  // PRNG: masks, errors, keys
};

/// Encryption dataflow profile (see ckks/encryptor.hpp).
struct EncryptProfile {
  int ntt_passes_per_limb = 1;   // symmetric seeded profile
  int pk_streams = 0;            // public-key polynomials fetched per limb
  bool ship_c1 = false;          // seed-compressed c1 is not written out

  static EncryptProfile symmetric_seeded() { return {1, 0, false}; }
  static EncryptProfile public_key() { return {3, 2, true}; }
};

struct ArchConfig {
  // Clocking and structure.
  double clock_hz = 600e6;
  int num_rsc = 2;
  int pnl_per_rsc = 4;
  int lanes = 8;  // P: parallel paths per PNL (MDC backbone)

  // Datapath widths.
  int int_bits = 44;   // modular datapath (packed coefficient width)
  int fp_bits = 55;    // custom FP55
  int mse_width = 32;  // MSE element-wise ops per cycle per RSC

  // Memory system.
  DramSpec dram;
  std::size_t global_scratch_bytes = 880 * 1024;
  std::size_t local_scratch_bytes = 440 * 1024;
  std::size_t tf_seed_bytes = 27 * 1024;
  std::size_t instr_bytes = 1024;

  // Data sourcing (Fig. 6b: Base fetches everything from DRAM).
  OperandPlacement placement;

  // Workload shape.
  int log_n = 16;
  std::size_t fresh_limbs = 24;     // client -> server ciphertext level
  std::size_t returned_limbs = 2;   // server -> client ciphertext level
  EncryptProfile enc_profile = EncryptProfile::symmetric_seeded();

  // ---- derived quantities ------------------------------------------------

  std::size_t n() const noexcept { return std::size_t{1} << log_n; }

  double cycle_seconds() const noexcept { return 1.0 / clock_hz; }

  /// DRAM bytes deliverable per clock cycle (shared by all streams).
  double dram_bytes_per_cycle() const noexcept {
    return dram.bytes_per_second() / clock_hz;
  }

  /// Packed bytes per modular coefficient / per complex FP word.
  double int_coeff_bytes() const noexcept { return int_bits / 8.0; }
  double fp_word_bytes() const noexcept { return 2.0 * fp_bits / 8.0; }

  /// Twiddle-stream demand of one running transform pass, bytes/cycle:
  /// every one of the (P/2) * log2(N) stage multipliers consumes one
  /// twiddle per cycle when twiddles are not generated on chip.
  double twiddle_bytes_per_cycle(bool fft) const noexcept {
    const double values =
        (static_cast<double>(lanes) / 2.0) * static_cast<double>(log_n);
    return values * (fft ? fp_word_bytes() : int_coeff_bytes());
  }

  void validate() const {
    ABC_CHECK_ARG(clock_hz > 0, "clock must be positive");
    ABC_CHECK_ARG(num_rsc >= 1 && num_rsc <= 16, "num_rsc out of range");
    ABC_CHECK_ARG(pnl_per_rsc >= 1 && pnl_per_rsc <= 64,
                  "pnl_per_rsc out of range");
    ABC_CHECK_ARG(lanes >= 1 && lanes <= 1024 && (lanes & (lanes - 1)) == 0,
                  "lanes must be a power of two");
    ABC_CHECK_ARG(log_n >= 4 && log_n <= 17, "log_n out of range");
    ABC_CHECK_ARG(fresh_limbs >= 1 && returned_limbs >= 1,
                  "limb counts must be positive");
    ABC_CHECK_ARG(mse_width >= 1, "mse_width must be positive");
    ABC_CHECK_ARG(enc_profile.ntt_passes_per_limb >= 1,
                  "need at least one NTT pass per limb");
  }

  /// The paper's evaluated configuration.
  static ArchConfig paper_default() { return ArchConfig{}; }
};

}  // namespace abc::core
