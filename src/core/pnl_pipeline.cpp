#include "core/pnl_pipeline.hpp"

namespace abc::core {
namespace {

/// Shared driver: feeds the natural-order input through the stage chain,
/// computing each stage's window twiddle from its own push counter. The
/// outputs of stage s form the CT intermediate array in natural order, so
/// the final stream equals the (bit-reversed-order) result array of the
/// reference in-place transform.
template <class Elem, class Arith, class TwiddleAt>
PipelineRun run_pipeline(int log_n, std::span<const Elem> input,
                         std::span<Elem> output, Arith arith,
                         TwiddleAt&& twiddle_at) {
  const std::size_t n = std::size_t{1} << log_n;
  ABC_CHECK_ARG(input.size() == n && output.size() == n, "size mismatch");

  std::vector<SdfStage<Elem, Arith>> stages;
  std::vector<std::size_t> pushes(static_cast<std::size_t>(log_n), 0);
  PipelineRun run;
  for (int s = 0; s < log_n; ++s) {
    const std::size_t t = n >> (s + 1);
    stages.emplace_back(t, arith);
    run.fifo_words += t;
  }

  std::size_t produced = 0;
  std::size_t cycle = 0;
  const Elem bubble = input[0];
  while (produced < n) {
    // Feed the first stage (bubbles after the real input drains).
    std::optional<Elem> token =
        cycle < n ? std::optional<Elem>(input[cycle]) : bubble;
    for (int s = 0; s < log_n && token.has_value(); ++s) {
      const std::size_t t = n >> (s + 1);
      const std::size_t m = std::size_t{1} << s;
      const std::size_t window = pushes[static_cast<std::size_t>(s)] / (2 * t);
      ++pushes[static_cast<std::size_t>(s)];
      const Elem w = twiddle_at(m, window);
      token = stages[static_cast<std::size_t>(s)].push(*token, w);
    }
    if (token.has_value()) {
      if (produced == 0) run.fill_latency = cycle;
      output[produced++] = *token;
    }
    ++cycle;
  }
  run.cycles = cycle;
  return run;
}

}  // namespace

PipelineRun streaming_ntt(const xf::NttTables& tables,
                          std::span<const u64> input, std::span<u64> output) {
  ModularArith arith{tables.modulus()};
  return run_pipeline<u64>(
      tables.log_n(), input, output, arith,
      [&](std::size_t m, std::size_t window) {
        // Window i of the stage with m blocks uses psi^brv(m + i); clamp
        // into range for the bubble region after the real data drains.
        const std::size_t i = std::min(window, m - 1);
        return tables.psi_rev(m + i);
      });
}

PipelineRun streaming_dwt(const xf::CkksDwtPlan& plan,
                          std::span<const xf::Cx<double>> input,
                          std::span<xf::Cx<double>> output) {
  return run_pipeline<xf::Cx<double>>(
      plan.log_n(), input, output, ComplexArith{},
      [&](std::size_t m, std::size_t window) {
        const std::size_t i = std::min(window, m - 1);
        return plan.psi_rev(m + i);
      });
}

}  // namespace abc::core
