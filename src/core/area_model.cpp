#include "core/area_model.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "transform/twiddle.hpp"

namespace abc::core {
namespace {

/// Reference sparse NTT prime for multiplier sizing.
constexpr u64 kRefPrime = (u64{1} << 36) - (u64{1} << 18) + 1;

double nttf_mult_area(const ArchConfig& cfg, const TechConstants& tc) {
  rns::NttFriendlyMontgomeryHwModMul mm(kRefPrime, cfg.int_bits);
  return modmul_area_um2(mm.cost(cfg.int_bits), tc);
}

}  // namespace

double AreaPowerBreakdown::total_area_mm2() const {
  double a = 0;
  for (const auto& e : entries) {
    if (e.counted_in_total) a += e.area_mm2;
  }
  return a;
}

double AreaPowerBreakdown::total_power_w() const {
  double p = 0;
  for (const auto& e : entries) {
    if (e.counted_in_total) p += e.power_w;
  }
  return p;
}

const AreaPowerEntry& AreaPowerBreakdown::find(const std::string& name) const {
  for (const auto& e : entries) {
    if (e.name == name) return e;
  }
  ABC_CHECK_ARG(false, "no breakdown entry named " + name);
  // Unreachable.
  static AreaPowerEntry dummy;
  return dummy;
}

double pnl_area_mm2(const ArchConfig& cfg, const TechConstants& tc) {
  // Multipliers: the merged-twiddle minimum P/2 * log2(N) instances, each
  // an NTT-friendly Montgomery multiplier widened for FP55 mantissa mode
  // (the reconfigurability of Sec. IV-A).
  const double mult_count =
      (static_cast<double>(cfg.lanes) / 2.0) * cfg.log_n;
  const double mult_um2 =
      mult_count * nttf_mult_area(cfg, tc) * tc.fp_reconfig_overhead;

  // Butterfly add/sub pairs at FP width.
  const double adder_um2 = mult_count * 2.0 * cfg.fp_bits *
                           tc.shift_add_um2_per_bit * tc.fp_reconfig_overhead;

  // MDC commutator FIFOs: ~N words total, double-buffered (paper Sec. V-A),
  // at the wider FP55 word.
  const double fifo_bits = 2.0 * static_cast<double>(cfg.n()) * cfg.fp_bits;
  const double fifo_um2 = fifo_bits * tc.sram_sp_um2_per_bit;

  return (mult_um2 + adder_um2 + fifo_um2) * tc.block_misc_overhead / 1e6;
}

double tf_gen_area_mm2(const ArchConfig& cfg, const TechConstants& tc) {
  // One generator multiplier per pipeline stage column, shared across the
  // PNLs of an RSC (time-multiplexed seed * step chains).
  const double mult_count =
      (static_cast<double>(cfg.lanes) / 2.0) * cfg.log_n;
  return mult_count * nttf_mult_area(cfg, tc) * tc.block_misc_overhead / 1e6;
}

double mse_area_mm2(const ArchConfig& cfg, const TechConstants& tc) {
  // mse_width parallel modular multiply-accumulate lanes plus the CRT /
  // RNS-expansion datapath (reduction + correction per lane).
  rns::NttFriendlyMontgomeryHwModMul mm(kRefPrime, cfg.int_bits);
  const double lane_um2 =
      modmul_area_um2(mm.cost(cfg.int_bits), tc) +
      2.0 * 2.0 * cfg.int_bits * tc.shift_add_um2_per_bit +
      2.0 * cfg.int_bits * tc.reg_um2_per_bit;
  return cfg.mse_width * lane_um2 * tc.block_misc_overhead / 1e6;
}

AreaPowerBreakdown abc_fhe_breakdown(const ArchConfig& cfg,
                                     const TechConstants& tc) {
  AreaPowerBreakdown bd;
  auto logic = [&](const std::string& name, double area_mm2, double density,
                   bool counted = false) {
    bd.entries.push_back({name, area_mm2, area_mm2 * density, counted});
  };

  const double pnl = pnl_area_mm2(cfg, tc);
  logic("4x PNL", pnl * cfg.pnl_per_rsc, tc.logic_power_density);
  logic("Unified OTF TF Gen", tf_gen_area_mm2(cfg, tc),
        tc.logic_power_density);

  xf::TwiddleSeedMemoryModel seeds{.log_n = cfg.log_n,
                                   .num_primes =
                                       static_cast<int>(cfg.fresh_limbs),
                                   .int_bits = cfg.int_bits,
                                   .fp_bits = cfg.fp_bits};
  const double seed_mm2 =
      seeds.total_seed_bytes() * 8.0 * tc.sram_seed_um2_per_bit / 1e6;
  logic("Twiddle Factor Seed Memory", seed_mm2, tc.sram_power_density);

  logic("MSE", mse_area_mm2(cfg, tc), tc.mse_power_density);

  // ChaCha20-class PRNG core (constant-size block cipher datapath).
  logic("PRNG", 0.069, tc.prng_power_density);

  const double local_mm2 = static_cast<double>(cfg.local_scratch_bytes) * 8.0 *
                           tc.sram_sp_um2_per_bit / 1e6;
  logic("Local Scratchpad", local_mm2, tc.sram_power_density);

  // Everything above composes one RSC.
  double rsc_area = 0, rsc_power = 0;
  for (const auto& e : bd.entries) {
    rsc_area += e.area_mm2;
    rsc_power += e.power_w;
  }
  bd.entries.push_back({"RSC", rsc_area, rsc_power, false});
  bd.entries.push_back({std::to_string(cfg.num_rsc) + "x RSC",
                        rsc_area * cfg.num_rsc, rsc_power * cfg.num_rsc,
                        true});

  const double global_mm2 = static_cast<double>(cfg.global_scratch_bytes) *
                            8.0 * tc.sram_db_um2_per_bit / 1e6;
  logic("Global Scratchpad", global_mm2, tc.sram_power_density,
        /*counted=*/true);
  logic("Top CTRL, DMA, Etc.", 0.060, 0.85, /*counted=*/true);

  return bd;
}

}  // namespace abc::core
