#include "core/tech_scale.hpp"

namespace abc::core {

double area_scale_vs_28nm(TechNode node) {
  // Realistic (DeepScaleTool-style) density gains; ideal shrink would be
  // (28/node)^2, actual gains fall short at FinFET nodes for SRAM-heavy
  // designs like ABC-FHE.
  switch (node) {
    case TechNode::k28: return 1.0;
    case TechNode::k22: return 1.6;
    case TechNode::k16: return 2.9;
    case TechNode::k12: return 4.3;
    case TechNode::k10: return 5.7;
    case TechNode::k7: return 9.7;
    case TechNode::k5: return 15.3;
  }
  ABC_CHECK_ARG(false, "unknown node");
  return 1.0;
}

double power_scale_vs_28nm(TechNode node) {
  switch (node) {
    case TechNode::k28: return 1.0;
    case TechNode::k22: return 1.25;
    case TechNode::k16: return 1.7;
    case TechNode::k12: return 2.0;
    case TechNode::k10: return 2.3;
    case TechNode::k7: return 2.75;
    case TechNode::k5: return 3.4;
  }
  ABC_CHECK_ARG(false, "unknown node");
  return 1.0;
}

double scale_area_mm2(double area_mm2_at_28nm, TechNode node) {
  return area_mm2_at_28nm / area_scale_vs_28nm(node);
}

double scale_power_w(double power_w_at_28nm, TechNode node) {
  return power_w_at_28nm / power_scale_vs_28nm(node);
}

}  // namespace abc::core
