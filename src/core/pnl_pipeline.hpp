#pragma once

/// @file pnl_pipeline.hpp
/// Functional model of one pipelined NTT lane: a chain of radix-2
/// single-path delay-feedback (SDF) stages, the canonical streaming
/// realization of the Cooley-Tukey dataflow (one sample in / one sample
/// out per cycle, FIFO of depth t per stage). The paper's P=8 MDC
/// backbone replicates this structure across P interleaved paths; the
/// per-stage twiddle schedule, FIFO sizing and fill latency are identical,
/// so this model validates *functionally* that the streaming hardware
/// computes exactly the transforms of transform/ntt.hpp and
/// transform/dwt.hpp.
///
/// The pipeline is templated on the element type and butterfly policy —
/// instantiating it for modular words and for complex floats from the
/// same code path demonstrates the NTT<->FFT reconfigurability of the RFE
/// at the dataflow level (paper Sec. III / IV-A).

#include <optional>
#include <vector>

#include "common/bitops.hpp"
#include "common/check.hpp"
#include "rns/modulus.hpp"
#include "transform/dwt.hpp"
#include "transform/ntt.hpp"

namespace abc::core {

/// One radix-2 SDF stage with half-window (FIFO depth) t. Protocol: call
/// push() once per cycle with the next input sample; an output sample is
/// produced every cycle once the stage has filled (after t cycles).
///
/// Phase A (first t cycles of each 2t-window): incoming sample is stored;
/// the FIFO emits the deferred v-outputs of the previous window.
/// Phase B (next t cycles): the stored partner a meets incoming b:
///   u = a + w*b (emitted now),  v = a - w*b (deferred t cycles),
/// with w the window's twiddle — exactly the in-place CT butterfly of the
/// reference transform.
template <class Elem, class Arith>
class SdfStage {
 public:
  SdfStage(std::size_t t, Arith arith)
      : t_(t), fifo_(t), arith_(std::move(arith)) {
    ABC_CHECK_ARG(t >= 1, "stage FIFO depth must be >= 1");
  }

  std::size_t fifo_depth() const noexcept { return t_; }

  /// Feeds one sample with the twiddle of its window; returns the output
  /// sample once the stage has filled.
  std::optional<Elem> push(const Elem& x, const Elem& twiddle) {
    const std::size_t slot = cycle_ % t_;
    const bool phase_b = (cycle_ / t_) % 2 == 1;
    std::optional<Elem> out;
    if (cycle_ >= t_) {
      if (phase_b) {
        // Partner arrived: butterfly with the stored sample.
        const Elem a = fifo_[slot];
        const Elem wb = arith_.mul(x, twiddle);
        out = arith_.add(a, wb);        // u leaves immediately
        fifo_[slot] = arith_.sub(a, wb);  // v deferred t cycles
      } else {
        out = fifo_[slot];  // deferred v from the previous window
        fifo_[slot] = x;    // store the new a
      }
    } else {
      fifo_[slot] = x;  // initial fill
    }
    ++cycle_;
    return out;
  }

 private:
  std::size_t t_;
  std::vector<Elem> fifo_;
  Arith arith_;
  std::size_t cycle_ = 0;
};

/// Arithmetic policies: the "reconfigurable" part of the RFE.
struct ModularArith {
  rns::Modulus q;
  u64 add(u64 a, u64 b) const { return q.add(a, b); }
  u64 sub(u64 a, u64 b) const { return q.sub(a, b); }
  u64 mul(u64 a, u64 b) const { return q.mul(a, b); }
};

struct ComplexArith {
  xf::Cx<double> add(const xf::Cx<double>& a, const xf::Cx<double>& b) const {
    return a + b;
  }
  xf::Cx<double> sub(const xf::Cx<double>& a, const xf::Cx<double>& b) const {
    return a - b;
  }
  xf::Cx<double> mul(const xf::Cx<double>& a, const xf::Cx<double>& b) const {
    return a * b;
  }
};

/// Streaming pipeline report.
struct PipelineRun {
  std::size_t cycles = 0;         // cycles until the last output emerged
  std::size_t fill_latency = 0;   // cycles before the first output
  std::size_t fifo_words = 0;     // total FIFO storage across stages
};

/// Runs a full streaming negacyclic NTT through log2(N) SDF stages fed in
/// natural order; output is produced in natural order of the bit-reversed-
/// output transform (i.e. identical to NttTables::forward).
PipelineRun streaming_ntt(const xf::NttTables& tables,
                          std::span<const u64> input, std::span<u64> output);

/// Same pipeline in FFT mode (complex butterflies, DWT twiddles),
/// identical stage/FIFO structure — the RFE reconfigurability.
PipelineRun streaming_dwt(const xf::CkksDwtPlan& plan,
                          std::span<const xf::Cx<double>> input,
                          std::span<xf::Cx<double>> output);

}  // namespace abc::core
