#pragma once

/// @file tech_scale.hpp
/// Technology-node scaling in the style of DeepScaleTool [31]: published
/// logic-density and power ratios between planar/FinFET nodes, used for
/// the paper's "0.9 mm^2 / 2.1 W at 7 nm" projection of ABC-FHE.

#include "common/check.hpp"

namespace abc::core {

/// Known process nodes (feature size in nm).
enum class TechNode : int {
  k28 = 28,
  k22 = 22,
  k16 = 16,
  k12 = 12,
  k10 = 10,
  k7 = 7,
  k5 = 5,
};

/// Area density improvement relative to 28 nm (x smaller area).
double area_scale_vs_28nm(TechNode node);

/// Power reduction relative to 28 nm at iso-frequency (x lower power).
double power_scale_vs_28nm(TechNode node);

/// Scales a 28 nm figure to the given node.
double scale_area_mm2(double area_mm2_at_28nm, TechNode node);
double scale_power_w(double power_w_at_28nm, TechNode node);

}  // namespace abc::core
