#pragma once

/// @file simulator.hpp
/// Top-level facade of the ABC-FHE cycle-level simulator: runs client-side
/// jobs through the streaming pass model and reports latency, throughput
/// and memory traffic — the quantities behind the paper's Fig. 5 and
/// Fig. 6(b).

#include "core/arch_config.hpp"
#include "core/scheduler.hpp"
#include "core/stream_sim.hpp"

namespace abc::core {

/// Latency/throughput summary for a batch run.
struct AcceleratorReport {
  SimReport sim;
  int jobs = 0;
  double latency_ms = 0;         // makespan of the batch
  double per_job_ms = 0;         // makespan / jobs
  double throughput_per_s = 0;   // jobs per second at this batch size
  double dram_read_mb = 0;
  double dram_write_mb = 0;
  double pnl_utilization = 0;    // busy-cycles / (slots * makespan)
  double mse_utilization = 0;
};

class AbcFheSimulator {
 public:
  explicit AbcFheSimulator(const ArchConfig& config);

  const ArchConfig& config() const noexcept { return cfg_; }

  /// Single-job latency (one RSC active) or batched throughput runs.
  AcceleratorReport run(OperatingMode mode, int jobs) const;

  /// Convenience accessors for the common measurements.
  double encode_encrypt_ms() const {
    return run(OperatingMode::kDualEncrypt, 1).latency_ms;
  }
  double decode_decrypt_ms() const {
    return run(OperatingMode::kDualDecrypt, 1).latency_ms;
  }
  /// Sustained ciphertexts/second in dual-encrypt mode (paper Fig. 5b).
  double encode_encrypt_throughput() const {
    // Large enough batch to amortize ramp-up.
    const int batch = 8 * cfg_.num_rsc;
    return run(OperatingMode::kDualEncrypt, batch).throughput_per_s;
  }

 private:
  ArchConfig cfg_;
  JobScheduler scheduler_;
  StreamSimulator engine_;
};

}  // namespace abc::core
