#pragma once

/// @file stream_sim.hpp
/// Fluid discrete-event simulator for streaming dataflows.
///
/// The workload is a DAG of Pass objects. Each pass streams `elems`
/// elements through a hardware unit at up to `unit_rate` elements/cycle
/// after a one-time `fill_latency` (pipeline fill). Passes bind exclusive
/// unit slots (a PNL, the MSE of an RSC, a DMA port) and may additionally
/// consume DRAM bandwidth per element (operand fetch, writeback). DRAM is
/// a shared fluid resource: when the aggregate demand of all running
/// passes exceeds the per-cycle budget, every DRAM-consuming pass is
/// throttled by the common factor budget/demand — modelling fair
/// round-robin arbitration. This is exactly the mechanism by which the
/// paper's ABC-FHE_Base configuration (all operands fetched from DRAM)
/// collapses: concurrent twiddle/mask/key streams oversubscribe LPDDR5
/// (Fig. 6b), while the streaming design with on-chip generators keeps
/// DRAM for message/ciphertext I/O only.
///
/// Events advance to the earliest pass completion; between events rates
/// are constant, so progress integrates exactly (fluid approximation of a
/// cycle-by-cycle simulation; accurate whenever rate changes only at pass
/// boundaries, which holds by construction).

#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace abc::core {

/// Exclusive execution resources. Pool sizes come from the ArchConfig
/// (e.g. kPnl pool size = num_rsc * pnl_per_rsc).
enum class UnitKind : int {
  kPnl = 0,     // pipelined NTT lane (transform passes)
  kMse,         // modular streaming engine (element-wise passes)
  kDmaIn,       // host -> scratchpad port
  kDmaOut,      // scratchpad -> DRAM port
  kUnitCount,
};

struct Pass {
  std::string label;
  UnitKind unit = UnitKind::kMse;
  int rsc = 0;             // which core's pool (DMA pools are global: 0)
  double elems = 0;        // elements to stream
  double unit_rate = 1;    // elements per cycle, unthrottled
  double fill_latency = 0; // cycles before streaming starts
  double dram_read_bytes_per_elem = 0;
  double dram_write_bytes_per_elem = 0;
  std::vector<std::size_t> deps;  // indices into the pass vector
};

/// Per-pass and aggregate results.
struct PassStats {
  double start_cycle = 0;
  double end_cycle = 0;
};

struct SimReport {
  double total_cycles = 0;
  double dram_read_bytes = 0;
  double dram_write_bytes = 0;
  /// Cycle-weighted average of min(1, budget/demand): 1.0 = never
  /// bandwidth-throttled.
  double dram_throughput_factor = 1.0;
  /// Busy cycles per unit kind (summed over pool slots).
  std::vector<double> unit_busy_cycles;
  std::vector<PassStats> passes;

  double seconds(double clock_hz) const { return total_cycles / clock_hz; }
  double milliseconds(double clock_hz) const {
    return seconds(clock_hz) * 1e3;
  }
};

/// Execution engine. Pool sizes are per (kind, rsc) pair.
class StreamSimulator {
 public:
  /// @p pool_size[kind] slots per RSC for kPnl/kMse; global for DMA kinds.
  /// @p num_rsc cores; @p dram_bytes_per_cycle shared budget.
  StreamSimulator(int num_rsc, int pnl_per_rsc, int dma_ports,
                  double dram_bytes_per_cycle);

  /// Runs the DAG to completion; throws on cyclic or malformed graphs.
  SimReport run(const std::vector<Pass>& passes) const;

 private:
  int num_rsc_;
  int pnl_per_rsc_;
  int dma_ports_;
  double dram_budget_;
};

}  // namespace abc::core
