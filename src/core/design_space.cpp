#include "core/design_space.hpp"

#include <numeric>

#include "common/check.hpp"

namespace abc::core {
namespace {

/// Per-radix overhead weights: extra multiplier fraction (relative to the
/// merged minimum) contributed by stages implemented at each radix.
/// Calibrated to the paper's NTT reductions: radix-2 +42.2% (-29.7% the
/// other way), radix-2^2 +28.7% (-22.3%). FFT overheads are smaller since
/// trivial rotations (+/-1, +/-j) cost nothing in complex arithmetic.
double stage_overhead(TransformKind kind, int log_radix) {
  if (kind == TransformKind::kNtt) {
    switch (log_radix) {
      case 1: return 0.422;
      case 2: return 0.287;
      case 3: return 0.335;
      default: return 0.45;
    }
  }
  switch (log_radix) {
    case 1: return 0.331;
    case 2: return 0.146;
    case 3: return 0.221;
    default: return 0.36;
  }
}

}  // namespace

int RadixConfig::total_stages() const {
  return std::accumulate(group_log_radix.begin(), group_log_radix.end(), 0);
}

RadixConfig radix2_config(int log_n) {
  return {std::vector<int>(static_cast<std::size_t>(log_n), 1), false};
}

RadixConfig radix4_config(int log_n) {
  RadixConfig c;
  int left = log_n;
  while (left >= 2) {
    c.group_log_radix.push_back(2);
    left -= 2;
  }
  if (left > 0) c.group_log_radix.push_back(left);
  return c;
}

RadixConfig radix8_config(int log_n) {
  RadixConfig c;
  int left = log_n;
  while (left >= 3) {
    c.group_log_radix.push_back(3);
    left -= 3;
  }
  if (left > 0) c.group_log_radix.push_back(left);
  return c;
}

RadixConfig radix2n_config(int log_n) {
  // The paper's merged design: mixed radix chosen so the nega-cyclic
  // twiddle pattern stays consistent; modelled as the zero-overhead point.
  RadixConfig c = radix4_config(log_n);
  c.merged_negacyclic = true;
  return c;
}

double multiplier_instances(const RadixConfig& config, TransformKind kind,
                            int log_n, int lanes) {
  ABC_CHECK_ARG(config.total_stages() == log_n,
                "radix config does not cover log2(N) stages");
  ABC_CHECK_ARG(lanes >= 2, "need at least two lanes");
  const double base = (static_cast<double>(lanes) / 2.0) * log_n;
  if (config.merged_negacyclic) return base;
  double overhead = 0.0;
  for (int k : config.group_log_radix) {
    overhead += stage_overhead(kind, k) * static_cast<double>(k) / log_n;
  }
  return base * (1.0 + overhead);
}

std::vector<RadixConfig> enumerate_radix_configs(int log_n, int max_part) {
  ABC_CHECK_ARG(log_n >= 1 && log_n <= 24, "log_n out of range");
  ABC_CHECK_ARG(max_part >= 1 && max_part <= 4, "max_part out of range");
  std::vector<RadixConfig> out;
  std::vector<int> current;
  // Depth-first enumeration of compositions.
  auto recurse = [&](auto&& self, int left) -> void {
    if (left == 0) {
      out.push_back({current, false});
      return;
    }
    for (int part = 1; part <= std::min(max_part, left); ++part) {
      current.push_back(part);
      self(self, left - part);
      current.pop_back();
    }
  };
  recurse(recurse, log_n);
  return out;
}

RfeAreaLadder rfe_area_ladder(const ArchConfig& cfg, const TechConstants& tc) {
  constexpr u64 kRefPrime = (u64{1} << 36) - (u64{1} << 18) + 1;
  rns::MontgomeryHwModMul vanilla(kRefPrime, cfg.int_bits);
  rns::NttFriendlyMontgomeryHwModMul friendly(kRefPrime, cfg.int_bits);
  const double vanilla_um2 = modmul_area_um2(vanilla.cost(cfg.int_bits), tc);
  const double friendly_um2 = modmul_area_um2(friendly.cost(cfg.int_bits), tc);

  const double fifo_int_mm2 = 2.0 * static_cast<double>(cfg.n()) *
                              cfg.int_bits * tc.sram_sp_um2_per_bit / 1e6;
  const double fifo_fp_mm2 = 2.0 * static_cast<double>(cfg.n()) * cfg.fp_bits *
                             tc.sram_sp_um2_per_bit / 1e6;

  const double mults_r2 = multiplier_instances(radix2_config(cfg.log_n),
                                               TransformKind::kNtt, cfg.log_n,
                                               cfg.lanes);
  const double mults_r2n = multiplier_instances(radix2n_config(cfg.log_n),
                                                TransformKind::kNtt, cfg.log_n,
                                                cfg.lanes);

  // Complex FP multiplier = four real multipliers of the mantissa width
  // (paper eq. 12); modelled as 4x the friendly multiplier footprint.
  const double fp_mult_um2 = 4.0 * friendly_um2;

  auto engine_mm2 = [&](double ntt_mults, double ntt_mult_um2,
                        bool separate_fft) {
    const double pnl_count = cfg.pnl_per_rsc;
    const double ntt_engine =
        (ntt_mults * ntt_mult_um2 / 1e6 + fifo_int_mm2) * pnl_count;
    if (!separate_fft) return ntt_engine;
    // Dedicated FFT engine producing one FFT stream (one PNL-equivalent).
    const double fft_engine = ntt_mults / 4.0 * fp_mult_um2 / 1e6 + fifo_fp_mm2;
    return ntt_engine + fft_engine;
  };

  RfeAreaLadder ladder;
  ladder.baseline_mm2 =
      engine_mm2(mults_r2, vanilla_um2, /*separate_fft=*/true) *
      tc.block_misc_overhead;
  ladder.tf_scheduling_mm2 =
      engine_mm2(mults_r2n, vanilla_um2, true) * tc.block_misc_overhead;
  ladder.montmul_mm2 =
      engine_mm2(mults_r2n, friendly_um2, true) * tc.block_misc_overhead;
  // Reconfigurable: one engine serves both; multipliers widened for FP55,
  // FIFOs at the FP word width.
  ladder.reconfigurable_mm2 =
      (mults_r2n * friendly_um2 * tc.fp_reconfig_overhead / 1e6 +
       fifo_fp_mm2) *
      cfg.pnl_per_rsc * tc.block_misc_overhead;
  return ladder;
}

}  // namespace abc::core
