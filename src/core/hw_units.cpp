#include "core/hw_units.hpp"

#include <array>

#include "common/check.hpp"

namespace abc::core {
namespace {

/// Structural terms of one modular multiplier: (mult bit^2, shift-add
/// bits, register bits).
struct Terms {
  double mult_bits2 = 0;
  double shift_bits = 0;
  double reg_bits = 0;
};

Terms terms_of(const rns::ModMulCost& cost) {
  Terms t;
  for (const auto& m : cost.multipliers) {
    t.mult_bits2 += static_cast<double>(m.width_a) * m.width_b;
  }
  t.shift_bits =
      static_cast<double>(cost.shift_add_terms) * cost.shift_add_width;
  // Pipeline registers hold the double-width intermediate per stage; the
  // final correction adders are lumped into the register/mux term.
  t.reg_bits = static_cast<double>(cost.pipeline_stages) * cost.shift_add_width;
  if (t.reg_bits == 0) {
    t.reg_bits = static_cast<double>(cost.pipeline_stages) * 2.0 * 44.0;
  }
  return t;
}

}  // namespace

double modmul_area_um2(const rns::ModMulCost& cost, const TechConstants& tc) {
  const Terms t = terms_of(cost);
  return t.mult_bits2 * tc.mult_um2_per_bit2 +
         t.shift_bits * tc.shift_add_um2_per_bit +
         t.reg_bits * tc.reg_um2_per_bit;
}

TechConstants calibrate_28nm(u64 reference_prime, int datapath_bits,
                             const TableITargets& targets) {
  rns::BarrettHwModMul barrett(reference_prime);
  rns::MontgomeryHwModMul mont(reference_prime, datapath_bits);
  rns::NttFriendlyMontgomeryHwModMul nttf(reference_prime, datapath_bits);

  const Terms tb = terms_of(barrett.cost(datapath_bits));
  const Terms tm = terms_of(mont.cost(datapath_bits));
  const Terms tf = terms_of(nttf.cost(datapath_bits));

  // Solve the 3x3 linear system A * [kappa, beta, gamma]^T = targets.
  const std::array<std::array<double, 3>, 3> a = {{
      {tb.mult_bits2, tb.shift_bits, tb.reg_bits},
      {tm.mult_bits2, tm.shift_bits, tm.reg_bits},
      {tf.mult_bits2, tf.shift_bits, tf.reg_bits},
  }};
  const std::array<double, 3> b = {targets.barrett,
                                   targets.vanilla_montgomery,
                                   targets.ntt_friendly_montgomery};

  // Cramer's rule.
  auto det3 = [](const std::array<std::array<double, 3>, 3>& m) {
    return m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
           m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
           m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
  };
  const double det = det3(a);
  ABC_CHECK_STATE(std::abs(det) > 1e-6, "Table I calibration is singular");
  std::array<double, 3> solution{};
  for (int col = 0; col < 3; ++col) {
    auto m = a;
    for (int row = 0; row < 3; ++row) {
      m[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
          b[static_cast<std::size_t>(row)];
    }
    solution[static_cast<std::size_t>(col)] = det3(m) / det;
  }
  ABC_CHECK_STATE(solution[0] > 0 && solution[1] > 0 && solution[2] > 0,
                  "Table I calibration produced non-physical constants");

  TechConstants tc;
  tc.mult_um2_per_bit2 = solution[0];
  tc.shift_add_um2_per_bit = solution[1];
  tc.reg_um2_per_bit = solution[2];
  return tc;
}

}  // namespace abc::core
