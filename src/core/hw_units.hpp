#pragma once

/// @file hw_units.hpp
/// 28 nm unit-area/power library. The three lumped logic constants
/// (multiplier um^2/bit^2, shift-add um^2/bit, pipeline-register um^2/bit)
/// are solved exactly from the paper's Table I modular-multiplier areas,
/// then reused to compose every larger block (PNL, MSE, TF Gen) for
/// Table II. SRAM densities are calibrated from the paper's scratchpad
/// rows. Power uses per-class area densities calibrated the same way.
/// All calibration targets and the resulting constants are printed by
/// bench_table1_modmul / bench_table2_area and recorded in EXPERIMENTS.md.

#include "rns/modmul_algorithms.hpp"

namespace abc::core {

/// Table I targets (um^2, 28 nm, 600 MHz, 44-bit datapath).
struct TableITargets {
  double barrett = 35054.0;
  double vanilla_montgomery = 19255.0;
  double ntt_friendly_montgomery = 11328.0;
};

struct TechConstants {
  // Logic (solved from Table I).
  double mult_um2_per_bit2 = 0.0;   // kappa
  double shift_add_um2_per_bit = 0.0;  // beta
  double reg_um2_per_bit = 0.0;     // gamma

  // SRAM (calibrated from Table II scratchpad rows).
  double sram_sp_um2_per_bit = 0.182;   // single-port, multi-bank (local)
  double sram_db_um2_per_bit = 0.365;   // double-buffered (global)
  double sram_seed_um2_per_bit = 0.213; // TF seed memory

  // Composition factors.
  double fp_reconfig_overhead = 1.25;  // modular -> FP55-capable multiplier
  double block_misc_overhead = 1.20;   // shuffling, muxes, local control

  // Power densities, W per mm^2 at 600 MHz (from Table II row ratios).
  double logic_power_density = 0.130;
  double mse_power_density = 0.379;
  double sram_power_density = 0.490;
  double prng_power_density = 0.406;
};

/// Area of one modular multiplier instance from its structural cost.
double modmul_area_um2(const rns::ModMulCost& cost, const TechConstants& tc);

/// Solves the three logic constants so modmul_area_um2 reproduces the
/// Table I areas exactly for the given prime's cost structures. Throws if
/// the calibration system is singular or yields non-positive constants.
TechConstants calibrate_28nm(u64 reference_prime = (u64{1} << 36) -
                                                   (u64{1} << 18) + 1,
                             int datapath_bits = 44,
                             const TableITargets& targets = {});

}  // namespace abc::core
