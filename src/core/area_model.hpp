#pragma once

/// @file area_model.hpp
/// Bottom-up area and power composition of the ABC-FHE chip (paper
/// Table II): PNLs (multipliers + butterfly adders + MDC FIFOs), unified
/// OTF TF Gen, TF seed memory, MSE, PRNG, scratchpads, top control.

#include <string>
#include <vector>

#include "core/arch_config.hpp"
#include "core/hw_units.hpp"

namespace abc::core {

struct AreaPowerEntry {
  std::string name;
  double area_mm2 = 0;
  double power_w = 0;
  /// Table II lists per-RSC components and then the RSC subtotals; only
  /// chip-level rows contribute to the total.
  bool counted_in_total = false;
};

struct AreaPowerBreakdown {
  std::vector<AreaPowerEntry> entries;

  double total_area_mm2() const;
  double total_power_w() const;
  const AreaPowerEntry& find(const std::string& name) const;
};

/// Composes the full chip (Table II rows) for the given configuration.
AreaPowerBreakdown abc_fhe_breakdown(const ArchConfig& cfg,
                                     const TechConstants& tc);

/// Area of one PNL (P-lane MDC pipeline with reconfigurable multipliers,
/// butterfly adders and double-buffered FIFOs).
double pnl_area_mm2(const ArchConfig& cfg, const TechConstants& tc);

/// Area of the unified OTF twiddle-factor generator shared by the PNLs.
double tf_gen_area_mm2(const ArchConfig& cfg, const TechConstants& tc);

/// Area of the modular streaming engine.
double mse_area_mm2(const ArchConfig& cfg, const TechConstants& tc);

}  // namespace abc::core
