#include "core/stream_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace abc::core {
namespace {

constexpr double kEps = 1e-9;

struct Running {
  std::size_t pass_index;
  double fill_left;
  double elems_left;
  double rate = 0;  // current throttled rate, elems/cycle
};

}  // namespace

StreamSimulator::StreamSimulator(int num_rsc, int pnl_per_rsc, int dma_ports,
                                 double dram_bytes_per_cycle)
    : num_rsc_(num_rsc),
      pnl_per_rsc_(pnl_per_rsc),
      dma_ports_(dma_ports),
      dram_budget_(dram_bytes_per_cycle) {
  ABC_CHECK_ARG(num_rsc >= 1, "need at least one RSC");
  ABC_CHECK_ARG(pnl_per_rsc >= 1, "need at least one PNL");
  ABC_CHECK_ARG(dma_ports >= 1, "need at least one DMA port");
  ABC_CHECK_ARG(dram_bytes_per_cycle > 0, "DRAM budget must be positive");
}

SimReport StreamSimulator::run(const std::vector<Pass>& passes) const {
  const std::size_t count = passes.size();
  SimReport report;
  report.passes.resize(count);
  report.unit_busy_cycles.assign(
      static_cast<std::size_t>(UnitKind::kUnitCount), 0.0);
  if (count == 0) return report;

  for (const Pass& p : passes) {
    ABC_CHECK_ARG(p.elems >= 0 && p.unit_rate > 0, "malformed pass: " + p.label);
    ABC_CHECK_ARG(p.rsc >= 0 && p.rsc < num_rsc_, "bad RSC id: " + p.label);
    for (std::size_t d : p.deps) {
      ABC_CHECK_ARG(d < count, "dangling dependency: " + p.label);
    }
  }

  // Free slots per (kind, rsc). DMA pools are global (indexed rsc 0).
  auto pool_size = [&](UnitKind kind) {
    switch (kind) {
      case UnitKind::kPnl: return pnl_per_rsc_;
      case UnitKind::kMse: return 1;
      case UnitKind::kDmaIn:
      case UnitKind::kDmaOut: return dma_ports_;
      default: return 0;
    }
  };
  auto pool_rsc = [&](const Pass& p) {
    return (p.unit == UnitKind::kDmaIn || p.unit == UnitKind::kDmaOut)
               ? 0
               : p.rsc;
  };
  std::vector<std::vector<int>> free_slots(
      static_cast<std::size_t>(UnitKind::kUnitCount),
      std::vector<int>(static_cast<std::size_t>(num_rsc_), 0));
  for (int k = 0; k < static_cast<int>(UnitKind::kUnitCount); ++k) {
    for (int r = 0; r < num_rsc_; ++r) {
      free_slots[static_cast<std::size_t>(k)][static_cast<std::size_t>(r)] =
          pool_size(static_cast<UnitKind>(k));
    }
  }

  std::vector<int> deps_left(count, 0);
  std::vector<std::vector<std::size_t>> dependents(count);
  for (std::size_t i = 0; i < count; ++i) {
    deps_left[i] = static_cast<int>(passes[i].deps.size());
    for (std::size_t d : passes[i].deps) dependents[d].push_back(i);
  }

  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < count; ++i) {
    if (deps_left[i] == 0) ready.push_back(i);
  }

  std::vector<Running> running;
  std::size_t finished = 0;
  double now = 0.0;
  double throttle_weighted = 0.0;

  auto try_start = [&]() {
    // FIFO admission keeps the schedule deterministic.
    std::size_t kept = 0;
    for (std::size_t idx = 0; idx < ready.size(); ++idx) {
      const std::size_t pi = ready[idx];
      const Pass& p = passes[pi];
      int& slots = free_slots[static_cast<std::size_t>(p.unit)]
                             [static_cast<std::size_t>(pool_rsc(p))];
      if (slots > 0) {
        --slots;
        running.push_back(Running{pi, p.fill_latency, p.elems});
        report.passes[pi].start_cycle = now;
      } else {
        ready[kept++] = pi;
      }
    }
    ready.resize(kept);
  };

  auto recompute_rates = [&]() -> double {
    // Demand-proportional throttling: all passes ask for their full rate;
    // if total DRAM demand exceeds the budget, scale every DRAM consumer
    // by budget/demand (fair arbitration).
    double demand = 0.0;
    for (const Running& r : running) {
      if (r.fill_left > kEps || r.elems_left <= kEps) continue;
      const Pass& p = passes[r.pass_index];
      demand += p.unit_rate *
                (p.dram_read_bytes_per_elem + p.dram_write_bytes_per_elem);
    }
    const double factor = demand > dram_budget_ ? dram_budget_ / demand : 1.0;
    for (Running& r : running) {
      const Pass& p = passes[r.pass_index];
      const bool uses_dram =
          p.dram_read_bytes_per_elem + p.dram_write_bytes_per_elem > 0;
      r.rate = p.unit_rate * (uses_dram ? factor : 1.0);
    }
    return factor;
  };

  while (finished < count) {
    try_start();
    ABC_CHECK_STATE(!running.empty(),
                    "deadlock: no runnable passes (cyclic dependencies?)");
    const double factor = recompute_rates();

    // Earliest completion among running passes.
    double dt = std::numeric_limits<double>::infinity();
    for (const Running& r : running) {
      double t;
      if (r.fill_left > kEps) {
        t = r.fill_left;
      } else {
        t = r.elems_left / r.rate;
      }
      dt = std::min(dt, t);
    }
    ABC_CHECK_STATE(std::isfinite(dt), "no progress possible");
    dt = std::max(dt, kEps);

    // Integrate progress over dt.
    throttle_weighted += factor * dt;
    for (Running& r : running) {
      const Pass& p = passes[r.pass_index];
      if (r.fill_left > kEps) {
        const double consumed = std::min(r.fill_left, dt);
        r.fill_left -= consumed;
        report.unit_busy_cycles[static_cast<std::size_t>(p.unit)] += consumed;
        continue;
      }
      const double done = std::min(r.elems_left, r.rate * dt);
      r.elems_left -= done;
      report.unit_busy_cycles[static_cast<std::size_t>(p.unit)] += dt;
      report.dram_read_bytes += done * p.dram_read_bytes_per_elem;
      report.dram_write_bytes += done * p.dram_write_bytes_per_elem;
    }
    now += dt;

    // Retire completed passes.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < running.size(); ++i) {
      Running& r = running[i];
      const Pass& p = passes[r.pass_index];
      if (r.fill_left <= kEps && r.elems_left <= kEps) {
        report.passes[r.pass_index].end_cycle = now;
        ++free_slots[static_cast<std::size_t>(p.unit)]
                    [static_cast<std::size_t>(pool_rsc(p))];
        ++finished;
        for (std::size_t dep : dependents[r.pass_index]) {
          if (--deps_left[dep] == 0) ready.push_back(dep);
        }
      } else {
        running[kept++] = r;
      }
    }
    running.resize(kept);
  }

  report.total_cycles = now;
  report.dram_throughput_factor = now > 0 ? throttle_weighted / now : 1.0;
  return report;
}

}  // namespace abc::core
