#include "core/scheduler.hpp"

#include <string>

namespace abc::core {
namespace {

/// 256-bit scratchpad port shared by the DMA engines (paper Sec. V-A).
constexpr double kScratchPortBytesPerCycle = 32.0;

std::string tag(const char* what, std::size_t job, std::size_t limb) {
  return std::string(what) + "#j" + std::to_string(job) + ".l" +
         std::to_string(limb);
}

}  // namespace

JobScheduler::JobScheduler(const ArchConfig& config) : cfg_(config) {
  cfg_.validate();
}

void JobScheduler::add_encode_encrypt(std::vector<Pass>& passes, int rsc,
                                      std::size_t job_id) const {
  const double n = static_cast<double>(cfg_.n());
  const std::size_t limbs = cfg_.fresh_limbs;
  const EncryptProfile& prof = cfg_.enc_profile;

  // DMA-in: N/2 complex-double message words.
  const std::size_t dma_in = passes.size();
  passes.push_back(Pass{
      .label = tag("dma_in_msg", job_id, 0),
      .unit = UnitKind::kDmaIn,
      .rsc = rsc,
      .elems = n / 2,
      .unit_rate = kScratchPortBytesPerCycle / 16.0,
      .fill_latency = 0,
      .dram_read_bytes_per_elem = 16.0,
      .dram_write_bytes_per_elem = 0,
      .deps = {}});

  // IFFT over N points on one PNL (FFT mode of the RFE).
  const std::size_t ifft = passes.size();
  passes.push_back(Pass{
      .label = tag("ifft", job_id, 0),
      .unit = UnitKind::kPnl,
      .rsc = rsc,
      .elems = n,
      .unit_rate = static_cast<double>(cfg_.lanes),
      .fill_latency = transform_fill(),
      .dram_read_bytes_per_elem = twiddle_read_per_elem(/*fft=*/true),
      .dram_write_bytes_per_elem = 0,
      .deps = {dma_in}});

  const bool prng_on_chip = cfg_.placement.randomness_on_chip;
  const double coeff_bytes = cfg_.int_coeff_bytes();

  for (std::size_t l = 0; l < limbs; ++l) {
    // RNS expansion of the scaled message coefficients into limb l.
    const std::size_t expand = passes.size();
    passes.push_back(Pass{
        .label = tag("rns_expand", job_id, l),
        .unit = UnitKind::kMse,
        .rsc = rsc,
        .elems = n,
        .unit_rate = static_cast<double>(cfg_.mse_width),
        .fill_latency = 0,
        .dram_read_bytes_per_elem = 0,
        .dram_write_bytes_per_elem = 0,
        .deps = {ifft}});

    // NTT passes for this limb: the first transforms the (message + error)
    // polynomial; additional passes transform mask/error polynomials whose
    // inputs come from the PRNG (on-chip) or DRAM (Base configuration).
    std::vector<std::size_t> ntt_ids;
    for (int k = 0; k < prof.ntt_passes_per_limb; ++k) {
      const std::size_t ntt = passes.size();
      const bool message_path = (k == 0);
      passes.push_back(Pass{
          .label = tag(message_path ? "ntt_msg" : "ntt_rand", job_id, l),
          .unit = UnitKind::kPnl,
          .rsc = rsc,
          .elems = n,
          .unit_rate = static_cast<double>(cfg_.lanes),
          .fill_latency = transform_fill(),
          .dram_read_bytes_per_elem =
              twiddle_read_per_elem(false) +
              ((message_path || prng_on_chip) ? 0.0 : coeff_bytes),
          .dram_write_bytes_per_elem = 0,
          .deps = message_path ? std::vector<std::size_t>{expand}
                               : std::vector<std::size_t>{}});
      ntt_ids.push_back(ntt);
    }

    // MSE combine: mask * pk (+ error, + message). PK polynomial streams
    // come from DRAM unless regenerable (seeded pk1) — Base fetches all.
    double pk_read = 0.0;
    if (prof.pk_streams > 0) {
      const int fetched = prng_on_chip ? prof.pk_streams - 1  // pk1 = PRNG(a)
                                       : prof.pk_streams;
      pk_read = coeff_bytes * static_cast<double>(std::max(fetched, 0));
    }
    const double rand_read =
        prng_on_chip ? 0.0 : coeff_bytes;  // error stream for the combine
    const std::size_t combine = passes.size();
    passes.push_back(Pass{
        .label = tag("mse_combine", job_id, l),
        .unit = UnitKind::kMse,
        .rsc = rsc,
        .elems = n,
        .unit_rate = static_cast<double>(cfg_.mse_width),
        .fill_latency = 0,
        .dram_read_bytes_per_elem = pk_read + rand_read,
        .dram_write_bytes_per_elem = 0,
        .deps = ntt_ids});

    // Write the finished ciphertext limb(s) out.
    const double components = prof.ship_c1 ? 2.0 : 1.0;
    passes.push_back(Pass{
        .label = tag("dma_out_ct", job_id, l),
        .unit = UnitKind::kDmaOut,
        .rsc = rsc,
        .elems = n * components,
        .unit_rate = kScratchPortBytesPerCycle / coeff_bytes,
        .fill_latency = 0,
        .dram_read_bytes_per_elem = 0,
        .dram_write_bytes_per_elem = coeff_bytes,
        .deps = {combine}});
  }
}

void JobScheduler::add_decode_decrypt(std::vector<Pass>& passes, int rsc,
                                      std::size_t job_id) const {
  const double n = static_cast<double>(cfg_.n());
  const std::size_t limbs = cfg_.returned_limbs;
  const double coeff_bytes = cfg_.int_coeff_bytes();
  const bool prng_on_chip = cfg_.placement.randomness_on_chip;

  // DMA-in: both ciphertext polynomials at the returned level.
  const std::size_t dma_in = passes.size();
  passes.push_back(Pass{
      .label = tag("dma_in_ct", job_id, 0),
      .unit = UnitKind::kDmaIn,
      .rsc = rsc,
      .elems = 2.0 * n * static_cast<double>(limbs),
      .unit_rate = kScratchPortBytesPerCycle / coeff_bytes,
      .fill_latency = 0,
      .dram_read_bytes_per_elem = coeff_bytes,
      .dram_write_bytes_per_elem = 0,
      .deps = {dma_in /*self placeholder, replaced below*/}});
  passes.back().deps.clear();

  std::vector<std::size_t> intt_ids;
  for (std::size_t l = 0; l < limbs; ++l) {
    // Phase accumulation c0 + c1 * s on the MSE. The secret key limb is
    // regenerated on chip (PRNG + cached NTT form) or streamed from DRAM
    // in the Base configuration.
    const std::size_t phase = passes.size();
    passes.push_back(Pass{
        .label = tag("mse_phase", job_id, l),
        .unit = UnitKind::kMse,
        .rsc = rsc,
        .elems = n,
        .unit_rate = static_cast<double>(cfg_.mse_width),
        .fill_latency = 0,
        .dram_read_bytes_per_elem = prng_on_chip ? 0.0 : coeff_bytes,
        .dram_write_bytes_per_elem = 0,
        .deps = {dma_in}});

    const std::size_t intt = passes.size();
    passes.push_back(Pass{
        .label = tag("intt", job_id, l),
        .unit = UnitKind::kPnl,
        .rsc = rsc,
        .elems = n,
        .unit_rate = static_cast<double>(cfg_.lanes),
        .fill_latency = transform_fill(),
        .dram_read_bytes_per_elem = twiddle_read_per_elem(false),
        .dram_write_bytes_per_elem = 0,
        .deps = {phase}});
    intt_ids.push_back(intt);
  }

  // CRT combine across limbs (MSE), then the decode FFT (PNL).
  const std::size_t crt = passes.size();
  passes.push_back(Pass{
      .label = tag("crt_combine", job_id, 0),
      .unit = UnitKind::kMse,
      .rsc = rsc,
      .elems = n,
      .unit_rate = static_cast<double>(cfg_.mse_width),
      .fill_latency = 0,
      .dram_read_bytes_per_elem = 0,
      .dram_write_bytes_per_elem = 0,
      .deps = intt_ids});

  const std::size_t fft = passes.size();
  passes.push_back(Pass{
      .label = tag("fft", job_id, 0),
      .unit = UnitKind::kPnl,
      .rsc = rsc,
      .elems = n,
      .unit_rate = static_cast<double>(cfg_.lanes),
      .fill_latency = transform_fill(),
      .dram_read_bytes_per_elem = twiddle_read_per_elem(/*fft=*/true),
      .dram_write_bytes_per_elem = 0,
      .deps = {crt}});

  passes.push_back(Pass{
      .label = tag("dma_out_msg", job_id, 0),
      .unit = UnitKind::kDmaOut,
      .rsc = rsc,
      .elems = n / 2,
      .unit_rate = kScratchPortBytesPerCycle / 16.0,
      .fill_latency = 0,
      .dram_read_bytes_per_elem = 0,
      .dram_write_bytes_per_elem = 16.0,
      .deps = {fft}});
}

std::vector<Pass> JobScheduler::build(OperatingMode mode, int jobs) const {
  ABC_CHECK_ARG(jobs >= 1, "need at least one job");
  std::vector<Pass> passes;
  for (int j = 0; j < jobs; ++j) {
    const int rsc = j % cfg_.num_rsc;
    switch (mode) {
      case OperatingMode::kDualEncrypt:
        add_encode_encrypt(passes, rsc, static_cast<std::size_t>(j));
        break;
      case OperatingMode::kDualDecrypt:
        add_decode_decrypt(passes, rsc, static_cast<std::size_t>(j));
        break;
      case OperatingMode::kConcurrent:
        if (rsc == 0) {
          add_encode_encrypt(passes, 0, static_cast<std::size_t>(j));
        } else {
          add_decode_decrypt(passes, 1, static_cast<std::size_t>(j));
        }
        break;
    }
  }
  return passes;
}

}  // namespace abc::core
