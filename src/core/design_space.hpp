#pragma once

/// @file design_space.hpp
/// Design-space analysis of the reconfigurable Fourier engine:
///
///  * Fig. 4(b): multiplier counts across radix configurations of the
///    P-parallel pipelined NTT/FFT. Only the mixed radix-2^n decomposition
///    keeps the merged nega-cyclic twiddle pattern consistent across
///    stages (paper Sec. IV-A); every other configuration pays extra
///    pre-/post-processing and boundary multipliers.
///  * Fig. 6(a): RFE area ladder — baseline (radix-2, separate NTT/FFT
///    engines, vanilla Montgomery) -> +twiddle-factor scheduling ->
///    +NTT-friendly Montgomery -> fully reconfigurable shared engine.
///
/// Counting model: the merged minimum is (P/2) * log2(N) multiplier
/// instances (paper's theoretical bound). Non-2^n configurations add
/// lane-wise pre-/post-twist multipliers and per-group boundary
/// corrections; the per-radix overhead weights are calibrated to the
/// paper's reported reductions (29.7% vs radix-2, 22.3% vs radix-2^2 for
/// NTT) since the paper does not give its exact counting formula. The
/// *ordering* and the enumeration are structural, not fitted.

#include <vector>

#include "core/arch_config.hpp"
#include "core/hw_units.hpp"

namespace abc::core {

enum class TransformKind { kNtt, kFft };

/// A pipelined design: log2-radix of each stage group; entries sum to
/// log2(N). {1,1,...}=radix-2, {2,2,...}=radix-2^2, mixed = radix-2^n.
struct RadixConfig {
  std::vector<int> group_log_radix;
  bool merged_negacyclic = false;  // pattern-consistent radix-2^n design

  int total_stages() const;
};

/// Named canonical designs.
RadixConfig radix2_config(int log_n);
RadixConfig radix4_config(int log_n);
RadixConfig radix8_config(int log_n);
RadixConfig radix2n_config(int log_n);  // the paper's merged design

/// Multiplier instances for a P-lane pipelined implementation.
double multiplier_instances(const RadixConfig& config, TransformKind kind,
                            int log_n, int lanes);

/// All compositions of log_n into parts of size 1..max_part (the design
/// space enumerated for the Fig. 4b histogram).
std::vector<RadixConfig> enumerate_radix_configs(int log_n, int max_part = 3);

/// Fig. 6(a) ladder: relative RFE area after each optimization.
struct RfeAreaLadder {
  double baseline_mm2 = 0;        // radix-2, separate NTT+FFT, vanilla MM
  double tf_scheduling_mm2 = 0;   // + merged twiddle scheduling (radix-2^n)
  double montmul_mm2 = 0;         // + NTT-friendly Montgomery multiplier
  double reconfigurable_mm2 = 0;  // + shared NTT/FFT engine
  double total_reduction() const {
    return 1.0 - reconfigurable_mm2 / baseline_mm2;
  }
};

RfeAreaLadder rfe_area_ladder(const ArchConfig& cfg, const TechConstants& tc);

}  // namespace abc::core
