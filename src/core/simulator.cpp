#include "core/simulator.hpp"

namespace abc::core {

AbcFheSimulator::AbcFheSimulator(const ArchConfig& config)
    : cfg_(config),
      scheduler_(config),
      engine_(config.num_rsc, config.pnl_per_rsc, /*dma_ports=*/2,
              config.dram_bytes_per_cycle()) {
  cfg_.validate();
}

AcceleratorReport AbcFheSimulator::run(OperatingMode mode, int jobs) const {
  const std::vector<Pass> passes = scheduler_.build(mode, jobs);
  AcceleratorReport rep;
  rep.sim = engine_.run(passes);
  rep.jobs = jobs;
  rep.latency_ms = rep.sim.milliseconds(cfg_.clock_hz);
  rep.per_job_ms = rep.latency_ms / jobs;
  rep.throughput_per_s =
      jobs / rep.sim.seconds(cfg_.clock_hz);
  rep.dram_read_mb = rep.sim.dram_read_bytes / (1024.0 * 1024.0);
  rep.dram_write_mb = rep.sim.dram_write_bytes / (1024.0 * 1024.0);
  const double pnl_slots =
      static_cast<double>(cfg_.num_rsc) * cfg_.pnl_per_rsc;
  rep.pnl_utilization =
      rep.sim.unit_busy_cycles[static_cast<std::size_t>(UnitKind::kPnl)] /
      (pnl_slots * rep.sim.total_cycles);
  rep.mse_utilization =
      rep.sim.unit_busy_cycles[static_cast<std::size_t>(UnitKind::kMse)] /
      (static_cast<double>(cfg_.num_rsc) * rep.sim.total_cycles);
  return rep;
}

}  // namespace abc::core
