#pragma once

/// @file scheduler.hpp
/// Task scheduling for the ABC-FHE streaming architecture: decomposes
/// client-side jobs into the pass DAG executed by the StreamSimulator.
///
/// Encode+Encrypt (paper Fig. 2a, left):
///   DMA-in message -> IFFT (PNL) -> per limb: RNS expand (MSE) ->
///   k x NTT (PNL, k from the encryption profile) -> mask*PK + error (MSE)
///   -> DMA-out ciphertext limb.
/// Decode+Decrypt (Fig. 2a, right):
///   DMA-in ciphertext -> per limb: c0 + c1*s (MSE) -> INTT (PNL) ->
///   CRT combine (MSE) -> FFT (PNL) -> DMA-out message.
///
/// The three operating modes of the two RSCs (Sec. III) map to which cores
/// jobs are placed on: dual-encrypt, dual-decrypt, or concurrent
/// encrypt+decrypt.

#include <vector>

#include "core/arch_config.hpp"
#include "core/stream_sim.hpp"

namespace abc::core {

enum class OperatingMode {
  kDualEncrypt,   // both RSCs encrypt (2x throughput)
  kDualDecrypt,   // both RSCs decrypt
  kConcurrent,    // RSC0 encrypts while RSC1 decrypts
};

class JobScheduler {
 public:
  explicit JobScheduler(const ArchConfig& config);

  /// Appends the pass DAG of one encode+encrypt job on core @p rsc.
  void add_encode_encrypt(std::vector<Pass>& passes, int rsc,
                          std::size_t job_id) const;

  /// Appends the pass DAG of one decode+decrypt job on core @p rsc.
  void add_decode_decrypt(std::vector<Pass>& passes, int rsc,
                          std::size_t job_id) const;

  /// Builds a batch: @p jobs total, distributed per the operating mode.
  std::vector<Pass> build(OperatingMode mode, int jobs) const;

 private:
  double transform_fill() const noexcept {
    // MDC pipeline registers; the N/P FIFO fill overlaps input streaming.
    return 2.0 * static_cast<double>(cfg_.log_n);
  }
  double twiddle_read_per_elem(bool fft) const noexcept {
    if (cfg_.placement.twiddles_on_chip) return 0.0;
    return cfg_.twiddle_bytes_per_cycle(fft) / static_cast<double>(cfg_.lanes);
  }

  const ArchConfig cfg_;
};

}  // namespace abc::core
