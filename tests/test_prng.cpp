#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "ckks/keygen.hpp"
#include "common/stats.hpp"
#include "prng/chacha20.hpp"
#include "prng/samplers.hpp"

namespace abc::prng {
namespace {

TEST(ChaCha20Block, Rfc8439TestVector) {
  // RFC 8439 Section 2.3.2 test vector.
  std::array<u32, 8> key;
  for (int i = 0; i < 8; ++i) {
    // key bytes 00 01 02 ... 1f, little-endian words
    key[static_cast<std::size_t>(i)] =
        static_cast<u32>(4 * i) | (static_cast<u32>(4 * i + 1) << 8) |
        (static_cast<u32>(4 * i + 2) << 16) |
        (static_cast<u32>(4 * i + 3) << 24);
  }
  const std::array<u32, 3> nonce = {0x09000000u, 0x4a000000u, 0x00000000u};
  std::array<u8, 64> out{};
  chacha20_block(key, 1, nonce, out);
  const std::array<u8, 64> expected = {
      0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd,
      0x1f, 0xa3, 0x20, 0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0,
      0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a, 0xc3, 0xd4, 0x6c, 0x4e, 0xd2,
      0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2, 0xd7, 0x05,
      0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e,
      0xb9, 0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e};
  EXPECT_EQ(out, expected);
}

TEST(ChaCha20, DeterministicAndStreamSeparated) {
  const std::array<u8, 16> seed = {1, 2, 3, 4, 5, 6, 7, 8,
                                   9, 10, 11, 12, 13, 14, 15, 16};
  ChaCha20 a(seed, 0), b(seed, 0), c(seed, 1), d(seed, 0, /*domain=*/7);
  for (int i = 0; i < 100; ++i) {
    const u64 va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    EXPECT_NE(va, c.next_u64());
    EXPECT_NE(va, d.next_u64());
  }
}

TEST(ChaCha20, PrngDomainTagsAreDisjointStreams) {
  // Every PrngDomain consumer must sit on its own keystream: the domain
  // word is part of the ChaCha nonce, so equal (seed, stream id) pairs
  // under different domains never collide. Enumerates the full domain map
  // (documented in docs/ARCHITECTURE.md) to catch an accidentally reused
  // tag when a new domain is added.
  using ckks::PrngDomain;
  const std::array<u8, 16> seed = {3, 1, 4, 1, 5, 9, 2, 6,
                                   5, 3, 5, 8, 9, 7, 9, 3};
  const std::array<PrngDomain, 11> domains = {
      PrngDomain::kSecretKey,   PrngDomain::kPublicA,
      PrngDomain::kKeygenError, PrngDomain::kEncryptMask,
      PrngDomain::kEncryptError, PrngDomain::kSymmetricA,
      PrngDomain::kSymmetricError, PrngDomain::kRelinA,
      PrngDomain::kRelinError,  PrngDomain::kGaloisA,
      PrngDomain::kGaloisError};
  std::vector<u64> first_words;
  for (PrngDomain d : domains) {
    ChaCha20 rng(seed, /*stream_id=*/0, static_cast<u32>(d));
    first_words.push_back(rng.next_u64());
  }
  for (std::size_t i = 0; i < domains.size(); ++i) {
    EXPECT_NE(static_cast<u32>(domains[i]), 0u);  // 0 is the default domain
    for (std::size_t j = i + 1; j < domains.size(); ++j) {
      EXPECT_NE(static_cast<u32>(domains[i]), static_cast<u32>(domains[j]));
      EXPECT_NE(first_words[i], first_words[j]) << i << " vs " << j;
    }
  }
}

TEST(ChaCha20, DoubleInUnitInterval) {
  ChaCha20 rng({}, 0);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(ChaCha20, ByteUniformityChiSquared) {
  ChaCha20 rng({42}, 3);
  std::array<u64, 256> hist{};
  constexpr int kSamples = 1 << 16;
  std::vector<u8> buf(kSamples);
  rng.fill_bytes(buf);
  for (u8 b : buf) ++hist[b];
  const double expected = kSamples / 256.0;
  double chi2 = 0;
  for (u64 h : hist) {
    const double d = static_cast<double>(h) - expected;
    chi2 += d * d / expected;
  }
  // 255 dof: mean 255, sd ~22.6. Accept +/- 6 sigma.
  EXPECT_GT(chi2, 255 - 6 * 22.6);
  EXPECT_LT(chi2, 255 + 6 * 22.6);
}

TEST(UniformModSampler, BoundsAndUniformity) {
  const u64 q = (u64{1} << 36) - (u64{1} << 18) + 1;
  UniformModSampler sampler(q);
  ChaCha20 rng({9}, 0);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) {
    const u64 v = sampler.sample(rng);
    ASSERT_LT(v, q);
    s.add(static_cast<double>(v) / static_cast<double>(q));
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.01);
}

TEST(TernarySampler, BalancedDistribution) {
  TernarySampler sampler;
  ChaCha20 rng({5}, 0);
  std::vector<i8> out(60000);
  sampler.sample_many(rng, out);
  std::map<i8, int> hist;
  for (i8 v : out) ++hist[v];
  ASSERT_EQ(hist.size(), 3u);
  for (auto [value, count] : hist) {
    EXPECT_GE(value, -1);
    EXPECT_LE(value, 1);
    EXPECT_NEAR(count, 20000, 800);  // ~5 sigma of binomial(60000, 1/3)
  }
}

TEST(DiscreteGaussian, MomentsMatchSigma) {
  DiscreteGaussianSampler sampler(3.2);
  ChaCha20 rng({17}, 0);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) {
    s.add(static_cast<double>(sampler.sample(rng)));
  }
  EXPECT_NEAR(s.mean(), 0.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.2, 0.08);
  EXPECT_LE(std::abs(s.max()), sampler.tail());
  EXPECT_LE(std::abs(s.min()), sampler.tail());
}

TEST(DiscreteGaussian, TailCutRespected) {
  DiscreteGaussianSampler sampler(0.5);
  ChaCha20 rng({23}, 0);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_LE(std::abs(sampler.sample(rng)), sampler.tail());
  }
}

TEST(DiscreteGaussian, SigmaSweepIsConsistent) {
  for (double sigma : {1.0, 2.0, 3.2, 6.4}) {
    DiscreteGaussianSampler sampler(sigma);
    ChaCha20 rng({static_cast<u8>(sigma * 10)}, 0);
    RunningStats s;
    for (int i = 0; i < 40000; ++i) {
      s.add(static_cast<double>(sampler.sample(rng)));
    }
    EXPECT_NEAR(s.stddev(), sigma, 0.05 * sigma + 0.02) << sigma;
  }
}

}  // namespace
}  // namespace abc::prng
