#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "ckks/encoder.hpp"
#include "transform/ntt.hpp"

namespace abc::ckks {
namespace {

std::vector<std::complex<double>> random_slots(std::size_t count, u64 seed,
                                               double magnitude = 1.0) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-magnitude, magnitude);
  std::vector<std::complex<double>> v(count);
  for (auto& z : v) z = {dist(rng), dist(rng)};
  return v;
}

std::shared_ptr<const CkksContext> test_context(int log_n = 10,
                                                std::size_t limbs = 3) {
  return CkksContext::create(CkksParams::test_small(log_n, limbs));
}

TEST(CkksEncoder, EncodeDecodeRoundtripPrecision) {
  auto ctx = test_context();
  CkksEncoder encoder(ctx);
  const auto slots = random_slots(encoder.slots(), 1);
  const Plaintext pt = encoder.encode(slots, ctx->max_limbs());
  const auto decoded = encoder.decode(pt);
  const PrecisionReport report = compare_slots(slots, decoded);
  // With a 2^30 scale and N=2^10 the roundtrip should keep ~20+ bits.
  EXPECT_GT(report.precision_bits, 18.0);
  EXPECT_LT(report.max_abs_error, 1e-5);
}

TEST(CkksEncoder, PartialSlotVectorsZeroPad) {
  auto ctx = test_context();
  CkksEncoder encoder(ctx);
  const auto few = random_slots(7, 2);
  const Plaintext pt = encoder.encode(few, 2);
  const auto decoded = encoder.decode(pt);
  ASSERT_EQ(decoded.size(), encoder.slots());
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_NEAR(decoded[i].real(), few[i].real(), 1e-5);
    EXPECT_NEAR(decoded[i].imag(), few[i].imag(), 1e-5);
  }
  for (std::size_t i = 7; i < decoded.size(); ++i) {
    EXPECT_NEAR(std::abs(decoded[i]), 0.0, 1e-5);
  }
}

TEST(CkksEncoder, EncodingIsAdditivelyHomomorphic) {
  auto ctx = test_context();
  CkksEncoder encoder(ctx);
  const auto za = random_slots(encoder.slots(), 3);
  const auto zb = random_slots(encoder.slots(), 4);
  Plaintext pa = encoder.encode(za, 2);
  const Plaintext pb = encoder.encode(zb, 2);
  pa.poly.add_inplace(pb.poly);
  const auto decoded = encoder.decode(pa);
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_NEAR(decoded[i].real(), za[i].real() + zb[i].real(), 1e-4);
    EXPECT_NEAR(decoded[i].imag(), za[i].imag() + zb[i].imag(), 1e-4);
  }
}

TEST(CkksEncoder, NegacyclicProductIsSlotwiseProduct) {
  // The core CKKS property: polynomial multiplication in R corresponds to
  // slot-wise complex multiplication (scale becomes Delta^2).
  auto ctx = test_context(9, 3);
  CkksEncoder encoder(ctx);
  const auto za = random_slots(encoder.slots(), 5);
  const auto zb = random_slots(encoder.slots(), 6);
  const Plaintext pa = encoder.encode(za, 3);
  const Plaintext pb = encoder.encode(zb, 3);

  // Multiply in the ring via NTT on each limb.
  Plaintext prod{ctx->make_poly(3, poly::Domain::kCoeff),
                 pa.scale * pb.scale};
  poly::RnsPoly a = pa.poly, b = pb.poly;
  a.to_eval();
  b.to_eval();
  a.mul_inplace(b);
  a.to_coeff();
  prod.poly = std::move(a);

  const auto decoded = encoder.decode(prod);
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    const std::complex<double> expect = za[i] * zb[i];
    EXPECT_NEAR(decoded[i].real(), expect.real(), 2e-3) << i;
    EXPECT_NEAR(decoded[i].imag(), expect.imag(), 2e-3) << i;
  }
}

TEST(CkksEncoder, RejectsOversizedInput) {
  auto ctx = test_context();
  CkksEncoder encoder(ctx);
  const auto too_many = random_slots(encoder.slots() + 1, 7);
  EXPECT_THROW(encoder.encode(too_many, 2), InvalidArgument);
}

TEST(CkksEncoder, RejectsOverflowingMagnitude) {
  auto ctx = test_context();
  CkksEncoder encoder(ctx);
  // 2^40 magnitude times 2^30 scale overflows the i64 coefficient bound.
  const std::vector<std::complex<double>> huge(encoder.slots(),
                                               {0x1.0p40, 0.0});
  EXPECT_THROW(encoder.encode(huge, 2), InvalidArgument);
}

TEST(CkksEncoder, MantissaSweepDegradesMonotonically) {
  auto ctx = test_context(11, 3);
  CkksEncoder encoder(ctx);
  const auto slots = random_slots(encoder.slots(), 8);
  double prev_bits = 1e9;
  for (int mant : {48, 40, 32, 24, 16}) {
    const Plaintext pt = encoder.encode_with_mantissa(slots, 3, mant);
    const auto decoded = encoder.decode_with_mantissa(pt, mant);
    const PrecisionReport r = compare_slots(slots, decoded);
    EXPECT_LT(r.precision_bits, prev_bits + 0.5) << mant;
    prev_bits = r.precision_bits;
  }
  // 16-bit mantissa caps precision near the mantissa width itself.
  EXPECT_LT(prev_bits, 16.0);
}

TEST(CkksEncoder, FullMantissaMatchesDoublePath) {
  auto ctx = test_context();
  CkksEncoder encoder(ctx);
  const auto slots = random_slots(encoder.slots(), 9);
  const Plaintext a = encoder.encode(slots, 2);
  const Plaintext b = encoder.encode_with_mantissa(slots, 2, 52);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(std::equal(a.poly.limb(i).begin(), a.poly.limb(i).end(),
                           b.poly.limb(i).begin()));
  }
}

TEST(CkksEncoder, DecodeRequiresCoefficientDomain) {
  auto ctx = test_context();
  CkksEncoder encoder(ctx);
  Plaintext pt = encoder.encode(random_slots(4, 10), 2);
  pt.poly.to_eval();
  EXPECT_THROW(encoder.decode(pt), InvalidArgument);
}

class EncoderDegreeSweep : public ::testing::TestWithParam<int> {};

TEST_P(EncoderDegreeSweep, PrecisionScalesWithDegree) {
  const int log_n = GetParam();
  auto ctx = CkksContext::create(CkksParams::test_small(log_n, 2));
  CkksEncoder encoder(ctx);
  const auto slots = random_slots(encoder.slots(), 77);
  const Plaintext pt = encoder.encode(slots, 2);
  const auto decoded = encoder.decode(pt);
  const PrecisionReport r = compare_slots(slots, decoded);
  // Rounding error ~ sqrt(N)/Delta: precision falls ~0.5 bit per log_n
  // step; just require a sane floor here.
  EXPECT_GT(r.precision_bits, 24.0 - log_n) << "log_n=" << log_n;
}

INSTANTIATE_TEST_SUITE_P(Degrees, EncoderDegreeSweep,
                         ::testing::Values(6, 8, 10, 12));

}  // namespace
}  // namespace abc::ckks
