// SpscRing and RunQueue: the serving daemon's run-queue primitives.
// The property test drives seeded randomized producer/consumer
// interleavings against a deque model — FIFO order, no lost or duplicated
// slots, exact full/empty behavior across wrap-around — and the threaded
// suites stress the same invariants under real concurrency (the TSan CI
// leg runs these with race detection on).

#include <gtest/gtest.h>

#include <deque>
#include <mutex>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "server/ring_buffer.hpp"
#include "server/run_queue.hpp"

namespace abc {
namespace {

using server::RunQueue;
using server::SpscRing;

TEST(SpscRing, CapacityMustBeNonzeroPowerOfTwo) {
  EXPECT_THROW(SpscRing<int>(0), InvalidArgument);
  EXPECT_THROW(SpscRing<int>(3), InvalidArgument);
  EXPECT_THROW(SpscRing<int>(12), InvalidArgument);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
}

TEST(SpscRing, FifoWithExactFullAndEmptyAcrossWrapAround) {
  SpscRing<u64> ring(4);
  u64 next_push = 0;
  u64 next_pop = 0;
  // Many times around the ring so the cursors wrap the index mask over and
  // over while occupancy swings between the exact bounds.
  for (int round = 0; round < 64; ++round) {
    while (ring.try_push(next_push)) ++next_push;
    EXPECT_EQ(next_push - next_pop, ring.capacity());  // full is exact
    EXPECT_FALSE(ring.try_push(next_push));
    u64 got = 0;
    while (ring.try_pop(got)) {
      EXPECT_EQ(got, next_pop);  // FIFO, nothing lost, nothing duplicated
      ++next_pop;
    }
    EXPECT_EQ(next_pop, next_push);  // empty is exact
    EXPECT_FALSE(ring.try_pop(got));
  }
  EXPECT_GT(next_push, 64u);  // we really did wrap
}

// The satellite property test: seeded random interleavings of push/pop
// checked step-by-step against a std::deque model. Each seed explores a
// different schedule; a failure names its seed for replay.
TEST(SpscRing, SeededRandomInterleavingsMatchDequeModel) {
  for (u64 seed = 0; seed < 32; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937_64 rng(seed);
    const std::size_t capacity = std::size_t{1}
                                 << (rng() % 5);  // 1..16, wraps a lot
    SpscRing<u64> ring(capacity);
    std::deque<u64> model;
    u64 next = 0;
    for (int step = 0; step < 4096; ++step) {
      if (rng() % 2 == 0) {
        const bool pushed = ring.try_push(next);
        EXPECT_EQ(pushed, model.size() < capacity);
        if (pushed) model.push_back(next++);
      } else {
        u64 got = 0;
        const bool popped = ring.try_pop(got);
        EXPECT_EQ(popped, !model.empty());
        if (popped) {
          ASSERT_FALSE(model.empty());
          EXPECT_EQ(got, model.front());
          model.pop_front();
        }
      }
      EXPECT_EQ(ring.size(), model.size());
    }
    // Drain: everything pushed comes out, in order, exactly once.
    u64 got = 0;
    while (ring.try_pop(got)) {
      ASSERT_FALSE(model.empty());
      EXPECT_EQ(got, model.front());
      model.pop_front();
    }
    EXPECT_TRUE(model.empty());
  }
}

TEST(SpscRing, TwoThreadHandoffDeliversEverySlotInOrder) {
  constexpr u64 kItems = 200000;
  SpscRing<u64> ring(64);
  std::thread producer([&] {
    for (u64 i = 0; i < kItems; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });
  u64 expected = 0;
  while (expected < kItems) {
    u64 got = 0;
    if (ring.try_pop(got)) {
      ASSERT_EQ(got, expected);  // order survives the release/acquire seam
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  u64 got = 0;
  EXPECT_FALSE(ring.try_pop(got));
}

TEST(RunQueue, ManyProducersOneConsumerLosesNothing) {
  constexpr std::size_t kProducers = 4;
  constexpr u64 kPerProducer = 20000;
  RunQueue<u64> queue(32);
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (u64 i = 0; i < kPerProducer; ++i) {
        const u64 tagged = (static_cast<u64>(p) << 32) | i;
        while (!queue.push(tagged)) std::this_thread::yield();
      }
    });
  }
  std::vector<u64> next_seq(kProducers, 0);
  u64 received = 0;
  while (received < kProducers * kPerProducer) {
    u64 got = 0;
    if (!queue.pop(got)) {
      std::this_thread::yield();
      continue;
    }
    const std::size_t p = static_cast<std::size_t>(got >> 32);
    const u64 seq = got & 0xffffffffu;
    ASSERT_LT(p, kProducers);
    // Per-producer FIFO: the ring is one queue, so each producer's items
    // arrive in the order it pushed them.
    EXPECT_EQ(seq, next_seq[p]);
    ++next_seq[p];
    ++received;
  }
  for (auto& t : producers) t.join();
  for (std::size_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_seq[p], kPerProducer);
  }
}

TEST(RunQueue, StealDrainsFromTheSameEndAndCounts) {
  RunQueue<int> queue(8);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(queue.push(i));
  int got = -1;
  // Alternate owner pops and sibling steals: global FIFO must hold no
  // matter who drains — that is the work-stealing determinism contract.
  ASSERT_TRUE(queue.pop(got));
  EXPECT_EQ(got, 0);
  ASSERT_TRUE(queue.steal(got));
  EXPECT_EQ(got, 1);
  ASSERT_TRUE(queue.pop(got));
  EXPECT_EQ(got, 2);
  ASSERT_TRUE(queue.steal(got));
  EXPECT_EQ(got, 3);
  // The steal counter lives on the obs registry; it reads 0 when metrics
  // are compiled out, so the exact counts only hold in enabled builds.
  if (obs::kMetricsEnabled) EXPECT_EQ(queue.steals(), 2u);
  ASSERT_TRUE(queue.steal(got));
  ASSERT_TRUE(queue.steal(got));
  EXPECT_EQ(got, 5);
  if (obs::kMetricsEnabled) EXPECT_EQ(queue.steals(), 4u);
  EXPECT_FALSE(queue.steal(got));
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(queue.steals(), 4u);  // a failed steal is not a steal
  }
}

TEST(RunQueue, ConcurrentOwnerAndThievesPartitionTheStream) {
  constexpr u64 kItems = 50000;
  RunQueue<u64> queue(64);
  std::mutex seen_m;
  std::vector<u64> seen;  // drained values, all drainers interleaved
  auto drain = [&](bool thief) {
    u64 got = 0;
    std::vector<u64> local;
    while (true) {
      const bool ok = thief ? queue.steal(got) : queue.pop(got);
      if (!ok) {
        std::this_thread::yield();
        continue;
      }
      if (got == u64(-1)) break;  // poison pill (one per drainer)
      local.push_back(got);
    }
    std::lock_guard<std::mutex> lock(seen_m);
    seen.insert(seen.end(), local.begin(), local.end());
  };
  std::thread owner([&] { drain(false); });
  std::thread thief([&] { drain(true); });
  for (u64 i = 0; i < kItems; ++i) {
    while (!queue.push(i)) std::this_thread::yield();
  }
  for (int pills = 0; pills < 2; ++pills) {
    while (!queue.push(u64(-1))) std::this_thread::yield();
  }
  owner.join();
  thief.join();
  // Between them the drainers saw every item exactly once.
  std::set<u64> unique(seen.begin(), seen.end());
  EXPECT_EQ(seen.size(), kItems);
  EXPECT_EQ(unique.size(), kItems);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), kItems - 1);
}

}  // namespace
}  // namespace abc
