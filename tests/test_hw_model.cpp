#include <gtest/gtest.h>

#include "core/area_model.hpp"
#include "core/design_space.hpp"
#include "core/hw_units.hpp"
#include "core/tech_scale.hpp"

namespace abc::core {
namespace {

TEST(HwUnits, CalibrationReproducesTableI) {
  const TechConstants tc = calibrate_28nm();
  EXPECT_GT(tc.mult_um2_per_bit2, 0);
  EXPECT_GT(tc.shift_add_um2_per_bit, 0);
  EXPECT_GT(tc.reg_um2_per_bit, 0);

  constexpr u64 q = (u64{1} << 36) - (u64{1} << 18) + 1;
  rns::BarrettHwModMul barrett(q);
  rns::MontgomeryHwModMul mont(q, 44);
  rns::NttFriendlyMontgomeryHwModMul nttf(q, 44);
  EXPECT_NEAR(modmul_area_um2(barrett.cost(44), tc), 35054.0, 1.0);
  EXPECT_NEAR(modmul_area_um2(mont.cost(44), tc), 19255.0, 1.0);
  EXPECT_NEAR(modmul_area_um2(nttf.cost(44), tc), 11328.0, 1.0);
}

TEST(HwUnits, TableIOrderingHoldsForOtherSparsePrimes) {
  const TechConstants tc = calibrate_28nm();
  for (u64 q : {(u64{1} << 36) + (u64{3} << 17) + 1,
                (u64{1} << 35) + (u64{1} << 17) + 1}) {
    rns::BarrettHwModMul barrett(q);
    rns::MontgomeryHwModMul mont(q, 44);
    rns::NttFriendlyMontgomeryHwModMul nttf(q, 44);
    const double a_b = modmul_area_um2(barrett.cost(44), tc);
    const double a_m = modmul_area_um2(mont.cost(44), tc);
    const double a_f = modmul_area_um2(nttf.cost(44), tc);
    EXPECT_GT(a_b, a_m) << q;
    EXPECT_GT(a_m, a_f) << q;
  }
}

TEST(AreaModel, TableIIRowsWithinTolerance) {
  const TechConstants tc = calibrate_28nm();
  const ArchConfig cfg = ArchConfig::paper_default();
  const AreaPowerBreakdown bd = abc_fhe_breakdown(cfg, tc);

  // Paper Table II values (mm^2). Bottom-up composition should land
  // within ~35% per row and ~20% on the total.
  const struct {
    const char* name;
    double area;
  } rows[] = {
      {"4x PNL", 10.717},       {"Unified OTF TF Gen", 0.697},
      {"MSE", 0.787},           {"PRNG", 0.069},
      {"Local Scratchpad", 0.658}, {"Global Scratchpad", 2.632},
  };
  for (const auto& row : rows) {
    const double got = bd.find(row.name).area_mm2;
    EXPECT_NEAR(got, row.area, row.area * 0.35) << row.name;
  }
  EXPECT_NEAR(bd.total_area_mm2(), 28.638, 28.638 * 0.20);
  EXPECT_NEAR(bd.total_power_w(), 5.654, 5.654 * 0.25);
}

TEST(AreaModel, RscSubtotalConsistent) {
  const TechConstants tc = calibrate_28nm();
  const AreaPowerBreakdown bd =
      abc_fhe_breakdown(ArchConfig::paper_default(), tc);
  const double rsc = bd.find("RSC").area_mm2;
  const double two_rsc = bd.find("2x RSC").area_mm2;
  EXPECT_NEAR(two_rsc, 2.0 * rsc, 1e-9);
  EXPECT_GT(bd.total_area_mm2(), two_rsc);
}

TEST(AreaModel, AreaScalesWithLanes) {
  const TechConstants tc = calibrate_28nm();
  ArchConfig small = ArchConfig::paper_default();
  small.lanes = 4;
  ArchConfig large = ArchConfig::paper_default();
  large.lanes = 16;
  EXPECT_LT(pnl_area_mm2(small, tc), pnl_area_mm2(large, tc));
}

TEST(TechScale, SevenNanometerProjection) {
  // Paper Sec. V-A: 28.638 mm^2 / 5.654 W scale to ~0.9 mm^2 / 2.1 W at
  // 7 nm with DeepScaleTool. Our realistic density factors land in the
  // same regime for power; area is conservative (see EXPERIMENTS.md).
  const double area7 = scale_area_mm2(28.638, TechNode::k7);
  const double power7 = scale_power_w(5.654, TechNode::k7);
  EXPECT_LT(area7, 3.5);
  EXPECT_GT(area7, 0.5);
  EXPECT_NEAR(power7, 2.1, 0.5);
}

TEST(TechScale, MonotoneAcrossNodes) {
  double prev_area = 1e9, prev_power = 1e9;
  for (TechNode node : {TechNode::k28, TechNode::k22, TechNode::k16,
                        TechNode::k12, TechNode::k10, TechNode::k7,
                        TechNode::k5}) {
    const double a = scale_area_mm2(10.0, node);
    const double p = scale_power_w(10.0, node);
    EXPECT_LT(a, prev_area);
    EXPECT_LT(p, prev_power);
    prev_area = a;
    prev_power = p;
  }
}

TEST(DesignSpace, Radix2nIsMinimum) {
  const int log_n = 16, lanes = 8;
  const double r2n = multiplier_instances(radix2n_config(log_n),
                                          TransformKind::kNtt, log_n, lanes);
  EXPECT_DOUBLE_EQ(r2n, 4.0 * 16);  // P/2 * log N
  for (const RadixConfig& cfg : enumerate_radix_configs(8, 3)) {
    const double m =
        multiplier_instances(cfg, TransformKind::kNtt, 8, lanes);
    EXPECT_GE(m, multiplier_instances(radix2n_config(8),
                                      TransformKind::kNtt, 8, lanes) - 1e-9);
  }
}

TEST(DesignSpace, PaperReductionsReproduced) {
  const int log_n = 16, lanes = 8;
  const double r2n = multiplier_instances(radix2n_config(log_n),
                                          TransformKind::kNtt, log_n, lanes);
  const double r2 = multiplier_instances(radix2_config(log_n),
                                         TransformKind::kNtt, log_n, lanes);
  const double r4 = multiplier_instances(radix4_config(log_n),
                                         TransformKind::kNtt, log_n, lanes);
  EXPECT_NEAR(1.0 - r2n / r2, 0.297, 0.02);  // paper: 29.7%
  EXPECT_NEAR(1.0 - r2n / r4, 0.223, 0.02);  // paper: 22.3%
}

TEST(DesignSpace, FftOverheadsSmallerThanNtt) {
  const int log_n = 16, lanes = 8;
  for (auto make : {radix2_config, radix4_config, radix8_config}) {
    const RadixConfig cfg = make(log_n);
    EXPECT_LT(
        multiplier_instances(cfg, TransformKind::kFft, log_n, lanes),
        multiplier_instances(cfg, TransformKind::kNtt, log_n, lanes));
  }
}

TEST(DesignSpace, EnumerationCountsCompositions) {
  // Compositions of n into parts {1,2,3} follow the tribonacci numbers.
  EXPECT_EQ(enumerate_radix_configs(4, 3).size(), 7u);
  EXPECT_EQ(enumerate_radix_configs(6, 3).size(), 24u);
  EXPECT_EQ(enumerate_radix_configs(8, 3).size(), 81u);
}

TEST(DesignSpace, RfeAreaLadderMonotone) {
  const TechConstants tc = calibrate_28nm();
  const RfeAreaLadder ladder =
      rfe_area_ladder(ArchConfig::paper_default(), tc);
  EXPECT_GT(ladder.baseline_mm2, ladder.tf_scheduling_mm2);
  EXPECT_GT(ladder.tf_scheduling_mm2, ladder.montmul_mm2);
  EXPECT_GT(ladder.montmul_mm2, ladder.reconfigurable_mm2);
  // Paper: 31% total reduction; same order here.
  EXPECT_GT(ladder.total_reduction(), 0.2);
  EXPECT_LT(ladder.total_reduction(), 0.6);
}

}  // namespace
}  // namespace abc::core
