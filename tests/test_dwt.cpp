#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "transform/dwt.hpp"

namespace abc::xf {
namespace {

std::vector<Cx<double>> random_complex(std::size_t n, u64 seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<Cx<double>> v(n);
  for (auto& z : v) z = {dist(rng), dist(rng)};
  return v;
}

class DwtParamTest : public ::testing::TestWithParam<int> {};

TEST_P(DwtParamTest, ForwardInverseRoundtrip) {
  const int log_n = GetParam();
  CkksDwtPlan plan(log_n);
  auto a = random_complex(plan.n(), 5);
  const auto original = a;
  plan.forward(std::span<Cx<double>>(a));
  plan.inverse(std::span<Cx<double>>(a));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].re, original[i].re, 1e-10);
    EXPECT_NEAR(a[i].im, original[i].im, 1e-10);
  }
}

TEST_P(DwtParamTest, ForwardMatchesNaiveEvaluation) {
  // Position brv(j) after forward() holds the evaluation at zeta^{2j+1}.
  const int log_n = GetParam();
  if (log_n > 10) GTEST_SKIP() << "naive evaluation too slow";
  CkksDwtPlan plan(log_n);
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> coeffs(plan.n());
  for (double& c : coeffs) c = dist(rng);

  std::vector<Cx<double>> a(plan.n());
  for (std::size_t i = 0; i < plan.n(); ++i) a[i] = {coeffs[i], 0.0};
  plan.forward(std::span<Cx<double>>(a));

  for (std::size_t j = 0; j < plan.n(); ++j) {
    const Cx<double> expected =
        eval_poly_at_zeta_pow(coeffs, plan, 2 * j + 1);
    const std::size_t pos = bit_reverse(j, log_n);
    EXPECT_NEAR(a[pos].re, expected.re, 1e-8) << "j=" << j;
    EXPECT_NEAR(a[pos].im, expected.im, 1e-8) << "j=" << j;
  }
}

TEST_P(DwtParamTest, IndexMapReadsGenerator3Orbit) {
  // Slot i of the canonical embedding = evaluation at zeta^{3^i mod 2N}.
  const int log_n = GetParam();
  if (log_n > 10) GTEST_SKIP();
  CkksDwtPlan plan(log_n);
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> coeffs(plan.n());
  for (double& c : coeffs) c = dist(rng);

  std::vector<Cx<double>> a(plan.n());
  for (std::size_t i = 0; i < plan.n(); ++i) a[i] = {coeffs[i], 0.0};
  plan.forward(std::span<Cx<double>>(a));

  u64 pos = 1;
  const u64 m = static_cast<u64>(plan.n()) << 1;
  for (std::size_t i = 0; i < plan.slots(); ++i) {
    const Cx<double> expected = eval_poly_at_zeta_pow(coeffs, plan, pos);
    const Cx<double> got = a[plan.index_map()[i]];
    EXPECT_NEAR(got.re, expected.re, 1e-8);
    EXPECT_NEAR(got.im, expected.im, 1e-8);
    // Conjugate slot.
    const Cx<double> got_conj = a[plan.index_map()[plan.slots() + i]];
    EXPECT_NEAR(got_conj.re, expected.re, 1e-8);
    EXPECT_NEAR(got_conj.im, -expected.im, 1e-8);
    pos = (pos * 3) % m;
  }
}

TEST_P(DwtParamTest, ConjugateSymmetricInputGivesRealCoefficients) {
  // Encoding property: placing (z, conj z) per the index map and running
  // inverse() must give (numerically) real coefficients.
  const int log_n = GetParam();
  CkksDwtPlan plan(log_n);
  auto slots = random_complex(plan.slots(), 21);
  std::vector<Cx<double>> a(plan.n());
  for (std::size_t i = 0; i < plan.slots(); ++i) {
    a[plan.index_map()[i]] = slots[i];
    a[plan.index_map()[plan.slots() + i]] = slots[i].conj();
  }
  plan.inverse(std::span<Cx<double>>(a));
  for (const auto& z : a) {
    EXPECT_NEAR(z.im, 0.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, DwtParamTest,
                         ::testing::Values(4, 6, 8, 10, 12, 14));

TEST(Dwt, SlotRoundtripThroughEncodingOrder) {
  // slots -> inverse -> forward -> slots is the encode/decode core.
  CkksDwtPlan plan(12);
  auto slots = random_complex(plan.slots(), 31);
  std::vector<Cx<double>> a(plan.n());
  for (std::size_t i = 0; i < plan.slots(); ++i) {
    a[plan.index_map()[i]] = slots[i];
    a[plan.index_map()[plan.slots() + i]] = slots[i].conj();
  }
  plan.inverse(std::span<Cx<double>>(a));
  plan.forward(std::span<Cx<double>>(a));
  for (std::size_t i = 0; i < plan.slots(); ++i) {
    const Cx<double> got = a[plan.index_map()[i]];
    EXPECT_NEAR(got.re, slots[i].re, 1e-9);
    EXPECT_NEAR(got.im, slots[i].im, 1e-9);
  }
}

TEST(Dwt, ZetaPowBasics) {
  CkksDwtPlan plan(8);
  const auto one = plan.zeta_pow(0);
  EXPECT_DOUBLE_EQ(one.re, 1.0);
  const auto minus_one = plan.zeta_pow(plan.n());
  EXPECT_NEAR(minus_one.re, -1.0, 1e-15);
  EXPECT_NEAR(minus_one.im, 0.0, 1e-15);
  const auto i_unit = plan.zeta_pow(plan.n() / 2);
  EXPECT_NEAR(i_unit.re, 0.0, 1e-15);
  EXPECT_NEAR(i_unit.im, 1.0, 1e-15);
}

TEST(Dwt, ReducedMantissaDegradesGracefully) {
  // Same roundtrip under FP55-like rounding: error grows as mantissa
  // shrinks but the transform stays usable. This is the Fig. 3c mechanism.
  CkksDwtPlan plan(10);
  auto reference = random_complex(plan.n(), 41);
  double prev_err = 0.0;
  for (int mant : {52, 43, 30, 18}) {
    FpPrecision guard(mant);
    std::vector<Cx<Rounded>> a(plan.n());
    for (std::size_t i = 0; i < plan.n(); ++i) {
      a[i] = {Rounded(reference[i].re), Rounded(reference[i].im)};
    }
    plan.forward(std::span<Cx<Rounded>>(a));
    plan.inverse(std::span<Cx<Rounded>>(a));
    double err = 0.0;
    for (std::size_t i = 0; i < plan.n(); ++i) {
      err = std::max(err, std::abs(a[i].re.v - reference[i].re));
      err = std::max(err, std::abs(a[i].im.v - reference[i].im));
    }
    EXPECT_GT(err, prev_err);  // strictly worse with fewer bits
    EXPECT_LT(err, std::ldexp(1.0, -mant + plan.log_n() + 4));
    prev_err = err;
  }
}

}  // namespace
}  // namespace abc::xf
