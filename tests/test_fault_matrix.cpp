// The fault matrix: every registered failpoint driven through the full
// client -> server -> client session round trip (encrypt batch -> wire
// envelope -> server key-switching rotations -> wire envelope -> verify),
// plus the per-item-fault mode of each engine. The invariants under
// injected faults: no deadlock, no crash — any failure is a catchable
// std::exception — no half-written output, and a clean rerun succeeds the
// moment the point is cleared.

#include <gtest/gtest.h>

#include <complex>
#include <exception>
#include <memory>
#include <random>
#include <vector>

#include "backend/scalar_backend.hpp"
#include "backend/thread_pool_backend.hpp"
#include "ckks/evaluator.hpp"
#include "ckks/serialize.hpp"
#include "common/failpoint.hpp"
#include "engine/batch_keygen.hpp"
#include "engine/client_session.hpp"

namespace abc {
namespace {

std::vector<std::vector<std::complex<double>>> random_batch(
    std::size_t batch, std::size_t slots, u64 seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::vector<std::complex<double>>> msgs(batch);
  for (auto& m : msgs) {
    m.resize(slots);
    for (auto& z : m) z = {dist(rng), dist(rng)};
  }
  return msgs;
}

/// Server leg of the round trip: deserialize the uploaded key bundle and
/// ciphertext batch, rotate every item left then right (net identity, two
/// key switches each — exercising serialize.key, serialize.batch,
/// serialize.ct and keyswitch.scratch), and reserialize the results.
std::vector<u8> serve(const std::shared_ptr<const ckks::CkksContext>& ctx,
                      const engine::KeyBundle& keys,
                      const std::vector<int>& rotations,
                      std::span<const u8> envelope, int bits) {
  ckks::Evaluator eval(ctx);
  (void)ckks::deserialize_public_key(ctx, keys.public_key);
  ckks::GaloisKeys gks;
  gks.slots = ctx->slots();
  gks.steps = rotations;
  for (const auto& wire : keys.galois_keys) {
    gks.keys.push_back(ckks::deserialize_key_switch_key(ctx, wire));
  }
  std::vector<ckks::Ciphertext> cts =
      ckks::deserialize_ciphertext_batch(ctx, envelope);
  ckks::KeySwitchScratch scratch;
  for (ckks::Ciphertext& ct : cts) {
    const ckks::Ciphertext left = eval.rotate(ct, 1, gks, &scratch);
    ct = eval.rotate(left, -1, gks, &scratch);
  }
  return ckks::serialize_ciphertext_batch(cts, bits);
}

/// The whole session round trip on a fresh context: client keygen + key
/// bundle, encrypt at one level below the top (the key-switch discipline),
/// server rotations, client verify. Every failpoint in the catalog sits on
/// this path.
engine::BatchVerifyReport full_round_trip(std::size_t threads) {
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  auto ctx = ckks::CkksContext::create(
      params, std::make_shared<backend::ThreadPoolBackend>(threads));
  engine::SessionConfig cfg;
  cfg.rotations = {1, -1};
  engine::ClientSession session(ctx, cfg);
  const engine::KeyBundle& keys = session.key_bundle();
  const auto msgs = random_batch(4, ctx->slots(), 42);
  const std::vector<u8> upload =
      session.upload(msgs, ctx->max_limbs() - 1);
  const std::vector<u8> response =
      serve(ctx, keys, cfg.rotations, upload, cfg.bits_per_coeff);
  const std::vector<ckks::Ciphertext> returned =
      ckks::deserialize_ciphertext_batch(ctx, response);
  // The plain decrypt path (engine.decrypt_item) and the verifying path
  // both run; two key switches per item, so use a loose explicit bound
  // instead of the single-hop default.
  (void)session.decrypt_batch(returned);
  return session.verify(returned, msgs, 1e-2);
}

struct FaultMatrixTest : ::testing::Test {
  void TearDown() override { fail::disarm_all(); }
};

TEST_F(FaultMatrixTest, CleanRoundTripPasses) {
  const engine::BatchVerifyReport report = full_round_trip(4);
  EXPECT_TRUE(report.ok) << "worst error " << report.worst_abs_error;
  EXPECT_EQ(report.passed, 4u);
}

TEST_F(FaultMatrixTest, EveryCatalogPointSitsOnTheRoundTripPath) {
  // Arm each point in pure counting mode (nth = 0 can never fire) and
  // confirm the round trip actually crosses it — a catalog entry the trip
  // never hits is a point the matrix silently stopped testing.
  for (const char* name : fail::points::kAll) {
    fail::Policy policy;
    policy.trigger = fail::Trigger::kProbability;
    policy.probability = 0.0;
    fail::arm(name, policy);
  }
  const engine::BatchVerifyReport report = full_round_trip(4);
  EXPECT_TRUE(report.ok);
  for (const char* name : fail::points::kAll) {
    EXPECT_GE(fail::hits(name), 1u) << name << " never hit";
    EXPECT_EQ(fail::fires(name), 0u) << name;
  }
}

TEST_F(FaultMatrixTest, SingleTransientFaultNeverHangsAndClearsClean) {
  // One injected throw per point, anywhere on the trip: the call either
  // completes or surfaces a catchable std::exception — never a deadlock,
  // crash or std::terminate — and a rerun with the point cleared is green.
  for (const char* name : fail::points::kAll) {
    SCOPED_TRACE(name);
    fail::Policy policy;
    policy.max_fires = 1;
    fail::arm(name, policy);
    bool threw = false;
    try {
      (void)full_round_trip(4);
    } catch (const std::exception&) {
      threw = true;
    }
    EXPECT_GE(fail::hits(name), 1u) << "fault was never reachable";
    EXPECT_TRUE(threw || fail::fires(name) <= 1);
    fail::disarm_all();
    const engine::BatchVerifyReport clean = full_round_trip(4);
    EXPECT_TRUE(clean.ok) << "round trip did not recover after clearing "
                          << name;
  }
}

TEST_F(FaultMatrixTest, NonAbcExceptionsCrossThePoolSafely) {
  // std::runtime_error and std::bad_alloc from worker bodies must rethrow
  // on the submitting thread like any abc exception (not terminate).
  for (const fail::Action action :
       {fail::Action::kThrowRuntimeError, fail::Action::kThrowBadAlloc}) {
    fail::Policy policy;
    policy.action = action;
    policy.max_fires = 1;
    fail::arm(fail::points::kBackendWorkerJob, policy);
    EXPECT_THROW((void)full_round_trip(4), std::exception);
    fail::disarm_all();
  }
  EXPECT_TRUE(full_round_trip(4).ok);
}

TEST_F(FaultMatrixTest, DelaysStallButNeverCorrupt) {
  // A stalled worker (the delay action) slows the trip; the result must
  // still verify — scheduling cannot change the bytes.
  fail::Policy stall;
  stall.action = fail::Action::kDelay;
  stall.delay_us = 200;
  stall.trigger = fail::Trigger::kProbability;
  stall.probability = 0.05;
  stall.seed = 11;
  fail::arm(fail::points::kBackendWorkerJob, stall);
  fail::arm(fail::points::kKeySwitchScratch, stall);
  const engine::BatchVerifyReport report = full_round_trip(4);
  EXPECT_TRUE(report.ok) << "worst error " << report.worst_abs_error;
}

TEST_F(FaultMatrixTest, AmbientEnvFaultsNeverWedgeTheTrip) {
  // The CI fault leg reruns exactly this test with ABC_FAILPOINTS sweeps
  // installed at process start. Whatever ambient policies are armed —
  // throws, bad_allocs, delays, on any catalog point — repeated round
  // trips must terminate (success or a catchable std::exception, never a
  // hang, crash or std::terminate), and a disarmed rerun is green.
  for (int attempt = 0; attempt < 4; ++attempt) {
    try {
      (void)full_round_trip(4);
    } catch (const std::exception&) {
      // Injected faults surface as ordinary exceptions; that is the
      // contract under test.
    }
  }
  fail::disarm_all();
  EXPECT_TRUE(full_round_trip(4).ok);
}

TEST_F(FaultMatrixTest, EnvSpecDrivesTheSameMachinery) {
  // install_spec is the ABC_FAILPOINTS entry point the CI fault leg uses;
  // a spec-armed point must behave exactly like a programmatic arm.
  fail::install_spec("engine.encrypt_item=throw@hit:1,limit:1");
  EXPECT_THROW((void)full_round_trip(2), InvalidArgument);
  fail::disarm_all();
  EXPECT_TRUE(full_round_trip(2).ok);
}

// ---- per-item-fault mode ----------------------------------------------------

/// A batch with deterministically malformed messages at fixed indices:
/// oversized slot vectors make encode throw InvalidArgument for exactly
/// those items, independent of scheduling — the fault vector for
/// bit-identity tests (failpoint triggers are schedule-dependent under a
/// pool; malformed inputs are not).
std::vector<std::vector<std::complex<double>>> batch_with_bad_items(
    std::size_t batch, std::size_t slots, std::span<const std::size_t> bad,
    u64 seed) {
  auto msgs = random_batch(batch, slots, seed);
  for (std::size_t i : bad) msgs[i].resize(slots + 1, {1.0, 0.0});
  return msgs;
}

TEST_F(FaultMatrixTest, EncryptReportModeIsolatesBadItems) {
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  auto ctx = ckks::CkksContext::create(
      params, std::make_shared<backend::ThreadPoolBackend>(4));
  engine::ClientSession session(ctx);
  const std::size_t bad[] = {1, 4};
  const auto msgs = batch_with_bad_items(6, ctx->slots(), bad, 7);

  engine::BatchErrorReport report;
  const std::vector<ckks::Ciphertext> cts =
      session.encrypt_engine().encrypt_batch(msgs, ctx->max_limbs(), report);
  ASSERT_EQ(cts.size(), msgs.size());
  ASSERT_EQ(report.size(), msgs.size());
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.failed, 2u);
  EXPECT_EQ(report.succeeded, 4u);
  EXPECT_FALSE(report.items[1].ok);
  EXPECT_FALSE(report.items[4].ok);
  EXPECT_EQ(report.first_error, report.items[1].error);
  EXPECT_FALSE(report.first_error.empty());
  // Failed slots are well-defined-empty; successes decrypt.
  EXPECT_TRUE(cts[1].components.empty());
  EXPECT_TRUE(cts[4].components.empty());
  std::vector<ckks::Ciphertext> good = {cts[0], cts[2], cts[3], cts[5]};
  std::vector<std::vector<std::complex<double>>> good_msgs = {
      msgs[0], msgs[2], msgs[3], msgs[5]};
  EXPECT_TRUE(session.verify(good, good_msgs).ok);
}

TEST_F(FaultMatrixTest, ReportModeIsBitIdenticalAcrossWorkerCounts) {
  // The acceptance criterion: with faults at fixed indices, the surviving
  // ciphertexts AND the report are byte-identical on the scalar backend
  // and on 1-, 2- and 8-thread pools.
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  const std::size_t bad[] = {0, 3};
  const auto run = [&](std::shared_ptr<backend::PolyBackend> be) {
    auto ctx = ckks::CkksContext::create(params, std::move(be));
    const auto msgs = batch_with_bad_items(5, ctx->slots(), bad, 21);
    engine::ClientSession session(ctx);
    engine::BatchErrorReport report;
    const auto cts = session.encrypt_engine().encrypt_batch(
        msgs, ctx->max_limbs(), report);
    std::vector<std::vector<u8>> wires;
    for (std::size_t i = 0; i < cts.size(); ++i) {
      if (report.items[i].ok) {
        wires.push_back(ckks::serialize_ciphertext(cts[i], 44));
      }
    }
    return std::pair(std::move(wires), std::move(report));
  };
  const auto [ref_wires, ref_report] =
      run(std::make_shared<backend::ScalarBackend>());
  ASSERT_EQ(ref_report.failed, 2u);
  for (std::size_t threads : {1u, 2u, 8u}) {
    const auto [wires, report] =
        run(std::make_shared<backend::ThreadPoolBackend>(threads));
    EXPECT_EQ(ref_wires, wires) << threads << " threads";
    ASSERT_EQ(report.size(), ref_report.size());
    for (std::size_t i = 0; i < report.size(); ++i) {
      EXPECT_EQ(report.items[i].ok, ref_report.items[i].ok);
      EXPECT_EQ(report.items[i].error, ref_report.items[i].error);
    }
    EXPECT_EQ(report.first_error, ref_report.first_error);
  }
}

TEST_F(FaultMatrixTest, ReportModeMatchesThrowingModeBytesWhenClean) {
  // With no faults, the per-item mode must produce exactly the bytes of
  // the throwing mode — same stream-id reservation, same outputs.
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  const auto run = [&](bool report_mode) {
    auto ctx = ckks::CkksContext::create(
        params, std::make_shared<backend::ThreadPoolBackend>(4));
    engine::ClientSession session(ctx);
    const auto msgs = random_batch(4, ctx->slots(), 33);
    std::vector<ckks::Ciphertext> cts;
    if (report_mode) {
      engine::BatchErrorReport report;
      cts = session.encrypt_engine().encrypt_batch(msgs, ctx->max_limbs(),
                                                   report);
      EXPECT_TRUE(report.ok());
    } else {
      cts = session.encrypt_engine().encrypt_batch(msgs, ctx->max_limbs());
    }
    return ckks::serialize_ciphertext_batch(cts, 44);
  };
  EXPECT_EQ(run(false), run(true));
}

TEST_F(FaultMatrixTest, DecryptReportModeIsolatesMalformedCiphertext) {
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  auto ctx = ckks::CkksContext::create(
      params, std::make_shared<backend::ThreadPoolBackend>(4));
  engine::ClientSession session(ctx);
  const auto msgs = random_batch(4, ctx->slots(), 9);
  auto cts = session.encrypt(msgs, ctx->max_limbs());
  cts[2].components.pop_back();  // structurally malformed item

  engine::BatchErrorReport report;
  const auto pts = session.decrypt_engine().decrypt_batch(cts, report);
  ASSERT_EQ(pts.size(), cts.size());
  EXPECT_EQ(report.failed, 1u);
  EXPECT_FALSE(report.items[2].ok);
  EXPECT_FALSE(pts[2].has_value());
  for (std::size_t i : {0u, 1u, 3u}) {
    ASSERT_TRUE(pts[i].has_value()) << i;
  }
  // decode path too: the failed slot is an empty vector.
  const auto decoded = session.decrypt_engine().decrypt_decode_batch(
      cts, report);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_TRUE(decoded[2].empty());
  EXPECT_EQ(decoded[0].size(), ctx->slots());
}

TEST_F(FaultMatrixTest, VerifyReportModeSurvivesThrowingItems) {
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  auto ctx = ckks::CkksContext::create(
      params, std::make_shared<backend::ThreadPoolBackend>(4));
  engine::ClientSession session(ctx);
  auto msgs = random_batch(3, ctx->slots(), 13);
  const auto cts = session.encrypt(msgs, ctx->max_limbs());
  msgs[1].resize(ctx->slots() + 2);  // verify of item 1 throws

  engine::BatchErrorReport errors;
  const engine::BatchVerifyReport report =
      session.decrypt_engine().verify_batch(cts, msgs, errors);
  EXPECT_EQ(errors.failed, 1u);
  EXPECT_FALSE(errors.items[1].ok);
  // The thrown item keeps the default (failing) VerifyReport; the fold
  // counts it as failed while its neighbours still pass.
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.items[1].ok);
  EXPECT_EQ(report.passed, 2u);
  EXPECT_EQ(report.failed, 1u);
}

TEST_F(FaultMatrixTest, KeygenReportModeVoidsOnlyTheFailedKey) {
  // Scalar backend: run_isolated executes items in order, so hit:2 on the
  // keygen digit point deterministically fails digit 1 — which belongs to
  // the relin key / the first galois step respectively.
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  auto ctx = ckks::CkksContext::create(params);
  ckks::KeyGenerator kg(ctx);
  const ckks::SecretKey sk = kg.secret_key();
  engine::BatchKeyGenerator eng(ctx, sk);

  fail::Policy policy;
  policy.trigger = fail::Trigger::kNthHit;
  policy.nth = 2;
  fail::arm(fail::points::kKeygenDigit, policy);
  engine::BatchErrorReport report;
  const ckks::RelinKey rlk = eng.relin_key(report);
  ASSERT_EQ(report.size(), ctx->max_limbs());
  EXPECT_EQ(report.failed, 1u);
  EXPECT_FALSE(report.items[1].ok);
  EXPECT_EQ(rlk.key.digits(), 0u) << "failed key must be voided whole";
  fail::disarm_all();

  fail::arm(fail::points::kKeygenDigit, policy);
  const std::vector<int> steps = {1, 2};
  const ckks::GaloisKeys gks = eng.galois_keys(steps, report);
  ASSERT_EQ(report.size(), steps.size());
  EXPECT_EQ(report.failed, 1u);
  EXPECT_FALSE(report.items[0].ok) << "digit 1 belongs to step 0";
  EXPECT_TRUE(report.items[1].ok);
  EXPECT_EQ(gks.keys[0].digits(), 0u);
  EXPECT_EQ(gks.keys[1].digits(), ctx->max_limbs());
  fail::disarm_all();

  // Cleared: both regenerate whole.
  const ckks::RelinKey clean = eng.relin_key(report);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(clean.key.digits(), ctx->max_limbs());
}

TEST_F(FaultMatrixTest, ProbabilisticFaultsNeverWedgeTheReportMode) {
  // Robustness sweep (not bit-identity — probabilistic triggers are
  // schedule-dependent under a pool): a 30% per-item fault rate must
  // produce a coherent report, empty failed slots and intact successes.
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  auto ctx = ckks::CkksContext::create(
      params, std::make_shared<backend::ThreadPoolBackend>(4));
  engine::ClientSession session(ctx);
  const auto msgs = random_batch(8, ctx->slots(), 3);

  fail::Policy policy;
  policy.trigger = fail::Trigger::kProbability;
  policy.probability = 0.3;
  policy.seed = 5;
  fail::arm(fail::points::kEncryptItem, policy);
  engine::BatchErrorReport report;
  const auto cts =
      session.encrypt_engine().encrypt_batch(msgs, ctx->max_limbs(), report);
  fail::disarm_all();

  EXPECT_EQ(report.succeeded + report.failed, msgs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(cts[i].components.empty(), !report.items[i].ok) << i;
  }
  // Whatever survived must decrypt cleanly.
  std::vector<ckks::Ciphertext> good;
  std::vector<std::vector<std::complex<double>>> good_msgs;
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    if (report.items[i].ok) {
      good.push_back(cts[i]);
      good_msgs.push_back(msgs[i]);
    }
  }
  if (!good.empty()) {
    EXPECT_TRUE(session.verify(good, good_msgs).ok);
  }
}

}  // namespace
}  // namespace abc
