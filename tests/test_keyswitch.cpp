#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <random>

#include "backend/scalar_backend.hpp"
#include "backend/thread_pool_backend.hpp"
#include "ckks/decryptor.hpp"
#include "ckks/encoder.hpp"
#include "ckks/encryptor.hpp"
#include "ckks/evaluator.hpp"
#include "ckks/keyswitch.hpp"
#include "ckks/noise.hpp"
#include "ckks/serialize.hpp"
#include "engine/batch_keygen.hpp"
#include "simd/simd_caps.hpp"

namespace abc {
namespace {

std::vector<std::complex<double>> random_slots(std::size_t count, u64 seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::complex<double>> v(count);
  for (auto& z : v) z = {dist(rng), dist(rng)};
  return v;
}

void expect_identical_poly(const poly::RnsPoly& a, const poly::RnsPoly& b,
                           const std::string& what) {
  ASSERT_EQ(a.limbs(), b.limbs()) << what;
  ASSERT_EQ(a.domain(), b.domain()) << what;
  for (std::size_t l = 0; l < a.limbs(); ++l) {
    const std::span<const u64> la = a.limb(l);
    const std::span<const u64> lb = b.limb(l);
    for (std::size_t j = 0; j < la.size(); ++j) {
      ASSERT_EQ(la[j], lb[j]) << what << " limb " << l << " coeff " << j;
    }
  }
}

void expect_identical_ct(const ckks::Ciphertext& a, const ckks::Ciphertext& b,
                         const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_DOUBLE_EQ(a.scale, b.scale) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_identical_poly(a.c(i), b.c(i),
                          what + " component " + std::to_string(i));
  }
}

struct Fixture {
  std::shared_ptr<const ckks::CkksContext> ctx;
  ckks::CkksEncoder encoder;
  ckks::KeyGenerator keygen;
  ckks::SecretKey sk;
  ckks::Encryptor enc;
  ckks::Decryptor dec;
  ckks::Evaluator eval;

  explicit Fixture(std::shared_ptr<backend::PolyBackend> backend = nullptr,
                   int log_n = 10, std::size_t limbs = 3)
      : ctx(ckks::CkksContext::create(ckks::CkksParams::test_small(log_n, limbs),
                                      std::move(backend))),
        encoder(ctx),
        keygen(ctx),
        sk(keygen.secret_key()),
        enc(ctx, keygen.public_key(sk)),
        dec(ctx, sk),
        eval(ctx) {}
};

TEST(GaloisEvalTable, MatchesCoefficientAutomorphism) {
  // The load-bearing claim behind hoisting: sigma_g is a pure index
  // permutation of the NTT evaluation points, bit-exact against the
  // coefficient-domain automorphism + forward NTT.
  auto ctx = ckks::CkksContext::create(ckks::CkksParams::test_small(10, 3));
  poly::RnsPoly p = ctx->make_poly(3, poly::Domain::kEval);
  ckks::fill_uniform_eval(*ctx, p, ckks::PrngDomain::kPublicA, 4242);

  std::vector<u32> table;
  for (const u32 elt : {ckks::galois_element(1, ctx->n()),
                        ckks::galois_element(-3, ctx->n()),
                        ckks::galois_element(77, ctx->n()),
                        static_cast<u32>(2 * ctx->n() - 1)}) {
    poly::RnsPoly coeff_path = p;
    coeff_path.to_coeff();
    coeff_path = coeff_path.automorphism(elt);
    coeff_path.to_eval();

    ckks::build_galois_eval_table(10, elt, table);
    poly::RnsPoly eval_path = ctx->make_poly(3, poly::Domain::kEval);
    ckks::apply_galois_eval(p, table, eval_path);
    expect_identical_poly(coeff_path, eval_path,
                          "galois element " + std::to_string(elt));
  }
}

TEST(KeySwitcher, SwitchedPhaseMatchesDirectProduct) {
  // Core algebraic identity, message-free: key-switching a polynomial c
  // under a key for s' must produce (out0, out1) with out0 + out1*s close
  // to c*s' — the noise is the digit-error sum divided by P.
  Fixture f;
  const ckks::RelinKey rlk = f.keygen.relin_key(f.sk);
  ckks::KeySwitcher ks(f.ctx);
  EXPECT_EQ(ks.special_prime_index(), 2u);

  const std::size_t level = 2;
  poly::RnsPoly c = f.ctx->make_poly(level, poly::Domain::kEval);
  ckks::fill_uniform_eval(*f.ctx, c, ckks::PrngDomain::kPublicA, 999);

  poly::RnsPoly c_coeff = c;
  c_coeff.to_coeff();
  ckks::KeySwitchScratch scratch;
  poly::RnsPoly out0 = f.ctx->make_poly(level, poly::Domain::kEval);
  poly::RnsPoly out1 = f.ctx->make_poly(level, poly::Domain::kEval);
  ks.switch_key(c_coeff, rlk.key, scratch, out0, out1);

  const poly::RnsPoly s = f.sk.s.prefix_copy(level);
  poly::RnsPoly s2 = s;
  s2.mul_inplace(s);
  poly::RnsPoly expect = c;
  expect.mul_inplace(s2);  // c * s'

  poly::RnsPoly phase = out0;
  phase.fma_inplace(out1, s);
  phase.sub_inplace(expect);
  phase.to_coeff();
  const double bound =
      ckks::keyswitch_noise_bound(f.ctx->params(), level);
  for (std::size_t l = 0; l < phase.limbs(); ++l) {
    const rns::Modulus& q = f.ctx->poly_context()->modulus(l);
    for (u64 v : phase.limb(l)) {
      ASSERT_LE(std::abs(static_cast<double>(q.to_centered(v))), bound)
          << "limb " << l;
    }
  }
}

TEST(KeySwitcher, FullLevelCiphertextRejected) {
  Fixture f;
  const ckks::RelinKey rlk = f.keygen.relin_key(f.sk);
  ckks::KeySwitcher ks(f.ctx);
  poly::RnsPoly c = f.ctx->make_poly(3, poly::Domain::kCoeff);
  ckks::KeySwitchScratch scratch;
  poly::RnsPoly o0 = f.ctx->make_poly(1, poly::Domain::kEval);
  poly::RnsPoly o1 = f.ctx->make_poly(1, poly::Domain::kEval);
  EXPECT_THROW(ks.switch_key(c, rlk.key, scratch, o0, o1), InvalidArgument);
}

TEST(Evaluator, RelinearizedMatchesThreeComponentDecrypt) {
  Fixture f;
  const ckks::RelinKey rlk = f.keygen.relin_key(f.sk);
  const auto za = random_slots(f.encoder.slots(), 21);
  const auto zb = random_slots(f.encoder.slots(), 22);
  const ckks::Ciphertext ca = f.enc.encrypt(f.encoder.encode(za, 2));
  const ckks::Ciphertext cb = f.enc.encrypt(f.encoder.encode(zb, 2));
  const ckks::Ciphertext prod3 = f.eval.mul(ca, cb);

  ckks::Ciphertext prod2 = prod3;
  f.eval.relinearize_inplace(prod2, rlk);
  ASSERT_EQ(prod2.size(), 2u);
  EXPECT_EQ(prod2.limbs(), prod3.limbs());
  EXPECT_DOUBLE_EQ(prod2.scale, prod3.scale);

  // Both decrypts see the same message; the relinearized one adds only
  // the key-switch noise.
  const auto direct = f.encoder.decode(f.dec.decrypt(prod3));
  const auto relin = f.encoder.decode(f.dec.decrypt(prod2));
  const double tol = ckks::slot_error_bound(
      ckks::keyswitch_noise_bound(f.ctx->params(), prod2.limbs()),
      prod2.scale);
  for (std::size_t i = 0; i < direct.size(); ++i) {
    ASSERT_NEAR(direct[i].real(), relin[i].real(), tol) << i;
    ASSERT_NEAR(direct[i].imag(), relin[i].imag(), tol) << i;
  }
  // And the product still matches the cleartext computation.
  for (std::size_t i = 0; i < za.size(); ++i) {
    const auto expect = za[i] * zb[i];
    ASSERT_NEAR(relin[i].real(), expect.real(), 5e-3) << i;
    ASSERT_NEAR(relin[i].imag(), expect.imag(), 5e-3) << i;
  }
  // Relinearized ciphertexts multiply again (the depth story).
  EXPECT_NO_THROW(f.eval.mul(prod2, prod2));
  EXPECT_THROW(f.eval.mul(prod3, prod3), InvalidArgument);
}

TEST(Evaluator, RotateActsAsLeftCyclicShift) {
  Fixture f;
  const std::size_t slots = f.encoder.slots();
  const auto z = random_slots(slots, 23);
  const ckks::Ciphertext ct = f.enc.encrypt(f.encoder.encode(z, 2));
  const std::vector<int> steps = {1, 2, -1, 7};
  const ckks::GaloisKeys gks = f.keygen.galois_keys(f.sk, steps);

  for (const int step : steps) {
    const ckks::Ciphertext rot = f.eval.rotate(ct, step, gks);
    EXPECT_EQ(rot.size(), 2u);
    EXPECT_EQ(rot.limbs(), ct.limbs());
    const auto got = f.encoder.decode(f.dec.decrypt(rot));
    for (std::size_t i = 0; i < slots; ++i) {
      const auto expect =
          z[(i + static_cast<std::size_t>(step + 2 * (int)slots)) % slots];
      ASSERT_NEAR(got[i].real(), expect.real(), 1e-3)
          << "step " << step << " slot " << i;
      ASSERT_NEAR(got[i].imag(), expect.imag(), 1e-3)
          << "step " << step << " slot " << i;
    }
  }
}

TEST(Evaluator, RotationRoundTripsAcrossThreadCounts) {
  // rotate by k then -k restores the message, and the round-tripped
  // ciphertext is bit-identical across the scalar backend and pools of
  // 1/2/8 workers (the repo-wide determinism contract).
  const auto run = [](std::shared_ptr<backend::PolyBackend> be) {
    Fixture f(std::move(be));
    const auto z = random_slots(f.encoder.slots(), 24);
    const ckks::Ciphertext ct = f.enc.encrypt(f.encoder.encode(z, 2));
    const std::vector<int> steps = {3, -3};
    const ckks::GaloisKeys gks = f.keygen.galois_keys(f.sk, steps);
    const ckks::Ciphertext back =
        f.eval.rotate(f.eval.rotate(ct, 3, gks), -3, gks);
    const auto got = f.encoder.decode(f.dec.decrypt(back));
    for (std::size_t i = 0; i < z.size(); ++i) {
      EXPECT_NEAR(got[i].real(), z[i].real(), 1e-3) << i;
      EXPECT_NEAR(got[i].imag(), z[i].imag(), 1e-3) << i;
    }
    return back;
  };
  const ckks::Ciphertext ref = run(std::make_shared<backend::ScalarBackend>());
  for (const std::size_t threads : {1u, 2u, 8u}) {
    expect_identical_ct(
        ref, run(std::make_shared<backend::ThreadPoolBackend>(threads)),
        "round trip at " + std::to_string(threads) + " threads");
  }
}

TEST(Evaluator, HoistedRotateManyMatchesNaiveBitForBit) {
  Fixture f;
  const auto z = random_slots(f.encoder.slots(), 25);
  const ckks::Ciphertext ct = f.enc.encrypt(f.encoder.encode(z, 2));
  const std::vector<int> steps = {1, 2, 4, -1, 5};
  const ckks::GaloisKeys gks = f.keygen.galois_keys(f.sk, steps);

  ckks::KeySwitchScratch scratch;
  const std::vector<ckks::Ciphertext> hoisted =
      f.eval.rotate_many(ct, steps, gks, &scratch);
  ASSERT_EQ(hoisted.size(), steps.size());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const ckks::Ciphertext naive = f.eval.rotate(ct, steps[i], gks);
    expect_identical_ct(naive, hoisted[i],
                        "step " + std::to_string(steps[i]));
  }
}

TEST(Evaluator, KeySwitchPipelineIsKernelArchInvariant) {
  // Forced-arch matrix: the relinearize -> rescale -> rotate pipeline
  // (covering the fused gadget-accumulate, sub_mul_scalar and negate_add
  // paths on every tier) must produce bit-identical ciphertexts whether
  // the portable, AVX2 or AVX-512/IFMA kernels execute it.
  struct ArchGuard {
    ~ArchGuard() {
      simd::set_kernel_arch_for_testing(simd::detected_kernel_arch());
    }
  } guard;
  const auto run = [](simd::KernelArch arch) {
    simd::set_kernel_arch_for_testing(arch);
    Fixture f;
    const auto z = random_slots(f.encoder.slots(), 91);
    const ckks::Ciphertext ct = f.enc.encrypt(f.encoder.encode(z, 2));
    const ckks::RelinKey rlk = f.keygen.relin_key(f.sk);
    const std::vector<int> steps = {5};
    const ckks::GaloisKeys gks = f.keygen.galois_keys(f.sk, steps);
    ckks::Ciphertext prod = f.eval.mul(ct, ct);
    f.eval.relinearize_inplace(prod, rlk);
    f.eval.rescale_inplace(prod);
    return f.eval.rotate(prod, 5, gks);
  };
  std::vector<simd::KernelArch> arches = {simd::KernelArch::kPortable};
  if (simd::avx2_selectable()) arches.push_back(simd::KernelArch::kAvx2);
  if (simd::avx512ifma_selectable())
    arches.push_back(simd::KernelArch::kAvx512Ifma);
  const ckks::Ciphertext ref = run(arches[0]);
  for (std::size_t i = 1; i < arches.size(); ++i) {
    expect_identical_ct(ref, run(arches[i]),
                        std::string("arch ") +
                            simd::kernel_arch_name(arches[i]));
  }
}

TEST(Evaluator, RelinearizationIsThreadCountInvariant) {
  const auto run = [](std::shared_ptr<backend::PolyBackend> be) {
    Fixture f(std::move(be));
    const auto za = random_slots(f.encoder.slots(), 26);
    const auto zb = random_slots(f.encoder.slots(), 27);
    ckks::Ciphertext prod = f.eval.mul(f.enc.encrypt(f.encoder.encode(za, 2)),
                                       f.enc.encrypt(f.encoder.encode(zb, 2)));
    f.eval.relinearize_inplace(prod, f.keygen.relin_key(f.sk));
    return prod;
  };
  const ckks::Ciphertext ref = run(std::make_shared<backend::ScalarBackend>());
  for (const std::size_t threads : {1u, 2u, 8u}) {
    expect_identical_ct(
        ref, run(std::make_shared<backend::ThreadPoolBackend>(threads)),
        "relinearization at " + std::to_string(threads) + " threads");
  }
}

TEST(Evaluator, KeySwitchArgumentValidation) {
  Fixture f;
  const ckks::RelinKey rlk = f.keygen.relin_key(f.sk);
  const std::vector<int> one_step = {1};
  const ckks::GaloisKeys gks = f.keygen.galois_keys(f.sk, one_step);
  const auto z = random_slots(f.encoder.slots(), 28);

  // Full-level inputs must rescale/mod-switch first (special modulus).
  ckks::Ciphertext full = f.enc.encrypt(f.encoder.encode(z, 3));
  EXPECT_THROW(f.eval.rotate(full, 1, gks), InvalidArgument);
  ckks::Ciphertext full3 = f.eval.mul(full, full);
  EXPECT_THROW(f.eval.relinearize_inplace(full3, rlk), InvalidArgument);
  EXPECT_EQ(full3.size(), 3u);  // the failed call must not mutate its input

  // Relinearize needs 3 components; rotate needs 2.
  ckks::Ciphertext two = f.enc.encrypt(f.encoder.encode(z, 2));
  EXPECT_THROW(f.eval.relinearize_inplace(two, rlk), InvalidArgument);
  ckks::Ciphertext three = f.eval.mul(two, two);
  EXPECT_THROW(f.eval.rotate(three, 1, gks), InvalidArgument);

  // Missing step and mismatched key kinds are rejected.
  EXPECT_THROW(f.eval.rotate(two, 2, gks), InvalidArgument);
  ckks::GaloisKeys wrong_kind = gks;
  wrong_kind.keys[0].kind = ckks::KeySwitchKey::Kind::kRelin;
  EXPECT_THROW(f.eval.rotate(two, 1, wrong_kind), InvalidArgument);
}

TEST(VerifyDecode, ReportsPassAndFailure) {
  Fixture f;
  const auto z = random_slots(f.encoder.slots(), 29);
  const ckks::Ciphertext ct = f.enc.encrypt(f.encoder.encode(z, 2));

  const ckks::VerifyReport pass = ckks::verify_decode(
      *f.ctx, ct, f.dec, f.encoder, z);
  EXPECT_TRUE(pass.ok);
  EXPECT_GT(pass.precision_bits, 10.0);
  EXPECT_LE(pass.max_abs_error, pass.bound);

  // An impossible bound fails; a wrong expectation fails loudly too.
  const ckks::VerifyReport fail_bound =
      ckks::verify_decode(*f.ctx, ct, f.dec, f.encoder, z, 1e-300);
  EXPECT_FALSE(fail_bound.ok);
  auto wrong = z;
  wrong[0] += 1.0;
  const ckks::VerifyReport fail_value =
      ckks::verify_decode(*f.ctx, ct, f.dec, f.encoder, wrong);
  EXPECT_FALSE(fail_value.ok);
  EXPECT_GE(fail_value.max_abs_error, 0.5);
}

TEST(KeySwitchEndToEnd, ClientKeysServeRemoteEvaluation) {
  // The full loop the subsystem exists for: the client generates keys and
  // ships them seed-compressed; a "server" (its own context handle +
  // thread pool) restores them, relinearizes a product and applies two
  // distinct rotations; the client decrypts and verifies the values. The
  // server result must be bit-identical across backends.
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  auto client = ckks::CkksContext::create(params);
  ckks::CkksEncoder encoder(client);
  ckks::KeyGenerator keygen(client);
  const ckks::SecretKey sk = keygen.secret_key();
  ckks::Encryptor enc(client, keygen.public_key(sk));
  ckks::Decryptor dec(client, sk);

  // Client: keys + inputs, all seed-compressed on the wire.
  engine::BatchKeyGenerator batch_kg(client, sk);
  const std::vector<int> steps = {1, 3};
  const std::vector<u8> rlk_wire =
      serialize_key_switch_key(client, batch_kg.relin_key().key, 44, true);
  const ckks::GaloisKeys gkeys = batch_kg.galois_keys(steps);
  std::vector<std::vector<u8>> gk_wire;
  for (const ckks::KeySwitchKey& k : gkeys.keys) {
    gk_wire.push_back(serialize_key_switch_key(client, k, 44, true));
  }
  const std::size_t slots = encoder.slots();
  const auto za = random_slots(slots, 30);
  const auto zb = random_slots(slots, 31);
  const std::vector<u8> ca_wire =
      serialize_ciphertext(enc.encrypt(encoder.encode(za, 2)), 44);
  const std::vector<u8> cb_wire =
      serialize_ciphertext(enc.encrypt(encoder.encode(zb, 2)), 44);

  // Server: deserialize everything, evaluate rotate(a*b, 1) + rotate(.., 3).
  const auto serve = [&](std::shared_ptr<backend::PolyBackend> be) {
    auto server = ckks::CkksContext::create(params, std::move(be));
    ckks::Evaluator eval(server);
    ckks::RelinKey rlk{deserialize_key_switch_key(server, rlk_wire)};
    ckks::GaloisKeys gks;
    gks.slots = server->slots();
    gks.steps = steps;
    for (const auto& wire : gk_wire) {
      gks.keys.push_back(deserialize_key_switch_key(server, wire));
    }
    ckks::Ciphertext prod =
        eval.mul(deserialize_ciphertext(server, ca_wire),
                 deserialize_ciphertext(server, cb_wire));
    ckks::KeySwitchScratch scratch;
    eval.relinearize_inplace(prod, rlk, &scratch);
    std::vector<ckks::Ciphertext> rots =
        eval.rotate_many(prod, steps, gks, &scratch);
    return serialize_ciphertext(eval.add(rots[0], rots[1]), 44);
  };

  const std::vector<u8> result_wire =
      serve(std::make_shared<backend::ThreadPoolBackend>(4));
  EXPECT_EQ(result_wire, serve(std::make_shared<backend::ScalarBackend>()))
      << "server result differs across backends";
  const ckks::Ciphertext result = deserialize_ciphertext(client, result_wire);

  // Client: verify the returned ciphertext decodes to rot1(ab) + rot3(ab).
  std::vector<std::complex<double>> expect(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    expect[i] = za[(i + 1) % slots] * zb[(i + 1) % slots] +
                za[(i + 3) % slots] * zb[(i + 3) % slots];
  }
  const ckks::VerifyReport report = ckks::verify_decode(
      *client, result, dec, encoder, expect, 5e-3);
  EXPECT_TRUE(report.ok) << "max error " << report.max_abs_error;
}

}  // namespace
}  // namespace abc
