#include <gtest/gtest.h>

#include "core/simulator.hpp"

namespace abc::core {
namespace {

ArchConfig small_config() {
  ArchConfig cfg = ArchConfig::paper_default();
  cfg.log_n = 13;
  cfg.fresh_limbs = 6;
  cfg.returned_limbs = 2;
  return cfg;
}

TEST(AbcFheSimulator, EncodeLatencyIsPositiveAndSane) {
  AbcFheSimulator sim(ArchConfig::paper_default());
  const double enc_ms = sim.encode_encrypt_ms();
  const double dec_ms = sim.decode_decrypt_ms();
  EXPECT_GT(enc_ms, 0.01);
  EXPECT_LT(enc_ms, 10.0);
  EXPECT_GT(dec_ms, 0.001);
  EXPECT_LT(dec_ms, 5.0);
  // Encryption at 24 limbs dwarfs decryption at 2 limbs (Fig. 2b).
  EXPECT_GT(enc_ms, 2.0 * dec_ms);
}

TEST(AbcFheSimulator, DualModeDoublesThroughput) {
  ArchConfig cfg = small_config();
  AbcFheSimulator sim(cfg);
  const auto one = sim.run(OperatingMode::kDualEncrypt, 1);
  const auto two = sim.run(OperatingMode::kDualEncrypt, 2);
  // Two jobs on two RSCs nearly overlap (shared DRAM only).
  EXPECT_LT(two.latency_ms, 1.6 * one.latency_ms);
  EXPECT_GT(two.throughput_per_s, 1.35 * one.throughput_per_s);
}

TEST(AbcFheSimulator, MoreLanesNeverSlower) {
  ArchConfig cfg = small_config();
  double prev = 1e30;
  for (int lanes : {1, 2, 4, 8, 16, 32}) {
    cfg.lanes = lanes;
    cfg.mse_width = 4 * lanes;  // MSE sized to the PNL pool as in the paper
    AbcFheSimulator sim(cfg);
    const double ms = sim.encode_encrypt_ms();
    EXPECT_LE(ms, prev * 1.0001) << lanes;
    prev = ms;
  }
}

TEST(AbcFheSimulator, MemoryBottleneckCapsLaneScaling) {
  // Paper Fig. 5(b): under LPDDR5 the benefit saturates around 8 lanes.
  ArchConfig cfg = ArchConfig::paper_default();
  cfg.enc_profile = EncryptProfile::public_key();  // ship both polynomials
  auto time_at = [&](int lanes) {
    cfg.lanes = lanes;
    cfg.mse_width = 4 * lanes;
    return AbcFheSimulator(cfg).encode_encrypt_ms();
  };
  const double t1 = time_at(1);
  const double t8 = time_at(8);
  const double t64 = time_at(64);
  EXPECT_GT(t1 / t8, 3.0);    // strong gains up to 8 lanes
  EXPECT_LT(t8 / t64, 1.7);   // diminishing beyond 8 (DRAM-bound)
}

TEST(AbcFheSimulator, OnChipGenerationAvoidsDramCollapse) {
  // Fig. 6(b): Base (everything from DRAM) vs TF-Gen vs All.
  ArchConfig all = ArchConfig::paper_default();
  ArchConfig tf_only = all;
  tf_only.placement.randomness_on_chip = false;
  ArchConfig base = tf_only;
  base.placement.twiddles_on_chip = false;

  const double t_all = AbcFheSimulator(all).encode_encrypt_ms();
  const double t_tf = AbcFheSimulator(tf_only).encode_encrypt_ms();
  const double t_base = AbcFheSimulator(base).encode_encrypt_ms();
  EXPECT_LT(t_all, t_tf);
  EXPECT_LT(t_tf, t_base);
  // The paper reports 8.2-9.3x Base -> All at bootstrappable parameters;
  // accept the same order of magnitude.
  EXPECT_GT(t_base / t_all, 4.0);
  EXPECT_LT(t_base / t_all, 20.0);
}

TEST(AbcFheSimulator, DramTrafficMatchesShippedBytes) {
  ArchConfig cfg = small_config();
  cfg.enc_profile = EncryptProfile::public_key();
  AbcFheSimulator sim(cfg);
  const auto rep = sim.run(OperatingMode::kDualEncrypt, 1);
  // Written bytes = 2 polynomials x limbs x N x packed width.
  const double expect_mb = 2.0 * cfg.fresh_limbs *
                           static_cast<double>(cfg.n()) *
                           cfg.int_coeff_bytes() / (1024.0 * 1024.0);
  EXPECT_NEAR(rep.dram_write_mb, expect_mb, expect_mb * 0.01);
  // Read bytes = message in + public key streams.
  EXPECT_GT(rep.dram_read_mb, 0.0);
}

TEST(AbcFheSimulator, SeedCompressionHalvesWriteTraffic) {
  ArchConfig pk = small_config();
  pk.enc_profile = EncryptProfile::public_key();
  ArchConfig sym = small_config();
  sym.enc_profile = EncryptProfile::symmetric_seeded();
  const auto rep_pk = AbcFheSimulator(pk).run(OperatingMode::kDualEncrypt, 1);
  const auto rep_sym =
      AbcFheSimulator(sym).run(OperatingMode::kDualEncrypt, 1);
  EXPECT_NEAR(rep_sym.dram_write_mb, rep_pk.dram_write_mb / 2.0,
              rep_pk.dram_write_mb * 0.02);
}

TEST(AbcFheSimulator, ConcurrentModeRunsBothJobKinds) {
  ArchConfig cfg = small_config();
  AbcFheSimulator sim(cfg);
  const auto rep = sim.run(OperatingMode::kConcurrent, 2);
  // Concurrent enc+dec finishes no later than enc alone plus dec alone.
  const double enc = sim.run(OperatingMode::kDualEncrypt, 1).latency_ms;
  const double dec = sim.run(OperatingMode::kDualDecrypt, 1).latency_ms;
  EXPECT_LT(rep.latency_ms, enc + dec);
  EXPECT_GE(rep.latency_ms, std::max(enc, dec) * 0.99);
}

TEST(AbcFheSimulator, DegreeSweepScalesWork) {
  ArchConfig cfg = ArchConfig::paper_default();
  double prev = 0;
  for (int log_n : {13, 14, 15, 16}) {
    cfg.log_n = log_n;
    const double ms = AbcFheSimulator(cfg).encode_encrypt_ms();
    EXPECT_GT(ms, prev) << log_n;  // bigger N, longer latency
    prev = ms;
  }
}

TEST(AbcFheSimulator, UtilizationBounded) {
  AbcFheSimulator sim(ArchConfig::paper_default());
  const auto rep = sim.run(OperatingMode::kDualEncrypt, 4);
  EXPECT_GT(rep.pnl_utilization, 0.0);
  EXPECT_LE(rep.pnl_utilization, 1.0 + 1e-9);
  EXPECT_GT(rep.mse_utilization, 0.0);
  EXPECT_LE(rep.mse_utilization, 1.0 + 1e-9);
}

}  // namespace
}  // namespace abc::core
