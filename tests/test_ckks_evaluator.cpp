#include <gtest/gtest.h>

#include <random>

#include "ckks/decryptor.hpp"
#include "ckks/encoder.hpp"
#include "ckks/encryptor.hpp"
#include "ckks/evaluator.hpp"

namespace abc::ckks {
namespace {

std::vector<std::complex<double>> random_slots(std::size_t count, u64 seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::complex<double>> v(count);
  for (auto& z : v) z = {dist(rng), dist(rng)};
  return v;
}

struct Fixture {
  std::shared_ptr<const CkksContext> ctx;
  CkksEncoder encoder;
  KeyGenerator keygen;
  SecretKey sk;
  Encryptor enc;
  Decryptor dec;
  Evaluator eval;

  explicit Fixture(int log_n = 10, std::size_t limbs = 4)
      : ctx(CkksContext::create(CkksParams::test_small(log_n, limbs))),
        encoder(ctx),
        keygen(ctx),
        sk(keygen.secret_key()),
        enc(ctx, keygen.public_key(sk)),
        dec(ctx, sk),
        eval(ctx) {}

  std::vector<std::complex<double>> roundtrip(const Ciphertext& ct) {
    Plaintext pt = dec.decrypt(ct);
    return encoder.decode(pt);
  }
};

TEST(CkksEvaluator, HomomorphicAddition) {
  Fixture f;
  const auto za = random_slots(f.encoder.slots(), 1);
  const auto zb = random_slots(f.encoder.slots(), 2);
  const Ciphertext ca = f.enc.encrypt(f.encoder.encode(za, 4));
  const Ciphertext cb = f.enc.encrypt(f.encoder.encode(zb, 4));
  const auto got = f.roundtrip(f.eval.add(ca, cb));
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].real(), za[i].real() + zb[i].real(), 1e-4);
    EXPECT_NEAR(got[i].imag(), za[i].imag() + zb[i].imag(), 1e-4);
  }
}

TEST(CkksEvaluator, HomomorphicSubtraction) {
  Fixture f;
  const auto za = random_slots(f.encoder.slots(), 3);
  const auto zb = random_slots(f.encoder.slots(), 4);
  const Ciphertext ca = f.enc.encrypt(f.encoder.encode(za, 4));
  const Ciphertext cb = f.enc.encrypt(f.encoder.encode(zb, 4));
  const auto got = f.roundtrip(f.eval.sub(ca, cb));
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].real(), za[i].real() - zb[i].real(), 1e-4);
  }
}

TEST(CkksEvaluator, AddPlain) {
  Fixture f;
  const auto za = random_slots(f.encoder.slots(), 5);
  const auto zb = random_slots(f.encoder.slots(), 6);
  const Ciphertext ca = f.enc.encrypt(f.encoder.encode(za, 4));
  const Plaintext pb = f.encoder.encode(zb, 4);
  const auto got = f.roundtrip(f.eval.add_plain(ca, pb));
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].real(), za[i].real() + zb[i].real(), 1e-4);
  }
}

TEST(CkksEvaluator, MulPlainWithRescale) {
  Fixture f;
  const auto za = random_slots(f.encoder.slots(), 7);
  const auto zb = random_slots(f.encoder.slots(), 8);
  const Ciphertext ca = f.enc.encrypt(f.encoder.encode(za, 4));
  const Plaintext pb = f.encoder.encode(zb, 4);
  Ciphertext prod = f.eval.mul_plain(ca, pb);
  EXPECT_NEAR(prod.scale, ca.scale * pb.scale, 1.0);
  f.eval.rescale_inplace(prod);
  EXPECT_EQ(prod.limbs(), 3u);
  const auto got = f.roundtrip(prod);
  for (std::size_t i = 0; i < got.size(); ++i) {
    const auto expect = za[i] * zb[i];
    EXPECT_NEAR(got[i].real(), expect.real(), 5e-3) << i;
    EXPECT_NEAR(got[i].imag(), expect.imag(), 5e-3) << i;
  }
}

TEST(CkksEvaluator, CiphertextMultiplicationThreeComponents) {
  Fixture f;
  const auto za = random_slots(f.encoder.slots(), 9);
  const auto zb = random_slots(f.encoder.slots(), 10);
  const Ciphertext ca = f.enc.encrypt(f.encoder.encode(za, 4));
  const Ciphertext cb = f.enc.encrypt(f.encoder.encode(zb, 4));
  Ciphertext prod = f.eval.mul(ca, cb);
  EXPECT_EQ(prod.size(), 3u);
  f.eval.rescale_inplace(prod);
  const auto got = f.roundtrip(prod);
  for (std::size_t i = 0; i < got.size(); ++i) {
    const auto expect = za[i] * zb[i];
    EXPECT_NEAR(got[i].real(), expect.real(), 5e-3) << i;
    EXPECT_NEAR(got[i].imag(), expect.imag(), 5e-3) << i;
  }
}

TEST(CkksEvaluator, RescaleDividesScale) {
  Fixture f;
  const Ciphertext ct = f.enc.encrypt(
      f.encoder.encode(random_slots(f.encoder.slots(), 11), 4));
  Ciphertext r = ct;
  const double q_last = static_cast<double>(
      f.ctx->poly_context()->modulus(3).value());
  f.eval.rescale_inplace(r);
  EXPECT_DOUBLE_EQ(r.scale, ct.scale / q_last);
  EXPECT_EQ(r.limbs(), ct.limbs() - 1);
}

TEST(CkksEvaluator, ModSwitchPreservesMessage) {
  Fixture f;
  const auto slots = random_slots(f.encoder.slots(), 12);
  Ciphertext ct = f.enc.encrypt(f.encoder.encode(slots, 4));
  f.eval.mod_switch_to_inplace(ct, 2);
  EXPECT_EQ(ct.limbs(), 2u);
  const auto got = f.roundtrip(ct);
  EXPECT_GT(compare_slots(slots, got).precision_bits, 10.0);
}

TEST(CkksEvaluator, MismatchedLevelsRejected) {
  Fixture f;
  const Ciphertext a =
      f.enc.encrypt(f.encoder.encode(random_slots(4, 13), 4));
  const Ciphertext b =
      f.enc.encrypt(f.encoder.encode(random_slots(4, 14), 3));
  EXPECT_THROW(f.eval.add(a, b), InvalidArgument);
  EXPECT_THROW(f.eval.mul(a, b), InvalidArgument);
}

TEST(CkksEvaluator, DepthTwoComputation) {
  // (a*b + c) * d across two rescales: exercises scale management.
  Fixture f(10, 5);
  const std::size_t m = f.encoder.slots();
  const auto za = random_slots(m, 15);
  const auto zb = random_slots(m, 16);
  const auto zd = random_slots(m, 17);

  Ciphertext ca = f.enc.encrypt(f.encoder.encode(za, 5));
  const Plaintext pb = f.encoder.encode(zb, 5);
  Ciphertext t = f.eval.mul_plain(ca, pb);
  f.eval.rescale_inplace(t);  // level 4, scale ~ Delta^2 / q4

  // Multiply by d at the matching level; encode d at t's limb count and
  // scale-match by encoding at default scale (tolerated mismatch ~q/Delta).
  const Plaintext pd = f.encoder.encode(zd, t.limbs());
  Ciphertext t2 = f.eval.mul_plain(t, pd);
  f.eval.rescale_inplace(t2);

  const auto got = f.roundtrip(t2);
  for (std::size_t i = 0; i < got.size(); ++i) {
    const auto expect = za[i] * zb[i] * zd[i];
    EXPECT_NEAR(got[i].real(), expect.real(), 5e-2) << i;
    EXPECT_NEAR(got[i].imag(), expect.imag(), 5e-2) << i;
  }
}

}  // namespace
}  // namespace abc::ckks
