#include <gtest/gtest.h>

#include "rns/ntt_prime.hpp"
#include "transform/twiddle.hpp"

namespace abc::xf {
namespace {

TEST(OtfModularTwiddleGen, MatchesTablesAllStages) {
  const rns::Modulus q(rns::select_prime_chain(36, 12, 1)[0]);
  NttTables tables(q, 12);
  for (int stage = 0; stage < 12; ++stage) {
    EXPECT_TRUE(OtfModularTwiddleGen::matches_tables(tables, stage))
        << "stage " << stage;
  }
}

TEST(OtfModularTwiddleGen, GeometricSequence) {
  const rns::Modulus q(rns::select_prime_chain(36, 10, 1)[0]);
  NttTables tables(q, 10);
  OtfModularTwiddleGen gen(tables, 5);
  EXPECT_EQ(gen.count(), 32u);
  u64 expected = gen.seed();
  for (std::size_t j = 0; j < gen.count(); ++j) {
    EXPECT_EQ(gen.next(), expected);
    expected = q.mul(expected, gen.step());
  }
}

TEST(OtfModularTwiddleGen, ExhaustionGuard) {
  const rns::Modulus q(rns::select_prime_chain(36, 8, 1)[0]);
  NttTables tables(q, 8);
  OtfModularTwiddleGen gen(tables, 2);
  for (int i = 0; i < 4; ++i) gen.next();
  EXPECT_THROW(gen.next(), LogicError);
}

TEST(OtfComplexTwiddleGen, ErrorShrinksWithReseedInterval) {
  CkksDwtPlan plan(14);
  const int stage = 13;  // largest stage: 8192 twiddles
  const double err_none =
      OtfComplexTwiddleGen::max_error_vs_exact(plan, stage, 1u << 20);
  const double err_256 =
      OtfComplexTwiddleGen::max_error_vs_exact(plan, stage, 256);
  const double err_16 =
      OtfComplexTwiddleGen::max_error_vs_exact(plan, stage, 16);
  EXPECT_LT(err_16, err_256);
  EXPECT_LT(err_256, err_none);
  // With reseeding every 128 steps the drift stays near double precision.
  const double err_128 =
      OtfComplexTwiddleGen::max_error_vs_exact(plan, stage, 128);
  EXPECT_LT(err_128, 1e-13);
}

TEST(OtfComplexTwiddleGen, CountsReseeds) {
  CkksDwtPlan plan(10);
  OtfComplexTwiddleGen gen(plan, 9, 64);
  for (std::size_t i = 0; i < gen.count(); ++i) gen.next();
  EXPECT_EQ(gen.reseeds(), 512u / 64 - 1);
}

TEST(TwiddleSeedMemory, PaperBudgetReproduced) {
  // Paper Sec. IV-B: twiddle tables would need ~8.25 MB; the OTF TF Gen
  // needs ~26.4 KB of seed memory -> >99% reduction.
  TwiddleSeedMemoryModel model;  // defaults: N=2^16, 24 primes, 44b/55b
  const double seed_kb = model.total_seed_bytes() / 1024.0;
  const double table_mb = model.full_table_bytes() / (1024.0 * 1024.0);
  EXPECT_GT(seed_kb, 5.0);
  EXPECT_LT(seed_kb, 60.0);
  EXPECT_GT(table_mb, 5.0);
  EXPECT_LT(table_mb, 12.0);
  const double reduction = 1.0 - model.total_seed_bytes() / model.full_table_bytes();
  EXPECT_GT(reduction, 0.99);
}

TEST(TwiddleSeedMemory, ScalesWithParameters) {
  TwiddleSeedMemoryModel small{.log_n = 13, .num_primes = 4};
  TwiddleSeedMemoryModel large{.log_n = 16, .num_primes = 24};
  EXPECT_LT(small.total_seed_bytes(), large.total_seed_bytes());
  EXPECT_LT(small.full_table_bytes(), large.full_table_bytes());
  // Shorter reseed interval costs more seed memory.
  TwiddleSeedMemoryModel dense{.reseed_interval = 16};
  TwiddleSeedMemoryModel sparse{.reseed_interval = 512};
  EXPECT_GT(dense.fft_seed_bytes(), sparse.fft_seed_bytes());
}

}  // namespace
}  // namespace abc::xf
