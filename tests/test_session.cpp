// BatchDecryptor and ClientSession: the decrypt/verify side of the engine
// layer plus the full-session pipeline facade built on FanOutCore.

#include <gtest/gtest.h>

#include <complex>
#include <random>

#include "backend/scalar_backend.hpp"
#include "backend/thread_pool_backend.hpp"
#include "engine/batch_decryptor.hpp"
#include "engine/batch_encryptor.hpp"
#include "engine/client_session.hpp"
#include "simd/simd_caps.hpp"

namespace abc {
namespace {

using engine::BatchDecryptor;
using engine::BatchEncryptor;

std::vector<std::vector<std::complex<double>>> random_batch(
    std::size_t batch, std::size_t slots, u64 seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::vector<std::complex<double>>> msgs(batch);
  for (auto& m : msgs) {
    m.resize(slots);
    for (auto& z : m) z = {dist(rng), dist(rng)};
  }
  return msgs;
}

void expect_identical_plaintexts(const ckks::Plaintext& a,
                                 const ckks::Plaintext& b) {
  ASSERT_EQ(a.limbs(), b.limbs());
  EXPECT_EQ(a.scale, b.scale);
  for (std::size_t l = 0; l < a.limbs(); ++l) {
    const std::span<const u64> la = a.poly.limb(l);
    const std::span<const u64> lb = b.poly.limb(l);
    for (std::size_t j = 0; j < la.size(); ++j) {
      ASSERT_EQ(la[j], lb[j]) << "limb " << l << " coeff " << j;
    }
  }
}

struct RoundTrip {
  std::shared_ptr<const ckks::CkksContext> ctx;
  ckks::SecretKey sk;
  std::vector<std::vector<std::complex<double>>> msgs;
  std::vector<ckks::Ciphertext> cts;
};

/// Encrypts the same batch on a fresh context over @p backend; the
/// ciphertexts are backend-invariant (tests/test_engine.cpp), so the
/// decryption inputs are bit-identical across calls.
RoundTrip make_round_trip(const ckks::CkksParams& params,
                          std::shared_ptr<backend::PolyBackend> backend,
                          std::size_t batch) {
  auto ctx = ckks::CkksContext::create(params, std::move(backend));
  ckks::KeyGenerator keygen(ctx);
  ckks::SecretKey sk = keygen.secret_key();
  auto msgs = random_batch(batch, ctx->slots(), 1234);
  BatchEncryptor enc(ctx, sk);
  auto cts = enc.encrypt_batch(msgs, ctx->max_limbs());
  return RoundTrip{std::move(ctx), std::move(sk), std::move(msgs),
                   std::move(cts)};
}

TEST(BatchDecryptor, MatchesSerialDecryptorBitForBit) {
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  RoundTrip rt = make_round_trip(
      params, std::make_shared<backend::ThreadPoolBackend>(4), 5);
  ckks::Decryptor serial(rt.ctx, rt.sk);
  BatchDecryptor eng(rt.ctx, rt.sk);
  const auto pts = eng.decrypt_batch(rt.cts);
  ASSERT_EQ(pts.size(), rt.cts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    expect_identical_plaintexts(serial.decrypt(rt.cts[i]), pts[i]);
  }
}

TEST(BatchDecryptor, PlaintextsAreThreadCountInvariant) {
  // The engine determinism contract on the download side: ScalarBackend,
  // 1-, 2- and 8-thread pools produce byte-identical plaintexts.
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  RoundTrip ref_rt = make_round_trip(
      params, std::make_shared<backend::ScalarBackend>(), 6);
  BatchDecryptor ref_eng(ref_rt.ctx, ref_rt.sk);
  const auto ref = ref_eng.decrypt_batch(ref_rt.cts);
  for (std::size_t threads : {1u, 2u, 8u}) {
    RoundTrip rt = make_round_trip(
        params, std::make_shared<backend::ThreadPoolBackend>(threads), 6);
    BatchDecryptor eng(rt.ctx, rt.sk);
    const auto got = eng.decrypt_batch(rt.cts);
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      expect_identical_plaintexts(ref[i], got[i]);
    }
  }
}

TEST(BatchDecryptor, RoundTripIsKernelArchInvariant) {
  // Forced-arch matrix over the whole client round trip (keygen,
  // encrypt batch — the fused negate_add path — and decrypt batch — the
  // fused fma_into path): plaintexts must be byte-identical whether the
  // portable, AVX2 or AVX-512/IFMA kernels executed.
  struct ArchGuard {
    ~ArchGuard() {
      simd::set_kernel_arch_for_testing(simd::detected_kernel_arch());
    }
  } guard;
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  const auto run = [&](simd::KernelArch arch) {
    simd::set_kernel_arch_for_testing(arch);
    RoundTrip rt = make_round_trip(
        params, std::make_shared<backend::ScalarBackend>(), 4);
    BatchDecryptor eng(rt.ctx, rt.sk);
    return eng.decrypt_batch(rt.cts);
  };
  std::vector<simd::KernelArch> arches = {simd::KernelArch::kPortable};
  if (simd::avx2_selectable()) arches.push_back(simd::KernelArch::kAvx2);
  if (simd::avx512ifma_selectable())
    arches.push_back(simd::KernelArch::kAvx512Ifma);
  const auto ref = run(arches[0]);
  for (std::size_t i = 1; i < arches.size(); ++i) {
    const auto got = run(arches[i]);
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t p = 0; p < ref.size(); ++p) {
      expect_identical_plaintexts(ref[p], got[p]);
    }
  }
}

TEST(BatchDecryptor, DecodeBatchRecoversMessages) {
  const ckks::CkksParams params = ckks::CkksParams::test_small(11, 4);
  RoundTrip rt = make_round_trip(
      params, std::make_shared<backend::ThreadPoolBackend>(4), 4);
  BatchDecryptor eng(rt.ctx, rt.sk);
  const auto decoded = eng.decrypt_decode_batch(rt.cts);
  ASSERT_EQ(decoded.size(), rt.msgs.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    const ckks::PrecisionReport r =
        ckks::compare_slots(rt.msgs[i], decoded[i]);
    EXPECT_GT(r.precision_bits, 12.0) << "message " << i;
  }
}

TEST(BatchDecryptor, EmptyBatchIsFine) {
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  auto ctx = ckks::CkksContext::create(params);
  ckks::KeyGenerator keygen(ctx);
  BatchDecryptor eng(ctx, keygen.secret_key());
  EXPECT_TRUE(eng.decrypt_batch({}).empty());
  EXPECT_TRUE(eng.decrypt_decode_batch({}).empty());
  const engine::BatchVerifyReport report = eng.verify_batch({}, {});
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.passed, 0u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_TRUE(report.items.empty());
}

TEST(BatchDecryptor, WrongLevelComponentThrowsNotAborts) {
  // A ciphertext whose components disagree on the level is malformed; the
  // pooled batch must surface that as a catchable exception, exactly as a
  // serial decrypt would.
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  RoundTrip rt = make_round_trip(
      params, std::make_shared<backend::ThreadPoolBackend>(2), 2);
  BatchDecryptor eng(rt.ctx, rt.sk);
  rt.cts[1].components[1].drop_last_limb();  // c1 now one level below c0
  EXPECT_THROW(eng.decrypt_batch(rt.cts), InvalidArgument);
}

TEST(BatchDecryptor, BadComponentCountThrowsNotAborts) {
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  RoundTrip rt = make_round_trip(
      params, std::make_shared<backend::ThreadPoolBackend>(2), 2);
  BatchDecryptor eng(rt.ctx, rt.sk);
  rt.cts[0].components.pop_back();  // 1-component "ciphertext"
  EXPECT_THROW(eng.decrypt_batch(rt.cts), InvalidArgument);
}

TEST(BatchDecryptor, VerifyBatchFlagsCorruptedComponent) {
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  RoundTrip rt = make_round_trip(
      params, std::make_shared<backend::ThreadPoolBackend>(4), 4);
  BatchDecryptor eng(rt.ctx, rt.sk);
  const engine::BatchVerifyReport clean = eng.verify_batch(rt.cts, rt.msgs);
  EXPECT_TRUE(clean.ok);
  EXPECT_EQ(clean.passed, rt.cts.size());
  EXPECT_EQ(clean.failed, 0u);

  // Corrupt one residue of one item's c0: that item decrypts to garbage
  // and must fail its bound; the others still pass.
  const u64 q = rt.ctx->poly_context()->modulus(0).value();
  std::span<u64> limb = rt.cts[2].c(0).limb(0);
  limb[7] = (limb[7] + q / 2) % q;
  const engine::BatchVerifyReport report = eng.verify_batch(rt.cts, rt.msgs);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.passed, rt.cts.size() - 1);
  EXPECT_FALSE(report.items[2].ok);
  EXPECT_TRUE(report.items[0].ok);
  EXPECT_GT(report.worst_abs_error, report.items[2].bound);
  // The fold mirrors the worst item.
  EXPECT_EQ(report.worst_abs_error, report.items[2].max_abs_error);
}

TEST(BatchDecryptor, VerifyBatchRequiresMatchingExpectedCount) {
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  RoundTrip rt = make_round_trip(
      params, std::make_shared<backend::ThreadPoolBackend>(2), 3);
  BatchDecryptor eng(rt.ctx, rt.sk);
  const auto short_expected =
      std::span(rt.msgs.data(), rt.msgs.size() - 1);
  EXPECT_THROW(eng.verify_batch(rt.cts, short_expected), InvalidArgument);
}

TEST(ClientSession, FullRoundTripPassesVerifyBounds) {
  // The acceptance-criteria loop: keygen -> seed-compressed key bundle ->
  // encrypt batch -> wire envelope -> decrypt/verify batch, one facade.
  const ckks::CkksParams params = ckks::CkksParams::test_small(11, 4);
  auto ctx = ckks::CkksContext::create(
      params, std::make_shared<backend::ThreadPoolBackend>(4));
  engine::SessionConfig cfg;
  cfg.rotations = {1, 4};
  engine::ClientSession session(ctx, cfg);

  // The key bundle is seed-compressed and restores server-side.
  const engine::KeyBundle& keys = session.key_bundle();
  EXPECT_GT(keys.total_bytes(), 0u);
  const ckks::PublicKey pk =
      ckks::deserialize_public_key(ctx, keys.public_key);
  EXPECT_EQ(pk.b.limbs(), ctx->max_limbs());
  const ckks::KeySwitchKey rlk =
      ckks::deserialize_key_switch_key(ctx, keys.relin_key);
  EXPECT_EQ(rlk.kind, ckks::KeySwitchKey::Kind::kRelin);
  ASSERT_EQ(keys.galois_keys.size(), cfg.rotations.size());
  const ckks::KeySwitchKey gk =
      ckks::deserialize_key_switch_key(ctx, keys.galois_keys[0]);
  EXPECT_EQ(gk.galois_elt, ckks::galois_element(1, ctx->n()));
  // Bundles are cached: a second call serializes nothing new.
  EXPECT_EQ(&keys, &session.key_bundle());

  // Round trip through the wire envelope; the echoed upload must verify
  // against the original messages within the fresh+keyswitch bound.
  const auto msgs = random_batch(6, ctx->slots(), 99);
  const std::vector<u8> envelope = session.upload(msgs, ctx->max_limbs());
  const engine::BatchVerifyReport report =
      session.verify_download(envelope, msgs);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.passed, msgs.size());
  EXPECT_GT(report.worst_precision_bits, 12.0);

  // decrypt_batch recovers the slots too (the non-verifying path).
  const auto cts = session.encrypt(msgs, ctx->max_limbs());
  const auto decoded = session.decrypt_batch(cts);
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    EXPECT_GT(ckks::compare_slots(msgs[i], decoded[i]).precision_bits, 12.0);
  }
}

TEST(ClientSession, SessionsSharingAContextHoldDistinctSecrets) {
  // Secret ids are context-wide (CkksContext::reserve_secret_ids): two
  // sessions on one warm context must never silently regenerate the same
  // secret for what the caller intends to be different users.
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  auto ctx = ckks::CkksContext::create(params);
  engine::ClientSession a(ctx);
  engine::ClientSession b(ctx);
  ASSERT_NE(a.secret_key().stream_id, b.secret_key().stream_id);
  bool differs = false;
  const std::span<const u64> sa = a.secret_key().s.limb(0);
  const std::span<const u64> sb = b.secret_key().s.limb(0);
  for (std::size_t j = 0; j < sa.size() && !differs; ++j) {
    differs = sa[j] != sb[j];
  }
  EXPECT_TRUE(differs) << "two sessions share one secret key";
}

TEST(ClientSession, OversizedExpectedSlotsThrowNotRead) {
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  auto ctx = ckks::CkksContext::create(params);
  engine::ClientSession session(ctx);
  const auto msgs = random_batch(2, ctx->slots(), 5);
  const auto cts = session.encrypt(msgs, ctx->max_limbs());
  auto too_long = msgs;
  too_long[1].resize(ctx->slots() + 3);  // more than a ciphertext decodes
  EXPECT_THROW(session.verify(cts, too_long), InvalidArgument);
}

TEST(ClientSession, PublicKeyModeRoundTrips) {
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  auto ctx = ckks::CkksContext::create(
      params, std::make_shared<backend::ThreadPoolBackend>(2));
  engine::SessionConfig cfg;
  cfg.mode = ckks::EncryptMode::kPublicKey;
  engine::ClientSession session(ctx, cfg);
  EXPECT_EQ(session.encrypt_engine().mode(), ckks::EncryptMode::kPublicKey);

  const auto msgs = random_batch(3, ctx->slots(), 7);
  const engine::BatchVerifyReport report =
      session.verify(session.encrypt(msgs, ctx->max_limbs()), msgs);
  EXPECT_TRUE(report.ok) << "worst error " << report.worst_abs_error;
}

TEST(ClientSession, VerifyDownloadOfEmptyBatchIsVacuouslyOk) {
  // An empty response envelope against an empty expectation is a valid,
  // passing report — not a crash and not a failure.
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  auto ctx = ckks::CkksContext::create(params);
  engine::ClientSession session(ctx);
  const std::vector<u8> envelope =
      ckks::serialize_ciphertext_batch({}, session.config().bits_per_coeff);
  const engine::BatchVerifyReport report = session.verify_download(envelope, {});
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.passed, 0u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_TRUE(report.items.empty());
  EXPECT_EQ(report.worst_abs_error, 0.0);
}

TEST(ClientSession, VerifyDownloadReportsEveryItemFailing) {
  // All-items-failing is a coherent report, not an exception: corrupt one
  // residue of every ciphertext before re-serializing the envelope.
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  auto ctx = ckks::CkksContext::create(params);
  engine::ClientSession session(ctx);
  const auto msgs = random_batch(3, ctx->slots(), 23);
  auto cts = session.encrypt(msgs, ctx->max_limbs());
  const u64 q = ctx->poly_context()->modulus(0).value();
  for (auto& ct : cts) {
    std::span<u64> limb = ct.c(0).limb(0);
    limb[3] = (limb[3] + q / 2) % q;
  }
  const std::vector<u8> envelope =
      ckks::serialize_ciphertext_batch(cts, session.config().bits_per_coeff);
  const engine::BatchVerifyReport report =
      session.verify_download(envelope, msgs);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.passed, 0u);
  EXPECT_EQ(report.failed, msgs.size());
  for (const ckks::VerifyReport& item : report.items) EXPECT_FALSE(item.ok);
}

TEST(ClientSession, RetryRecoversFromATransientTransportFault) {
  // Round 1's response envelope is corrupted in flight (parse fails, a
  // whole-round error); round 2 echoes cleanly. Every item is sent twice
  // and the session ends green.
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  auto ctx = ckks::CkksContext::create(
      params, std::make_shared<backend::ThreadPoolBackend>(2));
  engine::ClientSession session(ctx);
  const auto msgs = random_batch(3, ctx->slots(), 31);
  int calls = 0;
  const auto flaky = [&](std::span<const u8> upload) {
    std::vector<u8> response(upload.begin(), upload.end());
    if (++calls == 1) response.resize(response.size() / 2);
    return response;
  };
  const engine::ClientSession::RetryReport report =
      session.round_trip_with_retry(msgs, ctx->max_limbs(), flaky);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.rounds, 2u);
  ASSERT_EQ(report.round_errors.size(), 1u);
  EXPECT_FALSE(report.round_errors[0].empty());
  for (std::size_t attempts : report.attempts) EXPECT_EQ(attempts, 2u);
  EXPECT_TRUE(report.verify.ok);
  EXPECT_EQ(report.verify.passed, msgs.size());
}

TEST(ClientSession, RetryResendsOnlyFailedItemsUnderFreshStreamIds) {
  // The server garbles item 1 on the first round only. Round 2 must carry
  // exactly that item, re-encrypted under a freshly reserved stream id —
  // stream ids are NEVER reused, even for an identical message.
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  auto ctx = ckks::CkksContext::create(
      params, std::make_shared<backend::ThreadPoolBackend>(2));
  engine::ClientSession session(ctx);
  const auto msgs = random_batch(3, ctx->slots(), 37);
  const u64 q = ctx->poly_context()->modulus(0).value();
  int calls = 0;
  std::vector<std::vector<u64>> upload_stream_ids;  // per round, per item
  const auto server = [&](std::span<const u8> upload) {
    auto cts = ckks::deserialize_ciphertext_batch(ctx, upload);
    std::vector<u64> ids;
    for (const auto& ct : cts) {
      EXPECT_TRUE(ct.compressed_c1.has_value());
      ids.push_back(ct.compressed_c1 ? ct.compressed_c1->stream_id : 0);
    }
    upload_stream_ids.push_back(std::move(ids));
    if (++calls == 1) {
      std::span<u64> limb = cts[1].c(0).limb(0);
      limb[5] = (limb[5] + q / 2) % q;
    }
    return ckks::serialize_ciphertext_batch(cts,
                                            session.config().bits_per_coeff);
  };
  const engine::ClientSession::RetryReport report =
      session.round_trip_with_retry(msgs, ctx->max_limbs(), server);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.rounds, 2u);
  EXPECT_TRUE(report.round_errors.empty());
  EXPECT_EQ(report.attempts[0], 1u);
  EXPECT_EQ(report.attempts[1], 2u);
  EXPECT_EQ(report.attempts[2], 1u);
  ASSERT_EQ(upload_stream_ids.size(), 2u);
  ASSERT_EQ(upload_stream_ids[1].size(), 1u) << "only item 1 resent";
  // The retried item's stream id is fresh: distinct from every id of
  // round 1 (the context counter is monotonic, so it is in fact larger).
  for (u64 prior : upload_stream_ids[0]) {
    EXPECT_NE(upload_stream_ids[1][0], prior);
    EXPECT_GT(upload_stream_ids[1][0], prior);
  }
}

TEST(ClientSession, RetryGivesUpAfterMaxAttempts) {
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  auto ctx = ckks::CkksContext::create(params);
  engine::ClientSession session(ctx);
  const auto msgs = random_batch(2, ctx->slots(), 41);
  int calls = 0;
  const auto broken = [&](std::span<const u8>) {
    ++calls;
    return std::vector<u8>{0xde, 0xad};  // never parses
  };
  const engine::ClientSession::RetryReport report =
      session.round_trip_with_retry(msgs, ctx->max_limbs(), broken, 3);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.rounds, 3u);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(report.round_errors.size(), 3u);
  for (std::size_t attempts : report.attempts) EXPECT_EQ(attempts, 3u);
  EXPECT_FALSE(report.verify.ok);
  EXPECT_EQ(report.verify.failed, msgs.size());
}

TEST(ClientSession, RetryRejectsDegenerateArguments) {
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  auto ctx = ckks::CkksContext::create(params);
  engine::ClientSession session(ctx);
  const auto msgs = random_batch(1, ctx->slots(), 43);
  const auto echo = [](std::span<const u8> u) {
    return std::vector<u8>(u.begin(), u.end());
  };
  EXPECT_THROW(
      session.round_trip_with_retry(msgs, ctx->max_limbs(), nullptr),
      InvalidArgument);
  EXPECT_THROW(
      session.round_trip_with_retry(msgs, ctx->max_limbs(), echo, 0),
      InvalidArgument);
  // Zero messages: a trivially green report, no transport calls needed.
  const engine::ClientSession::RetryReport report =
      session.round_trip_with_retry({}, ctx->max_limbs(), echo);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.rounds, 0u);
}

TEST(ClientSession, SessionsAreBackendInvariant) {
  // A whole session (keygen + encrypt + wire) is bit-identical between the
  // scalar backend and any pool: same key bundle bytes, same envelope.
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  const auto msgs = random_batch(3, 256, 17);
  auto run = [&](std::shared_ptr<backend::PolyBackend> backend) {
    auto ctx = ckks::CkksContext::create(params, std::move(backend));
    engine::SessionConfig cfg;
    cfg.rotations = {1};
    engine::ClientSession session(ctx, cfg);
    const engine::KeyBundle& keys = session.key_bundle();
    std::pair<std::vector<u8>, std::vector<u8>> out;
    out.first = keys.relin_key;
    out.second = session.upload(msgs, ctx->max_limbs());
    return out;
  };
  const auto ref = run(std::make_shared<backend::ScalarBackend>());
  for (std::size_t threads : {1u, 8u}) {
    const auto got =
        run(std::make_shared<backend::ThreadPoolBackend>(threads));
    EXPECT_EQ(ref.first, got.first) << threads << " threads (relin key)";
    EXPECT_EQ(ref.second, got.second) << threads << " threads (envelope)";
  }
}

}  // namespace
}  // namespace abc
