#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "backend/scalar_backend.hpp"
#include "backend/thread_pool_backend.hpp"
#include "ckks/encoder.hpp"
#include "ckks/encryptor.hpp"
#include "ckks/serialize.hpp"
#include "engine/batch_keygen.hpp"
#include "prng/samplers.hpp"

namespace abc {
namespace {

using engine::BatchKeyGenerator;

void expect_identical_poly(const poly::RnsPoly& a, const poly::RnsPoly& b,
                           const std::string& what) {
  ASSERT_EQ(a.limbs(), b.limbs()) << what;
  for (std::size_t l = 0; l < a.limbs(); ++l) {
    const std::span<const u64> la = a.limb(l);
    const std::span<const u64> lb = b.limb(l);
    for (std::size_t j = 0; j < la.size(); ++j) {
      ASSERT_EQ(la[j], lb[j]) << what << " limb " << l << " coeff " << j;
    }
  }
}

void expect_identical_ksk(const ckks::KeySwitchKey& x,
                          const ckks::KeySwitchKey& y) {
  ASSERT_EQ(x.kind, y.kind);
  EXPECT_EQ(x.galois_elt, y.galois_elt);
  EXPECT_EQ(x.base_stream_id, y.base_stream_id);
  ASSERT_EQ(x.digits(), y.digits());
  for (std::size_t d = 0; d < x.digits(); ++d) {
    expect_identical_poly(x.b[d], y.b[d], "b digit " + std::to_string(d));
    expect_identical_poly(x.a[d], y.a[d], "a digit " + std::to_string(d));
  }
}

/// Checks the key-switching identity digit by digit: b_d + a_d*s must
/// equal e_d + g_d*s', i.e. after removing the gadget term (s' on limb d
/// only) the phase INTTs back to a small Gaussian error on every limb.
void expect_ksk_phase_identity(const ckks::CkksContext& ctx,
                               const ckks::KeySwitchKey& key,
                               const poly::RnsPoly& s_eval,
                               const poly::RnsPoly& s_prime_eval) {
  const int tail = prng::DiscreteGaussianSampler(ctx.params().error_sigma).tail();
  for (std::size_t d = 0; d < key.digits(); ++d) {
    poly::RnsPoly phase = key.b[d];
    phase.fma_inplace(key.a[d], s_eval);
    // Subtract g_d * s': the CRT idempotent only lives on limb d.
    const rns::Modulus& q = ctx.poly_context()->modulus(d);
    const std::span<u64> pd = phase.limb(d);
    const std::span<const u64> sp = s_prime_eval.limb(d);
    for (std::size_t j = 0; j < pd.size(); ++j) pd[j] = q.sub(pd[j], sp[j]);
    phase.to_coeff();
    for (std::size_t l = 0; l < phase.limbs(); ++l) {
      const rns::Modulus& ql = ctx.poly_context()->modulus(l);
      for (u64 v : phase.limb(l)) {
        ASSERT_LE(std::abs(ql.to_centered(v)), tail)
            << "digit " << d << " limb " << l;
      }
    }
  }
}

TEST(GaloisElement, GroupStructure) {
  const std::size_t n = 1024;
  // Base 3: the canonical-embedding generator the encoder orders slots by
  // (zeta^{3^i}); rotations compose with decode only on this orbit.
  EXPECT_EQ(ckks::galois_element(1, n), 3u);
  EXPECT_EQ(ckks::galois_element(2, n), 9u);
  // A left rotation composed with the matching right rotation is the
  // identity automorphism: 3^r * 3^(slots-r) = 3^slots = 1 (mod 2N).
  const u64 fwd = ckks::galois_element(3, n);
  const u64 bwd = ckks::galois_element(-3, n);
  EXPECT_EQ(fwd * bwd % (2 * n), 1u);
  EXPECT_THROW(ckks::galois_element(0, n), InvalidArgument);
  EXPECT_THROW(ckks::galois_element(static_cast<int>(n / 2), n),
               InvalidArgument);
}

TEST(Automorphism, InverseElementRoundTrips) {
  auto ctx = ckks::CkksContext::create(ckks::CkksParams::test_small(10, 3));
  poly::RnsPoly p = ctx->make_poly(3, poly::Domain::kEval);
  ckks::fill_uniform_eval(*ctx, p, ckks::PrngDomain::kPublicA, 777);
  p.to_coeff();

  const u32 g = ckks::galois_element(5, ctx->n());
  const u32 g_inv = ckks::galois_element(-5, ctx->n());
  const poly::RnsPoly back = p.automorphism(g).automorphism(g_inv);
  expect_identical_poly(p, back, "automorphism round trip");

  // sigma_1 is the identity.
  expect_identical_poly(p, p.automorphism(1), "identity automorphism");
}

TEST(KeyGenerator, RelinKeyPhaseIdentity) {
  auto ctx = ckks::CkksContext::create(ckks::CkksParams::test_small(10, 3));
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();
  const ckks::RelinKey rlk = keygen.relin_key(sk);
  ASSERT_EQ(rlk.key.digits(), ctx->max_limbs());
  EXPECT_EQ(rlk.key.kind, ckks::KeySwitchKey::Kind::kRelin);

  poly::RnsPoly s2 = sk.s;
  s2.mul_inplace(sk.s);
  expect_ksk_phase_identity(*ctx, rlk.key, sk.s, s2);
}

TEST(KeyGenerator, GaloisKeyPhaseIdentity) {
  auto ctx = ckks::CkksContext::create(ckks::CkksParams::test_small(10, 3));
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();
  for (int step : {1, -2, 7}) {
    const ckks::KeySwitchKey gk = keygen.galois_key(sk, step);
    EXPECT_EQ(gk.kind, ckks::KeySwitchKey::Kind::kGalois);
    EXPECT_EQ(gk.galois_elt, ckks::galois_element(step, ctx->n()));

    poly::RnsPoly s_coeff = sk.s;
    s_coeff.to_coeff();
    poly::RnsPoly s_rot = s_coeff.automorphism(gk.galois_elt);
    s_rot.to_eval();
    expect_ksk_phase_identity(*ctx, gk, sk.s, s_rot);
  }
}

TEST(KeyGenerator, RelinAndGaloisStreamsAreDomainSeparated) {
  // Relin and Galois keys draw their uniform halves from different PRNG
  // domains, so even with identical stream ids (fresh generators both
  // start at 0) the a-halves must differ.
  auto ctx = ckks::CkksContext::create(ckks::CkksParams::test_small(10, 3));
  ckks::KeyGenerator kg_a(ctx), kg_b(ctx);
  const ckks::SecretKey sk = kg_a.secret_key();
  const ckks::RelinKey rlk = kg_a.relin_key(sk);
  const ckks::KeySwitchKey gk = kg_b.galois_key(sk, 1);
  ASSERT_EQ(rlk.key.base_stream_id, gk.base_stream_id);
  bool differs = false;
  const std::span<const u64> ra = rlk.key.a[0].limb(0);
  const std::span<const u64> ga = gk.a[0].limb(0);
  for (std::size_t j = 0; j < ra.size() && !differs; ++j) {
    differs = ra[j] != ga[j];
  }
  EXPECT_TRUE(differs);
}

/// Generates the full key set on a fresh context over @p backend.
struct KeySet {
  ckks::RelinKey rlk;
  ckks::GaloisKeys gks;
};

KeySet run_batch_keygen(const ckks::CkksParams& params,
                        std::shared_ptr<backend::PolyBackend> backend,
                        std::span<const int> steps) {
  auto ctx = ckks::CkksContext::create(params, std::move(backend));
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();
  BatchKeyGenerator eng(ctx, sk);
  return KeySet{eng.relin_key(), eng.galois_keys(steps)};
}

TEST(BatchKeyGenerator, KeysAreThreadCountInvariant) {
  // The engine's core determinism claim, mirrored from BatchEncryptor:
  // the ScalarBackend and 1/2/8-thread pools produce byte-identical keys.
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  const std::vector<int> steps = {1, -1, 4};
  const KeySet ref = run_batch_keygen(
      params, std::make_shared<backend::ScalarBackend>(), steps);
  for (std::size_t threads : {1u, 2u, 8u}) {
    const KeySet got = run_batch_keygen(
        params, std::make_shared<backend::ThreadPoolBackend>(threads), steps);
    expect_identical_ksk(ref.rlk.key, got.rlk.key);
    ASSERT_EQ(ref.gks.keys.size(), got.gks.keys.size());
    for (std::size_t i = 0; i < ref.gks.keys.size(); ++i) {
      expect_identical_ksk(ref.gks.keys[i], got.gks.keys[i]);
    }
  }
}

TEST(BatchKeyGenerator, MatchesSerialKeyGenerator) {
  // Same (domain, stream id) assignment => the parallel engine reproduces
  // the serial KeyGenerator bit for bit.
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  auto ctx = ckks::CkksContext::create(
      params, std::make_shared<backend::ThreadPoolBackend>(4));
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();

  BatchKeyGenerator eng(ctx, sk);
  expect_identical_ksk(keygen.relin_key(sk).key, eng.relin_key().key);
  const std::vector<int> steps = {2, 3};
  const ckks::GaloisKeys serial = keygen.galois_keys(sk, steps);
  const ckks::GaloisKeys batched = eng.galois_keys(steps);
  for (std::size_t i = 0; i < steps.size(); ++i) {
    expect_identical_ksk(serial.keys[i], batched.keys[i]);
  }
  // key_for finds by step and rejects unknown steps.
  EXPECT_EQ(&batched.key_for(3), &batched.keys[1]);
  EXPECT_THROW(batched.key_for(9), InvalidArgument);
}

TEST(KeySerialization, CompressedRelinRoundTripsBitExactly) {
  auto ctx = ckks::CkksContext::create(ckks::CkksParams::test_small(10, 3));
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();
  const ckks::RelinKey rlk = keygen.relin_key(sk);

  const std::vector<u8> bytes = serialize_key_switch_key(ctx, rlk.key, 44, true);
  const ckks::KeySwitchKey restored =
      deserialize_key_switch_key(ctx, bytes);
  expect_identical_ksk(rlk.key, restored);

  // The report's analytic sizes match the emitted byte streams exactly.
  const ckks::KeySizeReport report = key_switch_key_sizes(rlk.key, 44);
  EXPECT_EQ(report.compressed_bytes, bytes.size());
  const std::vector<u8> full = serialize_key_switch_key(ctx, rlk.key, 44, false);
  EXPECT_EQ(report.full_bytes, full.size());
  EXPECT_GT(report.ratio(), 1.9);
  expect_identical_ksk(rlk.key, deserialize_key_switch_key(ctx, full));
}

TEST(KeySerialization, CompressedGaloisRoundTripsBitExactly) {
  auto ctx = ckks::CkksContext::create(ckks::CkksParams::test_small(10, 3));
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();
  const ckks::KeySwitchKey gk = keygen.galois_key(sk, 3);

  const ckks::KeySwitchKey restored =
      deserialize_key_switch_key(ctx, serialize_key_switch_key(ctx, gk, 44));
  expect_identical_ksk(gk, restored);
  EXPECT_EQ(restored.galois_elt, ckks::galois_element(3, ctx->n()));
}

TEST(KeySerialization, CompressedPublicKeyRoundTripsBitExactly) {
  auto ctx = ckks::CkksContext::create(ckks::CkksParams::test_small(10, 3));
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();
  const ckks::PublicKey pk = keygen.public_key(sk);

  const std::vector<u8> bytes = serialize_public_key(ctx, pk, 44, true);
  EXPECT_EQ(public_key_sizes(pk, 44).compressed_bytes, bytes.size());
  const ckks::PublicKey restored = deserialize_public_key(ctx, bytes);
  EXPECT_EQ(restored.stream_id, pk.stream_id);
  expect_identical_poly(pk.b, restored.b, "public b");
  expect_identical_poly(pk.a, restored.a, "public a");

  const std::vector<u8> full = serialize_public_key(ctx, pk, 44, false);
  EXPECT_EQ(public_key_sizes(pk, 44).full_bytes, full.size());
  expect_identical_poly(pk.a, deserialize_public_key(ctx, full).a,
                        "full public a");
}

TEST(KeySerialization, CorruptKeyBuffersRejected) {
  auto ctx = ckks::CkksContext::create(ckks::CkksParams::test_small(10, 3));
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();
  std::vector<u8> bytes =
      serialize_key_switch_key(ctx, keygen.relin_key(sk).key, 44);

  std::vector<u8> bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(deserialize_key_switch_key(ctx, bad_magic), InvalidArgument);

  std::vector<u8> truncated = bytes;
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(deserialize_key_switch_key(ctx, truncated), InvalidArgument);

  // Compressed keys regenerate their uniform halves from the header's
  // stream metadata, so a flipped bit there must fail the header
  // checksum instead of silently restoring different key material.
  // Stream id occupies header bytes 14..21 (after magic/kind/etc.).
  std::vector<u8> bad_stream = bytes;
  bad_stream[15] ^= 0x04;
  EXPECT_THROW(deserialize_key_switch_key(ctx, bad_stream), InvalidArgument);
  // Galois element field (bytes 10..13) is covered too.
  std::vector<u8> bad_elt = bytes;
  bad_elt[11] ^= 0x10;
  EXPECT_THROW(deserialize_key_switch_key(ctx, bad_elt), InvalidArgument);

  // A key-switching-key buffer is not a public key and vice versa.
  EXPECT_THROW(deserialize_public_key(ctx, bytes), InvalidArgument);
  const std::vector<u8> pk_bytes =
      serialize_public_key(ctx, keygen.public_key(sk), 44);
  EXPECT_THROW(deserialize_key_switch_key(ctx, pk_bytes), InvalidArgument);
}

TEST(KeyGenerator, GaloisKeysForDifferentStepsNeverShareStreams) {
  // Two independent generators both hand out base_stream_id 0. If Galois
  // keys for different rotations shared a keystream, b1_d - b2_d would be
  // error-free (the e_d cancel) and leak a linear relation in the secret.
  // The stream domain is salted with the Galois element to rule that out.
  auto ctx = ckks::CkksContext::create(ckks::CkksParams::test_small(10, 3));
  ckks::KeyGenerator kg_a(ctx), kg_b(ctx);
  const ckks::SecretKey sk = kg_a.secret_key();
  const ckks::KeySwitchKey k1 = kg_a.galois_key(sk, 1);
  const ckks::KeySwitchKey k2 = kg_b.galois_key(sk, 2);
  ASSERT_EQ(k1.base_stream_id, k2.base_stream_id);
  bool a_differs = false;
  const std::span<const u64> a1 = k1.a[0].limb(0);
  const std::span<const u64> a2 = k2.a[0].limb(0);
  for (std::size_t j = 0; j < a1.size(); ++j) {
    a_differs = a_differs || a1[j] != a2[j];
  }
  EXPECT_TRUE(a_differs) << "uniform halves drawn from a shared stream";
}

TEST(KeyGenerator, KeysForDifferentSecretsNeverShareStreams) {
  // The other aliasing axis: same kind (and element), different secrets.
  // Engine counters both start at 0, but the secret's id is folded into
  // the base stream id — identical (a_d, e_d) under different secrets
  // would make b1_d - b2_d error-free and leak both secrets.
  auto ctx = ckks::CkksContext::create(ckks::CkksParams::test_small(10, 3));
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk1 = keygen.secret_key();
  const ckks::SecretKey sk2 = keygen.secret_key();
  ASSERT_NE(sk1.stream_id, sk2.stream_id);
  BatchKeyGenerator e1(ctx, sk1), e2(ctx, sk2);
  const ckks::RelinKey r1 = e1.relin_key();
  const ckks::RelinKey r2 = e2.relin_key();
  EXPECT_NE(r1.key.base_stream_id, r2.key.base_stream_id);
  bool a_differs = false;
  const std::span<const u64> a1 = r1.key.a[0].limb(0);
  const std::span<const u64> a2 = r2.key.a[0].limb(0);
  for (std::size_t j = 0; j < a1.size(); ++j) {
    a_differs = a_differs || a1[j] != a2[j];
  }
  EXPECT_TRUE(a_differs) << "uniform halves drawn from a shared stream";

  // Public keys for different secrets are salted the same way.
  const ckks::PublicKey pk1 = keygen.public_key(sk1);
  const ckks::PublicKey pk2 = keygen.public_key(sk2);
  EXPECT_NE(pk1.stream_id, pk2.stream_id);
}

TEST(Encryptor, CiphertextsForDifferentSecretsNeverShareStreams) {
  // The encryption path carries the same salt: two encryptors for
  // different secrets both count from 0, but their first ciphertexts must
  // not share mask/error/a streams (shared randomness under different
  // secrets lets c0 differences cancel the errors).
  auto ctx = ckks::CkksContext::create(ckks::CkksParams::test_small(10, 3));
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk1 = keygen.secret_key();
  const ckks::SecretKey sk2 = keygen.secret_key();
  ckks::Encryptor e1(ctx, sk1), e2(ctx, sk2);
  ckks::CkksEncoder encoder(ctx);
  const std::vector<std::complex<double>> msg(8, {0.5, -0.25});
  const ckks::Plaintext pt = encoder.encode(msg, 2);
  const ckks::Ciphertext ct1 = e1.encrypt(pt);
  const ckks::Ciphertext ct2 = e2.encrypt(pt);
  ASSERT_TRUE(ct1.compressed_c1 && ct2.compressed_c1);
  EXPECT_NE(ct1.compressed_c1->stream_id, ct2.compressed_c1->stream_id);
  // The regenerable a-halves (c1) must come from different streams.
  bool differs = false;
  const std::span<const u64> a1 = ct1.c(1).limb(0);
  const std::span<const u64> a2 = ct2.c(1).limb(0);
  for (std::size_t j = 0; j < a1.size(); ++j) {
    differs = differs || a1[j] != a2[j];
  }
  EXPECT_TRUE(differs) << "symmetric a drawn from a shared stream";
}

TEST(KeySerialization, NonRegenerableKeysRejectedWhenCompressed) {
  // Compressed forms drop the uniform halves; the writer must prove they
  // are regenerable or the key would silently restore to different
  // material. Tampering with the stream id or the a-half must throw.
  auto ctx = ckks::CkksContext::create(ckks::CkksParams::test_small(10, 3));
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();

  ckks::PublicKey pk = keygen.public_key(sk);
  pk.stream_id += 1;  // no longer matches the a-half
  EXPECT_THROW(serialize_public_key(ctx, pk, 44, true), InvalidArgument);
  EXPECT_NO_THROW(serialize_public_key(ctx, pk, 44, false));

  ckks::RelinKey rlk = keygen.relin_key(sk);
  rlk.key.a[1].limb(0)[0] ^= 1;  // corrupt one coefficient
  EXPECT_THROW(serialize_key_switch_key(ctx, rlk.key, 44, true),
               InvalidArgument);
  EXPECT_NO_THROW(serialize_key_switch_key(ctx, rlk.key, 44, false));
}

}  // namespace
}  // namespace abc
