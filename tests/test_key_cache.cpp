// The key-cache battery: compressed-record round trips (seed-regenerated
// and packed-fallback a halves), capacity validation, single-flight
// regeneration under concurrent requests, LRU eviction-then-refetch
// bit-identity, pinned-entry survival under capacity pressure, server
// responses bit-identical to serial at thrash-level capacity on every
// worker count, the server.key_regen fault drill (typed error, never a
// poisoned cache entry), and 64 hoisted rotations through the cache.
//
// Suite names all contain "KeyCache" — the TSan CI leg's -R filter picks
// the concurrency tests up by that token.

#include <gtest/gtest.h>

#include <atomic>
#include <complex>
#include <random>
#include <thread>
#include <vector>

#include "ckks/evaluator.hpp"
#include "ckks/key_source.hpp"
#include "common/failpoint.hpp"
#include "engine/client_session.hpp"
#include "server/key_cache.hpp"
#include "server/server.hpp"

namespace abc {
namespace {

using server::KeyCache;
using server::Op;
using server::Server;
using server::ServerConfig;
using server::Status;
using server::TenantKeySource;

ckks::CkksParams small_params() { return ckks::CkksParams::test_small(10, 3); }

std::vector<std::vector<std::complex<double>>> random_batch(
    std::size_t batch, std::size_t slots, u64 seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::vector<std::complex<double>>> msgs(batch);
  for (auto& m : msgs) {
    m.resize(slots);
    for (auto& z : m) z = {dist(rng), dist(rng)};
  }
  return msgs;
}

ckks::KeyBundleFrames frames_of(const engine::KeyBundle& kb) {
  return ckks::KeyBundleFrames{kb.public_key, kb.relin_key, kb.galois_keys};
}

ckks::RequestFrame make_request(u64 tenant, u64 id, Op op, i64 arg,
                                std::vector<u8> payload) {
  ckks::RequestFrame req;
  req.tenant = tenant;
  req.request_id = id;
  req.op = static_cast<u8>(op);
  req.op_arg = arg;
  req.payload = std::move(payload);
  return req;
}

Status status_of(const ckks::ResponseFrame& resp) {
  return static_cast<Status>(resp.status);
}

/// Bit-level equality of the first @p digits gadget digits of two keys.
::testing::AssertionResult digits_equal(const ckks::KeySwitchKey& a,
                                        const ckks::KeySwitchKey& b,
                                        std::size_t digits) {
  if (a.kind != b.kind || a.galois_elt != b.galois_elt) {
    return ::testing::AssertionFailure() << "kind/element mismatch";
  }
  if (a.digits() < digits || b.digits() < digits) {
    return ::testing::AssertionFailure()
           << "too few digits: " << a.digits() << " / " << b.digits()
           << " < " << digits;
  }
  for (std::size_t d = 0; d < digits; ++d) {
    if (a.b[d].limbs() != b.b[d].limbs() ||
        a.a[d].limbs() != b.a[d].limbs()) {
      return ::testing::AssertionFailure() << "limb count mismatch at " << d;
    }
    for (std::size_t l = 0; l < a.b[d].limbs(); ++l) {
      const auto ab = a.b[d].limb(l), bb = b.b[d].limb(l);
      const auto aa = a.a[d].limb(l), ba = b.a[d].limb(l);
      if (!std::equal(ab.begin(), ab.end(), bb.begin()) ||
          !std::equal(aa.begin(), aa.end(), ba.begin())) {
        return ::testing::AssertionFailure()
               << "digit " << d << " limb " << l << " differs";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// A registered-tenant fixture piece: client-generated keys parsed into
/// the compressed TenantSession shape, on a server-side context.
struct ParsedTenant {
  std::shared_ptr<const ckks::CkksContext> ctx;
  server::TenantSession session;

  explicit ParsedTenant(const ckks::CkksParams& params,
                        std::vector<int> rotations) {
    const auto client_ctx = ckks::CkksContext::create(params);
    engine::ClientSession client(
        client_ctx, engine::SessionConfig{std::move(rotations)});
    ctx = ckks::CkksContext::create(params);
    session = server::parse_tenant_bundle(
        ctx, frames_of(client.key_bundle()));
  }
};

struct KeyCacheTest : ::testing::Test {
  void TearDown() override { fail::disarm_all(); }
};

// ---------------------------------------------------------------------------
// Compressed-record round trips
// ---------------------------------------------------------------------------

TEST_F(KeyCacheTest, CompressedRecordRoundTripsBitIdentically) {
  const auto ctx = ckks::CkksContext::create(small_params());
  ckks::KeyGenerator gen(ctx);
  const ckks::SecretKey sk = gen.secret_key();
  const ckks::KeySwitchKey gk = gen.galois_key(sk, 3);
  const ckks::RelinKey rlk = gen.relin_key(sk);

  for (const ckks::KeySwitchKey* key : {&gk, &rlk.key}) {
    const ckks::CompressedKeySwitchKey rec =
        ckks::compress_key_switch_key(ctx, *key);
    // The last gadget digit is unreachable by hybrid key switching and is
    // dropped; the a halves prove seed-regenerable and are dropped too.
    EXPECT_EQ(rec.stored_digits, ctx->max_limbs() - 1);
    EXPECT_TRUE(rec.packed_a.empty());
    EXPECT_LT(rec.resident_bytes(), rec.expanded_bytes(ctx->n()) / 5);
    const ckks::KeySwitchKey back = ckks::expand_key_switch_key(ctx, rec);
    EXPECT_EQ(back.digits(), rec.stored_digits);
    EXPECT_TRUE(digits_equal(back, *key, rec.stored_digits));
  }
}

TEST_F(KeyCacheTest, ForeignUniformHalvesFallBackToPackedStorage) {
  const auto ctx = ckks::CkksContext::create(small_params());
  ckks::KeyGenerator gen(ctx);
  const ckks::SecretKey sk = gen.secret_key();
  ckks::KeySwitchKey gk = gen.galois_key(sk, 5);
  // Tampered stream metadata: the a halves no longer regenerate from it,
  // so compression must keep them packed rather than silently expanding
  // to different key material later.
  gk.base_stream_id += 12345;
  const ckks::CompressedKeySwitchKey rec =
      ckks::compress_key_switch_key(ctx, gk);
  EXPECT_FALSE(rec.packed_a.empty());
  const ckks::KeySwitchKey back = ckks::expand_key_switch_key(ctx, rec);
  EXPECT_TRUE(digits_equal(back, gk, rec.stored_digits));
}

// ---------------------------------------------------------------------------
// Capacity validation
// ---------------------------------------------------------------------------

TEST_F(KeyCacheTest, CapacityZeroIsRejected) {
  EXPECT_THROW(KeyCache cache(0), InvalidArgument);
  ServerConfig cfg;
  cfg.param_sets = {small_params()};
  cfg.key_cache_bytes = 0;
  EXPECT_THROW(Server srv(cfg), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Single-flight regeneration
// ---------------------------------------------------------------------------

TEST_F(KeyCacheTest, SingleFlightUnderConcurrentRequests) {
  ParsedTenant tenant(small_params(), {1});
  KeyCache cache(256u << 20);
  constexpr int kThreads = 8;

  std::atomic<int> arrived{0};
  std::vector<std::shared_ptr<const ckks::KeySwitchKey>> handles(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      arrived.fetch_add(1, std::memory_order_acq_rel);
      while (arrived.load(std::memory_order_acquire) < kThreads) {
        std::this_thread::yield();
      }
      handles[static_cast<std::size_t>(t)] = cache.get(
          tenant.session.id, tenant.session.gks[0], tenant.session.ctx);
    });
  }
  for (auto& t : threads) t.join();

  // Exactly one regeneration: 7 of the 8 concurrent requests shared the
  // one flight (as a wait or a later hit), and everyone got the same key.
  const KeyCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<u64>(kThreads - 1));
  for (int t = 1; t < kThreads; ++t) {
    ASSERT_NE(handles[static_cast<std::size_t>(t)], nullptr);
    EXPECT_EQ(handles[static_cast<std::size_t>(t)].get(), handles[0].get());
  }
}

// ---------------------------------------------------------------------------
// Eviction
// ---------------------------------------------------------------------------

TEST_F(KeyCacheTest, EvictionThenRefetchIsBitIdentical) {
  ParsedTenant tenant(small_params(), {1, 2});
  const auto& s = tenant.session;
  KeyCache cache(1);  // thrash capacity: nothing survives its unpin

  ckks::KeySwitchKey first_copy = [&] {
    const auto h = cache.get(s.id, s.gks[0], s.ctx);
    return *h;  // deep copy while pinned
  }();
  (void)cache.get(s.id, s.gks[1], s.ctx);  // displace
  const auto again = cache.get(s.id, s.gks[0], s.ctx);

  const KeyCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 3u);  // every fetch regenerated
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_GE(stats.evictions, 2u);
  EXPECT_TRUE(digits_equal(*again, first_copy, first_copy.digits()));
}

TEST_F(KeyCacheTest, WarmEntryIsSharedNotRegenerated) {
  ParsedTenant tenant(small_params(), {1});
  const auto& s = tenant.session;
  KeyCache cache(256u << 20);
  const auto a = cache.get(s.id, s.gks[0], s.ctx);
  const auto b = cache.get(s.id, s.gks[0], s.ctx);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST_F(KeyCacheTest, PinnedEntrySurvivesCapacityPressure) {
  ParsedTenant tenant(small_params(), {1, 2});
  const auto& s = tenant.session;
  KeyCache cache(1);

  auto a = cache.get(s.id, s.gks[0], s.ctx);
  auto b = cache.get(s.id, s.gks[1], s.ctx);
  // Both pinned: the budget overshoots rather than evicting in-use keys.
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_GT(cache.stats().resident_bytes, cache.capacity_bytes());

  b.reset();  // unpin -> the over-budget reclaim may take only b
  EXPECT_EQ(cache.stats().evictions, 1u);
  // a's key is still the real key material, mid-pressure.
  const ckks::KeySwitchKey expect = ckks::expand_key_switch_key(s.ctx,
                                                                s.gks[0]);
  EXPECT_TRUE(digits_equal(*a, expect, expect.digits()));

  a.reset();
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

// ---------------------------------------------------------------------------
// Server responses at thrash capacity
// ---------------------------------------------------------------------------

TEST_F(KeyCacheTest, ThrashCapacityBitIdenticalToSerialAtEveryWorkerCount) {
  const ckks::CkksParams params = small_params();
  const auto client_ctx = ckks::CkksContext::create(params);
  engine::ClientSession client(client_ctx,
                               engine::SessionConfig{{1, 2}});
  const ckks::KeyBundleFrames frames = frames_of(client.key_bundle());
  const auto msgs = random_batch(2, client_ctx->slots(), 77);
  const std::size_t eval_limbs = client_ctx->max_limbs() - 1;

  std::vector<ckks::RequestFrame> requests;
  for (std::size_t i = 0; i < 6; ++i) {
    const Op op = (i % 3 == 2) ? Op::kSquare : Op::kRotate;
    const i64 arg = op == Op::kRotate ? static_cast<i64>(i % 2 + 1) : 0;
    requests.push_back(make_request(1, i + 1, op, arg,
                                    client.upload(msgs, eval_limbs)));
  }

  // Reference: a generously sized cache, serial execution.
  std::vector<std::vector<u8>> reference;
  {
    ServerConfig cfg;
    cfg.param_sets = {params};
    Server ref(cfg);
    ASSERT_EQ(ref.register_tenant(params, frames), 1u);
    for (const auto& req : requests) {
      const auto resp = ref.process_serial(req);
      ASSERT_EQ(status_of(resp), Status::kOk) << resp.error;
      reference.push_back(resp.payload);
    }
  }

  for (const std::size_t workers : {1u, 2u, 4u}) {
    SCOPED_TRACE("workers " + std::to_string(workers));
    ServerConfig cfg;
    cfg.workers = workers;
    cfg.param_sets = {params};
    cfg.key_cache_bytes = 1;  // maximal thrash: every request regenerates
    Server srv(cfg);
    ASSERT_EQ(srv.register_tenant(params, frames), 1u);

    std::vector<std::future<ckks::ResponseFrame>> futures;
    for (const auto& req : requests) futures.push_back(srv.submit(req));
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const auto resp = futures[i].get();
      ASSERT_EQ(status_of(resp), Status::kOk) << resp.error;
      EXPECT_EQ(resp.payload, reference[i]) << "request " << i;
    }
    const KeyCache::Stats stats = srv.key_cache_stats();
    // Every fetch either regenerated or joined a concurrent flight for
    // the same key (single-flight coalescing) — never a warm entry.
    EXPECT_EQ(stats.misses + stats.hits, requests.size());
    EXPECT_GE(stats.misses, 3u);  // >= one per distinct key used
    EXPECT_GT(stats.evictions, 0u);
  }
}

// ---------------------------------------------------------------------------
// Fault drill: server.key_regen
// ---------------------------------------------------------------------------

TEST_F(KeyCacheTest, KeyRegenFaultIsTypedAndNeverPoisonsTheCache) {
  const ckks::CkksParams params = small_params();
  const auto client_ctx = ckks::CkksContext::create(params);
  engine::ClientSession client(client_ctx, engine::SessionConfig{{1}});
  const ckks::KeyBundleFrames frames = frames_of(client.key_bundle());
  const auto msgs = random_batch(2, client_ctx->slots(), 13);
  const auto payload = client.upload(msgs, client_ctx->max_limbs() - 1);

  ServerConfig cfg;
  cfg.param_sets = {params};
  Server srv(cfg);
  ASSERT_EQ(srv.register_tenant(params, frames), 1u);
  const auto reference =
      srv.process_serial(make_request(1, 99, Op::kRotate, 1, payload));
  ASSERT_EQ(status_of(reference), Status::kOk) << reference.error;

  ServerConfig cfg2 = cfg;
  Server srv2(cfg2);
  ASSERT_EQ(srv2.register_tenant(params, frames), 1u);

  fail::Policy p;
  p.action = fail::Action::kThrowRuntimeError;
  p.max_fires = 1;
  fail::arm(fail::points::kServerKeyRegen, p);

  // Transient regeneration failure: a typed per-request error...
  const auto failed =
      srv2.call(make_request(1, 1, Op::kRotate, 1, payload));
  EXPECT_EQ(status_of(failed), Status::kInternal);
  EXPECT_FALSE(failed.error.empty());

  // ...and no poisoned entry: the identical retry regenerates from
  // scratch and succeeds, bit-identical to the never-faulted server.
  const auto retried =
      srv2.call(make_request(1, 2, Op::kRotate, 1, payload));
  ASSERT_EQ(status_of(retried), Status::kOk) << retried.error;
  EXPECT_EQ(retried.payload, reference.payload);

  const KeyCache::Stats stats = srv2.key_cache_stats();
  EXPECT_EQ(stats.misses, 2u);  // the failed flight + the retry
  EXPECT_EQ(stats.entries, 1u);
}

// ---------------------------------------------------------------------------
// Hoisted rotations through the cache
// ---------------------------------------------------------------------------

TEST_F(KeyCacheTest, SixtyFourHoistedRotationsThroughThrashCache) {
  std::vector<int> steps(64);
  for (std::size_t i = 0; i < steps.size(); ++i) {
    steps[i] = static_cast<int>(i + 1);
  }
  ParsedTenant tenant(small_params(), steps);
  const auto& s = tenant.session;

  const auto client_ctx = ckks::CkksContext::create(small_params());
  engine::ClientSession client(client_ctx, engine::SessionConfig{{1}});
  const auto msgs = random_batch(1, client_ctx->slots(), 41);
  const auto upload = client.upload(msgs, client_ctx->max_limbs() - 1);
  const auto cts = ckks::deserialize_ciphertext_batch(s.ctx, upload);
  ASSERT_EQ(cts.size(), 1u);

  KeyCache cache(1);  // every key regenerated, pinned, then evicted
  const TenantKeySource source(cache, s);
  const ckks::Evaluator eval(s.ctx);
  const auto hoisted = eval.rotate_many(cts[0], steps, source);
  ASSERT_EQ(hoisted.size(), steps.size());

  const KeyCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, steps.size());  // one regeneration per step
  EXPECT_GE(stats.evictions, steps.size() - 1);

  // Bit-identical to eagerly expanded single rotations.
  const ckks::GaloisKeys gks = s.expand_gks();
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const ckks::Ciphertext single = eval.rotate(cts[0], steps[i], gks);
    EXPECT_EQ(ckks::serialize_ciphertext(hoisted[i]),
              ckks::serialize_ciphertext(single))
        << "step " << steps[i];
  }
}

}  // namespace
}  // namespace abc
