// Serving-stack observability battery: per-server stats forwarders and
// registry snapshot deltas across a request soak, rejection counters,
// queue-depth balance, the Op::kStats scrape over both transports, trace
// ring stage ordering with key-switch tallies, the slow-request ring, and
// drain accounting at stop(). Exact-count assertions branch on
// obs::kMetricsEnabled so the suite also passes (and still exercises the
// trace plumbing) under ABC_NO_METRICS.

#include <gtest/gtest.h>

#include <chrono>
#include <complex>
#include <future>
#include <random>
#include <string>
#include <vector>

#include "common/failpoint.hpp"
#include "engine/client_session.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "server/server.hpp"
#include "server/transport.hpp"

namespace abc {
namespace {

using server::LoopbackChannel;
using server::Op;
using server::Server;
using server::ServerConfig;
using server::Status;
using server::UdsChannel;
using server::UdsServer;

ckks::CkksParams small_params() { return ckks::CkksParams::test_small(10, 3); }

std::vector<std::vector<std::complex<double>>> random_batch(
    std::size_t batch, std::size_t slots, u64 seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::vector<std::complex<double>>> msgs(batch);
  for (auto& m : msgs) {
    m.resize(slots);
    for (auto& z : m) z = {dist(rng), dist(rng)};
  }
  return msgs;
}

ckks::KeyBundleFrames frames_of(const engine::KeyBundle& kb) {
  return ckks::KeyBundleFrames{kb.public_key, kb.relin_key, kb.galois_keys};
}

ckks::RequestFrame make_request(u64 tenant, u64 id, Op op, i64 arg,
                                std::vector<u8> payload) {
  ckks::RequestFrame req;
  req.tenant = tenant;
  req.request_id = id;
  req.op = static_cast<u8>(op);
  req.op_arg = arg;
  req.payload = std::move(payload);
  return req;
}

Status status_of(const ckks::ResponseFrame& resp) {
  return static_cast<Status>(resp.status);
}

/// Every test leaves the failpoint registry clean.
struct ObsServerTest : ::testing::Test {
  void TearDown() override { fail::disarm_all(); }
};

/// One synthetic client on its own context, remote-client shape.
struct Client {
  std::shared_ptr<const ckks::CkksContext> ctx;
  engine::ClientSession session;

  explicit Client(const ckks::CkksParams& params,
                  std::vector<int> rotations = {1})
      : ctx(ckks::CkksContext::create(params)),
        session(ctx, engine::SessionConfig{std::move(rotations)}) {}

  std::size_t eval_limbs() const { return ctx->max_limbs() - 1; }
};

// ---------------------------------------------------------------------------
// Per-server stats and process-wide snapshot deltas across a soak
// ---------------------------------------------------------------------------

TEST_F(ObsServerTest, StatsAndSnapshotTrackARequestSoak) {
  const ckks::CkksParams params = small_params();
  Client client(params);
  const auto msgs = random_batch(2, client.ctx->slots(), 11);
  const std::vector<u8> upload =
      client.session.upload(msgs, client.eval_limbs());

  const obs::MetricsSnapshot before = obs::registry().snapshot();

  ServerConfig cfg;
  cfg.workers = 2;
  cfg.param_sets = {params};
  Server srv(cfg);
  const u64 tenant =
      srv.register_tenant(params, frames_of(client.session.key_bundle()));

  constexpr std::size_t kRequests = 6;
  for (std::size_t i = 0; i < kRequests; ++i) {
    const Op op = (i % 2 == 0) ? Op::kEcho : Op::kRotate;
    const ckks::ResponseFrame resp = srv.call(
        make_request(tenant, i + 1, op, op == Op::kRotate ? 1 : 0, upload));
    ASSERT_EQ(status_of(resp), Status::kOk) << resp.error;
  }

  // Worker attribution is plain atomics — exact in every build.
  const server::ServerStats stats = srv.stats();
  ASSERT_EQ(stats.per_worker_processed.size(), cfg.workers);
  u64 by_worker = 0;
  for (const u64 n : stats.per_worker_processed) by_worker += n;
  EXPECT_EQ(by_worker, kRequests);

  if (obs::kMetricsEnabled) {
    EXPECT_EQ(stats.accepted, kRequests);
    EXPECT_EQ(stats.processed, kRequests);
    EXPECT_EQ(stats.rejected_too_large, 0u);
    EXPECT_EQ(stats.rejected_queue_full, 0u);

    const obs::MetricsSnapshot after = obs::registry().snapshot();
    auto delta = [&](const char* name) {
      return after.counter_value(name) - before.counter_value(name);
    };
    EXPECT_EQ(delta(obs::catalog::kServerAccepted), kRequests);
    EXPECT_EQ(delta(obs::catalog::kServerProcessed), kRequests);
    // Latency histograms populated once per request.
    const obs::HistogramValue* wait =
        after.histogram(obs::catalog::kServerQueueWaitNs);
    const obs::HistogramValue* e2e =
        after.histogram(obs::catalog::kServerRequestNs);
    ASSERT_NE(wait, nullptr);
    ASSERT_NE(e2e, nullptr);
    const obs::HistogramValue* wait_before =
        before.histogram(obs::catalog::kServerQueueWaitNs);
    const obs::HistogramValue* e2e_before =
        before.histogram(obs::catalog::kServerRequestNs);
    EXPECT_EQ(wait->count - (wait_before ? wait_before->count : 0), kRequests);
    EXPECT_EQ(e2e->count - (e2e_before ? e2e_before->count : 0), kRequests);
    EXPECT_GT(e2e->sum, 0u);
    // Deep-layer instrumentation moved too: every request fanned items
    // through an engine, and the rotates key-switched.
    EXPECT_GE(delta(obs::catalog::kEngineItemsProcessed),
              kRequests * msgs.size());
    EXPECT_GT(delta(obs::catalog::kKeySwitchAccumulations), 0u);
    // Queue depth is balanced once the soak is done.
    EXPECT_EQ(after.gauge_value(obs::catalog::kServerQueueDepth),
              before.gauge_value(obs::catalog::kServerQueueDepth));
  } else {
    // The compile-out contract: forwarders read 0, never garbage.
    EXPECT_EQ(stats.accepted, 0u);
    EXPECT_EQ(stats.processed, 0u);
  }
}

TEST_F(ObsServerTest, ResidentTenantsGaugeFollowsRegisterAndErase) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  const ckks::CkksParams params = small_params();
  Client client(params);
  ServerConfig cfg;
  cfg.param_sets = {params};
  Server srv(cfg);

  const i64 base = obs::registry().snapshot().gauge_value(
      obs::catalog::kResidentTenants);
  const u64 tenant =
      srv.register_tenant(params, frames_of(client.session.key_bundle()));
  EXPECT_EQ(obs::registry().snapshot().gauge_value(
                obs::catalog::kResidentTenants),
            base + 1);
  EXPECT_TRUE(srv.unregister_tenant(tenant));
  EXPECT_EQ(obs::registry().snapshot().gauge_value(
                obs::catalog::kResidentTenants),
            base);
}

// ---------------------------------------------------------------------------
// Rejection counters
// ---------------------------------------------------------------------------

TEST_F(ObsServerTest, RejectionCountersAttributeEachAdmissionFailure) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  ServerConfig cfg;
  cfg.max_request_bytes = 16;
  Server srv(cfg);

  EXPECT_EQ(status_of(srv.call(make_request(
                1, 1, Op::kEcho, 0, std::vector<u8>(17, 0xab)))),
            Status::kTooLarge);
  EXPECT_EQ(srv.stats().rejected_too_large, 1u);
  EXPECT_EQ(srv.stats().accepted, 0u) << "rejected before any enqueue";

  srv.stop();
  EXPECT_EQ(status_of(srv.call(make_request(1, 2, Op::kEcho, 0, {}))),
            Status::kShuttingDown);
  EXPECT_GE(obs::registry().snapshot().counter_value(
                obs::catalog::kServerRejectedShuttingDown),
            1u);
}

// ---------------------------------------------------------------------------
// Op::kStats over both transports
// ---------------------------------------------------------------------------

TEST_F(ObsServerTest, KStatsScrapeAnswersJsonOverLoopbackAndUds) {
  const ckks::CkksParams params = small_params();
  Client client(params);
  ServerConfig cfg;
  cfg.param_sets = {params};
  Server srv(cfg);
  const u64 tenant =
      srv.register_tenant(params, frames_of(client.session.key_bundle()));
  const auto msgs = random_batch(2, client.ctx->slots(), 3);
  const std::vector<u8> upload =
      client.session.upload(msgs, client.eval_limbs());
  for (u64 i = 1; i <= 3; ++i) {
    ASSERT_EQ(status_of(srv.call(
                  make_request(tenant, i, Op::kRotate, 1, upload))),
              Status::kOk);
  }

  auto check_scrape = [&](const ckks::ResponseFrame& resp) {
    ASSERT_EQ(status_of(resp), Status::kOk) << resp.error;
    const std::string json(resp.payload.begin(), resp.payload.end());
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    // Always present, whatever the build: layout + traces.
    EXPECT_NE(json.find("\"histogram_layout\""), std::string::npos);
    EXPECT_NE(json.find("\"traces\""), std::string::npos);
    EXPECT_NE(json.find("\"recent\""), std::string::npos);
    if (obs::kMetricsEnabled) {
      EXPECT_NE(json.find("\"metrics_enabled\":true"), std::string::npos);
      // The acceptance scrape: queue-wait and end-to-end histograms
      // present and populated.
      EXPECT_NE(json.find("\"server.queue_wait_ns\""), std::string::npos);
      EXPECT_NE(json.find("\"server.request_ns\""), std::string::npos);
      const obs::MetricsSnapshot snap = srv.metrics_snapshot();
      const obs::HistogramValue* e2e =
          snap.histogram(obs::catalog::kServerRequestNs);
      ASSERT_NE(e2e, nullptr);
      EXPECT_GE(e2e->count, 3u);
      const obs::HistogramValue* wait =
          snap.histogram(obs::catalog::kServerQueueWaitNs);
      ASSERT_NE(wait, nullptr);
      EXPECT_GE(wait->count, 3u);
    } else {
      EXPECT_NE(json.find("\"metrics_enabled\":false"), std::string::npos);
    }
  };

  {
    SCOPED_TRACE("loopback");
    LoopbackChannel chan(srv);
    ckks::RequestFrame req;
    req.request_id = 100;
    req.op = static_cast<u8>(Op::kStats);
    check_scrape(chan.call(req));
  }
  {
    SCOPED_TRACE("uds");
    const std::string path = "./abc_obs_stats_test.sock";
    UdsServer uds(srv, path);
    UdsChannel chan(path);
    ckks::RequestFrame req;
    req.request_id = 101;
    req.op = static_cast<u8>(Op::kStats);
    check_scrape(chan.call(req));
    uds.stop();
  }
}

// ---------------------------------------------------------------------------
// Trace ring: stage ordering, key-switch tallies, slow filing
// ---------------------------------------------------------------------------

TEST_F(ObsServerTest, TracesRecordOrderedStagesAndKeySwitchTallies) {
  const ckks::CkksParams params = small_params();
  Client client(params);
  ServerConfig cfg;
  cfg.param_sets = {params};
  Server srv(cfg);
  const u64 tenant =
      srv.register_tenant(params, frames_of(client.session.key_bundle()));
  const auto msgs = random_batch(2, client.ctx->slots(), 5);
  const std::vector<u8> upload =
      client.session.upload(msgs, client.eval_limbs());

  ASSERT_EQ(status_of(srv.call(make_request(tenant, 7, Op::kRotate, 1,
                                            upload))),
            Status::kOk);
  ASSERT_EQ(status_of(srv.call(make_request(tenant, 8, Op::kEcho, 0,
                                            upload))),
            Status::kOk);

  const std::vector<obs::Trace> recent = srv.traces().recent();
  ASSERT_EQ(recent.size(), 2u);
  for (const obs::Trace& t : recent) {
    EXPECT_EQ(t.tenant, tenant);
    // Stage stamps exist and are monotone through the pipeline.
    EXPECT_GT(t.admit_ns, 0u);
    EXPECT_GE(t.dequeue_ns, t.admit_ns);
    EXPECT_GE(t.engine_start_ns, t.dequeue_ns);
    EXPECT_GE(t.engine_end_ns, t.engine_start_ns);
    EXPECT_GE(t.respond_ns, t.engine_end_ns);
    EXPECT_EQ(t.total_ns(), t.respond_ns - t.admit_ns);
  }
  const obs::Trace& rotate = recent[0];
  const obs::Trace& echo = recent[1];
  EXPECT_EQ(rotate.request_id, 7u);
  EXPECT_EQ(rotate.op, static_cast<u8>(Op::kRotate));
  // The rotate key-switched on this request's behalf; the echo did not.
  EXPECT_GT(rotate.ks_decompositions, 0u);
  EXPECT_GT(rotate.ks_accumulations, 0u);
  EXPECT_EQ(echo.request_id, 8u);
  EXPECT_EQ(echo.ks_decompositions, 0u);
  EXPECT_EQ(echo.ks_accumulations, 0u);
}

TEST_F(ObsServerTest, SlowThresholdFilesTracesIntoSlowRing) {
  const ckks::CkksParams params = small_params();
  Client client(params);
  ServerConfig cfg;
  cfg.param_sets = {params};
  cfg.slow_request_ns = 1;  // every real request is "slow"
  Server srv(cfg);
  const u64 tenant =
      srv.register_tenant(params, frames_of(client.session.key_bundle()));
  const auto msgs = random_batch(2, client.ctx->slots(), 9);
  const std::vector<u8> upload =
      client.session.upload(msgs, client.eval_limbs());

  constexpr u64 kRequests = 3;
  for (u64 i = 1; i <= kRequests; ++i) {
    ASSERT_EQ(status_of(srv.call(
                  make_request(tenant, i, Op::kRotate, 1, upload))),
              Status::kOk);
  }
  EXPECT_EQ(srv.traces().slow_count(), kRequests);
  const std::vector<obs::Trace> slow = srv.traces().slow();
  ASSERT_EQ(slow.size(), kRequests);
  EXPECT_EQ(slow.back().request_id, kRequests);
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(srv.stats().slow_requests, kRequests);
  }
}

TEST_F(ObsServerTest, TraceRingCapacityIsBoundedAndValidated) {
  EXPECT_THROW(
      [] {
        ServerConfig cfg;
        cfg.trace_ring_capacity = 0;
        Server srv(cfg);
      }(),
      InvalidArgument);

  ServerConfig cfg;
  cfg.trace_ring_capacity = 2;
  cfg.slow_request_ns = 0;  // slow tracking disabled
  Server srv(cfg);
  // Cheap requests: unknown op answers typed without tenant state.
  for (u64 i = 1; i <= 5; ++i) {
    EXPECT_EQ(status_of(srv.call(
                  make_request(1, i, static_cast<Op>(42), 0, {}))),
              Status::kUnknownOp);
  }
  const std::vector<obs::Trace> recent = srv.traces().recent();
  ASSERT_EQ(recent.size(), 2u) << "ring bounded at configured capacity";
  EXPECT_EQ(recent.front().request_id, 4u);
  EXPECT_EQ(recent.back().request_id, 5u);
  EXPECT_EQ(srv.traces().slow_count(), 0u) << "threshold 0 disables slow";
}

// ---------------------------------------------------------------------------
// Drain accounting at stop()
// ---------------------------------------------------------------------------

TEST_F(ObsServerTest, StopDrainsQueuedRequestsAndCountsThem) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.work_stealing = false;
  Server srv(cfg);

  // Keep the lone worker busy ~20 ms per dispatch so most of the burst is
  // still queued when stop() lands.
  fail::Policy slow;
  slow.action = fail::Action::kDelay;
  slow.delay_us = 20000;
  fail::arm(fail::points::kServerDispatch, slow);

  std::vector<std::future<ckks::ResponseFrame>> futures;
  for (u64 i = 1; i <= 8; ++i) {
    futures.push_back(srv.submit(make_request(1, i, static_cast<Op>(42), 0,
                                              {})));
  }
  srv.stop();

  std::size_t shutting_down = 0;
  for (auto& f : futures) {
    const Status s = status_of(f.get());  // every future resolves
    ASSERT_TRUE(s == Status::kUnknownOp || s == Status::kShuttingDown)
        << static_cast<int>(s);
    if (s == Status::kShuttingDown) ++shutting_down;
  }
  EXPECT_GT(shutting_down, 0u);
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(srv.stats().drained, shutting_down);
    // Drained requests leave the queue-depth gauge balanced too.
    EXPECT_EQ(obs::registry().snapshot().gauge_value(
                  obs::catalog::kServerQueueDepth),
              0);
  }
}

}  // namespace
}  // namespace abc
