#include <gtest/gtest.h>

#include <random>

#include "rns/ntt_prime.hpp"
#include "rns/rns_basis.hpp"

namespace abc::rns {
namespace {

RnsBasis make_basis(std::size_t count) {
  return RnsBasis(select_prime_chain(36, 16, count));
}

TEST(RnsBasis, RejectsDuplicates) {
  EXPECT_THROW(RnsBasis({97, 97}), InvalidArgument);
  EXPECT_THROW(RnsBasis({}), InvalidArgument);
}

TEST(RnsBasis, ProductGrowsMonotonically) {
  const RnsBasis basis = make_basis(4);
  for (std::size_t l = 1; l < 4; ++l) {
    EXPECT_LT(basis.product(l).bit_length(), basis.product(l + 1).bit_length());
  }
  EXPECT_NEAR(basis.product(4).bit_length(), 4 * 36, 4);
}

TEST(RnsBasis, DecomposeComposeRoundtripSmallValues) {
  const RnsBasis basis = make_basis(3);
  CrtComposer composer(basis, 3);
  std::vector<u64> residues(3);
  std::mt19937_64 rng(3);
  for (int i = 0; i < 2000; ++i) {
    const i64 x = static_cast<i64>(rng() % (u64{1} << 52)) -
                  (i64{1} << 51);
    basis.decompose_i64(x, residues);
    EXPECT_DOUBLE_EQ(composer.compose_centered(residues),
                     static_cast<double>(x));
  }
}

TEST(RnsBasis, ComposeExactMatchesCenteredSign) {
  const RnsBasis basis = make_basis(2);
  CrtComposer composer(basis, 2);
  std::vector<u64> residues(2);
  basis.decompose_i64(-12345, residues);
  const BigUint exact = composer.compose_exact(residues);
  // exact == Q - 12345
  BigUint expected = basis.product(2);
  expected.sub(BigUint(12345));
  EXPECT_EQ(exact.compare(expected), 0);
}

TEST(RnsBasis, CrtReconstructionPropertyAcrossLevels) {
  // Random residue vectors (not from a small value): compose_exact must be
  // the unique element of [0, Q) matching every residue.
  const RnsBasis basis = make_basis(6);
  std::mt19937_64 rng(5);
  for (std::size_t limbs : {2u, 4u, 6u}) {
    CrtComposer composer(basis, limbs);
    std::vector<u64> residues(limbs);
    for (int iter = 0; iter < 50; ++iter) {
      for (std::size_t i = 0; i < limbs; ++i) {
        residues[i] = rng() % basis.modulus(i).value();
      }
      const BigUint x = composer.compose_exact(residues);
      EXPECT_TRUE(x < basis.product(limbs) || x == basis.product(limbs));
      for (std::size_t i = 0; i < limbs; ++i) {
        EXPECT_EQ(x.mod_u64(basis.modulus(i).value()), residues[i]);
      }
    }
  }
}

TEST(RnsBasis, ComposerHandlesExtremes) {
  const RnsBasis basis = make_basis(2);
  CrtComposer composer(basis, 2);
  std::vector<u64> residues(2);
  basis.decompose_i64(0, residues);
  EXPECT_DOUBLE_EQ(composer.compose_centered(residues), 0.0);
  // Q-1 == -1 centered.
  for (std::size_t i = 0; i < 2; ++i) residues[i] = basis.modulus(i).value() - 1;
  EXPECT_DOUBLE_EQ(composer.compose_centered(residues), -1.0);
}

}  // namespace
}  // namespace abc::rns
