#include <gtest/gtest.h>

#include <random>

#include "ckks/decryptor.hpp"
#include "ckks/encoder.hpp"
#include "ckks/encryptor.hpp"
#include "transform/op_counter.hpp"

namespace abc::ckks {
namespace {

std::vector<std::complex<double>> random_slots(std::size_t count, u64 seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::complex<double>> v(count);
  for (auto& z : v) z = {dist(rng), dist(rng)};
  return v;
}

struct Fixture {
  std::shared_ptr<const CkksContext> ctx;
  CkksEncoder encoder;
  KeyGenerator keygen;
  SecretKey sk;
  PublicKey pk;

  explicit Fixture(int log_n = 10, std::size_t limbs = 3)
      : ctx(CkksContext::create(CkksParams::test_small(log_n, limbs))),
        encoder(ctx),
        keygen(ctx),
        sk(keygen.secret_key()),
        pk(keygen.public_key(sk)) {}
};

TEST(CkksEncrypt, PublicKeyRoundtrip) {
  Fixture f;
  Encryptor enc(f.ctx, PublicKey{f.pk.b, f.pk.a, f.pk.stream_id});
  Decryptor dec(f.ctx, f.sk);
  const auto slots = random_slots(f.encoder.slots(), 1);
  const Plaintext pt = f.encoder.encode(slots, f.ctx->max_limbs());
  const Ciphertext ct = enc.encrypt(pt);
  EXPECT_EQ(ct.size(), 2u);
  EXPECT_FALSE(ct.compressed_c1.has_value());
  const Plaintext decrypted = dec.decrypt(ct);
  const auto decoded = f.encoder.decode(decrypted);
  const PrecisionReport r = compare_slots(slots, decoded);
  EXPECT_GT(r.precision_bits, 12.0);  // noise e adds ~sigma*sqrt terms
}

TEST(CkksEncrypt, SymmetricSeededRoundtrip) {
  Fixture f;
  Encryptor enc(f.ctx, f.sk);
  Decryptor dec(f.ctx, f.sk);
  const auto slots = random_slots(f.encoder.slots(), 2);
  const Plaintext pt = f.encoder.encode(slots, f.ctx->max_limbs());
  const Ciphertext ct = enc.encrypt(pt);
  ASSERT_TRUE(ct.compressed_c1.has_value());
  const Plaintext decrypted = dec.decrypt(ct);
  const auto decoded = f.encoder.decode(decrypted);
  const PrecisionReport r = compare_slots(slots, decoded);
  EXPECT_GT(r.precision_bits, 12.0);
}

TEST(CkksEncrypt, CiphertextLooksUniform) {
  // c1 of a public-key encryption is computationally indistinguishable
  // from uniform; sanity-check the first moment per limb.
  Fixture f;
  Encryptor enc(f.ctx, PublicKey{f.pk.b, f.pk.a, f.pk.stream_id});
  const Plaintext pt =
      f.encoder.encode(random_slots(f.encoder.slots(), 3), 3);
  const Ciphertext ct = enc.encrypt(pt);
  for (std::size_t i = 0; i < ct.limbs(); ++i) {
    const u64 q = f.ctx->poly_context()->modulus(i).value();
    double mean = 0;
    for (u64 v : ct.c(1).limb(i)) mean += static_cast<double>(v) / static_cast<double>(q);
    mean /= static_cast<double>(f.ctx->n());
    EXPECT_NEAR(mean, 0.5, 0.05);
  }
}

TEST(CkksEncrypt, WrongKeyFailsToDecrypt) {
  Fixture f;
  Encryptor enc(f.ctx, PublicKey{f.pk.b, f.pk.a, f.pk.stream_id});
  KeyGenerator other_gen(f.ctx);
  (void)other_gen.secret_key();           // advance stream
  SecretKey wrong = other_gen.secret_key();
  Decryptor dec(f.ctx, wrong);
  const auto slots = random_slots(f.encoder.slots(), 4);
  const Plaintext pt = f.encoder.encode(slots, 2);
  const Plaintext decrypted = dec.decrypt(enc.encrypt(pt));
  const auto decoded = f.encoder.decode(decrypted);
  const PrecisionReport r = compare_slots(slots, decoded);
  EXPECT_GT(r.max_abs_error, 1.0);  // garbage, not the message
}

TEST(CkksEncrypt, EncryptionsAreDistinct) {
  Fixture f;
  Encryptor enc(f.ctx, PublicKey{f.pk.b, f.pk.a, f.pk.stream_id});
  const Plaintext pt = f.encoder.encode(random_slots(8, 5), 2);
  const Ciphertext a = enc.encrypt(pt);
  const Ciphertext b = enc.encrypt(pt);
  // Fresh mask/error per encryption: ciphertexts differ.
  bool differs = false;
  for (std::size_t j = 0; j < f.ctx->n() && !differs; ++j) {
    differs = a.c(0).limb(0)[j] != b.c(0).limb(0)[j];
  }
  EXPECT_TRUE(differs);
}

TEST(CkksEncrypt, LowerLevelEncryption) {
  // Encrypting at 2 limbs (the paper's server-return level).
  Fixture f(10, 4);
  Encryptor enc(f.ctx, f.sk);
  Decryptor dec(f.ctx, f.sk);
  const auto slots = random_slots(f.encoder.slots(), 6);
  const Plaintext pt = f.encoder.encode(slots, 2);
  const Ciphertext ct = enc.encrypt(pt);
  EXPECT_EQ(ct.limbs(), 2u);
  const auto decoded = f.encoder.decode(dec.decrypt(ct));
  EXPECT_GT(compare_slots(slots, decoded).precision_bits, 12.0);
}

TEST(CkksEncrypt, NttPassAccountingMatchesModes) {
  // The declared NTT-passes-per-limb drive the accelerator scheduler; the
  // software must execute exactly that many forward NTTs per limb.
  Fixture f;
  const std::size_t limbs = 3;
  const std::size_t n = f.ctx->n();
  const u64 fwd_ntt_muls = (n / 2) * static_cast<u64>(f.ctx->params().log_n);

  const Plaintext pt = f.encoder.encode(random_slots(8, 7), limbs);

  {
    Encryptor enc(f.ctx, PublicKey{f.pk.b, f.pk.a, f.pk.stream_id});
    xf::OpCounterScope scope;
    (void)enc.encrypt(pt);
    const u64 got = scope.delta().ntt_mul;
    EXPECT_EQ(got, fwd_ntt_muls * limbs *
                       static_cast<u64>(ntt_passes_per_limb(
                           EncryptMode::kPublicKey)));
  }
  {
    Encryptor enc(f.ctx, f.sk);
    xf::OpCounterScope scope;
    (void)enc.encrypt(pt);
    const u64 got = scope.delta().ntt_mul;
    EXPECT_EQ(got, fwd_ntt_muls * limbs *
                       static_cast<u64>(ntt_passes_per_limb(
                           EncryptMode::kSymmetricSeeded)));
  }
}

TEST(CkksEncrypt, DifferentSeedsGiveDifferentKeys) {
  CkksParams p1 = CkksParams::test_small();
  CkksParams p2 = CkksParams::test_small();
  p2.seed[0] ^= 0xff;
  auto c1 = CkksContext::create(p1);
  auto c2 = CkksContext::create(p2);
  KeyGenerator g1(c1), g2(c2);
  const SecretKey s1 = g1.secret_key();
  const SecretKey s2 = g2.secret_key();
  bool differs = false;
  for (std::size_t j = 0; j < c1->n() && !differs; ++j) {
    differs = s1.s.limb(0)[j] != s2.s.limb(0)[j];
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace abc::ckks
