// Deserializer corruption sweep (the robustness contract of the wire
// layer): an ABCF/ABCB/ABCK blob truncated at ANY byte boundary, or with
// random bits flipped, must either deserialize successfully (a flip can
// land in payload residues — the header checksum does not cover them) or
// throw abc::InvalidArgument. Never a crash, a hang, any other exception
// type (a std::length_error or std::bad_alloc would mean a corrupted
// count reached a container resize), and never an attempt to allocate
// from an attacker-controlled length field.
//
// Sweep budget: the single-ciphertext and public-key formats are small
// enough to truncate at EVERY byte boundary. The key-switch-key and batch
// envelopes are an order of magnitude larger, so they sweep the full
// header region plus a seeded random sample of interior boundaries and
// the full tail — the regions where length fields, per-item headers and
// final-word packing live.

#include <gtest/gtest.h>

#include <complex>
#include <random>
#include <set>
#include <vector>

#include "ckks/encoder.hpp"
#include "ckks/encryptor.hpp"
#include "ckks/keygen.hpp"
#include "ckks/serialize.hpp"
#include "engine/batch_keygen.hpp"

namespace abc::ckks {
namespace {

struct Fixture {
  std::shared_ptr<const CkksContext> ctx;
  CkksEncoder encoder;
  KeyGenerator keygen;
  SecretKey sk;

  Fixture()
      : ctx(CkksContext::create(CkksParams::test_small(10, 3))),
        encoder(ctx),
        keygen(ctx),
        sk(keygen.secret_key()) {}

  std::vector<std::complex<double>> message(u64 seed) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<std::complex<double>> msg(encoder.slots());
    for (auto& z : msg) z = {dist(rng), dist(rng)};
    return msg;
  }
};

/// Deserializes @p bytes and fails the test unless the outcome is clean
/// success or InvalidArgument. Returns true when it deserialized.
template <class Fn>
bool expect_clean_outcome(const Fn& deserialize, const char* what) {
  try {
    deserialize();
    return true;
  } catch (const InvalidArgument&) {
    return false;  // the advertised rejection path
  } catch (const std::exception& e) {
    ADD_FAILURE() << what << ": wrong exception type: " << e.what();
  } catch (...) {
    ADD_FAILURE() << what << ": non-std exception escaped";
  }
  return false;
}

/// Truncation at a set of byte boundaries: NO truncated prefix may parse
/// (every format ends with payload words, so a strict prefix is always
/// incomplete) and every rejection must be InvalidArgument.
template <class Fn>
void sweep_truncations(const std::vector<u8>& good,
                       const std::set<std::size_t>& cuts, const Fn& run) {
  for (std::size_t len : cuts) {
    ASSERT_LT(len, good.size());
    const std::vector<u8> cut(good.begin(), good.begin() + len);
    const bool parsed =
        expect_clean_outcome([&] { run(cut); }, "truncated blob");
    EXPECT_FALSE(parsed) << "a strict prefix of " << good.size()
                         << " bytes parsed at length " << len;
  }
}

std::set<std::size_t> every_boundary(std::size_t size) {
  std::set<std::size_t> cuts;
  for (std::size_t i = 0; i < size; ++i) cuts.insert(i);
  return cuts;
}

/// Full header + seeded random interior sample + full tail; documents the
/// budget for the big envelopes.
std::set<std::size_t> sampled_boundaries(std::size_t size, u64 seed) {
  std::set<std::size_t> cuts;
  const std::size_t head = std::min<std::size_t>(size, 96);
  for (std::size_t i = 0; i < head; ++i) cuts.insert(i);
  for (std::size_t i = size - std::min<std::size_t>(size, 64); i < size; ++i) {
    cuts.insert(i);
  }
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> dist(0, size - 1);
  for (int i = 0; i < 256; ++i) cuts.insert(dist(rng));
  return cuts;
}

/// Seeded random bit flips: each trial flips 1..4 bits of a fresh copy;
/// the outcome must be clean (parse or InvalidArgument, nothing else).
template <class Fn>
void sweep_bit_flips(const std::vector<u8>& good, u64 seed, int trials,
                     const Fn& run) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> pos(0, good.size() * 8 - 1);
  std::uniform_int_distribution<int> nflips(1, 4);
  for (int t = 0; t < trials; ++t) {
    std::vector<u8> bad = good;
    const int n = nflips(rng);
    for (int f = 0; f < n; ++f) {
      const std::size_t bit = pos(rng);
      bad[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
    }
    expect_clean_outcome([&] { run(bad); }, "bit-flipped blob");
  }
}

TEST(CorruptionSweep, CiphertextTruncatedAtEveryByteBoundary) {
  Fixture f;
  Encryptor enc(f.ctx, f.sk);  // seeded symmetric: the small ABCF shape
  const std::vector<u8> good =
      serialize_ciphertext(enc.encrypt(f.encoder.encode(f.message(1), 2)), 44);
  sweep_truncations(good, every_boundary(good.size()), [&](const auto& b) {
    (void)deserialize_ciphertext(f.ctx, b);
  });
}

TEST(CorruptionSweep, PublicKeyCiphertextTruncatedAtEveryByteBoundary) {
  Fixture f;
  Encryptor enc(f.ctx, f.keygen.public_key(f.sk));  // 2 components on wire
  const std::vector<u8> good =
      serialize_ciphertext(enc.encrypt(f.encoder.encode(f.message(2), 2)), 44);
  sweep_truncations(good, every_boundary(good.size()), [&](const auto& b) {
    (void)deserialize_ciphertext(f.ctx, b);
  });
}

TEST(CorruptionSweep, PublicKeyBlobTruncatedAtEveryByteBoundary) {
  Fixture f;
  const std::vector<u8> good =
      serialize_public_key(f.ctx, f.keygen.public_key(f.sk), 44);
  sweep_truncations(good, every_boundary(good.size()), [&](const auto& b) {
    (void)deserialize_public_key(f.ctx, b);
  });
}

TEST(CorruptionSweep, KeySwitchKeyTruncatedAtSampledBoundaries) {
  Fixture f;
  engine::BatchKeyGenerator kg(f.ctx, f.sk);
  const std::vector<u8> good =
      serialize_key_switch_key(f.ctx, kg.relin_key().key, 44);
  sweep_truncations(good, sampled_boundaries(good.size(), 101),
                    [&](const auto& b) {
                      (void)deserialize_key_switch_key(f.ctx, b);
                    });
}

TEST(CorruptionSweep, CiphertextBatchTruncatedAtSampledBoundaries) {
  Fixture f;
  Encryptor enc(f.ctx, f.sk);
  std::vector<Ciphertext> cts;
  for (u64 s = 0; s < 3; ++s) {
    cts.push_back(enc.encrypt(f.encoder.encode(f.message(s), 2)));
  }
  const std::vector<u8> good = serialize_ciphertext_batch(cts, 44);
  sweep_truncations(good, sampled_boundaries(good.size(), 202),
                    [&](const auto& b) {
                      (void)deserialize_ciphertext_batch(f.ctx, b);
                    });
}

TEST(CorruptionSweep, BitFlipsNeverEscapeTheInvalidArgumentContract) {
  Fixture f;
  Encryptor enc(f.ctx, f.sk);
  const std::vector<u8> ct =
      serialize_ciphertext(enc.encrypt(f.encoder.encode(f.message(3), 2)), 44);
  sweep_bit_flips(ct, 303, 400, [&](const auto& b) {
    (void)deserialize_ciphertext(f.ctx, b);
  });

  const std::vector<u8> pk =
      serialize_public_key(f.ctx, f.keygen.public_key(f.sk), 44);
  sweep_bit_flips(pk, 404, 400, [&](const auto& b) {
    (void)deserialize_public_key(f.ctx, b);
  });

  std::vector<Ciphertext> cts;
  cts.push_back(enc.encrypt(f.encoder.encode(f.message(4), 2)));
  cts.push_back(enc.encrypt(f.encoder.encode(f.message(5), 2)));
  const std::vector<u8> batch = serialize_ciphertext_batch(cts, 44);
  sweep_bit_flips(batch, 505, 400, [&](const auto& b) {
    (void)deserialize_ciphertext_batch(f.ctx, b);
  });

  engine::BatchKeyGenerator kg(f.ctx, f.sk);
  const std::vector<u8> ksk =
      serialize_key_switch_key(f.ctx, kg.relin_key().key, 44);
  sweep_bit_flips(ksk, 606, 200, [&](const auto& b) {
    (void)deserialize_key_switch_key(f.ctx, b);
  });
}

TEST(CorruptionSweep, ForgedCountFieldsAreRejectedBeforeAllocation) {
  // Inflate the batch count field directly (bytes 4..7 of "ABCB",
  // little-endian): the parser must reject the forged count against the
  // actual envelope size instead of trusting it into a resize.
  Fixture f;
  Encryptor enc(f.ctx, f.sk);
  std::vector<Ciphertext> cts;
  cts.push_back(enc.encrypt(f.encoder.encode(f.message(6), 2)));
  const std::vector<u8> good = serialize_ciphertext_batch(cts, 44);
  for (const u32 forged : {u32{2}, u32{1u << 20}, u32{0xffffffffu}}) {
    std::vector<u8> bad = good;
    bad[4] = static_cast<u8>(forged);
    bad[5] = static_cast<u8>(forged >> 8);
    bad[6] = static_cast<u8>(forged >> 16);
    bad[7] = static_cast<u8>(forged >> 24);
    EXPECT_THROW(deserialize_ciphertext_batch(f.ctx, bad), InvalidArgument)
        << "forged count " << forged;
  }
}

}  // namespace
}  // namespace abc::ckks
