#include <gtest/gtest.h>

#include <set>

#include "common/bitops.hpp"
#include "common/math_util.hpp"
#include "rns/ntt_prime.hpp"

namespace abc::rns {
namespace {

TEST(NttPrime, EnumerationSatisfiesCongruenceAndPrimality) {
  for (int log_n : {10, 13}) {
    auto primes = enumerate_ntt_primes(30, log_n);
    ASSERT_FALSE(primes.empty());
    const u64 two_n = u64{1} << (log_n + 1);
    for (const auto& p : primes) {
      EXPECT_TRUE(is_prime_u64(p.value));
      EXPECT_EQ(p.value % two_n, 1u);
      EXPECT_EQ(bit_length(p.value), 30);
    }
  }
}

TEST(NttPrime, KReconstructsValue) {
  auto primes = enumerate_ntt_primes(32, 13);
  for (const auto& p : primes) {
    const i128 reconstructed = (static_cast<i128>(1) << 32) +
                               static_cast<i128>(p.k) * (i128{1} << 14) + 1;
    EXPECT_EQ(static_cast<i128>(p.value), reconstructed);
  }
}

TEST(NttPrime, SparseSubsetHasSparseForm) {
  auto sparse = enumerate_sparse_ntt_primes(36, 16, 3);
  ASSERT_FALSE(sparse.empty());
  for (const auto& p : sparse) {
    EXPECT_LE(p.q_weight, 4);  // leading term + at most 3 k-terms
    EXPECT_LE(naf_weight(static_cast<i128>(p.value) - 1), 4);
  }
  // Sparse set is a strict subset of the full enumeration.
  auto all = enumerate_ntt_primes(36, 16);
  EXPECT_LT(sparse.size(), all.size());
  EXPECT_GT(sparse.size(), 0u);
}

TEST(NttPrime, PaperClaimOrderOfMagnitude) {
  // Paper Sec. IV-A: "the required 32-36 bit primes amount to a total of
  // 443". Our operationalization of sparsity (NAF weight of Q-1 <= 4)
  // should land in the same regime; the exact figure is printed by
  // bench_table1_modmul and recorded in EXPERIMENTS.md.
  const std::size_t count = count_sparse_ntt_primes(32, 36, 16, 3);
  EXPECT_GT(count, 50u);
  EXPECT_LT(count, 2000u);
}

TEST(NttPrime, SelectChainDistinctAndValid) {
  for (std::size_t count : {2u, 8u, 24u}) {
    auto chain = select_prime_chain(36, 16, count);
    EXPECT_EQ(chain.size(), count);
    std::set<u64> unique(chain.begin(), chain.end());
    EXPECT_EQ(unique.size(), count);
    for (u64 q : chain) {
      EXPECT_TRUE(is_prime_u64(q));
      EXPECT_EQ(q % (u64{1} << 17), 1u);
      EXPECT_EQ(bit_length(q), 36);
    }
  }
}

TEST(NttPrime, SmallDegreeChains) {
  // Sweep the paper's bootstrappable degrees.
  for (int log_n : {13, 14, 15, 16}) {
    auto chain = select_prime_chain(36, log_n, 4);
    for (u64 q : chain) {
      EXPECT_EQ(q % (u64{1} << (log_n + 1)), 1u);
    }
  }
}

}  // namespace
}  // namespace abc::rns
