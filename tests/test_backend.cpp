#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "backend/scalar_backend.hpp"
#include "backend/thread_pool_backend.hpp"
#include "poly/rns_poly.hpp"
#include "rns/ntt_prime.hpp"
#include "transform/op_counter.hpp"

namespace abc {
namespace {

std::vector<u64> test_primes(std::size_t count) {
  return rns::select_prime_chain(36, 10, count);
}

std::vector<i64> random_signed(std::size_t n, u64 seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<i64> dist(-(i64{1} << 30), i64{1} << 30);
  std::vector<i64> v(n);
  for (i64& x : v) x = dist(rng);
  return v;
}

void expect_equal_polys(const poly::RnsPoly& a, const poly::RnsPoly& b) {
  ASSERT_EQ(a.limbs(), b.limbs());
  ASSERT_EQ(a.domain(), b.domain());
  for (std::size_t i = 0; i < a.limbs(); ++i) {
    std::span<const u64> la = a.limb(i);
    std::span<const u64> lb = b.limb(i);
    for (std::size_t j = 0; j < la.size(); ++j) {
      ASSERT_EQ(la[j], lb[j]) << "limb " << i << " coeff " << j;
    }
  }
}

/// Runs the same op sequence on a context built over @p backend and returns
/// the resulting polynomial (exercises NTT fwd/inv, add/sub/mul/fma,
/// scalar mul and RNS expansion through the backend).
poly::RnsPoly run_op_sequence(std::shared_ptr<backend::PolyBackend> be) {
  auto ctx = poly::PolyContext::create(10, test_primes(4), std::move(be));
  const std::size_t n = ctx->n();

  poly::RnsPoly a(ctx, 4, poly::Domain::kCoeff);
  poly::RnsPoly b(ctx, 4, poly::Domain::kCoeff);
  a.set_from_signed(random_signed(n, 1));
  b.set_from_signed(random_signed(n, 2));
  a.to_eval();
  b.to_eval();

  poly::RnsPoly acc = a;
  acc.mul_inplace(b);      // a*b
  acc.add_inplace(a);      // + a
  acc.fma_inplace(a, b);   // + a*b
  acc.sub_inplace(b);      // - b
  acc.mul_scalar_inplace(12345);
  acc.negate_inplace();
  acc.to_coeff();
  return acc;
}

TEST(Backend, ThreadPoolMatchesScalarBitExactly) {
  const poly::RnsPoly ref =
      run_op_sequence(std::make_shared<backend::ScalarBackend>());
  for (std::size_t threads : {1u, 2u, 8u}) {
    const poly::RnsPoly got = run_op_sequence(
        std::make_shared<backend::ThreadPoolBackend>(threads));
    expect_equal_polys(ref, got);
  }
}

TEST(Backend, ParallelForCoversEveryIndexOnce) {
  backend::ThreadPoolBackend pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  std::atomic<bool> bad_worker{false};
  pool.parallel_for(kCount, [&](std::size_t i, std::size_t worker) {
    if (worker >= pool.workers()) bad_worker = true;
    hits[i].fetch_add(1);
  });
  EXPECT_FALSE(bad_worker);
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Backend, NestedParallelForRunsInlineOnWorker) {
  backend::ThreadPoolBackend pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t, std::size_t outer_worker) {
    pool.parallel_for(5, [&](std::size_t, std::size_t inner_worker) {
      EXPECT_EQ(inner_worker, outer_worker);
      total.fetch_add(1);
    });
  });
  EXPECT_EQ(total.load(), 40);
}

TEST(Backend, OpCountsAggregateToCaller) {
  // The analytic Fig. 2b accounting must be backend-invariant: the caller
  // sees the same op totals whether the limbs ran serially or on a pool.
  auto count_ops = [](std::shared_ptr<backend::PolyBackend> be) {
    auto ctx = poly::PolyContext::create(10, test_primes(4), std::move(be));
    poly::RnsPoly p(ctx, 4, poly::Domain::kCoeff);
    p.set_from_signed(random_signed(ctx->n(), 3));
    xf::OpCounterScope scope;
    p.to_eval();
    poly::RnsPoly q = p;
    q.mul_inplace(p);
    q.to_coeff();
    return scope.delta();
  };
  const xf::OpCounts scalar =
      count_ops(std::make_shared<backend::ScalarBackend>());
  const xf::OpCounts pooled =
      count_ops(std::make_shared<backend::ThreadPoolBackend>(4));
  EXPECT_EQ(scalar.ntt_mul, pooled.ntt_mul);
  EXPECT_EQ(scalar.ntt_add, pooled.ntt_add);
  EXPECT_EQ(scalar.poly_mul, pooled.poly_mul);
  EXPECT_EQ(scalar.poly_add, pooled.poly_add);
  EXPECT_EQ(scalar.total(), pooled.total());
  EXPECT_GT(pooled.ntt_mul, 0u);
}

TEST(Backend, JobExceptionRethrownOnCaller) {
  // A throwing job must surface as a normal exception on the submitting
  // thread (same caller-visible behavior as ScalarBackend), not terminate
  // the process, and the pool must stay usable afterwards.
  backend::ThreadPoolBackend pool(2);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [](std::size_t i, std::size_t) {
                          if (i == 3) throw InvalidArgument("boom");
                        }),
      InvalidArgument);
  std::atomic<int> ran{0};
  pool.parallel_for(4, [&](std::size_t, std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
}

/// An exception that owns a refcounted token, so a test can prove the
/// swallowed copy was actually destroyed (no leaked exception state).
struct TokenError : std::runtime_error {
  std::shared_ptr<int> token;
  explicit TokenError(std::shared_ptr<int> t)
      : std::runtime_error("token error"), token(std::move(t)) {}
};

TEST(Backend, TwoThrowingWorkersFirstWinsSecondSwallowedWithoutLeak) {
  // Two items throw in the same region. Exactly one exception reaches the
  // submitting thread (first-exception-wins); the second is swallowed —
  // and must be destroyed, not parked forever. The token's use_count
  // returning to 1 proves both copies (and the parked exception_ptr)
  // were released once the region and its Task object wound down.
  backend::ThreadPoolBackend pool(2);
  auto token = std::make_shared<int>(42);
  int caught = 0;
  try {
    pool.parallel_for(16, [&](std::size_t i, std::size_t) {
      if (i == 0 || i == 15) throw TokenError(token);
    });
  } catch (const TokenError& e) {
    ++caught;
    EXPECT_EQ(*e.token, 42);
  }
  EXPECT_EQ(caught, 1);
  // Workers release their Task reference when they re-enter the wait; give
  // them a moment rather than racing the teardown.
  for (int spin = 0; spin < 2000 && token.use_count() != 1; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(token.use_count(), 1)
      << "a swallowed or parked exception still holds the token";
  std::atomic<int> ran{0};
  pool.parallel_for(4, [&](std::size_t, std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
}

TEST(Backend, ThrowInsideNestedRegionUnwindsToCaller) {
  // A nested region runs inline on the owning worker, so a throw there
  // unwinds into the outer job, where run_share parks it — the caller
  // sees one normal exception and the pool survives.
  backend::ThreadPoolBackend pool(2);
  EXPECT_THROW(
      pool.parallel_for(4,
                        [&](std::size_t i, std::size_t) {
                          pool.parallel_for(3, [&](std::size_t j,
                                                   std::size_t) {
                            if (i == 1 && j == 2) {
                              throw InvalidArgument("nested boom");
                            }
                          });
                        }),
      InvalidArgument);
  std::atomic<int> ran{0};
  pool.parallel_for(8, [&](std::size_t, std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
}

TEST(Backend, EveryWorkerThrowingStillCompletesTheRegion) {
  // Worst case: every single item throws. The region must still complete
  // (items count as done even when their job threw), rethrow exactly one
  // exception, and leave the pool reusable.
  backend::ThreadPoolBackend pool(4);
  std::atomic<int> attempts{0};
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t, std::size_t) {
                                   attempts.fetch_add(1);
                                   throw InvalidArgument("all fail");
                                 }),
               InvalidArgument);
  EXPECT_EQ(attempts.load(), 64);
  std::atomic<int> ran{0};
  pool.parallel_for(16, [&](std::size_t, std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 16);
}

TEST(Backend, DefaultBackendIsScalar) {
  auto ctx = poly::PolyContext::create(10, test_primes(2));
  EXPECT_STREQ(ctx->backend().name(), "scalar");
  EXPECT_EQ(ctx->backend().workers(), 1u);
}

TEST(Backend, WorkerCountDefaultsToHardwareConcurrency) {
  backend::ThreadPoolBackend pool;
  EXPECT_GE(pool.workers(), 1u);
  backend::ThreadPoolBackend fixed(3);
  EXPECT_EQ(fixed.workers(), 3u);
  EXPECT_STREQ(fixed.name(), "thread_pool");
}

}  // namespace
}  // namespace abc
