// Noise-estimator validation: the analytic bounds must (a) actually bound
// the measured noise and (b) stay within a sane factor of it, across
// parameter sets and both encryption modes.

#include <gtest/gtest.h>

#include <random>

#include "ckks/encryptor.hpp"
#include "ckks/evaluator.hpp"
#include "ckks/noise.hpp"

namespace abc::ckks {
namespace {

struct NoiseCase {
  int log_n;
  std::size_t limbs;
  EncryptMode mode;
};

class NoiseBoundTest : public ::testing::TestWithParam<NoiseCase> {};

TEST_P(NoiseBoundTest, BoundHoldsAndIsNotVacuous) {
  const NoiseCase c = GetParam();
  const CkksParams params = CkksParams::test_small(c.log_n, c.limbs);
  auto ctx = CkksContext::create(params);
  CkksEncoder encoder(ctx);
  KeyGenerator keygen(ctx);
  const SecretKey sk = keygen.secret_key();
  std::unique_ptr<Encryptor> enc;
  if (c.mode == EncryptMode::kPublicKey) {
    enc = std::make_unique<Encryptor>(ctx, keygen.public_key(sk));
  } else {
    enc = std::make_unique<Encryptor>(ctx, sk);
  }
  Decryptor dec(ctx, sk);

  std::mt19937_64 rng(c.log_n);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::complex<double>> msg(encoder.slots());
  for (auto& z : msg) z = {dist(rng), dist(rng)};

  const double bound =
      slot_error_bound(fresh_noise_bound(params, c.mode), params.scale());
  double worst = 0.0;
  for (int trial = 0; trial < 3; ++trial) {
    const Ciphertext ct = enc->encrypt(encoder.encode(msg, c.limbs));
    worst = std::max(worst, measured_slot_noise(ct, dec, encoder, msg));
  }
  EXPECT_LT(worst, bound) << "bound violated";
  // High-probability bounds overshoot typical noise, but not absurdly.
  EXPECT_GT(worst, bound / 5000.0) << "bound is vacuous";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NoiseBoundTest,
    ::testing::Values(NoiseCase{10, 2, EncryptMode::kPublicKey},
                      NoiseCase{10, 2, EncryptMode::kSymmetricSeeded},
                      NoiseCase{11, 4, EncryptMode::kPublicKey},
                      NoiseCase{12, 3, EncryptMode::kSymmetricSeeded}));

TEST(Noise, SymmetricIsQuieterThanPublicKey) {
  const CkksParams params = CkksParams::test_small(12, 3);
  EXPECT_LT(fresh_noise_bound(params, EncryptMode::kSymmetricSeeded),
            fresh_noise_bound(params, EncryptMode::kPublicKey));
  EXPECT_GT(
      fresh_precision_bound_bits(params, EncryptMode::kSymmetricSeeded),
      fresh_precision_bound_bits(params, EncryptMode::kPublicKey));
}

TEST(Noise, BoundScalesWithDegreeAndSigma) {
  CkksParams small = CkksParams::test_small(10, 2);
  CkksParams large = CkksParams::test_small(14, 2);
  EXPECT_LT(fresh_noise_bound(small, EncryptMode::kPublicKey),
            fresh_noise_bound(large, EncryptMode::kPublicKey));
  CkksParams noisy = small;
  noisy.error_sigma = 6.4;
  EXPECT_LT(fresh_noise_bound(small, EncryptMode::kPublicKey),
            fresh_noise_bound(noisy, EncryptMode::kPublicKey));
}

TEST(Noise, KeySwitchBoundHoldsForRotatedCiphertexts) {
  // Post-keyswitch coverage: a rotate-there-and-back pair adds two
  // key-switch noise terms on top of the fresh noise; the combined
  // analytic bound must hold and stay non-vacuous.
  const CkksParams params = CkksParams::test_small(10, 3);
  auto ctx = CkksContext::create(params);
  CkksEncoder encoder(ctx);
  KeyGenerator keygen(ctx);
  const SecretKey sk = keygen.secret_key();
  Encryptor enc(ctx, keygen.public_key(sk));
  Decryptor dec(ctx, sk);
  Evaluator eval(ctx);
  const std::vector<int> steps = {5, -5};
  const GaloisKeys gks = keygen.galois_keys(sk, steps);

  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::complex<double>> msg(encoder.slots());
  for (auto& z : msg) z = {dist(rng), dist(rng)};

  const Ciphertext ct = enc.encrypt(encoder.encode(msg, 2));
  const Ciphertext back = eval.rotate(eval.rotate(ct, 5, gks), -5, gks);
  const double measured = measured_slot_noise(back, dec, encoder, msg);
  const double bound = slot_error_bound(
      fresh_noise_bound(params, EncryptMode::kPublicKey) +
          2.0 * keyswitch_noise_bound(params, 2),
      params.scale());
  EXPECT_LT(measured, bound) << "bound violated";
  EXPECT_GT(measured, bound / 5000.0) << "bound is vacuous";

  // The bound grows with the digit count (more accumulation terms).
  EXPECT_LT(keyswitch_noise_bound(params, 1),
            keyswitch_noise_bound(params, 2));
}

TEST(Noise, AdditionAddsNoiseLinearly) {
  const CkksParams params = CkksParams::test_small(10, 3);
  auto ctx = CkksContext::create(params);
  CkksEncoder encoder(ctx);
  KeyGenerator keygen(ctx);
  const SecretKey sk = keygen.secret_key();
  Encryptor enc(ctx, keygen.public_key(sk));
  Decryptor dec(ctx, sk);

  std::vector<std::complex<double>> msg(encoder.slots(), {0.25, -0.5});
  Ciphertext acc = enc.encrypt(encoder.encode(msg, 3));
  std::vector<std::complex<double>> expect = msg;
  // Sum 8 fresh encryptions; noise should stay near 8x fresh, far below
  // 8x the high-probability bound.
  for (int i = 0; i < 7; ++i) {
    const Ciphertext ct = enc.encrypt(encoder.encode(msg, 3));
    for (std::size_t j = 0; j < acc.size(); ++j) {
      acc.c(j).add_inplace(ct.c(j));
    }
    for (std::size_t s = 0; s < expect.size(); ++s) expect[s] += msg[s];
  }
  const double measured = measured_slot_noise(acc, dec, encoder, expect);
  const double single_bound =
      slot_error_bound(fresh_noise_bound(params, EncryptMode::kPublicKey),
                       params.scale());
  EXPECT_LT(measured, 8.0 * single_bound);
}

}  // namespace
}  // namespace abc::ckks
