// The serving-daemon battery: multi-threaded soak (responses bit-identical
// to serial execution at every worker count), work-stealing determinism,
// backpressure/overload with typed rejections, warm-context cache keying,
// failpoint-driven fault drills on accept/dispatch/migrate/evaluate, and
// the Unix-domain-socket transport end to end.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <complex>
#include <cstring>
#include <future>
#include <random>
#include <thread>
#include <vector>

#include "backend/thread_pool_backend.hpp"
#include "common/failpoint.hpp"
#include "obs/metrics.hpp"
#include "engine/batch_evaluator.hpp"
#include "engine/client_session.hpp"
#include "server/server.hpp"
#include "server/transport.hpp"

namespace abc {
namespace {

using server::LoopbackChannel;
using server::Op;
using server::Server;
using server::ServerConfig;
using server::Status;
using server::UdsChannel;
using server::UdsServer;

ckks::CkksParams small_params() { return ckks::CkksParams::test_small(10, 3); }

std::vector<std::vector<std::complex<double>>> random_batch(
    std::size_t batch, std::size_t slots, u64 seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::vector<std::complex<double>>> msgs(batch);
  for (auto& m : msgs) {
    m.resize(slots);
    for (auto& z : m) z = {dist(rng), dist(rng)};
  }
  return msgs;
}

ckks::KeyBundleFrames frames_of(const engine::KeyBundle& kb) {
  return ckks::KeyBundleFrames{kb.public_key, kb.relin_key, kb.galois_keys};
}

ckks::RequestFrame make_request(u64 tenant, u64 id, Op op, i64 arg,
                                std::vector<u8> payload) {
  ckks::RequestFrame req;
  req.tenant = tenant;
  req.request_id = id;
  req.op = static_cast<u8>(op);
  req.op_arg = arg;
  req.payload = std::move(payload);
  return req;
}

Status status_of(const ckks::ResponseFrame& resp) {
  return static_cast<Status>(resp.status);
}

/// Every test leaves the failpoint registry clean.
struct ServerTest : ::testing::Test {
  void TearDown() override { fail::disarm_all(); }
};

/// One synthetic client: a ClientSession whose uploads become request
/// payloads. The session lives on its *own* context built from the same
/// parameters the server publishes — exactly the remote-client shape.
struct Client {
  std::shared_ptr<const ckks::CkksContext> ctx;
  engine::ClientSession session;

  explicit Client(const ckks::CkksParams& params,
                  std::vector<int> rotations = {1})
      : ctx(ckks::CkksContext::create(params)),
        session(ctx, engine::SessionConfig{std::move(rotations)}) {}

  std::size_t eval_limbs() const { return ctx->max_limbs() - 1; }
};

// ---------------------------------------------------------------------------
// Soak: bit-identity vs serial execution at every worker count
// ---------------------------------------------------------------------------

TEST_F(ServerTest, SoakResponsesBitIdenticalToSerialAtEveryWorkerCount) {
  const ckks::CkksParams params = small_params();
  Client client(params);
  const ckks::KeyBundleFrames frames = frames_of(client.session.key_bundle());

  // A fixed request mix prepared once: the same bytes go to every server
  // configuration, so responses must match across configurations too.
  const auto msgs = random_batch(3, client.ctx->slots(), 2025);
  constexpr std::size_t kRequests = 9;
  std::vector<ckks::RequestFrame> requests;
  for (std::size_t i = 0; i < kRequests; ++i) {
    const Op op = (i % 3 == 0) ? Op::kEcho
                  : (i % 3 == 1) ? Op::kRotate
                                 : Op::kSquare;
    requests.push_back(make_request(
        /*tenant=*/1, /*id=*/i + 1, op, /*arg=*/op == Op::kRotate ? 1 : 0,
        client.session.upload(msgs, client.eval_limbs())));
  }

  std::vector<std::vector<u8>> reference;  // payloads from the first config
  for (const std::size_t workers : {1u, 2u, 4u}) {
    for (const bool stealing : {false, true}) {
      SCOPED_TRACE("workers " + std::to_string(workers) + " stealing " +
                   std::to_string(stealing));
      ServerConfig cfg;
      cfg.workers = workers;
      cfg.work_stealing = stealing;
      cfg.param_sets = {params};
      Server srv(cfg);
      // Fresh server, first tenant: id 1, matching the prepared frames.
      ASSERT_EQ(srv.register_tenant(params, frames), 1u);

      // N concurrent synthetic clients submit the mix in parallel.
      std::vector<std::future<ckks::ResponseFrame>> futures(kRequests);
      {
        std::vector<std::thread> clients;
        for (int c = 0; c < 3; ++c) {
          clients.emplace_back([&, c] {
            for (std::size_t i = static_cast<std::size_t>(c); i < kRequests;
                 i += 3) {
              futures[i] = srv.submit(requests[i]);
            }
          });
        }
        for (auto& t : clients) t.join();
      }

      for (std::size_t i = 0; i < kRequests; ++i) {
        const ckks::ResponseFrame resp = futures[i].get();
        ASSERT_EQ(status_of(resp), Status::kOk) << resp.error;
        EXPECT_EQ(resp.request_id, requests[i].request_id);
        // Bit-identical to the serial reference on this server...
        const ckks::ResponseFrame serial = srv.process_serial(requests[i]);
        ASSERT_EQ(status_of(serial), Status::kOk) << serial.error;
        EXPECT_EQ(resp.payload, serial.payload) << "request " << i;
        // ...and to every other worker count / steal schedule.
        if (reference.size() <= i) {
          reference.push_back(resp.payload);
        } else {
          EXPECT_EQ(resp.payload, reference[i]) << "request " << i;
        }
      }
      const server::ServerStats stats = srv.stats();
      if (obs::kMetricsEnabled) {  // counters read 0 under ABC_NO_METRICS
        EXPECT_EQ(stats.accepted, kRequests);
        EXPECT_EQ(stats.processed, kRequests);
      }
    }
  }
}

TEST_F(ServerTest, WorkStealingMigratesRequestsWithoutChangingBytes) {
  const ckks::CkksParams params = small_params();
  Client client(params);
  const ckks::KeyBundleFrames frames = frames_of(client.session.key_bundle());
  const auto msgs = random_batch(2, client.ctx->slots(), 7);

  ServerConfig cfg;
  cfg.workers = 2;
  cfg.pin_dispatch_to = 0;  // everything lands on worker 0's queue...
  cfg.queue_capacity = 64;
  cfg.param_sets = {params};
  Server srv(cfg);
  const u64 tenant = srv.register_tenant(params, frames);

  // ...and a per-dispatch delay keeps worker 0 busy long enough that
  // worker 1 must steal to make progress.
  fail::Policy slow;
  slow.action = fail::Action::kDelay;
  slow.delay_us = 1000;
  fail::arm(fail::points::kServerDispatch, slow);

  const std::vector<u8> upload =
      client.session.upload(msgs, client.eval_limbs());
  const ckks::ResponseFrame serial =
      srv.process_serial(make_request(tenant, 1, Op::kEcho, 0, upload));
  ASSERT_EQ(status_of(serial), Status::kOk) << serial.error;

  // Bounded retry so no scheduler pathology can flake the assertion. The
  // steal counter reads 0 under ABC_NO_METRICS, so that build runs one
  // byte-identity round without the counter-driven loop.
  u64 steals = 0;
  const int rounds = obs::kMetricsEnabled ? 20 : 1;
  for (int round = 0; round < rounds && steals == 0; ++round) {
    std::vector<std::future<ckks::ResponseFrame>> futures;
    for (u64 i = 0; i < 8; ++i) {
      futures.push_back(
          srv.submit(make_request(tenant, 100 + i, Op::kEcho, 0, upload)));
    }
    for (auto& f : futures) {
      const ckks::ResponseFrame resp = f.get();
      ASSERT_EQ(status_of(resp), Status::kOk) << resp.error;
      // Stolen or not, the bytes are the bytes.
      EXPECT_EQ(resp.payload, serial.payload);
    }
    steals = srv.stats().steals;
  }
  if (obs::kMetricsEnabled) EXPECT_GT(steals, 0u);
}

// ---------------------------------------------------------------------------
// Backpressure and admission control (satellite 1)
// ---------------------------------------------------------------------------

TEST_F(ServerTest, OverloadFloodRejectsTypedImmediatelyAndRecovers) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 4;
  cfg.work_stealing = false;
  Server srv(cfg);

  // Slow the lone worker so the flood outruns it: ~20 ms per dispatch
  // against a burst of 64 sub-millisecond submits.
  fail::Policy slow;
  slow.action = fail::Action::kDelay;
  slow.delay_us = 20000;
  fail::arm(fail::points::kServerDispatch, slow);

  constexpr std::size_t kFlood = 64;
  std::vector<std::future<ckks::ResponseFrame>> futures;
  std::size_t immediate = 0;
  for (std::size_t i = 0; i < kFlood; ++i) {
    futures.push_back(srv.submit(make_request(9, i, static_cast<Op>(42), 0,
                                              {/*empty payload*/})));
    // A rejected request's future is ready before submit() returns —
    // admission never blocks the flooder on the flooded queue.
    if (futures.back().wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      ++immediate;
    }
  }

  std::size_t queue_full = 0;
  for (auto& f : futures) {
    const ckks::ResponseFrame resp = f.get();
    const Status s = status_of(resp);
    // Clean typed outcome for every request: processed (this op byte is
    // unknown, so kUnknownOp) or rejected at admission.
    ASSERT_TRUE(s == Status::kQueueFull || s == Status::kUnknownOp)
        << static_cast<int>(resp.status);
    if (s == Status::kQueueFull) {
      ++queue_full;
      EXPECT_FALSE(resp.error.empty());
    }
  }
  EXPECT_GT(queue_full, 0u);
  EXPECT_GE(immediate, queue_full);  // every rejection was instant
  const server::ServerStats stats = srv.stats();
  if (obs::kMetricsEnabled) {  // counters read 0 under ABC_NO_METRICS
    EXPECT_EQ(stats.rejected_queue_full, queue_full);
    EXPECT_EQ(stats.accepted + stats.rejected_queue_full, kFlood);
  }

  // Recovery: with the delay gone the same server drains normally.
  fail::disarm_all();
  const ckks::ResponseFrame after =
      srv.call(make_request(9, 999, static_cast<Op>(42), 0, {}));
  EXPECT_EQ(status_of(after), Status::kUnknownOp);
}

TEST_F(ServerTest, QueueFullFailpointCoversTheRejectionPath) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 2;
  cfg.work_stealing = false;
  Server srv(cfg);

  fail::Policy slow;
  slow.action = fail::Action::kDelay;
  slow.delay_us = 20000;
  fail::arm(fail::points::kServerDispatch, slow);
  fail::arm(fail::points::kServerQueueFull, fail::Policy{});  // throws

  std::vector<std::future<ckks::ResponseFrame>> futures;
  for (std::size_t i = 0; i < 32; ++i) {
    futures.push_back(
        srv.submit(make_request(9, i, static_cast<Op>(42), 0, {})));
  }
  std::size_t failpoint_rejections = 0;
  for (auto& f : futures) {
    const ckks::ResponseFrame resp = f.get();
    // Even with a fault injected *inside* the rejection path, the
    // response is still typed kQueueFull — never a hang or a crash.
    if (status_of(resp) == Status::kQueueFull) {
      ++failpoint_rejections;
      EXPECT_NE(resp.error.find(fail::points::kServerQueueFull),
                std::string::npos);
    }
  }
  EXPECT_GT(failpoint_rejections, 0u);
  EXPECT_EQ(fail::fires(fail::points::kServerQueueFull),
            failpoint_rejections);
}

TEST_F(ServerTest, AdmissionBoundsPayloadBytesBeforeEnqueue) {
  ServerConfig cfg;
  cfg.max_request_bytes = 16;
  Server srv(cfg);

  auto rejected = srv.submit(
      make_request(1, 1, Op::kEcho, 0, std::vector<u8>(17, 0xab)));
  ASSERT_EQ(rejected.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const ckks::ResponseFrame resp = rejected.get();
  EXPECT_EQ(status_of(resp), Status::kTooLarge);
  EXPECT_FALSE(resp.error.empty());

  // At the bound is admitted (and then rejected downstream as garbage —
  // a *different* typed error, proving it reached processing).
  const ckks::ResponseFrame at_bound =
      srv.call(make_request(1, 2, Op::kEcho, 0, std::vector<u8>(16, 0xab)));
  EXPECT_EQ(status_of(at_bound), Status::kUnknownTenant);
  if (obs::kMetricsEnabled) EXPECT_EQ(srv.stats().rejected_too_large, 1u);
}

TEST_F(ServerTest, StoppedServerAnswersShuttingDown) {
  Server srv(ServerConfig{});
  srv.stop();
  auto f = srv.submit(make_request(1, 1, Op::kEcho, 0, {}));
  ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(status_of(f.get()), Status::kShuttingDown);
  srv.stop();  // idempotent
}

TEST_F(ServerTest, EveryFailureModeAnswersItsTypedStatus) {
  const ckks::CkksParams params = small_params();
  Client client(params);
  ServerConfig cfg;
  cfg.param_sets = {params};
  Server srv(cfg);
  const u64 tenant =
      srv.register_tenant(params, frames_of(client.session.key_bundle()));
  const auto msgs = random_batch(2, client.ctx->slots(), 3);
  const std::vector<u8> upload =
      client.session.upload(msgs, client.eval_limbs());

  // The good path first, so the errors below are errors of the input.
  EXPECT_EQ(status_of(srv.call(make_request(tenant, 1, Op::kEcho, 0, upload))),
            Status::kOk);
  // Unregistered tenant.
  EXPECT_EQ(status_of(srv.call(make_request(tenant + 99, 2, Op::kEcho, 0,
                                            upload))),
            Status::kUnknownTenant);
  // Op byte outside the enum.
  EXPECT_EQ(
      status_of(srv.call(make_request(tenant, 3, static_cast<Op>(42), 0, {}))),
      Status::kUnknownOp);
  // Garbage ciphertext envelope.
  EXPECT_EQ(status_of(srv.call(
                make_request(tenant, 4, Op::kEcho, 0, {0x01, 0x02, 0x03}))),
            Status::kBadRequest);
  // Rotation step with no registered Galois key.
  EXPECT_EQ(
      status_of(srv.call(make_request(tenant, 5, Op::kRotate, 3, upload))),
      Status::kBadRequest);
  // Register against a menu index the server does not publish.
  EXPECT_EQ(status_of(srv.call(make_request(0, 6, Op::kRegister, 7,
                                            {0x00, 0x01}))),
            Status::kBadRequest);
  // Register with a corrupt bundle envelope.
  EXPECT_EQ(status_of(srv.call(make_request(0, 7, Op::kRegister, 0,
                                            {0x41, 0x42, 0x43}))),
            Status::kBadRequest);
  // None of it took the server down.
  EXPECT_EQ(status_of(srv.call(make_request(tenant, 8, Op::kEcho, 0, upload))),
            Status::kOk);
}

// ---------------------------------------------------------------------------
// Warm-context cache keying (satellite 3)
// ---------------------------------------------------------------------------

TEST_F(ServerTest, SameParamsShareOneWarmContextDifferentParamsNever) {
  const ckks::CkksParams params_a = small_params();
  const ckks::CkksParams params_b = ckks::CkksParams::test_small(10, 2);
  ServerConfig cfg;
  cfg.param_sets = {params_a, params_b};
  Server srv(cfg);

  const auto ctx_a1 = srv.context_for(params_a);
  const auto ctx_a2 = srv.context_for(params_a);
  const auto ctx_b = srv.context_for(params_b);
  EXPECT_EQ(ctx_a1.get(), ctx_a2.get());  // same params: one warm context
  EXPECT_NE(ctx_a1.get(), ctx_b.get());   // different params: never shared

  // Two tenants registering under the same menu entry land on the shared
  // context; registration over the wire hands back distinct monotone ids.
  LoopbackChannel chan(srv);
  Client c1(params_a);
  Client c2(params_a);
  const u64 id1 =
      server::register_over_channel(chan, 0, c1.session.key_bundle());
  const u64 id2 =
      server::register_over_channel(chan, 0, c2.session.key_bundle());
  EXPECT_LT(id1, id2);  // ids never reused, strictly increasing
  EXPECT_EQ(srv.context_for(params_a).get(), ctx_a1.get());
}

TEST_F(ServerTest, SharedContextKeepsStreamAndSecretIdsMonotoneAcrossTenants) {
  // Loopback tenants that build their sessions directly on the daemon's
  // cached context: the context-wide counters must keep every tenant's
  // key and encryption streams disjoint (the PR 5 never-alias guarantee,
  // now across tenants of one warm context).
  const ckks::CkksParams params = small_params();
  Server srv(ServerConfig{.param_sets = {params}});
  const auto ctx = srv.context_for(params);

  engine::ClientSession s1(ctx);
  engine::ClientSession s2(ctx);
  EXPECT_NE(s1.secret_key().stream_id, s2.secret_key().stream_id);
  EXPECT_LT(s1.secret_key().stream_id, s2.secret_key().stream_id);

  // Both sessions encrypting the same messages on the shared context:
  // every ciphertext keystream id is unique — within a session (the
  // context-wide counter) and across sessions (the secret id folded into
  // the stream id) — so no two tenants can ever alias a keystream.
  const auto msgs = random_batch(2, ctx->slots(), 11);
  auto cts1 = s1.encrypt(msgs, ctx->max_limbs());
  auto cts2 = s2.encrypt(msgs, ctx->max_limbs());
  std::vector<u64> ids;
  for (const auto& ct : cts1) {
    ASSERT_TRUE(ct.compressed_c1.has_value());
    ids.push_back(ct.compressed_c1->stream_id);
  }
  for (const auto& ct : cts2) {
    ASSERT_TRUE(ct.compressed_c1.has_value());
    ids.push_back(ct.compressed_c1->stream_id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
  // The context-wide counter itself is monotone across tenants: a fresh
  // reservation lands above everything handed out so far.
  EXPECT_GT(ctx->reserve_stream_ids(1), 0u);
}

// ---------------------------------------------------------------------------
// Fault drills (tentpole battery + failpoint weave)
// ---------------------------------------------------------------------------

TEST_F(ServerTest, AcceptFaultAnswersTypedAndServerSurvives) {
  Server srv(ServerConfig{});
  fail::Policy boom;
  boom.action = fail::Action::kThrowRuntimeError;
  fail::arm(fail::points::kServerAccept, boom);

  auto f = srv.submit(make_request(1, 1, static_cast<Op>(42), 0, {}));
  ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  const ckks::ResponseFrame resp = f.get();
  EXPECT_EQ(status_of(resp), Status::kInternal);
  EXPECT_NE(resp.error.find(fail::points::kServerAccept), std::string::npos);
  EXPECT_GT(fail::fires(fail::points::kServerAccept), 0u);

  fail::disarm(fail::points::kServerAccept);
  EXPECT_EQ(status_of(srv.call(make_request(1, 2, static_cast<Op>(42), 0, {}))),
            Status::kUnknownOp);
}

TEST_F(ServerTest, DispatchFaultFailsOneRequestNotTheWorker) {
  const ckks::CkksParams params = small_params();
  Client client(params);
  Server srv(ServerConfig{.param_sets = {params}});
  const u64 tenant =
      srv.register_tenant(params, frames_of(client.session.key_bundle()));
  const auto msgs = random_batch(2, client.ctx->slots(), 5);
  const std::vector<u8> upload =
      client.session.upload(msgs, client.eval_limbs());
  const ckks::ResponseFrame serial =
      srv.process_serial(make_request(tenant, 1, Op::kEcho, 0, upload));

  fail::Policy once;
  once.action = fail::Action::kThrowRuntimeError;
  once.max_fires = 1;
  fail::arm(fail::points::kServerDispatch, once);

  const ckks::ResponseFrame faulted =
      srv.call(make_request(tenant, 1, Op::kEcho, 0, upload));
  EXPECT_EQ(status_of(faulted), Status::kInternal);
  EXPECT_NE(faulted.error.find(fail::points::kServerDispatch),
            std::string::npos);

  // The worker that absorbed the fault serves the retry bit-identically.
  const ckks::ResponseFrame retried =
      srv.call(make_request(tenant, 1, Op::kEcho, 0, upload));
  ASSERT_EQ(status_of(retried), Status::kOk) << retried.error;
  EXPECT_EQ(retried.payload, serial.payload);
}

TEST_F(ServerTest, EvaluateItemFaultIsTypedAndLeavesNoResidue) {
  const ckks::CkksParams params = small_params();
  Client client(params);
  Server srv(ServerConfig{.param_sets = {params}});
  const u64 tenant =
      srv.register_tenant(params, frames_of(client.session.key_bundle()));
  const auto msgs = random_batch(2, client.ctx->slots(), 13);
  const ckks::RequestFrame request = make_request(
      tenant, 1, Op::kRotate, 1,
      client.session.upload(msgs, client.eval_limbs()));
  const ckks::ResponseFrame serial = srv.process_serial(request);
  ASSERT_EQ(status_of(serial), Status::kOk) << serial.error;

  fail::arm(fail::points::kEvaluateItem, fail::Policy{});  // InvalidArgument
  EXPECT_EQ(status_of(srv.call(request)), Status::kBadRequest);
  fail::disarm(fail::points::kEvaluateItem);

  // Same request bytes after the drill: bit-identical to the reference.
  const ckks::ResponseFrame after = srv.call(request);
  ASSERT_EQ(status_of(after), Status::kOk) << after.error;
  EXPECT_EQ(after.payload, serial.payload);
}

TEST_F(ServerTest, MigrateFaultFailsStolenRequestsTyped) {
  const ckks::CkksParams params = small_params();
  Client client(params);
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.pin_dispatch_to = 0;
  cfg.queue_capacity = 64;
  cfg.param_sets = {params};
  Server srv(cfg);
  const u64 tenant =
      srv.register_tenant(params, frames_of(client.session.key_bundle()));
  const auto msgs = random_batch(2, client.ctx->slots(), 17);
  const std::vector<u8> upload =
      client.session.upload(msgs, client.eval_limbs());

  fail::Policy slow;
  slow.action = fail::Action::kDelay;
  slow.delay_us = 1000;
  fail::arm(fail::points::kServerDispatch, slow);
  fail::Policy boom;
  boom.action = fail::Action::kThrowRuntimeError;
  fail::arm(fail::points::kServerMigrate, boom);

  for (int round = 0;
       round < 20 && fail::fires(fail::points::kServerMigrate) == 0;
       ++round) {
    std::vector<std::future<ckks::ResponseFrame>> futures;
    for (u64 i = 0; i < 8; ++i) {
      futures.push_back(
          srv.submit(make_request(tenant, i, Op::kEcho, 0, upload)));
    }
    for (auto& f : futures) {
      const ckks::ResponseFrame resp = f.get();
      // A stolen request absorbs the injected fault as kInternal; the
      // rest succeed. Nothing hangs, no worker dies.
      ASSERT_TRUE(status_of(resp) == Status::kOk ||
                  status_of(resp) == Status::kInternal)
          << static_cast<int>(resp.status);
      if (status_of(resp) == Status::kInternal) {
        EXPECT_NE(resp.error.find(fail::points::kServerMigrate),
                  std::string::npos);
      }
    }
  }
  EXPECT_GT(fail::fires(fail::points::kServerMigrate), 0u);

  fail::disarm_all();
  EXPECT_EQ(status_of(srv.call(make_request(tenant, 99, Op::kEcho, 0, upload))),
            Status::kOk);
}

// ---------------------------------------------------------------------------
// BatchEvaluator: the server-side engine in isolation
// ---------------------------------------------------------------------------

TEST_F(ServerTest, BatchEvaluatorBitIdenticalAcrossBackends) {
  const ckks::CkksParams params = small_params();
  Client client(params);
  const ckks::KeyBundleFrames frames = frames_of(client.session.key_bundle());
  const auto msgs = random_batch(4, client.ctx->slots(), 23);
  const std::vector<u8> upload =
      client.session.upload(msgs, client.eval_limbs());

  auto run = [&](std::shared_ptr<backend::PolyBackend> backend) {
    auto ctx = ckks::CkksContext::create(params, std::move(backend));
    const server::TenantSession keys =
        server::parse_tenant_bundle(ctx, frames);
    const auto cts = ckks::deserialize_ciphertext_batch(ctx, upload);
    engine::BatchEvaluator eval(ctx);
    const auto rotated = eval.rotate_batch(cts, 1, keys.expand_gks());
    const auto squared = eval.square_relin_batch(cts, keys.expand_rlk());
    return std::make_pair(ckks::serialize_ciphertext_batch(rotated),
                          ckks::serialize_ciphertext_batch(squared));
  };

  const auto scalar = run(nullptr);
  const auto pooled = run(std::make_shared<backend::ThreadPoolBackend>(4));
  EXPECT_EQ(scalar.first, pooled.first);    // rotate: any worker count
  EXPECT_EQ(scalar.second, pooled.second);  // square: any worker count
}

TEST_F(ServerTest, BatchEvaluatorReportModeIsolatesTheFaultedItem) {
  const ckks::CkksParams params = small_params();
  Client client(params);
  const ckks::KeyBundleFrames frames = frames_of(client.session.key_bundle());
  const auto msgs = random_batch(3, client.ctx->slots(), 29);
  const std::vector<u8> upload =
      client.session.upload(msgs, client.eval_limbs());

  auto ctx = ckks::CkksContext::create(params);  // scalar: in-order items
  const server::TenantSession keys = server::parse_tenant_bundle(ctx, frames);
  const ckks::GaloisKeys gks = keys.expand_gks();
  const auto cts = ckks::deserialize_ciphertext_batch(ctx, upload);
  engine::BatchEvaluator eval(ctx);
  const auto clean = eval.rotate_batch(cts, 1, gks);

  fail::Policy second_item;
  second_item.trigger = fail::Trigger::kNthHit;
  second_item.nth = 2;
  fail::arm(fail::points::kEvaluateItem, second_item);
  engine::BatchErrorReport report;
  const auto faulted = eval.rotate_batch(cts, 1, gks, report);
  fail::disarm_all();

  ASSERT_EQ(report.size(), cts.size());
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.failed, 1u);
  EXPECT_FALSE(report.items[1].ok);  // scalar backend: hit 2 = item 1
  EXPECT_TRUE(report.items[0].ok);
  EXPECT_TRUE(report.items[2].ok);
  // Survivors are the exact bytes of the clean run.
  EXPECT_EQ(ckks::serialize_ciphertext(faulted[0]),
            ckks::serialize_ciphertext(clean[0]));
  EXPECT_EQ(ckks::serialize_ciphertext(faulted[2]),
            ckks::serialize_ciphertext(clean[2]));
}

// ---------------------------------------------------------------------------
// Unix-domain-socket transport
// ---------------------------------------------------------------------------

TEST_F(ServerTest, UdsTransportServesConcurrentSessionsEndToEnd) {
  const ckks::CkksParams params = small_params();
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.param_sets = {params};
  Server srv(cfg);
  const std::string path = "./abc_uds_test.sock";
  UdsServer uds(srv, path);

  // Four concurrent clients, each with its own connection and session,
  // each doing a full verified echo round trip through the socket.
  std::vector<std::string> failures;
  std::mutex failures_m;
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      try {
        Client client(params);
        UdsChannel chan(path);
        const u64 tenant = server::register_over_channel(
            chan, 0, client.session.key_bundle());
        const auto msgs =
            random_batch(2, client.ctx->slots(), 100 + static_cast<u64>(c));
        const auto report = client.session.round_trip_with_retry(
            msgs, client.eval_limbs(),
            server::as_session_transport(chan, tenant, Op::kEcho));
        if (!report.ok) {
          throw std::runtime_error("round trip did not verify");
        }
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(failures_m);
        failures.push_back("client " + std::to_string(c) + ": " + e.what());
      }
    });
  }
  for (auto& t : clients) t.join();
  for (const auto& f : failures) ADD_FAILURE() << f;

  // A compute op over the same socket: rotate by 1 and check the slots
  // actually moved.
  Client client(params);
  UdsChannel chan(path);
  const u64 tenant =
      server::register_over_channel(chan, 0, client.session.key_bundle());
  const auto msgs = random_batch(2, client.ctx->slots(), 200);
  ckks::ResponseFrame resp = chan.call(make_request(
      tenant, 1, Op::kRotate, 1,
      client.session.upload(msgs, client.eval_limbs())));
  ASSERT_EQ(status_of(resp), Status::kOk) << resp.error;
  const auto rotated =
      ckks::deserialize_ciphertext_batch(client.ctx, resp.payload);
  const auto decoded = client.session.decrypt_batch(rotated);
  ASSERT_EQ(decoded.size(), msgs.size());
  const std::size_t slots = client.ctx->slots();
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    for (std::size_t j = 0; j < slots; ++j) {
      EXPECT_NEAR(decoded[i][j].real(), msgs[i][(j + 1) % slots].real(), 1e-2);
      EXPECT_NEAR(decoded[i][j].imag(), msgs[i][(j + 1) % slots].imag(), 1e-2);
    }
  }
  uds.stop();
}

TEST_F(ServerTest, UdsRejectsOversizedFrameClaimWithoutAllocating) {
  ServerConfig cfg;
  cfg.max_request_bytes = 1u << 20;
  Server srv(cfg);
  const std::string path = "./abc_uds_bound_test.sock";
  UdsServer uds(srv, path);

  // Raw socket speaking the framing by hand: claim a 4 GiB frame. The
  // server must answer a typed kTooLarge response (having allocated
  // nothing close to the claim) and close the connection.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const u8 huge_claim[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(fd, huge_claim, 4, 0), 4);

  u8 header[4] = {};
  std::size_t got = 0;
  while (got < 4) {
    const ssize_t n = ::recv(fd, header + got, 4 - got, 0);
    ASSERT_GT(n, 0);
    got += static_cast<std::size_t>(n);
  }
  u64 len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<u64>(header[i]) << (8 * i);
  ASSERT_GT(len, 0u);
  ASSERT_LT(len, u64{1} << 20);  // a small typed response, not an echo
  std::vector<u8> frame(static_cast<std::size_t>(len));
  got = 0;
  while (got < frame.size()) {
    const ssize_t n = ::recv(fd, frame.data() + got, frame.size() - got, 0);
    ASSERT_GT(n, 0);
    got += static_cast<std::size_t>(n);
  }
  const ckks::ResponseFrame resp = ckks::deserialize_response_frame(frame);
  EXPECT_EQ(status_of(resp), Status::kTooLarge);
  EXPECT_FALSE(resp.error.empty());
  ::close(fd);
  uds.stop();
}

}  // namespace
}  // namespace abc
