#include <gtest/gtest.h>

#include "core/stream_sim.hpp"

namespace abc::core {
namespace {

Pass simple_pass(std::string label, UnitKind unit, double elems, double rate,
                 std::vector<std::size_t> deps = {}) {
  Pass p;
  p.label = std::move(label);
  p.unit = unit;
  p.elems = elems;
  p.unit_rate = rate;
  p.deps = std::move(deps);
  return p;
}

TEST(StreamSim, SinglePassDuration) {
  StreamSimulator sim(1, 1, 1, 100.0);
  std::vector<Pass> passes = {simple_pass("a", UnitKind::kMse, 1000, 10)};
  const SimReport r = sim.run(passes);
  EXPECT_NEAR(r.total_cycles, 100.0, 1e-6);
  EXPECT_DOUBLE_EQ(r.dram_throughput_factor, 1.0);
}

TEST(StreamSim, FillLatencyAdds) {
  StreamSimulator sim(1, 1, 1, 100.0);
  Pass p = simple_pass("a", UnitKind::kPnl, 1000, 10);
  p.fill_latency = 50;
  const SimReport r = sim.run({p});
  EXPECT_NEAR(r.total_cycles, 150.0, 1e-6);
}

TEST(StreamSim, DependencySerializes) {
  StreamSimulator sim(1, 1, 1, 100.0);
  std::vector<Pass> passes;
  passes.push_back(simple_pass("a", UnitKind::kMse, 1000, 10));
  passes.push_back(simple_pass("b", UnitKind::kPnl, 500, 10, {0}));
  const SimReport r = sim.run(passes);
  EXPECT_NEAR(r.total_cycles, 150.0, 1e-6);
  EXPECT_NEAR(r.passes[1].start_cycle, 100.0, 1e-6);
}

TEST(StreamSim, IndependentPassesOverlapAcrossUnits) {
  StreamSimulator sim(1, 1, 1, 100.0);
  std::vector<Pass> passes;
  passes.push_back(simple_pass("a", UnitKind::kMse, 1000, 10));
  passes.push_back(simple_pass("b", UnitKind::kPnl, 1000, 10));
  const SimReport r = sim.run(passes);
  EXPECT_NEAR(r.total_cycles, 100.0, 1e-6);
}

TEST(StreamSim, ExclusiveUnitQueues) {
  StreamSimulator sim(1, 1, 1, 100.0);
  std::vector<Pass> passes;
  passes.push_back(simple_pass("a", UnitKind::kMse, 1000, 10));
  passes.push_back(simple_pass("b", UnitKind::kMse, 1000, 10));
  const SimReport r = sim.run(passes);
  EXPECT_NEAR(r.total_cycles, 200.0, 1e-6);  // one MSE slot
}

TEST(StreamSim, PnlPoolRunsInParallel) {
  StreamSimulator sim(1, 4, 1, 1000.0);
  std::vector<Pass> passes;
  for (int i = 0; i < 8; ++i) {
    passes.push_back(simple_pass("p" + std::to_string(i), UnitKind::kPnl,
                                 1000, 10));
  }
  const SimReport r = sim.run(passes);
  // 8 passes over 4 slots: two waves of 100 cycles.
  EXPECT_NEAR(r.total_cycles, 200.0, 1e-6);
}

TEST(StreamSim, DramThrottlingScalesRate) {
  StreamSimulator sim(1, 1, 1, /*budget=*/50.0);
  Pass p = simple_pass("a", UnitKind::kPnl, 1000, 10);
  p.dram_read_bytes_per_elem = 10.0;  // wants 100 B/cyc, budget 50
  const SimReport r = sim.run({p});
  EXPECT_NEAR(r.total_cycles, 200.0, 1e-6);  // half speed
  EXPECT_NEAR(r.dram_throughput_factor, 0.5, 1e-6);
  EXPECT_NEAR(r.dram_read_bytes, 10000.0, 1e-3);
}

TEST(StreamSim, FairSharingBetweenDramConsumers) {
  StreamSimulator sim(1, 2, 1, /*budget=*/100.0);
  std::vector<Pass> passes;
  for (int i = 0; i < 2; ++i) {
    Pass p = simple_pass("p" + std::to_string(i), UnitKind::kPnl, 1000, 10);
    p.dram_read_bytes_per_elem = 10.0;  // each wants 100 B/cyc
    passes.push_back(p);
  }
  const SimReport r = sim.run(passes);
  // Combined demand 200 vs budget 100: both run at half rate.
  EXPECT_NEAR(r.total_cycles, 200.0, 1e-6);
}

TEST(StreamSim, NonDramPassUnaffectedByThrottling) {
  StreamSimulator sim(1, 2, 1, /*budget=*/10.0);
  std::vector<Pass> passes;
  Pass heavy = simple_pass("heavy", UnitKind::kPnl, 1000, 10);
  heavy.dram_read_bytes_per_elem = 10.0;  // 10x over budget
  passes.push_back(heavy);
  passes.push_back(simple_pass("light", UnitKind::kPnl, 1000, 10));
  const SimReport r = sim.run(passes);
  EXPECT_NEAR(r.passes[1].end_cycle, 100.0, 1e-6);   // unthrottled
  EXPECT_NEAR(r.passes[0].end_cycle, 1000.0, 1e-6);  // 10x slower
}

TEST(StreamSim, RejectsMalformedGraphs) {
  StreamSimulator sim(1, 1, 1, 100.0);
  // Dangling dependency.
  Pass p = simple_pass("a", UnitKind::kMse, 10, 1, {5});
  EXPECT_THROW(sim.run({p}), InvalidArgument);
  // Cycle: a <-> b.
  std::vector<Pass> cyc;
  cyc.push_back(simple_pass("a", UnitKind::kMse, 10, 1, {1}));
  cyc.push_back(simple_pass("b", UnitKind::kMse, 10, 1, {0}));
  EXPECT_THROW(sim.run(cyc), LogicError);
}

TEST(StreamSim, MultiRscPoolsAreIndependent) {
  StreamSimulator sim(2, 1, 1, 1000.0);
  std::vector<Pass> passes;
  Pass a = simple_pass("a", UnitKind::kMse, 1000, 10);
  a.rsc = 0;
  Pass b = simple_pass("b", UnitKind::kMse, 1000, 10);
  b.rsc = 1;
  passes = {a, b};
  const SimReport r = sim.run(passes);
  EXPECT_NEAR(r.total_cycles, 100.0, 1e-6);  // parallel across cores
}

TEST(StreamSim, BusyCyclesAccounted) {
  StreamSimulator sim(1, 2, 1, 1000.0);
  std::vector<Pass> passes;
  passes.push_back(simple_pass("a", UnitKind::kPnl, 1000, 10));
  passes.push_back(simple_pass("b", UnitKind::kPnl, 500, 10));
  const SimReport r = sim.run(passes);
  EXPECT_NEAR(r.unit_busy_cycles[static_cast<std::size_t>(UnitKind::kPnl)],
              150.0, 1e-6);
}

}  // namespace
}  // namespace abc::core
