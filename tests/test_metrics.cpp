// Registry battery for the obs metrics subsystem: concurrent-increment
// exactness, histogram bucket boundaries at edge values, quantile
// extraction, instance aggregation and retirement, gauge delta semantics,
// kind-mismatch rejection, external counter polling, the pre-registered
// catalog, failpoint re-export, and the ABC_NO_METRICS compile-out
// contract. The snapshot-while-writing tests double as the TSan leg's
// obs coverage (suite name MetricsTest is in the CI tsan regex).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/failpoint.hpp"
#include "obs/export_json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace abc {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::HistogramValue;
using obs::Kind;
using obs::kHistBuckets;
using obs::kMetricsEnabled;
using obs::MetricsSnapshot;
using obs::Registry;

// ---------------------------------------------------------------------------
// Histogram layout (pure constexpr — holds in every build)
// ---------------------------------------------------------------------------

TEST(MetricsTest, HistogramBucketIndexEdgeValues) {
  // Bucket 0 = {0}; bucket i = [2^(i-1), 2^i); last bucket = overflow.
  EXPECT_EQ(obs::hist_bucket_index(0), 0u);
  EXPECT_EQ(obs::hist_bucket_index(1), 1u);
  EXPECT_EQ(obs::hist_bucket_index(2), 2u);
  EXPECT_EQ(obs::hist_bucket_index(3), 2u);
  EXPECT_EQ(obs::hist_bucket_index(4), 3u);
  EXPECT_EQ(obs::hist_bucket_index(7), 3u);
  EXPECT_EQ(obs::hist_bucket_index(8), 4u);
  for (std::size_t k = 1; k + 1 < kHistBuckets; ++k) {
    const u64 lo = u64{1} << (k - 1);
    EXPECT_EQ(obs::hist_bucket_index(lo), k) << "lower edge of bucket " << k;
    EXPECT_EQ(obs::hist_bucket_index(2 * lo - 1), k)
        << "upper edge of bucket " << k;
    EXPECT_EQ(obs::hist_bucket_index(2 * lo), k + 1)
        << "first value past bucket " << k;
  }
  // Overflow clamps into the last bucket.
  EXPECT_EQ(obs::hist_bucket_index(u64{1} << 60), kHistBuckets - 1);
  EXPECT_EQ(obs::hist_bucket_index(~u64{0}), kHistBuckets - 1);
}

TEST(MetricsTest, HistogramBucketBoundsAreContiguous) {
  EXPECT_EQ(obs::hist_bucket_lower(0), 0u);
  EXPECT_EQ(obs::hist_bucket_upper(0), 1u);
  for (std::size_t i = 1; i < kHistBuckets; ++i) {
    EXPECT_EQ(obs::hist_bucket_lower(i), obs::hist_bucket_upper(i - 1))
        << "gap at bucket " << i;
    // Every in-range value lands in the bucket whose bounds contain it.
    EXPECT_EQ(obs::hist_bucket_index(obs::hist_bucket_lower(i)), i);
  }
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterConcurrentIncrementExactness) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  Registry reg;
  Counter c = reg.counter("t.hits");
  constexpr std::size_t kThreads = 8;
  constexpr u64 kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (u64 i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  // Per-thread shards summed on read: not one increment lost.
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(reg.snapshot().counter_value("t.hits"), kThreads * kPerThread);
}

TEST(MetricsTest, CounterSnapshotWhileWriting) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  // Scrapes racing live increments must be safe (TSan leg) and monotone,
  // and the post-join scrape must be exact.
  Registry reg;
  Counter c = reg.counter("t.racing");
  constexpr u64 kWriters = 4;
  constexpr u64 kPerWriter = 50'000;
  std::vector<std::thread> writers;
  for (u64 t = 0; t < kWriters; ++t) {
    writers.emplace_back([&c] {
      for (u64 i = 0; i < kPerWriter; ++i) c.inc();
    });
  }
  u64 last = 0;
  for (int i = 0; i < 200; ++i) {
    const u64 now = reg.snapshot().counter_value("t.racing");
    EXPECT_GE(now, last) << "counter went backwards under concurrency";
    EXPECT_LE(now, kWriters * kPerWriter);
    last = now;
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(reg.snapshot().counter_value("t.racing"), kWriters * kPerWriter);
}

TEST(MetricsTest, CounterInstancesAggregateUnderOneName) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  Registry reg;
  Counter a = reg.counter("t.shared");
  Counter b = reg.counter("t.shared");
  a.inc(3);
  b.inc(4);
  // Per-instance reads stay exact (the forwarder contract)...
  EXPECT_EQ(a.value(), 3u);
  EXPECT_EQ(b.value(), 4u);
  // ...while the snapshot gives the unified total.
  EXPECT_EQ(reg.snapshot().counter_value("t.shared"), 7u);
}

TEST(MetricsTest, RetiredInstanceTotalsSurviveInSnapshot) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  Registry reg;
  {
    Counter c = reg.counter("t.churn");
    c.inc(5);
  }  // handle destroyed: total folds into the definition's retired sum
  EXPECT_EQ(reg.snapshot().counter_value("t.churn"), 5u);
  // A fresh instance (likely recycling the same cells) starts at zero.
  Counter again = reg.counter("t.churn");
  EXPECT_EQ(again.value(), 0u);
  again.inc(2);
  EXPECT_EQ(reg.snapshot().counter_value("t.churn"), 7u);
}

TEST(MetricsTest, KindMismatchOnReRegistrationThrows) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  Registry reg;
  Counter c = reg.counter("t.kind");
  EXPECT_THROW((void)reg.histogram("t.kind"), InvalidArgument);
  EXPECT_THROW((void)reg.gauge("t.kind"), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Gauges
// ---------------------------------------------------------------------------

TEST(MetricsTest, GaugeAddSubFromManyThreads) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  Registry reg;
  Gauge g = reg.gauge("t.depth");
  g.add(10);
  g.sub(3);
  EXPECT_EQ(g.value(), 7);
  EXPECT_EQ(reg.snapshot().gauge_value("t.depth"), 7);
  // Deltas shard like counters: balanced add/sub across threads nets to
  // the true value even though each thread's cell holds a partial sum.
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < 1000; ++i) g.add(1);
      for (int i = 0; i < 1000; ++i) g.sub(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(g.value(), 7);
  g.sub(10);
  EXPECT_EQ(g.value(), -3) << "gauges must go negative cleanly";
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

TEST(MetricsTest, HistogramRecordsIntoCorrectBuckets) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  Registry reg;
  Histogram h = reg.histogram("t.lat");
  const u64 values[] = {0, 1, 2, 3, 4, 1023, 1024, ~u64{0}};
  for (const u64 v : values) h.record(v);
  const HistogramValue hv = h.read();
  EXPECT_EQ(hv.count, 8u);
  EXPECT_EQ(hv.buckets[0], 1u);   // {0}
  EXPECT_EQ(hv.buckets[1], 1u);   // {1}
  EXPECT_EQ(hv.buckets[2], 2u);   // [2, 4): 2, 3
  EXPECT_EQ(hv.buckets[3], 1u);   // [4, 8): 4
  EXPECT_EQ(hv.buckets[10], 1u);  // [512, 1024): 1023
  EXPECT_EQ(hv.buckets[11], 1u);  // [1024, 2048): 1024
  EXPECT_EQ(hv.buckets[kHistBuckets - 1], 1u);  // overflow
  u64 expected_sum = 0;
  for (const u64 v : values) expected_sum += v;  // mod 2^64, like the cell
  EXPECT_EQ(hv.sum, expected_sum);
}

TEST(MetricsTest, HistogramQuantilesInterpolateWithinBucket) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  Registry reg;
  Histogram h = reg.histogram("t.q");
  EXPECT_EQ(h.read().quantile(0.5), 0.0) << "empty histogram reads 0";
  for (int i = 0; i < 100; ++i) h.record(1000);  // bucket 10 = [512, 1024)
  const HistogramValue hv = h.read();
  for (const double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    const double est = hv.quantile(q);
    EXPECT_GE(est, 512.0) << "q=" << q;
    EXPECT_LE(est, 1024.0) << "q=" << q;
  }
  // Two spread buckets: the median must sit in the lower one.
  Histogram h2 = reg.histogram("t.q2");
  for (int i = 0; i < 90; ++i) h2.record(10);      // bucket 4 = [8, 16)
  for (int i = 0; i < 10; ++i) h2.record(100000);  // bucket 17
  const HistogramValue hv2 = h2.read();
  EXPECT_LT(hv2.quantile(0.5), 16.0);
  EXPECT_GT(hv2.quantile(0.95), 16.0);
}

TEST(MetricsTest, HistogramConcurrentRecordExactCount) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  Registry reg;
  Histogram h = reg.histogram("t.conc");
  constexpr std::size_t kThreads = 8;
  constexpr u64 kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (u64 i = 0; i < kPerThread; ++i) h.record(t + 1);
    });
  }
  for (auto& t : threads) t.join();
  const HistogramValue hv = h.read();
  EXPECT_EQ(hv.count, kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// Global registry: catalog, external sources, failpoint re-export
// ---------------------------------------------------------------------------

TEST(MetricsTest, GlobalRegistryPreRegistersEntireCatalog) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  const MetricsSnapshot snap = obs::registry().snapshot();
  for (const obs::catalog::Entry& e : obs::catalog::kAll) {
    switch (e.kind) {
      case Kind::kCounter:
        EXPECT_NE(snap.counter(e.name), nullptr) << e.name;
        break;
      case Kind::kGauge:
        EXPECT_NE(snap.gauge(e.name), nullptr) << e.name;
        break;
      case Kind::kHistogram:
        EXPECT_NE(snap.histogram(e.name), nullptr) << e.name;
        break;
    }
  }
}

namespace external_counter {
u64 value = 0;
u64 read() { return value; }
}  // namespace external_counter

TEST(MetricsTest, ExternalCounterIsPolledAtSnapshot) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  Registry reg;
  reg.add_external_counter("t.external", &external_counter::read);
  external_counter::value = 41;
  EXPECT_EQ(reg.snapshot().counter_value("t.external"), 41u);
  external_counter::value = 42;
  EXPECT_EQ(reg.snapshot().counter_value("t.external"), 42u);
}

TEST(MetricsTest, FailpointTotalsReExportedThroughGlobalRegistry) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  const u64 hits_before =
      obs::registry().snapshot().counter_value(obs::catalog::kFailpointHits);
  fail::Policy delay;  // zero-microsecond delay: fires without throwing
  delay.action = fail::Action::kDelay;
  {
    fail::ScopedFailpoint fp("obs.test_point", delay);
    ABC_FAILPOINT("obs.test_point");
    ABC_FAILPOINT("obs.test_point");
  }
  const MetricsSnapshot snap = obs::registry().snapshot();
  EXPECT_EQ(snap.counter_value(obs::catalog::kFailpointHits),
            hits_before + 2);
  EXPECT_EQ(snap.counter_value(obs::catalog::kFailpointHits),
            fail::total_hits());
  EXPECT_EQ(snap.counter_value(obs::catalog::kFailpointFires),
            fail::total_fires());
}

// ---------------------------------------------------------------------------
// Compile-out contract
// ---------------------------------------------------------------------------

TEST(MetricsTest, CompileOutContract) {
  // The API is linkable and inert in either build; what changes is
  // whether anything is recorded.
  Registry reg;
  Counter c = reg.counter("t.flag");
  Gauge g = reg.gauge("t.flag_g");
  Histogram h = reg.histogram("t.flag_h");
  c.inc(7);
  g.add(7);
  h.record(7);
  const MetricsSnapshot snap = reg.snapshot();
  if (kMetricsEnabled) {
    EXPECT_EQ(c.value(), 7u);
    EXPECT_EQ(snap.counter_value("t.flag"), 7u);
  } else {
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(h.read().count, 0u);
    EXPECT_TRUE(snap.counters.empty());
    EXPECT_TRUE(snap.gauges.empty());
    EXPECT_TRUE(snap.histograms.empty());
  }
}

TEST(MetricsTest, DefaultConstructedHandlesAreInertInEveryBuild) {
  Counter c;
  Gauge g;
  Histogram h;
  c.inc();
  g.add(5);
  h.record(5);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.read().count, 0u);
}

// ---------------------------------------------------------------------------
// JSON export
// ---------------------------------------------------------------------------

TEST(MetricsTest, StatsJsonCarriesCountersAndLayout) {
  Registry reg;
  Counter c = reg.counter("t.json");
  c.inc(9);
  obs::TraceRing ring(4, /*slow_threshold_ns=*/1000);
  obs::Trace t;
  t.request_id = 1;
  t.admit_ns = 100;
  t.respond_ns = 5000;  // 4900 ns total: slow
  ring.push(t);
  const std::string json = obs::stats_json(reg.snapshot(), &ring);
  EXPECT_NE(json.find("\"histogram_layout\""), std::string::npos);
  EXPECT_NE(json.find("\"traces\""), std::string::npos);
  EXPECT_NE(json.find("\"slow_count\":1"), std::string::npos);
  if (kMetricsEnabled) {
    EXPECT_NE(json.find("\"t.json\":9"), std::string::npos);
    EXPECT_NE(json.find("\"metrics_enabled\":true"), std::string::npos);
  } else {
    EXPECT_NE(json.find("\"metrics_enabled\":false"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Trace ring (independent of the metrics flag)
// ---------------------------------------------------------------------------

TEST(MetricsTest, TraceRingKeepsNewestAndCountsSlow) {
  obs::TraceRing ring(3, /*slow_threshold_ns=*/100);
  for (u64 i = 1; i <= 5; ++i) {
    obs::Trace t;
    t.request_id = i;
    t.admit_ns = 0;
    t.respond_ns = i * 30;  // 30, 60, 90, 120, 150: last two are slow
    ring.push(t);
  }
  const std::vector<obs::Trace> recent = ring.recent();
  ASSERT_EQ(recent.size(), 3u) << "bounded at capacity";
  EXPECT_EQ(recent.front().request_id, 3u) << "oldest retained";
  EXPECT_EQ(recent.back().request_id, 5u) << "newest last";
  EXPECT_EQ(ring.slow_count(), 2u);
  ASSERT_EQ(ring.slow().size(), 2u);
  EXPECT_EQ(ring.slow().front().request_id, 4u);
}

TEST(MetricsTest, TraceScopeInstallsAndRestoresActiveTrace) {
  EXPECT_EQ(obs::active_trace(), nullptr);
  obs::Trace outer;
  {
    obs::TraceScope scope(&outer);
    EXPECT_EQ(obs::active_trace(), &outer);
    obs::Trace inner;
    {
      obs::TraceScope nested(&inner);
      EXPECT_EQ(obs::active_trace(), &inner);
    }
    EXPECT_EQ(obs::active_trace(), &outer);
  }
  EXPECT_EQ(obs::active_trace(), nullptr);
}

}  // namespace
}  // namespace abc
