#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "rns/ntt_prime.hpp"
#include "transform/ntt.hpp"
#include "transform/op_counter.hpp"

namespace abc::xf {
namespace {

rns::Modulus test_modulus(int log_n) {
  return rns::Modulus(rns::select_prime_chain(36, std::max(log_n, 5), 1)[0]);
}

class NttParamTest : public ::testing::TestWithParam<int> {};

TEST_P(NttParamTest, ForwardInverseRoundtrip) {
  const int log_n = GetParam();
  const rns::Modulus q = test_modulus(log_n);
  NttTables tables(q, log_n);
  std::mt19937_64 rng(log_n);
  std::vector<u64> a(tables.n());
  for (u64& v : a) v = rng() % q.value();
  std::vector<u64> original = a;
  tables.forward(a);
  EXPECT_NE(a, original);  // transform does something
  tables.inverse(a);
  EXPECT_EQ(a, original);
}

TEST_P(NttParamTest, ConvolutionTheorem) {
  const int log_n = GetParam();
  if (log_n > 9) GTEST_SKIP() << "schoolbook too slow";
  const rns::Modulus q = test_modulus(log_n);
  NttTables tables(q, log_n);
  std::mt19937_64 rng(7 + log_n);
  std::vector<u64> a(tables.n()), b(tables.n());
  for (u64& v : a) v = rng() % q.value();
  for (u64& v : b) v = rng() % q.value();
  const std::vector<u64> expected = negacyclic_mult_schoolbook(a, b, q);

  tables.forward(a);
  tables.forward(b);
  std::vector<u64> c(tables.n());
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = q.mul(a[i], b[i]);
  tables.inverse(c);
  EXPECT_EQ(c, expected);
}

TEST_P(NttParamTest, Linearity) {
  const int log_n = GetParam();
  const rns::Modulus q = test_modulus(log_n);
  NttTables tables(q, log_n);
  std::mt19937_64 rng(99);
  std::vector<u64> a(tables.n()), b(tables.n()), sum(tables.n());
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng() % q.value();
    b[i] = rng() % q.value();
    sum[i] = q.add(a[i], b[i]);
  }
  tables.forward(a);
  tables.forward(b);
  tables.forward(sum);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(sum[i], q.add(a[i], b[i]));
  }
}

TEST_P(NttParamTest, DeltaTransformsToAllOnes) {
  // NTT of delta_0 is the all-ones vector in any evaluation order.
  const int log_n = GetParam();
  const rns::Modulus q = test_modulus(log_n);
  NttTables tables(q, log_n);
  std::vector<u64> a(tables.n(), 0);
  a[0] = 1;
  tables.forward(a);
  for (u64 v : a) EXPECT_EQ(v, 1u);
}

TEST_P(NttParamTest, MonomialEvaluationsAreOddPsiPowers) {
  // NTT of X must produce exactly the multiset { psi^{2j+1} }.
  const int log_n = GetParam();
  const rns::Modulus q = test_modulus(log_n);
  NttTables tables(q, log_n);
  std::vector<u64> a(tables.n(), 0);
  a[1] = 1;
  tables.forward(a);
  std::vector<u64> expected(tables.n());
  for (std::size_t j = 0; j < tables.n(); ++j) {
    expected[j] = q.pow(tables.psi(), 2 * j + 1);
  }
  std::sort(a.begin(), a.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(a, expected);
}

INSTANTIATE_TEST_SUITE_P(Degrees, NttParamTest,
                         ::testing::Values(4, 6, 8, 9, 10, 12, 13));

TEST(Ntt, LargeDegreeRoundtrip) {
  const rns::Modulus q = test_modulus(16);
  NttTables tables(q, 16);
  std::mt19937_64 rng(1);
  std::vector<u64> a(tables.n());
  for (u64& v : a) v = rng() % q.value();
  std::vector<u64> original = a;
  tables.forward(a);
  tables.inverse(a);
  EXPECT_EQ(a, original);
}

TEST(Ntt, PrimitiveRootProperties) {
  const rns::Modulus q = test_modulus(10);
  const u64 psi = find_primitive_2n_root(q, 10);
  // psi^N == -1, psi^{2N} == 1.
  EXPECT_EQ(q.pow(psi, 1024), q.value() - 1);
  EXPECT_EQ(q.pow(psi, 2048), 1u);
  // Primitive: psi^k != 1 for all proper divisors of 2N.
  for (u64 k : {u64{2}, u64{512}, u64{1024}}) {
    EXPECT_NE(q.pow(psi, k), 1u);
  }
}

TEST(Ntt, OpCountsAreAnalytic) {
  const rns::Modulus q = test_modulus(8);
  NttTables tables(q, 8);
  std::vector<u64> a(256, 1);
  OpCounterScope scope;
  tables.forward(a);
  const OpCounts fwd = scope.delta();
  EXPECT_EQ(fwd.ntt_mul, 128u * 8);  // (N/2) log N
  EXPECT_EQ(fwd.ntt_add, 256u * 8);
  tables.inverse(a);
  const OpCounts both = scope.delta();
  EXPECT_EQ(both.ntt_mul, 128u * 8 + 128 * 8 + 256);  // + N for N^{-1} scale
}

TEST(Ntt, RejectsIncompatibleModulus) {
  // 17 == 1 mod 16 but not mod 32: degree 16 NTT must be rejected.
  EXPECT_THROW(NttTables(rns::Modulus(17), 4), InvalidArgument);
  EXPECT_NO_THROW(NttTables(rns::Modulus(97), 4));  // 97 == 1 mod 32
}

TEST(Ntt, SchoolbookNegacyclicWraparound) {
  // (X^{N-1})^2 = X^{2N-2} = -X^{N-2} in the negacyclic ring.
  const rns::Modulus q(97);
  std::vector<u64> a(4, 0), b(4, 0);
  a[3] = 1;
  b[3] = 1;
  const std::vector<u64> c = negacyclic_mult_schoolbook(a, b, q);
  EXPECT_EQ(c[2], q.value() - 1);
  EXPECT_EQ(c[0], 0u);
  EXPECT_EQ(c[1], 0u);
  EXPECT_EQ(c[3], 0u);
}

}  // namespace
}  // namespace abc::xf
