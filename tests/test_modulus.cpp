#include <gtest/gtest.h>

#include <random>

#include "common/math_util.hpp"
#include "rns/modulus.hpp"

namespace abc::rns {
namespace {

class ModulusParamTest : public ::testing::TestWithParam<u64> {};

TEST_P(ModulusParamTest, ReduceMatchesNaive) {
  const Modulus q(GetParam());
  std::mt19937_64 rng(42);
  for (int i = 0; i < 2000; ++i) {
    const u64 x = rng();
    EXPECT_EQ(q.reduce(x), x % q.value());
  }
}

TEST_P(ModulusParamTest, Reduce128MatchesNaive) {
  const Modulus q(GetParam());
  std::mt19937_64 rng(43);
  for (int i = 0; i < 2000; ++i) {
    const u128 x = (static_cast<u128>(rng()) << 64) | rng();
    EXPECT_EQ(q.reduce_128(x), static_cast<u64>(x % q.value()));
  }
}

TEST_P(ModulusParamTest, MulAddSubRoundtrip) {
  const Modulus q(GetParam());
  std::mt19937_64 rng(44);
  for (int i = 0; i < 2000; ++i) {
    const u64 a = rng() % q.value();
    const u64 b = rng() % q.value();
    EXPECT_EQ(q.mul(a, b), mul_mod_u64(a, b, q.value()));
    EXPECT_EQ(q.add(a, b), add_mod_u64(a, b, q.value()));
    EXPECT_EQ(q.sub(a, b), sub_mod_u64(a, b, q.value()));
    EXPECT_EQ(q.add(q.sub(a, b), b), a);
    EXPECT_EQ(q.add(a, q.negate(a)), 0u);
  }
}

TEST_P(ModulusParamTest, ShoupMatchesBarrett) {
  const Modulus q(GetParam());
  std::mt19937_64 rng(45);
  for (int i = 0; i < 500; ++i) {
    const u64 w = rng() % q.value();
    const ShoupMul sm = ShoupMul::make(w, q);
    for (int j = 0; j < 10; ++j) {
      const u64 x = rng() % q.value();
      EXPECT_EQ(sm.mul(x, q.value()), q.mul(x, w));
    }
  }
}

TEST_P(ModulusParamTest, PowAndInv) {
  const Modulus q(GetParam());
  if (!is_prime_u64(q.value())) GTEST_SKIP();
  std::mt19937_64 rng(46);
  for (int i = 0; i < 100; ++i) {
    const u64 a = 1 + rng() % (q.value() - 1);
    EXPECT_EQ(q.pow(a, q.value() - 1), 1u);
    EXPECT_EQ(q.mul(a, q.inv(a)), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariousModuli, ModulusParamTest,
    ::testing::Values(
        // Small, odd composite, 36-bit NTT prime, 44-bit, near-62-bit prime.
        u64{3}, u64{255}, u64{68719403009ull},  // 2^36 - 2^17 + 1... see below
        (u64{1} << 36) - (u64{1} << 18) + 1,    // sparse candidate
        (u64{1} << 44) - 65535,
        u64{4611686018427387847ull}));  // prime < 2^62

TEST(Modulus, RejectsBadValues) {
  EXPECT_THROW(Modulus(0), InvalidArgument);
  EXPECT_THROW(Modulus(1), InvalidArgument);
  EXPECT_THROW(Modulus(u64{1} << 63), InvalidArgument);
}

TEST(Modulus, CenteredRepresentation) {
  const Modulus q(17);
  EXPECT_EQ(q.to_centered(0), 0);
  EXPECT_EQ(q.to_centered(8), 8);
  EXPECT_EQ(q.to_centered(9), -8);
  EXPECT_EQ(q.to_centered(16), -1);
  for (i64 x = -40; x <= 40; ++x) {
    EXPECT_EQ(q.from_signed(x), static_cast<u64>(((x % 17) + 17) % 17));
  }
}

}  // namespace
}  // namespace abc::rns
