// Cross-module integration tests: full client sessions across parameter
// sets and encryption modes, structural NTT/DWT equivalence (the
// reconfigurable-engine premise), seed-compressed ciphertext
// regeneration, and consistency between the software op counts and the
// accelerator scheduler's workload model.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "ckks/decryptor.hpp"
#include "ckks/encoder.hpp"
#include "ckks/encryptor.hpp"
#include "ckks/evaluator.hpp"
#include "core/simulator.hpp"
#include "rns/ntt_prime.hpp"
#include "transform/dwt.hpp"
#include "transform/ntt.hpp"

namespace abc {
namespace {

std::vector<std::complex<double>> random_slots(std::size_t count, u64 seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::complex<double>> v(count);
  for (auto& z : v) z = {dist(rng), dist(rng)};
  return v;
}

// ---- full-session property sweep ----------------------------------------

struct SessionCase {
  int log_n;
  std::size_t limbs;
  ckks::EncryptMode mode;
};

class ClientSessionTest : public ::testing::TestWithParam<SessionCase> {};

TEST_P(ClientSessionTest, EndToEndRoundtrip) {
  const SessionCase c = GetParam();
  auto ctx =
      ckks::CkksContext::create(ckks::CkksParams::test_small(c.log_n, c.limbs));
  ckks::CkksEncoder encoder(ctx);
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();
  std::unique_ptr<ckks::Encryptor> enc;
  if (c.mode == ckks::EncryptMode::kPublicKey) {
    enc = std::make_unique<ckks::Encryptor>(ctx, keygen.public_key(sk));
  } else {
    enc = std::make_unique<ckks::Encryptor>(ctx, sk);
  }
  ckks::Decryptor dec(ctx, sk);

  const auto msg = random_slots(encoder.slots(), 1000 + c.log_n);
  const ckks::Ciphertext ct = enc->encrypt(encoder.encode(msg, c.limbs));
  const auto decoded = encoder.decode(dec.decrypt(ct));
  EXPECT_GT(ckks::compare_slots(msg, decoded).precision_bits, 11.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClientSessionTest,
    ::testing::Values(
        SessionCase{9, 2, ckks::EncryptMode::kPublicKey},
        SessionCase{9, 2, ckks::EncryptMode::kSymmetricSeeded},
        SessionCase{10, 4, ckks::EncryptMode::kPublicKey},
        SessionCase{10, 4, ckks::EncryptMode::kSymmetricSeeded},
        SessionCase{11, 3, ckks::EncryptMode::kPublicKey},
        SessionCase{12, 6, ckks::EncryptMode::kSymmetricSeeded}));

// ---- reconfigurable-engine premise ---------------------------------------

TEST(Integration, NttAndDwtShareTwiddleStructure) {
  // The RFE premise (paper Sec. III): NTT and FFT stage twiddles follow
  // the *same* bit-reversed exponent schedule — psi^brv(i) mod q for the
  // NTT, zeta^brv(i) on the unit circle for the DWT. Verify exponent
  // agreement through discrete logarithms of the generated tables.
  const int log_n = 8;
  const rns::Modulus q(rns::select_prime_chain(36, log_n, 1)[0]);
  xf::NttTables ntt(q, log_n);
  xf::CkksDwtPlan dwt(log_n);
  const std::size_t n = std::size_t{1} << log_n;
  for (std::size_t i = 1; i < n; ++i) {
    const u64 e = bit_reverse(i, log_n);
    EXPECT_EQ(ntt.psi_rev(i), q.pow(ntt.psi(), e));
    const xf::Cx<double> w = dwt.psi_rev(i);
    const double angle = std::atan2(w.im, w.re);
    double expect = std::numbers::pi * static_cast<double>(e) / static_cast<double>(n);
    // Wrap into (-pi, pi].
    while (expect > std::numbers::pi) expect -= 2 * std::numbers::pi;
    EXPECT_NEAR(angle, expect, 1e-9) << i;
  }
}

TEST(Integration, SeedCompressedC1Regenerates) {
  auto ctx = ckks::CkksContext::create(ckks::CkksParams::test_small(10, 3));
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();
  ckks::Encryptor enc(ctx, sk);
  ckks::CkksEncoder encoder(ctx);
  const ckks::Ciphertext ct =
      enc.encrypt(encoder.encode(random_slots(8, 3), 3));
  ASSERT_TRUE(ct.compressed_c1.has_value());
  // Regenerate "a" from the stream id alone: must equal the stored c1.
  poly::RnsPoly regen = ctx->make_poly(3, poly::Domain::kEval);
  ckks::fill_uniform_eval(*ctx, regen, ckks::PrngDomain::kSymmetricA,
                          ct.compressed_c1->stream_id);
  for (std::size_t l = 0; l < 3; ++l) {
    EXPECT_TRUE(std::equal(regen.limb(l).begin(), regen.limb(l).end(),
                           ct.c(1).limb(l).begin()));
  }
  // And the byte accounting reflects the compression.
  EXPECT_LT(ct.packed_bytes(44), 2.0 * ct.c(0).packed_bytes(44));
}

TEST(Integration, SchedulerWorkloadMatchesSoftwareOps) {
  // The scheduler issues exactly (1 IFFT + limbs * k NTT) transform passes
  // for an encode+encrypt job; the software executes the same transforms.
  core::ArchConfig cfg = core::ArchConfig::paper_default();
  cfg.log_n = 10;
  cfg.fresh_limbs = 4;
  cfg.enc_profile = core::EncryptProfile::public_key();
  core::JobScheduler scheduler(cfg);
  std::vector<core::Pass> passes;
  scheduler.add_encode_encrypt(passes, 0, 0);
  int transform_passes = 0;
  for (const auto& p : passes) {
    if (p.unit == core::UnitKind::kPnl) ++transform_passes;
  }
  EXPECT_EQ(transform_passes,
            1 + static_cast<int>(cfg.fresh_limbs) *
                    cfg.enc_profile.ntt_passes_per_limb);

  // Software side: NTT forward passes counted through op deltas.
  auto ctx = ckks::CkksContext::create(ckks::CkksParams::test_small(10, 4));
  ckks::CkksEncoder encoder(ctx);
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();
  ckks::Encryptor enc(ctx, keygen.public_key(sk));
  const ckks::Plaintext pt = encoder.encode(random_slots(8, 5), 4);
  xf::OpCounterScope scope;
  (void)enc.encrypt(pt);
  const u64 per_ntt = (ctx->n() / 2) * 10;
  EXPECT_EQ(scope.delta().ntt_mul / per_ntt,
            cfg.fresh_limbs *
                static_cast<u64>(cfg.enc_profile.ntt_passes_per_limb));
}

TEST(Integration, DecodeDecryptDagShape) {
  core::ArchConfig cfg = core::ArchConfig::paper_default();
  cfg.returned_limbs = 2;
  core::JobScheduler scheduler(cfg);
  std::vector<core::Pass> passes;
  scheduler.add_decode_decrypt(passes, 0, 0);
  // DMA in, 2x (phase + INTT), CRT, FFT, DMA out = 8 passes.
  EXPECT_EQ(passes.size(), 8u);
  // Final pass must be the message writeback, reachable from everything.
  EXPECT_EQ(passes.back().unit, core::UnitKind::kDmaOut);
  EXPECT_GT(passes.back().dram_write_bytes_per_elem, 0.0);
}

TEST(Integration, RescaledCiphertextStaysDecryptable) {
  // Depth-3 chain needs the scale close to the prime width, or the scale
  // erodes by q/Delta per rescale (2^6 here) and the precision collapses.
  ckks::CkksParams params = ckks::CkksParams::test_small(10, 5);
  params.scale_bits = 34;
  auto ctx = ckks::CkksContext::create(params);
  ckks::CkksEncoder encoder(ctx);
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();
  ckks::Encryptor enc(ctx, keygen.public_key(sk));
  ckks::Decryptor dec(ctx, sk);
  ckks::Evaluator eval(ctx);

  const auto msg = random_slots(encoder.slots(), 17);
  ckks::Ciphertext ct = enc.encrypt(encoder.encode(msg, 5));
  // Chain: square via plain mult and rescale three times.
  std::vector<std::complex<double>> expect(msg);
  for (int round = 0; round < 3; ++round) {
    const auto mult = random_slots(encoder.slots(), 18 + round);
    const ckks::Plaintext factor = encoder.encode(mult, ct.limbs());
    ct = eval.mul_plain(ct, factor);
    eval.rescale_inplace(ct);
    for (std::size_t i = 0; i < expect.size(); ++i) expect[i] *= mult[i];
  }
  const auto got = encoder.decode(dec.decrypt(ct));
  double max_err = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    max_err = std::max(max_err, std::abs(got[i] - expect[i]));
  }
  EXPECT_LT(max_err, 0.05);
}

}  // namespace
}  // namespace abc
