#include <gtest/gtest.h>

#include "common/bigint.hpp"
#include "common/bitops.hpp"
#include "common/math_util.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace abc {
namespace {

TEST(Bitops, PowerOfTwo) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(u64{1} << 63));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_EQ(log2_exact(1), 0);
  EXPECT_EQ(log2_exact(u64{1} << 16), 16);
  EXPECT_THROW(log2_exact(6), InvalidArgument);
}

TEST(Bitops, BitReverse) {
  EXPECT_EQ(bit_reverse(0b001, 3), 0b100u);
  EXPECT_EQ(bit_reverse(0b110, 3), 0b011u);
  for (u64 x = 0; x < 256; ++x) {
    EXPECT_EQ(bit_reverse(bit_reverse(x, 8), 8), x);
  }
}

TEST(Bitops, BitReversedIncrementMatchesExplicitReverse) {
  constexpr int bits = 6;
  u64 x = 0;
  for (u64 i = 0; i + 1 < (u64{1} << bits); ++i) {
    EXPECT_EQ(x, bit_reverse(i, bits));
    x = bit_reversed_increment(x, bits);
  }
}

TEST(Bitops, NafWeight) {
  EXPECT_EQ(naf_weight(0), 0);
  EXPECT_EQ(naf_weight(1), 1);
  EXPECT_EQ(naf_weight(2), 1);
  EXPECT_EQ(naf_weight(3), 2);    // 4 - 1
  EXPECT_EQ(naf_weight(7), 2);    // 8 - 1
  EXPECT_EQ(naf_weight(15), 2);   // 16 - 1
  EXPECT_EQ(naf_weight(0b101010), 3);
  EXPECT_EQ(naf_weight(-1), 1);
}

TEST(MathUtil, PowMod) {
  EXPECT_EQ(pow_mod_u64(2, 10, 1000000007ull), 1024u);
  EXPECT_EQ(pow_mod_u64(3, 0, 97), 1u);
  // Fermat's little theorem.
  constexpr u64 q = 1152921504606847009ull;  // 2^60 + small, prime
  ASSERT_TRUE(is_prime_u64(q));
  EXPECT_EQ(pow_mod_u64(12345, q - 1, q), 1u);
}

TEST(MathUtil, InverseMod) {
  auto inv = inverse_mod_u64(3, 7);
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ((3 * *inv) % 7, 1u);
  EXPECT_FALSE(inverse_mod_u64(6, 9).has_value());
  constexpr u64 q = 1152921504606847009ull;
  for (u64 a : {u64{2}, u64{12345}, q - 1, u64{987654321987654321ull % q}}) {
    auto i = inverse_mod_u64(a, q);
    ASSERT_TRUE(i.has_value());
    EXPECT_EQ(mul_mod_u64(a, *i, q), 1u);
  }
}

TEST(MathUtil, InverseModPow2) {
  for (u64 a : {1ull, 3ull, 5ull, 0x123456789abcdef1ull, 0xffffffffffffffffull}) {
    u64 inv = inverse_mod_pow2(a, 64);
    EXPECT_EQ(a * inv, 1u) << a;  // mod 2^64 wrap
    u64 inv44 = inverse_mod_pow2(a, 44);
    EXPECT_EQ((a * inv44) & ((u64{1} << 44) - 1), 1u);
  }
}

TEST(MathUtil, MillerRabinSmall) {
  int primes = 0;
  for (u64 n = 0; n < 2000; ++n) {
    bool p = is_prime_u64(n);
    // Cross-check with trial division.
    bool ref = n >= 2;
    for (u64 d = 2; d * d <= n && ref; ++d) {
      if (n % d == 0) ref = false;
    }
    EXPECT_EQ(p, ref) << n;
    primes += p;
  }
  EXPECT_EQ(primes, 303);  // pi(2000)
}

TEST(MathUtil, MillerRabinKnownLarge) {
  EXPECT_TRUE(is_prime_u64(0xffffffffffffffc5ull));   // largest prime < 2^64
  EXPECT_FALSE(is_prime_u64(0xffffffffffffffffull));
  EXPECT_TRUE(is_prime_u64((u64{1} << 61) - 1));      // Mersenne prime M61
  EXPECT_FALSE(is_prime_u64((u64{1} << 62) - 1));
}

TEST(BigUint, BasicArithmetic) {
  BigUint a(5), b(7);
  EXPECT_EQ((a + b).to_string(), "12");
  EXPECT_EQ((b - a).to_string(), "2");
  EXPECT_EQ((a * 1000000ull).to_string(), "5000000");
  EXPECT_TRUE(BigUint{}.is_zero());
}

TEST(BigUint, CarryPropagation) {
  BigUint a(~u64{0});
  BigUint one(1);
  BigUint s = a + one;
  EXPECT_EQ(s.word_count(), 2u);
  EXPECT_EQ(s.to_string(), "18446744073709551616");
  EXPECT_EQ((s - one).compare(a), 0);
}

TEST(BigUint, MulWideAndMod) {
  BigUint a(0xffffffffffffffffull);
  BigUint sq = a * a;
  // (2^64-1)^2 = 2^128 - 2^65 + 1
  EXPECT_EQ(sq.to_string(), "340282366920938463426481119284349108225");
  EXPECT_EQ(sq.mod_u64(1000000007ull), 114944269u);
  // Self-consistency of mod(BigUint) against mod_u64.
  BigUint m(999999999989ull);
  EXPECT_EQ(sq.mod(m).to_string(), std::to_string(sq.mod_u64(999999999989ull)));
}

TEST(BigUint, ShiftLeft) {
  BigUint one(1);
  BigUint big = one;
  big.shift_left(130);
  EXPECT_EQ(big.bit_length(), 131);
  EXPECT_EQ(big.mod_u64(3), pow_mod_u64(2, 130, 3));
}

TEST(BigUint, ToDoubleAndCentering) {
  BigUint q(1000);
  EXPECT_DOUBLE_EQ(centered_to_double(BigUint(1), q), 1.0);
  EXPECT_DOUBLE_EQ(centered_to_double(BigUint(999), q), -1.0);
  EXPECT_DOUBLE_EQ(centered_to_double(BigUint(500), q), 500.0);
  EXPECT_DOUBLE_EQ(centered_to_double(BigUint(501), q), -499.0);
}

TEST(RunningStats, Moments) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

}  // namespace
}  // namespace abc
