// Tests for the src/simd/ kernel layer: bit-exact parity of the Harvey
// lazy-reduction NTT against the seed eager kernels across sparse-prime bit
// widths, SIMD vs. portable dyadic parity, randomized negacyclic
// cross-checks against the schoolbook reference, and the lazy-bound
// invariants (< 4q forward / < 2q inverse) the kernels rely on.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "rns/ntt_prime.hpp"
#include "simd/dyadic_kernels.hpp"
#include "simd/ntt_kernels.hpp"
#include "simd/simd_caps.hpp"
#include "transform/ntt.hpp"

namespace abc {
namespace {

/// Restores the detected kernel arch when a test that forces one exits.
struct ArchGuard {
  ~ArchGuard() {
    simd::set_kernel_arch_for_testing(simd::detected_kernel_arch());
  }
};

std::vector<u64> random_poly(std::size_t n, u64 q, u64 seed) {
  std::mt19937_64 rng(seed);
  std::vector<u64> a(n);
  for (u64& v : a) v = rng() % q;
  return a;
}

/// All kernel arches exercisable in this process (portable always; the
/// SIMD tiers when the build and CPU support them AND no env veto —
/// ABC_FORCE_PORTABLE_KERNELS / ABC_DISABLE_AVX512_KERNELS block
/// in-process overrides too).
std::vector<simd::KernelArch> available_arches() {
  std::vector<simd::KernelArch> arches = {simd::KernelArch::kPortable};
  if (simd::avx2_selectable()) arches.push_back(simd::KernelArch::kAvx2);
  if (simd::avx512ifma_selectable())
    arches.push_back(simd::KernelArch::kAvx512Ifma);
  return arches;
}

TEST(SimdCaps, ForcingUnselectableArchIsIgnored) {
  ArchGuard guard;
  simd::set_kernel_arch_for_testing(simd::KernelArch::kPortable);
  EXPECT_EQ(simd::active_kernel_arch(), simd::KernelArch::kPortable);
  simd::set_kernel_arch_for_testing(simd::KernelArch::kAvx2);
  if (simd::avx2_selectable()) {
    EXPECT_EQ(simd::active_kernel_arch(), simd::KernelArch::kAvx2);
  } else {
    // Unsupported host or ABC_FORCE_PORTABLE_KERNELS veto.
    EXPECT_EQ(simd::active_kernel_arch(), simd::KernelArch::kPortable);
  }
}

TEST(SimdCaps, ArchNamesAreStable) {
  EXPECT_STREQ(simd::kernel_arch_name(simd::KernelArch::kPortable),
               "portable");
  EXPECT_STREQ(simd::kernel_arch_name(simd::KernelArch::kAvx2), "avx2");
  EXPECT_STREQ(simd::kernel_arch_name(simd::KernelArch::kAvx512Ifma),
               "avx512ifma");
}

TEST(SimdCaps, Avx512SelectionImpliesSupport) {
  // selectable => supported => compiled; the detected arch is always
  // selectable.
  if (simd::avx512ifma_selectable()) {
    EXPECT_TRUE(simd::avx512ifma_supported());
    EXPECT_TRUE(simd::avx512ifma_compiled());
  }
  ArchGuard guard;
  simd::set_kernel_arch_for_testing(simd::KernelArch::kAvx512Ifma);
  if (simd::avx512ifma_selectable()) {
    EXPECT_EQ(simd::active_kernel_arch(), simd::KernelArch::kAvx512Ifma);
  } else {
    EXPECT_NE(simd::active_kernel_arch(), simd::KernelArch::kAvx512Ifma);
  }
}

// -- NTT parity --------------------------------------------------------------

TEST(LazyNtt, MatchesEagerAcrossSparsePrimeBitWidths) {
  ArchGuard guard;
  const int log_n = 10;
  for (int bits = 32; bits <= 36; ++bits) {
    const rns::Modulus q(rns::select_prime_chain(bits, log_n, 1)[0]);
    ASSERT_EQ(q.bit_count(), bits);
    const xf::NttTables tables(q, log_n);
    for (simd::KernelArch arch : available_arches()) {
      simd::set_kernel_arch_for_testing(arch);
      std::vector<u64> eager = random_poly(tables.n(), q.value(), bits);
      std::vector<u64> lazy = eager;
      tables.forward_eager(eager);
      tables.forward(lazy);
      EXPECT_EQ(eager, lazy) << "forward, bits=" << bits << " arch="
                             << simd::kernel_arch_name(arch);
      tables.inverse_eager(eager);
      tables.inverse(lazy);
      EXPECT_EQ(eager, lazy) << "inverse, bits=" << bits << " arch="
                             << simd::kernel_arch_name(arch);
    }
  }
}

TEST(LazyNtt, MatchesEagerAtLargeDegreeAndWideModulus) {
  ArchGuard guard;
  // A wide (59-bit) generic NTT prime stresses the 4q < 2^64 headroom.
  for (int bits : {45, 59}) {
    const int log_n = 13;
    const rns::Modulus q(rns::select_prime_chain(bits, log_n, 1)[0]);
    const xf::NttTables tables(q, log_n);
    for (simd::KernelArch arch : available_arches()) {
      simd::set_kernel_arch_for_testing(arch);
      std::vector<u64> eager = random_poly(tables.n(), q.value(), 77);
      std::vector<u64> lazy = eager;
      tables.forward_eager(eager);
      tables.forward(lazy);
      EXPECT_EQ(eager, lazy) << "bits=" << bits;
      tables.inverse_eager(eager);
      tables.inverse(lazy);
      EXPECT_EQ(eager, lazy) << "bits=" << bits;
    }
  }
}

TEST(LazyNtt, TinyDegreesRoundtrip) {
  ArchGuard guard;
  // log_n in {1, 2, 3} exercises the scalar-tail stages of the AVX2 path
  // (every stage has t < 4).
  for (int log_n : {1, 2, 3}) {
    const rns::Modulus q(rns::select_prime_chain(36, 5, 1)[0]);
    const xf::NttTables tables(q, log_n);
    for (simd::KernelArch arch : available_arches()) {
      simd::set_kernel_arch_for_testing(arch);
      std::vector<u64> a = random_poly(tables.n(), q.value(), 5);
      const std::vector<u64> original = a;
      tables.forward(a);
      tables.inverse(a);
      EXPECT_EQ(a, original) << "log_n=" << log_n;
    }
  }
}

TEST(LazyNtt, NegacyclicConvolutionMatchesSchoolbook) {
  ArchGuard guard;
  for (int log_n : {3, 6, 8}) {
    const rns::Modulus q(rns::select_prime_chain(36, log_n, 1)[0]);
    const xf::NttTables tables(q, log_n);
    std::mt19937_64 rng(100 + log_n);
    for (int trial = 0; trial < 4; ++trial) {
      const std::vector<u64> a = random_poly(tables.n(), q.value(), rng());
      const std::vector<u64> b = random_poly(tables.n(), q.value(), rng());
      const std::vector<u64> expected =
          xf::negacyclic_mult_schoolbook(a, b, q);
      for (simd::KernelArch arch : available_arches()) {
        simd::set_kernel_arch_for_testing(arch);
        std::vector<u64> fa = a;
        std::vector<u64> fb = b;
        tables.forward(fa);
        tables.forward(fb);
        std::vector<u64> c(tables.n());
        const simd::DyadicModulus dm = simd::DyadicModulus::make(q);
        for (std::size_t i = 0; i < c.size(); ++i)
          c[i] = dm.mul(fa[i], fb[i]);
        tables.inverse(c);
        EXPECT_EQ(c, expected)
            << "log_n=" << log_n << " trial=" << trial
            << " arch=" << simd::kernel_arch_name(arch);
      }
    }
  }
}

// -- lazy-bound invariants ---------------------------------------------------

TEST(LazyNtt, ForwardIntermediatesStayBelow4q) {
  const int log_n = 9;
  const rns::Modulus q(rns::select_prime_chain(36, log_n, 1)[0]);
  const xf::NttTables tables(q, log_n);
  const simd::NttLayout L = tables.layout();
  std::vector<u64> a = random_poly(tables.n(), q.value(), 31);
  for (int stage = 0; stage < log_n; ++stage) {
    simd::ntt_forward_lazy_stages_portable(L, a.data(), stage, stage + 1);
    const u64 max_v = *std::max_element(a.begin(), a.end());
    EXPECT_LT(max_v, 4 * q.value()) << "after stage " << stage;
  }
  // The correction pass lands every value in [0, q) and matches eager.
  simd::reduce_from_4q_portable(a.data(), a.size(), q.value());
  std::vector<u64> eager = random_poly(tables.n(), q.value(), 31);
  tables.forward_eager(eager);
  EXPECT_EQ(a, eager);
}

TEST(LazyNtt, InverseIntermediatesStayBelow2q) {
  const int log_n = 9;
  const rns::Modulus q(rns::select_prime_chain(36, log_n, 1)[0]);
  const xf::NttTables tables(q, log_n);
  const simd::NttLayout L = tables.layout();
  std::vector<u64> a = random_poly(tables.n(), q.value(), 32);
  for (int stage = 0; stage < log_n; ++stage) {
    simd::ntt_inverse_lazy_stages_portable(L, a.data(), stage, stage + 1);
    const u64 max_v = *std::max_element(a.begin(), a.end());
    EXPECT_LT(max_v, 2 * q.value()) << "after stage " << stage;
  }
}

TEST(LazyNtt, ShoupMulLazyStaysBelow2q) {
  const rns::Modulus q(rns::select_prime_chain(36, 10, 1)[0]);
  std::mt19937_64 rng(33);
  for (int trial = 0; trial < 2000; ++trial) {
    const u64 w = rng() % q.value();
    const rns::ShoupMul s = rns::ShoupMul::make(w, q);
    const u64 x = rng();  // ANY 64-bit input is in-contract
    const u64 lazy = s.mul_lazy(x, q.value());
    EXPECT_LT(lazy, 2 * q.value());
    EXPECT_EQ(lazy % q.value(), q.mul(q.reduce(x), w));
    EXPECT_EQ(s.mul(x, q.value()), lazy >= q.value() ? lazy - q.value()
                                                     : lazy);
  }
}

// -- dyadic kernels ----------------------------------------------------------

class DyadicKernelTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 1000;  // odd tail exercises remainders
};

TEST_F(DyadicKernelTest, AllOpsMatchModulusReferenceOnAllArches) {
  ArchGuard guard;
  for (int bits : {32, 36, 45, 59}) {
    const rns::Modulus q(rns::select_prime_chain(bits, 10, 1)[0]);
    const simd::DyadicModulus dm = simd::DyadicModulus::make(q);
    const std::vector<u64> a = random_poly(kN, q.value(), 1);
    const std::vector<u64> b = random_poly(kN, q.value(), 2);
    const rns::ShoupMul s = rns::ShoupMul::make(q.reduce(987654321), q);

    // Seed-semantics references.
    std::vector<u64> ref_add(kN), ref_sub(kN), ref_mul(kN), ref_fma(kN),
        ref_neg(kN), ref_muls(kN);
    for (std::size_t j = 0; j < kN; ++j) {
      ref_add[j] = q.add(a[j], b[j]);
      ref_sub[j] = q.sub(a[j], b[j]);
      ref_mul[j] = q.mul(a[j], b[j]);
      ref_fma[j] = q.add(a[j], q.mul(a[j], b[j]));
      ref_neg[j] = q.negate(a[j]);
      ref_muls[j] = q.mul(a[j], s.operand);
    }

    for (simd::KernelArch arch : available_arches()) {
      simd::set_kernel_arch_for_testing(arch);
      const char* an = simd::kernel_arch_name(arch);
      std::vector<u64> d = a;
      simd::dyadic_add(dm, d.data(), b.data(), kN);
      EXPECT_EQ(d, ref_add) << "add " << an << " bits=" << bits;
      d = a;
      simd::dyadic_sub(dm, d.data(), b.data(), kN);
      EXPECT_EQ(d, ref_sub) << "sub " << an << " bits=" << bits;
      d = a;
      simd::dyadic_mul(dm, d.data(), b.data(), kN);
      EXPECT_EQ(d, ref_mul) << "mul " << an << " bits=" << bits;
      d = a;
      simd::dyadic_fma(dm, d.data(), a.data(), b.data(), kN);
      EXPECT_EQ(d, ref_fma) << "fma " << an << " bits=" << bits;
      d = a;
      simd::dyadic_negate(dm, d.data(), kN);
      EXPECT_EQ(d, ref_neg) << "negate " << an << " bits=" << bits;
      d = a;
      simd::dyadic_mul_scalar(dm, d.data(), kN, s.operand, s.quotient);
      EXPECT_EQ(d, ref_muls) << "mul_scalar " << an << " bits=" << bits;
    }
  }
}

TEST_F(DyadicKernelTest, FusedKernelsMatchUnfusedChainsOnAllArches) {
  ArchGuard guard;
  // 51 and 59 bits exceed kIfmaMaxPrimeBits: on the AVX-512 tier the
  // multiplying fused kernels must take the per-call AVX2 fallback and
  // still match bit-exactly.
  for (int bits : {32, 36, 45, 50, 51, 59}) {
    const rns::Modulus q(rns::select_prime_chain(bits, 10, 1)[0]);
    const simd::DyadicModulus dm = simd::DyadicModulus::make(q);
    const std::vector<u64> a = random_poly(kN, q.value(), 11);
    const std::vector<u64> b = random_poly(kN, q.value(), 12);
    const std::vector<u64> digit = random_poly(kN, q.value(), 13);
    const std::vector<u64> base = random_poly(kN, q.value(), 14);
    const rns::ShoupMul s = rns::ShoupMul::make(q.reduce(123456789), q);
    std::vector<u32> perm(kN);
    std::mt19937_64 rng(15);
    for (std::size_t j = 0; j < kN; ++j) perm[j] = static_cast<u32>(j);
    std::shuffle(perm.begin(), perm.end(), rng);

    // Unfused reference chains, portable ops only.
    std::vector<u64> ref_acc0 = a, ref_acc1 = b;
    {
      std::vector<u64> staged(kN);
      for (std::size_t j = 0; j < kN; ++j) staged[j] = digit[perm[j]];
      simd::dyadic_fma_portable(dm, ref_acc0.data(), staged.data(), b.data(),
                                kN);
      simd::dyadic_fma_portable(dm, ref_acc1.data(), staged.data(), a.data(),
                                kN);
    }
    std::vector<u64> ref_na = a;
    simd::dyadic_negate_portable(dm, ref_na.data(), kN);
    simd::dyadic_add_portable(dm, ref_na.data(), b.data(), kN);
    std::vector<u64> ref_sms = a;
    simd::dyadic_sub_portable(dm, ref_sms.data(), b.data(), kN);
    simd::dyadic_mul_scalar_portable(dm, ref_sms.data(), kN, s.operand,
                                     s.quotient);
    std::vector<u64> ref_fi = base;
    simd::dyadic_fma_portable(dm, ref_fi.data(), a.data(), b.data(), kN);

    for (simd::KernelArch arch : available_arches()) {
      simd::set_kernel_arch_for_testing(arch);
      const char* an = simd::kernel_arch_name(arch);

      std::vector<u64> acc0 = a, acc1 = b;
      simd::dyadic_fma_accumulate(dm, acc0.data(), acc1.data(), digit.data(),
                                  b.data(), a.data(), perm.data(), kN);
      EXPECT_EQ(acc0, ref_acc0) << "fma_accumulate/perm acc0 " << an
                                << " bits=" << bits;
      EXPECT_EQ(acc1, ref_acc1) << "fma_accumulate/perm acc1 " << an
                                << " bits=" << bits;

      // No-perm variant against a no-perm reference.
      std::vector<u64> acc0n = a, acc1n = b;
      simd::dyadic_fma_accumulate(dm, acc0n.data(), acc1n.data(),
                                  digit.data(), b.data(), a.data(), nullptr,
                                  kN);
      std::vector<u64> rn0 = a, rn1 = b;
      simd::dyadic_fma_portable(dm, rn0.data(), digit.data(), b.data(), kN);
      simd::dyadic_fma_portable(dm, rn1.data(), digit.data(), a.data(), kN);
      EXPECT_EQ(acc0n, rn0) << "fma_accumulate acc0 " << an
                            << " bits=" << bits;
      EXPECT_EQ(acc1n, rn1) << "fma_accumulate acc1 " << an
                            << " bits=" << bits;

      std::vector<u64> d = a;
      simd::dyadic_negate_add(dm, d.data(), b.data(), kN);
      EXPECT_EQ(d, ref_na) << "negate_add " << an << " bits=" << bits;

      d = a;
      simd::dyadic_sub_mul_scalar(dm, d.data(), b.data(), kN, s.operand,
                                  s.quotient);
      EXPECT_EQ(d, ref_sms) << "sub_mul_scalar " << an << " bits=" << bits;

      std::vector<u64> out(kN, ~u64{0});
      simd::dyadic_fma_into(dm, out.data(), base.data(), a.data(), b.data(),
                            kN);
      EXPECT_EQ(out, ref_fi) << "fma_into " << an << " bits=" << bits;
    }
  }
}

TEST_F(DyadicKernelTest, IfmaPrimeConstraintIsComputedOnce) {
  // The 52-bit IFMA datapath accepts primes up to kIfmaMaxPrimeBits; wider
  // primes must carry ifma_ok == false so dispatch falls back to AVX2.
  for (int bits : {32, 45, 50}) {
    const rns::Modulus q(rns::select_prime_chain(bits, 10, 1)[0]);
    const simd::DyadicModulus dm = simd::DyadicModulus::make(q);
    EXPECT_TRUE(dm.ifma_ok) << "bits=" << bits;
    // ratio52 is the exact base-2^52 Barrett constant (floor identity).
    EXPECT_EQ(dm.ratio52, dm.ratio >> 12);
    EXPECT_EQ(dm.ratio52,
              static_cast<u64>((static_cast<u128>(1) << (52 + dm.shift)) /
                               q.value()));
  }
  for (int bits : {51, 59}) {
    const rns::Modulus q(rns::select_prime_chain(bits, 10, 1)[0]);
    EXPECT_FALSE(simd::DyadicModulus::make(q).ifma_ok) << "bits=" << bits;
  }
}

TEST_F(DyadicKernelTest, BarrettMulHandlesExtremes) {
  for (int bits : {32, 36, 59}) {
    const rns::Modulus q(rns::select_prime_chain(bits, 10, 1)[0]);
    const simd::DyadicModulus dm = simd::DyadicModulus::make(q);
    const u64 top = q.value() - 1;
    const u64 cases[][2] = {{0, 0},     {0, top},     {top, 0},
                            {1, top},   {top, top},   {top / 2, top},
                            {top, 2},   {1, 1},       {top / 3, top / 7}};
    for (const auto& c : cases) {
      EXPECT_EQ(dm.mul(c[0], c[1]), q.mul(c[0], c[1]))
          << c[0] << " * " << c[1] << " bits=" << bits;
    }
  }
}

TEST_F(DyadicKernelTest, RejectsPowerOfTwoModulus) {
  EXPECT_THROW(simd::DyadicModulus::make(rns::Modulus(64)), InvalidArgument);
}

// -- bounded primitive-root search -------------------------------------------

TEST(PrimitiveRootSearch, BoundedSearchFailsFastOnNonPrime) {
  // 3 * 11 == 33 == 1 (mod 8): passes the congruence precondition but the
  // unit group has order 20, so no element of order 8 exists. The bounded
  // search must throw instead of scanning toward q.
  EXPECT_THROW(xf::find_primitive_2n_root(rns::Modulus(33), 2), LogicError);
}

TEST(PrimitiveRootSearch, ValidatesExactOrder) {
  for (int log_n : {4, 8, 12}) {
    const rns::Modulus q(rns::select_prime_chain(36, log_n, 1)[0]);
    const u64 psi = xf::find_primitive_2n_root(q, log_n);
    const u64 two_n = u64{1} << (log_n + 1);
    EXPECT_EQ(q.pow(psi, two_n / 2), q.value() - 1);  // psi^N == -1
    EXPECT_EQ(q.pow(psi, two_n), 1u);                 // psi^{2N} == 1
    // Exact order: no proper power-of-two divisor of 2N reaches 1.
    for (u64 k = 2; k < two_n; k <<= 1) {
      EXPECT_NE(q.pow(psi, k), 1u) << "k=" << k;
    }
  }
}

}  // namespace
}  // namespace abc
