#include <gtest/gtest.h>

#include <random>

#include "common/math_util.hpp"
#include "rns/modmul_algorithms.hpp"
#include "rns/montgomery.hpp"
#include "rns/ntt_prime.hpp"

namespace abc::rns {
namespace {

TEST(SignedPow2, DecomposeRoundtrip) {
  std::mt19937_64 rng(7);
  for (int bits : {8, 16, 36, 44, 64}) {
    for (int i = 0; i < 500; ++i) {
      const u64 mask = bits == 64 ? ~u64{0} : (u64{1} << bits) - 1;
      const u64 v = rng() & mask;
      const SignedPow2 d = SignedPow2::decompose(v, bits);
      // apply(1) reconstructs v mod 2^bits.
      EXPECT_EQ(d.apply(1, bits), v) << "bits=" << bits;
      // Multiplying arbitrary x by v must match plain multiplication.
      const u64 x = rng();
      EXPECT_EQ(d.apply(x, bits), (x * v) & mask);
    }
  }
}

TEST(SignedPow2, WeightIsMinimalForKnownValues) {
  EXPECT_EQ(SignedPow2::decompose(0, 44).weight(), 0);
  EXPECT_EQ(SignedPow2::decompose(1, 44).weight(), 1);
  EXPECT_EQ(SignedPow2::decompose((u64{1} << 20) - 1, 44).weight(), 2);
  EXPECT_EQ(SignedPow2::decompose((u64{1} << 43) + 1, 44).weight(), 2);
  // 2^44 - 1 == -1 mod 2^44: single signed term.
  EXPECT_EQ(SignedPow2::decompose((u64{1} << 44) - 1, 44).weight(), 1);
}

class MontgomeryParamTest
    : public ::testing::TestWithParam<std::tuple<u64, int>> {};

TEST_P(MontgomeryParamTest, RedcMatchesDefinition) {
  const auto [q, r] = GetParam();
  const Montgomery mont(q, r);
  // R * R^{-1} == 1 (mod q)
  const u64 r_mod_q = r == 64 ? (~u64{0} % q + 1) % q : (u64{1} << r) % q;
  std::mt19937_64 rng(11);
  for (int i = 0; i < 2000; ++i) {
    const u64 a = rng() % q;
    const u64 b = rng() % q;
    const u128 t = mul_wide(a, b);
    const u64 reduced = mont.redc(t);
    // redc(t) * R == t (mod q)
    EXPECT_EQ(mul_mod_u64(reduced, r_mod_q, q),
              static_cast<u64>(t % q));
  }
}

TEST_P(MontgomeryParamTest, ShiftAddPathIsBitExact) {
  const auto [q, r] = GetParam();
  const Montgomery mont(q, r);
  std::mt19937_64 rng(12);
  for (int i = 0; i < 2000; ++i) {
    const u64 a = rng() % q;
    const u64 b = rng() % q;
    const u128 t = mul_wide(a, b);
    EXPECT_EQ(mont.redc(t), mont.redc_shift_add(t));
  }
}

TEST_P(MontgomeryParamTest, DomainRoundtrip) {
  const auto [q, r] = GetParam();
  const Montgomery mont(q, r);
  std::mt19937_64 rng(13);
  for (int i = 0; i < 1000; ++i) {
    const u64 a = rng() % q;
    EXPECT_EQ(mont.from_mont(mont.to_mont(a)), a);
    const u64 b = rng() % q;
    const u64 prod = mont.from_mont(mont.mul(mont.to_mont(a), mont.to_mont(b)));
    EXPECT_EQ(prod, mul_mod_u64(a, b, q));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Radices, MontgomeryParamTest,
    ::testing::Values(std::make_tuple((u64{1} << 36) - (u64{1} << 18) + 1, 44),
                      std::make_tuple((u64{1} << 36) - (u64{1} << 18) + 1, 64),
                      std::make_tuple(u64{97}, 8),
                      std::make_tuple(u64{0x7fffffff}, 32),
                      std::make_tuple(u64{4611686018427387847ull}, 64)));

TEST(Montgomery, RejectsEvenModulusAndBadRadix) {
  EXPECT_THROW(Montgomery(100, 44), InvalidArgument);
  EXPECT_THROW(Montgomery(97, 7), InvalidArgument);   // R <= q
  EXPECT_THROW(Montgomery(97, 65), InvalidArgument);  // R > 2^64
}

// --- Hardware datapath models (Table I rows) -----------------------------

class HwModMulTest : public ::testing::TestWithParam<u64> {};

TEST_P(HwModMulTest, AllThreeAlgorithmsAgree) {
  const u64 q = GetParam();
  auto all = make_all_modmuls(q, 44);
  std::mt19937_64 rng(21);
  for (int i = 0; i < 1000; ++i) {
    const u64 a = rng() % q;
    const u64 b = rng() % q;
    const u64 expected = mul_mod_u64(a, b, q);
    for (const auto& mm : all) {
      EXPECT_EQ(mm->mul(a, b), expected) << mm->name();
    }
  }
}

TEST_P(HwModMulTest, CostStructureMatchesPaper) {
  const u64 q = GetParam();
  auto all = make_all_modmuls(q, 44);
  // Table I: Barrett has 4 stages, both Montgomery variants 3.
  EXPECT_EQ(all[0]->pipeline_stages(), 4);
  EXPECT_EQ(all[1]->pipeline_stages(), 3);
  EXPECT_EQ(all[2]->pipeline_stages(), 3);
  // Multiplier counts: 3 / 3 / 1.
  EXPECT_EQ(all[0]->cost(44).multipliers.size(), 3u);
  EXPECT_EQ(all[1]->cost(44).multipliers.size(), 3u);
  EXPECT_EQ(all[2]->cost(44).multipliers.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Primes, HwModMulTest,
    ::testing::Values((u64{1} << 36) - (u64{1} << 18) + 1,
                      (u64{1} << 36) + (u64{3} << 17) + 1,
                      u64{786433},  // 2^18*3 + 1, NTT prime
                      (u64{1} << 42) - (u64{1} << 20) + 1));

TEST(NttFriendlyModMul, SparsePrimesHaveSparseQinv) {
  // For every sparse 36-bit prime at N=2^16, the NTT-friendly Montgomery
  // multiplier must see a low shift-add cost: that is the whole point of
  // the paper's prime-selection methodology.
  auto primes = enumerate_sparse_ntt_primes(36, 16, 3, 44);
  ASSERT_FALSE(primes.empty());
  for (const auto& info : primes) {
    NttFriendlyMontgomeryHwModMul mm(info.value, 44);
    EXPECT_LE(mm.q_weight(), 5) << info.value;
    // QInv = 1 - x + x^2 ... stays sparse for sparse q (paper eq. 11).
    EXPECT_LE(mm.qinv_weight(), 16) << info.value;
    std::mt19937_64 rng(info.value);
    for (int i = 0; i < 50; ++i) {
      const u64 a = rng() % info.value;
      const u64 b = rng() % info.value;
      EXPECT_EQ(mm.mul(a, b), mul_mod_u64(a, b, info.value));
    }
  }
}

}  // namespace
}  // namespace abc::rns
