#include <gtest/gtest.h>

#include <random>

#include "ckks/decryptor.hpp"
#include "ckks/encoder.hpp"
#include "ckks/encryptor.hpp"
#include "ckks/serialize.hpp"

namespace abc::ckks {
namespace {

TEST(BitPacker, RoundtripVariousWidths) {
  std::mt19937_64 rng(1);
  for (int bits : {1, 7, 8, 13, 36, 44, 57}) {
    BitPacker packer;
    std::vector<u64> values(257);
    const u64 mask = bits == 64 ? ~u64{0} : (u64{1} << bits) - 1;
    for (u64& v : values) {
      v = rng() & mask;
      packer.append(v, bits);
    }
    const std::vector<u8> bytes = packer.finish();
    EXPECT_EQ(bytes.size(), (values.size() * bits + 7) / 8);
    BitUnpacker unpacker(bytes);
    for (u64 v : values) EXPECT_EQ(unpacker.read(bits), v) << bits;
  }
}

TEST(BitPacker, RejectsOversizedValues) {
  BitPacker packer;
  EXPECT_THROW(packer.append(1u << 9, 9), InvalidArgument);
  EXPECT_THROW(packer.append(0, 58), InvalidArgument);
}

TEST(BitUnpacker, TruncationDetected) {
  BitPacker packer;
  packer.append(0x7f, 8);
  const auto bytes = packer.finish();
  BitUnpacker unpacker(bytes);
  (void)unpacker.read(8);
  EXPECT_THROW(unpacker.read(8), InvalidArgument);
}

TEST(BitPacker, CrossByteBoundaryWords) {
  // Regression for words straddling byte boundaries: a 7-bit prefix puts
  // every following word at bit offset 7, so a 17-bit word spans 4 bytes
  // and a 44-bit word spans 7. Mixed widths must still read back exactly.
  BitPacker packer;
  packer.append(0x55, 7);
  packer.append(0x1ABCD, 17);
  packer.append((u64{1} << 44) - 2, 44);
  packer.append(0x5, 3);
  packer.append(0x1FFFFFFFFFFFFFF, 57);
  const auto bytes = packer.finish();
  EXPECT_EQ(bytes.size(), (7u + 17 + 44 + 3 + 57 + 7) / 8);
  BitUnpacker unpacker(bytes);
  EXPECT_EQ(unpacker.read(7), 0x55u);
  EXPECT_EQ(unpacker.read(17), 0x1ABCDu);
  EXPECT_EQ(unpacker.read(44), (u64{1} << 44) - 2);
  EXPECT_EQ(unpacker.read(3), 0x5u);
  EXPECT_EQ(unpacker.read(57), 0x1FFFFFFFFFFFFFFull);
  EXPECT_EQ(unpacker.bits_consumed(), 7u + 17 + 44 + 3 + 57);
}

TEST(BitPacker, PartialFinalByteIsZeroPadded) {
  // finish() zero-fills the high bits of the last byte; the documented
  // unpacker contract is that padding inside the final byte reads as
  // zeros, while the first read needing a byte past the end throws.
  BitPacker packer;
  packer.append(0b101, 3);
  const auto bytes = packer.finish();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b101);
  BitUnpacker unpacker(bytes);
  EXPECT_EQ(unpacker.read(3), 0b101u);
  EXPECT_EQ(unpacker.read(5), 0u);  // padding bits of the final byte
  EXPECT_THROW(unpacker.read(1), InvalidArgument);
}

TEST(BitPacker, FinishResetsForReuse) {
  BitPacker packer;
  packer.append(0xFF, 8);
  packer.append(1, 1);
  (void)packer.finish();
  packer.append(0xAB, 8);
  const auto bytes = packer.finish();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0xABu);
}

struct Fixture {
  std::shared_ptr<const CkksContext> ctx;
  CkksEncoder encoder;
  KeyGenerator keygen;
  SecretKey sk;
  Decryptor dec;

  Fixture()
      : ctx(CkksContext::create(CkksParams::test_small(10, 3))),
        encoder(ctx),
        keygen(ctx),
        sk(keygen.secret_key()),
        dec(ctx, sk) {}

  std::vector<std::complex<double>> message(u64 seed) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<std::complex<double>> msg(encoder.slots());
    for (auto& z : msg) z = {dist(rng), dist(rng)};
    return msg;
  }
};

TEST(Serialize, PublicKeyCiphertextRoundtrip) {
  Fixture f;
  Encryptor enc(f.ctx, f.keygen.public_key(f.sk));
  const auto msg = f.message(2);
  const Ciphertext ct = enc.encrypt(f.encoder.encode(msg, 3));
  const std::vector<u8> bytes = serialize_ciphertext(ct, 44);
  // Size = header + 2 components x 3 limbs x N x 44 bits.
  const std::size_t payload_bits = 2ull * 3 * f.ctx->n() * 44;
  EXPECT_NEAR(static_cast<double>(bytes.size()),
              static_cast<double>(payload_bits / 8), 64.0);
  const Ciphertext restored = deserialize_ciphertext(f.ctx, bytes);
  EXPECT_EQ(restored.limbs(), ct.limbs());
  EXPECT_DOUBLE_EQ(restored.scale, ct.scale);
  const auto decoded = f.encoder.decode(f.dec.decrypt(restored));
  EXPECT_GT(compare_slots(msg, decoded).precision_bits, 12.0);
}

TEST(Serialize, CompressedCiphertextRegeneratesC1) {
  Fixture f;
  Encryptor enc(f.ctx, f.sk);
  const auto msg = f.message(3);
  const Ciphertext ct = enc.encrypt(f.encoder.encode(msg, 3));
  ASSERT_TRUE(ct.compressed_c1.has_value());
  const std::vector<u8> bytes = serialize_ciphertext(ct, 44);
  // Compressed form carries only one polynomial payload.
  const std::size_t one_poly_bits = 3ull * f.ctx->n() * 44;
  EXPECT_LT(bytes.size(), one_poly_bits / 8 + 128);
  const Ciphertext restored = deserialize_ciphertext(f.ctx, bytes);
  for (std::size_t l = 0; l < 3; ++l) {
    EXPECT_TRUE(std::equal(restored.c(1).limb(l).begin(),
                           restored.c(1).limb(l).end(),
                           ct.c(1).limb(l).begin()));
  }
  const auto decoded = f.encoder.decode(f.dec.decrypt(restored));
  EXPECT_GT(compare_slots(msg, decoded).precision_bits, 12.0);
}

TEST(Serialize, CorruptBufferRejected) {
  Fixture f;
  Encryptor enc(f.ctx, f.sk);
  const Ciphertext ct = enc.encrypt(f.encoder.encode(f.message(4), 2));
  std::vector<u8> bytes = serialize_ciphertext(ct, 44);
  bytes[0] ^= 0xff;  // break the magic
  EXPECT_THROW(deserialize_ciphertext(f.ctx, bytes), InvalidArgument);
  std::vector<u8> truncated(serialize_ciphertext(ct, 44));
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(deserialize_ciphertext(f.ctx, truncated), InvalidArgument);
}

TEST(Serialize, WidthTooNarrowRejected) {
  Fixture f;
  Encryptor enc(f.ctx, f.sk);
  const Ciphertext ct = enc.encrypt(f.encoder.encode(f.message(5), 2));
  // 36-bit residues do not fit 20-bit packing.
  EXPECT_THROW(serialize_ciphertext(ct, 20), InvalidArgument);
}

TEST(Serialize, CiphertextBatchRoundtrip) {
  // The "ABCB" envelope: frames may mix levels and compression and must
  // come back bit-identical in input order.
  Fixture f;
  Encryptor sym(f.ctx, f.sk);
  Encryptor pub(f.ctx, f.keygen.public_key(f.sk));
  std::vector<Ciphertext> cts;
  cts.push_back(sym.encrypt(f.encoder.encode(f.message(6), 3)));
  cts.push_back(pub.encrypt(f.encoder.encode(f.message(7), 2)));
  cts.push_back(sym.encrypt(f.encoder.encode(f.message(8), 2)));

  const std::vector<u8> envelope = serialize_ciphertext_batch(cts, 44);
  // The container adds 8 bytes of header + 4 per frame over the frames.
  std::size_t frames = 0;
  for (const auto& ct : cts) frames += serialize_ciphertext(ct, 44).size();
  EXPECT_EQ(envelope.size(), 8 + 4 * cts.size() + frames);

  const std::vector<Ciphertext> restored =
      deserialize_ciphertext_batch(f.ctx, envelope);
  ASSERT_EQ(restored.size(), cts.size());
  for (std::size_t i = 0; i < cts.size(); ++i) {
    ASSERT_EQ(restored[i].size(), cts[i].size());
    ASSERT_EQ(restored[i].limbs(), cts[i].limbs());
    EXPECT_DOUBLE_EQ(restored[i].scale, cts[i].scale);
    for (std::size_t c = 0; c < cts[i].size(); ++c) {
      for (std::size_t l = 0; l < cts[i].limbs(); ++l) {
        EXPECT_TRUE(std::equal(restored[i].c(c).limb(l).begin(),
                               restored[i].c(c).limb(l).end(),
                               cts[i].c(c).limb(l).begin()))
            << "item " << i << " component " << c << " limb " << l;
      }
    }
  }
}

TEST(Serialize, EmptyCiphertextBatchRoundtrips) {
  Fixture f;
  const std::vector<u8> envelope = serialize_ciphertext_batch({}, 44);
  EXPECT_EQ(envelope.size(), 8u);  // magic + count only
  EXPECT_TRUE(deserialize_ciphertext_batch(f.ctx, envelope).empty());
}

TEST(Serialize, CorruptCiphertextBatchRejected) {
  Fixture f;
  Encryptor enc(f.ctx, f.sk);
  std::vector<Ciphertext> cts;
  cts.push_back(enc.encrypt(f.encoder.encode(f.message(9), 2)));
  const std::vector<u8> good = serialize_ciphertext_batch(cts, 44);

  std::vector<u8> bad_magic = good;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(deserialize_ciphertext_batch(f.ctx, bad_magic),
               InvalidArgument);

  std::vector<u8> truncated = good;
  truncated.resize(truncated.size() - 5);
  EXPECT_THROW(deserialize_ciphertext_batch(f.ctx, truncated),
               InvalidArgument);

  std::vector<u8> trailing = good;
  trailing.push_back(0);
  EXPECT_THROW(deserialize_ciphertext_batch(f.ctx, trailing),
               InvalidArgument);

  // A forged count with no frames behind it must be rejected up front
  // (InvalidArgument, not a giant allocation / bad_alloc).
  std::vector<u8> forged = {0x42, 0x43, 0x42, 0x41,   // "ABCB"
                            0xff, 0xff, 0xff, 0xff};  // count = 2^32 - 1
  EXPECT_THROW(deserialize_ciphertext_batch(f.ctx, forged),
               InvalidArgument);
}

// -- serving-daemon framing --------------------------------------------------

TEST(RequestFrame, RoundTripPreservesEveryField) {
  RequestFrame req;
  req.tenant = 0xdeadbeefcafe;
  req.request_id = 42;
  req.op = 7;
  req.op_arg = -3;  // negative op_arg survives the u64 wire cast
  req.payload = {0x01, 0x00, 0xff, 0x7f};
  const std::vector<u8> bytes = serialize_request_frame(req);
  const RequestFrame back = deserialize_request_frame(bytes);
  EXPECT_EQ(back.tenant, req.tenant);
  EXPECT_EQ(back.request_id, req.request_id);
  EXPECT_EQ(back.op, req.op);
  EXPECT_EQ(back.op_arg, req.op_arg);
  EXPECT_EQ(back.payload, req.payload);
}

TEST(ResponseFrame, RoundTripPreservesEveryField) {
  ResponseFrame resp;
  resp.request_id = 7;
  resp.status = 5;
  resp.error = "every eligible run queue is at capacity";
  resp.payload = {0xaa, 0xbb};
  const std::vector<u8> bytes = serialize_response_frame(resp);
  const ResponseFrame back = deserialize_response_frame(bytes);
  EXPECT_EQ(back.request_id, resp.request_id);
  EXPECT_EQ(back.status, resp.status);
  EXPECT_EQ(back.error, resp.error);
  EXPECT_EQ(back.payload, resp.payload);

  // Empty error and payload are valid frames too.
  const ResponseFrame empty =
      deserialize_response_frame(serialize_response_frame(ResponseFrame{}));
  EXPECT_TRUE(empty.error.empty());
  EXPECT_TRUE(empty.payload.empty());
}

TEST(RequestFrame, EveryTruncationAndTrailingByteRejected) {
  RequestFrame req;
  req.tenant = 1;
  req.request_id = 2;
  req.op = 1;
  req.payload = {1, 2, 3, 4, 5};
  const std::vector<u8> good = serialize_request_frame(req);
  ASSERT_NO_THROW(deserialize_request_frame(good));
  // The whole prefix lattice: every strict prefix is a truncation.
  for (std::size_t len = 0; len < good.size(); ++len) {
    std::vector<u8> prefix(good.begin(),
                           good.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(deserialize_request_frame(prefix), InvalidArgument)
        << "prefix " << len;
  }
  std::vector<u8> trailing = good;
  trailing.push_back(0);
  EXPECT_THROW(deserialize_request_frame(trailing), InvalidArgument);
  std::vector<u8> bad_magic = good;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(deserialize_request_frame(bad_magic), InvalidArgument);
}

TEST(RequestFrame, ForgedPayloadLengthRejectedBeforeAllocation) {
  RequestFrame req;
  req.payload = {1, 2, 3};
  std::vector<u8> bytes = serialize_request_frame(req);
  // The payload length prefix is the last 4-byte field before the bytes;
  // forge it to claim ~4 GiB backed by 3 actual bytes.
  const std::size_t len_at = bytes.size() - req.payload.size() - 4;
  for (std::size_t i = 0; i < 4; ++i) bytes[len_at + i] = 0xff;
  EXPECT_THROW(deserialize_request_frame(bytes), InvalidArgument);
}

TEST(ResponseFrame, OversizedErrorStringRejectedBothDirections) {
  ResponseFrame resp;
  resp.error.assign((64u << 10) + 1, 'x');  // one byte over the wire bound
  EXPECT_THROW(serialize_response_frame(resp), InvalidArgument);
  resp.error.resize(64u << 10);
  const std::vector<u8> bytes = serialize_response_frame(resp);
  EXPECT_EQ(deserialize_response_frame(bytes).error.size(), 64u << 10);
}

TEST(KeyBundleFrames, RoundTripAndForgedCountRejected) {
  KeyBundleFrames bundle;
  bundle.public_key = {1, 2, 3};
  bundle.relin_key = {4, 5};
  bundle.galois_keys = {{6}, {}, {7, 8, 9}};
  const std::vector<u8> good = serialize_key_bundle(bundle);
  const KeyBundleFrames back = deserialize_key_bundle(good);
  EXPECT_EQ(back.public_key, bundle.public_key);
  EXPECT_EQ(back.relin_key, bundle.relin_key);
  EXPECT_EQ(back.galois_keys, bundle.galois_keys);

  // Forged Galois count far beyond the remaining bytes: rejected up
  // front, before any reserve.
  std::vector<u8> forged = good;
  for (std::size_t i = 4; i < 8; ++i) forged[i] = 0xff;
  EXPECT_THROW(deserialize_key_bundle(forged), InvalidArgument);

  std::vector<u8> truncated = good;
  truncated.pop_back();
  EXPECT_THROW(deserialize_key_bundle(truncated), InvalidArgument);
  std::vector<u8> trailing = good;
  trailing.push_back(0);
  EXPECT_THROW(deserialize_key_bundle(trailing), InvalidArgument);
}

}  // namespace
}  // namespace abc::ckks
