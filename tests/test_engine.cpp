#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "backend/scalar_backend.hpp"
#include "backend/thread_pool_backend.hpp"
#include "ckks/decryptor.hpp"
#include "engine/batch_encryptor.hpp"
#include "engine/batch_keygen.hpp"

namespace abc {
namespace {

using engine::BatchEncryptor;

std::vector<std::vector<std::complex<double>>> random_batch(
    std::size_t batch, std::size_t slots, u64 seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::vector<std::complex<double>>> msgs(batch);
  for (auto& m : msgs) {
    m.resize(slots);
    for (auto& z : m) z = {dist(rng), dist(rng)};
  }
  return msgs;
}

void expect_identical_ciphertexts(const ckks::Ciphertext& a,
                                  const ckks::Ciphertext& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.limbs(), b.limbs());
  EXPECT_EQ(a.compressed_c1.has_value(), b.compressed_c1.has_value());
  if (a.compressed_c1 && b.compressed_c1) {
    EXPECT_EQ(a.compressed_c1->stream_id, b.compressed_c1->stream_id);
  }
  for (std::size_t c = 0; c < a.size(); ++c) {
    for (std::size_t i = 0; i < a.limbs(); ++i) {
      std::span<const u64> la = a.c(c).limb(i);
      std::span<const u64> lb = b.c(c).limb(i);
      for (std::size_t j = 0; j < la.size(); ++j) {
        ASSERT_EQ(la[j], lb[j])
            << "component " << c << " limb " << i << " coeff " << j;
      }
    }
  }
}

/// Encrypts the same batch on a fresh context over @p backend.
std::vector<ckks::Ciphertext> run_batch(
    const ckks::CkksParams& params,
    std::shared_ptr<backend::PolyBackend> backend,
    const std::vector<std::vector<std::complex<double>>>& msgs,
    ckks::EncryptMode mode) {
  auto ctx = ckks::CkksContext::create(params, std::move(backend));
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();
  if (mode == ckks::EncryptMode::kSymmetricSeeded) {
    BatchEncryptor eng(ctx, sk);
    return eng.encrypt_batch(msgs, ctx->max_limbs());
  }
  BatchEncryptor eng(ctx, keygen.public_key(sk));
  return eng.encrypt_batch(msgs, ctx->max_limbs());
}

TEST(Engine, CiphertextsAreThreadCountInvariant) {
  // The engine's core determinism claim: same seed + same batch produce
  // byte-identical ciphertexts at 1, 2 and 8 worker threads (and under the
  // scalar backend), in both encryption modes.
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  const auto msgs = random_batch(6, 16, 42);
  for (const auto mode : {ckks::EncryptMode::kPublicKey,
                          ckks::EncryptMode::kSymmetricSeeded}) {
    const auto ref = run_batch(
        params, std::make_shared<backend::ScalarBackend>(), msgs, mode);
    for (std::size_t threads : {1u, 2u, 8u}) {
      const auto got = run_batch(
          params, std::make_shared<backend::ThreadPoolBackend>(threads),
          msgs, mode);
      ASSERT_EQ(ref.size(), got.size());
      for (std::size_t i = 0; i < ref.size(); ++i) {
        expect_identical_ciphertexts(ref[i], got[i]);
      }
    }
  }
}

class EngineRoundtrip
    : public ::testing::TestWithParam<std::pair<int, std::size_t>> {};

TEST_P(EngineRoundtrip, BatchEncryptDecryptRecoversMessages) {
  const auto [log_n, limbs] = GetParam();
  const ckks::CkksParams params = ckks::CkksParams::test_small(log_n, limbs);
  auto ctx = ckks::CkksContext::create(
      params, std::make_shared<backend::ThreadPoolBackend>(4));
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();
  ckks::Decryptor dec(ctx, sk);
  ckks::CkksEncoder encoder(ctx);

  const auto msgs = random_batch(5, ctx->slots(), 7 + log_n);
  BatchEncryptor eng(ctx, keygen.public_key(sk));
  const auto cts = eng.encrypt_batch(msgs, ctx->max_limbs());
  ASSERT_EQ(cts.size(), msgs.size());
  for (std::size_t i = 0; i < cts.size(); ++i) {
    const auto decoded = encoder.decode(dec.decrypt(cts[i]));
    const ckks::PrecisionReport r = ckks::compare_slots(msgs[i], decoded);
    EXPECT_GT(r.precision_bits, 12.0) << "message " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(ParamSets, EngineRoundtrip,
                         ::testing::Values(std::make_pair(10, 3u),
                                           std::make_pair(11, 4u)));

TEST(Engine, SymmetricBatchRoundtripAndCompression) {
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  auto ctx = ckks::CkksContext::create(
      params, std::make_shared<backend::ThreadPoolBackend>(2));
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();
  ckks::Decryptor dec(ctx, sk);
  ckks::CkksEncoder encoder(ctx);

  const auto msgs = random_batch(4, ctx->slots(), 99);
  BatchEncryptor eng(ctx, sk);
  const auto cts = eng.encrypt_batch(msgs, ctx->max_limbs());
  for (std::size_t i = 0; i < cts.size(); ++i) {
    ASSERT_TRUE(cts[i].compressed_c1.has_value());
    const auto decoded = encoder.decode(dec.decrypt(cts[i]));
    EXPECT_GT(ckks::compare_slots(msgs[i], decoded).precision_bits, 12.0);
  }
  // Stream ids within a batch are consecutive and unique.
  for (std::size_t i = 1; i < cts.size(); ++i) {
    EXPECT_EQ(cts[i].compressed_c1->stream_id,
              cts[0].compressed_c1->stream_id + i);
  }
}

TEST(Engine, BatchItemsUseDistinctRandomness) {
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  auto ctx = ckks::CkksContext::create(
      params, std::make_shared<backend::ThreadPoolBackend>(4));
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();

  // Same message in every batch slot: ciphertexts must still differ.
  std::vector<std::vector<std::complex<double>>> msgs(
      3, random_batch(1, 16, 5)[0]);
  BatchEncryptor eng(ctx, keygen.public_key(sk));
  const auto cts = eng.encrypt_batch(msgs, 2);
  for (std::size_t a = 0; a < cts.size(); ++a) {
    for (std::size_t b = a + 1; b < cts.size(); ++b) {
      bool differs = false;
      std::span<const u64> la = cts[a].c(0).limb(0);
      std::span<const u64> lb = cts[b].c(0).limb(0);
      for (std::size_t j = 0; j < la.size() && !differs; ++j) {
        differs = la[j] != lb[j];
      }
      EXPECT_TRUE(differs) << "items " << a << " and " << b;
    }
  }
}

TEST(Engine, MixedSingleAndBatchSharesCounter) {
  // encrypt() and encrypt_batch() draw from one atomic counter: ids never
  // collide, and everything stays decryptable.
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  auto ctx = ckks::CkksContext::create(
      params, std::make_shared<backend::ThreadPoolBackend>(2));
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();
  ckks::Decryptor dec(ctx, sk);
  ckks::CkksEncoder encoder(ctx);

  BatchEncryptor eng(ctx, sk);
  const auto msgs = random_batch(3, 16, 11);
  const auto first = eng.encrypt_batch(msgs, 2);
  // A one-off encrypt() between batches consumes exactly one id from the
  // shared atomic counter...
  const ckks::Plaintext single_pt = encoder.encode(msgs[0], 2);
  const ckks::Ciphertext single = eng.encryptor().encrypt(single_pt);
  const auto second = eng.encrypt_batch(msgs, 2);
  // ...so the id sequence is first: base..base+2, single: base+3,
  // second: base+4.. — never a reuse.
  ASSERT_TRUE(single.compressed_c1.has_value());
  EXPECT_EQ(single.compressed_c1->stream_id,
            first[2].compressed_c1->stream_id + 1);
  EXPECT_EQ(second[0].compressed_c1->stream_id,
            single.compressed_c1->stream_id + 1);
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    EXPECT_NE(first[i].compressed_c1->stream_id,
              second[i].compressed_c1->stream_id);
    const auto decoded = encoder.decode(dec.decrypt(second[i]));
    const std::span<const std::complex<double>> head(decoded.data(),
                                                     msgs[i].size());
    EXPECT_GT(ckks::compare_slots(msgs[i], head).precision_bits, 12.0);
  }
  const auto single_decoded = encoder.decode(dec.decrypt(single));
  const std::span<const std::complex<double>> single_head(
      single_decoded.data(), msgs[0].size());
  EXPECT_GT(ckks::compare_slots(msgs[0], single_head).precision_bits, 12.0);
}

TEST(Engine, EncryptPlaintextsPath) {
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  auto ctx = ckks::CkksContext::create(
      params, std::make_shared<backend::ThreadPoolBackend>(2));
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();
  ckks::Decryptor dec(ctx, sk);
  ckks::CkksEncoder encoder(ctx);

  const auto msgs = random_batch(3, ctx->slots(), 21);
  std::vector<ckks::Plaintext> pts;
  pts.reserve(msgs.size());
  for (const auto& m : msgs) pts.push_back(encoder.encode(m, 3));

  BatchEncryptor eng(ctx, keygen.public_key(sk));
  const auto cts = eng.encrypt_plaintexts(pts);
  ASSERT_EQ(cts.size(), pts.size());
  for (std::size_t i = 0; i < cts.size(); ++i) {
    const auto decoded = encoder.decode(dec.decrypt(cts[i]));
    EXPECT_GT(ckks::compare_slots(msgs[i], decoded).precision_bits, 12.0);
  }
}

TEST(Engine, OversizedMessageThrowsNotAborts) {
  // Input validation inside a pooled batch must come back as a catchable
  // exception, exactly as it does under the scalar backend.
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  auto ctx = ckks::CkksContext::create(
      params, std::make_shared<backend::ThreadPoolBackend>(2));
  ckks::KeyGenerator keygen(ctx);
  BatchEncryptor eng(ctx, keygen.secret_key());
  auto msgs = random_batch(2, 16, 31);
  msgs[1].resize(ctx->slots() + 1);  // too many values for the slot count
  EXPECT_THROW(eng.encrypt_batch(msgs, ctx->max_limbs()), InvalidArgument);
}

TEST(Engine, EnginesSharingAContextNeverAliasStreamIds) {
  // The FanOutCore regression the shared counter exists for: engines used
  // to keep per-instance counters, so two engines on one context would
  // both hand out id 0 and replay each other's keystreams (for the same
  // secret and domain, that leaks plaintext differences). All ids now come
  // from CkksContext::reserve_stream_ids, so every engine on a context
  // draws from one sequence.
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  auto ctx = ckks::CkksContext::create(
      params, std::make_shared<backend::ThreadPoolBackend>(2));
  ckks::KeyGenerator keygen(ctx);
  const ckks::SecretKey sk = keygen.secret_key();
  const auto msgs = random_batch(3, 16, 77);

  // Two encryption engines for the SAME secret (same salt): interleaved
  // batches must still never share a wire stream id.
  BatchEncryptor enc1(ctx, sk);
  BatchEncryptor enc2(ctx, sk);
  std::vector<u64> ids;
  for (const auto& ct : enc1.encrypt_batch(msgs, 2)) {
    ids.push_back(ct.compressed_c1->stream_id);
  }
  for (const auto& ct : enc2.encrypt_batch(msgs, 2)) {
    ids.push_back(ct.compressed_c1->stream_id);
  }
  for (const auto& ct : enc1.encrypt_batch(msgs, 2)) {
    ids.push_back(ct.compressed_c1->stream_id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end())
      << "duplicate stream id across engines sharing a context";

  // Two key engines for the same secret: their keys' counter blocks come
  // from the same context sequence, so base ids can never collide either.
  engine::BatchKeyGenerator kg1(ctx, sk);
  engine::BatchKeyGenerator kg2(ctx, sk);
  const u64 base1 = kg1.relin_key().key.base_stream_id;
  const u64 base2 = kg2.relin_key().key.base_stream_id;
  EXPECT_GE(base2, base1 + ctx->max_limbs())
      << "second engine's digit block overlaps the first's";
}

TEST(Engine, EmptyBatchIsFine) {
  const ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  auto ctx = ckks::CkksContext::create(params);
  ckks::KeyGenerator keygen(ctx);
  BatchEncryptor eng(ctx, keygen.secret_key());
  EXPECT_TRUE(
      eng.encrypt_batch(std::span<const std::vector<std::complex<double>>>{},
                        ctx->max_limbs())
          .empty());
}

}  // namespace
}  // namespace abc
