#include <gtest/gtest.h>

#include <cmath>

#include "transform/softfloat.hpp"

namespace abc::xf {
namespace {

TEST(RoundMantissa, FullPrecisionIsIdentity) {
  for (double x : {0.0, 1.0, -3.14159, 1e300, 1e-300}) {
    EXPECT_EQ(round_mantissa(x, 52), x);
  }
}

TEST(RoundMantissa, KnownRoundings) {
  // 1 + 2^-20 rounds away at 10 mantissa bits, survives at 20.
  const double x = 1.0 + std::ldexp(1.0, -20);
  EXPECT_EQ(round_mantissa(x, 10), 1.0);
  EXPECT_EQ(round_mantissa(x, 20), x);
  // Round-to-nearest-even at the halfway point: 1 + 2^-11 with 10 bits is
  // exactly halfway between 1 and 1 + 2^-10 -> rounds to even (1.0).
  EXPECT_EQ(round_mantissa(1.0 + std::ldexp(1.0, -11), 10), 1.0);
  // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9 -> even is 1+2^-9.
  EXPECT_EQ(round_mantissa(1.0 + 3 * std::ldexp(1.0, -11), 10),
            1.0 + std::ldexp(1.0, -9));
}

TEST(RoundMantissa, CarryIntoExponent) {
  // Just below 2.0: rounds up to exactly 2.0 at low precision.
  const double x = std::nextafter(2.0, 0.0);
  EXPECT_EQ(round_mantissa(x, 8), 2.0);
}

TEST(RoundMantissa, ErrorBounded) {
  for (int bits : {10, 23, 43}) {
    for (double x : {1.234567890123, -9.87654321e5, 3.337e-7}) {
      const double r = round_mantissa(x, bits);
      EXPECT_LE(std::abs(r - x), std::abs(x) * std::ldexp(1.0, -bits))
          << "bits=" << bits << " x=" << x;
    }
  }
}

TEST(FpPrecision, ScopedAndRestored) {
  EXPECT_EQ(FpPrecision::mantissa_bits(), 52);
  {
    FpPrecision guard(43);
    EXPECT_EQ(FpPrecision::mantissa_bits(), 43);
    {
      FpPrecision inner(20);
      EXPECT_EQ(FpPrecision::mantissa_bits(), 20);
    }
    EXPECT_EQ(FpPrecision::mantissa_bits(), 43);
  }
  EXPECT_EQ(FpPrecision::mantissa_bits(), 52);
  EXPECT_THROW(FpPrecision(0), InvalidArgument);
  EXPECT_THROW(FpPrecision(53), InvalidArgument);
}

TEST(Rounded, ArithmeticRoundsEachStep) {
  FpPrecision guard(10);
  Rounded a(1.0);
  Rounded b(std::ldexp(1.0, -12));  // rounds to a subnormal-ish tiny value
  // Adding a value below half-ulp of 1.0 must vanish.
  EXPECT_EQ((a + b).v, 1.0);
  // Multiplication rounds the product.
  Rounded c(1.0 + std::ldexp(1.0, -10));
  EXPECT_EQ((c * c).v, 1.0 + std::ldexp(1.0, -9));  // (1+e)^2 ~ 1+2e
}

TEST(Cx, ComplexMultiplicationMatchesStd) {
  const Cx<double> a{1.5, -2.5};
  const Cx<double> b{-0.25, 4.0};
  const Cx<double> p = a * b;
  EXPECT_DOUBLE_EQ(p.re, 1.5 * -0.25 - (-2.5) * 4.0);
  EXPECT_DOUBLE_EQ(p.im, 1.5 * 4.0 + (-2.5) * -0.25);
  const Cx<double> sum = a + b;
  EXPECT_DOUBLE_EQ(sum.re, 1.25);
  EXPECT_DOUBLE_EQ(sum.im, 1.5);
  EXPECT_DOUBLE_EQ(cx_abs(Cx<double>{3.0, 4.0}), 5.0);
}

TEST(Cx, UnitCirclePowersStayBounded) {
  FpPrecision guard(43);  // FP55
  Cx<Rounded> w{Rounded(std::cos(0.001)), Rounded(std::sin(0.001))};
  Cx<Rounded> acc{Rounded(1.0), Rounded(0.0)};
  for (int i = 0; i < 10000; ++i) acc = acc * w;
  const double mag = cx_abs(acc);
  EXPECT_NEAR(mag, 1.0, 1e-7);  // error accumulates slowly at 43 bits
}

}  // namespace
}  // namespace abc::xf
