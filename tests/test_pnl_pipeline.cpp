// Functional verification of the streaming PNL pipeline model: the SDF
// stage chain must compute exactly the reference transforms, in both
// datapath modes (the reconfigurable-engine claim at dataflow level),
// with the expected FIFO sizing and fill latency.

#include <gtest/gtest.h>

#include <random>

#include "core/pnl_pipeline.hpp"
#include "rns/ntt_prime.hpp"

namespace abc::core {
namespace {

class PnlPipelineTest : public ::testing::TestWithParam<int> {};

TEST_P(PnlPipelineTest, StreamingNttMatchesReference) {
  const int log_n = GetParam();
  const rns::Modulus q(rns::select_prime_chain(36, std::max(log_n, 5), 1)[0]);
  xf::NttTables tables(q, log_n);
  std::mt19937_64 rng(log_n);
  std::vector<u64> input(tables.n());
  for (u64& v : input) v = rng() % q.value();

  std::vector<u64> reference = input;
  tables.forward(reference);

  std::vector<u64> streamed(tables.n());
  const PipelineRun run = streaming_ntt(tables, input, streamed);
  EXPECT_EQ(streamed, reference);

  // FIFO storage: sum of stage depths n/2 + n/4 + ... + 1 = n - 1.
  EXPECT_EQ(run.fifo_words, tables.n() - 1);
  // First output after the pipeline fills (n - 1 cycles), last after ~2n.
  EXPECT_EQ(run.fill_latency, tables.n() - 1);
  EXPECT_EQ(run.cycles, 2 * tables.n() - 1);
}

TEST_P(PnlPipelineTest, StreamingDwtMatchesReference) {
  const int log_n = GetParam();
  xf::CkksDwtPlan plan(log_n);
  std::mt19937_64 rng(100 + log_n);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<xf::Cx<double>> input(plan.n());
  for (auto& z : input) z = {dist(rng), dist(rng)};

  std::vector<xf::Cx<double>> reference = input;
  plan.forward(std::span<xf::Cx<double>>(reference));

  std::vector<xf::Cx<double>> streamed(plan.n());
  streaming_dwt(plan, input, streamed);
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    // Same pairing and operation order: bit-exact agreement.
    EXPECT_EQ(streamed[i].re, reference[i].re) << i;
    EXPECT_EQ(streamed[i].im, reference[i].im) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, PnlPipelineTest,
                         ::testing::Values(3, 5, 8, 10, 12));

TEST(PnlPipeline, SingleStageButterflySemantics) {
  // A lone stage with t = 2 over 4 samples is one CT stage (m = 1).
  const rns::Modulus q(97);
  ModularArith arith{q};
  SdfStage<u64, ModularArith> stage(2, arith);
  const u64 w = 5;
  std::vector<u64> in = {10, 20, 3, 4};
  std::vector<u64> out;
  std::size_t pushed = 0;
  while (out.size() < 4) {
    const u64 x = pushed < in.size() ? in[pushed] : 0;
    ++pushed;
    if (auto o = stage.push(x, w)) out.push_back(*o);
  }
  // u_j = a_j + w*b_j ; v_j = a_j - w*b_j with (a, b) = (in[j], in[j+2]).
  EXPECT_EQ(out[0], q.add(10, q.mul(w, 3)));
  EXPECT_EQ(out[1], q.add(20, q.mul(w, 4)));
  EXPECT_EQ(out[2], q.sub(10, q.mul(w, 3)));
  EXPECT_EQ(out[3], q.sub(20, q.mul(w, 4)));
}

TEST(PnlPipeline, ReconfigurabilitySharesStructure) {
  // NTT and FFT runs of the same size report identical pipeline structure
  // (FIFO words, fill latency) — one datapath serves both modes.
  const int log_n = 9;
  const rns::Modulus q(rns::select_prime_chain(36, 9, 1)[0]);
  xf::NttTables tables(q, log_n);
  xf::CkksDwtPlan plan(log_n);
  std::vector<u64> mod_in(tables.n(), 1), mod_out(tables.n());
  std::vector<xf::Cx<double>> cx_in(plan.n(), {1.0, 0.0}), cx_out(plan.n());
  const PipelineRun a = streaming_ntt(tables, mod_in, mod_out);
  const PipelineRun b = streaming_dwt(plan, cx_in, cx_out);
  EXPECT_EQ(a.fifo_words, b.fifo_words);
  EXPECT_EQ(a.fill_latency, b.fill_latency);
  EXPECT_EQ(a.cycles, b.cycles);
}

}  // namespace
}  // namespace abc::core
