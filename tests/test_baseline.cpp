#include <gtest/gtest.h>

#include <random>

#include "baseline/cpu_reference.hpp"
#include "baseline/prior_work.hpp"

namespace abc::baseline {
namespace {

TEST(CpuReference, PipelineRoundtripsAndTimes) {
  // Fig. 2's ~10x encrypt/decrypt op imbalance emerges from the limb-count
  // asymmetry (24 fresh vs 2 returned); at this reduced depth (12 vs 2)
  // the ratio is proportionally smaller but must clearly exceed 2x.
  ckks::CkksParams params = ckks::CkksParams::test_small(10, 12);
  CpuClientPipeline pipeline(params, ckks::EncryptMode::kSymmetricSeeded,
                             /*fresh=*/12, /*returned=*/2);
  const CpuMeasurement m = pipeline.measure(1);
  EXPECT_GT(m.encode_encrypt_ms, 0.0);
  EXPECT_GT(m.decode_decrypt_ms, 0.0);
  EXPECT_GT(m.encode_encrypt_ops.total(), 2 * m.decode_decrypt_ops.total());
}

TEST(CpuReference, OpCountsScaleWithLimbs) {
  ckks::CkksParams p4 = ckks::CkksParams::test_small(10, 4);
  ckks::CkksParams p2 = ckks::CkksParams::test_small(10, 2);
  CpuClientPipeline deep(p4, ckks::EncryptMode::kSymmetricSeeded, 4, 2);
  CpuClientPipeline shallow(p2, ckks::EncryptMode::kSymmetricSeeded, 2, 2);
  const auto md = deep.measure(1);
  const auto ms = shallow.measure(1);
  EXPECT_GT(md.encode_encrypt_ops.ntt_total(),
            1.5 * ms.encode_encrypt_ops.ntt_total());
}

TEST(CpuReference, FunctionalCorrectnessThroughPipeline) {
  ckks::CkksParams params = ckks::CkksParams::test_small(10, 3);
  CpuClientPipeline pipeline(params, ckks::EncryptMode::kPublicKey, 3, 3);
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::complex<double>> msg(pipeline.context().slots());
  for (auto& z : msg) z = {dist(rng), dist(rng)};
  const auto ct = const_cast<CpuClientPipeline&>(pipeline).encode_encrypt(msg);
  const auto decoded =
      const_cast<CpuClientPipeline&>(pipeline).decode_decrypt(ct);
  double max_err = 0;
  for (std::size_t i = 0; i < msg.size(); ++i) {
    max_err = std::max(max_err, std::abs(msg[i] - decoded[i]));
  }
  EXPECT_LT(max_err, 1e-3);
}

TEST(PriorWork, RatiosMatchPaper) {
  const PriorWorkPoint sota = sota_client_accelerator(0.5, 0.1);
  EXPECT_DOUBLE_EQ(sota.encode_encrypt_ms, 0.5 * 214.0);
  EXPECT_DOUBLE_EQ(sota.decode_decrypt_ms, 0.1 * 82.0);
  const PriorWorkPoint aloha = aloha_he(0.5, 0.1);
  EXPECT_GT(aloha.encode_encrypt_ms, sota.encode_encrypt_ms);
}

TEST(PriorWork, Fig1SplitCalibration) {
  const double client34 = 100.0;
  const double server = trinity_resnet20_server_ms(client34);
  const double client_share = client34 / (client34 + server);
  EXPECT_NEAR(client_share, 0.694, 1e-3);
  EXPECT_GT(cpu_resnet20_server_ms(server), 1000.0 * server);
}

}  // namespace
}  // namespace abc::baseline
